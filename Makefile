# privedit — build/test/evaluation entry points. Stdlib only; any Go ≥ 1.22.

GO ?= go

.PHONY: all build vet lint test race cover cover-gate bench experiments fuzz examples metrics-smoke load-smoke ot-smoke chaos-smoke trace-smoke profile-smoke taint-smoke store-smoke store-bench store-soak hotpath clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the crypto & concurrency invariant
# suite (internal/lint), including the interprocedural plaintext-flow
# taint rule. Run `go run ./cmd/privedit-lint -rules` for the rule list;
# suppress with `//lint:ignore RULE reason`.
lint:
	$(GO) run ./cmd/privedit-lint ./...

# Taint-analysis cost gate: run only the whole-module taint pass, print
# its size/cost statistics (functions, fixpoint passes, derived
# plaintext-reachable package set), and fail if the wall time blows the
# 30s CI budget — a complexity regression in the fixpoint must show up
# as a red check, not a slow one.
taint-smoke:
	$(GO) run ./cmd/privedit-lint -taint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Coverage gate: fail the build if any core package drops below the floor
# (see scripts/coverage_gate.sh for the package list and threshold).
cover-gate:
	./scripts/coverage_gate.sh

# testing.B benchmarks: one per paper table/figure (bench_test.go) plus
# package-level micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Paper-style tables for every figure in section VII, plus the
# functionality, ablation, and scaling experiments.
experiments:
	$(GO) run ./cmd/privedit-bench -exp all

# Fuzzing passes over every parser surface. Override FUZZTIME for longer
# runs (the nightly workflow uses FUZZTIME=5m).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/delta/
	$(GO) test -fuzz=FuzzTransform -fuzztime=$(FUZZTIME) ./internal/delta/
	$(GO) test -fuzz=FuzzCoalesce -fuzztime=$(FUZZTIME) ./internal/delta/
	$(GO) test -fuzz=FuzzNormalizeIdempotent -fuzztime=$(FUZZTIME) ./internal/delta/
	$(GO) test -fuzz=FuzzLoadTransport -fuzztime=$(FUZZTIME) ./internal/blockdoc/
	$(GO) test -fuzz=FuzzTransformDelta -fuzztime=$(FUZZTIME) ./internal/blockdoc/
	$(GO) test -fuzz=FuzzFingerEquivalence -fuzztime=$(FUZZTIME) ./internal/skiplist/
	$(GO) test -fuzz=FuzzDiff -fuzztime=$(FUZZTIME) ./internal/diff/
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/stego/
	$(GO) test -fuzz=FuzzDirective -fuzztime=$(FUZZTIME) ./internal/lint/

# End-to-end check of the telemetry surface: start privedit-server, hit
# /metrics, and require every headline metric family to be exported.
METRICS_ADDR ?= 127.0.0.1:8747
metrics-smoke:
	$(GO) build -o /tmp/privedit-server ./cmd/privedit-server
	/tmp/privedit-server -addr $(METRICS_ADDR) & echo $$! > /tmp/privedit-server.pid; \
	trap 'kill $$(cat /tmp/privedit-server.pid)' EXIT; \
	for i in 1 2 3 4 5 6 7 8 9 10; do \
		curl -sf http://$(METRICS_ADDR)/metrics -o /tmp/privedit-metrics.txt && break; \
		sleep 0.5; \
	done; \
	for m in privedit_http_requests_total privedit_http_request_seconds \
		privedit_transform_delta_seconds privedit_block_splits_total \
		privedit_fragmentation_ratio; do \
		grep -q "^# TYPE $$m " /tmp/privedit-metrics.txt || { echo "missing metric $$m"; exit 1; }; \
	done; \
	echo "metrics-smoke: all expected families exported"

# Short concurrent-load run: many sessions through one extension, with the
# serial-vs-parallel crypto kernel comparison. Writes /tmp/BENCH_load.json.
load-smoke:
	$(GO) run ./cmd/privedit-load -sessions 8 -docs 4 -duration 2s -workers 4 -json /tmp/BENCH_load.json

# OT-pipeline gate: the committed-baseline load shape (16 sessions over 8
# docs) through the pipelined save path. The run itself fails if any
# rejected save fell back to a full conflict resync (every conflict must
# transform-merge) or if throughput drops below the committed floor —
# 640 ops/sec is ~5x the 119.5 the synchronous path recorded in
# BENCH_load.json before the pipeline existed. Writes /tmp/BENCH_ot.json.
ot-smoke:
	$(GO) run ./cmd/privedit-load -sessions 16 -docs 8 -duration 5s -workers 4 \
		-inflight 4 -min-ops-sec 640 -max-conflict-resyncs 0 -json /tmp/BENCH_ot.json

# Short chaos run: concurrent resilient sessions through a seeded fault
# storm, with per-document convergence verification (the run fails if any
# document diverges). Writes /tmp/BENCH_chaos.json.
chaos-smoke:
	$(GO) run ./cmd/privedit-load -chaos -sessions 4 -ops 40 -seed 2011 -json /tmp/BENCH_chaos.json

# Traced load run: tracing on (the default), spans exported as JSONL, and
# the artifact checked for a real per-phase latency breakdown (the harness
# itself already exits non-zero when a traced run attributes nothing).
# Writes /tmp/BENCH_load_traced.json and /tmp/privedit-traces.jsonl.
trace-smoke:
	$(GO) run ./cmd/privedit-load -sessions 4 -docs 2 -duration 2s -workers 4 \
		-enc-bench=false -trace-out /tmp/privedit-traces.jsonl -json /tmp/BENCH_load_traced.json
	@grep -q '"phases"' /tmp/BENCH_load_traced.json || { echo "trace-smoke: no phase breakdown in artifact"; exit 1; }
	@grep -q '"phase": "save"' /tmp/BENCH_load_traced.json || { echo "trace-smoke: save phase missing from breakdown"; exit 1; }
	@test -s /tmp/privedit-traces.jsonl || { echo "trace-smoke: empty span export"; exit 1; }
	@echo "trace-smoke: phase breakdown and span export present"

# Profiled load run: exercises -cpuprofile/-memprofile end to end and
# fails unless both profiles come back non-empty and parseable by
# `go tool pprof` with actual CPU samples recorded.
PROFILE_DURATION ?= 30s
profile-smoke:
	$(GO) run ./cmd/privedit-load -sessions 8 -docs 4 -duration $(PROFILE_DURATION) -workers 4 \
		-enc-bench=false -cpuprofile /tmp/privedit-cpu.pprof -memprofile /tmp/privedit-mem.pprof
	@test -s /tmp/privedit-cpu.pprof || { echo "profile-smoke: empty CPU profile"; exit 1; }
	@test -s /tmp/privedit-mem.pprof || { echo "profile-smoke: empty heap profile"; exit 1; }
	@$(GO) tool pprof -top -nodecount=5 /tmp/privedit-cpu.pprof | grep -q "Total samples" \
		|| { echo "profile-smoke: CPU profile has no samples"; exit 1; }
	@$(GO) tool pprof -top -nodecount=5 /tmp/privedit-mem.pprof > /dev/null \
		|| { echo "profile-smoke: heap profile unparseable"; exit 1; }
	@echo "profile-smoke: CPU and heap profiles non-empty and parseable"

# Crash-recovery smoke: start a disk-backed server, write-storm it over
# HTTP while journaling every ack, kill -9 mid-storm, restart, and verify
# each acknowledged save survived byte-identically (SHA-256). See
# scripts/crash_recovery.sh.
store-smoke:
	./scripts/crash_recovery.sh

# Persistence bench: cold population in bulk-load mode, sustained mixed
# ops with the cache far smaller than the population, and cold-recovery
# timing. Writes /tmp/BENCH_store.json (the committed BENCH_store.json is
# one such run at default scale; the 1M-doc ISSUE scale is
# -store-docs 1000000 -cache-bytes 15000000 on a real machine).
store-bench:
	$(GO) run ./cmd/privedit-load -store -workers 4 -json /tmp/BENCH_store.json

# Nightly eviction-churn soak: a tiny cache under sustained fault-in and
# eviction pressure, gated on goroutine and live-heap growth.
SOAK_DURATION ?= 30s
store-soak:
	$(GO) run ./cmd/privedit-load -store-soak -duration $(SOAK_DURATION) -workers 4

# Hot-path benchmark: finger cache + delta coalescing vs baseline on the
# burst-edit workload, with byte-identity cross-checks between variants.
# Writes /tmp/BENCH_hotpath.json (the committed BENCH_hotpath.json is one
# such run at default scale).
hotpath:
	$(GO) run ./cmd/privedit-bench -exp hotpath -json /tmp

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/securedocs
	$(GO) run ./examples/collab
	$(GO) run ./examples/blocksize
	$(GO) run ./examples/otherapps
	$(GO) run ./cmd/privedit-attack

clean:
	$(GO) clean ./...
