# privedit — build/test/evaluation entry points. Stdlib only; any Go ≥ 1.22.

GO ?= go

.PHONY: all build vet test race cover bench experiments fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B benchmarks: one per paper table/figure (bench_test.go) plus
# package-level micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Paper-style tables for every figure in section VII, plus the
# functionality, ablation, and scaling experiments.
experiments:
	$(GO) run ./cmd/privedit-bench -exp all

# Short fuzzing passes over every parser surface.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/delta/
	$(GO) test -fuzz=FuzzTransform -fuzztime=30s ./internal/delta/
	$(GO) test -fuzz=FuzzLoadTransport -fuzztime=30s ./internal/blockdoc/
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/stego/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/securedocs
	$(GO) run ./examples/collab
	$(GO) run ./examples/blocksize
	$(GO) run ./examples/otherapps
	$(GO) run ./cmd/privedit-attack

clean:
	$(GO) clean ./...
