// Quickstart: the privedit core library in one minute.
//
// An Editor is the paper's enc_scheme object: it derives a key from a
// per-document password (K), encrypts a document into a printable
// container (Enc), turns plaintext edits into ciphertext deltas (IncE /
// transform_delta), and opens containers back into plaintext (Dec).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privedit/internal/core"
	"privedit/internal/delta"
)

func main() {
	// 1. Create encryption state for a new document. RPC mode gives both
	// confidentiality and integrity; rECB is confidentiality-only.
	editor, err := core.NewEditor("correct horse battery staple", core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8, // the paper's preferred multi-character block size
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Encrypt the document. The transport string is what the untrusted
	// server stores: printable Base32, no plaintext anywhere.
	serverCopy, err := editor.Encrypt("Meet me at the old pier at midnight.")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stores %d chars of ciphertext:\n  %.76s...\n\n", len(serverCopy), serverCopy)

	// 3. Edit incrementally. The paper's delta language: "=n" retain,
	// "+str" insert, "-n" delete. transform_delta converts the plaintext
	// edit into a ciphertext edit the server applies blindly.
	pd, err := delta.Parse("=11\t-12\t+the new boathouse")
	if err != nil {
		log.Fatal(err)
	}
	cd, err := editor.TransformDeltaOps(pd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext delta:  %q\n", pd.String())
	fmt.Printf("ciphertext delta: %.76q...\n\n", cd.String())

	// 4. The server applies the ciphertext delta without understanding it.
	serverCopy, err = cd.Apply(serverCopy)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Anyone with the password can open the server's copy.
	plain, err := core.Decrypt("correct horse battery staple", serverCopy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted document: %q\n", plain)

	// 6. The wrong password is rejected outright.
	if _, err := core.Decrypt("password123", serverCopy); err != nil {
		fmt.Printf("wrong password: %v\n", err)
	}

	// 7. RPC mode detects tampering: flip one ciphertext character.
	tampered := []byte(serverCopy)
	mid := len(tampered) / 2
	if tampered[mid] == 'A' {
		tampered[mid] = 'B'
	} else {
		tampered[mid] = 'A'
	}
	if _, err := core.Decrypt("correct horse battery staple", string(tampered)); err != nil {
		fmt.Printf("tampered container: %v\n", err)
	}
}
