// Otherapps: the paper's generality claim (§III). Besides Google
// Documents, the same approach wraps Mozilla Bespin (whole-file HTTP PUT,
// no incremental updates) and Adobe Buzzword (whole-document XML POST with
// <textRun> text). This example runs both simulated services with their
// encrypting extensions.
//
// Run: go run ./examples/otherapps
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"privedit/internal/bespin"
	"privedit/internal/buzzword"
	"privedit/internal/core"
)

func main() {
	demoBespin()
	fmt.Println()
	demoBuzzword()
}

func demoBespin() {
	fmt.Println("--- Mozilla Bespin (code editor, whole-file PUT) ---")
	server := bespin.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	passwords := func(string) (string, core.Options, error) {
		return "repo-password", core.Options{Scheme: core.ConfidentialityOnly, BlockChars: 8}, nil
	}
	ext := bespin.NewExtension(ts.Client().Transport, passwords)
	client := bespin.NewClient(ext.Client(), ts.URL)

	code := "package secret\n\n// pricing model, do not leak\nfunc Margin() float64 { return 0.42 }\n"
	must(client.Save("pricing.go", code))

	stored, _ := server.File("pricing.go")
	fmt.Printf("server stores: %.60s... (%d chars)\n", stored, len(stored))
	if !strings.Contains(stored, "Margin") {
		fmt.Println("confidentiality: function names and comments are hidden")
	}
	loaded, err := client.Load("pricing.go")
	must(err)
	if loaded == code {
		fmt.Println("round trip: the editor sees the original source")
	}
}

func demoBuzzword() {
	fmt.Println("--- Adobe Buzzword (word processor, XML POST) ---")
	server := buzzword.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	passwords := func(string) (string, core.Options, error) {
		return "memo-password", core.Options{Scheme: core.ConfidentialityOnly, BlockChars: 8}, nil
	}
	ext := buzzword.NewExtension(ts.Client().Transport, passwords)
	client := buzzword.NewClient(ext.Client(), ts.URL)

	doc := buzzword.Document{
		ID: "memo",
		Runs: []buzzword.TextRun{
			{Style: "heading", Text: "Reorganization plan"},
			{Style: "body", Text: "We will close the Springfield office in Q3."},
		},
	}
	must(client.Save(doc))

	raw, _ := server.Doc("memo")
	fmt.Printf("server stores: %.90s...\n", raw)
	if strings.Contains(raw, `style="heading"`) && !strings.Contains(raw, "Springfield") {
		fmt.Println("confidentiality: markup survives, text is hidden")
	}
	loaded, err := client.Load("memo")
	must(err)
	if loaded.Text() == doc.Text() {
		fmt.Println("round trip: the editor sees the original document")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
