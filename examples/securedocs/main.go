// Securedocs: a full private editing session against the simulated Google
// Documents service — the scenario of the paper's Figure 1.
//
// The pieces, exactly as in the paper:
//
//	client  — the word-processor application (knows nothing of crypto)
//	extension — intercepts all traffic, encrypts docContents, transforms
//	            deltas, drops unknown requests
//	server  — the untrusted provider: stores whatever it is sent
//
// Run: go run ./examples/securedocs
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
)

func main() {
	// The untrusted provider, with its "what did I see?" log enabled.
	server := gdocs.NewServer()
	server.EnableObservation()
	ts := httptest.NewServer(server)
	defer ts.Close()

	// The extension: per-document password, RPC mode, all covert-channel
	// mitigations on.
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}
	mit := covert.New(covert.Config{CanonicalizeDeltas: true, PadQuantum: 64}, nil)
	ext := mediator.New(ts.Client().Transport, mediator.StaticPassword("tax-season-2011", opts), mediator.WithMitigator(mit))

	// The unmodified client application, routed through the extension.
	client := gdocs.NewClient(ext.Client(), ts.URL, "tax-return")

	must(client.Create())
	client.SetText("2010 tax return. Gross income: $94,310. Deductions: home office, 2 dependents.")
	must(client.Save()) // first save: full docContents, encrypted in flight

	must(client.Insert(17, "DRAFT. "))
	must(client.Save()) // incremental save: delta transformed to cdelta

	must(client.Replace(0, 4, "2011"))
	must(client.Save())

	fmt.Printf("the user sees:   %q\n\n", client.Text())

	stored, _, err := server.Content(context.Background(), "tax-return")
	must(err)
	fmt.Printf("the server sees: %.100s... (%d chars)\n\n", stored, len(stored))

	// Prove confidentiality: no fragment of the document reached the
	// server in the clear.
	leaked := false
	for _, secret := range []string{"94,310", "income", "dependents", "tax return"} {
		if strings.Contains(server.Observed(), secret) {
			fmt.Printf("LEAK: %q visible to the server!\n", secret)
			leaked = true
		}
	}
	if !leaked {
		fmt.Println("confidentiality: no plaintext fragment ever reached the server")
	}

	// Prove the server-side features that would need plaintext are cut off.
	if _, err := client.Feature(gdocs.PathSpell); err != nil {
		fmt.Printf("spell check:     %v (blocked by the extension, as in section VII-A)\n", err)
	}

	// Prove integrity: the provider alters the stored ciphertext...
	tampered := []byte(stored)
	tampered[len(tampered)/2] ^= 1
	// (the provider can always write to its own store)
	_, err = server.SetContents(context.Background(), "tax-return", string(tampered), -1)
	must(err)

	// ...and the next session refuses the document.
	ext2 := mediator.New(ts.Client().Transport, mediator.StaticPassword("tax-season-2011", opts))
	client2 := gdocs.NewClient(ext2.Client(), ts.URL, "tax-return")
	if err := client2.Load(); err != nil {
		fmt.Printf("integrity:       tampered document rejected on load: %v\n", err)
	}

	fmt.Printf("\nextension stats: %+v\n", ext.Stats())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
