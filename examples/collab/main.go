// Collab: sharing an encrypted document between users, reproducing the
// collaborative-editing findings of §VII-A:
//
//   - sharing works by sharing the document plus the password out of band
//     (§IV-C);
//   - passive readers get content refreshing;
//   - simultaneous editing by different parties leads to conflicts,
//     because the extension cannot fix up the server's content echo.
//
// Run: go run ./examples/collab
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
)

func main() {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	const password = "shared-via-secure-channel"
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}
	newUser := func(doc string) *gdocs.Client {
		ext := mediator.New(ts.Client().Transport, mediator.StaticPassword(password, opts))
		return gdocs.NewClient(ext.Client(), ts.URL, doc)
	}

	// Alice creates and fills the shared document.
	alice := newUser("meeting-notes")
	must(alice.Create())
	alice.SetText("Agenda: 1. budget 2. roadmap 3. hiring.")
	must(alice.Save())
	fmt.Printf("alice wrote:  %q\n", alice.Text())

	// Bob (has the password) opens it and reads the plaintext.
	bob := newUser("meeting-notes")
	must(bob.Load())
	fmt.Printf("bob reads:    %q\n", bob.Text())

	// Alice keeps editing; Bob, a passive reader, refreshes and sees it.
	must(alice.Insert(len(alice.Text()), " 4. AOB."))
	must(alice.Save())
	must(bob.Refresh())
	fmt.Printf("bob refreshes: %q\n", bob.Text())

	// Eve (no password) gets nothing useful.
	stored, _, err := server.Content(context.Background(), "meeting-notes")
	must(err)
	if _, err := core.Decrypt("guessed-password", stored); err != nil {
		fmt.Printf("eve (wrong password): %v\n", err)
	}

	// Simultaneous editing: both edit from the same base; the second save
	// conflicts, exactly the §VII-A degradation.
	must(alice.Insert(0, "[v2] "))
	must(bob.Insert(len(bob.Text()), " [bob was here]"))
	must(alice.Save())
	if err := bob.Save(); errors.Is(err, gdocs.ErrConflict) {
		fmt.Println("bob's simultaneous edit: conflict (as reported in section VII-A)")
	} else if err != nil {
		log.Fatal(err)
	}

	// Going beyond the paper: Sync resolves the conflict by transforming
	// bob's edit over alice's (operational transformation on deltas),
	// client-side, on plaintext — the server still sees only ciphertext.
	must(bob.Sync())
	must(alice.Refresh())
	fmt.Printf("after sync, both see: %q\n", alice.Text())
	if alice.Text() != bob.Text() {
		log.Fatal("clients diverged")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
