// Blocksize: the §V-C trade-off in action. "The multiple-character block
// extension enables performance tradeoffs between ciphertext size and
// encryption time." This example sweeps b = 1..8 on a 10000-character
// document, printing the blowup, the per-edit ciphertext traffic, and the
// encryption time — a miniature of Figures 6 and 7.
//
// Run: go run ./examples/blocksize
package main

import (
	"fmt"
	"log"
	"time"

	"privedit/internal/core"
	"privedit/internal/workload"
)

func main() {
	gen := workload.NewGen(2011)
	doc := gen.Document(10000)

	fmt.Println("b | blowup | per-edit cdelta chars | full-encrypt time")
	fmt.Println("--+--------+-----------------------+------------------")
	for b := 1; b <= 8; b++ {
		editor, err := core.NewEditor("sweep", core.Options{
			Scheme:     core.ConfidentialityOnly,
			BlockChars: b,
		})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		if _, err := editor.Encrypt(doc); err != nil {
			log.Fatal(err)
		}
		encTime := time.Since(start)

		// Average ciphertext-delta size over a handful of sentence edits.
		totalCDelta, edits := 0, 20
		for i := 0; i < edits; i++ {
			sp := gen.Edit(editor.Plaintext(), workload.SentenceReplace)
			cd, err := editor.Splice(sp.Pos, sp.Del, sp.Ins)
			if err != nil {
				log.Fatal(err)
			}
			totalCDelta += len(cd.String())
		}

		st := editor.Stats()
		fmt.Printf("%d | %5.2fx | %21d | %s\n", b, st.Blowup, totalCDelta/edits, encTime.Round(time.Microsecond))
	}

	fmt.Println("\nWith one-character blocks a 500 KB Google Docs quota holds only ~18 KB")
	fmt.Println("of text; at b=8 the same quota holds ~140 KB — the paper's motivation")
	fmt.Println("for the IndexedSkipList (section V-C).")
}
