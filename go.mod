module privedit

go 1.22
