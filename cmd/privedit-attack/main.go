// Command privedit-attack demonstrates the paper's §VI security analysis
// as executable attacks against this implementation:
//
//   - what an honest-but-curious provider learns (nothing but ciphertext);
//   - every active attack the RPC integrity mode must detect — bit flips,
//     block swaps, replays, truncation, cross-document splicing — and the
//     block-substitution attack that rECB, by design, does NOT detect;
//   - the §VI-B covert channel: a malicious client encoding data in
//     redundant delta sequences, with and without the extension's
//     canonicalization defense.
//
// Run: go run ./cmd/privedit-attack
package main

import (
	"fmt"
	"os"
	"strings"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/crypt"
	"privedit/internal/delta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "privedit-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("privedit-attack: the paper's section VI, executed")
	fmt.Println()
	if err := curiousProvider(); err != nil {
		return err
	}
	fmt.Println()
	if err := activeAttacks(); err != nil {
		return err
	}
	fmt.Println()
	return covertChannel()
}

// curiousProvider shows what a passive provider sees.
func curiousProvider() error {
	fmt.Println("--- 1. honest-but-curious provider (ciphertext-only attack) ---")
	ed, err := core.NewEditor("pw", core.Options{Scheme: core.ConfidentialityOnly, BlockChars: 8})
	if err != nil {
		return err
	}
	secret := "The acquisition target is Initech; offer $12/share on Monday."
	transport, err := ed.Encrypt(secret)
	if err != nil {
		return err
	}
	fmt.Printf("document:   %q\n", secret)
	fmt.Printf("stored:     %.64s... (%d chars)\n", transport, len(transport))

	// Frequency analysis across the Base32 alphabet: near-uniform.
	counts := map[rune]int{}
	for _, c := range transport {
		counts[c]++
	}
	min, max := len(transport), 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("symbol frequency across %d Base32 symbols: min %d, max %d (uniform ≈ %d)\n",
		len(counts), min, max, len(transport)/32)

	// Equal plaintexts encrypt to unequal ciphertexts (random nonces).
	t2, err := ed.Encrypt(secret)
	if err != nil {
		return err
	}
	fmt.Printf("re-encrypting the same document gives the same bytes: %v\n", transport == t2)
	return nil
}

// activeAttacks runs the tamper matrix against both schemes.
func activeAttacks() error {
	fmt.Println("--- 2. active attacks on stored ciphertext (section VI-A) ---")
	const doc = "AAAABBBBCCCCDDDDEEEEFFFF"

	type attack struct {
		name   string
		mutate func(t string, prefixChars, recChars int, blocks int) string
	}
	attacks := []attack{
		{"flip one bit of a record", func(t string, p, r, n int) string {
			b := []byte(t)
			i := p + r + 3 // inside record 1
			if b[i] == 'A' {
				b[i] = 'B'
			} else {
				b[i] = 'A'
			}
			return string(b)
		}},
		{"swap two records", func(t string, p, r, n int) string {
			return t[:p] + t[p+r:p+2*r] + t[p:p+r] + t[p+2*r:]
		}},
		{"replay record 0 over record 2", func(t string, p, r, n int) string {
			return t[:p+2*r] + t[p:p+r] + t[p+3*r:]
		}},
		{"truncate the last record", func(t string, p, r, n int) string {
			// Drop data record n-1, keep the trailer (if any).
			endData := p + n*r
			return t[:endData-r] + t[endData:]
		}},
	}

	for _, scheme := range []core.Scheme{core.ConfidentialityOnly, core.ConfidentialityIntegrity} {
		var prefixChars, recChars int
		switch scheme {
		case core.ConfidentialityOnly:
			prefixChars, recChars = 76, 28
		default:
			prefixChars, recChars = 101, 52
		}
		fmt.Printf("\nscheme %s:\n", scheme)
		for _, atk := range attacks {
			ed, err := core.NewEditor("pw", core.Options{Scheme: scheme, BlockChars: 4,
				Nonces: crypt.NewSeededNonceSource(7)})
			if err != nil {
				return err
			}
			transport, err := ed.Encrypt(doc)
			if err != nil {
				return err
			}
			blocks := 6 // 24 chars / 4 per block
			tampered := atk.mutate(transport, prefixChars, recChars, blocks)
			got, err := core.Decrypt("pw", tampered)
			switch {
			case err != nil:
				fmt.Printf("  %-32s DETECTED (%v)\n", atk.name, shortErr(err))
			case got == doc:
				fmt.Printf("  %-32s no effect\n", atk.name)
			default:
				fmt.Printf("  %-32s SILENTLY ALTERED -> %q\n", atk.name, got)
			}
		}
	}
	fmt.Println("\nrECB accepts the swap/replay silently (the paper: \"our privacy-only")
	fmt.Println("encryption scheme cannot withstand these attacks, but the privacy-and-")
	fmt.Println("integrity scheme does\").")
	return nil
}

func shortErr(err error) string {
	s := err.Error()
	if i := strings.LastIndex(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

// covertChannel shows the malicious-client delta channel and its defense.
func covertChannel() error {
	fmt.Println("--- 3. malicious client covert channel (section VI-B) ---")
	base := "innocent document text"

	// The malicious client wants to leak the byte value 17 through the
	// *shape* of its delta: 17 one-character inserts.
	var malicious delta.Delta
	for i := 0; i < 17; i++ {
		malicious = append(malicious, delta.InsertOp("x"))
	}
	fmt.Printf("malicious delta: %d ops (op count encodes the secret 17)\n", len(malicious))

	// Without the defense, the op structure passes through to the
	// ciphertext delta (positions and op boundaries are visible, §VI-A).
	fmt.Println("without canonicalization: the server-visible delta mirrors the 17-op shape")

	// With the defense, the mediator re-derives the delta from document
	// states: the op count carries zero bits.
	mit := covert.New(covert.Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(1))
	canonical, err := mit.CanonicalDelta(base, malicious)
	if err != nil {
		return err
	}
	fmt.Printf("with canonicalization:    %d op(s): %q\n", len(canonical), canonical.String())

	// Padding and delay: the other two §VI-B channels.
	mit2 := covert.New(covert.Config{PadQuantum: 64}, crypt.NewSeededNonceSource(2))
	sizes := map[int]bool{}
	for i := 0; i < 8; i++ {
		sizes[100+len(mit2.PadFor(100))] = true
	}
	fmt.Printf("message-size channel:     8 identical updates padded to %d distinct sizes\n", len(sizes))
	fmt.Println("timing channel:           updates delayed by a random 0..250ms (see internal/covert)")
	return nil
}
