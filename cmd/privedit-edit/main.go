// Command privedit-edit is an interactive line-oriented editor client that
// talks to a privedit-server through the mediating extension, so every
// byte that leaves the process is encrypted. It plays the role of the
// browser + extension of the paper's Figure 1.
//
// Start a server first:
//
//	privedit-server &
//	privedit-edit -doc notes -password hunter2
//
// Commands:
//
//	:show            print the document
//	:ins <pos> <txt> insert text at position
//	:del <pos> <n>   delete n characters at position
//	:save            save (first save full, then incremental deltas)
//	:cipher          show what the server currently stores
//	:stats           extension statistics
//	:metrics         live telemetry snapshot (Prometheus text)
//	:quit            exit
//
// Any other line is appended to the document. Run with -metrics-dump to
// write the session's full metric catalog on exit, and with -trace-out to
// stream every completed operation trace (load/save/sync span trees,
// including server-side spans when the server traces too) as JSON lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/obs"
	"privedit/internal/trace"
)

func main() {
	base := flag.String("server", "http://127.0.0.1:8747", "privedit-server URL")
	docID := flag.String("doc", "notes", "document id")
	password := flag.String("password", "", "per-document password (required)")
	schemeName := flag.String("scheme", "rpc", "encryption scheme: recb (confidentiality) or rpc (confidentiality+integrity)")
	blockChars := flag.Int("b", core.DefaultBlockChars, "characters per cipher block (1..8)")
	mitigate := flag.Bool("mitigate", false, "enable covert-channel mitigations")
	useStego := flag.Bool("stego", false, "store the document as word prose instead of Base32")
	metricsDump := flag.String("metrics-dump", "", "on exit, write Prometheus text metrics to this path (\"-\" for stdout)")
	resilient := flag.Bool("resilient", false, "enable the retry/backoff + circuit-breaker resilience stack")
	retries := flag.Int("retries", 0, "with -resilient: max attempts per request (0 = default)")
	tryTimeout := flag.Duration("try-timeout", 0, "with -resilient: per-attempt deadline (0 = none)")
	traceOut := flag.String("trace-out", "", "append completed operation traces to this JSONL file (\"-\" for stderr)")
	slowSpan := flag.Duration("slow-span", 0, "enable tracing and log spans slower than this threshold (0 = off)")
	flag.Parse()

	if *metricsDump != "" {
		obs.Enable()
		defer dumpMetrics(*metricsDump)
	}
	if *traceOut != "" {
		trace.Enable()
		jw, err := openTraceOut(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privedit-edit: trace-out: %v\n", err)
			os.Exit(1)
		}
		defer jw.Close()
		defer trace.Default.AddSink(jw.Write)()
	}
	if *slowSpan > 0 {
		trace.Enable()
		trace.Default.SetSlowSpan(*slowSpan, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
	}

	if *password == "" {
		fmt.Fprintln(os.Stderr, "privedit-edit: -password is required (the paper's per-document password dialog)")
		os.Exit(2)
	}
	scheme := core.ConfidentialityIntegrity
	if strings.EqualFold(*schemeName, "recb") {
		scheme = core.ConfidentialityOnly
	}

	var mit *covert.Mitigator
	if *mitigate {
		mit = covert.New(covert.DefaultConfig(), nil)
	}
	opts := core.Options{Scheme: scheme, BlockChars: *blockChars}
	var extOpts []mediator.Option
	if *useStego {
		extOpts = append(extOpts, mediator.WithStego())
	}
	if *resilient {
		res := mediator.DefaultResilience()
		if *retries > 0 {
			res.Retry.MaxAttempts = *retries
		}
		res.Retry.TryTimeout = *tryTimeout
		extOpts = append(extOpts, mediator.WithResilience(res))
	}
	ext := mediator.New(http.DefaultTransport, mediator.StaticPassword(*password, opts), append([]mediator.Option{mediator.WithMitigator(mit)}, extOpts...)...)
	client := gdocs.NewClient(ext.Client(), *base, *docID)

	// Open or create the document.
	if err := client.Load(); err != nil {
		if err := client.Create(); err != nil {
			fmt.Fprintf(os.Stderr, "privedit-edit: cannot load or create %q: %v\n", *docID, err)
			os.Exit(1)
		}
		fmt.Printf("created document %q (%s, b=%d)\n", *docID, scheme, *blockChars)
	} else {
		fmt.Printf("loaded document %q (%d chars)\n", *docID, len(client.Text()))
	}

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		if err := execute(client, ext, line); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
		fmt.Print("> ")
	}
}

var errQuit = fmt.Errorf("quit")

// openTraceOut resolves the -trace-out destination: a file path, or "-"
// for stderr (stdout is the editor's interactive surface). The stderr
// writer is shielded from Close.
func openTraceOut(path string) (*trace.JSONLWriter, error) {
	if path == "-" {
		return trace.NewJSONLWriter(struct{ io.Writer }{os.Stderr}), nil
	}
	return trace.OpenJSONL(path)
}

// dumpMetrics writes the session's metric catalog in Prometheus text
// exposition to path ("-" for stdout).
func dumpMetrics(path string) {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privedit-edit: metrics-dump: %v\n", err)
			return
		}
		defer f.Close()
		out = f
	}
	if err := obs.Default.WritePrometheus(out); err != nil {
		fmt.Fprintf(os.Stderr, "privedit-edit: metrics-dump: %v\n", err)
	}
}

func execute(client *gdocs.Client, ext *mediator.Extension, line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case ":quit", ":q":
		return errQuit
	case ":show":
		fmt.Printf("%q (%d chars)\n", client.Text(), len(client.Text()))
	case ":ins":
		if len(fields) < 3 {
			return fmt.Errorf("usage: :ins <pos> <text>")
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		text := strings.Join(fields[2:], " ")
		return client.Insert(pos, text)
	case ":del":
		if len(fields) != 3 {
			return fmt.Errorf("usage: :del <pos> <n>")
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		return client.Delete(pos, n)
	case ":save":
		pending := client.PendingDelta()
		if err := client.Save(); err != nil {
			return err
		}
		if client.Degraded() {
			fmt.Printf("queued locally (delta %q) — server unreachable, save drains on recovery\n", pending.String())
		} else {
			fmt.Printf("saved (delta %q)\n", pending.String())
		}
	case ":cipher":
		ed := ext.Session(client.DocID()).Editor()
		if ed == nil {
			return fmt.Errorf("no encryption state yet")
		}
		transport := ed.Transport()
		fmt.Printf("server stores %d chars of ciphertext:\n%.120s...\n", len(transport), transport)
	case ":stats":
		fmt.Printf("%+v\n", ext.Stats())
		if ext.Session(client.DocID()).Degraded() {
			fmt.Println("document is in degraded mode (breaker open or saves queued)")
		}
	case ":metrics":
		if !obs.Default.Enabled() {
			obs.Enable() // first use turns collection on mid-session
			fmt.Println("metrics collection enabled (counts start now)")
			return nil
		}
		if err := obs.Default.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	default:
		return client.Insert(len(client.Text()), line+"\n")
	}
	return nil
}
