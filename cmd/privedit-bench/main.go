// Command privedit-bench regenerates every table and figure from §VII of
// "Private Editing Using Untrusted Cloud Services" (Huang & Evans, 2011)
// against this repository's implementation.
//
// Usage:
//
//	privedit-bench -exp all            # everything, paper-scale trials
//	privedit-bench -exp fig4           # one experiment
//	privedit-bench -exp fig5 -trials 5 # quick run
//
// Experiments: fig4, fig5, fig6, fig7, fig8, func, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"privedit/internal/bench"
	"privedit/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|fig8|func|ablation|scaling|all")
	trials := flag.Int("trials", 0, "override trial count (0 = paper-scale defaults)")
	seed := flag.Int64("seed", 2011, "random seed")
	flag.Parse()

	cfg := bench.Config{Trials: *trials, Seed: *seed}
	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "privedit-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg bench.Config) error {
	runners := map[string]func(bench.Config) error{
		"fig4":     runFig4,
		"fig5":     runFig5,
		"fig6":     runFig6,
		"fig7":     runFig7,
		"fig8":     runFig8,
		"func":     runFunc,
		"ablation": runAblation,
		"scaling":  runScaling,
	}
	if exp == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "func", "ablation", "scaling"} {
			if err := runners[name](cfg); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	runner, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return runner(cfg)
}

func runFig4(cfg bench.Config) error {
	for _, scheme := range []core.Scheme{core.ConfidentialityIntegrity, core.ConfidentialityOnly} {
		res, err := bench.Fig4(cfg, scheme)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	return nil
}

func runFig5(cfg bench.Config) error {
	tables, err := bench.Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: macro-benchmark results (performance degradation)")
	for _, t := range tables {
		fmt.Print(t)
	}
	return nil
}

func runFig6(cfg bench.Config) error {
	res, err := bench.Fig6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}

func runFig7(cfg bench.Config) error {
	res, err := bench.Fig7(cfg, core.ConfidentialityOnly)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}

func runFig8(cfg bench.Config) error {
	t, err := bench.Fig8(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 8: macro-benchmark, multi-character incremental encryption")
	fmt.Print(t)
	return nil
}

func runFunc(cfg bench.Config) error {
	res, err := bench.Functionality(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}

func runScaling(cfg bench.Config) error {
	res, err := bench.Scaling(cfg, core.ConfidentialityOnly)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}

func runAblation(cfg bench.Config) error {
	res, err := bench.Ablation(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}
