// Command privedit-bench regenerates every table and figure from §VII of
// "Private Editing Using Untrusted Cloud Services" (Huang & Evans, 2011)
// against this repository's implementation.
//
// Usage:
//
//	privedit-bench -exp all            # everything, paper-scale trials
//	privedit-bench -exp fig4           # one experiment
//	privedit-bench -exp fig5 -trials 5 # quick run
//	privedit-bench -exp all -json out/ # also write out/BENCH_<exp>.json
//
// Experiments: fig4, fig5, fig6, fig7, fig8, func, ablation, scaling, all.
//
// -json writes one machine-readable BENCH_<exp>.json per experiment into
// the given directory, so the performance trajectory can be tracked across
// commits instead of only eyeballed in pretty-printed tables.
// -metrics-dump writes the run's full telemetry catalog (Prometheus text)
// on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"privedit/internal/bench"
	"privedit/internal/core"
	"privedit/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|fig8|func|ablation|scaling|hotpath|all")
	trials := flag.Int("trials", 0, "override trial count (0 = paper-scale defaults)")
	seed := flag.Int64("seed", 2011, "random seed")
	jsonDir := flag.String("json", "", "directory to write BENCH_<exp>.json result files into")
	metricsDump := flag.String("metrics-dump", "", "on exit, write Prometheus text metrics to this path (\"-\" for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()

	if *metricsDump != "" {
		obs.Enable()
	}
	stopProfiles, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-bench:", err)
		os.Exit(1)
	}
	cfg := bench.Config{Trials: *trials, Seed: *seed}
	err = run(*exp, cfg, *jsonDir)
	if *metricsDump != "" {
		if derr := dumpMetrics(*metricsDump); derr != nil && err == nil {
			err = derr
		}
	}
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-bench:", err)
		os.Exit(1)
	}
}

// runner executes one experiment: it pretty-prints the paper-style tables
// to stdout and returns the underlying result values for -json.
type runner func(bench.Config) (any, error)

func run(exp string, cfg bench.Config, jsonDir string) error {
	runners := map[string]runner{
		"fig4":     runFig4,
		"fig5":     runFig5,
		"fig6":     runFig6,
		"fig7":     runFig7,
		"fig8":     runFig8,
		"func":     runFunc,
		"ablation": runAblation,
		"scaling":  runScaling,
		"hotpath":  runHotpath,
	}
	order := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "func", "ablation", "scaling", "hotpath"}
	if exp != "all" {
		if _, ok := runners[exp]; !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		order = []string{exp}
	}
	for i, name := range order {
		result, err := runners[name](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if jsonDir != "" {
			if err := writeJSON(jsonDir, name, cfg, result); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		if i < len(order)-1 {
			fmt.Println()
		}
	}
	return nil
}

// benchRecord is the envelope around one experiment's JSON result.
type benchRecord struct {
	Experiment  string `json:"experiment"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	Trials      int    `json:"trials"` // 0 = paper-scale defaults
	Seed        int64  `json:"seed"`
	Result      any    `json:"result"`
}

func writeJSON(dir, exp string, cfg bench.Config, result any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rec := benchRecord{
		Experiment:  exp,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Trials:      cfg.Trials,
		Seed:        cfg.Seed,
		Result:      result,
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func dumpMetrics(path string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return obs.Default.WritePrometheus(out)
}

func runFig4(cfg bench.Config) (any, error) {
	var results []bench.Fig4Result
	for _, scheme := range []core.Scheme{core.ConfidentialityIntegrity, core.ConfidentialityOnly} {
		res, err := bench.Fig4(cfg, scheme)
		if err != nil {
			return nil, err
		}
		fmt.Print(res)
		results = append(results, res)
	}
	return results, nil
}

func runFig5(cfg bench.Config) (any, error) {
	tables, err := bench.Fig5(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Println("Figure 5: macro-benchmark results (performance degradation)")
	for _, t := range tables {
		fmt.Print(t)
	}
	return tables, nil
}

func runFig6(cfg bench.Config) (any, error) {
	res, err := bench.Fig6(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Print(res)
	return res, nil
}

func runFig7(cfg bench.Config) (any, error) {
	res, err := bench.Fig7(cfg, core.ConfidentialityOnly)
	if err != nil {
		return nil, err
	}
	fmt.Print(res)
	return res, nil
}

func runFig8(cfg bench.Config) (any, error) {
	t, err := bench.Fig8(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Println("Figure 8: macro-benchmark, multi-character incremental encryption")
	fmt.Print(t)
	return t, nil
}

func runFunc(cfg bench.Config) (any, error) {
	res, err := bench.Functionality(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Print(res)
	return res, nil
}

func runScaling(cfg bench.Config) (any, error) {
	res, err := bench.Scaling(cfg, core.ConfidentialityOnly)
	if err != nil {
		return nil, err
	}
	fmt.Print(res)
	return res, nil
}

func runHotpath(cfg bench.Config) (any, error) {
	hc := bench.HotpathConfig{Seed: cfg.Seed}
	if cfg.Trials > 0 {
		hc.Ops = cfg.Trials * 100
	}
	res, err := bench.Hotpath(hc)
	if err != nil {
		return nil, err
	}
	fmt.Print(res)
	return res, nil
}

func runAblation(cfg bench.Config) (any, error) {
	res, err := bench.Ablation(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Print(res)
	return res, nil
}
