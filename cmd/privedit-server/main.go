// Command privedit-server runs the simulated Google Documents service: an
// HTTP server speaking the 2011 update protocol the paper reverse
// engineered (POST /Doc with docContents or delta, GET /Doc, /DocCreate,
// plus the server-side feature endpoints). Point privedit-edit or the
// examples at it.
//
// The server is the *untrusted* party: run with -observe to dump
// everything it sees on exit, demonstrating what a curious provider learns
// (nothing but Base32 ciphertext, when clients use the extension).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"privedit/internal/gdocs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8747", "listen address")
	observe := flag.Bool("observe", false, "record and dump all content the server sees")
	flag.Parse()

	server := gdocs.NewServer()
	if *observe {
		server.EnableObservation()
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           logging(server),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt)
	go func() {
		<-done
		if *observe {
			fmt.Println("\n--- everything this untrusted server saw ---")
			fmt.Println(server.Observed())
		}
		os.Exit(0)
	}()

	log.Printf("privedit-server: simulated Google Documents service on http://%s", *addr)
	log.Printf("privedit-server: endpoints %s %s %s %s %s %s",
		gdocs.PathDoc, gdocs.PathCreate, gdocs.PathTranslate, gdocs.PathSpell, gdocs.PathDrawing, gdocs.PathExport)
	if err := httpServer.ListenAndServe(); err != nil {
		log.Fatalf("privedit-server: %v", err)
	}
}

func logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
