// Command privedit-server runs the simulated Google Documents service: an
// HTTP server speaking the 2011 update protocol the paper reverse
// engineered (POST /Doc with docContents or delta, GET /Doc, /DocCreate,
// plus the server-side feature endpoints). Point privedit-edit or the
// examples at it.
//
// The server is the *untrusted* party: run with -observe to dump
// everything it sees on exit, demonstrating what a curious provider learns
// (nothing but Base32 ciphertext, when clients use the extension).
//
// Telemetry is always on: every request is counted and timed (with a
// request id echoed as X-Request-ID and one structured log line), and
// GET /metrics returns the full metric catalog as Prometheus text
// exposition (?format=json for JSON).
//
// Request tracing is on by default (-trace=false to disable): document
// requests run under a server span joined to any X-Privedit-Trace header
// the mediating extension sent, completed traces land in a bounded flight
// recorder, and GET /debug/traces returns the most recent ones as JSON
// (filterable: ?doc=, ?trace_id=, ?root=, ?min_ms=, ?limit=). Spans slower
// than -slow-span are also logged as they close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/store"
	"privedit/internal/trace"

	// Register the client-side metric families (core, blockdoc, skiplist,
	// mediator, netsim) so /metrics exports the complete catalog even
	// before any in-process tooling touches them.
	_ "privedit/internal/mediator"
	_ "privedit/internal/netsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8747", "listen address")
	observe := flag.Bool("observe", false, "record and dump all content the server sees")
	tracing := flag.Bool("trace", true, "trace document requests and serve /debug/traces")
	traceBuf := flag.Int("trace-buf", 256, "flight recorder capacity, traces")
	slowSpan := flag.Duration("slow-span", 0, "log spans slower than this threshold (0 = off)")
	dataDir := flag.String("data-dir", "", "durable document store directory (empty = in-memory only)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "resident document cache budget in bytes (with -data-dir)")
	rate := flag.Float64("rate", 0, "per-client sustained requests/sec admitted (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget on SIGTERM/SIGINT")
	flag.Parse()

	obs.Enable()

	var opts []gdocs.ServerOption
	var disk *store.Disk
	if *dataDir != "" {
		var err error
		disk, err = store.Open(*dataDir, store.Options{})
		if err != nil {
			log.Fatalf("privedit-server: open store: %v", err)
		}
		rec := disk.Recovery()
		log.Printf("privedit-server: recovered %d docs from %s in %s (snapshot_records=%d wal_records=%d torn_bytes=%d)",
			rec.Docs, *dataDir, rec.Duration.Round(time.Millisecond), rec.SnapshotRecords, rec.WALRecords, rec.TornBytes)
		opts = append(opts, gdocs.WithBackend(disk), gdocs.WithCacheBytes(*cacheBytes))
	}
	if *rate > 0 {
		opts = append(opts, gdocs.WithAdmission(gdocs.AdmissionPolicy{RatePerSec: *rate}))
	}

	server := gdocs.NewServer(opts...)
	if *observe {
		server.EnableObservation()
	}

	// The document endpoints run traced; telemetry and debug endpoints do
	// not (a /metrics scrape is not an edit and would only pollute the
	// flight recorder).
	var docHandler http.Handler = server
	if *tracing {
		trace.Enable()
		docHandler = trace.Middleware(server)
	}
	recorder := trace.NewFlightRecorder(*traceBuf)
	trace.Default.AddSink(recorder.Record)
	if *slowSpan > 0 {
		trace.Enable()
		trace.Default.SetSlowSpan(*slowSpan, log.Printf)
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/debug/traces", recorder.Handler())
	// Profiling endpoints. The custom mux never sees the side-effecting
	// DefaultServeMux registration from importing net/http/pprof, so the
	// handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", docHandler)

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           obs.Middleware(obs.Default, mux, log.Default(), pathLabel),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful drain: on SIGTERM/SIGINT stop admitting new document work
	// (503 + Retry-After so mediators back off and retry the replacement),
	// let in-flight requests finish, flush the WALs, then exit. A kill -9
	// skips all of this — which is exactly what the WAL is for.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		log.Printf("privedit-server: draining (budget %s)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := server.Drain(ctx); err != nil {
			log.Printf("privedit-server: drain: %v", err)
		}
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("privedit-server: shutdown: %v", err)
		}
		if disk != nil {
			if err := disk.Close(); err != nil {
				log.Printf("privedit-server: close store: %v", err)
			}
		}
		if *observe {
			fmt.Println("\n--- everything this untrusted server saw ---")
			fmt.Println(server.Observed())
		}
		os.Exit(0)
	}()

	log.Printf("privedit-server: simulated Google Documents service on http://%s", *addr)
	log.Printf("privedit-server: endpoints %s %s %s %s %s %s, metrics on /metrics",
		gdocs.PathDoc, gdocs.PathCreate, gdocs.PathTranslate, gdocs.PathSpell, gdocs.PathDrawing, gdocs.PathExport)
	if *tracing {
		log.Printf("privedit-server: tracing on, last %d traces on /debug/traces", *traceBuf)
	}
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("privedit-server: %v", err)
	}
	// Graceful shutdown: ListenAndServe returned because the drain
	// goroutine called Shutdown. Park here — that goroutine still has to
	// flush and close the store before it calls os.Exit, and racing it
	// with a return from main would cut the WAL flush short.
	select {}
}

// pathLabel collapses unknown request paths to one label value so a
// scanning client cannot blow up the per-path series cardinality.
func pathLabel(p string) string {
	switch p {
	case gdocs.PathDoc, gdocs.PathCreate, gdocs.PathTranslate,
		gdocs.PathSpell, gdocs.PathDrawing, gdocs.PathExport,
		"/metrics", "/debug/traces":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}
