// Command privedit-server runs the simulated Google Documents service: an
// HTTP server speaking the 2011 update protocol the paper reverse
// engineered (POST /Doc with docContents or delta, GET /Doc, /DocCreate,
// plus the server-side feature endpoints). Point privedit-edit or the
// examples at it.
//
// The server is the *untrusted* party: run with -observe to dump
// everything it sees on exit, demonstrating what a curious provider learns
// (nothing but Base32 ciphertext, when clients use the extension).
//
// Telemetry is always on: every request is counted and timed (with a
// request id echoed as X-Request-ID and one structured log line), and
// GET /metrics returns the full metric catalog as Prometheus text
// exposition (?format=json for JSON).
//
// Request tracing is on by default (-trace=false to disable): document
// requests run under a server span joined to any X-Privedit-Trace header
// the mediating extension sent, completed traces land in a bounded flight
// recorder, and GET /debug/traces returns the most recent ones as JSON
// (filterable: ?doc=, ?trace_id=, ?root=, ?min_ms=, ?limit=). Spans slower
// than -slow-span are also logged as they close.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/trace"

	// Register the client-side metric families (core, blockdoc, skiplist,
	// mediator, netsim) so /metrics exports the complete catalog even
	// before any in-process tooling touches them.
	_ "privedit/internal/mediator"
	_ "privedit/internal/netsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8747", "listen address")
	observe := flag.Bool("observe", false, "record and dump all content the server sees")
	tracing := flag.Bool("trace", true, "trace document requests and serve /debug/traces")
	traceBuf := flag.Int("trace-buf", 256, "flight recorder capacity, traces")
	slowSpan := flag.Duration("slow-span", 0, "log spans slower than this threshold (0 = off)")
	flag.Parse()

	obs.Enable()

	server := gdocs.NewServer()
	if *observe {
		server.EnableObservation()
	}

	// The document endpoints run traced; telemetry and debug endpoints do
	// not (a /metrics scrape is not an edit and would only pollute the
	// flight recorder).
	var docHandler http.Handler = server
	if *tracing {
		trace.Enable()
		docHandler = trace.Middleware(server)
	}
	recorder := trace.NewFlightRecorder(*traceBuf)
	trace.Default.AddSink(recorder.Record)
	if *slowSpan > 0 {
		trace.Enable()
		trace.Default.SetSlowSpan(*slowSpan, log.Printf)
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/debug/traces", recorder.Handler())
	// Profiling endpoints. The custom mux never sees the side-effecting
	// DefaultServeMux registration from importing net/http/pprof, so the
	// handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", docHandler)

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           obs.Middleware(obs.Default, mux, log.Default(), pathLabel),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt)
	go func() {
		<-done
		if *observe {
			fmt.Println("\n--- everything this untrusted server saw ---")
			fmt.Println(server.Observed())
		}
		os.Exit(0)
	}()

	log.Printf("privedit-server: simulated Google Documents service on http://%s", *addr)
	log.Printf("privedit-server: endpoints %s %s %s %s %s %s, metrics on /metrics",
		gdocs.PathDoc, gdocs.PathCreate, gdocs.PathTranslate, gdocs.PathSpell, gdocs.PathDrawing, gdocs.PathExport)
	if *tracing {
		log.Printf("privedit-server: tracing on, last %d traces on /debug/traces", *traceBuf)
	}
	if err := httpServer.ListenAndServe(); err != nil {
		log.Fatalf("privedit-server: %v", err)
	}
}

// pathLabel collapses unknown request paths to one label value so a
// scanning client cannot blow up the per-path series cardinality.
func pathLabel(p string) string {
	switch p {
	case gdocs.PathDoc, gdocs.PathCreate, gdocs.PathTranslate,
		gdocs.PathSpell, gdocs.PathDrawing, gdocs.PathExport,
		"/metrics", "/debug/traces":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}
