// Command privedit-load drives many concurrent encrypted editing sessions
// through one mediating extension against the simulated service, and
// reports sustained throughput and latency quantiles. It is the
// concurrency companion to privedit-bench: where that tool reproduces the
// paper's single-session figures, this one measures how the sharded store,
// the per-document mediator sessions, and the parallel crypto kernels
// behave under contention.
//
// Usage:
//
//	privedit-load                          # 8 sessions, 8 docs, 5 s
//	privedit-load -sessions 32 -docs 8     # 4 sessions per document
//	privedit-load -duration 2s -json BENCH_load.json
//	privedit-load -net-scale 1000          # with scaled netsim delays
//
// The -json artifact also embeds a serial-vs-parallel comparison of the
// whole-document encrypt kernel across document sizes, pinning where the
// parallel path starts to win.
//
// Tracing is on by default: every operation runs under a root span, and
// the artifact gains a per-phase latency breakdown (load/decrypt/diff/
// transform/encrypt/save/retry/resync, p50+p95, split conflict vs clean)
// plus runtime watchdog stats. -trace-out streams every collected trace
// as JSON lines; -trace=false turns all of it off.
//
// Chaos mode (-chaos) switches to the fault-injection harness: sessions
// run a fixed number of ops each (deterministic, see internal/bench
// chaos.go) over a seeded netsim.FaultTransport while the mediator's
// retry/breaker/degraded-mode stack absorbs the damage, then convergence
// is verified per document and the run is written as BENCH_chaos.json:
//
//	privedit-load -chaos -json BENCH_chaos.json
//	privedit-load -chaos -ops 60 -fault-drop 0.1 -fault-5xx 0.08 \
//	    -fault-429 0.04 -fault-timeout 0.04 -fault-corrupt 0.05
//
// Store modes exercise the persistence layer (internal/store):
//
//	privedit-load -store -json BENCH_store.json           # populate/sustain/recover bench
//	privedit-load -store -store-docs 1000000 -cache-bytes 15000000
//	privedit-load -store-soak -duration 60s               # eviction churn + leak gates
//	privedit-load -store-storm -target URL -ack-log f     # crash_recovery.sh write storm
//	privedit-load -verify -target URL -ack-log f          # post-recovery ack audit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"privedit/internal/bench"
	"privedit/internal/core"
	"privedit/internal/netsim"
	"privedit/internal/parallel"
	"privedit/internal/trace"
)

func main() {
	sessions := flag.Int("sessions", 8, "concurrent editing sessions")
	docs := flag.Int("docs", 0, "distinct documents (0 = one per session)")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	docChars := flag.Int("doc-chars", 20_000, "initial document size, characters")
	blockChars := flag.Int("block-chars", core.DefaultBlockChars, "block size b (1..8)")
	schemeName := flag.String("scheme", "rpc", "encryption scheme: recb|rpc")
	workers := flag.Int("workers", 0, "crypto worker bound (0 = GOMAXPROCS)")
	reloadEvery := flag.Int("reload-every", 16, "every n-th op is a full document reload/decrypt (0 = deltas only)")
	netScale := flag.Int("net-scale", 0, "enable netsim Broadband2009 delays divided by this factor (0 = off)")
	inflight := flag.Int("inflight", 0, "pipelined async saves with this in-flight depth (0 = legacy synchronous path)")
	minOpsSec := flag.Float64("min-ops-sec", 0, "fail the run if throughput falls below this floor (0 = no check)")
	maxResyncs := flag.Int("max-conflict-resyncs", -1, "fail the run if conflict-driven full resyncs exceed this (-1 = no check)")
	seed := flag.Int64("seed", 2011, "workload seed")
	jsonPath := flag.String("json", "", "write BENCH_load.json artifact to this path")
	encBench := flag.Bool("enc-bench", true, "include serial-vs-parallel encrypt kernel comparison in -json output")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	tracing := flag.Bool("trace", true, "trace every operation and attribute latency per phase")
	traceOut := flag.String("trace-out", "", "append every collected trace to this JSONL file")
	watchEvery := flag.Duration("watch", 250*time.Millisecond, "runtime watchdog sample interval (0 = off; load harness only)")

	storeBench := flag.Bool("store", false, "run the persistence-layer bench (populate, sustain, recover)")
	storeDocs := flag.Int("store-docs", 0, "store bench: cold population size (0 = default)")
	storeCacheBytes := flag.Int64("cache-bytes", 0, "store bench/soak: resident cache budget, bytes (0 = default)")
	storeOps := flag.Int("store-ops", 0, "store bench: sustained mixed operations (0 = default)")
	storeHot := flag.Int("store-hot", 0, "store bench: hot working-set size (0 = default)")
	storeDir := flag.String("store-dir", "", "store bench: data directory (empty = temp dir)")
	storeSoak := flag.Bool("store-soak", false, "run the eviction-churn soak with goroutine/heap leak gates")
	storeStorm := flag.Bool("store-storm", false, "run the crash-recovery write storm against -target, journaling acks to -ack-log")
	verify := flag.Bool("verify", false, "verify a recovered -target server against the -ack-log journal")
	target := flag.String("target", "http://127.0.0.1:8747", "storm/verify: server base URL")
	ackLog := flag.String("ack-log", "acks.log", "storm/verify: acknowledged-save journal path")

	chaos := flag.Bool("chaos", false, "run the fault-injection chaos harness instead of the load harness")
	ops := flag.Int("ops", 40, "chaos: edit operations per session")
	faultSeed := flag.Int64("fault-seed", 0, "chaos: fault decision seed (0 = -seed)")
	faultDrop := flag.Float64("fault-drop", 0.06, "chaos: request drop probability")
	faultDropResp := flag.Float64("fault-drop-resp", 0.04, "chaos: response drop probability (request still applied)")
	fault5xx := flag.Float64("fault-5xx", 0.05, "chaos: injected HTTP 500 probability")
	fault429 := flag.Float64("fault-429", 0.03, "chaos: injected HTTP 429 probability")
	faultTimeout := flag.Float64("fault-timeout", 0.03, "chaos: injected timeout probability")
	faultCorrupt := flag.Float64("fault-corrupt", 0.02, "chaos: response corruption probability")
	faultJitter := flag.Float64("fault-jitter", 0.05, "chaos: latency jitter spike probability")
	flag.Parse()

	switch {
	case *storeBench:
		runStoreBench(bench.StoreConfig{
			Docs:       *storeDocs,
			DocChars:   *docChars,
			CacheBytes: *storeCacheBytes,
			SustainOps: *storeOps,
			HotDocs:    *storeHot,
			Workers:    *workers,
			Dir:        *storeDir,
			Seed:       *seed,
		}, *jsonPath)
		return
	case *storeSoak:
		runStoreSoak(bench.SoakConfig{
			Duration:   *duration,
			CacheBytes: *storeCacheBytes,
			Workers:    *workers,
			Seed:       *seed,
		})
		return
	case *storeStorm:
		fmt.Printf("privedit-load: write storm against %s, acks journaled to %s\n", *target, *ackLog)
		if err := bench.RunStoreStorm(bench.StormConfig{
			Target:   *target,
			AckLog:   *ackLog,
			Workers:  *sessions,
			DocChars: *docChars,
			Seed:     *seed,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "privedit-load: storm:", err)
			os.Exit(1)
		}
		return
	case *verify:
		checked, err := bench.VerifyAckLog(*target, *ackLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "privedit-load: verify:", err)
			os.Exit(1)
		}
		fmt.Printf("privedit-load: verified %d documents against %s: every acknowledged save survived\n", checked, *ackLog)
		return
	}

	scheme := core.ConfidentialityIntegrity
	switch *schemeName {
	case "rpc":
	case "recb":
		scheme = core.ConfidentialityOnly
	default:
		fmt.Fprintf(os.Stderr, "privedit-load: unknown scheme %q (want recb or rpc)\n", *schemeName)
		os.Exit(2)
	}

	stopProfiles, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load:", err)
		os.Exit(1)
	}
	// Error paths below exit the process directly and forfeit the profiles;
	// a completed run flushes them here.
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "privedit-load:", err)
		}
	}()

	var traceSink func(trace.Trace)
	if *traceOut != "" {
		*tracing = true // -trace-out implies tracing
		jw, err := trace.OpenJSONL(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "privedit-load: trace-out:", err)
			os.Exit(1)
		}
		defer func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "privedit-load: trace-out:", err)
			}
		}()
		traceSink = jw.Write
	}

	if *chaos {
		if *faultSeed == 0 {
			*faultSeed = *seed
		}
		profile := netsim.FaultProfile{
			Seed:             *faultSeed,
			DropRate:         *faultDrop,
			DropResponseRate: *faultDropResp,
			Error5xxRate:     *fault5xx,
			ThrottleRate:     *fault429,
			TimeoutRate:      *faultTimeout,
			CorruptRate:      *faultCorrupt,
			JitterRate:       *faultJitter,
		}
		runChaos(bench.ChaosConfig{
			Sessions:      *sessions,
			OpsPerSession: *ops,
			DocChars:      *docChars,
			Scheme:        scheme,
			BlockChars:    *blockChars,
			Workers:       *workers,
			ReloadEvery:   *reloadEvery,
			Seed:          *seed,
			Fault:         profile,
			Trace:         *tracing,
			TraceSink:     traceSink,
		}, *jsonPath)
		return
	}

	cfg := bench.LoadConfig{
		Sessions:    *sessions,
		Docs:        *docs,
		Duration:    *duration,
		DocChars:    *docChars,
		Scheme:      scheme,
		BlockChars:  *blockChars,
		Workers:     *workers,
		ReloadEvery: *reloadEvery,
		NetScale:    *netScale,
		Inflight:    *inflight,
		Seed:        *seed,
		Trace:       *tracing,
		TraceSink:   traceSink,
	}
	if *tracing {
		cfg.WatchInterval = *watchEvery
	}

	effDocs := *docs
	if effDocs <= 0 {
		effDocs = *sessions
	}
	fmt.Printf("privedit-load: %d sessions on %d docs, %v, %d-char docs, scheme=%s b=%d workers=%d (GOMAXPROCS=%d)\n",
		*sessions, effDocs, *duration, *docChars, scheme, *blockChars,
		parallel.Workers(*workers), runtime.GOMAXPROCS(0))

	// The kernel microbench runs before the load phase so it measures the
	// kernels in a fresh heap: the load phase leaves behind a large live
	// set that inflates the GC goal, and the serial reference kernel —
	// which allocates per block — is flattered most by that quiet-GC
	// window, skewing the comparison run to run.
	var encRows []bench.EncRow
	if *jsonPath != "" && *encBench {
		rows, err := bench.EncKernelBench(scheme, *blockChars, *workers,
			[]int{1_000, 10_000, 100_000, 400_000}, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "privedit-load: enc bench:", err)
			os.Exit(1)
		}
		encRows = rows
	}

	report, err := bench.RunLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load:", err)
		os.Exit(1)
	}

	fmt.Printf("  ops        %d (%.1f reloads, %.1f delta saves/s)\n",
		report.Ops,
		float64(report.Reloads)/report.DurationS,
		float64(report.DeltaSaves)/report.DurationS)
	fmt.Printf("  throughput %.1f ops/s over %.2fs\n", report.OpsPerSec, report.DurationS)
	fmt.Printf("  latency    p50=%.2fms p95=%.2fms p99=%.2fms\n", report.P50Ms, report.P95Ms, report.P99Ms)
	fmt.Printf("  conflicts  %d version conflicts, %d errored ops\n", report.Conflicts, report.Errors)
	fmt.Printf("  mediator   %d sessions, %d full encrypts, %d deltas, %d loads\n",
		report.MediatorSessions, report.MediatorFullEncrypts, report.MediatorDeltas, report.MediatorLoads)
	if *inflight > 0 {
		fmt.Printf("  pipeline   depth=%d, %d queued saves (%d coalesced), %d OT merges, %d conflict resyncs, %d dropped\n",
			report.Inflight, report.QueuedSaves, report.QueueCoalesced,
			report.OTMerges, report.ConflictResyncs, report.DroppedSaves)
	}
	if report.Watch != nil {
		fmt.Printf("  watchdog   %d samples, max %d goroutines, max heap %.1f MiB\n",
			report.Watch.Samples, report.Watch.MaxGoroutines,
			float64(report.Watch.MaxHeapBytes)/(1<<20))
	}
	printPhases(report.Phases)
	if *tracing && (report.Phases == nil || report.Phases.Empty()) {
		// trace-smoke relies on this: a traced run that attributed nothing
		// means the span plumbing regressed somewhere.
		fmt.Fprintln(os.Stderr, "privedit-load: tracing was on but the phase breakdown is empty")
		os.Exit(1)
	}

	// ot-smoke gates: the pipelined save path commits to a throughput floor
	// and to resolving conflicts by transform, not full resync.
	failed := false
	if *minOpsSec > 0 && report.OpsPerSec < *minOpsSec {
		fmt.Fprintf(os.Stderr, "privedit-load: throughput %.1f ops/s is below the %.1f ops/s floor\n",
			report.OpsPerSec, *minOpsSec)
		failed = true
	}
	if *maxResyncs >= 0 && report.ConflictResyncs > *maxResyncs {
		fmt.Fprintf(os.Stderr, "privedit-load: %d conflict resyncs exceed the allowed %d\n",
			report.ConflictResyncs, *maxResyncs)
		failed = true
	}
	if failed {
		os.Exit(1)
	}

	if *jsonPath == "" {
		return
	}
	artifact := bench.LoadArtifact{
		Title:     "Concurrent load: sharded store + parallel crypto kernels",
		Crossover: parallel.MinParallelBlocks,
		Load:      report,
	}
	if encRows != nil {
		artifact.EncBench = encRows
		fmt.Println("  enc kernel serial vs parallel:")
		for _, r := range encRows {
			mode := "serial (below crossover)"
			if r.UsedParallel {
				mode = "parallel"
			}
			fmt.Printf("    %7d chars  serial %8.3fms  parallel %8.3fms  speedup %.2fx  [%s]\n",
				r.Chars, r.SerialMs, r.ParallelMs, r.Speedup, mode)
		}
	}
	out, err := artifact.MarshalIndent()
	if err == nil {
		err = os.WriteFile(*jsonPath, out, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load:", err)
		os.Exit(1)
	}
	fmt.Println("  wrote", *jsonPath)
}

// runChaos executes the chaos harness and optionally writes BENCH_chaos.json.
func runChaos(cfg bench.ChaosConfig, jsonPath string) {
	fmt.Printf("privedit-load: chaos, %d sessions x %d ops, %d-char docs, fault rate %.1f%% (seed %d)\n",
		cfg.Sessions, cfg.OpsPerSession, cfg.DocChars,
		100*cfg.Fault.FailureRate(), cfg.Seed)

	report, err := bench.RunChaos(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load:", err)
		os.Exit(1)
	}

	f := report.Faults
	fmt.Printf("  ops        %d ok, %d errored, %d reloads over %.2fs\n",
		report.Ops, report.OpErrors, report.Reloads, report.DurationS)
	fmt.Printf("  faults     %d/%d requests: %d drops, %d lost responses, %d 5xx, %d 429, %d timeouts, %d corruptions, %d jitter spikes\n",
		f.Injected(), f.Requests, f.Drops, f.DropResponses, f.Errors5xx, f.Throttles, f.Timeouts, f.Corruptions, f.JitterSpikes)
	fmt.Printf("  mediator   %d retries (%d giveups), %d breaker trips, %d degraded saves, %d degraded loads, %d drains\n",
		report.Retries, report.RetryGiveups, report.BreakerTrips,
		report.DegradedSaves, report.DegradedLoads, report.Drains)
	fmt.Printf("  converged  %d/%d docs\n", report.ConvergedDocs, report.ConvergedDocs+report.DivergedDocs)
	printPhases(report.Phases)
	if cfg.Trace && (report.Phases == nil || report.Phases.Empty()) {
		fmt.Fprintln(os.Stderr, "privedit-load: tracing was on but the phase breakdown is empty")
		os.Exit(1)
	}

	if report.DivergedDocs > 0 {
		fmt.Fprintf(os.Stderr, "privedit-load: %d documents diverged after the storm\n", report.DivergedDocs)
		os.Exit(1)
	}
	if jsonPath == "" {
		return
	}
	artifact := bench.ChaosArtifact{
		Title: "Chaos: fault-injecting transport vs resilient mediator",
		Fault: cfg.Fault,
		Chaos: report,
	}
	out, err := artifact.MarshalIndent()
	if err == nil {
		err = os.WriteFile(jsonPath, out, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load:", err)
		os.Exit(1)
	}
	fmt.Println("  wrote", jsonPath)
}

// runStoreBench executes the persistence bench and optionally writes
// BENCH_store.json.
func runStoreBench(cfg bench.StoreConfig, jsonPath string) {
	report, err := bench.RunStore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load: store:", err)
		os.Exit(1)
	}
	fmt.Printf("privedit-load: store bench, %d docs x %d chars, %d-byte cache, hot set %d\n",
		report.Docs, report.DocChars, report.CacheBytes, report.HotDocs)
	fmt.Printf("  populate   %.0f ops/s (%.2fs, bulk-load mode)\n", report.PopulateOpsPerSec, report.PopulateS)
	fmt.Printf("  sustained  %.0f ops/s over %d mixed ops, p50=%.2fms p95=%.2fms p99=%.2fms\n",
		report.SustainedOpsPerSec, report.SustainedOps, report.P50Ms, report.P95Ms, report.P99Ms)
	fmt.Printf("  cache      %.1f%% hit rate (%d hits, %d misses, %d evictions)\n",
		100*report.CacheHitRate, report.CacheHits, report.CacheMisses, report.CacheEvictions)
	fmt.Printf("  recovery   %.3fs for %d docs (%d snapshot + %d WAL records, %d torn bytes)\n",
		report.RecoveryS, report.RecoveredDocs, report.SnapshotRecords, report.WALRecords, report.TornBytes)
	if jsonPath == "" {
		return
	}
	artifact := bench.StoreArtifact{
		Title: "Persistence: WAL + snapshot store under a bounded cache",
		Store: report,
	}
	out, err := artifact.MarshalIndent()
	if err == nil {
		err = os.WriteFile(jsonPath, out, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load:", err)
		os.Exit(1)
	}
	fmt.Println("  wrote", jsonPath)
}

// runStoreSoak executes the nightly eviction-churn soak and fails on
// goroutine or heap growth.
func runStoreSoak(cfg bench.SoakConfig) {
	fmt.Printf("privedit-load: store soak, %v of eviction churn\n", cfg.Duration)
	report, err := bench.RunStoreSoak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privedit-load: soak:", err)
		os.Exit(1)
	}
	fmt.Printf("  churn      %d ops over %.0fs, %d evictions\n", report.Ops, report.DurationS, report.Evictions)
	fmt.Printf("  leak gates goroutines %+d, heap %+d bytes\n", report.GoroutineDelta, report.HeapDeltaBytes)
	if report.Evictions == 0 {
		fmt.Fprintln(os.Stderr, "privedit-load: soak never evicted — the cache budget did not bind, so the churn tested nothing")
		os.Exit(1)
	}
	// Gates: a leaky cache shows up as monotone goroutine or heap growth.
	// Allow slack for runtime noise (timer goroutines, allocator jitter).
	if report.GoroutineDelta > 5 {
		fmt.Fprintf(os.Stderr, "privedit-load: soak leaked %d goroutines\n", report.GoroutineDelta)
		os.Exit(1)
	}
	if report.HeapDeltaBytes > 32<<20 {
		fmt.Fprintf(os.Stderr, "privedit-load: soak grew the live heap by %d bytes\n", report.HeapDeltaBytes)
		os.Exit(1)
	}
}

// printPhases renders the per-phase latency attribution the traced run
// collected: where each operation's time went, clean vs conflicted.
func printPhases(b *bench.PhaseBreakdown) {
	if b == nil || b.Empty() {
		return
	}
	fmt.Printf("  phases     %d ops traced (%d clean, %d conflicted)\n",
		b.Ops, b.CleanOps, b.ConflictOps)
	show := func(kind string, stats []bench.PhaseStat) {
		for _, s := range stats {
			fmt.Printf("    %-8s %-9s n=%-5d p50=%7.3fms  p95=%7.3fms  total=%8.1fms\n",
				kind, s.Phase, s.Count, s.P50Ms, s.P95Ms, s.TotalMs)
		}
	}
	show("clean", b.Clean)
	show("conflict", b.Conflict)
}
