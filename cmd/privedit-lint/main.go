// privedit-lint runs the project's static-analysis suite (internal/lint)
// over the whole module: it loads every package with go/parser + go/types
// and applies the crypto- and concurrency-invariant rules the paper's
// security argument depends on. Exit status: 0 when the tree is clean,
// 1 when any unsuppressed diagnostic is found, 2 on a load/usage error.
//
// Usage:
//
//	privedit-lint [-json] [-rules] [pattern ...]
//
// Patterns are module-relative package paths; "./..." (the default)
// means the whole module. A diagnostic can be acknowledged in source
// with `//lint:ignore RULE reason` on the offending line or the line
// above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"privedit/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	listRules := flag.Bool("rules", false, "list the rules and exit")
	taintStats := flag.Bool("taint", false, "emit taint-analysis statistics as JSON and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: privedit-lint [-json] [-rules] [-taint] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-22s %s\n", lint.DirectiveRule, "malformed //lint:ignore and //taint: directives (not suppressible)")
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	if *taintStats {
		emitTaintStats(m)
		return
	}

	diags := lint.Unsuppressed(m.Run(lint.Analyzers))
	diags = filterPatterns(diags, flag.Args())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "privedit-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// taintBudget is the CI wall-time ceiling for the whole-module taint
// analysis. The -taint output reports the measured time against it and
// the process exits 1 when the budget is blown, so a complexity
// regression in the fixpoint shows up as a red check, not a slow one.
const taintBudget = 30 * time.Second

// emitTaintStats runs only the taint analysis and prints its size and
// cost: analyzed functions, fixpoint passes, findings, the derived
// plaintext-reachable package set, and wall time against taintBudget.
func emitTaintStats(m *lint.Module) {
	start := time.Now()
	res := m.TaintResult()
	elapsed := time.Since(start)

	pkgs := make([]string, 0, len(res.ReachablePkgs))
	for p := range res.ReachablePkgs {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	out := struct {
		Functions     int      `json:"functions"`
		Passes        int      `json:"passes"`
		Findings      int      `json:"findings"`
		ReachablePkgs []string `json:"reachable_pkgs"`
		WallMs        int64    `json:"wall_ms"`
		BudgetMs      int64    `json:"budget_ms"`
		WithinBudget  bool     `json:"within_budget"`
	}{
		Functions:     res.Functions,
		Passes:        res.Passes,
		Findings:      len(res.Findings),
		ReachablePkgs: pkgs,
		WallMs:        elapsed.Milliseconds(),
		BudgetMs:      taintBudget.Milliseconds(),
		WithinBudget:  elapsed <= taintBudget,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if !out.WithinBudget {
		fmt.Fprintf(os.Stderr, "privedit-lint: taint analysis took %v, over the %v budget\n", elapsed, taintBudget)
		os.Exit(1)
	}
}

// filterPatterns keeps diagnostics under the given module-relative path
// prefixes. No patterns, or "./...", means everything.
func filterPatterns(diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	var prefixes []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "." {
			return diags
		}
		p = strings.TrimPrefix(p, "./")
		p = strings.TrimSuffix(p, "/...")
		prefixes = append(prefixes, p)
	}
	if len(prefixes) == 0 {
		return diags
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if d.File == p || strings.HasPrefix(d.File, p+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("privedit-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "privedit-lint: %v\n", err)
	os.Exit(2)
}
