package mediator

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
	"privedit/internal/stego"
)

// decryptStored reads the server's container for docID and decrypts it,
// decoding the stego prose layer first when the session used it.
func decryptStored(t *testing.T, server *gdocs.Server, docID, pw string, stegoOn bool) string {
	t.Helper()
	stored, _, err := server.Content(context.Background(), docID)
	if err != nil {
		t.Fatalf("server content: %v", err)
	}
	if stegoOn {
		transport, err := stego.Decode(stored)
		if err != nil {
			t.Fatalf("stego decode: %v", err)
		}
		stored = transport
	}
	plain, err := core.Decrypt(pw, stored)
	if err != nil {
		t.Fatalf("decrypt stored container: %v", err)
	}
	return plain
}

// pipeWorld is one trial's cast: a server plus three writers, each with
// their own extension (sharing only the password) and client.
type pipeWorld struct {
	server  *gdocs.Server
	ts      *httptest.Server
	exts    [3]*Extension
	clients [3]*gdocs.Client
	gates   [3]*gatedTransport
}

func newPipeWorld(t *testing.T, docID string, seed int64, stegoOn bool, depth int) *pipeWorld {
	t.Helper()
	w := &pipeWorld{server: gdocs.NewServer()}
	w.ts = httptest.NewServer(w.server)
	t.Cleanup(w.ts.Close)
	for i := range w.exts {
		opts := core.Options{
			Scheme:     core.ConfidentialityIntegrity,
			BlockChars: 8,
			Nonces:     crypt.NewSeededNonceSource(uint64(seed) + uint64(i)),
		}
		extOpts := []Option{}
		if stegoOn {
			extOpts = append(extOpts, WithStego())
		}
		if depth > 0 {
			extOpts = append(extOpts, WithPipeline(depth))
		}
		w.gates[i] = &gatedTransport{base: w.ts.Client().Transport}
		w.exts[i] = New(w.gates[i], StaticPassword("fuzz-pw", opts), extOpts...)
		w.clients[i] = gdocs.NewClient(w.exts[i].Client(), w.ts.URL, docID)
	}
	return w
}

// TestPipelineConvergesWithResyncOracle is the property fuzz for the
// OT-first save path: three writers make conflicting edits through
// pipelined extensions (transform-merge on rejected saves), and the
// converged document must be byte-identical to a resync oracle — the
// same edit script pushed through the legacy synchronous path, where
// every conflict is resolved by the client's fetch-merge-retry Sync.
// The matrix covers both codecs and both queue regimes: depth 1 forces
// every burst to coalesce through delta.Compose, depth 8 keeps entries
// distinct so the writer transforms them one by one.
func TestPipelineConvergesWithResyncOracle(t *testing.T) {
	cases := []struct {
		name  string
		stego bool
		depth int
	}{
		{"base32/coalescing", false, 1},
		{"base32/deep-queue", false, 8},
		{"stego/coalescing", true, 1},
		{"stego/deep-queue", true, 8},
	}
	for ci, tc := range cases {
		tc, ci := tc, ci
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				runOracleTrial(t, tc.stego, tc.depth, int64(1000*ci+trial))
			}
		})
	}
}

// writerPools gives each fuzz writer a private pool of characters,
// disjoint from the others and from the base document; every insert
// consumes one FRESH character, so no character ever appears twice in
// the document. That keeps every Myers diff exactly unambiguous, which
// is what makes the two worlds comparable byte-for-byte: with repeated
// characters, an equivalent diff can slide an edit across equal
// neighbours, and transforming equivalent-but-shifted deltas yields
// different — equally valid — merge orders. With all-distinct content,
// any divergence is a genuine transform bug.
var writerPools = [3]string{"abcdefghijkl", "mnopqrstuvwx", "ABCDEFGHIJKL"}

func runOracleTrial(t *testing.T, stegoOn bool, depth int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	docID := fmt.Sprintf("fuzz-doc-%d", seed)
	pipe := newPipeWorld(t, docID, seed, stegoOn, depth)
	oracle := newPipeWorld(t, docID, seed+100, stegoOn, 0) // legacy resync path

	// Seed both worlds with the same base document: every character
	// distinct, sharing nothing with the writers' pools.
	const base = "MNOPQRSTUVWXYZ0123456789#%!?"
	for _, w := range []*pipeWorld{pipe, oracle} {
		if err := w.clients[0].Create(); err != nil {
			t.Fatalf("seed %d: create: %v", seed, err)
		}
		w.clients[0].SetText(base)
		if err := w.clients[0].Save(); err != nil {
			t.Fatalf("seed %d: base save: %v", seed, err)
		}
	}
	flushCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pipe.exts[0].Session(docID).Flush(flushCtx); err != nil {
		t.Fatalf("seed %d: base flush: %v", seed, err)
	}
	for i := 1; i < 3; i++ {
		if err := pipe.clients[i].Load(); err != nil {
			t.Fatalf("seed %d: pipe load %d: %v", seed, i, err)
		}
		if err := oracle.clients[i].Load(); err != nil {
			t.Fatalf("seed %d: oracle load %d: %v", seed, i, err)
		}
	}
	// Quiesce every mediator (Flush also consumes the idle catch-up the
	// loads just requested) so no background repair can reorder the
	// round's deterministic save interleaving.
	for i := range pipe.exts {
		if err := pipe.exts[i].Session(docID).Flush(flushCtx); err != nil {
			t.Fatalf("seed %d: quiesce %d: %v", seed, i, err)
		}
	}

	var tokens [3]int // per-writer unique-token counters
	for round := 0; round < 3; round++ {
		// Every writer edits from its round-start (stale) view, then
		// drains before the next writer drains — the writer order is a
		// random permutation per round, but identical in both worlds, so
		// arrival order at the server is deterministic and both worlds
		// transform against the same interleaved server deltas.
		for _, i := range rng.Perm(3) {
			// Gate the writer's backend for the whole burst: the queue
			// holds every save of the burst when the gate reopens, so the
			// conflict repair rebases the burst's composed net delta in
			// one transform — the same single-shot merge the oracle's
			// Sync computes. (Without the gate the writer races ahead,
			// rebasing a prefix of the burst against the server and the
			// remainder against the repaired lineage; both interleavings
			// converge, but iterated transforms may order position ties
			// differently than the one-shot merge, and the worlds would
			// disagree on adjacent concurrent inserts.)
			pipe.gates[i].close()
			edits := 1 + rng.Intn(3)
			for e := 0; e < edits; e++ {
				txt := pipe.clients[i].Text()
				if otxt := oracle.clients[i].Text(); otxt != txt {
					t.Fatalf("seed %d round %d: worlds diverged before edit: pipe %q oracle %q", seed, round, txt, otxt)
				}
				pos := rng.Intn(len(txt) + 1)
				del := 0
				if pos < len(txt) {
					del = rng.Intn(min(4, len(txt)-pos) + 1)
				}
				ins := string(writerPools[i][tokens[i]])
				tokens[i]++
				if err := pipe.clients[i].Replace(pos, del, ins); err != nil {
					t.Fatalf("seed %d: pipe replace: %v", seed, err)
				}
				// Pipelined saves local-ack instantly and enqueue; at
				// depth 1 every burst beyond the first save coalesces.
				if err := pipe.clients[i].Save(); err != nil {
					t.Fatalf("seed %d: pipe save: %v", seed, err)
				}
				if err := oracle.clients[i].Replace(pos, del, ins); err != nil {
					t.Fatalf("seed %d: oracle replace: %v", seed, err)
				}
			}
			pipe.gates[i].open()
			if err := pipe.exts[i].Session(docID).Flush(flushCtx); err != nil {
				t.Fatalf("seed %d round %d: flush writer %d: %v", seed, round, i, err)
			}
			// The oracle pushes the same burst as one delta; conflicts
			// resolve through the legacy fetch-merge-retry path.
			if err := oracle.clients[i].Sync(); err != nil {
				t.Fatalf("seed %d round %d: oracle sync %d: %v", seed, round, i, err)
			}
		}

		pipeText := convergePipe(t, pipe, docID, stegoOn, seed, round)
		for i := 0; i < 3; i++ {
			if err := oracle.clients[i].Refresh(); err != nil {
				t.Fatalf("seed %d round %d: oracle refresh %d: %v", seed, round, i, err)
			}
		}
		oracleText := oracle.clients[0].Text()
		for i := 1; i < 3; i++ {
			if got := oracle.clients[i].Text(); got != oracleText {
				t.Fatalf("seed %d round %d: oracle clients diverged: %q vs %q", seed, round, got, oracleText)
			}
		}
		if srv := decryptStored(t, oracle.server, docID, "fuzz-pw", stegoOn); srv != oracleText {
			t.Fatalf("seed %d round %d: oracle server %q != clients %q", seed, round, srv, oracleText)
		}
		if pipeText != oracleText {
			t.Fatalf("seed %d round %d: transform-merged text diverged from resync oracle:\n pipe   %q\n oracle %q",
				seed, round, pipeText, oracleText)
		}
	}
}

// convergePipe flushes and refreshes the pipelined world until all three
// clients and the decrypted server container agree, and returns the
// converged text. The idle catch-up that realigns a behind mediator is
// asynchronous, so agreement can take a few refresh passes.
func convergePipe(t *testing.T, w *pipeWorld, docID string, stegoOn bool, seed int64, round int) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for i := range w.clients {
			if err := w.exts[i].Session(docID).Flush(ctx); err != nil {
				t.Fatalf("seed %d round %d: converge flush %d: %v", seed, round, i, err)
			}
			if err := w.clients[i].Refresh(); err != nil {
				t.Fatalf("seed %d round %d: converge refresh %d: %v", seed, round, i, err)
			}
		}
		text := w.clients[0].Text()
		if w.clients[1].Text() == text && w.clients[2].Text() == text &&
			decryptStored(t, w.server, docID, "fuzz-pw", stegoOn) == text {
			// One more quiescing pass: the refreshes above requested idle
			// catch-ups; consume them so the next round's saves cannot race
			// a background repair.
			for i := range w.exts {
				if err := w.exts[i].Session(docID).Flush(ctx); err != nil {
					t.Fatalf("seed %d round %d: quiesce flush %d: %v", seed, round, i, err)
				}
			}
			return text
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d round %d: pipelined world failed to converge: %q / %q / %q / server %q",
				seed, round, w.clients[0].Text(), w.clients[1].Text(), w.clients[2].Text(),
				decryptStored(t, w.server, docID, "fuzz-pw", stegoOn))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// gatedTransport blocks every round trip while the gate is closed,
// simulating a backend that stops answering without erroring.
type gatedTransport struct {
	base http.RoundTripper
	mu   sync.Mutex
	gate chan struct{} // non-nil while closed; receive unblocks
}

func (g *gatedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	ch := g.gate
	g.mu.Unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return g.base.RoundTrip(req)
}

func (g *gatedTransport) close() { g.mu.Lock(); g.gate = make(chan struct{}); g.mu.Unlock() }
func (g *gatedTransport) open() {
	g.mu.Lock()
	ch := g.gate
	g.gate = nil
	g.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// TestSlowBackendNeverBlocksLocalEdits is the queue's liveness property,
// meant for -race runs: with the backend wedged and the pipeline queue at
// max depth, local edits and saves must keep completing immediately (new
// saves coalesce into the queue tail instead of waiting for a slot), and
// once the backend recovers everything drains and converges.
func TestSlowBackendNeverBlocksLocalEdits(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()
	gated := &gatedTransport{base: ts.Client().Transport}

	const depth = 2
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8, Nonces: crypt.NewSeededNonceSource(777)}
	ext := New(gated, StaticPassword("slow-pw", opts), WithPipeline(depth))
	client := gdocs.NewClient(ext.Client(), ts.URL, "slow-doc")

	if err := client.Create(); err != nil {
		t.Fatalf("create: %v", err)
	}
	client.SetText("base text for the slow backend liveness test")
	if err := client.Save(); err != nil {
		t.Fatalf("base save: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := ext.Session("slow-doc").Flush(ctx); err != nil {
		t.Fatalf("base flush: %v", err)
	}

	// Wedge the backend, then hammer local edits. Every save must return
	// promptly even though nothing can reach the server: the first fills
	// the in-flight slot, the next fill the queue, and the rest coalesce.
	gated.close()
	const edits = 150
	start := time.Now()
	var worst time.Duration
	for i := 0; i < edits; i++ {
		if err := client.Insert(0, fmt.Sprintf("e%d.", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		s0 := time.Now()
		if err := client.Save(); err != nil {
			t.Fatalf("save %d with backend wedged: %v", i, err)
		}
		if d := time.Since(s0); d > worst {
			worst = d
		}
	}
	elapsed := time.Since(start)
	// Generous bounds: a single blocked round trip would alone exceed
	// these, so any lock held across the network shows up immediately.
	if worst > 2*time.Second {
		t.Errorf("slowest local save took %v with the backend wedged; the queue is blocking edits", worst)
	}
	if elapsed > 10*time.Second {
		t.Errorf("%d local saves took %v with the backend wedged", edits, elapsed)
	}
	st := ext.Session("slow-doc").Stats()
	if st.Pending > depth {
		t.Errorf("queue depth %d exceeds configured max %d", st.Pending, depth)
	}
	if st.Coalesced == 0 {
		t.Errorf("expected saves beyond depth %d to coalesce, stats = %+v", depth, st)
	}
	if !ext.Session("slow-doc").Degraded() {
		t.Error("session not degraded while backend wedged with a full queue")
	}

	// Recovery: open the gate, drain, and prove byte convergence.
	want := client.Text()
	gated.open()
	if err := ext.Session("slow-doc").Flush(ctx); err != nil {
		t.Fatalf("drain flush: %v", err)
	}
	if got := decryptStored(t, server, "slow-doc", "slow-pw", false); got != want {
		t.Errorf("server text after drain = %q, want %q", got, want)
	}
	if err := client.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if client.Text() != want {
		t.Errorf("client text after drain = %q, want %q", client.Text(), want)
	}
}
