package mediator

import (
	"errors"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
)

// failingProvider models a user cancelling the password dialog.
func failingProvider(string) (string, core.Options, error) {
	return "", core.Options{}, errors.New("user cancelled password dialog")
}

func TestPasswordProviderErrorBlocksEverything(t *testing.T) {
	h := newHarness(t, core.ConfidentialityOnly, nil)
	ext := New(h.ts.Client().Transport, failingProvider)
	client := gdocs.NewClient(ext.Client(), h.ts.URL, "doc")
	if err := client.Create(); !errors.Is(err, gdocs.ErrBlocked) {
		t.Errorf("Create = %v, want ErrBlocked", err)
	}
	client.SetText("x")
	if err := client.Save(); err == nil {
		t.Error("Save with failing provider accepted")
	}
}

func TestDeltaForUnknownDocumentBlocked(t *testing.T) {
	// A delta save for a document the extension has no state for must be
	// blocked, never forwarded (it would be plaintext).
	h := newHarness(t, core.ConfidentialityOnly, nil)
	form := url.Values{
		gdocs.FieldDocID: {"never-seen"},
		gdocs.FieldDelta: {"+secret plaintext"},
	}
	resp, err := h.ext.Client().Post(h.ts.URL+gdocs.PathDoc,
		"application/x-www-form-urlencoded", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
	if strings.Contains(h.server.Observed(), "secret plaintext") {
		t.Error("plaintext delta reached the server")
	}
}

func TestMalformedUpdateBodiesBlocked(t *testing.T) {
	h := newHarness(t, core.ConfidentialityOnly, nil)
	cases := []string{
		"%zz=bad-url-encoding",
		gdocs.FieldDocID + "=d", // neither docContents nor delta
		gdocs.FieldDocID + "=d&" + gdocs.FieldDelta + "=%2Abogus",
	}
	for _, body := range cases {
		resp, err := h.ext.Client().Post(h.ts.URL+gdocs.PathDoc,
			"application/x-www-form-urlencoded", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("body %q: status %d, want 403", body, resp.StatusCode)
		}
	}
}

func TestServerErrorsPassThrough(t *testing.T) {
	// Conflicts and not-found from the server must reach the client
	// unmodified (they carry no content to decrypt).
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	client := gdocs.NewClient(h.ext.Client(), h.ts.URL, "missing-doc")
	if err := client.Load(); !errors.Is(err, gdocs.ErrNotFound) {
		t.Errorf("load missing = %v, want ErrNotFound", err)
	}
}

func TestNonDocPathsNeverReachNetwork(t *testing.T) {
	// Even with a dead base transport, blocked requests must not error:
	// they are synthesized locally without touching the network.
	deadTransport := roundTripperFunc(func(*http.Request) (*http.Response, error) {
		return nil, errors.New("network must not be touched")
	})
	opts := core.Options{Scheme: core.ConfidentialityOnly, Nonces: crypt.NewSeededNonceSource(1)}
	ext := New(deadTransport, StaticPassword("pw", opts))
	resp, err := ext.Client().Get("http://example.com/Translate")
	if err != nil {
		t.Fatalf("blocked request errored: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestNetworkFailurePropagates(t *testing.T) {
	deadTransport := roundTripperFunc(func(*http.Request) (*http.Response, error) {
		return nil, errors.New("connection refused")
	})
	opts := core.Options{Scheme: core.ConfidentialityOnly, Nonces: crypt.NewSeededNonceSource(2)}
	ext := New(deadTransport, StaticPassword("pw", opts))
	client := gdocs.NewClient(ext.Client(), "http://example.com", "doc")
	if err := client.Create(); err == nil {
		t.Error("network failure swallowed")
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(t, core.ConfidentialityOnly, nil)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("twelve chars")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	st := h.ext.Stats()
	if st.PlainBytesIn != 12 {
		t.Errorf("PlainBytesIn = %d, want 12", st.PlainBytesIn)
	}
	if st.CipherBytesOut <= st.PlainBytesIn {
		t.Errorf("CipherBytesOut = %d, want > plaintext (blowup)", st.CipherBytesOut)
	}
	if st.Passed != 1 { // the create
		t.Errorf("Passed = %d, want 1", st.Passed)
	}
}
