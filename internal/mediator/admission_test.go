package mediator

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
)

// admissionGate rejects the next N requests the way the gdocs admission
// controller does — 429 plus the retryable marker and a Retry-After hint —
// and passes everything else through to the real server.
type admissionGate struct {
	base http.RoundTripper

	mu         sync.Mutex
	rejectNext int
	retryAfter string // Retry-After header value; "" omits the header
	rejects    int
}

func (g *admissionGate) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	reject := g.rejectNext > 0
	if reject {
		g.rejectNext--
		g.rejects++
	}
	ra := g.retryAfter
	g.mu.Unlock()
	if reject {
		resp := synthesize(req, http.StatusTooManyRequests, "admission reject")
		resp.Header.Set(gdocs.HeaderRetryable, "1")
		if ra != "" {
			resp.Header.Set("Retry-After", ra)
		}
		return resp, nil
	}
	return g.base.RoundTrip(req)
}

func TestAdmissionRejectParsing(t *testing.T) {
	if _, ok := admissionReject(nil); ok {
		t.Fatal("nil response classified as admission reject")
	}
	plain := &http.Response{Header: http.Header{}}
	if _, ok := admissionReject(plain); ok {
		t.Fatal("response without retryable marker classified as admission reject")
	}
	marked := &http.Response{Header: http.Header{}}
	marked.Header.Set(gdocs.HeaderRetryable, "1")
	hint, ok := admissionReject(marked)
	if !ok || hint != 0 {
		t.Fatalf("marked response without Retry-After: hint=%v ok=%v, want 0 true", hint, ok)
	}
	marked.Header.Set("Retry-After", "garbage")
	if hint, ok = admissionReject(marked); !ok || hint != 0 {
		t.Fatalf("unparseable Retry-After: hint=%v ok=%v, want 0 true", hint, ok)
	}
	marked.Header.Set("Retry-After", "-3")
	if hint, ok = admissionReject(marked); !ok || hint != 0 {
		t.Fatalf("negative Retry-After: hint=%v ok=%v, want 0 true", hint, ok)
	}
	marked.Header.Set("Retry-After", "2")
	if hint, ok = admissionReject(marked); !ok || hint != 2*time.Second {
		t.Fatalf("Retry-After 2: hint=%v ok=%v, want 2s true", hint, ok)
	}
}

// TestAdmissionRetryHonored drives a save into a gate that throttles the
// first attempts. The retry loop must classify the 429 as an admission
// reject, count it, and still land the save once the gate admits it.
func TestAdmissionRetryHonored(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	gate := &admissionGate{base: ts.Client().Transport, retryAfter: "1"}
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(99),
	}
	ext := New(ts.Client().Transport, StaticPassword("hunter2", opts))
	client := gdocs.NewClient(ext.Client(), ts.URL, "admission-doc")
	if err := client.Create(); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Rebuild the extension over the gate with a fast retry policy; the
	// document state carries over because the server holds it.
	ext = New(gate, StaticPassword("hunter2", opts),
		WithResilience(Resilience{Retry: fastRetry(4)}))
	client = gdocs.NewClient(ext.Client(), ts.URL, "admission-doc")
	if err := client.Load(); err != nil {
		t.Fatalf("load before throttling: %v", err)
	}
	gate.mu.Lock()
	gate.rejectNext = 2
	gate.mu.Unlock()
	client.SetText("admitted eventually")
	if err := client.Save(); err != nil {
		t.Fatalf("save through admission gate: %v", err)
	}
	if got := ext.Stats().AdmissionRetries; got < 2 {
		t.Errorf("AdmissionRetries = %d, want >= 2", got)
	}
	if err := client.Load(); err != nil {
		t.Fatalf("load after admitted save: %v", err)
	}
	if text := client.Text(); text != "admitted eventually" {
		t.Fatalf("load after admitted save: %q", text)
	}
}

// TestAdmissionRetriesExhausted: a gate that never admits must surface the
// 429 to the caller after the policy's attempts run out.
func TestAdmissionRetriesExhausted(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	gate := &admissionGate{base: ts.Client().Transport, rejectNext: 1 << 20}
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(100),
	}
	ext := New(gate, StaticPassword("hunter2", opts),
		WithResilience(Resilience{Retry: fastRetry(3)}))
	client := gdocs.NewClient(ext.Client(), ts.URL, "throttled-doc")
	if err := client.Create(); err == nil {
		t.Fatal("create through a closed admission gate succeeded")
	}
	if got := ext.Stats().AdmissionRetries; got == 0 {
		t.Error("AdmissionRetries = 0 after exhausted retries")
	}
}

// TestSessionHandle exercises the Session handle surface end to end:
// DocID, Editor/Degraded/Stats before and after traffic, Flush, Close,
// and the deprecated Extension-level accessors they replace.
func TestSessionHandle(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(7),
	}
	ext := New(ts.Client().Transport, StaticPassword("hunter2", opts))

	s := ext.Session("handle-doc")
	if s.DocID() != "handle-doc" {
		t.Fatalf("DocID = %q", s.DocID())
	}
	// Before any traffic: lazily created, so everything reads empty.
	if s.Editor() != nil {
		t.Error("Editor non-nil before first mediated request")
	}
	if s.Degraded() {
		t.Error("Degraded true before first mediated request")
	}
	if st := s.Stats(); st.Degraded || st.Pending != 0 {
		t.Errorf("Stats before traffic = %+v", st)
	}
	if n := ext.SessionCount(); n != 0 {
		t.Fatalf("SessionCount = %d before traffic", n)
	}

	client := gdocs.NewClient(ext.Client(), ts.URL, "handle-doc")
	if err := client.Create(); err != nil {
		t.Fatalf("create: %v", err)
	}
	client.SetText("session state")
	if err := client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	if s.Editor() == nil {
		t.Error("Editor nil after mediated save")
	}
	if ext.Editor("handle-doc") == nil { // deprecated path
		t.Error("Extension.Editor nil after mediated save")
	}
	if s.Degraded() || ext.Degraded("handle-doc") {
		t.Error("healthy session reported degraded")
	}
	if n := ext.SessionCount(); n != 1 {
		t.Errorf("SessionCount = %d, want 1", n)
	}
	if n := ext.Sessions(); n != 1 { // deprecated alias
		t.Errorf("Sessions() = %d, want 1", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := ext.SessionCount(); n != 0 {
		t.Errorf("SessionCount = %d after Close", n)
	}
	// Closing an already-closed (or never-opened) session is a no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestNewWithMitigator covers the deprecated positional constructor, with
// and without a mitigator.
func TestNewWithMitigator(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(11),
	}
	mit := covert.New(covert.Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(12))
	for name, m := range map[string]*covert.Mitigator{"nil": nil, "set": mit} {
		ext := NewWithMitigator(ts.Client().Transport, StaticPassword("hunter2", opts), m)
		client := gdocs.NewClient(ext.Client(), ts.URL, "mitigated-"+name)
		if err := client.Create(); err != nil {
			t.Fatalf("%s: create: %v", name, err)
		}
		client.SetText("covert-checked")
		if err := client.Save(); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		if err := client.Load(); err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if text := client.Text(); text != "covert-checked" {
			t.Fatalf("%s: load: %q", name, text)
		}
	}
}
