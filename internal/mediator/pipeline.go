// Pipelined asynchronous saves (WithPipeline): the OT-first redesign of
// the save path.
//
// The legacy path holds the session lock across the whole round trip and
// resolves every server-side version conflict by refetching and
// re-opening the container — under concurrent sessions that meant 41% of
// operations paid a full resync. This path decouples the client from the
// server instead:
//
//   - Saves are validated against a mediator-owned version (sv), applied
//     to the local plaintext view, acknowledged immediately, and pushed
//     onto a per-document ordered queue.
//   - One writer goroutine per document drains the queue: it transforms
//     the head entry into a ciphertext delta against the shadow editor
//     (which tracks the server's acked lineage), sends it with an
//     idempotency token, and advances the server-state mirrors on ack.
//   - A rejected save (version conflict) is repaired by fetching the
//     server's missed deltas (GET /Doc?since=V), replaying them onto the
//     server-space mirror, re-opening the shadow from it, and rebasing
//     the whole queue over the remote diff with delta.Transform — the
//     inclusion transformation whose TP1 property the delta package
//     verifies. Only when that bridge fails does the writer fall back to
//     the legacy full resync.
//
// Operational transformation over ciphertext deltas directly would be
// unsound — a ciphertext delta rewrites the container's prefix and
// trailer regions, so transforming two of them against each other
// duplicates both rewrites. All OT here happens on plaintext; ciphertext
// is regenerated from the shadow editor after every rebase.
package mediator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"privedit/internal/delta"
	"privedit/internal/diff"
	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/stego"
	"privedit/internal/trace"
)

// metricVersionConflicts joins the gdocs server's conflict series: in
// pipelined mode the mediator rejects stale-version saves locally, so its
// rejections must count in the same place the harness reads.
var metricVersionConflicts = obs.NewCounter("privedit_version_conflicts_total",
	"Optimistic-concurrency rejections: the client's base version no longer matched the stored one.")

// plEntry is one queued save. before/after are the plaintext on either
// side of the save; p is the plaintext delta between them (nil for a
// full-content save establishing a brand-new document's lineage). The
// wire/sent* fields cache the transformed ciphertext so a retry after an
// infrastructure failure re-sends the identical bytes under the same
// idempotency token.
type plEntry struct {
	full   bool
	before string
	after  string
	p      delta.Delta

	id string // idempotency token (HeaderSaveID)
	//taint:clean ciphertext delta (or full container when full)
	wire string
	//taint:clean server-space ciphertext mirror after this save applies
	sentTransport string
	sentPlain     string // shadow plaintext after this save applies
}

// plState is the pipelined half of a session, guarded by session.mu.
type plState struct {
	baseURL *url.URL // scheme+host of the backing server

	plain string // the client-facing plaintext view
	sv    int    // mediator-owned version the client sees

	// Server-acked lineage: what the server durably holds. Only the
	// writer goroutine (and the idle catch-up, which runs only when the
	// queue is empty) advance these.
	srvPlain string
	//taint:clean post-stego container bytes as stored
	srvTransport string
	srvVersion   int

	queue    []*plEntry
	inflight bool // head entry is currently being sent
	rejects  int  // consecutive permanent (non-conflict) rejections
	closed   bool
	catchup  bool   // an idle load asked the writer to fold in server changes
	seq      uint64 // save-id counter

	// hist mirrors the server's catch-up protocol in version space sv: the
	// plaintext delta behind each recent version bump, so a client whose
	// save was rejected can transform over exactly what it missed instead
	// of re-diffing the whole document. Entries are contiguous and end at
	// sv; any bump without a recordable delta clears the ring.
	hist      []plHist
	histBytes int

	wake chan struct{}   // buffered(1): kicks the writer
	idle []chan struct{} // Flush waiters, closed when the queue drains

	stats SessionStats
}

// plHist is one catch-up ring entry: the wire delta that took the local
// view to version v.
type plHist struct {
	v int
	//taint:clean ciphertext wire delta
	wire string
}

const (
	maxPlHistEntries = 4096
	maxPlHistBytes   = 1 << 20

	// maxCoalescedOps bounds how fragmented a coalesced queue entry's
	// delta may grow before the entry snapshots to a full-content save.
	maxCoalescedOps = 512
)

// recordHistLocked appends the delta behind the bump to pl.sv, evicting
// from the front under the ring's caps. Callers hold sess.mu.
func (pl *plState) recordHistLocked(wire string) {
	pl.hist = append(pl.hist, plHist{v: pl.sv, wire: wire})
	pl.histBytes += len(wire)
	for len(pl.hist) > maxPlHistEntries || pl.histBytes > maxPlHistBytes {
		pl.histBytes -= len(pl.hist[0].wire)
		pl.hist = pl.hist[1:]
	}
}

// clearHistLocked forgets the ring after a version bump with no single
// recordable delta (full-save lineage reset). Callers hold sess.mu.
func (pl *plState) clearHistLocked() {
	pl.hist, pl.histBytes = nil, 0
}

// deltasSinceLocked returns the wire deltas taking version since to sv,
// or ok=false when the ring no longer covers the span. Callers hold
// sess.mu.
func (pl *plState) deltasSinceLocked(since int) (deltas []string, ok bool) {
	if since == pl.sv {
		return nil, true
	}
	if since > pl.sv || len(pl.hist) == 0 || since < pl.hist[0].v-1 {
		return nil, false
	}
	out := make([]string, 0, pl.sv-since)
	for _, h := range pl.hist {
		if h.v > since {
			out = append(out, h.wire)
		}
	}
	if len(out) != pl.sv-since {
		return nil, false
	}
	return out, true
}

// SessionStats is the per-document view of the pipeline counters,
// returned by Session.Stats.
type SessionStats struct {
	Pending         int  // saves currently queued (including in flight)
	Enqueued        int  // saves accepted into the queue
	Coalesced       int  // saves folded into the queue tail at max depth
	Saved           int  // queue entries acknowledged by the server
	OTMerges        int  // conflicts repaired by transforming the queue
	ConflictResyncs int  // conflicts that fell back to a full resync
	Dropped         int  // queue entries abandoned after repeated rejection
	Degraded        bool // breaker open or saves still queued
	LocalVersion    int  // version the client sees (sv)
	ServerVersion   int  // last server-acknowledged version
}

// nextSaveIDLocked mints a save idempotency token: a random
// per-extension prefix plus a per-document sequence number.
func (e *Extension) nextSaveIDLocked(pl *plState) string {
	pl.seq++
	return fmt.Sprintf("%016x-%d", e.saveToken, pl.seq)
}

// pipeBootstrapLocked installs pipelined state for a session whose server
// lineage is known (mirror at version), and starts its writer goroutine.
// Callers hold sess.mu.
func (e *Extension) pipeBootstrapLocked(sess *session, docID string, u *url.URL, mirror, plain string, version int) {
	base := *u
	base.Path = ""
	base.RawQuery = ""
	sess.pl = &plState{
		baseURL:      &base,
		plain:        plain,
		sv:           version,
		srvPlain:     plain,
		srvTransport: mirror,
		srvVersion:   version,
		wake:         make(chan struct{}, 1),
	}
	go e.writerLoop(sess, docID)
}

// pipeBootstrapFetchLocked bootstraps a session from the server's current
// state: fetch, decode, open the shadow editor, install plState. Callers
// hold sess.mu.
func (e *Extension) pipeBootstrapFetchLocked(sess *session, docID string, req *http.Request) error {
	lctx, lsp := trace.Start(req.Context(), trace.SpanLoad)
	defer lsp.End()
	u := *req.URL
	u.Path = gdocs.PathDoc
	u.RawQuery = url.Values{gdocs.FieldDocID: {docID}}.Encode()
	resp, err := e.sendResilient(lctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	})
	e.recordLocked(lctx, sess, !infraFailure(resp, err))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("mediator: bootstrap fetch: status %d", resp.StatusCode)
	}
	version, _ := strconv.Atoi(resp.Header.Get(gdocs.HeaderDocVersion))
	mirror := string(raw)
	transport := mirror
	if e.useStego && transport != "" {
		if transport, err = stego.Decode(transport); err != nil {
			return err
		}
	}
	var plain string
	if transport != "" {
		_, dsp := trace.Start(lctx, trace.SpanDecrypt)
		sp := metricDecryptLatency.Start()
		ed, err := e.openEditorLocked(sess, docID, transport)
		if err != nil {
			dsp.End()
			return err
		}
		sp.End()
		dsp.End()
		plain = ed.Plaintext()
		e.bump(func(s *Stats) { s.LoadsDecrypted++ })
		metricOpLoad.Inc()
	} else {
		// Empty document: fresh encryption state for the first save.
		if _, err := e.editorLocked(sess, docID); err != nil {
			return err
		}
	}
	e.pipeBootstrapLocked(sess, docID, req.URL, mirror, plain, version)
	return nil
}

// pipeUpdate is the pipelined save ingest: validate against the
// mediator-owned version, apply to the local view, enqueue, acknowledge —
// all without touching the network.
func (e *Extension) pipeUpdate(req *http.Request, op *trace.Span, form url.Values, docID string) (*http.Response, error) {
	sess := e.sessionFor(docID)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.pl == nil {
		if err := e.pipeBootstrapFetchLocked(sess, docID, req); err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
		}
	}
	pl := sess.pl
	version, hasVersion := -1, form.Has(gdocs.FieldVersion)
	if hasVersion {
		version, _ = strconv.Atoi(form.Get(gdocs.FieldVersion))
	}
	degraded := e.res != nil && sess.brk.state == brkOpen

	_, qsp := trace.Start(req.Context(), trace.SpanEnqueue)
	defer qsp.End()

	var ent *plEntry
	switch {
	case form.Has(gdocs.FieldDocContents):
		content := form.Get(gdocs.FieldDocContents)
		if hasVersion && version != pl.sv {
			op.Annotate("conflict", "local")
			metricVersionConflicts.Inc()
			return synthesize(req, http.StatusConflict, "privedit: version conflict"), nil
		}
		if content == pl.plain && (pl.srvTransport != "" || pl.sv > 0 || len(pl.queue) > 0) {
			// No-op full save against established lineage: acknowledge the
			// current version without queueing (a bump here would make the
			// client's next delta conflict spuriously).
			return e.pipeAck(req, pl, degraded), nil
		}
		if pl.srvTransport == "" && len(pl.queue) == 0 {
			// Brand-new document: the first save must carry the full
			// container to establish the server-side lineage.
			ent = &plEntry{full: true, before: pl.plain, after: content}
		} else {
			ent = &plEntry{p: diff.Diff(pl.plain, content), before: pl.plain, after: content}
		}
		e.bump(func(s *Stats) { s.PlainBytesIn += len(content) })
		pl.plain = content

	case form.Has(gdocs.FieldDelta):
		wire := form.Get(gdocs.FieldDelta)
		if hasVersion && version != pl.sv {
			op.Annotate("conflict", "local")
			metricVersionConflicts.Inc()
			return synthesize(req, http.StatusConflict, "privedit: version conflict"), nil
		}
		pd, err := delta.Parse(wire)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: bad delta: "+err.Error()), nil
		}
		if before := len(pd); before > 1 {
			pd = pd.Coalesce()
			if dropped := before - len(pd); dropped > 0 {
				metricDeltaOpsCoalesced.Add(int64(dropped))
			}
		}
		if e.mitigator != nil {
			pd, err = e.mitigator.CanonicalDelta(pl.plain, pd)
			if err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: canonicalize: "+err.Error()), nil
			}
		}
		after, err := pd.Apply(pl.plain)
		if err != nil {
			// Version matched but the delta does not fit the view it
			// claims to target: surface it as a conflict so the client's
			// recovery machinery reloads.
			op.Annotate("conflict", "apply")
			metricVersionConflicts.Inc()
			return synthesize(req, http.StatusConflict, "privedit: delta does not apply: "+err.Error()), nil
		}
		ent = &plEntry{p: pd, before: pl.plain, after: after}
		e.bump(func(s *Stats) { s.PlainBytesIn += len(wire) })
		pl.plain = after

	default:
		e.bump(func(s *Stats) { s.Blocked++ })
		metricOpBlocked.Inc()
		return synthesize(req, http.StatusForbidden, "privedit: unrecognized update"), nil
	}

	pl.sv++
	if ent.p != nil {
		pl.recordHistLocked(ent.p.String())
	} else {
		pl.clearHistLocked()
	}
	e.enqueueLocked(sess, ent)
	e.bump(func(s *Stats) {
		s.QueuedSaves++
		if degraded {
			s.DegradedSaves++
		}
	})
	metricOpQueued.Inc()
	if degraded {
		metricDegradedSave.Inc()
	}
	return e.pipeAck(req, pl, degraded), nil
}

// pipeAck synthesizes the local save acknowledgment.
func (e *Extension) pipeAck(req *http.Request, pl *plState, degraded bool) *http.Response {
	resp := synthesize(req, http.StatusOK, gdocs.Ack{Version: pl.sv}.Encode())
	if degraded {
		resp.Header.Set(gdocs.HeaderDegraded, "1")
	}
	return resp
}

// enqueueLocked appends a save to the pipeline queue, coalescing into the
// tail once the queue is at the configured depth — local editing never
// blocks on queue space. Callers hold sess.mu.
func (e *Extension) enqueueLocked(sess *session, ent *plEntry) {
	pl := sess.pl
	ent.id = e.nextSaveIDLocked(pl)
	if len(pl.queue) >= e.pipeDepth {
		ti := len(pl.queue) - 1
		if ti > 0 || !pl.inflight {
			// The tail is not the in-flight head: fold the new save into
			// it. The merged entry gets the new save's identity — any
			// cached transform of the old tail is discarded, and a shadow
			// that had advanced past it re-aligns from the mirror.
			t := pl.queue[ti]
			if !t.full {
				// The two deltas are consecutive (t.p ends where ent.p
				// begins), so composition chains them in O(ops) — re-diffing
				// the documents here would put a Myers run on every coalesce.
				q, err := delta.Compose(t.p, ent.p, len(t.before))
				if err != nil {
					q = diff.Diff(t.before, ent.after)
				}
				if len(q) > maxCoalescedOps {
					// A long run of edits composed into a heavily fragmented
					// delta: past this point a whole-document save is cheaper
					// to encrypt and to transform than the delta itself — the
					// classic delta-versus-snapshot crossover.
					t.full, t.p = true, nil
				} else {
					t.p = q
				}
			}
			t.after = ent.after
			t.id = ent.id
			t.wire, t.sentTransport, t.sentPlain = "", "", ""
			pl.stats.Coalesced++
			e.bump(func(s *Stats) { s.QueueCoalesced++ })
			metricQueueCoalesced.Inc()
			return
		}
		// depth 1 with the head in flight: briefly exceed the bound
		// rather than stall the editor or corrupt an in-flight send.
	}
	pl.queue = append(pl.queue, ent)
	pl.stats.Enqueued++
	e.bump(func(s *Stats) { s.QueueDepth++ })
	metricQueueDepth.Add(1)
	select {
	case pl.wake <- struct{}{}:
	default:
	}
}

// pipeLoad serves a document load from the pipelined view. The local
// plaintext is authoritative — it already folds every queued save — so
// the response never waits on the network. On a quiet session the writer
// goroutine is nudged to fetch and fold in whatever other extensions
// wrote meanwhile, which a later load observes; holding a round trip
// under the session lock here is exactly the stall the pipeline exists
// to remove.
func (e *Extension) pipeLoad(req *http.Request, op *trace.Span, docID string) (*http.Response, error) {
	sess := e.sessionFor(docID)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.pl == nil {
		if err := e.pipeBootstrapFetchLocked(sess, docID, req); err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
		}
	}
	pl := sess.pl
	degraded := e.res != nil && sess.brk.state != brkClosed
	if len(pl.queue) == 0 && !pl.inflight && !degraded {
		pl.catchup = true
		select {
		case pl.wake <- struct{}{}:
		default:
		}
	}
	resp := (*http.Response)(nil)
	if s := req.URL.Query().Get(gdocs.FieldSince); s != "" {
		if since, err := strconv.Atoi(s); err == nil {
			if wires, ok := pl.deltasSinceLocked(since); ok {
				cu := gdocs.Catchup{Deltas: wires, Version: pl.sv}
				resp = synthesize(req, http.StatusOK, cu.Encode())
				resp.Header.Set(gdocs.HeaderDeltas, "1")
			}
		}
	}
	if resp == nil {
		resp = synthesize(req, http.StatusOK, pl.plain)
	}
	resp.Header.Set(gdocs.HeaderDocVersion, strconv.Itoa(pl.sv))
	if degraded {
		resp.Header.Set(gdocs.HeaderDegraded, "1")
		e.bump(func(s *Stats) { s.DegradedLoads++ })
		metricDegradedLoad.Inc()
	}
	return resp, nil
}

// fetchServerState retrieves the server's current container, preferring
// the delta catch-up endpoint (GET /Doc?since=V): when the server's
// history still covers the span, the missed deltas are replayed onto
// curMirror instead of re-downloading the whole container. viaDeltas
// reports which path was taken.
func (e *Extension) fetchServerState(ctx context.Context, baseURL *url.URL, docID string, since int, curMirror string) (mirror string, version int, viaDeltas bool, err error) {
	u := *baseURL
	u.Path = gdocs.PathDoc
	u.RawQuery = url.Values{
		gdocs.FieldDocID: {docID},
		gdocs.FieldSince: {strconv.Itoa(since)},
	}.Encode()
	resp, err := e.sendResilient(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	})
	if err != nil {
		return "", 0, false, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", 0, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, false, fmt.Errorf("mediator: catch-up fetch: status %d", resp.StatusCode)
	}
	version, _ = strconv.Atoi(resp.Header.Get(gdocs.HeaderDocVersion))
	if resp.Header.Get(gdocs.HeaderDeltas) == "" {
		return string(raw), version, false, nil
	}
	cu, err := gdocs.ParseCatchup(string(raw))
	if err != nil {
		return "", 0, false, err
	}
	mirror = curMirror
	for _, w := range cu.Deltas {
		d, err := delta.Parse(w)
		if err != nil {
			return "", 0, false, err
		}
		if mirror, err = d.Apply(mirror); err != nil {
			return "", 0, false, err
		}
	}
	return mirror, cu.Version, true, nil
}

// reloadShadowLocked re-opens the shadow editor from the server-space
// mirror (decrypt-only via Reload when possible, KDF re-open otherwise),
// re-aligning it with the last server-acked state. Callers hold sess.mu.
func (e *Extension) reloadShadowLocked(sess *session, docID string) error {
	pl := sess.pl
	transport := pl.srvTransport
	if e.useStego && transport != "" {
		var err error
		if transport, err = stego.Decode(transport); err != nil {
			return err
		}
	}
	if transport == "" {
		sess.ed = nil
		return nil
	}
	if sess.ed != nil && sess.ed.Reload(transport) == nil {
		return nil
	}
	sess.ed = nil
	_, err := e.openEditorLocked(sess, docID, transport)
	return err
}

// repairLocked rebases the session onto a new server lineage: mirror (the
// server-space container at version) replaces the acked state, the shadow
// editor re-opens from it, and every queued entry is transformed over the
// remote diff so local edits survive the interleaving. On error the
// session state is unchanged except possibly the shadow editor, which the
// writer re-aligns on demand. Callers hold sess.mu.
func (e *Extension) repairLocked(ctx context.Context, sess *session, docID string, mirror string, version int) error {
	pl := sess.pl
	transport := mirror
	if e.useStego && transport != "" {
		var err error
		if transport, err = stego.Decode(transport); err != nil {
			return err
		}
	}
	var newPlain string
	if transport == "" {
		sess.ed = nil
	} else {
		if sess.ed == nil || sess.ed.Reload(transport) != nil {
			sess.ed = nil
			if _, err := e.openEditorLocked(sess, docID, transport); err != nil {
				return err
			}
		}
		newPlain = sess.ed.Plaintext()
	}

	// Merge runs of adjacent delta entries into one composed net delta
	// before bridging. Transform is TP1 but not TP2, so rebasing entries
	// one at a time could place position ties differently than rebasing
	// the same net edit in one shot — the merge makes the outcome
	// independent of how the burst happened to be split into saves (and
	// matches what a resync client would compute from a fresh diff). It
	// also means a conflict costs one retry save instead of one per
	// queued entry.
	e.mergeQueueLocked(sess)

	// Bridge the queue onto the new lineage. Invariants: entry.p and rd
	// both apply to oldBase (the old lineage before the entry); q and the
	// rebased entry apply to base (the new lineage). Remote inserts win
	// position ties on the local rebase, and the mirrored aFirst on the
	// rd-over-p call keeps the two orders TP1-convergent.
	rd := diff.Diff(pl.srvPlain, newPlain)
	oldBase := pl.srvPlain
	base := newPlain
	for _, ent := range pl.queue {
		if ent.full {
			// A full save overwrites the server wholesale; remote changes
			// before it are subsumed.
			ent.before = base
			base, oldBase, rd = ent.after, ent.after, nil
			ent.wire, ent.sentTransport, ent.sentPlain = "", "", ""
			continue
		}
		q, err := delta.Transform(ent.p, rd, len(oldBase), false)
		if err != nil {
			return err
		}
		rd2, err := delta.Transform(rd, ent.p, len(oldBase), true)
		if err != nil {
			return err
		}
		nextOld, err := ent.p.Apply(oldBase)
		if err != nil {
			return err
		}
		after, err := q.Apply(base)
		if err != nil {
			return err
		}
		ent.p, ent.before, ent.after = q, base, after
		ent.wire, ent.sentTransport, ent.sentPlain = "", "", ""
		oldBase, base, rd = nextOld, after, rd2
	}
	if base != pl.plain {
		pl.plain = base
		pl.sv++
		if rd != nil {
			// rd, transformed over the whole queue, is exactly the delta
			// from the old local view to the new one — the catch-up entry
			// for this bump.
			pl.recordHistLocked(rd.String())
		} else {
			pl.clearHistLocked()
		}
	}
	pl.srvPlain = newPlain
	pl.srvTransport = mirror
	pl.srvVersion = version
	return nil
}

// mergeQueueLocked folds runs of adjacent delta entries into single
// composed entries (full saves stay their own entries and break a run).
// Nothing is in flight when this runs — the writer merges only while it
// holds the head — so the head's wire cache can be discarded along with
// everyone else's. Entries whose composition would exceed the
// fragmentation bound are left split. Callers hold sess.mu.
func (e *Extension) mergeQueueLocked(sess *session) {
	pl := sess.pl
	if len(pl.queue) < 2 {
		return
	}
	merged := pl.queue[:1]
	for _, ent := range pl.queue[1:] {
		tail := merged[len(merged)-1]
		if tail.full || ent.full {
			merged = append(merged, ent)
			continue
		}
		q, err := delta.Compose(tail.p, ent.p, len(tail.before))
		if err != nil || len(q) > maxCoalescedOps {
			merged = append(merged, ent)
			continue
		}
		tail.p, tail.after = q, ent.after
		tail.wire, tail.sentTransport, tail.sentPlain = "", "", ""
	}
	dropped := len(pl.queue) - len(merged)
	if dropped == 0 {
		return
	}
	pl.queue = merged
	pl.stats.Coalesced += dropped
	e.bump(func(s *Stats) {
		s.QueueCoalesced += dropped
		s.QueueDepth -= dropped
	})
	metricQueueCoalesced.Add(int64(dropped))
	metricQueueDepth.Add(float64(-dropped))
}

// collapseQueueLocked is the nuclear fallback: the whole queue becomes a
// single full-content save of the current local view, which overwrites
// whatever the server holds. Callers hold sess.mu.
func (e *Extension) collapseQueueLocked(sess *session) {
	pl := sess.pl
	n := len(pl.queue)
	ent := &plEntry{full: true, before: pl.srvPlain, after: pl.plain, id: e.nextSaveIDLocked(pl)}
	pl.queue = []*plEntry{ent}
	pl.stats.ConflictResyncs++
	e.bump(func(s *Stats) {
		s.ConflictResyncs++
		s.QueueDepth += 1 - n
	})
	metricConflictResyncs.Inc()
	metricQueueDepth.Add(float64(1 - n))
}

// dequeueLocked pops the acknowledged head entry and releases Flush
// waiters once the queue is dry. Callers hold sess.mu.
func (e *Extension) dequeueLocked(sess *session) {
	pl := sess.pl
	pl.queue = pl.queue[1:]
	pl.stats.Saved++
	e.bump(func(s *Stats) { s.QueueDepth-- })
	metricQueueDepth.Add(-1)
	maybeNotifyIdleLocked(pl)
}

// dropQueueLocked abandons every queued save — the escape valve after
// repeated permanent rejections, so the writer cannot spin forever on an
// unsaveable document. The local view keeps editing; it is simply no
// longer durable. Callers hold sess.mu.
func (e *Extension) dropQueueLocked(sess *session) {
	pl := sess.pl
	n := len(pl.queue)
	pl.queue = nil
	pl.rejects = 0
	pl.stats.Dropped += n
	e.bump(func(s *Stats) {
		s.DroppedSaves += n
		s.QueueDepth -= n
	})
	metricQueueDepth.Add(float64(-n))
	maybeNotifyIdleLocked(pl)
}

// notifyIdleLocked releases Flush waiters. Callers hold sess.mu.
func notifyIdleLocked(pl *plState) {
	for _, ch := range pl.idle {
		close(ch)
	}
	pl.idle = nil
}

// maybeNotifyIdleLocked releases Flush waiters only at full quiescence:
// nothing queued, nothing in flight, and no catch-up pending — Flush is a
// barrier against the session's whole pipeline, not just the save queue.
// Callers hold sess.mu.
func maybeNotifyIdleLocked(pl *plState) {
	if len(pl.queue) == 0 && !pl.inflight && !pl.catchup {
		notifyIdleLocked(pl)
	}
}

// transformEntryLocked turns the head entry into wire form: ciphertext
// container for full saves, transformed (and stego-encoded) ciphertext
// delta otherwise, advancing the shadow editor and computing the mirror
// state an ack will install. Idempotent on retries — a cached wire is
// reused so the identical bytes go out under the same save id. Callers
// hold sess.mu.
func (e *Extension) transformEntryLocked(ctx context.Context, sess *session, docID string, ent *plEntry) error {
	if ent.wire != "" {
		return nil
	}
	pl := sess.pl
	if ent.full {
		ed, err := e.editorLocked(sess, docID)
		if err != nil {
			return err
		}
		_, esp := trace.Start(ctx, trace.SpanEncrypt)
		defer esp.End()
		sp := metricEncryptLatency.Start()
		ctxt, err := ed.Encrypt(ent.after)
		if err != nil {
			return err
		}
		if e.useStego {
			if ctxt, err = stego.Encode(ctxt); err != nil {
				return err
			}
		}
		sp.End()
		ent.wire = ctxt
		ent.sentTransport = ctxt
		ent.sentPlain = ent.after
		e.bump(func(s *Stats) {
			s.FullEncrypts++
			s.CipherBytesOut += len(ctxt)
		})
		metricOpFull.Inc()
		return nil
	}
	if sess.ed == nil || sess.ed.Plaintext() != ent.before {
		// The shadow drifted (a coalesce discarded a transformed entry, or
		// an earlier failure dropped it): re-align from the acked mirror.
		if err := e.reloadShadowLocked(sess, docID); err != nil {
			return err
		}
	}
	ed := sess.ed
	if ed == nil {
		return errors.New("mediator: no shadow lineage for delta save")
	}
	if ed.Plaintext() != ent.before {
		return errors.New("mediator: shadow lineage mismatch")
	}
	_, tsp := trace.Start(ctx, trace.SpanTransform)
	defer tsp.End()
	cd, err := ed.TransformDeltaOps(ent.p)
	if err != nil {
		return err
	}
	if e.useStego {
		if cd, err = stego.TransformDelta(cd); err != nil {
			return err
		}
	}
	wire := cd.String()
	st, err := cd.Apply(pl.srvTransport)
	if err != nil {
		return err
	}
	ent.wire = wire
	ent.sentTransport = st
	ent.sentPlain = ed.Plaintext()
	e.bump(func(s *Stats) {
		s.DeltasTransformed++
		s.CipherBytesOut += len(wire)
	})
	metricOpDelta.Inc()
	metricDeltaCipherBytes.Add(int64(len(wire)))
	return nil
}

// writerBackoff is the writer's own failure backoff, used when the
// breaker is not (yet) gating: 5ms doubling to a 1s ceiling.
func writerBackoff(streak int) time.Duration {
	d := 5 * time.Millisecond
	for i := 1; i < streak && d < time.Second; i++ {
		d *= 2
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// waitOrWake sleeps for d, returning early if the session is kicked
// (new save enqueued, or closed).
func waitOrWake(wake chan struct{}, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-wake:
	}
}

// writerLoop is the per-document writer goroutine: it drains the save
// queue in order, one in-flight request at a time, and owns every
// mutation of the server-state mirrors. It exits when the session is
// closed.
func (e *Extension) writerLoop(sess *session, docID string) {
	var failStreak int
	for {
		sess.mu.Lock()
		pl := sess.pl
		for len(pl.queue) == 0 && !pl.catchup && !pl.closed {
			sess.mu.Unlock()
			<-pl.wake
			sess.mu.Lock()
		}
		if pl.closed {
			notifyIdleLocked(pl)
			sess.mu.Unlock()
			return
		}
		if e.res != nil && sess.brk.state == brkOpen {
			wait := sess.brk.reopenAt.Sub(e.res.now())
			if wait > 0 {
				sess.mu.Unlock()
				waitOrWake(pl.wake, wait)
				continue
			}
			// Cooldown over: the head save doubles as the half-open probe.
			e.transitionLocked(context.Background(), &sess.brk, brkHalfOpen)
		}
		if len(pl.queue) == 0 {
			// An idle load asked for a catch-up: fetch the server's state
			// without the lock, then fold it into the local lineage. Saves
			// enqueued during the fetch are fine — repairLocked rebases
			// whatever the queue holds, and only this goroutine moves the
			// server mirrors.
			pl.catchup = false
			since, mirror0, baseURL := pl.srvVersion, pl.srvTransport, pl.baseURL
			sess.mu.Unlock()
			cctx := context.Background()
			mirror, version, _, err := e.fetchServerState(cctx, baseURL, docID, since, mirror0)
			sess.mu.Lock()
			e.recordLocked(cctx, sess, err == nil)
			if !pl.closed && err == nil && version != pl.srvVersion {
				_ = e.repairLocked(cctx, sess, docID, mirror, version)
			}
			if !pl.closed {
				maybeNotifyIdleLocked(pl)
			}
			sess.mu.Unlock()
			continue
		}

		ctx, root := trace.Default.Root(context.Background(), trace.SpanWriterDrain)
		root.Annotate("doc", docID)
		ent := pl.queue[0]
		if err := e.transformEntryLocked(ctx, sess, docID, ent); err != nil {
			root.Annotate("error", "transform")
			e.collapseQueueLocked(sess)
			root.End()
			sess.mu.Unlock()
			continue
		}
		pl.inflight = true
		form := url.Values{gdocs.FieldDocID: {docID}}
		form.Set(gdocs.FieldVersion, strconv.Itoa(pl.srvVersion))
		if ent.full {
			form.Set(gdocs.FieldDocContents, ent.wire)
		} else {
			form.Set(gdocs.FieldDelta, ent.wire)
		}
		e.applyPadding(form, len(ent.wire))
		baseURL := pl.baseURL
		saveID := ent.id
		sess.mu.Unlock()

		e.applyDelay()
		sctx, ssp := trace.Start(ctx, trace.SpanSave)
		resp, err := e.postForm(sctx, baseURL, gdocs.PathDoc, form, saveID)
		ssp.End()
		status, ackVersion := 0, -1
		if err == nil {
			status = resp.StatusCode
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if status == http.StatusOK {
				if ack, aerr := gdocs.ParseAck(string(raw)); aerr == nil {
					ackVersion = ack.Version
				} else {
					err = aerr
				}
			}
		}
		fail := err != nil || retryableStatus(status)

		sess.mu.Lock()
		pl.inflight = false
		e.recordLocked(ctx, sess, !fail)
		switch {
		case pl.closed:
			// Closed mid-flight: do not touch the (cleared) queue.
			root.End()
			sess.mu.Unlock()
			continue

		case fail:
			failStreak++
			root.Annotate("outcome", "infra_failure")
			root.End()
			gated := e.res != nil && sess.brk.state == brkOpen
			sess.mu.Unlock()
			if !gated {
				// No breaker to pace us: back off directly so a dead
				// server is not hammered in a hot loop.
				waitOrWake(pl.wake, writerBackoff(failStreak))
			}
			continue

		case status == http.StatusOK:
			failStreak, pl.rejects = 0, 0
			pl.srvVersion = ackVersion
			pl.srvTransport = ent.sentTransport
			pl.srvPlain = ent.sentPlain
			e.dequeueLocked(sess)
			root.Annotate("outcome", "saved")
			root.End()
			sess.mu.Unlock()

		case status == http.StatusConflict:
			failStreak = 0
			root.Annotate("conflict", "1")
			e.pipeRepair(ctx, sess, docID, root)
			// pipeRepair returns with sess.mu released.

		default:
			// Permanent rejection (4xx other than conflict). First try
			// collapsing to a full save — a delta the server cannot apply
			// may still be expressible as an overwrite — then give up.
			failStreak = 0
			pl.rejects++
			root.Annotate("outcome", "rejected")
			root.AnnotateInt("status", int64(status))
			if pl.rejects >= 3 {
				e.dropQueueLocked(sess)
			} else {
				e.collapseQueueLocked(sess)
			}
			root.End()
			sess.mu.Unlock()
		}
	}
}

// pipeRepair handles a server-side version conflict on the head save:
// fetch what the server applied meanwhile (delta catch-up when its
// history allows), rebase the whole queue over it via delta.Transform,
// and let the writer retry. Falls back to the full-resync collapse when
// the bridge cannot be built. Called with sess.mu held; returns with it
// released.
func (e *Extension) pipeRepair(ctx context.Context, sess *session, docID string, root *trace.Span) {
	pl := sess.pl
	since := pl.srvVersion
	mirror0 := pl.srvTransport
	baseURL := pl.baseURL
	sess.mu.Unlock()

	// Fetch without the lock: saves keep flowing into the queue and the
	// bridge below covers them too. The mirrors cannot move under us —
	// only this goroutine advances them while the queue is non-empty.
	mctx, msp := trace.Start(ctx, trace.SpanMerge)
	mirror, version, viaDeltas, err := e.fetchServerState(mctx, baseURL, docID, since, mirror0)

	sess.mu.Lock()
	defer sess.mu.Unlock()
	defer root.End()
	e.recordLocked(mctx, sess, err == nil)
	if pl.closed {
		msp.End()
		return
	}
	if err != nil {
		msp.Annotate("error", "fetch")
		msp.End()
		root.Annotate("outcome", "repair_fetch_failed")
		return // breaker recorded the failure; the writer loop paces itself
	}
	if rerr := e.repairLocked(mctx, sess, docID, mirror, version); rerr != nil {
		msp.Annotate("error", "bridge")
		msp.End()
		root.Annotate("outcome", "conflict_resync")
		// Aim the fallback full save at the fetched version so it can
		// land without another round of conflicts.
		pl.srvVersion = version
		pl.srvTransport = mirror
		e.collapseQueueLocked(sess)
		return
	}
	msp.End()
	if viaDeltas {
		root.Annotate("outcome", "ot_merge")
		pl.stats.OTMerges++
		e.bump(func(s *Stats) { s.OTMerges++ })
		metricOTMerges.Inc()
	} else {
		// The bridge worked but the server's history had a gap, so the
		// lineage came from a full re-download: count it as a resync.
		root.Annotate("outcome", "resync_merge")
		pl.stats.ConflictResyncs++
		e.bump(func(s *Stats) { s.ConflictResyncs++ })
		metricConflictResyncs.Inc()
	}
}

// flushSession blocks until the document's save queue is fully drained
// (or ctx expires). A nil/legacy session has nothing queued.
func (e *Extension) flushSession(ctx context.Context, docID string) error {
	e.mu.RLock()
	sess := e.sessions[docID]
	e.mu.RUnlock()
	if sess == nil {
		return nil
	}
	sess.mu.Lock()
	pl := sess.pl
	if pl == nil || (len(pl.queue) == 0 && !pl.inflight && !pl.catchup) {
		sess.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	pl.idle = append(pl.idle, ch)
	sess.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeSession tears down a document session: the writer goroutine exits,
// queued-but-unsent saves are dropped (flush first for a graceful close),
// and the session record is removed so a later touch starts fresh.
func (e *Extension) closeSession(docID string) error {
	e.mu.Lock()
	sess := e.sessions[docID]
	delete(e.sessions, docID)
	e.mu.Unlock()
	if sess == nil {
		return nil
	}
	sess.mu.Lock()
	var dropped int
	if pl := sess.pl; pl != nil && !pl.closed {
		dropped = len(pl.queue)
		pl.closed = true
		pl.queue = nil
		pl.stats.Dropped += dropped
		e.bump(func(s *Stats) {
			s.DroppedSaves += dropped
			s.QueueDepth -= dropped
		})
		metricQueueDepth.Add(float64(-dropped))
		notifyIdleLocked(pl)
		select {
		case pl.wake <- struct{}{}:
		default:
		}
	}
	sess.mu.Unlock()
	if dropped > 0 {
		return fmt.Errorf("mediator: close %s: dropped %d unsaved queued saves", docID, dropped)
	}
	return nil
}
