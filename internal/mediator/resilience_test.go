package mediator

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
)

// faultyTransport is a scriptable base transport: it can fail the next N
// requests (or all of them while down), either with a transport error or
// with an injected HTTP status, and can hang attempts until their context
// expires.
type faultyTransport struct {
	base http.RoundTripper

	mu       sync.Mutex
	failNext int  // fail this many upcoming requests
	down     bool // fail everything while set
	status   int  // 0 = transport error, else injected status
	hangNext int  // hang this many upcoming requests until ctx done
	hits     int
}

var errInjected = errors.New("faultyTransport: injected failure")

func (f *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.hits++
	hang := f.hangNext > 0
	if hang {
		f.hangNext--
	}
	fail := !hang && (f.down || f.failNext > 0)
	if !f.down && f.failNext > 0 && !hang {
		f.failNext--
	}
	status := f.status
	f.mu.Unlock()

	if hang {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	if fail {
		if status != 0 {
			return synthesize(req, status, "faultyTransport: injected status"), nil
		}
		return nil, errInjected
	}
	return f.base.RoundTrip(req)
}

func (f *faultyTransport) set(fn func(*faultyTransport)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

// resilientHarness wires server + faulty transport + resilient extension.
type resilientHarness struct {
	server *gdocs.Server
	ts     *httptest.Server
	flaky  *faultyTransport
	ext    *Extension
	client *gdocs.Client
}

func newResilientHarness(t *testing.T, res Resilience) *resilientHarness {
	t.Helper()
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	flaky := &faultyTransport{base: ts.Client().Transport}
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(777),
	}
	ext := New(flaky, StaticPassword("hunter2", opts), WithResilience(res))
	client := gdocs.NewClient(ext.Client(), ts.URL, "resilient-doc")
	return &resilientHarness{server: server, ts: ts, flaky: flaky, ext: ext, client: client}
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Seed:        1,
	}
}

func (h *resilientHarness) seed(t *testing.T, text string) {
	t.Helper()
	if err := h.client.Create(); err != nil {
		t.Fatalf("seed create: %v", err)
	}
	h.client.SetText(text)
	if err := h.client.Save(); err != nil {
		t.Fatalf("seed save: %v", err)
	}
}

func TestResilienceWithDefaults(t *testing.T) {
	r := Resilience{}.withDefaults()
	want := DefaultResilience()
	if r.Retry.MaxAttempts != want.Retry.MaxAttempts ||
		r.Retry.BaseBackoff != want.Retry.BaseBackoff ||
		r.Retry.MaxBackoff != want.Retry.MaxBackoff ||
		r.Breaker.TripAfter != want.Breaker.TripAfter ||
		r.Breaker.MaxCooldown != want.Breaker.MaxCooldown {
		t.Errorf("withDefaults = %+v, want %+v", r, want)
	}
	// Zero cooldown is a deliberate "probe on next request" mode and must
	// survive defaulting.
	if r.Breaker.Cooldown != 0 {
		t.Errorf("zero Cooldown rewritten to %v", r.Breaker.Cooldown)
	}
}

func TestRetryRecoversTransientErrors(t *testing.T) {
	h := newResilientHarness(t, Resilience{
		Retry:   fastRetry(4),
		Breaker: BreakerPolicy{TripAfter: 100},
	})
	h.seed(t, "the quick brown fox")

	h.flaky.set(func(f *faultyTransport) { f.failNext = 2 })
	if err := h.client.Insert(0, "Note: "); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Save(); err != nil {
		t.Fatalf("save through transient failures: %v", err)
	}
	if got := h.ext.Stats().Retries; got < 2 {
		t.Errorf("Retries = %d, want >= 2", got)
	}
	if h.client.Degraded() {
		t.Error("successful retried save marked degraded")
	}
}

func TestRetryRecoversInjected5xxAnd429(t *testing.T) {
	for _, status := range []int{http.StatusInternalServerError, http.StatusTooManyRequests} {
		h := newResilientHarness(t, Resilience{
			Retry:   fastRetry(4),
			Breaker: BreakerPolicy{TripAfter: 100},
		})
		h.seed(t, "retry me")
		h.flaky.set(func(f *faultyTransport) { f.failNext, f.status = 2, status })
		if err := h.client.Insert(0, "x"); err != nil {
			t.Fatal(err)
		}
		if err := h.client.Save(); err != nil {
			t.Errorf("status %d: save not retried: %v", status, err)
		}
	}
}

func TestRetryExhaustionSurfacesStatus(t *testing.T) {
	h := newResilientHarness(t, Resilience{
		Retry:   fastRetry(3),
		Breaker: BreakerPolicy{TripAfter: 100},
	})
	h.seed(t, "doomed")

	h.flaky.set(func(f *faultyTransport) { f.down, f.status = true, http.StatusInternalServerError })
	if err := h.client.Insert(0, "x"); err != nil {
		t.Fatal(err)
	}
	err := h.client.Save()
	if err == nil {
		t.Fatal("save succeeded with the server hard-down")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Errorf("error %q does not surface the final 500", err)
	}
	s := h.ext.Stats()
	if s.RetryGiveups < 1 {
		t.Errorf("RetryGiveups = %d, want >= 1", s.RetryGiveups)
	}
	if s.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2 (3 attempts)", s.Retries)
	}
}

func TestTryTimeoutBoundsHungAttempts(t *testing.T) {
	res := Resilience{
		Retry:   fastRetry(3),
		Breaker: BreakerPolicy{TripAfter: 100},
	}
	res.Retry.TryTimeout = 30 * time.Millisecond
	h := newResilientHarness(t, res)
	h.seed(t, "slow server")

	// The first attempt hangs until its per-attempt budget expires; the
	// retry goes through. Without TryTimeout this save would block forever.
	h.flaky.set(func(f *faultyTransport) { f.hangNext = 1 })
	if err := h.client.Insert(0, "x"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := h.client.Save(); err != nil {
		t.Fatalf("save after hung attempt: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("save took %v; per-attempt budget not applied", elapsed)
	}
	if got := h.ext.Stats().Retries; got < 1 {
		t.Errorf("Retries = %d, want >= 1", got)
	}
}

func TestBreakerTripsIntoDegradedModeAndDrains(t *testing.T) {
	h := newResilientHarness(t, Resilience{
		Retry:   fastRetry(1),
		Breaker: BreakerPolicy{TripAfter: 2, Cooldown: time.Hour, MaxCooldown: 2 * time.Hour},
	})
	const secret = "meet at the old mill at midnight"
	h.seed(t, secret)

	// Hard outage: two failed loads trip the per-document breaker. (Loads
	// leave the encryption editor intact, so degraded mode has local state
	// to serve.)
	h.flaky.set(func(f *faultyTransport) { f.down = true })
	for i := 0; i < 2; i++ {
		if err := h.client.Load(); err == nil {
			t.Fatal("load succeeded through a dead transport")
		}
	}
	if got := h.ext.Stats().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}
	if !h.ext.Degraded(h.client.DocID()) {
		t.Fatal("extension not degraded after breaker trip")
	}

	// Degraded saves: absorbed locally, acked with the degraded header.
	if err := h.client.Insert(len(secret), " Bring the ledger."); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Save(); err != nil {
		t.Fatalf("degraded save: %v", err)
	}
	if !h.client.Degraded() {
		t.Error("client not marked degraded after a queued save")
	}
	if err := h.client.Insert(0, "URGENT: "); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Save(); err != nil {
		t.Fatalf("second degraded save: %v", err)
	}
	want := "URGENT: " + secret + " Bring the ledger."

	// Degraded loads serve the queued shadow.
	if err := h.client.Load(); err != nil {
		t.Fatalf("degraded load: %v", err)
	}
	if h.client.Text() != want {
		t.Errorf("degraded load text = %q, want %q", h.client.Text(), want)
	}
	if !h.client.Degraded() {
		t.Error("degraded load not marked")
	}
	s := h.ext.Stats()
	if s.DegradedSaves != 2 || s.DegradedLoads != 1 {
		t.Errorf("DegradedSaves/Loads = %d/%d, want 2/1", s.DegradedSaves, s.DegradedLoads)
	}
	// Nothing must have reached the dead server after the trip.
	if s.Drains != 0 {
		t.Errorf("Drains = %d before recovery", s.Drains)
	}

	// Recovery: heal the transport and fast-forward past the cooldown so
	// the next request half-opens the breaker and drains the queue.
	h.flaky.set(func(f *faultyTransport) { f.down = false })
	h.ext.res.now = func() time.Time { return time.Now().Add(3 * time.Hour) }

	if err := h.client.Insert(0, "PS. "); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Sync(); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	want = "PS. " + want
	if h.client.Degraded() {
		t.Error("client still degraded after recovery")
	}
	if h.ext.Degraded(h.client.DocID()) {
		t.Error("extension still degraded after drain")
	}
	s = h.ext.Stats()
	if s.Drains != 1 {
		t.Errorf("Drains = %d, want 1", s.Drains)
	}

	// The drained state must be durable and byte-correct on the server.
	plainCheck(t, h, want)
}

// plainCheck verifies the server-stored container decrypts to want and a
// fresh mediated session sees the same text.
func plainCheck(t *testing.T, h *resilientHarness, want string) {
	t.Helper()
	stored, _, err := h.server.Content(context.Background(), h.client.DocID())
	if err != nil {
		t.Fatalf("server content: %v", err)
	}
	plain, err := core.DecryptWith("hunter2", stored, core.Options{})
	if err != nil {
		t.Fatalf("stored container does not decrypt: %v", err)
	}
	if plain != want {
		t.Errorf("server plaintext = %q, want %q", plain, want)
	}
	fresh := New(h.ts.Client().Transport, StaticPassword("hunter2", core.Options{}))
	fc := gdocs.NewClient(fresh.Client(), h.ts.URL, h.client.DocID())
	if err := fc.Load(); err != nil {
		t.Fatalf("fresh load: %v", err)
	}
	if fc.Text() != want {
		t.Errorf("fresh session text = %q, want %q", fc.Text(), want)
	}
}

func TestDegradedUnavailableWithoutLocalState(t *testing.T) {
	h := newResilientHarness(t, Resilience{
		Retry:   fastRetry(1),
		Breaker: BreakerPolicy{TripAfter: 1, Cooldown: time.Hour},
	})
	// Total outage before the document was ever loaded: there is no local
	// state to serve, so degraded mode must refuse rather than invent.
	h.flaky.set(func(f *faultyTransport) { f.down = true })
	if err := h.client.Load(); err == nil {
		t.Fatal("first load succeeded through a dead transport")
	}
	err := h.client.Load() // breaker now open, no shadow, no editor
	if err == nil {
		t.Fatal("degraded load with no state succeeded")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Errorf("error %q, want a 503 refusal", err)
	}
	if got := h.ext.Stats().DegradedLoads; got != 0 {
		t.Errorf("DegradedLoads = %d for a refused load", got)
	}
}

func TestBackoffScheduleDeterministicAndBounded(t *testing.T) {
	mk := func(seed int64) *Extension {
		return New(http.DefaultTransport, StaticPassword("x", core.Options{}),
			WithResilience(Resilience{Retry: RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  80 * time.Millisecond,
				Seed:        seed,
			}}))
	}
	a, b := mk(9), mk(9)
	prevA, prevB := time.Duration(0), time.Duration(0)
	for i := 0; i < 50; i++ {
		da := a.nextBackoff(prevA)
		db := b.nextBackoff(prevB)
		if da != db {
			t.Fatalf("step %d: same seed drew %v vs %v", i, da, db)
		}
		if da < 5*time.Millisecond || da > 80*time.Millisecond {
			t.Fatalf("step %d: backoff %v outside [base, max]", i, da)
		}
		prevA, prevB = da, db
	}
	c := mk(10)
	prevC, distinct := time.Duration(0), false
	prevA = 0
	for i := 0; i < 50; i++ {
		da, dc := a.nextBackoff(prevA), c.nextBackoff(prevC)
		if da != dc {
			distinct = true
		}
		prevA, prevC = da, dc
	}
	if !distinct {
		t.Error("different seeds produced identical 50-step schedules")
	}
}

func TestInfraFailureClassification(t *testing.T) {
	req, _ := http.NewRequest(http.MethodGet, "http://x/", nil)
	cases := []struct {
		name string
		resp *http.Response
		err  error
		want bool
	}{
		{"transport error", nil, errInjected, true},
		{"500", synthesize(req, 500, ""), nil, true},
		{"429", synthesize(req, 429, ""), nil, true},
		{"409 conflict is logical", synthesize(req, 409, ""), nil, false},
		{"403 blocked is logical", synthesize(req, 403, ""), nil, false},
		{"200", synthesize(req, 200, ""), nil, false},
	}
	for _, tc := range cases {
		if got := infraFailure(tc.resp, tc.err); got != tc.want {
			t.Errorf("%s: infraFailure = %v, want %v", tc.name, got, tc.want)
		}
	}
}
