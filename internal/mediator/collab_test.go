package mediator

import (
	"context"
	"errors"
	"testing"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
)

// TestEncryptedCollaborationWithSync runs two users with independent
// extensions (sharing only the password) editing the same encrypted
// document concurrently, recovering from conflicts with the client's OT
// merge — all without the server ever seeing plaintext. This goes beyond
// the paper's §VII-A (which stopped at "simultaneous editing leads to
// conflicts") using the delta.Transform machinery.
func TestEncryptedCollaborationWithSync(t *testing.T) {
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(4242),
	}

	alice := gdocs.NewClient(
		New(h.ts.Client().Transport, StaticPassword("hunter2", opts)).Client(),
		h.ts.URL, "pad")
	bob := gdocs.NewClient(
		New(h.ts.Client().Transport, StaticPassword("hunter2", opts)).Client(),
		h.ts.URL, "pad")

	if err := alice.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	alice.SetText("HEAD middle TAIL")
	if err := alice.Save(); err != nil {
		t.Fatalf("alice save: %v", err)
	}
	if err := bob.Load(); err != nil {
		t.Fatalf("bob load: %v", err)
	}
	if bob.Text() != "HEAD middle TAIL" {
		t.Fatalf("bob sees %q", bob.Text())
	}

	// Concurrent edits: alice rewrites the head, bob the tail.
	if err := alice.Replace(0, 4, "FRONT"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Save(); err != nil {
		t.Fatalf("alice save: %v", err)
	}
	if err := bob.Replace(12, 4, "BACK"); err != nil {
		t.Fatal(err)
	}
	if err := bob.Save(); !errors.Is(err, gdocs.ErrConflict) {
		t.Fatalf("bob save = %v, want conflict first", err)
	}
	if err := bob.Sync(); err != nil {
		t.Fatalf("bob sync: %v", err)
	}
	if bob.Text() != "FRONT middle BACK" {
		t.Errorf("merged = %q, want both edits", bob.Text())
	}

	// Alice refreshes and converges.
	if err := alice.Refresh(); err != nil {
		t.Fatalf("alice refresh: %v", err)
	}
	if alice.Text() != bob.Text() {
		t.Errorf("alice %q, bob %q", alice.Text(), bob.Text())
	}

	// Throughout all of this the server saw only ciphertext.
	h.assertNoLeak(t, "HEAD middle TAIL", "FRONT middle BACK")
	stored, _, err := h.server.Content(context.Background(), "pad")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	got, err := core.Decrypt("hunter2", stored)
	if err != nil || got != "FRONT middle BACK" {
		t.Errorf("server container = (%q, %v)", got, err)
	}
}
