// The Session handle: the public per-document API of the extension.
// Callers that previously reached for Extension.Editor / Degraded /
// Sessions get a first-class object instead, with the pipeline's
// lifecycle operations (Flush, Close) and a per-document stats view.
package mediator

import (
	"context"

	"privedit/internal/core"
)

// Session is a handle on one document's mediation state. It is cheap to
// create (no I/O, no allocation beyond the handle) and safe for
// concurrent use; all state lives in the Extension.
type Session struct {
	e     *Extension
	docID string
}

// Session returns a handle on docID's mediation state. The underlying
// per-document session is created lazily by the first mediated request,
// so a handle can be taken before any traffic flows.
func (e *Extension) Session(docID string) *Session {
	return &Session{e: e, docID: docID}
}

// DocID returns the document this handle mediates.
func (s *Session) DocID() string { return s.docID }

// Editor exposes the document's encryption state (tests and tooling).
// Nil until the first mediated request builds it.
func (s *Session) Editor() *core.Editor {
	e := s.e
	e.mu.RLock()
	sess := e.sessions[s.docID]
	e.mu.RUnlock()
	if sess == nil {
		return nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.ed
}

// Degraded reports whether the document is currently behind the server:
// its circuit breaker is open, a degraded-mode shadow awaits drain, or
// (in pipelined mode) saves are still queued.
func (s *Session) Degraded() bool {
	e := s.e
	e.mu.RLock()
	sess := e.sessions[s.docID]
	e.mu.RUnlock()
	if sess == nil {
		return false
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.brk.state != brkClosed || sess.brk.hasShadow {
		return true
	}
	return sess.pl != nil && (len(sess.pl.queue) > 0 || sess.pl.inflight)
}

// Flush blocks until the document's pipeline is fully quiescent — every
// queued save acknowledged by the server and any pending idle catch-up
// folded into the local lineage — or ctx expires. On the legacy
// synchronous path (no WithPipeline) there is never anything pending and
// Flush returns immediately.
func (s *Session) Flush(ctx context.Context) error {
	return s.e.flushSession(ctx, s.docID)
}

// Close tears down the document's session: the writer goroutine exits
// and the session record is removed, so a later request starts fresh
// from the server's state. Queued-but-unsent saves are dropped and
// reported as an error — Flush first for a graceful close.
func (s *Session) Close() error {
	return s.e.closeSession(s.docID)
}

// Stats returns the per-document pipeline counters. On the legacy path
// only Degraded is meaningful.
func (s *Session) Stats() SessionStats {
	e := s.e
	e.mu.RLock()
	sess := e.sessions[s.docID]
	e.mu.RUnlock()
	if sess == nil {
		return SessionStats{}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.pl == nil {
		return SessionStats{Degraded: sess.brk.state != brkClosed || sess.brk.hasShadow}
	}
	pl := sess.pl
	st := pl.stats
	st.Pending = len(pl.queue)
	st.Degraded = sess.brk.state != brkClosed || len(pl.queue) > 0 || pl.inflight
	st.LocalVersion = pl.sv
	st.ServerVersion = pl.srvVersion
	return st
}

// Editor exposes the per-document encryption state.
//
// Deprecated: use Session(docID).Editor().
func (e *Extension) Editor(docID string) *core.Editor {
	return e.Session(docID).Editor()
}

// Sessions returns the number of per-document sessions currently managed.
//
// Deprecated: use SessionCount.
func (e *Extension) Sessions() int {
	return e.SessionCount()
}

// Degraded reports whether the document's circuit breaker is currently
// open or it has queued saves awaiting the server.
//
// Deprecated: use Session(docID).Degraded().
func (e *Extension) Degraded(docID string) bool {
	return e.Session(docID).Degraded()
}
