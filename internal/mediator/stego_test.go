package mediator

import (
	"context"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/stego"
)

// newGdocsClient builds a fresh client on the harness's server, routed
// through the given extension.
func newGdocsClient(ext *Extension, h *harness) *gdocs.Client {
	return gdocs.NewClient(ext.Client(), h.ts.URL, "private-doc")
}

func TestStegoSessionEndToEnd(t *testing.T) {
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}
	ext := New(h.ts.Client().Transport, StaticPassword("hunter2", opts), WithStego())
	client := newGdocsClient(ext, h)

	secret := "the merger closes friday; keep it quiet"
	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	client.SetText(secret)
	if err := client.Save(); err != nil {
		t.Fatalf("full save: %v", err)
	}
	if err := client.Insert(0, "URGENT: "); err != nil {
		t.Fatal(err)
	}
	if err := client.Save(); err != nil {
		t.Fatalf("delta save: %v", err)
	}

	stored, _, err := h.server.Content(context.Background(), "private-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	// The stored document reads as lowercase word prose, not ciphertext.
	if !stego.LooksInnocuous(stored) {
		t.Errorf("stored document does not look innocuous: %.60q", stored)
	}
	if strings.Contains(stored, "merger") || strings.Contains(stored, "URGENT") {
		t.Error("plaintext leaked into stego prose")
	}

	// A fresh stego-enabled session reads it back.
	ext2 := New(h.ts.Client().Transport, StaticPassword("hunter2", opts), WithStego())
	client2 := newGdocsClient(ext2, h)
	if err := client2.Load(); err != nil {
		t.Fatalf("stego load: %v", err)
	}
	if client2.Text() != "URGENT: "+secret {
		t.Errorf("stego round trip = %q", client2.Text())
	}

	// Decoding by hand also works: prose -> Base32 -> plaintext.
	transport, err := stego.Decode(stored)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	plain, err := core.Decrypt("hunter2", transport)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if plain != "URGENT: "+secret {
		t.Errorf("manual decode = %q", plain)
	}
}

func TestStegoDeltasStayAligned(t *testing.T) {
	// Many incremental saves through the stego layer: the server-held
	// prose must track the editor state the whole way.
	h := newHarness(t, core.ConfidentialityOnly, nil)
	opts := core.Options{Scheme: core.ConfidentialityOnly, BlockChars: 4}
	ext := New(h.ts.Client().Transport, StaticPassword("hunter2", opts), WithStego())
	client := newGdocsClient(ext, h)

	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	client.SetText("abcdefghij")
	if err := client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	for i := 0; i < 25; i++ {
		if err := client.Insert(i%len(client.Text()), "x"); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 && len(client.Text()) > 2 {
			if err := client.Delete(0, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Save(); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	stored, _, err := h.server.Content(context.Background(), "private-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	transport, err := stego.Decode(stored)
	if err != nil {
		t.Fatalf("decode after %d saves: %v", 25, err)
	}
	plain, err := core.Decrypt("hunter2", transport)
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	if plain != client.Text() {
		t.Errorf("server prose decodes to %q, client has %q", plain, client.Text())
	}
}
