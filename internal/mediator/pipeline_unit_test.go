package mediator

import (
	"net/http"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/crypt"
)

func unitExtension() *Extension {
	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(1),
	}
	return New(http.DefaultTransport, StaticPassword("hunter2", opts))
}

func TestWriterBackoff(t *testing.T) {
	cases := []struct {
		streak int
		want   time.Duration
	}{
		{0, 5 * time.Millisecond},
		{1, 5 * time.Millisecond},
		{2, 10 * time.Millisecond},
		{4, 40 * time.Millisecond},
		{10, time.Second},  // doubling overshoots the ceiling
		{100, time.Second}, // and stays clamped
	}
	for _, c := range cases {
		if got := writerBackoff(c.streak); got != c.want {
			t.Errorf("writerBackoff(%d) = %v, want %v", c.streak, got, c.want)
		}
	}
}

func TestWaitOrWake(t *testing.T) {
	// Timer path: a tiny delay with no wake signal just sleeps.
	start := time.Now()
	waitOrWake(make(chan struct{}, 1), time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Error("waitOrWake returned before the timer fired")
	}
	// Wake path: a pending kick returns long before the timer.
	wake := make(chan struct{}, 1)
	wake <- struct{}{}
	start = time.Now()
	waitOrWake(wake, time.Minute)
	if time.Since(start) > 10*time.Second {
		t.Error("waitOrWake ignored the wake signal")
	}
}

func TestHistRing(t *testing.T) {
	pl := &plState{sv: 0}
	for i := 1; i <= 3; i++ {
		pl.sv = i
		pl.recordHistLocked("wire-" + string(rune('0'+i)))
	}

	if deltas, ok := pl.deltasSinceLocked(3); !ok || len(deltas) != 0 {
		t.Errorf("deltasSince(sv) = %v, %v; want empty, true", deltas, ok)
	}
	if _, ok := pl.deltasSinceLocked(4); ok {
		t.Error("deltasSince(future) reported covered")
	}
	deltas, ok := pl.deltasSinceLocked(1)
	if !ok || len(deltas) != 2 || deltas[0] != "wire-2" || deltas[1] != "wire-3" {
		t.Errorf("deltasSince(1) = %v, %v", deltas, ok)
	}
	if deltas, ok = pl.deltasSinceLocked(0); !ok || len(deltas) != 3 {
		t.Errorf("deltasSince(0) = %v, %v; want all 3", deltas, ok)
	}
	// A span starting before the ring's oldest entry is not covered.
	if _, ok = pl.deltasSinceLocked(-1); ok {
		t.Error("deltasSince before ring start reported covered")
	}

	pl.clearHistLocked()
	if _, ok = pl.deltasSinceLocked(1); ok {
		t.Error("cleared ring still reported coverage")
	}
	if pl.histBytes != 0 || len(pl.hist) != 0 {
		t.Errorf("clearHistLocked left hist=%d bytes=%d", len(pl.hist), pl.histBytes)
	}
}

func TestHistRingEviction(t *testing.T) {
	pl := &plState{}
	big := make([]byte, maxPlHistBytes/2+1)
	for i := range big {
		big[i] = 'x'
	}
	for i := 1; i <= 3; i++ {
		pl.sv = i
		pl.recordHistLocked(string(big))
	}
	if len(pl.hist) != 1 {
		t.Fatalf("byte cap kept %d entries, want 1", len(pl.hist))
	}
	// The surviving entry is the newest; older spans are uncovered.
	if _, ok := pl.deltasSinceLocked(1); ok {
		t.Error("evicted span reported covered")
	}
	if deltas, ok := pl.deltasSinceLocked(2); !ok || len(deltas) != 1 {
		t.Errorf("deltasSince(2) = %d deltas, %v; want 1, true", len(deltas), ok)
	}
}

func TestCollapseQueueLocked(t *testing.T) {
	e := unitExtension()
	sess := &session{pl: &plState{
		srvPlain: "server holds this",
		plain:    "local view wins",
		queue:    []*plEntry{{}, {}, {}},
	}}
	sess.mu.Lock()
	e.collapseQueueLocked(sess)
	sess.mu.Unlock()

	pl := sess.pl
	if len(pl.queue) != 1 {
		t.Fatalf("queue = %d entries after collapse, want 1", len(pl.queue))
	}
	ent := pl.queue[0]
	if !ent.full || ent.before != "server holds this" || ent.after != "local view wins" {
		t.Errorf("collapsed entry = %+v", ent)
	}
	if ent.id == "" {
		t.Error("collapsed entry has no idempotency token")
	}
	if pl.stats.ConflictResyncs != 1 {
		t.Errorf("ConflictResyncs = %d, want 1", pl.stats.ConflictResyncs)
	}
	if st := e.Stats(); st.ConflictResyncs != 1 || st.QueueDepth != -2 {
		t.Errorf("extension stats = %+v", st)
	}
}

func TestDropQueueLocked(t *testing.T) {
	e := unitExtension()
	idle := make(chan struct{})
	sess := &session{pl: &plState{
		queue:   []*plEntry{{}, {}},
		rejects: 7,
		idle:    []chan struct{}{idle},
	}}
	sess.mu.Lock()
	e.dropQueueLocked(sess)
	sess.mu.Unlock()

	pl := sess.pl
	if len(pl.queue) != 0 || pl.rejects != 0 {
		t.Errorf("queue=%d rejects=%d after drop", len(pl.queue), pl.rejects)
	}
	if pl.stats.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", pl.stats.Dropped)
	}
	if st := e.Stats(); st.DroppedSaves != 2 {
		t.Errorf("DroppedSaves = %d, want 2", st.DroppedSaves)
	}
	select {
	case <-idle:
	default:
		t.Error("drop with empty queue did not release Flush waiters")
	}
}

func TestReloadShadowLockedEmptyMirror(t *testing.T) {
	e := unitExtension()
	sess := &session{pl: &plState{srvTransport: ""}}
	sess.mu.Lock()
	err := e.reloadShadowLocked(sess, "shadow-doc")
	sess.mu.Unlock()
	if err != nil {
		t.Fatalf("reload from empty mirror: %v", err)
	}
	if sess.ed != nil {
		t.Error("empty mirror left a shadow editor behind")
	}
}
