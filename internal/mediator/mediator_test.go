package mediator

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/gdocs"
)

// harness wires a simulated Google Documents server, a mediating
// extension, and a client application together.
type harness struct {
	server *gdocs.Server
	ts     *httptest.Server
	ext    *Extension
	client *gdocs.Client
}

func newHarness(t *testing.T, scheme core.Scheme, mit *covert.Mitigator) *harness {
	t.Helper()
	server := gdocs.NewServer()
	server.EnableObservation()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	opts := core.Options{
		Scheme:     scheme,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(12345),
	}
	ext := New(ts.Client().Transport, StaticPassword("hunter2", opts), WithMitigator(mit))
	client := gdocs.NewClient(ext.Client(), ts.URL, "private-doc")
	return &harness{server: server, ts: ts, ext: ext, client: client}
}

// assertNoLeak fails if any fragment of plaintext reached the server.
func (h *harness) assertNoLeak(t *testing.T, plaintexts ...string) {
	t.Helper()
	observed := h.server.Observed()
	for _, p := range plaintexts {
		for i := 0; i+4 <= len(p); i++ {
			frag := p[i : i+4]
			if strings.Contains(observed, frag) {
				t.Fatalf("plaintext fragment %q leaked to the server", frag)
			}
		}
	}
}

func TestEndToEndEditingSession(t *testing.T) {
	for _, scheme := range []core.Scheme{core.ConfidentialityOnly, core.ConfidentialityIntegrity} {
		t.Run(scheme.String(), func(t *testing.T) {
			h := newHarness(t, scheme, nil)
			secret := "Attack at dawn. The password to the vault is 77-99-13."

			if err := h.client.Create(); err != nil {
				t.Fatalf("Create: %v", err)
			}
			h.client.SetText(secret)
			if err := h.client.Save(); err != nil { // full save -> encrypted
				t.Fatalf("full save: %v", err)
			}
			if err := h.client.Insert(15, "Bring rope. "); err != nil {
				t.Fatal(err)
			}
			if err := h.client.Save(); err != nil { // delta save -> transformed
				t.Fatalf("delta save: %v", err)
			}
			if err := h.client.Replace(0, 6, "Defend"); err != nil {
				t.Fatal(err)
			}
			if err := h.client.Save(); err != nil {
				t.Fatalf("third save: %v", err)
			}

			want := h.client.Text()
			// Server stores only ciphertext.
			stored, _, err := h.server.Content(context.Background(), "private-doc")
			if err != nil {
				t.Fatalf("server content: %v", err)
			}
			if strings.Contains(stored, "dawn") || strings.Contains(stored, "vault") {
				t.Error("server stores plaintext")
			}
			h.assertNoLeak(t, secret, want)

			// The stored container decrypts to the client's text.
			got, err := core.Decrypt("hunter2", stored)
			if err != nil {
				t.Fatalf("decrypt stored: %v", err)
			}
			if got != want {
				t.Errorf("stored container decrypts to %q, want %q", got, want)
			}

			st := h.ext.Stats()
			if st.FullEncrypts != 1 || st.DeltasTransformed != 2 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestLoadDecryptsForNewSession(t *testing.T) {
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("persistent secret")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	// A second session (fresh extension, same password) loads the doc.
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8, Nonces: crypt.NewSeededNonceSource(777)}
	ext2 := New(h.ts.Client().Transport, StaticPassword("hunter2", opts))
	client2 := gdocs.NewClient(ext2.Client(), h.ts.URL, "private-doc")
	if err := client2.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if client2.Text() != "persistent secret" {
		t.Errorf("second session sees %q", client2.Text())
	}
	// And can continue editing incrementally.
	if err := client2.Insert(0, "still "); err != nil {
		t.Fatal(err)
	}
	if err := client2.Save(); err != nil { // session's first save: full
		t.Fatalf("save: %v", err)
	}
	if err := client2.Insert(0, "and "); err != nil {
		t.Fatal(err)
	}
	if err := client2.Save(); err != nil { // delta
		t.Fatalf("delta save: %v", err)
	}
	stored, _, err := h.server.Content(context.Background(), "private-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	got, err := core.Decrypt("hunter2", stored)
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	if got != "and still persistent secret" {
		t.Errorf("final = %q", got)
	}
}

func TestWrongPasswordOnLoad(t *testing.T) {
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("locked away")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, Nonces: crypt.NewSeededNonceSource(1)}
	extWrong := New(h.ts.Client().Transport, StaticPassword("not the password", opts))
	clientWrong := gdocs.NewClient(extWrong.Client(), h.ts.URL, "private-doc")
	if err := clientWrong.Load(); !errors.Is(err, gdocs.ErrBlocked) {
		t.Errorf("wrong-password load = %v, want ErrBlocked", err)
	}
}

func TestUnknownRequestsBlocked(t *testing.T) {
	// §VII-A features that need server-side plaintext must never leave
	// the client: translate, spell check, drawing, export.
	h := newHarness(t, core.ConfidentialityOnly, nil)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("secret words")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	for _, path := range []string{gdocs.PathTranslate, gdocs.PathSpell, gdocs.PathDrawing, gdocs.PathExport} {
		if _, err := h.client.Feature(path); !errors.Is(err, gdocs.ErrBlocked) {
			t.Errorf("feature %s = %v, want ErrBlocked", path, err)
		}
	}
	if h.ext.Stats().Blocked != 4 {
		t.Errorf("blocked count = %d, want 4", h.ext.Stats().Blocked)
	}
	h.assertNoLeak(t, "secret words")
}

func TestAckContentBlanked(t *testing.T) {
	// The extension must blank contentFromServer/Hash so the ciphertext
	// echo never confuses the client (§IV-A).
	h := newHarness(t, core.ConfidentialityOnly, nil)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("abc")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	// The client's view of the version still advances (field preserved).
	if h.client.Version() != 1 {
		t.Errorf("version = %d, want 1", h.client.Version())
	}
}

func TestTamperedContainerRejectedOnLoad(t *testing.T) {
	// A malicious server modifies the stored ciphertext; with RPC the
	// extension detects it at load time.
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("integrity matters here")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	stored, _, err := h.server.Content(context.Background(), "private-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	// Malicious server swaps the first two data records. RPC containers
	// here: 101-char prefix, then 52 transport chars per 32-byte record.
	const prefix, recLen = 101, 52
	if len(stored) < prefix+3*recLen {
		t.Fatalf("container unexpectedly small (%d chars)", len(stored))
	}
	r1 := stored[prefix : prefix+recLen]
	r2 := stored[prefix+recLen : prefix+2*recLen]
	tampered := stored[:prefix] + r2 + r1 + stored[prefix+2*recLen:]
	if _, err := h.server.SetContents(context.Background(), "private-doc", tampered, -1); err != nil {
		t.Fatalf("tamper: %v", err)
	}

	opts := core.Options{Scheme: core.ConfidentialityIntegrity, Nonces: crypt.NewSeededNonceSource(3)}
	ext2 := New(h.ts.Client().Transport, StaticPassword("hunter2", opts))
	client2 := gdocs.NewClient(ext2.Client(), h.ts.URL, "private-doc")
	if err := client2.Load(); !errors.Is(err, gdocs.ErrBlocked) {
		t.Errorf("tampered load = %v, want ErrBlocked (integrity failure)", err)
	}
}

func TestMaliciousClientDeltaCanonicalized(t *testing.T) {
	// §VI-B's covert channel: a malicious client encodes Ord(q) in
	// redundant insert/delete pairs. With the mitigator installed, the
	// ciphertext delta the server sees is identical to the one an honest
	// client would have produced.
	mit := covert.New(covert.Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(9))
	h := newHarness(t, core.ConfidentialityOnly, mit)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("covert channel base text")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Malicious delta: the insertion of a 17-character word fragmented
	// into 17 one-character inserts, so the op count encodes Ord(q)=17.
	// (The paper's insert-then-delete trick is a variant of the same
	// op-sequence channel.)
	var mal delta.Delta
	word := "qqqqqqqqqqqqqqqqq"
	for _, ch := range word {
		mal = append(mal, delta.InsertOp(string(ch)))
	}
	if _, err := h.client.SaveRawDelta(mal); err != nil {
		t.Fatalf("SaveRawDelta: %v", err)
	}
	stored, _, err := h.server.Content(context.Background(), "private-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	got, err := core.Decrypt("hunter2", stored)
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	if got != word+"covert channel base text" {
		t.Errorf("content after malicious delta = %q", got)
	}
	// The canonicalized ciphertext delta must not reveal 17 separate ops:
	// the mediator's editor saw one merged insert. We can't observe the
	// wire directly here, but the server-side observation log records the
	// delta; count its operations.
	observed := h.server.Observed()
	lines := strings.Split(observed, "\n")
	last := ""
	for _, l := range lines {
		if strings.Contains(l, "=") || strings.Contains(l, "+") {
			last = l
		}
	}
	if n := strings.Count(last, "\t"); n > 6 {
		t.Errorf("ciphertext delta has %d+1 ops; canonicalization failed", n)
	}
}

func TestPaddingFieldIgnoredByServer(t *testing.T) {
	mit := covert.New(covert.Config{PadQuantum: 128}, crypt.NewSeededNonceSource(10))
	h := newHarness(t, core.ConfidentialityOnly, mit)
	if err := h.client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	h.client.SetText("padded save")
	if err := h.client.Save(); err != nil {
		t.Fatalf("save with padding: %v", err)
	}
	stored, _, err := h.server.Content(context.Background(), "private-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	got, err := core.Decrypt("hunter2", stored)
	if err != nil || got != "padded save" {
		t.Errorf("padded save result = (%q, %v)", got, err)
	}
}

func TestPerDocumentEditors(t *testing.T) {
	h := newHarness(t, core.ConfidentialityOnly, nil)
	c1 := gdocs.NewClient(h.ext.Client(), h.ts.URL, "doc-a")
	c2 := gdocs.NewClient(h.ext.Client(), h.ts.URL, "doc-b")
	if err := c1.Create(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Create(); err != nil {
		t.Fatal(err)
	}
	c1.SetText("alpha")
	c2.SetText("beta")
	if err := c1.Save(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Save(); err != nil {
		t.Fatal(err)
	}
	if h.ext.Editor("doc-a") == nil || h.ext.Editor("doc-b") == nil {
		t.Fatal("missing per-document editors")
	}
	if h.ext.Editor("doc-a") == h.ext.Editor("doc-b") {
		t.Error("documents share an editor")
	}
	sA, _, _ := h.server.Content(context.Background(), "doc-a")
	sB, _, _ := h.server.Content(context.Background(), "doc-b")
	gA, err := core.Decrypt("hunter2", sA)
	if err != nil || gA != "alpha" {
		t.Errorf("doc-a = (%q, %v)", gA, err)
	}
	gB, err := core.Decrypt("hunter2", sB)
	if err != nil || gB != "beta" {
		t.Errorf("doc-b = (%q, %v)", gB, err)
	}
}

func TestCollaborationThroughSharedPassword(t *testing.T) {
	// §IV-C: sharing = share the document plus the password out of band.
	h := newHarness(t, core.ConfidentialityIntegrity, nil)
	if err := h.client.Create(); err != nil {
		t.Fatal(err)
	}
	h.client.SetText("shared secret doc")
	if err := h.client.Save(); err != nil {
		t.Fatal(err)
	}

	// Friend with the right password: reads fine.
	opts := core.Options{Scheme: core.ConfidentialityIntegrity, Nonces: crypt.NewSeededNonceSource(2)}
	extFriend := New(h.ts.Client().Transport, StaticPassword("hunter2", opts))
	friend := gdocs.NewClient(extFriend.Client(), h.ts.URL, "private-doc")
	if err := friend.Load(); err != nil {
		t.Fatalf("friend load: %v", err)
	}
	if friend.Text() != "shared secret doc" {
		t.Errorf("friend sees %q", friend.Text())
	}

	// Server (no password) sees only ciphertext.
	stored, _, _ := h.server.Content(context.Background(), "private-doc")
	if strings.Contains(stored, "shared") {
		t.Error("server can read the shared doc")
	}
}
