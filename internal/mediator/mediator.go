// Package mediator implements the paper's browser extension (Figure 1,
// Figure 2) as an http.RoundTripper: it intercepts every request the
// client application makes, encrypts the document content in save
// requests, transforms incremental deltas into ciphertext deltas, decrypts
// document loads, and drops every request it does not recognize — "for
// security, all requests other than those that can be interpreted and
// encrypted must be blocked" (§III).
//
// The extension holds one core.Editor per document: "the enc_scheme object
// provides three public interfaces: encrypt, decrypt, and transform_delta.
// It also maintains a copy of the state of the ciphertext document which
// is needed to transform the delta" (§IV-B).
package mediator

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/delta"
	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/stego"
)

// Telemetry for the extension's request mediation (Figure 2). No-ops until
// obs.Enable().
var (
	metricOps = func(op string) *obs.Counter {
		return obs.NewCounter("privedit_mediator_ops_total",
			"Requests mediated by the extension, by outcome.", "op", op)
	}
	metricOpFull    = metricOps("full_encrypt")
	metricOpDelta   = metricOps("delta_transform")
	metricOpLoad    = metricOps("load_decrypt")
	metricOpPass    = metricOps("pass")
	metricOpBlocked = metricOps("blocked")

	metricEncryptLatency = obs.NewHistogram("privedit_mediator_encrypt_seconds",
		"Full-content encryption latency inside the extension (incl. stego), seconds.", obs.TimeBuckets)
	metricDecryptLatency = obs.NewHistogram("privedit_mediator_decrypt_seconds",
		"Document-load decryption latency inside the extension (incl. stego), seconds.", obs.TimeBuckets)
	metricPasswordFailures = obs.NewCounter("privedit_mediator_password_failures_total",
		"Failed attempts to derive or verify a document key (wrong password or provider error).")
	metricDeltaPlainBytes = obs.NewCounter("privedit_mediator_delta_plain_bytes_total",
		"Plaintext delta bytes submitted by the client application.")
	metricDeltaCipherBytes = obs.NewCounter("privedit_mediator_delta_cipher_bytes_total",
		"Ciphertext delta bytes actually sent to the server.")
)

// PasswordProvider supplies the per-document password and encryption
// options, standing in for the prototype's password dialog (§IV-C).
type PasswordProvider func(docID string) (password string, opts core.Options, err error)

// StaticPassword is a PasswordProvider that uses one password and one set
// of options for every document.
func StaticPassword(password string, opts core.Options) PasswordProvider {
	return func(string) (string, core.Options, error) { return password, opts, nil }
}

// Stats counts what the extension did, for the evaluation harness.
type Stats struct {
	FullEncrypts      int // docContents saves encrypted
	DeltasTransformed int // delta saves transformed
	LoadsDecrypted    int // document loads decrypted
	Passed            int // recognized non-content requests forwarded
	Blocked           int // unrecognized requests dropped
	PlainBytesIn      int // plaintext characters submitted by the client
	CipherBytesOut    int // ciphertext characters actually sent
}

// Extension is the mediating extension. Install it as the Transport of the
// client application's http.Client.
type Extension struct {
	base      http.RoundTripper
	passwords PasswordProvider
	mitigator *covert.Mitigator
	useStego  bool

	mu      sync.Mutex
	editors map[string]*core.Editor
	stats   Stats
}

var _ http.RoundTripper = (*Extension)(nil)

// Option customizes an Extension.
type Option func(*Extension)

// WithStego stores documents as word prose instead of Base32 (the §VI
// "availability" extension), so a provider scanning for
// encrypted-looking content finds none. See internal/stego for the
// honest limits of this.
func WithStego() Option {
	return func(e *Extension) { e.useStego = true }
}

// New builds an extension. base is the underlying transport (nil for
// http.DefaultTransport); mitigator may be nil to disable the §VI-B
// covert-channel countermeasures.
func New(base http.RoundTripper, passwords PasswordProvider, mitigator *covert.Mitigator, opts ...Option) *Extension {
	if base == nil {
		base = http.DefaultTransport
	}
	e := &Extension{
		base:      base,
		passwords: passwords,
		mitigator: mitigator,
		editors:   make(map[string]*core.Editor),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Client returns an http.Client routed through the extension.
func (e *Extension) Client() *http.Client {
	return &http.Client{Transport: e}
}

// Stats returns a snapshot of the extension's counters.
func (e *Extension) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Editor exposes the per-document encryption state (tests and tooling).
func (e *Extension) Editor(docID string) *core.Editor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.editors[docID]
}

// editorFor returns the existing editor for docID or creates a fresh one.
func (e *Extension) editorFor(docID string) (*core.Editor, error) {
	e.mu.Lock()
	if ed, ok := e.editors[docID]; ok {
		e.mu.Unlock()
		return ed, nil
	}
	e.mu.Unlock()
	password, opts, err := e.passwords(docID)
	if err != nil {
		metricPasswordFailures.Inc()
		return nil, err
	}
	ed, err := core.NewEditor(password, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.editors[docID]; ok {
		return existing, nil
	}
	e.editors[docID] = ed
	return ed, nil
}

// openEditor (re)opens the encryption state from a server-held container.
func (e *Extension) openEditor(docID, transport string) (*core.Editor, error) {
	password, _, err := e.passwords(docID)
	if err != nil {
		metricPasswordFailures.Inc()
		return nil, err
	}
	ed, err := core.Open(password, transport, nil)
	if err != nil {
		if errors.Is(err, core.ErrWrongPassword) {
			metricPasswordFailures.Inc()
		}
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.editors[docID] = ed
	return ed, nil
}

// synthesize builds a local response without touching the network.
func synthesize(req *http.Request, status int, msg string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(msg)),
		ContentLength: int64(len(msg)),
		Request:       req,
	}
}

func replaceBody(resp *http.Response, body string) {
	resp.Body = io.NopCloser(strings.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
}

// RoundTrip mediates one request: the Go rendition of Figure 2's
// onModifyRequest.
func (e *Extension) RoundTrip(req *http.Request) (*http.Response, error) {
	switch {
	case req.Method == http.MethodPost && req.URL.Path == gdocs.PathDoc:
		return e.mediateUpdate(req)
	case req.Method == http.MethodGet && req.URL.Path == gdocs.PathDoc:
		return e.mediateLoad(req)
	case req.Method == http.MethodPost && req.URL.Path == gdocs.PathCreate:
		return e.mediateCreate(req)
	default:
		// "Drop all unknown requests."
		e.mu.Lock()
		e.stats.Blocked++
		e.mu.Unlock()
		metricOpBlocked.Inc()
		return synthesize(req, http.StatusForbidden, "privedit: request blocked by extension"), nil
	}
}

// forward sends a rewritten form body to the server.
func (e *Extension) forward(req *http.Request, form url.Values) (*http.Response, error) {
	body := form.Encode()
	clone := req.Clone(req.Context())
	clone.Body = io.NopCloser(strings.NewReader(body))
	clone.ContentLength = int64(len(body))
	clone.Header = req.Header.Clone()
	clone.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return e.base.RoundTrip(clone)
}

func (e *Extension) mediateCreate(req *http.Request) (*http.Response, error) {
	form, err := readForm(req)
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: unreadable create request"), nil
	}
	docID := form.Get(gdocs.FieldDocID)
	if _, err := e.editorFor(docID); err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
	}
	e.mu.Lock()
	e.stats.Passed++
	e.mu.Unlock()
	metricOpPass.Inc()
	return e.forward(req, form)
}

func (e *Extension) mediateUpdate(req *http.Request) (*http.Response, error) {
	form, err := readForm(req)
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: unreadable update request"), nil
	}
	docID := form.Get(gdocs.FieldDocID)

	switch {
	case form.Has(gdocs.FieldDocContents): // full update
		ed, err := e.editorFor(docID)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
		}
		content := form.Get(gdocs.FieldDocContents)
		sp := metricEncryptLatency.Start()
		ctxt, err := ed.Encrypt(content)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: encrypt: "+err.Error()), nil
		}
		if e.useStego {
			if ctxt, err = stego.Encode(ctxt); err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: stego: "+err.Error()), nil
			}
		}
		sp.End()
		form.Set(gdocs.FieldDocContents, ctxt)
		e.applyPadding(form, len(ctxt))
		e.applyDelay()
		e.mu.Lock()
		e.stats.FullEncrypts++
		e.stats.PlainBytesIn += len(content)
		e.stats.CipherBytesOut += len(ctxt)
		e.mu.Unlock()
		metricOpFull.Inc()
		return e.mediateAck(req, form)

	case form.Has(gdocs.FieldDelta): // incremental update
		e.mu.Lock()
		ed := e.editors[docID]
		e.mu.Unlock()
		if ed == nil {
			return synthesize(req, http.StatusForbidden, "privedit: delta for unknown document"), nil
		}
		wire := form.Get(gdocs.FieldDelta)
		pd, err := delta.Parse(wire)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: bad delta: "+err.Error()), nil
		}
		if e.mitigator != nil {
			pd, err = e.mitigator.CanonicalDelta(ed.Plaintext(), pd)
			if err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: canonicalize: "+err.Error()), nil
			}
		}
		cd, err := ed.TransformDeltaOps(pd)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: transform_delta: "+err.Error()), nil
		}
		if e.useStego {
			if cd, err = stego.TransformDelta(cd); err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: stego: "+err.Error()), nil
			}
		}
		cwire := cd.String()
		form.Set(gdocs.FieldDelta, cwire)
		e.applyPadding(form, len(cwire))
		e.applyDelay()
		e.mu.Lock()
		e.stats.DeltasTransformed++
		e.stats.PlainBytesIn += len(wire)
		e.stats.CipherBytesOut += len(cwire)
		e.mu.Unlock()
		metricOpDelta.Inc()
		metricDeltaPlainBytes.Add(int64(len(wire)))
		metricDeltaCipherBytes.Add(int64(len(cwire)))
		return e.mediateAck(req, form)

	default:
		e.mu.Lock()
		e.stats.Blocked++
		e.mu.Unlock()
		metricOpBlocked.Inc()
		return synthesize(req, http.StatusForbidden, "privedit: unrecognized update"), nil
	}
}

// mediateAck forwards an update and blanks the content echo in the Ack:
// "the client works flawlessly when the values are replaced with an empty
// string for contentFromServer, and 0 for contentFromServerHash" (§IV-A).
func (e *Extension) mediateAck(req *http.Request, form url.Values) (*http.Response, error) {
	resp, err := e.forward(req, form)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("mediator: read ack: %w", err)
	}
	ack, err := gdocs.ParseAck(string(raw))
	if err != nil {
		return nil, fmt.Errorf("mediator: parse ack: %w", err)
	}
	ack.ContentFromServer = ""
	ack.ContentFromServerHash = 0
	replaceBody(resp, ack.Encode())
	return resp, nil
}

// mediateLoad forwards a document load and decrypts the returned container
// so the client application renders plaintext.
func (e *Extension) mediateLoad(req *http.Request) (*http.Response, error) {
	docID := req.URL.Query().Get(gdocs.FieldDocID)
	resp, err := e.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("mediator: read load: %w", err)
	}
	transport := string(raw)
	sp := metricDecryptLatency.Start()
	if e.useStego && transport != "" {
		decoded, err := stego.Decode(transport)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: stego decode: "+err.Error()), nil
		}
		transport = decoded
	}
	if transport == "" {
		// Brand-new document: nothing to decrypt, but the session needs
		// fresh encryption state.
		if _, err := e.editorFor(docID); err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
		}
		replaceBody(resp, "")
		return resp, nil
	}
	ed, err := e.openEditor(docID, transport)
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: open: "+err.Error()), nil
	}
	sp.End()
	e.mu.Lock()
	e.stats.LoadsDecrypted++
	e.mu.Unlock()
	metricOpLoad.Inc()
	replaceBody(resp, ed.Plaintext())
	return resp, nil
}

func (e *Extension) applyPadding(form url.Values, payloadLen int) {
	if e.mitigator == nil {
		return
	}
	if pad := e.mitigator.PadFor(payloadLen); pad != "" {
		form.Set("pad", pad)
	}
}

func (e *Extension) applyDelay() {
	if e.mitigator != nil {
		e.mitigator.Delay()
	}
}

func readForm(req *http.Request) (url.Values, error) {
	if req.Body == nil {
		return url.Values{}, nil
	}
	raw, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, err
	}
	return url.ParseQuery(string(raw))
}
