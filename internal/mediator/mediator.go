// Package mediator implements the paper's browser extension (Figure 1,
// Figure 2) as an http.RoundTripper: it intercepts every request the
// client application makes, encrypts the document content in save
// requests, transforms incremental deltas into ciphertext deltas, decrypts
// document loads, and drops every request it does not recognize — "for
// security, all requests other than those that can be interpreted and
// encrypted must be blocked" (§III).
//
// The extension holds one core.Editor per document: "the enc_scheme object
// provides three public interfaces: encrypt, decrypt, and transform_delta.
// It also maintains a copy of the state of the ciphertext document which
// is needed to transform the delta" (§IV-B).
package mediator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/stego"
	"privedit/internal/trace"
)

// Telemetry for the extension's request mediation (Figure 2). No-ops until
// obs.Enable().
var (
	metricOps = func(op string) *obs.Counter {
		return obs.NewCounter("privedit_mediator_ops_total",
			"Requests mediated by the extension, by outcome.", "op", op)
	}
	metricOpFull    = metricOps("full_encrypt")
	metricOpDelta   = metricOps("delta_transform")
	metricOpLoad    = metricOps("load_decrypt")
	metricOpPass    = metricOps("pass")
	metricOpBlocked = metricOps("blocked")
	metricOpQueued  = metricOps("queued_save")

	metricEncryptLatency = obs.NewHistogram("privedit_mediator_encrypt_seconds",
		"Full-content encryption latency inside the extension (incl. stego), seconds.", obs.TimeBuckets)
	metricDecryptLatency = obs.NewHistogram("privedit_mediator_decrypt_seconds",
		"Document-load decryption latency inside the extension (incl. stego), seconds.", obs.TimeBuckets)
	metricPasswordFailures = obs.NewCounter("privedit_mediator_password_failures_total",
		"Failed attempts to derive or verify a document key (wrong password or provider error).")
	metricDeltaPlainBytes = obs.NewCounter("privedit_mediator_delta_plain_bytes_total",
		"Plaintext delta bytes submitted by the client application.")
	metricDeltaCipherBytes = obs.NewCounter("privedit_mediator_delta_cipher_bytes_total",
		"Ciphertext delta bytes actually sent to the server.")
	metricDeltaOpsCoalesced = obs.NewCounter("privedit_mediator_delta_ops_coalesced_total",
		"Plaintext delta operations folded away by coalescing before transform_delta.")

	metricQueueDepth = obs.NewGauge("privedit_mediator_queue_depth",
		"Saves currently queued in per-document pipelines across all sessions.")
	metricOTMerges = obs.NewCounter("privedit_mediator_ot_merges_total",
		"Rejected saves repaired by transforming the queue over server catch-up deltas.")
	metricConflictResyncs = obs.NewCounter("privedit_mediator_conflict_resyncs_total",
		"Rejected saves that fell back to a full refetch-and-resync.")
	metricQueueCoalesced = obs.NewCounter("privedit_mediator_queue_coalesced_total",
		"Saves folded into the pipeline queue tail because the queue was at max depth.")
)

// PasswordProvider supplies the per-document password and encryption
// options, standing in for the prototype's password dialog (§IV-C).
type PasswordProvider func(docID string) (password string, opts core.Options, err error)

// StaticPassword is a PasswordProvider that uses one password and one set
// of options for every document.
func StaticPassword(password string, opts core.Options) PasswordProvider {
	return func(string) (string, core.Options, error) { return password, opts, nil }
}

// Stats counts what the extension did, for the evaluation harness. A
// snapshot is internally consistent: every field is read under one lock,
// so a reader never sees, say, a queued save whose queue-depth increment
// is missing. (The old per-field atomics were racy as a *set* once the
// async writer started mutating several fields per event.)
type Stats struct {
	FullEncrypts      int // docContents saves encrypted
	DeltasTransformed int // delta saves transformed
	LoadsDecrypted    int // document loads decrypted
	Passed            int // recognized non-content requests forwarded
	Blocked           int // unrecognized requests dropped
	PlainBytesIn      int // plaintext characters submitted by the client
	CipherBytesOut    int // ciphertext characters actually sent

	Retries          int // retry attempts beyond the first try
	RetryGiveups     int // round trips that exhausted the retry budget
	AdmissionRetries int // retries caused by typed admission rejects (429/503 + HeaderRetryable)
	BreakerTrips  int // per-document breakers tripped open (closed→open)
	DegradedSaves int // saves absorbed locally while the breaker was open
	DegradedLoads int // loads served from local state while open
	Drains        int // queued degraded saves successfully replayed

	QueuedSaves     int // saves accepted into a per-document pipeline queue
	QueueCoalesced  int // saves folded into the queue tail at max depth
	QueueDepth      int // saves currently queued across all documents
	OTMerges        int // rejected saves repaired by delta.Transform catch-up
	ConflictResyncs int // rejected saves that fell back to a full resync
	DroppedSaves    int // queued saves abandoned after repeated rejection
}

// session is the per-document mediation state: one encryption editor plus
// the lock that serializes mediation for that document. core.Editor is not
// safe for concurrent use, and the editor's state must advance in the same
// order the server applies the document's updates, so the lock is held
// across the whole round trip — edits to the SAME document serialize
// end-to-end, edits to DISTINCT documents proceed fully in parallel.
type session struct {
	mu  sync.Mutex
	ed  *core.Editor // nil until first use
	brk breakerState // circuit breaker + degraded-mode shadow (resilience.go)
	pl  *plState     // pipelined save state, nil on the legacy sync path
}

// Extension is the mediating extension. Install it as the Transport of the
// client application's http.Client. It is safe for concurrent use and
// manages any number of per-document sessions behind one RoundTripper.
type Extension struct {
	base      http.RoundTripper
	passwords PasswordProvider
	mitigator *covert.Mitigator
	useStego  bool
	res       *resilience // nil = legacy fail-fast mediation
	pipeDepth int         // >0 = pipelined async saves, max queue depth
	saveToken uint64      // random per-extension idempotency-token prefix

	mu       sync.RWMutex
	sessions map[string]*session
	rngMu    sync.Mutex // guards res.rng (backoff jitter)

	statsMu sync.Mutex
	stats   Stats
}

var _ http.RoundTripper = (*Extension)(nil)

// Option customizes an Extension.
type Option func(*Extension)

// WithStego stores documents as word prose instead of Base32 (the §VI
// "availability" extension), so a provider scanning for
// encrypted-looking content finds none. See internal/stego for the
// honest limits of this.
func WithStego() Option {
	return func(e *Extension) { e.useStego = true }
}

// WithMitigator installs the §VI-B covert-channel countermeasures
// (padding, delay, delta canonicalization).
func WithMitigator(m *covert.Mitigator) Option {
	return func(e *Extension) { e.mitigator = m }
}

// DefaultInflight is the pipeline queue depth WithPipeline(0) selects.
const DefaultInflight = 4

// WithPipeline switches save mediation from the legacy synchronous path
// to pipelined asynchronous saves: updates are acknowledged locally and
// enqueued into a per-document ordered queue that a writer goroutine
// drains in the background, transforming each queued delta against any
// server updates that interleaved (OT-first merge) instead of resyncing.
// depth bounds the per-document queue (0 selects DefaultInflight); once
// full, new saves coalesce into the queue tail so local editing never
// blocks on a slow backend.
func WithPipeline(depth int) Option {
	return func(e *Extension) {
		if depth <= 0 {
			depth = DefaultInflight
		}
		e.pipeDepth = depth
	}
}

// New builds an extension. base is the underlying transport (nil for
// http.DefaultTransport). Covert-channel mitigation, stego encoding,
// resilience, and save pipelining are all options.
func New(base http.RoundTripper, passwords PasswordProvider, opts ...Option) *Extension {
	if base == nil {
		base = http.DefaultTransport
	}
	e := &Extension{
		base:      base,
		passwords: passwords,
		sessions:  make(map[string]*session),
	}
	for _, opt := range opts {
		if opt != nil {
			opt(e)
		}
	}
	if e.pipeDepth > 0 {
		e.saveToken = crypt.CryptoNonceSource{}.Nonce64()
	}
	return e
}

// NewWithMitigator builds an extension with a positional mitigator.
//
// Deprecated: use New with the WithMitigator option.
func NewWithMitigator(base http.RoundTripper, passwords PasswordProvider, mitigator *covert.Mitigator, opts ...Option) *Extension {
	if mitigator != nil {
		opts = append([]Option{WithMitigator(mitigator)}, opts...)
	}
	return New(base, passwords, opts...)
}

// Client returns an http.Client routed through the extension.
func (e *Extension) Client() *http.Client {
	return &http.Client{Transport: e}
}

// bump applies a mutation to the live stats under the stats lock, so
// multi-field updates (queue depth + queued count, say) stay atomic as a
// set with respect to Stats().
func (e *Extension) bump(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// Stats returns a consistent snapshot of the extension's counters.
func (e *Extension) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// SessionCount returns the number of per-document sessions currently
// managed.
func (e *Extension) SessionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.sessions)
}

// sessionFor returns the document's session, creating the (empty) session
// record if needed. The editor inside is created lazily under the
// session's own lock so the extension-wide map lock is never held during
// key derivation or encryption.
func (e *Extension) sessionFor(docID string) *session {
	e.mu.RLock()
	sess := e.sessions[docID]
	e.mu.RUnlock()
	if sess != nil {
		return sess
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if sess = e.sessions[docID]; sess == nil {
		sess = &session{}
		e.sessions[docID] = sess
	}
	return sess
}

// editorLocked returns the session's editor, creating fresh encryption
// state on first use. Callers must hold sess.mu.
func (e *Extension) editorLocked(sess *session, docID string) (*core.Editor, error) {
	if sess.ed != nil {
		return sess.ed, nil
	}
	password, opts, err := e.passwords(docID)
	if err != nil {
		metricPasswordFailures.Inc()
		return nil, err
	}
	ed, err := core.NewEditor(password, opts)
	if err != nil {
		return nil, err
	}
	sess.ed = ed
	return ed, nil
}

// openEditorLocked (re)opens the encryption state from a server-held
// container. Callers must hold sess.mu.
func (e *Extension) openEditorLocked(sess *session, docID, transport string) (*core.Editor, error) {
	password, opts, err := e.passwords(docID)
	if err != nil {
		metricPasswordFailures.Inc()
		return nil, err
	}
	ed, err := core.OpenWith(password, transport, core.Options{Workers: opts.Workers})
	if err != nil {
		if errors.Is(err, core.ErrWrongPassword) {
			metricPasswordFailures.Inc()
		}
		return nil, err
	}
	sess.ed = ed
	return ed, nil
}

// resyncLocked re-fetches the server's ciphertext and re-opens the
// session's editor. It is called after a failed update mediation: by then
// the editor may have advanced past a save the server rejected (a version
// conflict from a concurrent session), and transforming the next delta
// against diverged state would corrupt the stored ciphertext. Re-opening
// before the session lock is released closes that window. On any failure
// the editor is dropped instead, so the next load rebuilds it.
// Callers must hold sess.mu.
func (e *Extension) resyncLocked(sess *session, docID string, req *http.Request) {
	_, _ = e.refetchLocked(sess, docID, req)
}

// refetchLocked is resyncLocked with the outcome reported: it returns the
// server's current document version (for the drain path's optimistic
// concurrency check) and any fetch/open error. The editor is dropped
// first, so on failure the next load rebuilds it from the server.
// Callers must hold sess.mu.
func (e *Extension) refetchLocked(sess *session, docID string, req *http.Request) (int, error) {
	sess.ed = nil
	rctx, rsp := trace.Start(req.Context(), trace.SpanResync)
	defer rsp.End()
	u := *req.URL
	u.Path = gdocs.PathDoc
	u.RawQuery = url.Values{gdocs.FieldDocID: {docID}}.Encode()
	resp, err := e.sendResilient(rctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	})
	if err != nil {
		return 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("mediator: resync fetch: status %d", resp.StatusCode)
	}
	version, _ := strconv.Atoi(resp.Header.Get(gdocs.HeaderDocVersion))
	transport := string(raw)
	if e.useStego && transport != "" {
		if transport, err = stego.Decode(transport); err != nil {
			return 0, err
		}
	}
	if transport == "" {
		// Empty document: nothing to open; the editor stays nil.
		return version, nil
	}
	if _, err := e.openEditorLocked(sess, docID, transport); err != nil {
		return 0, err
	}
	return version, nil
}

// synthesize builds a local response without touching the network.
func synthesize(req *http.Request, status int, msg string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(msg)),
		ContentLength: int64(len(msg)),
		Request:       req,
	}
}

func replaceBody(resp *http.Response, body string) {
	resp.Body = io.NopCloser(strings.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
}

// RoundTrip mediates one request: the Go rendition of Figure 2's
// onModifyRequest. It is safe for concurrent use; requests for distinct
// documents are mediated in parallel, requests for the same document
// serialize on that document's session.
func (e *Extension) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		// Already cancelled or timed out: don't bother encrypting work the
		// caller has abandoned.
		return nil, err
	}
	switch {
	case req.Method == http.MethodPost && req.URL.Path == gdocs.PathDoc:
		return e.mediateUpdate(req)
	case req.Method == http.MethodGet && req.URL.Path == gdocs.PathDoc:
		return e.mediateLoad(req)
	case req.Method == http.MethodPost && req.URL.Path == gdocs.PathCreate:
		return e.mediateCreate(req)
	default:
		// "Drop all unknown requests."
		e.bump(func(s *Stats) { s.Blocked++ })
		metricOpBlocked.Inc()
		return synthesize(req, http.StatusForbidden, "privedit: request blocked by extension"), nil
	}
}

// forward sends a rewritten form body to the server, through the retry
// layer when resilience is enabled. The request is rebuilt per attempt so
// every retry carries a fresh body.
func (e *Extension) forward(req *http.Request, form url.Values) (*http.Response, error) {
	body := form.Encode()
	return e.sendResilient(req.Context(), func(ctx context.Context) (*http.Request, error) {
		clone := req.Clone(ctx)
		clone.Body = io.NopCloser(strings.NewReader(body))
		clone.ContentLength = int64(len(body))
		clone.Header = req.Header.Clone()
		clone.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		return clone, nil
	})
}

func (e *Extension) mediateCreate(req *http.Request) (*http.Response, error) {
	form, err := readForm(req)
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: unreadable create request"), nil
	}
	docID := form.Get(gdocs.FieldDocID)
	ctx, op := trace.Start(req.Context(), trace.SpanMediateCreate)
	defer op.End()
	op.Annotate("doc", docID)
	req = req.WithContext(ctx)
	sess := e.sessionFor(docID)
	sess.mu.Lock()
	_, err = e.editorLocked(sess, docID)
	sess.mu.Unlock()
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
	}
	e.bump(func(s *Stats) { s.Passed++ })
	metricOpPass.Inc()
	resp, err := e.forward(req, form)
	if err == nil && resp.StatusCode == http.StatusOK && e.pipeDepth > 0 {
		// Pipelined mode: a successful create establishes the session's
		// server lineage (empty document at version 0) up front, so the
		// first save can already be queued and acknowledged locally.
		sess.mu.Lock()
		if sess.pl == nil {
			e.pipeBootstrapLocked(sess, docID, req.URL, "", "", 0)
		}
		sess.mu.Unlock()
	}
	return resp, err
}

func (e *Extension) mediateUpdate(req *http.Request) (*http.Response, error) {
	form, err := readForm(req)
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: unreadable update request"), nil
	}
	docID := form.Get(gdocs.FieldDocID)
	ctx, op := trace.Start(req.Context(), trace.SpanMediateUpdate)
	defer op.End()
	op.Annotate("doc", docID)
	req = req.WithContext(ctx)

	if e.pipeDepth > 0 {
		return e.pipeUpdate(req, op, form, docID)
	}

	// The session lock is held across the whole round trip, not just the
	// crypto: the editor's ciphertext state must advance in the same order
	// the server applies this document's updates, and releasing the lock
	// between transform and forward would let a second writer interleave.
	switch {
	case form.Has(gdocs.FieldDocContents): // full update
		sess := e.sessionFor(docID)
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if e.gateLocked(sess, docID, req) {
			return e.degradeUpdateLocked(sess, req, form)
		}
		ed, err := e.editorLocked(sess, docID)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
		}
		content := form.Get(gdocs.FieldDocContents)
		_, esp := trace.Start(ctx, trace.SpanEncrypt)
		defer esp.End() // idempotent: backstop for the error returns below
		sp := metricEncryptLatency.Start()
		ctxt, err := ed.Encrypt(content)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: encrypt: "+err.Error()), nil
		}
		if e.useStego {
			if ctxt, err = stego.Encode(ctxt); err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: stego: "+err.Error()), nil
			}
		}
		sp.EndExemplar(op.TraceID())
		esp.End()
		form.Set(gdocs.FieldDocContents, ctxt)
		e.applyPadding(form, len(ctxt))
		e.applyDelay()
		e.bump(func(s *Stats) {
			s.FullEncrypts++
			s.PlainBytesIn += len(content)
			s.CipherBytesOut += len(ctxt)
		})
		metricOpFull.Inc()
		sctx, ssp := trace.Start(ctx, trace.SpanSave)
		resp, err := e.mediateAck(req.WithContext(sctx), form)
		ssp.End()
		e.recordLocked(req.Context(), sess, !infraFailure(resp, err))
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil && resp.StatusCode == http.StatusConflict {
				op.Annotate("conflict", "1")
			}
			e.resyncLocked(sess, docID, req)
		}
		return resp, err

	case form.Has(gdocs.FieldDelta): // incremental update
		e.mu.RLock()
		sess := e.sessions[docID]
		e.mu.RUnlock()
		if sess == nil {
			return synthesize(req, http.StatusForbidden, "privedit: delta for unknown document"), nil
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if e.gateLocked(sess, docID, req) {
			return e.degradeUpdateLocked(sess, req, form)
		}
		ed := sess.ed
		if ed == nil {
			return synthesize(req, http.StatusForbidden, "privedit: delta for unknown document"), nil
		}
		wire := form.Get(gdocs.FieldDelta)
		_, tsp := trace.Start(ctx, trace.SpanTransform)
		defer tsp.End() // idempotent: backstop for the error returns below
		pd, err := delta.Parse(wire)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: bad delta: "+err.Error()), nil
		}
		// Coalesce bursts of adjacent edits before transforming: a run of k
		// single-character insertions becomes one insert, so transform_delta
		// performs one splice and emits one small ciphertext delta.
		if before := len(pd); before > 1 {
			pd = pd.Coalesce()
			if dropped := before - len(pd); dropped > 0 {
				metricDeltaOpsCoalesced.Add(int64(dropped))
			}
		}
		if e.mitigator != nil {
			pd, err = e.mitigator.CanonicalDelta(ed.Plaintext(), pd)
			if err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: canonicalize: "+err.Error()), nil
			}
		}
		cd, err := ed.TransformDeltaOps(pd)
		if err != nil {
			// The usual cause is a delta computed against a stale plaintext
			// (a concurrent session advanced the document); drop back to the
			// server's state so later transforms stay aligned with it.
			tsp.Annotate("error", "transform_delta")
			tsp.End()
			e.resyncLocked(sess, docID, req)
			return synthesize(req, http.StatusForbidden, "privedit: transform_delta: "+err.Error()), nil
		}
		if e.useStego {
			if cd, err = stego.TransformDelta(cd); err != nil {
				return synthesize(req, http.StatusForbidden, "privedit: stego: "+err.Error()), nil
			}
		}
		tsp.End()
		cwire := cd.String()
		form.Set(gdocs.FieldDelta, cwire)
		e.applyPadding(form, len(cwire))
		e.applyDelay()
		e.bump(func(s *Stats) {
			s.DeltasTransformed++
			s.PlainBytesIn += len(wire)
			s.CipherBytesOut += len(cwire)
		})
		metricOpDelta.Inc()
		metricDeltaPlainBytes.Add(int64(len(wire)))
		metricDeltaCipherBytes.Add(int64(len(cwire)))
		sctx, ssp := trace.Start(ctx, trace.SpanSave)
		resp, err := e.mediateAck(req.WithContext(sctx), form)
		ssp.End()
		e.recordLocked(req.Context(), sess, !infraFailure(resp, err))
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil && resp.StatusCode == http.StatusConflict {
				op.Annotate("conflict", "1")
			}
			e.resyncLocked(sess, docID, req)
		}
		return resp, err

	default:
		e.bump(func(s *Stats) { s.Blocked++ })
		metricOpBlocked.Inc()
		return synthesize(req, http.StatusForbidden, "privedit: unrecognized update"), nil
	}
}

// mediateAck forwards an update and blanks the content echo in the Ack:
// "the client works flawlessly when the values are replaced with an empty
// string for contentFromServer, and 0 for contentFromServerHash" (§IV-A).
func (e *Extension) mediateAck(req *http.Request, form url.Values) (*http.Response, error) {
	resp, err := e.forward(req, form)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("mediator: read ack: %w", err)
	}
	ack, err := gdocs.ParseAck(string(raw))
	if err != nil {
		return nil, fmt.Errorf("mediator: parse ack: %w", err)
	}
	ack.ContentFromServer = ""
	ack.ContentFromServerHash = 0
	replaceBody(resp, ack.Encode())
	return resp, nil
}

// mediateLoad forwards a document load and decrypts the returned container
// so the client application renders plaintext.
func (e *Extension) mediateLoad(req *http.Request) (*http.Response, error) {
	docID := req.URL.Query().Get(gdocs.FieldDocID)
	ctx, op := trace.Start(req.Context(), trace.SpanMediateLoad)
	defer op.End()
	op.Annotate("doc", docID)
	req = req.WithContext(ctx)
	if e.pipeDepth > 0 {
		return e.pipeLoad(req, op, docID)
	}
	if q := req.URL.Query(); q.Has(gdocs.FieldSince) {
		// The synchronous path decrypts whole containers; a delta catch-up
		// response would be ciphertext deltas it cannot serve. Ask the
		// server for full content instead.
		u2 := *req.URL
		q.Del(gdocs.FieldSince)
		u2.RawQuery = q.Encode()
		req.URL = &u2
	}
	// The session lock must cover the fetch itself, not just the decrypt:
	// re-opening the editor from a snapshot that predates a concurrent save
	// would silently rewind the mediation state behind the server's back.
	sess := e.sessionFor(docID)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if e.gateLocked(sess, docID, req) {
		return e.degradeLoadLocked(sess, req)
	}
	lctx, lsp := trace.Start(ctx, trace.SpanLoad)
	defer lsp.End() // idempotent: backstop for the error returns below
	resp, err := e.sendResilient(lctx, func(ctx context.Context) (*http.Request, error) {
		return req.Clone(ctx), nil
	})
	e.recordLocked(ctx, sess, !infraFailure(resp, err))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("mediator: read load: %w", err)
	}
	lsp.End()
	transport := string(raw)
	_, dsp := trace.Start(ctx, trace.SpanDecrypt)
	defer dsp.End() // idempotent: backstop for the error returns below
	sp := metricDecryptLatency.Start()
	if e.useStego && transport != "" {
		decoded, err := stego.Decode(transport)
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: stego decode: "+err.Error()), nil
		}
		transport = decoded
	}
	if transport == "" {
		// Brand-new document: nothing to decrypt, but the session needs
		// fresh encryption state.
		if _, err := e.editorLocked(sess, docID); err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: "+err.Error()), nil
		}
		replaceBody(resp, "")
		return resp, nil
	}
	ed, err := e.openEditorLocked(sess, docID, transport)
	if err != nil {
		return synthesize(req, http.StatusForbidden, "privedit: open: "+err.Error()), nil
	}
	sp.EndExemplar(op.TraceID())
	dsp.End()
	e.bump(func(s *Stats) { s.LoadsDecrypted++ })
	metricOpLoad.Inc()
	replaceBody(resp, ed.Plaintext())
	return resp, nil
}

func (e *Extension) applyPadding(form url.Values, payloadLen int) {
	if e.mitigator == nil {
		return
	}
	if pad := e.mitigator.PadFor(payloadLen); pad != "" {
		form.Set("pad", pad)
	}
}

func (e *Extension) applyDelay() {
	if e.mitigator != nil {
		e.mitigator.Delay()
	}
}

func readForm(req *http.Request) (url.Values, error) {
	if req.Body == nil {
		return url.Values{}, nil
	}
	raw, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, err
	}
	return url.ParseQuery(string(raw))
}
