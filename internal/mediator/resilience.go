// Resilience: the paper's extension mediated live traffic to an untrusted
// *and unreliable* cloud, so a round trip may drop, stall, 5xx, or come
// back corrupted. This file gives the extension three layers of defense,
// all per document and all behind WithResilience (off by default so the
// legacy fail-fast behavior — and every existing test — is unchanged):
//
//  1. Retry with exponential backoff and decorrelated jitter for
//     transient transport errors, 5xx, and 429 responses, bounded by the
//     request's context and an optional per-attempt deadline budget.
//  2. A per-document circuit breaker: after TripAfter consecutive
//     infrastructure failures the document trips into degraded mode and
//     stops hammering a dead server; cooldowns double (decorrelated by
//     the retry jitter being per-attempt) up to MaxCooldown, then a
//     half-open probe decides whether to close.
//  3. Degraded mode: while the breaker is open the local plaintext view
//     stays fully editable — saves are absorbed into a per-document
//     shadow plaintext and acknowledged locally (marked with the
//     X-Privedit-Degraded header), loads are served from the shadow.
//     On recovery the queued state drains through the PR-2 resync path:
//     re-fetch the server ciphertext, re-open the editor, and replay the
//     queued edits as one transformed delta — so a retried or replayed
//     save can never diverge the skip-list indices.
package mediator

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"privedit/internal/delta"
	"privedit/internal/diff"
	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/stego"
	"privedit/internal/trace"
)

// Telemetry for the resilience layer. No-ops until obs.Enable().
var (
	metricRetryAttempts = obs.NewCounter("privedit_mediator_retry_attempts_total",
		"Retries of mediated round trips beyond the first attempt.")
	metricRetryGiveups = obs.NewCounter("privedit_mediator_retry_giveups_total",
		"Mediated round trips that exhausted the retry budget.")
	metricRetryBackoff = obs.NewHistogram("privedit_mediator_retry_backoff_seconds",
		"Backoff slept before a retry (decorrelated jitter), seconds.", obs.TimeBuckets)

	metricBreakerTransitions = func(to string) *obs.Counter {
		return obs.NewCounter("privedit_mediator_breaker_transitions_total",
			"Per-document circuit-breaker state transitions, by target state.", "to", to)
	}
	metricBreakerToOpen   = metricBreakerTransitions("open")
	metricBreakerToHalf   = metricBreakerTransitions("half_open")
	metricBreakerToClosed = metricBreakerTransitions("closed")

	metricBreakerOpenDocs = obs.NewGauge("privedit_mediator_breaker_open_docs",
		"Documents whose circuit breaker is currently open (degraded mode).")
	metricQueuedSaves = obs.NewGauge("privedit_mediator_queued_saves",
		"Documents with a degraded-mode shadow save queued for drain.")

	metricDegraded = func(op string) *obs.Counter {
		return obs.NewCounter("privedit_mediator_degraded_total",
			"Operations served locally in degraded mode, by kind.", "op", op)
	}
	metricDegradedSave = metricDegraded("save")
	metricDegradedLoad = metricDegraded("load")

	metricDrains = obs.NewCounter("privedit_mediator_drains_total",
		"Queued degraded-mode saves successfully replayed to the server.")

	metricAdmissionRetries = obs.NewCounter("privedit_mediator_admission_retries_total",
		"Retries triggered by typed server admission rejects (rate limit or drain).")
)

// RetryPolicy bounds the retry loop around one mediated round trip.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// 0 means 4.
	MaxAttempts int
	// BaseBackoff is the minimum sleep before a retry. 0 means 5ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the decorrelated-jitter sleep. 0 means 250ms.
	MaxBackoff time.Duration
	// TryTimeout, when positive, is a per-attempt deadline layered onto
	// the request's own context — the deadline budget that keeps one
	// hung attempt from eating the whole retry window.
	TryTimeout time.Duration
	// Seed drives the jitter PRNG, for reproducible backoff schedules.
	Seed int64
}

// BreakerPolicy governs the per-document circuit breaker.
type BreakerPolicy struct {
	// TripAfter is how many consecutive infrastructure failures open the
	// breaker. 0 means 5.
	TripAfter int
	// Cooldown is the initial open period before a half-open probe. It
	// doubles after every failed probe. A zero cooldown is valid and
	// means "probe on the very next request" — the time-independent mode
	// the deterministic chaos harness uses.
	Cooldown time.Duration
	// MaxCooldown caps the doubling. 0 means 2s.
	MaxCooldown time.Duration
}

// Resilience bundles the retry and breaker policies.
type Resilience struct {
	Retry   RetryPolicy
	Breaker BreakerPolicy
}

// DefaultResilience returns the policies used when WithResilience is given
// zero values: 4 attempts, 5ms..250ms decorrelated-jitter backoff, a
// breaker tripping after 5 consecutive failures with a 100ms initial
// cooldown doubling to 2s.
func DefaultResilience() Resilience {
	return Resilience{
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 250 * time.Millisecond},
		Breaker: BreakerPolicy{TripAfter: 5, Cooldown: 100 * time.Millisecond, MaxCooldown: 2 * time.Second},
	}
}

func (r Resilience) withDefaults() Resilience {
	if r.Retry.MaxAttempts <= 0 {
		r.Retry.MaxAttempts = 4
	}
	if r.Retry.BaseBackoff <= 0 {
		r.Retry.BaseBackoff = 5 * time.Millisecond
	}
	if r.Retry.MaxBackoff <= 0 {
		r.Retry.MaxBackoff = 250 * time.Millisecond
	}
	if r.Breaker.TripAfter <= 0 {
		r.Breaker.TripAfter = 5
	}
	if r.Breaker.MaxCooldown <= 0 {
		r.Breaker.MaxCooldown = 2 * time.Second
	}
	return r
}

// WithResilience enables the retry/breaker/degraded-mode stack with the
// given policies (zero fields take DefaultResilience values, except
// Breaker.Cooldown where zero means probe-immediately).
func WithResilience(r Resilience) Option {
	return func(e *Extension) {
		rr := r.withDefaults()
		e.res = &resilience{
			retry:   rr.Retry,
			breaker: rr.Breaker,
			now:     time.Now,
			rng:     uint64(rr.Retry.Seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3,
		}
	}
}

// resilience is the runtime form of the policies plus the jitter PRNG.
// The PRNG sits behind the extension-wide rngMu (cheap: it is touched only
// when a retry actually sleeps).
type resilience struct {
	retry   RetryPolicy
	breaker BreakerPolicy
	now     func() time.Time
	rng     uint64 // guarded by Extension.rngMu
}

// mix64 is the SplitMix64 step — no math/rand, so backoff jitter stays a
// pure function of the seed and call order.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextBackoff draws the decorrelated-jitter sleep: uniform in
// [base, prev*3], capped at MaxBackoff (the AWS "decorrelated jitter"
// schedule).
func (e *Extension) nextBackoff(prev time.Duration) time.Duration {
	r := e.res
	lo, hi := r.retry.BaseBackoff, prev*3
	if hi <= lo {
		return lo
	}
	e.rngMu.Lock()
	r.rng = mix64(r.rng)
	word := r.rng
	e.rngMu.Unlock()
	d := lo + time.Duration(word%uint64(hi-lo))
	if d > r.retry.MaxBackoff {
		d = r.retry.MaxBackoff
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableStatus reports whether an HTTP status signals transient
// server-side trouble worth retrying.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// admissionReject reports whether a response is a typed admission-control
// rejection (the server rate-limiting or draining), and the server's
// Retry-After hint when it gave one. These are deliberate backpressure,
// not infrastructure failure: the server marked them retryable itself.
func admissionReject(resp *http.Response) (hint time.Duration, ok bool) {
	if resp == nil || resp.Header.Get(gdocs.HeaderRetryable) == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		hint = time.Duration(secs) * time.Second
	}
	return hint, true
}

// sendResilient performs one logical round trip through the base
// transport, retrying transient failures per the retry policy. build is
// called once per attempt with the attempt's context so the request body
// is fresh every time. Without a resilience config it degenerates to a
// single pass-through attempt.
func (e *Extension) sendResilient(ctx context.Context, build func(context.Context) (*http.Request, error)) (*http.Response, error) {
	if e.res == nil {
		req, err := build(ctx)
		if err != nil {
			return nil, err
		}
		trace.SetRequestHeader(req)
		return e.base.RoundTrip(req)
	}
	pol := e.res.retry
	parent := trace.Current(ctx)
	var (
		lastErr  error
		lastResp *http.Response
		backoff  time.Duration
		hint     time.Duration // server Retry-After from an admission reject
	)
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		attemptCtx := ctx
		var rsp *trace.Span
		if attempt > 0 {
			backoff = e.nextBackoff(backoff)
			// An admission reject's Retry-After is a floor on the sleep:
			// the server told us when capacity returns, so sleeping less
			// just burns an attempt. Cap the hint at MaxBackoff to keep a
			// hostile or confused server from stalling the client.
			if hint > 0 {
				if hint > pol.MaxBackoff {
					hint = pol.MaxBackoff
				}
				if hint > backoff {
					backoff = hint
				}
				hint = 0
			}
			e.bump(func(s *Stats) { s.Retries++ })
			metricRetryAttempts.Inc()
			metricRetryBackoff.Observe(backoff.Seconds())
			parent.AnnotateInt("retry_attempt", int64(attempt+1))
			attemptCtx, rsp = trace.Start(ctx, trace.SpanRetry)
			rsp.AnnotateInt("attempt", int64(attempt+1))
			rsp.Annotate("backoff", backoff.String())
			if err := sleepCtx(ctx, backoff); err != nil {
				rsp.Annotate("outcome", "cancelled")
				rsp.End()
				return nil, err
			}
		}
		resp, err := e.attemptOnce(attemptCtx, build)
		if err != nil {
			rsp.Annotate("outcome", "error")
			rsp.End()
			lastErr, lastResp = err, nil
			if ctx.Err() != nil {
				// The caller's deadline (not the per-attempt budget) is
				// spent: no further attempt can succeed.
				return nil, err
			}
			continue
		}
		if retryableStatus(resp.StatusCode) {
			rsp.AnnotateInt("status", int64(resp.StatusCode))
			rsp.Annotate("outcome", "retryable_status")
			if h, adm := admissionReject(resp); adm {
				hint = h
				rsp.Annotate("admission_reject", "1")
				e.bump(func(s *Stats) { s.AdmissionRetries++ })
				metricAdmissionRetries.Inc()
			}
			rsp.End()
			lastErr, lastResp = nil, resp
			if attempt < pol.MaxAttempts-1 {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			continue
		}
		rsp.Annotate("outcome", "ok")
		rsp.End()
		return resp, nil
	}
	e.bump(func(s *Stats) { s.RetryGiveups++ })
	metricRetryGiveups.Inc()
	parent.Annotate("retry_giveup", "1")
	if lastResp != nil {
		return lastResp, nil
	}
	return nil, fmt.Errorf("mediator: retries exhausted: %w", lastErr)
}

// attemptOnce runs a single attempt, applying the per-attempt deadline
// budget when configured. With a budget the response body is buffered
// before the attempt context is released, so the caller never reads from
// a cancelled stream.
func (e *Extension) attemptOnce(ctx context.Context, build func(context.Context) (*http.Request, error)) (*http.Response, error) {
	budget := e.res.retry.TryTimeout
	if budget <= 0 {
		req, err := build(ctx)
		if err != nil {
			return nil, err
		}
		trace.SetRequestHeader(req)
		return e.base.RoundTrip(req)
	}
	tryCtx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	req, err := build(tryCtx)
	if err != nil {
		return nil, err
	}
	trace.SetRequestHeader(req)
	resp, err := e.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(strings.NewReader(string(raw)))
	resp.ContentLength = int64(len(raw))
	return resp, nil
}

// infraFailure classifies a completed round trip for the breaker: transport
// errors, retry exhaustion, and transient server statuses count; logical
// rejections (409 conflicts, 4xx protocol errors) do not.
func infraFailure(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return retryableStatus(resp.StatusCode)
}

// Circuit-breaker states.
const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

// breakerState is the per-document breaker plus the degraded-mode shadow.
// It lives inside the session and is guarded by session.mu.
type breakerState struct {
	state     int
	failures  int           // consecutive infrastructure failures
	cooldown  time.Duration // current open period (doubles per failed probe)
	reopenAt  time.Time
	shadow    string // latest degraded-mode plaintext, queued for drain
	hasShadow bool
}

// brkName renders a breaker state for trace annotations.
func brkName(state int) string {
	switch state {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// transitionLocked moves the breaker to a new state, keeping the
// open-docs gauge and the transition counters honest, and annotating the
// current trace span with the transition. Callers hold session.mu.
func (e *Extension) transitionLocked(ctx context.Context, b *breakerState, to int) {
	if b.state == to {
		return
	}
	trace.Current(ctx).Annotate("breaker", brkName(b.state)+"->"+brkName(to))
	if b.state == brkOpen {
		metricBreakerOpenDocs.Add(-1)
	}
	if to == brkOpen {
		metricBreakerOpenDocs.Add(1)
	}
	b.state = to
	switch to {
	case brkOpen:
		metricBreakerToOpen.Inc()
	case brkHalfOpen:
		metricBreakerToHalf.Inc()
	case brkClosed:
		metricBreakerToClosed.Inc()
	}
}

// openLocked (re)opens the breaker, doubling the cooldown on repeated
// failures. Callers hold session.mu.
func (e *Extension) openLocked(ctx context.Context, b *breakerState) {
	switch {
	case b.cooldown <= 0:
		b.cooldown = e.res.breaker.Cooldown
	default:
		b.cooldown *= 2
	}
	if b.cooldown > e.res.breaker.MaxCooldown {
		b.cooldown = e.res.breaker.MaxCooldown
	}
	b.reopenAt = e.res.now().Add(b.cooldown)
	e.transitionLocked(ctx, b, brkOpen)
}

// recordLocked feeds one round-trip outcome into the breaker. Callers
// hold session.mu.
func (e *Extension) recordLocked(ctx context.Context, sess *session, ok bool) {
	if e.res == nil {
		return
	}
	b := &sess.brk
	if ok {
		b.failures = 0
		if b.state != brkClosed {
			e.transitionLocked(ctx, b, brkClosed)
			b.cooldown = 0
		}
		return
	}
	b.failures++
	switch {
	case b.state == brkHalfOpen:
		e.openLocked(ctx, b) // failed probe: back off harder
	case b.state == brkClosed && b.failures >= e.res.breaker.TripAfter:
		e.bump(func(s *Stats) { s.BreakerTrips++ })
		e.openLocked(ctx, b)
	}
}

// gateLocked is the front door of every breaker-guarded mediation: it
// reports whether the request must be served degraded. While open and
// cooling down → degraded. Once the cooldown expires the breaker
// half-opens, and any queued shadow drains *before* the current request
// is mediated, so the editor state the request transforms against is
// never behind the client's acknowledged view. Callers hold session.mu.
func (e *Extension) gateLocked(sess *session, docID string, req *http.Request) bool {
	if e.res == nil {
		return false
	}
	b := &sess.brk
	if b.state == brkOpen {
		if e.res.now().Before(b.reopenAt) {
			return true
		}
		e.transitionLocked(req.Context(), b, brkHalfOpen)
	}
	if b.hasShadow {
		if err := e.drainLocked(sess, docID, req); err != nil {
			e.recordLocked(req.Context(), sess, false)
			return true
		}
		e.recordLocked(req.Context(), sess, true)
	}
	return false
}

// setShadowLocked / clearShadowLocked manage the queued-save gauge.
func (e *Extension) setShadowLocked(b *breakerState, text string) {
	if !b.hasShadow {
		metricQueuedSaves.Add(1)
	}
	b.shadow, b.hasShadow = text, true
}

func (e *Extension) clearShadowLocked(b *breakerState) {
	if b.hasShadow {
		metricQueuedSaves.Add(-1)
	}
	b.shadow, b.hasShadow = "", false
}

// degradeUpdateLocked absorbs a save locally while the breaker is open:
// the new plaintext becomes (or updates) the shadow, and the client gets
// a synthesized Ack marked with the degraded header so it keeps editing.
// Callers hold session.mu.
func (e *Extension) degradeUpdateLocked(sess *session, req *http.Request, form url.Values) (*http.Response, error) {
	trace.Current(req.Context()).Annotate("degraded", "save")
	b := &sess.brk
	var next string
	switch {
	case form.Has(gdocs.FieldDocContents):
		next = form.Get(gdocs.FieldDocContents)
	case form.Has(gdocs.FieldDelta):
		base := b.shadow
		if !b.hasShadow {
			if sess.ed == nil {
				return synthesize(req, http.StatusServiceUnavailable,
					"privedit: degraded: no local state to apply delta to"), nil
			}
			base = sess.ed.Plaintext()
		}
		pd, err := delta.Parse(form.Get(gdocs.FieldDelta))
		if err != nil {
			return synthesize(req, http.StatusForbidden, "privedit: bad delta: "+err.Error()), nil
		}
		applied, err := pd.Apply(base)
		if err != nil {
			// The client's base diverged from the shadow (e.g. it reloaded
			// mid-outage); let its conflict machinery resolve against the
			// degraded load view.
			return synthesize(req, http.StatusConflict,
				"privedit: degraded: delta does not apply to queued state"), nil
		}
		next = applied
	default:
		return synthesize(req, http.StatusForbidden, "privedit: unrecognized update"), nil
	}
	e.setShadowLocked(b, next)
	e.bump(func(s *Stats) { s.DegradedSaves++ })
	metricDegradedSave.Inc()

	version, _ := strconv.Atoi(form.Get(gdocs.FieldVersion))
	resp := synthesize(req, http.StatusOK, gdocs.Ack{Version: version + 1}.Encode())
	resp.Header.Set(gdocs.HeaderDegraded, "1")
	return resp, nil
}

// degradeLoadLocked serves a document load from local state while the
// breaker is open — the read-only-towards-the-server (but locally
// editable) view. Callers hold session.mu.
func (e *Extension) degradeLoadLocked(sess *session, req *http.Request) (*http.Response, error) {
	trace.Current(req.Context()).Annotate("degraded", "load")
	b := &sess.brk
	var text string
	switch {
	case b.hasShadow:
		text = b.shadow
	case sess.ed != nil:
		text = sess.ed.Plaintext()
	default:
		return synthesize(req, http.StatusServiceUnavailable,
			"privedit: degraded: document unavailable until the server recovers"), nil
	}
	e.bump(func(s *Stats) { s.DegradedLoads++ })
	metricDegradedLoad.Inc()
	resp := synthesize(req, http.StatusOK, text)
	resp.Header.Set(gdocs.HeaderDegraded, "1")
	return resp, nil
}

// drainLocked replays the queued shadow through the resync path: fetch
// the server's current ciphertext (which may have moved — another session
// may have written during the outage), re-open the editor on it, and push
// one delta from the server's plaintext to the shadow. Reusing the resync
// machinery is what guarantees a replayed save can never diverge the
// skip-list indices: the transform always starts from the server's actual
// state. Callers hold session.mu.
func (e *Extension) drainLocked(sess *session, docID string, req *http.Request) error {
	ctx, dsp := trace.Start(req.Context(), trace.SpanDrain)
	defer dsp.End()
	req = req.WithContext(ctx)
	b := &sess.brk
	version, err := e.refetchLocked(sess, docID, req)
	if err != nil {
		return err
	}
	target := b.shadow
	form := url.Values{gdocs.FieldDocID: {docID}}
	form.Set(gdocs.FieldVersion, strconv.Itoa(version))
	switch {
	case sess.ed == nil:
		// Brand-new or empty server document: replay as a full save.
		ed, err := e.editorLocked(sess, docID)
		if err != nil {
			return err
		}
		ctxt, err := ed.Encrypt(target)
		if err != nil {
			return err
		}
		if e.useStego {
			if ctxt, err = stego.Encode(ctxt); err != nil {
				return err
			}
		}
		form.Set(gdocs.FieldDocContents, ctxt)
	case sess.ed.Plaintext() == target:
		// Nothing to replay: the server already holds the queued state.
		e.clearShadowLocked(b)
		return nil
	default:
		d := diff.Diff(sess.ed.Plaintext(), target)
		cd, err := sess.ed.TransformDeltaOps(d)
		if err != nil {
			sess.ed = nil // next load rebuilds from the server
			return fmt.Errorf("mediator: drain transform: %w", err)
		}
		if e.useStego {
			if cd, err = stego.TransformDelta(cd); err != nil {
				return fmt.Errorf("mediator: drain stego: %w", err)
			}
		}
		form.Set(gdocs.FieldDelta, cd.String())
	}
	resp, err := e.postForm(req.Context(), req.URL, gdocs.PathDoc, form, "")
	if err != nil {
		e.resyncLocked(sess, docID, req)
		return fmt.Errorf("mediator: drain: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e.resyncLocked(sess, docID, req)
		return fmt.Errorf("mediator: drain rejected: status %d", resp.StatusCode)
	}
	e.clearShadowLocked(b)
	e.bump(func(s *Stats) { s.Drains++ })
	metricDrains.Inc()
	return nil
}

// postForm sends a freshly built form POST through the resilient path.
// saveID, when non-empty, rides along as the idempotency token so the
// server can deduplicate a retried save whose earlier response was lost.
func (e *Extension) postForm(ctx context.Context, baseURL *url.URL, path string, form url.Values, saveID string) (*http.Response, error) {
	body := form.Encode()
	u := *baseURL
	u.Path = path
	u.RawQuery = ""
	return e.sendResilient(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		if saveID != "" {
			req.Header.Set(gdocs.HeaderSaveID, saveID)
		}
		return req, nil
	})
}
