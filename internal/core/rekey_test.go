package core

import (
	"errors"
	"testing"

	"privedit/internal/crypt"
)

func TestRekeyChangesPasswordKeepsContent(t *testing.T) {
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("old password", testOpts(scheme, 31))
		if err != nil {
			t.Fatalf("NewEditor: %v", err)
		}
		oldTransport, err := ed.Encrypt("rotate me")
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		newTransport, err := ed.RekeyWith("new password", Options{Nonces: crypt.NewSeededNonceSource(32)})
		if err != nil {
			t.Fatalf("Rekey: %v", err)
		}
		if newTransport == oldTransport {
			t.Error("rekeyed container identical to old")
		}
		got, err := Decrypt("new password", newTransport)
		if err != nil || got != "rotate me" {
			t.Errorf("%v: new password decrypt = (%q, %v)", scheme, got, err)
		}
		if _, err := Decrypt("old password", newTransport); !errors.Is(err, ErrWrongPassword) {
			t.Errorf("%v: old password still opens the rekeyed container: %v", scheme, err)
		}
		// The old container remains openable with the old password (the
		// server may retain old revisions; rotation does not rewrite
		// history — a limitation worth asserting, not hiding).
		if _, err := Decrypt("old password", oldTransport); err != nil {
			t.Errorf("%v: old container broken: %v", scheme, err)
		}
	}
}

func TestRekeyPreservesParametersAndEditing(t *testing.T) {
	ed, err := NewEditor("pw1", Options{
		Scheme:     ConfidentialityIntegrity,
		BlockChars: 3,
		Nonces:     crypt.NewSeededNonceSource(33),
	})
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	if _, err := ed.Encrypt("editable after rotation"); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	server, err := ed.RekeyWith("pw2", Options{Nonces: crypt.NewSeededNonceSource(34)})
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if ed.BlockChars() != 3 || ed.Scheme() != ConfidentialityIntegrity {
		t.Errorf("parameters changed: b=%d scheme=%v", ed.BlockChars(), ed.Scheme())
	}
	// Incremental editing continues seamlessly under the new key.
	cd, err := ed.Splice(0, 8, "still")
	if err != nil {
		t.Fatalf("Splice after rekey: %v", err)
	}
	server, err = cd.Apply(server)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	got, err := Decrypt("pw2", server)
	if err != nil || got != "still after rotation" {
		t.Errorf("post-rekey edit = (%q, %v)", got, err)
	}
}

func TestRekeyBadSchemeStatePreserved(t *testing.T) {
	ed, err := NewEditor("pw", testOpts(ConfidentialityOnly, 35))
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	if _, err := ed.Encrypt("unchanged"); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	// Rekey cannot fail for valid inputs here, but verify the state is
	// sane after a successful call chain regardless.
	if _, err := ed.RekeyWith("pw2", Options{Nonces: crypt.NewSeededNonceSource(36)}); err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if ed.Plaintext() != "unchanged" {
		t.Errorf("plaintext after rekey = %q", ed.Plaintext())
	}
}
