// Package core is the public face of the privedit library: the paper's
// incremental encryption scheme (the 4-tuple K, Enc, Dec, IncE of §V-A)
// packaged as the enc_scheme object that Figure 2's request mediator uses,
// with three operations — encrypt, decrypt, and transform_delta — plus the
// per-document password handling of §IV-C.
//
// An Editor owns one encrypted document. Creating an editor derives a
// document key from a password and a fresh salt (K); Encrypt builds the
// full ciphertext container (Enc); Open/Decrypt recovers the plaintext
// from a container (Dec); and TransformDelta converts a plaintext delta
// into the ciphertext delta the server applies to its stored copy (IncE).
package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/obs"
	"privedit/internal/recb"
	"privedit/internal/rpcmode"
)

// Telemetry: the paper's §VII micro-benchmark operations, timed in situ.
// No-ops until obs.Enable() is called.
var (
	metricEncrypt = obs.NewHistogram("privedit_core_encrypt_seconds",
		"Whole-document encryption (Enc) latency in seconds.", obs.TimeBuckets)
	metricTransform = obs.NewHistogram("privedit_transform_delta_seconds",
		"transform_delta (IncE) latency in seconds: plaintext delta to ciphertext delta.", obs.TimeBuckets)
	metricSplice = obs.NewHistogram("privedit_splice_seconds",
		"Single programmatic splice latency in seconds.", obs.TimeBuckets)
	metricRekey = obs.NewHistogram("privedit_rekey_seconds",
		"Password change (full re-encryption) latency in seconds.", obs.TimeBuckets)
	metricOpen = obs.NewHistogram("privedit_core_open_seconds",
		"Container open (Dec + integrity verification) latency in seconds.", obs.TimeBuckets)
)

// Scheme selects the protection level, mirroring the prototype's dialog:
// "users ... may select either a confidentiality-only scheme or one that
// provides both confidentiality and integrity" (§II).
type Scheme int

const (
	// ConfidentialityOnly is the rECB mode (§V-B).
	ConfidentialityOnly Scheme = iota + 1
	// ConfidentialityIntegrity is the RPC mode with the length amendment.
	ConfidentialityIntegrity
)

// String returns the scheme's paper name.
func (s Scheme) String() string {
	switch s {
	case ConfidentialityOnly:
		return "rECB"
	case ConfidentialityIntegrity:
		return "RPC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// DefaultBlockChars is the default multi-character block size: the paper
// chooses "a maximum of 8 characters (64 bits) per block" (§V-C).
const DefaultBlockChars = 8

// Core errors.
var (
	ErrWrongPassword = errors.New("core: wrong password")
	ErrBadScheme     = errors.New("core: unknown scheme")
)

// Options configures an Editor. It is the single options path shared by
// every constructor-shaped entry point — NewEditor, OpenWith, DecryptWith,
// and RekeyWith — replacing the ad-hoc positional NonceSource parameters
// the old Open/Rekey/Decrypt signatures carried.
type Options struct {
	// Scheme selects rECB or RPC. Default: ConfidentialityIntegrity.
	// Ignored by OpenWith/DecryptWith, which read it from the container.
	Scheme Scheme
	// BlockChars is the b parameter (1..8). Default: DefaultBlockChars.
	// Ignored by OpenWith/DecryptWith, which read it from the container.
	BlockChars int
	// Nonces supplies block nonces and the document salt. Default:
	// crypt.CryptoNonceSource{}. Override only in tests and reproducible
	// benchmarks.
	Nonces crypt.NonceSource
	// Workers bounds the goroutines the whole-document Enc/Dec kernels
	// may use: 0 selects GOMAXPROCS, 1 forces the serial path. Documents
	// below the crossover threshold (internal/parallel) run serially
	// regardless. The ciphertext is identical either way.
	Workers int
}

func (o *Options) fill() {
	if o.Scheme == 0 {
		o.Scheme = ConfidentialityIntegrity
	}
	if o.BlockChars == 0 {
		o.BlockChars = DefaultBlockChars
	}
	if o.Nonces == nil {
		o.Nonces = crypt.CryptoNonceSource{}
	}
}

// Editor is the client-side encryption state for one document: the
// enc_scheme object of Figure 2. An Editor is NOT safe for concurrent use;
// callers that share one document across goroutines (the mediator's
// per-document sessions) serialize access themselves.
type Editor struct {
	scheme  Scheme
	doc     *blockdoc.Document
	workers int
}

// keyCheck computes the header password verifier for a derived key.
func keyCheck(key, salt []byte) [blockdoc.KeyCheckLen]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("privedit-keycheck"))
	mac.Write(salt)
	sum := mac.Sum(nil)
	var kc [blockdoc.KeyCheckLen]byte
	copy(kc[:], sum)
	return kc
}

func newCodec(scheme Scheme, key []byte, nonces crypt.NonceSource, workers int) (blockdoc.Codec, error) {
	var (
		codec blockdoc.Codec
		err   error
	)
	switch scheme {
	case ConfidentialityOnly:
		codec, err = recb.New(crypt.Subkey(key, "recb"), nonces)
	case ConfidentialityIntegrity:
		codec, err = rpcmode.New(crypt.Subkey(key, "rpc"), nonces)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadScheme, scheme)
	}
	if err != nil {
		return nil, err
	}
	if w, ok := codec.(interface{ SetWorkers(int) }); ok {
		w.SetWorkers(workers)
	}
	return codec, nil
}

// NewEditor creates the encryption state for a brand-new document: a fresh
// salt is drawn, the document key derived from the password (K), and an
// empty encrypted container initialized.
func NewEditor(password string, opts Options) (*Editor, error) {
	opts.fill()
	var salt [blockdoc.SaltLen]byte
	crypt.PutUint64(salt[:8], opts.Nonces.Nonce64())
	crypt.PutUint64(salt[8:], opts.Nonces.Nonce64())
	key := crypt.DeriveDocumentKey(password, salt[:])
	codec, err := newCodec(opts.Scheme, key, opts.Nonces, opts.Workers)
	if err != nil {
		return nil, err
	}
	doc, err := blockdoc.New(codec, opts.BlockChars, salt, keyCheck(key, salt[:]))
	if err != nil {
		return nil, err
	}
	doc.SetWorkers(opts.Workers)
	return &Editor{scheme: opts.Scheme, doc: doc, workers: opts.Workers}, nil
}

// OpenWith restores the encryption state from an existing ciphertext
// container (Dec): the scheme, block size, and salt are read from the
// container header; the key is re-derived from the password and checked
// before any decryption is attempted. Only opts.Nonces and opts.Workers
// are consulted — scheme and block size always come from the container.
func OpenWith(password, transport string, opts Options) (*Editor, error) {
	defer metricOpen.Start().End()
	if opts.Nonces == nil {
		opts.Nonces = crypt.CryptoNonceSource{}
	}
	h, err := blockdoc.PeekHeader(transport)
	if err != nil {
		return nil, err
	}
	var scheme Scheme
	switch h.SchemeID {
	case recb.SchemeID:
		scheme = ConfidentialityOnly
	case rpcmode.SchemeID:
		scheme = ConfidentialityIntegrity
	default:
		// int() marks the scheme id as a discriminator, not content.
		return nil, fmt.Errorf("%w: container scheme id %d", ErrBadScheme, int(h.SchemeID))
	}
	key := crypt.DeriveDocumentKey(password, h.Salt[:])
	kc := keyCheck(key, h.Salt[:])
	if kc != h.KeyCheck {
		return nil, ErrWrongPassword
	}
	codec, err := newCodec(scheme, key, opts.Nonces, opts.Workers)
	if err != nil {
		return nil, err
	}
	doc, err := blockdoc.New(codec, int(h.BlockChars), h.Salt, kc)
	if err != nil {
		return nil, err
	}
	doc.SetWorkers(opts.Workers)
	if err := doc.LoadTransport(transport); err != nil {
		return nil, err
	}
	return &Editor{scheme: scheme, doc: doc, workers: opts.Workers}, nil
}

// Scheme returns the editor's protection level.
func (e *Editor) Scheme() Scheme { return e.scheme }

// BlockChars returns the document's block-size parameter b.
func (e *Editor) BlockChars() int { return e.doc.BlockChars() }

// Encrypt replaces the document contents with plaintext and returns the
// full ciphertext container (Enc). This is what the mediator does with the
// docContents field of the first save in an editing session.
//
//taint:sanitizer Enc: plaintext leaves only as ciphertext container
func (e *Editor) Encrypt(plaintext string) (string, error) {
	defer metricEncrypt.Start().End()
	if err := e.doc.LoadPlaintext(plaintext); err != nil {
		return "", err
	}
	return e.doc.Transport(), nil
}

// Plaintext returns the current document text (Dec of the current state).
func (e *Editor) Plaintext() string { return e.doc.Plaintext() }

// Transport returns the current ciphertext container.
//
//taint:sanitizer returns the ciphertext transport form
func (e *Editor) Transport() string { return e.doc.Transport() }

// TransportLen returns the ciphertext container length in characters.
func (e *Editor) TransportLen() int { return e.doc.TransportLen() }

// Len returns the plaintext length in characters.
func (e *Editor) Len() int { return e.doc.Len() }

// TransformDelta converts a plaintext delta (wire form) into the
// ciphertext delta (wire form) that performs the corresponding update on
// the server's stored container: the mediator's transform_delta call in
// Figure 2. The editor's state advances to reflect the edit.
//
//taint:sanitizer emits a ciphertext delta
func (e *Editor) TransformDelta(wire string) (string, error) {
	pd, err := delta.Parse(wire)
	if err != nil {
		return "", err
	}
	cd, err := e.TransformDeltaOps(pd)
	if err != nil {
		return "", err
	}
	return cd.String(), nil
}

// TransformDeltaOps is TransformDelta on parsed operations.
//
//taint:sanitizer emits a ciphertext delta
func (e *Editor) TransformDeltaOps(pd delta.Delta) (delta.Delta, error) {
	sp := metricTransform.Start()
	cd, err := e.doc.TransformDelta(pd)
	sp.End()
	return cd, err
}

// Splice performs a single programmatic edit (delete del characters at
// pos, insert ins) and returns the ciphertext delta.
//
//taint:sanitizer emits a ciphertext delta
func (e *Editor) Splice(pos, del int, ins string) (delta.Delta, error) {
	sp := metricSplice.Start()
	cd, err := e.doc.Splice(pos, del, ins)
	sp.End()
	return cd, err
}

// RekeyWith re-encrypts the document under a new password: a fresh salt is
// drawn, a new key derived, and every block re-encrypted with fresh
// nonces. The returned container replaces the server's copy wholesale (a
// key change cannot be expressed as an incremental delta without leaking
// that the key did not really change). Zero-valued options inherit from
// the current editor: scheme and block size always carry over, and
// opts.Workers == 0 keeps the editor's worker bound.
//
//taint:sanitizer re-encrypts wholesale; returns ciphertext container
func (e *Editor) RekeyWith(newPassword string, opts Options) (string, error) {
	defer metricRekey.Start().End()
	if opts.Nonces == nil {
		opts.Nonces = crypt.CryptoNonceSource{}
	}
	workers := opts.Workers
	if workers == 0 {
		workers = e.workers
	}
	replacement, err := NewEditor(newPassword, Options{
		Scheme:     e.scheme,
		BlockChars: e.BlockChars(),
		Nonces:     opts.Nonces,
		Workers:    workers,
	})
	if err != nil {
		return "", err
	}
	transport, err := replacement.Encrypt(e.Plaintext())
	if err != nil {
		return "", err
	}
	e.doc = replacement.doc
	e.workers = workers
	return transport, nil
}

// Reload replaces the editor's state from a container produced under the
// same password and parameters: Dec without re-deriving the key. The
// container must carry the same scheme, block size, and key check;
// otherwise an error is returned and the state is unchanged.
func (e *Editor) Reload(transport string) error {
	return e.doc.LoadTransport(transport)
}

// Stats exposes the underlying document statistics.
func (e *Editor) Stats() blockdoc.Stats { return e.doc.Stats() }

// SelfCheck verifies that the current container round-trips (for RPC, the
// full integrity verification).
func (e *Editor) SelfCheck() error { return e.doc.SelfCheck() }

// DecryptWith is a one-shot decryption of a container under explicit
// options (only Nonces and Workers are consulted).
func DecryptWith(password, transport string, opts Options) (string, error) {
	ed, err := OpenWith(password, transport, opts)
	if err != nil {
		return "", err
	}
	return ed.Plaintext(), nil
}

// Decrypt is a convenience for one-shot decryption of a container with
// default options.
func Decrypt(password, transport string) (string, error) {
	return DecryptWith(password, transport, Options{})
}
