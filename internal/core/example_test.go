package core_test

import (
	"fmt"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/delta"
)

// A complete private-editing round trip: encrypt, edit incrementally,
// decrypt — with the server-side state driven purely by what the editor
// emits.
func Example() {
	editor, err := core.NewEditor("per-document password", core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(1), // deterministic for the example
	})
	if err != nil {
		panic(err)
	}

	// Enc: the untrusted server stores this container.
	serverCopy, err := editor.Encrypt("meet at the pier")
	if err != nil {
		panic(err)
	}

	// IncE: a plaintext edit becomes a ciphertext delta.
	pd, _ := delta.Parse("=12\t-4\t+boathouse")
	cd, err := editor.TransformDeltaOps(pd)
	if err != nil {
		panic(err)
	}
	serverCopy, err = cd.Apply(serverCopy) // the server's only job
	if err != nil {
		panic(err)
	}

	// Dec: anyone with the password reads the result.
	plain, err := core.Decrypt("per-document password", serverCopy)
	if err != nil {
		panic(err)
	}
	fmt.Println(plain)

	_, err = core.Decrypt("wrong password", serverCopy)
	fmt.Println(err)
	// Output:
	// meet at the boathouse
	// core: wrong password
}
