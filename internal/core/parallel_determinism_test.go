package core

import (
	"strings"
	"testing"

	"privedit/internal/crypt"
)

// The parallel Enc/Dec kernels must be byte-identical to the serial path:
// nonces are drawn serially in document order before the fan-out, so the
// only thing parallelism changes is which goroutine does the arithmetic.
// These tests pin that property for both schemes, on documents large
// enough to clear the crossover threshold.

func parallelTestDoc() string {
	var b strings.Builder
	for b.Len() < 120_000 {
		b.WriteString("the quick brown fox jumps over the lazy dog 0123456789 ")
	}
	return b.String()
}

func TestParallelEncryptMatchesSerial(t *testing.T) {
	doc := parallelTestDoc()
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		for _, blockChars := range []int{1, 8} {
			serialEd, err := NewEditor("pw", Options{
				Scheme: scheme, BlockChars: blockChars,
				Nonces: crypt.NewSeededNonceSource(42), Workers: 1,
			})
			if err != nil {
				t.Fatalf("NewEditor serial: %v", err)
			}
			parallelEd, err := NewEditor("pw", Options{
				Scheme: scheme, BlockChars: blockChars,
				Nonces: crypt.NewSeededNonceSource(42), Workers: 8,
			})
			if err != nil {
				t.Fatalf("NewEditor parallel: %v", err)
			}
			serialCT, err := serialEd.Encrypt(doc)
			if err != nil {
				t.Fatalf("serial Encrypt: %v", err)
			}
			parallelCT, err := parallelEd.Encrypt(doc)
			if err != nil {
				t.Fatalf("parallel Encrypt: %v", err)
			}
			if serialCT != parallelCT {
				t.Errorf("scheme=%v b=%d: parallel ciphertext differs from serial (len %d vs %d)",
					scheme, blockChars, len(parallelCT), len(serialCT))
			}
		}
	}
}

func TestParallelDecryptMatchesSerial(t *testing.T) {
	doc := parallelTestDoc()
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("pw", Options{
			Scheme: scheme, BlockChars: 4,
			Nonces: crypt.NewSeededNonceSource(7), Workers: 1,
		})
		if err != nil {
			t.Fatalf("NewEditor: %v", err)
		}
		ct, err := ed.Encrypt(doc)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		serialPT, err := DecryptWith("pw", ct, Options{Workers: 1})
		if err != nil {
			t.Fatalf("serial DecryptWith: %v", err)
		}
		parallelPT, err := DecryptWith("pw", ct, Options{Workers: 8})
		if err != nil {
			t.Fatalf("parallel DecryptWith: %v", err)
		}
		if serialPT != doc || parallelPT != doc {
			t.Errorf("scheme=%v: decrypt mismatch (serial ok=%v parallel ok=%v)",
				scheme, serialPT == doc, parallelPT == doc)
		}
		// Parallel open must leave a fully working editor behind.
		opened, err := OpenWith("pw", ct, Options{Workers: 8})
		if err != nil {
			t.Fatalf("parallel OpenWith: %v", err)
		}
		if opened.Plaintext() != doc {
			t.Error("parallel OpenWith produced wrong plaintext")
		}
	}
}
