package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/delta"
)

func testOpts(scheme Scheme, seed uint64) Options {
	return Options{
		Scheme:     scheme,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(seed),
	}
}

func TestSchemeString(t *testing.T) {
	if ConfidentialityOnly.String() != "rECB" || ConfidentialityIntegrity.String() != "RPC" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Error("unknown scheme name wrong")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("secret", testOpts(scheme, 1))
		if err != nil {
			t.Fatalf("%v: NewEditor: %v", scheme, err)
		}
		text := "my confidential tax documents"
		transport, err := ed.Encrypt(text)
		if err != nil {
			t.Fatalf("%v: Encrypt: %v", scheme, err)
		}
		if strings.Contains(transport, text) {
			t.Fatalf("%v: plaintext visible in transport", scheme)
		}
		got, err := Decrypt("secret", transport)
		if err != nil {
			t.Fatalf("%v: Decrypt: %v", scheme, err)
		}
		if got != text {
			t.Errorf("%v: Decrypt = %q", scheme, got)
		}
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("right horse battery staple", testOpts(scheme, 2))
		if err != nil {
			t.Fatalf("NewEditor: %v", err)
		}
		transport, err := ed.Encrypt("private")
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		if _, err := Decrypt("wrong password", transport); !errors.Is(err, ErrWrongPassword) {
			t.Errorf("%v: wrong password = %v, want ErrWrongPassword", scheme, err)
		}
	}
}

func TestOpenPreservesSchemeAndBlockSize(t *testing.T) {
	opts := Options{Scheme: ConfidentialityOnly, BlockChars: 3, Nonces: crypt.NewSeededNonceSource(3)}
	ed, err := NewEditor("pw", opts)
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	transport, err := ed.Encrypt("twelve chars")
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ed2, err := OpenWith("pw", transport, Options{Nonces: crypt.NewSeededNonceSource(4)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ed2.Scheme() != ConfidentialityOnly {
		t.Errorf("scheme = %v", ed2.Scheme())
	}
	if ed2.BlockChars() != 3 {
		t.Errorf("block chars = %d", ed2.BlockChars())
	}
	if ed2.Plaintext() != "twelve chars" {
		t.Errorf("plaintext = %q", ed2.Plaintext())
	}
}

func TestDefaults(t *testing.T) {
	ed, err := NewEditor("pw", Options{})
	if err != nil {
		t.Fatalf("NewEditor with defaults: %v", err)
	}
	if ed.Scheme() != ConfidentialityIntegrity {
		t.Errorf("default scheme = %v, want RPC", ed.Scheme())
	}
	if ed.BlockChars() != DefaultBlockChars {
		t.Errorf("default block chars = %d", ed.BlockChars())
	}
}

func TestBadSchemeRejected(t *testing.T) {
	if _, err := NewEditor("pw", Options{Scheme: Scheme(42), BlockChars: 8, Nonces: crypt.NewSeededNonceSource(1)}); !errors.Is(err, ErrBadScheme) {
		t.Errorf("bad scheme = %v, want ErrBadScheme", err)
	}
}

func TestOpenGarbageRejected(t *testing.T) {
	if _, err := OpenWith("pw", "definitely not a container", Options{}); !errors.Is(err, blockdoc.ErrCorrupt) {
		t.Errorf("garbage open = %v, want ErrCorrupt", err)
	}
}

func TestTransformDeltaWireProtocol(t *testing.T) {
	// The exact flow of Figure 2: the extension sees a delta string in the
	// outgoing request, transforms it, and the server applies the result.
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("pw", testOpts(scheme, 5))
		if err != nil {
			t.Fatalf("NewEditor: %v", err)
		}
		serverCopy, err := ed.Encrypt("abcdefg")
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		// Paper example: "=2 -3 +uv =2 +w" turns "abcdefg" into "abuvfgw".
		cwire, err := ed.TransformDelta("=2\t-3\t+uv\t=2\t+w")
		if err != nil {
			t.Fatalf("TransformDelta: %v", err)
		}
		cd, err := delta.Parse(cwire)
		if err != nil {
			t.Fatalf("Parse cdelta: %v", err)
		}
		serverCopy, err = cd.Apply(serverCopy)
		if err != nil {
			t.Fatalf("server apply: %v", err)
		}
		if ed.Plaintext() != "abuvfgw" {
			t.Errorf("%v: plaintext = %q", scheme, ed.Plaintext())
		}
		got, err := Decrypt("pw", serverCopy)
		if err != nil {
			t.Fatalf("%v: decrypt server copy: %v", scheme, err)
		}
		if got != "abuvfgw" {
			t.Errorf("%v: server copy decrypts to %q", scheme, got)
		}
	}
}

func TestTransformDeltaRejectsBadWire(t *testing.T) {
	ed, err := NewEditor("pw", testOpts(ConfidentialityIntegrity, 6))
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	if _, err := ed.TransformDelta("*bogus"); !errors.Is(err, delta.ErrSyntax) {
		t.Errorf("bad wire = %v, want ErrSyntax", err)
	}
	if _, err := ed.TransformDelta("=999"); err == nil {
		t.Error("out-of-range delta accepted")
	}
}

func TestSessionAcrossReopen(t *testing.T) {
	// Edit, close, reopen with the password, keep editing: state must
	// survive purely through the server-held transport string.
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("pw", testOpts(scheme, 7))
		if err != nil {
			t.Fatalf("NewEditor: %v", err)
		}
		server, err := ed.Encrypt("session one content")
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		cd, err := ed.Splice(8, 3, "two")
		if err != nil {
			t.Fatalf("Splice: %v", err)
		}
		server, err = cd.Apply(server)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}

		ed2, err := OpenWith("pw", server, Options{Nonces: crypt.NewSeededNonceSource(8)})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if ed2.Plaintext() != "session two content" {
			t.Fatalf("reopened plaintext = %q", ed2.Plaintext())
		}
		cd2, err := ed2.Splice(19, 0, " extended")
		if err != nil {
			t.Fatalf("Splice after reopen: %v", err)
		}
		server, err = cd2.Apply(server)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		got, err := Decrypt("pw", server)
		if err != nil {
			t.Fatalf("final decrypt: %v", err)
		}
		if got != "session two content extended" {
			t.Errorf("final = %q", got)
		}
	}
}

func TestKeySeparationBetweenSchemes(t *testing.T) {
	// The same password and salt must yield different keys for rECB and
	// RPC (Subkey labels), so a container can never be mis-decrypted
	// under the other scheme even if headers were forged.
	edA, err := NewEditor("pw", testOpts(ConfidentialityOnly, 9))
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	trA, err := edA.Encrypt("same text")
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	edB, err := NewEditor("pw", testOpts(ConfidentialityIntegrity, 9))
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	trB, err := edB.Encrypt("same text")
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if trA == trB {
		t.Error("rECB and RPC containers identical")
	}
}

func TestRandomizedSessionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, scheme := range []Scheme{ConfidentialityOnly, ConfidentialityIntegrity} {
		ed, err := NewEditor("pw", testOpts(scheme, 10))
		if err != nil {
			t.Fatalf("NewEditor: %v", err)
		}
		plain := "seed text for the randomized editing session"
		server, err := ed.Encrypt(plain)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		for step := 0; step < 60; step++ {
			pos := rng.Intn(len(plain) + 1)
			del := 0
			if pos < len(plain) {
				del = rng.Intn(min(len(plain)-pos, 10) + 1)
			}
			ins := ""
			if rng.Intn(3) > 0 {
				ins = strings.Repeat(string(rune('a'+rng.Intn(26))), 1+rng.Intn(6))
			}
			cd, err := ed.Splice(pos, del, ins)
			if err != nil {
				t.Fatalf("step %d: Splice: %v", step, err)
			}
			plain = plain[:pos] + ins + plain[pos+del:]
			server, err = cd.Apply(server)
			if err != nil {
				t.Fatalf("step %d: apply: %v", step, err)
			}
			if ed.Plaintext() != plain {
				t.Fatalf("step %d: editor diverged", step)
			}
		}
		got, err := Decrypt("pw", server)
		if err != nil {
			t.Fatalf("final decrypt: %v", err)
		}
		if got != plain {
			t.Error("server copy diverged from reference")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
