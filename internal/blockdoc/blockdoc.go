// Package blockdoc implements the encrypted block-document engine at the
// center of the paper's design (§V). A document is a sequence of
// variable-length blocks of up to b plaintext characters; each block
// encrypts to one fixed-width container record. Blocks are indexed by an
// IndexedSkipList keyed on plaintext position, whose secondary weights give
// the corresponding offsets in the Base32 transport string stored by the
// untrusted server.
//
// The engine is scheme-agnostic: the rECB (confidentiality-only) and RPC
// (confidentiality+integrity) modes plug in as Codec implementations that
// decide how a block's characters become a record, how neighbors chain, and
// what prefix/trailer records accompany the document.
//
// Container layout (all regions Base32-coded independently so record
// boundaries fall on fixed character offsets):
//
//	[ header+scheme prefix ] [ record 0 ] ... [ record n-1 ] [ trailer ]
//
// Header: magic "PVED1", scheme id, block-size parameter, 16-byte salt.
package blockdoc

import (
	"errors"
	"fmt"

	"privedit/internal/crypt"
)

// Magic identifies privedit containers.
const Magic = "PVED1"

// SaltLen is the per-document key-derivation salt length.
const SaltLen = 16

// KeyCheckLen is the length of the password-verifier field: a keyed hash
// of the salt under the derived key, letting the client reject a wrong
// password deterministically ("it appears as ciphertext unless the user
// enters the correct password", §IV-C). It reveals nothing about the key.
const KeyCheckLen = 8

// headerBytes is the fixed length of the common header: magic, scheme id,
// block-size parameter, salt, key check.
const headerBytes = len(Magic) + 1 + 1 + SaltLen + KeyCheckLen

// Engine errors.
var (
	ErrCorrupt   = errors.New("blockdoc: corrupt container")
	ErrIntegrity = errors.New("blockdoc: integrity check failed")
	ErrRange     = errors.New("blockdoc: position out of range")
	ErrTooLarge  = errors.New("blockdoc: document exceeds size limit")
)

// Block is one plaintext block and its encrypted record. Codecs populate
// Record and Nonce; the engine owns Chars and list placement.
type Block struct {
	//taint:source plaintext block contents
	Chars  []byte // 1..MaxChars plaintext characters
	Record []byte // fixed-width container record
	Nonce  uint64 // the block's leading nonce r_i (chaining state for RPC)
}

// Codec is the per-scheme encryption strategy.
type Codec interface {
	// Name is the scheme's human-readable name ("rECB" or "RPC").
	Name() string
	// ID is the scheme byte stored in the container header.
	ID() byte
	// RecordBytes is the fixed container record width in bytes.
	RecordBytes() int
	// PrefixBytes is the scheme-specific prefix region width in bytes
	// (the r0 record for rECB, the start block for RPC).
	PrefixBytes() int
	// TrailerBytes is the trailer region width in bytes (0 for rECB, the
	// checksum block for RPC).
	TrailerBytes() int
	// MaxChars is the largest number of characters a record's data field
	// can carry (8 for a 64-bit field).
	MaxChars() int

	// EncryptAll rebuilds the whole document from plaintext chunks,
	// resetting all scheme state (fresh r0, aggregates). Returned blocks
	// carry Record and Nonce. This is the scheme's Enc function.
	EncryptAll(chunks [][]byte) (prefix []byte, blocks []*Block, trailer []byte, err error)

	// DecryptAll opens an existing container, verifying whatever the
	// scheme can verify (RPC: nonce ring, aggregates, length). It primes
	// the codec's internal state to continue incremental operation. This
	// is the scheme's Dec function.
	DecryptAll(prefix []byte, records [][]byte, trailer []byte) (blocks []*Block, err error)

	// Splice is the scheme's IncE step for one contiguous block-range
	// replacement: the blocks `removed` are replaced by new blocks built
	// from `chunks`. `left` is the surviving block immediately before the
	// replacement point (nil if the replacement starts at the document
	// head) and `right` the surviving block immediately after (nil if the
	// replacement runs to the document tail).
	//
	// Returns the new blocks, a re-encrypted record for `left` (nil if
	// the left neighbor needs no rewrite), a new scheme prefix (nil if
	// unchanged) and a new trailer (nil if unchanged).
	Splice(left *Block, removed []*Block, chunks [][]byte, right *Block) (
		added []*Block, newLeftRecord []byte, newPrefix []byte, newTrailer []byte, err error)
}

// Header is the plaintext container header. Scheme and block size must be
// readable before key derivation (the salt is an input to it).
type Header struct {
	SchemeID   byte
	BlockChars byte
	Salt       [SaltLen]byte
	KeyCheck   [KeyCheckLen]byte
}

func (h Header) encode() []byte {
	buf := make([]byte, 0, headerBytes)
	buf = append(buf, Magic...)
	buf = append(buf, h.SchemeID, h.BlockChars)
	buf = append(buf, h.Salt[:]...)
	buf = append(buf, h.KeyCheck[:]...)
	return buf
}

func decodeHeader(raw []byte) (Header, error) {
	if len(raw) < headerBytes {
		return Header{}, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(raw))
	}
	if string(raw[:len(Magic)]) != Magic {
		return Header{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var h Header
	h.SchemeID = raw[len(Magic)]
	h.BlockChars = raw[len(Magic)+1]
	copy(h.Salt[:], raw[len(Magic)+2:len(Magic)+2+SaltLen])
	copy(h.KeyCheck[:], raw[len(Magic)+2+SaltLen:headerBytes])
	if h.BlockChars == 0 {
		return Header{}, fmt.Errorf("%w: zero block size", ErrCorrupt)
	}
	return h, nil
}

// PeekHeader reads the container header from the beginning of a transport
// string without needing key material: everything the client must know
// before it can derive the document key.
func PeekHeader(transport string) (Header, error) {
	// 56 Base32 chars decode to exactly 35 bytes, a whole-group prefix
	// that covers the 31-byte header regardless of scheme.
	const peekChars = 56
	if len(transport) < peekChars {
		return Header{}, fmt.Errorf("%w: transport too short (%d chars)", ErrCorrupt, len(transport))
	}
	raw, err := crypt.DecodeTransport(transport[:peekChars])
	if err != nil {
		return Header{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return decodeHeader(raw)
}
