package blockdoc_test

import (
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/recb"
	"privedit/internal/rpcmode"
)

// newWorkerDoc builds a document of the given scheme with both the codec
// kernels and the container serializer pinned to the same worker setting.
func newWorkerDoc(t *testing.T, scheme string, workers int) *blockdoc.Document {
	t.Helper()
	var codec blockdoc.Codec
	switch scheme {
	case "rECB":
		c, err := recb.New(testKey(), crypt.NewSeededNonceSource(5))
		if err != nil {
			t.Fatal(err)
		}
		c.SetWorkers(workers)
		codec = c
	default:
		c, err := rpcmode.New(testKey(), crypt.NewSeededNonceSource(5))
		if err != nil {
			t.Fatal(err)
		}
		c.SetWorkers(workers)
		codec = c
	}
	doc, err := blockdoc.New(codec, 8, testSalt(), testKC())
	if err != nil {
		t.Fatal(err)
	}
	doc.SetWorkers(workers)
	return doc
}

// TestTransportIdenticalAcrossWorkers pins the container-level half of the
// byte-equality invariant: a document loaded and serialized with the
// serial kernels (workers=1), a forced 2-worker fan-out, and the default
// (0) produces the same transport string — covering the parallel encode
// path and the batched codec kernels together — and each worker setting
// round-trips every other's transport through the parallel decode path.
func TestTransportIdenticalAcrossWorkers(t *testing.T) {
	// 40k chars at b=8 is 5000 blocks, past the parallel crossover.
	text := strings.Repeat("cloud services are curious. ", 1500)
	for _, scheme := range []string{"rECB", "RPC"} {
		var ref string
		for _, w := range []int{1, 2, 0} {
			doc := newWorkerDoc(t, scheme, w)
			if err := doc.LoadPlaintext(text); err != nil {
				t.Fatalf("%s workers=%d: LoadPlaintext: %v", scheme, w, err)
			}
			tr := doc.Transport()
			if ref == "" {
				ref = tr
			} else if tr != ref {
				t.Fatalf("%s workers=%d: transport diverges from serial", scheme, w)
			}
		}
		for _, w := range []int{1, 2, 0} {
			doc := newWorkerDoc(t, scheme, w)
			if err := doc.LoadTransport(ref); err != nil {
				t.Fatalf("%s workers=%d: LoadTransport: %v", scheme, w, err)
			}
			if doc.Plaintext() != text {
				t.Fatalf("%s workers=%d: decoded plaintext diverges", scheme, w)
			}
		}
	}
}
