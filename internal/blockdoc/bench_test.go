package blockdoc_test

import (
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/recb"
	"privedit/internal/rpcmode"
)

func benchDoc(b *testing.B, codec blockdoc.Codec, chars int) *blockdoc.Document {
	b.Helper()
	var salt [blockdoc.SaltLen]byte
	var kc [blockdoc.KeyCheckLen]byte
	copy(salt[:], "bench-salt-bench")
	doc, err := blockdoc.New(codec, 4, salt, kc)
	if err != nil {
		b.Fatal(err)
	}
	if err := doc.LoadPlaintext(strings.Repeat("x", chars)); err != nil {
		b.Fatal(err)
	}
	return doc
}

func benchCodec(b *testing.B, name string) blockdoc.Codec {
	b.Helper()
	key := make([]byte, 16)
	nonces := crypt.NewSeededNonceSource(2011)
	switch name {
	case "recb":
		c, err := recb.New(key, nonces)
		if err != nil {
			b.Fatal(err)
		}
		return c
	case "rpc":
		c, err := rpcmode.New(key, nonces)
		if err != nil {
			b.Fatal(err)
		}
		return c
	default:
		b.Fatalf("unknown codec %q", name)
		return nil
	}
}

// BenchmarkSpliceSequential measures the IncE hot path: single-character
// insertions marching through the document, the pattern a typist produces.
func BenchmarkSpliceSequential(b *testing.B) {
	for _, codec := range []string{"recb", "rpc"} {
		b.Run(codec, func(b *testing.B) {
			doc := benchDoc(b, benchCodec(b, codec), 8192)
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i++ {
				if _, err := doc.Splice(pos, 1, "y"); err != nil {
					b.Fatal(err)
				}
				pos += 7
				if pos+1 >= doc.Len() {
					pos = 0
				}
			}
		})
	}
}

// BenchmarkTransformDeltaBurst measures a burst of adjacent single-character
// edits arriving as one delta — the shape the client's autosave produces —
// with coalescing on and off.
func BenchmarkTransformDeltaBurst(b *testing.B) {
	burst := func(pos, k int) delta.Delta {
		d := delta.Delta{delta.RetainOp(pos)}
		for i := 0; i < k; i++ {
			d = append(d, delta.InsertOp("z"), delta.DeleteOp(1))
		}
		return d
	}
	for _, mode := range []struct {
		name     string
		coalesce bool
	}{{"coalesce", true}, {"split", false}} {
		b.Run(mode.name, func(b *testing.B) {
			doc := benchDoc(b, benchCodec(b, "rpc"), 8192)
			doc.SetCoalesce(mode.coalesce)
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i++ {
				if _, err := doc.TransformDelta(burst(pos, 16)); err != nil {
					b.Fatal(err)
				}
				pos = (pos + 64) % (doc.Len() - 32)
			}
		})
	}
}
