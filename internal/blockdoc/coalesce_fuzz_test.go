package blockdoc_test

import (
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/delta"
)

// FuzzTransformDelta drives the full edit pipeline from fuzz-provided
// documents (including multibyte and invalid UTF-8) and op tapes: each
// byte triple of the tape is one plaintext operation. It asserts, for both
// schemes and with coalescing on and off, that
//
//  1. the in-memory plaintext equals the delta applied to the old one,
//  2. the emitted ciphertext delta, applied server-side to the old
//     transport string, reproduces the document's new transport exactly,
//  3. coalescing never changes the resulting document or its plaintext.
func FuzzTransformDelta(f *testing.F) {
	f.Add("hello block world", []byte{0, 3, 2, 1, 9, 4})
	f.Add("日本語テキスト with ascii", []byte{0, 0, 1, 1, 2, 0, 2, 5, 3})
	f.Add("𝛼𝛽\xff\xfe mixed", []byte{2, 1, 1, 0, 4, 2})
	f.Add("", []byte{0, 0, 9})
	f.Fuzz(func(t *testing.T, text string, tape []byte) {
		if len(text) > 2000 || len(tape) > 60 {
			t.Skip()
		}
		// Decode the tape into one valid plaintext delta against text.
		var pd delta.Delta
		cursor := 0
		for i := 0; i+2 < len(tape); i += 3 {
			kind, a, b := tape[i]%3, int(tape[i+1]), tape[i+2]
			switch kind {
			case 0: // retain
				if left := len(text) - cursor; left > 0 {
					n := 1 + a%left
					pd = append(pd, delta.RetainOp(n))
					cursor += n
				}
			case 1: // delete
				if left := len(text) - cursor; left > 0 {
					n := 1 + a%left
					pd = append(pd, delta.DeleteOp(n))
					cursor += n
				}
			default: // insert
				pd = append(pd, delta.InsertOp(string([]byte{b, byte(a)})))
			}
		}
		if pd.Validate(len(text)) != nil {
			t.Skip()
		}
		wantText, err := pd.Apply(text)
		if err != nil {
			t.Skip()
		}

		for name, c := range codecs(t, 77) {
			for _, coalesce := range []bool{true, false} {
				doc, err := blockdoc.New(c, 4, testSalt(), testKC())
				if err != nil {
					t.Fatalf("%s: New: %v", name, err)
				}
				if err := doc.LoadPlaintext(text); err != nil {
					t.Fatalf("%s: LoadPlaintext: %v", name, err)
				}
				doc.SetCoalesce(coalesce)
				before := doc.Transport()
				cd, err := doc.TransformDelta(pd)
				if err != nil {
					t.Fatalf("%s coalesce=%v: TransformDelta(%q): %v", name, coalesce, pd.String(), err)
				}
				if got := doc.Plaintext(); got != wantText {
					t.Fatalf("%s coalesce=%v: plaintext %q, want %q", name, coalesce, got, wantText)
				}
				after, err := cd.Apply(before)
				if err != nil {
					t.Fatalf("%s coalesce=%v: server apply: %v", name, coalesce, err)
				}
				if after != doc.Transport() {
					t.Fatalf("%s coalesce=%v: server-side transport diverges from client state", name, coalesce)
				}
				if err := doc.SelfCheck(); err != nil {
					t.Fatalf("%s coalesce=%v: self check: %v", name, coalesce, err)
				}
			}
		}
	})
}
