package blockdoc_test

import (
	"testing"

	"privedit/internal/blockdoc"
)

// FuzzLoadTransport throws arbitrary strings at the container parser: it
// must either load cleanly or fail with an error — never panic, never
// produce a document whose re-serialization differs from its input.
func FuzzLoadTransport(f *testing.F) {
	// Seed with genuine containers of both schemes and mutations thereof.
	for name, c := range codecs(f, 900) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			f.Fatalf("%s: New: %v", name, err)
		}
		if err := doc.LoadPlaintext("seed corpus document"); err != nil {
			f.Fatalf("%s: LoadPlaintext: %v", name, err)
		}
		tr := doc.Transport()
		f.Add(tr)
		f.Add(tr[:len(tr)-1])
		f.Add(tr + "A")
		f.Add("X" + tr[1:])
	}
	f.Add("")
	f.Add("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")

	f.Fuzz(func(t *testing.T, transport string) {
		for name, c := range codecs(t, 901) {
			doc, err := blockdoc.New(c, 8, testSalt(), testKC())
			if err != nil {
				t.Fatalf("%s: New: %v", name, err)
			}
			if err := doc.LoadTransport(transport); err != nil {
				continue // rejected: fine
			}
			// Accepted: the document must round-trip.
			if doc.Transport() != transport {
				t.Fatalf("%s: accepted container does not round-trip", name)
			}
			if err := doc.SelfCheck(); err != nil {
				t.Fatalf("%s: accepted container fails self check: %v", name, err)
			}
		}
	})
}

// FuzzPeekHeader must never panic on arbitrary input.
func FuzzPeekHeader(f *testing.F) {
	f.Add("")
	f.Add("KBLEKRBRA")
	f.Add("!!!!not base32 at all!!!! but quite long, certainly over forty")
	f.Fuzz(func(t *testing.T, transport string) {
		_, _ = blockdoc.PeekHeader(transport)
	})
}
