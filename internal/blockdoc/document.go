package blockdoc

import (
	"fmt"
	"strings"

	"privedit/internal/crypt"
	"privedit/internal/parallel"
	"privedit/internal/skiplist"
)

// Document is an encrypted block document: the client-side state the
// extension keeps so it can translate plaintext edits into ciphertext
// deltas ("It also maintains a copy of the state of the ciphertext
// document which is needed to transform the delta", §IV-B).
type Document struct {
	codec        Codec
	header       Header
	blockChars   int
	list         *skiplist.List[*Block]
	schemePrefix []byte // codec prefix region (r0 record / start block)
	trailer      []byte // codec trailer region (RPC checksum), may be nil

	prefixChars  int // transport chars of header+scheme prefix
	recordChars  int // transport chars per record
	trailerChars int // transport chars of trailer

	// workers bounds the goroutines used when (de)serializing the record
	// stream (0 = GOMAXPROCS, 1 = serial). Small documents always take
	// the serial path; see internal/parallel.
	workers int

	// coalesceOff disables delta coalescing in TransformDelta (benchmarks
	// measuring the uncoalesced splice loop only).
	coalesceOff bool

	// spliceText is the reusable assembly buffer for splice replacement
	// text (prefixPart + insertion + suffixPart). A Document is
	// single-threaded by contract, so one scratch buffer suffices; codecs
	// copy chunk bytes into blocks they own, so the buffer can be reused
	// across splices.
	spliceText []byte
	// chunkScratch is the reusable chunk-header slice handed to the codec.
	chunkScratch [][]byte
}

// New creates an empty encrypted document for the given codec.
// blockChars is the paper's b parameter (1..codec.MaxChars()); salt is the
// key-derivation salt recorded in the container header, and keyCheck the
// password verifier derived from the document key.
func New(codec Codec, blockChars int, salt [SaltLen]byte, keyCheck [KeyCheckLen]byte) (*Document, error) {
	if blockChars < 1 || blockChars > codec.MaxChars() {
		return nil, fmt.Errorf("blockdoc: block size %d outside 1..%d", blockChars, codec.MaxChars())
	}
	d := &Document{
		codec:      codec,
		blockChars: blockChars,
		header: Header{
			SchemeID:   codec.ID(),
			BlockChars: byte(blockChars),
			Salt:       salt,
			KeyCheck:   keyCheck,
		},
		prefixChars:  crypt.TransportLen(headerBytes + codec.PrefixBytes()),
		recordChars:  crypt.TransportLen(codec.RecordBytes()),
		trailerChars: 0,
	}
	if codec.TrailerBytes() > 0 {
		d.trailerChars = crypt.TransportLen(codec.TrailerBytes())
	}
	seed := crypt.Uint64(salt[:8])
	d.list = skiplist.New[*Block](seed)
	if err := d.LoadPlaintext(""); err != nil {
		return nil, err
	}
	return d, nil
}

// SetWorkers bounds the worker goroutines used by the container
// (de)serialization kernels: 0 selects GOMAXPROCS, 1 forces serial. The
// serialized container is identical either way.
func (d *Document) SetWorkers(n int) { d.workers = n }

// SetFinger toggles the block index's search-finger cache (on by default).
// The cache is an internal accelerator — search results and serialized
// bytes are identical either way; the toggle exists for benchmarks.
func (d *Document) SetFinger(enabled bool) { d.list.SetFinger(enabled) }

// SetCoalesce toggles delta coalescing in TransformDelta (on by default).
// Coalescing never changes the resulting document, only how many splices —
// and therefore which ciphertext delta — produce it; turning it off exists
// for benchmarks that measure the uncoalesced splice loop.
func (d *Document) SetCoalesce(enabled bool) { d.coalesceOff = !enabled }

// Header returns the container header.
func (d *Document) Header() Header { return d.header }

// SchemeName returns the codec's name.
func (d *Document) SchemeName() string { return d.codec.Name() }

// BlockChars returns the document's b parameter.
func (d *Document) BlockChars() int { return d.blockChars }

// Len returns the plaintext length in characters.
func (d *Document) Len() int { return d.list.TotalPrimary() }

// Blocks returns the number of data blocks.
func (d *Document) Blocks() int { return d.list.Len() }

// TransportLen returns the length in characters of the transport string,
// without serializing it.
func (d *Document) TransportLen() int {
	return d.prefixChars + d.list.Len()*d.recordChars + d.trailerChars
}

// chunk splits text into pieces of at most b characters. Every piece is
// non-empty; text "" yields no pieces.
func (d *Document) chunk(text []byte) [][]byte {
	if len(text) == 0 {
		return nil
	}
	chunks := make([][]byte, 0, (len(text)+d.blockChars-1)/d.blockChars)
	for len(text) > d.blockChars {
		chunks = append(chunks, text[:d.blockChars])
		text = text[d.blockChars:]
	}
	chunks = append(chunks, text)
	return chunks
}

// chunkScratched is chunk backed by the document's reusable chunk-header
// slice: the headers (not the bytes they point at) are valid only until the
// next call. Used on the splice hot path, where the codec consumes the
// chunks before the next splice begins.
func (d *Document) chunkScratched(text []byte) [][]byte {
	chunks := d.chunkScratch[:0]
	for len(text) > d.blockChars {
		chunks = append(chunks, text[:d.blockChars])
		text = text[d.blockChars:]
	}
	if len(text) > 0 {
		chunks = append(chunks, text)
	}
	d.chunkScratch = chunks
	return chunks
}

// LoadPlaintext (re)builds the entire encrypted document from text: the
// scheme's full Enc function, used on the first save of an editing session.
func (d *Document) LoadPlaintext(text string) error {
	chunks := d.chunk([]byte(text))
	prefix, blocks, trailer, err := d.codec.EncryptAll(chunks)
	if err != nil {
		return fmt.Errorf("blockdoc: encrypt all: %w", err)
	}
	builder := skiplist.NewBuilder[*Block](crypt.Uint64(d.header.Salt[:8]))
	builder.Grow(len(blocks))
	for _, b := range blocks {
		builder.Append(b, len(b.Chars), d.recordChars)
	}
	d.list = builder.List()
	d.schemePrefix = prefix
	d.trailer = trailer
	return nil
}

// LoadTransport opens an existing container (the scheme's Dec function plus
// integrity verification), priming the document for incremental operation.
func (d *Document) LoadTransport(transport string) error {
	h, err := PeekHeader(transport)
	if err != nil {
		return err
	}
	if h.SchemeID != d.codec.ID() {
		// int() marks the ids as discriminators, not content.
		return fmt.Errorf("%w: container scheme %d, codec %d", ErrCorrupt, int(h.SchemeID), int(d.codec.ID()))
	}
	if int(h.BlockChars) != d.blockChars {
		return fmt.Errorf("%w: container block size %d, document %d", ErrCorrupt, int(h.BlockChars), d.blockChars)
	}
	if h.KeyCheck != d.header.KeyCheck {
		return fmt.Errorf("%w: key check mismatch (wrong password?)", ErrCorrupt)
	}
	if len(transport) < d.prefixChars+d.trailerChars {
		return fmt.Errorf("%w: transport length %d below minimum %d", ErrCorrupt, len(transport), d.prefixChars+d.trailerChars)
	}
	body := transport[d.prefixChars:]
	var trailerRaw []byte
	if d.trailerChars > 0 {
		if (len(body)-d.trailerChars)%d.recordChars != 0 {
			return fmt.Errorf("%w: body of %d chars is not whole records", ErrCorrupt, len(body))
		}
		trailerRaw, err = crypt.DecodeTransport(body[len(body)-d.trailerChars:])
		if err != nil {
			return fmt.Errorf("%w: trailer: %v", ErrCorrupt, err)
		}
		body = body[:len(body)-d.trailerChars]
	} else if len(body)%d.recordChars != 0 {
		return fmt.Errorf("%w: body of %d chars is not whole records", ErrCorrupt, len(body))
	}
	prefixRaw, err := crypt.DecodeTransport(transport[:d.prefixChars])
	if err != nil {
		return fmt.Errorf("%w: prefix: %v", ErrCorrupt, err)
	}
	if _, err := decodeHeader(prefixRaw); err != nil {
		return err
	}
	schemePrefix := prefixRaw[headerBytes:]

	// Decode the record stream into one arena: each record is a strided
	// sub-slice of a single backing array, decoded in place with the
	// zero-allocation transport decoder (2n small allocations per load
	// before the batched kernels).
	n := len(body) / d.recordChars
	rb := d.codec.RecordBytes()
	records := make([][]byte, n)
	raw := make([]byte, n*rb)
	decodeRange := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rec := raw[i*rb : (i+1)*rb : (i+1)*rb]
			if err := crypt.DecodeTransportInto(rec, body[i*d.recordChars:(i+1)*d.recordChars]); err != nil {
				return fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
			}
			records[i] = rec
		}
		return nil
	}
	if err := parallel.Range(n, parallel.Plan(n, d.workers, parallel.MinParallelBlocks), decodeRange); err != nil {
		return err
	}

	blocks, err := d.codec.DecryptAll(schemePrefix, records, trailerRaw)
	if err != nil {
		return err
	}
	builder := skiplist.NewBuilder[*Block](crypt.Uint64(h.Salt[:8]))
	builder.Grow(len(blocks))
	for _, b := range blocks {
		builder.Append(b, len(b.Chars), d.recordChars)
	}
	d.list = builder.List()
	d.header = h
	d.schemePrefix = schemePrefix
	d.trailer = trailerRaw
	return nil
}

// Plaintext reassembles the document text from the in-memory blocks.
func (d *Document) Plaintext() string {
	var b strings.Builder
	b.Grow(d.Len())
	_ = d.list.Each(0, func(_ int, blk *Block, _, _ int) bool {
		b.Write(blk.Chars)
		return true
	})
	return b.String()
}

// Transport serializes the full ciphertext container: what the server
// stores in place of the plaintext document. Every record occupies a fixed
// character slot, so large documents encode their record stream in parallel
// into one shared buffer.
//
//taint:sanitizer encodes encrypted records only
func (d *Document) Transport() string {
	n := d.list.Len()
	buf := make([]byte, d.TransportLen())
	prefixRaw := append(d.header.encode(), d.schemePrefix...)
	crypt.EncodeTransportInto(buf[:d.prefixChars], prefixRaw)
	if w := parallel.Plan(n, d.workers, parallel.MinParallelBlocks); w > 1 {
		// Parallel path: gather the block pointers with one cheap list
		// walk, then let each worker Base32-encode its record range
		// directly into the record's fixed offset of the output buffer.
		blocks := make([]*Block, 0, n)
		_ = d.list.Each(0, func(_ int, blk *Block, _, _ int) bool {
			blocks = append(blocks, blk)
			return true
		})
		_ = parallel.Range(n, w, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				off := d.prefixChars + i*d.recordChars
				crypt.EncodeTransportInto(buf[off:off+d.recordChars], blocks[i].Record)
			}
			return nil
		})
	} else {
		// Serial path: encode each record into its fixed slot during the
		// list walk itself — no per-record string, no gather.
		i := 0
		_ = d.list.Each(0, func(_ int, blk *Block, _, _ int) bool {
			off := d.prefixChars + i*d.recordChars
			crypt.EncodeTransportInto(buf[off:off+d.recordChars], blk.Record)
			i++
			return true
		})
	}
	if d.trailerChars > 0 {
		crypt.EncodeTransportInto(buf[len(buf)-d.trailerChars:], d.trailer)
	}
	return string(buf)
}

// SelfCheck round-trips the document through its own serialized form,
// exercising the codec's verification (for RPC, the full integrity check).
func (d *Document) SelfCheck() error {
	probe, err := New(d.codec, d.blockChars, d.header.Salt, d.header.KeyCheck)
	if err != nil {
		return err
	}
	if err := probe.LoadTransport(d.Transport()); err != nil {
		return err
	}
	if probe.Plaintext() != d.Plaintext() {
		return fmt.Errorf("%w: reloaded plaintext differs", ErrIntegrity)
	}
	return nil
}

// Stats summarizes the document for the evaluation harness.
type Stats struct {
	Scheme       string
	BlockChars   int
	PlainLen     int
	Blocks       int
	TransportLen int
	AvgFill      float64 // mean characters per block
	Blowup       float64 // transport chars per plaintext char
}

// Stats returns current document statistics.
func (d *Document) Stats() Stats {
	s := Stats{
		Scheme:       d.codec.Name(),
		BlockChars:   d.blockChars,
		PlainLen:     d.Len(),
		Blocks:       d.Blocks(),
		TransportLen: d.TransportLen(),
	}
	if s.Blocks > 0 {
		s.AvgFill = float64(s.PlainLen) / float64(s.Blocks)
	}
	if s.PlainLen > 0 {
		s.Blowup = float64(s.TransportLen) / float64(s.PlainLen)
	}
	return s
}
