package blockdoc_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/delta"
)

// checkEdit applies a plaintext delta through TransformDelta and verifies
// the three-way agreement at the heart of the scheme:
//
//  1. the in-memory plaintext equals the delta applied to the old plaintext;
//  2. the ciphertext delta, applied to the old transport string (as the
//     server would), yields exactly the document's new transport string;
//  3. the new transport still decrypts (and, for RPC, verifies) back to
//     the same plaintext.
func checkEdit(t *testing.T, doc *blockdoc.Document, pd delta.Delta) {
	t.Helper()
	oldPlain := doc.Plaintext()
	oldTransport := doc.Transport()

	cd, err := doc.TransformDelta(pd)
	if err != nil {
		t.Fatalf("TransformDelta(%q): %v", pd.String(), err)
	}
	wantPlain, err := pd.Apply(oldPlain)
	if err != nil {
		t.Fatalf("reference apply: %v", err)
	}
	if got := doc.Plaintext(); got != wantPlain {
		t.Fatalf("plaintext after edit = %q, want %q (delta %q)", got, wantPlain, pd.String())
	}
	serverSide, err := cd.Apply(oldTransport)
	if err != nil {
		t.Fatalf("server-side cdelta apply (%q): %v", cd.String(), err)
	}
	if serverSide != doc.Transport() {
		t.Fatalf("server transport diverged after delta %q\n cdelta %.80q...", pd.String(), cd.String())
	}
	if err := doc.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck after delta %q: %v", pd.String(), err)
	}
}

func TestSpliceBasicOperations(t *testing.T) {
	base := "abcdefghijklmnopqrstuvwxyz"
	edits := []delta.Delta{
		{delta.RetainOp(2), delta.DeleteOp(5)}, // paper example shape
		{delta.RetainOp(2), delta.DeleteOp(3), delta.InsertOp("uv"), delta.RetainOp(2), delta.InsertOp("w")},
		{delta.InsertOp("front ")},
		{delta.RetainOp(26), delta.InsertOp(" back")},
		{delta.RetainOp(13), delta.InsertOp("MIDDLE")},
		{delta.DeleteOp(26)},
		{delta.RetainOp(1), delta.DeleteOp(24)},
		{delta.RetainOp(25), delta.DeleteOp(1)},
		{delta.DeleteOp(1), delta.InsertOp("A")},
	}
	for name := range codecs(t, 20) {
		for b := 1; b <= 8; b += 7 { // b = 1 and b = 8
			for i, pd := range edits {
				c := codecs(t, uint64(100+i))[name]
				doc, err := blockdoc.New(c, b, testSalt(), testKC())
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := doc.LoadPlaintext(base); err != nil {
					t.Fatalf("LoadPlaintext: %v", err)
				}
				checkEdit(t, doc, pd)
			}
		}
	}
}

func TestSpliceOnEmptyDocument(t *testing.T) {
	for name, c := range codecs(t, 21) {
		doc, err := blockdoc.New(c, 4, testSalt(), testKC())
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		checkEdit(t, doc, delta.Delta{delta.InsertOp("hello world")})
		// Then delete everything again.
		checkEdit(t, doc, delta.Delta{delta.DeleteOp(11)})
		if doc.Len() != 0 || doc.Blocks() != 0 {
			t.Errorf("%s: doc not empty after delete-all", name)
		}
		// And refill.
		checkEdit(t, doc, delta.Delta{delta.InsertOp("again")})
	}
}

func TestSpliceRangeErrors(t *testing.T) {
	for name, c := range codecs(t, 22) {
		doc, err := blockdoc.New(c, 4, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("0123456789"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		bad := []delta.Delta{
			{delta.RetainOp(11)},
			{delta.DeleteOp(11)},
			{delta.RetainOp(5), delta.DeleteOp(6)},
		}
		for _, pd := range bad {
			if _, err := doc.TransformDelta(pd); err == nil {
				t.Errorf("%s: TransformDelta(%q) accepted out-of-range delta", name, pd.String())
			}
		}
		// Document must be unchanged after a rejected delta.
		if doc.Plaintext() != "0123456789" {
			t.Errorf("%s: document mutated by rejected delta", name)
		}
	}
}

func TestSpliceSingleEditAPI(t *testing.T) {
	for name, c := range codecs(t, 23) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("hello cruel world"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		old := doc.Transport()
		cd, err := doc.Splice(6, 5, "kind")
		if err != nil {
			t.Fatalf("%s: Splice: %v", name, err)
		}
		if doc.Plaintext() != "hello kind world" {
			t.Errorf("%s: Splice result %q", name, doc.Plaintext())
		}
		applied, err := cd.Apply(old)
		if err != nil || applied != doc.Transport() {
			t.Errorf("%s: Splice cdelta does not reproduce transport (%v)", name, err)
		}
	}
}

func TestMultiOpDeltasTouchingAdjacentBlocks(t *testing.T) {
	// Deltas engineered so consecutive splices hit the same or adjacent
	// blocks, exercising the range-merge logic (including RPC's left
	// neighbor rewrite stepping back into the previous range).
	base := strings.Repeat("0123456789", 10)
	deltas := []delta.Delta{
		{delta.RetainOp(10), delta.InsertOp("A"), delta.InsertOp("B"), delta.InsertOp("C")},
		{delta.RetainOp(10), delta.InsertOp("A"), delta.DeleteOp(5), delta.InsertOp("B")},
		{delta.RetainOp(8), delta.DeleteOp(2), delta.InsertOp("xx"), delta.DeleteOp(2), delta.InsertOp("yy")},
		{delta.DeleteOp(4), delta.InsertOp("a"), delta.DeleteOp(4), delta.InsertOp("b"), delta.DeleteOp(4)},
		{delta.RetainOp(50), delta.InsertOp("one"), delta.RetainOp(1), delta.InsertOp("two"), delta.RetainOp(1), delta.InsertOp("three")},
		{delta.InsertOp("x"), delta.RetainOp(99), delta.InsertOp("y"), delta.DeleteOp(1)},
		{delta.RetainOp(16), delta.DeleteOp(1), delta.InsertOp("q"), delta.RetainOp(0), delta.DeleteOp(1)},
	}
	for name := range codecs(t, 24) {
		for b := 1; b <= 8; b++ {
			for i, pd := range deltas {
				c := codecs(t, uint64(300+10*b+i))[name]
				doc, err := blockdoc.New(c, b, testSalt(), testKC())
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := doc.LoadPlaintext(base); err != nil {
					t.Fatalf("LoadPlaintext: %v", err)
				}
				checkEdit(t, doc, pd)
			}
		}
	}
}

// randomDelta builds a random valid delta for a document of length n.
func randomDelta(rng *rand.Rand, n int) delta.Delta {
	var d delta.Delta
	cursor := 0
	ops := 1 + rng.Intn(6)
	alphabet := "abcdefghijklmnopqrstuvwxyz ABCDEFGH"
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0, 1: // insert
			m := 1 + rng.Intn(12)
			var sb strings.Builder
			for j := 0; j < m; j++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			d = append(d, delta.InsertOp(sb.String()))
		case 2: // delete
			if cursor < n {
				m := 1 + rng.Intn(n-cursor)
				if m > 20 {
					m = 20
				}
				d = append(d, delta.DeleteOp(m))
				cursor += m
			}
		default: // retain
			if cursor < n {
				m := 1 + rng.Intn(n-cursor)
				d = append(d, delta.RetainOp(m))
				cursor += m
			}
		}
	}
	return d
}

func TestRandomEditSequencesProperty(t *testing.T) {
	// The central property test: hundreds of random deltas against both
	// codecs and several block sizes, with the server-side transport
	// replayed from the emitted ciphertext deltas after every step.
	for name := range codecs(t, 25) {
		for _, b := range []int{1, 3, 8} {
			t.Run(name+"/b="+string(rune('0'+b)), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(1000 + b)))
				c := codecs(t, uint64(500+b))[name]
				doc, err := blockdoc.New(c, b, testSalt(), testKC())
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := doc.LoadPlaintext("initial document content, moderately sized."); err != nil {
					t.Fatalf("LoadPlaintext: %v", err)
				}
				serverTransport := doc.Transport()
				plain := doc.Plaintext()
				const steps = 120
				for step := 0; step < steps; step++ {
					pd := randomDelta(rng, doc.Len()).Normalize()
					if pd.IsNoop() {
						continue
					}
					cd, err := doc.TransformDelta(pd)
					if err != nil {
						t.Fatalf("step %d: TransformDelta(%q): %v", step, pd.String(), err)
					}
					plain, err = pd.Apply(plain)
					if err != nil {
						t.Fatalf("step %d: reference apply: %v", step, err)
					}
					serverTransport, err = cd.Apply(serverTransport)
					if err != nil {
						t.Fatalf("step %d: server apply: %v", step, err)
					}
					if doc.Plaintext() != plain {
						t.Fatalf("step %d: plaintext diverged", step)
					}
					if serverTransport != doc.Transport() {
						t.Fatalf("step %d: server transport diverged (delta %q)", step, pd.String())
					}
				}
				// Final: a fresh client opens the server's copy.
				c2 := codecs(t, uint64(900+b))[name]
				doc2, err := blockdoc.New(c2, b, testSalt(), testKC())
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := doc2.LoadTransport(serverTransport); err != nil {
					t.Fatalf("final LoadTransport: %v", err)
				}
				if doc2.Plaintext() != plain {
					t.Fatal("fresh client sees different plaintext")
				}
			})
		}
	}
}

func TestIncrementalTouchesFewRecords(t *testing.T) {
	// The point of incremental encryption: a small edit in a large
	// document must produce a ciphertext delta that rewrites only a few
	// records, not the whole transport.
	for name, c := range codecs(t, 26) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		text := strings.Repeat("lorem ipsum dolor sit amet, consectetur ", 250) // 10000 chars
		if err := doc.LoadPlaintext(text); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		transportLen := doc.TransportLen()
		cd, err := doc.Splice(5000, 3, "XYZ")
		if err != nil {
			t.Fatalf("Splice: %v", err)
		}
		touched := cd.InsertLen() + cd.DeleteLen()
		// Generous bound: a handful of records plus prefix/trailer.
		if touched > transportLen/20 {
			t.Errorf("%s: small edit touched %d of %d transport chars", name, touched, transportLen)
		}
	}
}

func TestNoopDeltaProducesNoopCDelta(t *testing.T) {
	for name, c := range codecs(t, 27) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("steady state"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		cd, err := doc.TransformDelta(delta.Delta{delta.RetainOp(6)})
		if err != nil {
			t.Fatalf("TransformDelta: %v", err)
		}
		if !cd.IsNoop() {
			t.Errorf("%s: no-op delta produced cdelta %q", name, cd.String())
		}
	}
}

func TestTransformDeltaRejectsInvalid(t *testing.T) {
	c := codecs(t, 28)["rECB"]
	doc, err := blockdoc.New(c, 8, testSalt(), testKC())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := doc.LoadPlaintext("short"); err != nil {
		t.Fatalf("LoadPlaintext: %v", err)
	}
	if _, err := doc.TransformDelta(delta.Delta{delta.RetainOp(100)}); !errors.Is(err, delta.ErrRange) {
		t.Errorf("oversized retain = %v, want delta.ErrRange", err)
	}
}
