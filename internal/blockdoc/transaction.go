package blockdoc

import (
	"fmt"
	"sync"

	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/obs"
)

// Telemetry for §V-C block behaviour: how often edits split blocks apart or
// merge them away, and how fragmented the block store is. No-ops until
// obs.Enable().
var (
	metricSplices = obs.NewCounter("privedit_block_splices_total",
		"Block-range replacements performed by transform_delta.")
	metricSplits = obs.NewCounter("privedit_block_splits_total",
		"Net blocks gained by splices that rewrote existing blocks (block splits).")
	metricMerges = obs.NewCounter("privedit_block_merges_total",
		"Net blocks lost by splices that kept data blocks (block merges).")
	metricFragmentation = obs.NewGauge("privedit_fragmentation_ratio",
		"Unused block capacity fraction, 1 - chars/(blocks*b), sampled after each transform_delta.")
)

// rangeEdit records that source blocks [srcLo, srcHi) were replaced by the
// blocks currently occupying ordinals [curLo, curLo+curCnt). Ranges are
// kept sorted and non-overlapping; because delta operations move strictly
// left to right, only the most recent range can ever be touched again.
type rangeEdit struct {
	srcLo, srcHi  int
	curLo, curCnt int
}

// tx accumulates the effects of one plaintext delta (a sequence of splices)
// so a single well-formed ciphertext delta can be emitted at commit.
type tx struct {
	doc            *Document
	srcCount       int // blocks when the transaction began
	edits          []rangeEdit
	prefixChanged  bool
	trailerChanged bool
}

// metricCoalescedOps counts plaintext delta operations eliminated by
// coalescing before the splice loop (see delta.Coalesce).
var metricCoalescedOps = obs.NewCounter("privedit_delta_ops_coalesced_total",
	"Plaintext delta operations folded away by coalescing before transform_delta.")

// TransformDelta applies a plaintext delta to the encrypted document and
// returns the corresponding ciphertext delta: the paper's transform_delta
// (§V-B, Figure 2). The returned delta transforms the document's previous
// transport string into its new one; the server applies it blindly.
//
// The delta is first coalesced to burst-canonical form (delta.Coalesce),
// and each delete-insert pair at one cursor position runs as a single
// block-range splice: a replacement edit rewrites its boundary blocks
// once, not once for the delete and again for the insert.
//
//taint:sanitizer emits a ciphertext delta
func (d *Document) TransformDelta(pd delta.Delta) (delta.Delta, error) {
	if err := pd.Validate(d.Len()); err != nil {
		return nil, fmt.Errorf("blockdoc: plaintext delta: %w", err)
	}
	if !d.coalesceOff {
		before := len(pd)
		pd = pd.Coalesce()
		if dropped := before - len(pd); dropped > 0 {
			metricCoalescedOps.Add(int64(dropped))
		}
	}
	t := &tx{doc: d, srcCount: d.list.Len()}
	cursor := 0
	for i := 0; i < len(pd); i++ {
		switch op := pd[i]; op.Kind {
		case delta.Retain:
			cursor += op.N
		case delta.Insert:
			if err := t.splice(cursor, 0, op.Str); err != nil {
				return nil, err
			}
			cursor += len(op.Str)
		case delta.Delete:
			// In coalesced form a delete can only be followed by the
			// run's merged insert: fold both into one splice.
			ins := ""
			if !d.coalesceOff && i+1 < len(pd) && pd[i+1].Kind == delta.Insert {
				ins = pd[i+1].Str
				i++
			}
			if err := t.splice(cursor, op.N, ins); err != nil {
				return nil, err
			}
			cursor += len(ins)
		}
	}
	return t.commit()
}

// Splice performs a single edit — delete del characters at pos, then
// insert ins there — and returns the ciphertext delta for it.
//
//taint:sanitizer emits a ciphertext delta
func (d *Document) Splice(pos, del int, ins string) (delta.Delta, error) {
	return d.TransformDelta(delta.Delta{
		delta.RetainOp(pos),
		delta.DeleteOp(del),
		delta.InsertOp(ins),
	})
}

// splice replaces del characters at plaintext position pos with ins,
// updating the block index incrementally and recording the affected block
// ranges for commit.
func (t *tx) splice(pos, del int, ins string) error {
	d := t.doc
	n := d.Len()
	if pos < 0 || del < 0 || pos+del > n {
		return fmt.Errorf("%w: splice pos %d del %d in document of %d chars", ErrRange, pos, del, n)
	}
	if del == 0 && ins == "" {
		return nil
	}

	// Determine the current block range [curA, curB) to replace and the
	// partial characters that survive from the boundary blocks.
	var curA, curB int
	var prefixPart, suffixPart []byte
	switch {
	case n == 0 || pos == n:
		// Appending (or filling an empty document): no blocks touched.
		curA, curB = d.list.Len(), d.list.Len()
	default:
		first, err := d.list.FindPrimary(pos)
		if err != nil {
			return err
		}
		if del == 0 && first.Offset == 0 {
			// Pure insertion on a block boundary: splice in new blocks
			// without rewriting the right block.
			curA, curB = first.Ordinal, first.Ordinal
		} else {
			curA = first.Ordinal
			prefixPart = first.Value.Chars[:first.Offset]
			if del == 0 {
				curB = first.Ordinal + 1
				suffixPart = first.Value.Chars[first.Offset:]
			} else {
				last, err := d.list.FindPrimary(pos + del - 1)
				if err != nil {
					return err
				}
				curB = last.Ordinal + 1
				suffixPart = last.Value.Chars[last.Offset+1:]
			}
		}
	}

	// Assemble the replacement text in the document's reusable scratch
	// buffer. Codecs copy chunk bytes into blocks they own (their Splice
	// contract), so the buffer is free again once codec.Splice returns.
	need := len(prefixPart) + len(ins) + len(suffixPart)
	if cap(d.spliceText) < need {
		d.spliceText = make([]byte, 0, need)
	}
	newText := append(d.spliceText[:0], prefixPart...)
	newText = append(newText, ins...)
	newText = append(newText, suffixPart...)
	d.spliceText = newText
	chunks := d.chunkScratched(newText)

	// Collect and remove the replaced blocks.
	removed := make([]*Block, 0, curB-curA)
	_ = d.list.Each(curA, func(ord int, blk *Block, _, _ int) bool {
		if ord >= curB {
			return false
		}
		removed = append(removed, blk)
		return true
	})
	for range removed {
		if _, _, _, err := d.list.DeleteAt(curA); err != nil {
			return err
		}
	}

	// Identify surviving neighbors.
	var left, right *Block
	if curA > 0 {
		pos, err := d.list.FindOrdinal(curA - 1)
		if err != nil {
			return err
		}
		left = pos.Value
	}
	if curA < d.list.Len() {
		pos, err := d.list.FindOrdinal(curA)
		if err != nil {
			return err
		}
		right = pos.Value
	}

	added, newLeftRecord, newPrefix, newTrailer, err := d.codec.Splice(left, removed, chunks, right)
	if err != nil {
		return fmt.Errorf("blockdoc: codec splice: %w", err)
	}
	leftRewritten := false
	if newLeftRecord != nil && left != nil {
		left.Record = newLeftRecord
		leftRewritten = true
	}
	for i, blk := range added {
		if err := d.list.InsertAt(curA+i, blk, len(blk.Chars), d.recordChars); err != nil {
			return err
		}
	}
	if newPrefix != nil {
		d.schemePrefix = newPrefix
		t.prefixChanged = true
	}
	if newTrailer != nil {
		d.trailer = newTrailer
		t.trailerChanged = true
	}

	metricSplices.Inc()
	if len(removed) > 0 && len(added) > len(removed) {
		metricSplits.Add(int64(len(added) - len(removed)))
	}
	if len(added) > 0 && len(removed) > len(added) {
		metricMerges.Add(int64(len(removed) - len(added)))
	}

	t.record(curA, curB, len(added), leftRewritten)
	return nil
}

// record merges the replacement of current ordinals [curA, curB) (with
// addedCnt new blocks, optionally extended one block left for a rewritten
// neighbor) into the transaction's range edits.
func (t *tx) record(curA, curB, addedCnt int, leftRewritten bool) {
	effA := curA
	if leftRewritten {
		effA = curA - 1
	}

	if len(t.edits) > 0 {
		last := &t.edits[len(t.edits)-1]
		lastEnd := last.curLo + last.curCnt
		if effA <= lastEnd {
			// Overlaps or touches the previous range: merge.
			mergedLo := last.curLo
			srcLo := last.srcLo
			if effA < last.curLo {
				// Left-neighbor rewrite stepped one block before the
				// previous range; that block is the source block just
				// before it.
				mergedLo = effA
				srcLo = last.srcLo - (last.curLo - effA)
			}
			srcHi := last.srcHi
			mergedOldEnd := lastEnd
			if curB > lastEnd {
				srcHi += curB - lastEnd
				mergedOldEnd = curB
			}
			last.srcLo = srcLo
			last.srcHi = srcHi
			last.curLo = mergedLo
			last.curCnt = (mergedOldEnd - mergedLo) - (curB - curA) + addedCnt
			return
		}
	}

	// Disjoint new range: translate current ordinals to source ordinals by
	// undoing the shifts of all earlier replacements (all to the left).
	shift := 0
	for _, e := range t.edits {
		shift += (e.srcHi - e.srcLo) - e.curCnt
	}
	cnt := addedCnt
	if leftRewritten {
		cnt++
	}
	t.edits = append(t.edits, rangeEdit{
		srcLo:  effA + shift,
		srcHi:  curB + shift,
		curLo:  effA,
		curCnt: cnt,
	})
}

// encodePool recycles the Base32 staging buffers commit uses to encode
// record runs: one buffer per in-flight commit, shared across documents.
var encodePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// commit emits the ciphertext delta describing every change the
// transaction made, against the transport string as it was when the
// transaction began.
func (t *tx) commit() (delta.Delta, error) {
	d := t.doc
	if n := d.list.Len(); n > 0 {
		metricFragmentation.Set(1 - float64(d.Len())/float64(n*d.blockChars))
	} else {
		metricFragmentation.Set(0)
	}
	// Worst case per range edit: retain + delete + insert, plus the prefix
	// op and a possible retain + delete + insert for the trailer.
	out := make(delta.Delta, 0, 4+3*len(t.edits))

	// Prefix region.
	if t.prefixChanged {
		prefixRaw := append(d.header.encode(), d.schemePrefix...)
		out = append(out, delta.DeleteOp(d.prefixChars), delta.InsertOp(crypt.EncodeTransport(prefixRaw)))
	} else {
		out = append(out, delta.RetainOp(d.prefixChars))
	}

	// Record regions.
	prevSrc := 0
	for _, e := range t.edits {
		if e.srcLo > prevSrc {
			out = append(out, delta.RetainOp((e.srcLo-prevSrc)*d.recordChars))
		}
		if e.srcHi > e.srcLo {
			out = append(out, delta.DeleteOp((e.srcHi-e.srcLo)*d.recordChars))
		}
		if e.curCnt > 0 {
			// Encode the record run into a pooled staging buffer: one
			// string allocation for the insert payload instead of one per
			// record.
			bufp := encodePool.Get().(*[]byte)
			need := e.curCnt * d.recordChars
			if cap(*bufp) < need {
				*bufp = make([]byte, 0, need)
			}
			buf := (*bufp)[:need]
			count := 0
			if err := d.list.Each(e.curLo, func(_ int, blk *Block, _, _ int) bool {
				if count >= e.curCnt {
					return false
				}
				crypt.EncodeTransportInto(buf[count*d.recordChars:(count+1)*d.recordChars], blk.Record)
				count++
				return true
			}); err != nil {
				encodePool.Put(bufp)
				return nil, err
			}
			if count != e.curCnt {
				encodePool.Put(bufp)
				return nil, fmt.Errorf("%w: range edit expected %d blocks, found %d", ErrCorrupt, e.curCnt, count)
			}
			out = append(out, delta.InsertOp(string(buf)))
			*bufp = buf[:0]
			encodePool.Put(bufp)
		}
		prevSrc = e.srcHi
	}

	// Trailer region.
	if t.trailerChanged && d.trailerChars > 0 {
		if t.srcCount > prevSrc {
			out = append(out, delta.RetainOp((t.srcCount-prevSrc)*d.recordChars))
		}
		out = append(out, delta.DeleteOp(d.trailerChars), delta.InsertOp(crypt.EncodeTransport(d.trailer)))
	}

	return out.Normalize(), nil
}
