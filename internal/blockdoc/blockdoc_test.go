package blockdoc_test

import (
	"errors"
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/recb"
	"privedit/internal/rpcmode"
)

func testSalt() [blockdoc.SaltLen]byte {
	var s [blockdoc.SaltLen]byte
	for i := range s {
		s[i] = byte(i + 1)
	}
	return s
}

func testKC() [blockdoc.KeyCheckLen]byte {
	var k [blockdoc.KeyCheckLen]byte
	for i := range k {
		k[i] = byte(0x90 + i)
	}
	return k
}

func testKey() []byte {
	k := make([]byte, crypt.KeySize)
	for i := range k {
		k[i] = byte(0x40 + i)
	}
	return k
}

// codecs returns a fresh codec of each scheme, deterministically seeded.
func codecs(t testing.TB, seed uint64) map[string]blockdoc.Codec {
	t.Helper()
	r, err := recb.New(testKey(), crypt.NewSeededNonceSource(seed))
	if err != nil {
		t.Fatalf("recb.New: %v", err)
	}
	p, err := rpcmode.New(testKey(), crypt.NewSeededNonceSource(seed+1))
	if err != nil {
		t.Fatalf("rpcmode.New: %v", err)
	}
	return map[string]blockdoc.Codec{"rECB": r, "RPC": p}
}

func TestNewRejectsBadBlockSize(t *testing.T) {
	for name, c := range codecs(t, 1) {
		for _, b := range []int{0, -1, 9, 100} {
			if _, err := blockdoc.New(c, b, testSalt(), testKC()); err == nil {
				t.Errorf("%s: New accepted block size %d", name, b)
			}
		}
	}
}

func TestRoundTripAllBlockSizes(t *testing.T) {
	text := "The quick brown fox jumps over the lazy dog. 0123456789!"
	for name, _ := range codecs(t, 2) {
		for b := 1; b <= 8; b++ {
			c := codecs(t, uint64(b))[name]
			doc, err := blockdoc.New(c, b, testSalt(), testKC())
			if err != nil {
				t.Fatalf("%s b=%d: New: %v", name, b, err)
			}
			if err := doc.LoadPlaintext(text); err != nil {
				t.Fatalf("%s b=%d: LoadPlaintext: %v", name, b, err)
			}
			if got := doc.Plaintext(); got != text {
				t.Fatalf("%s b=%d: Plaintext = %q", name, b, got)
			}
			wantBlocks := (len(text) + b - 1) / b
			if doc.Blocks() != wantBlocks {
				t.Errorf("%s b=%d: %d blocks, want %d", name, b, doc.Blocks(), wantBlocks)
			}
			// Reopen from transport with a fresh codec.
			c2 := codecs(t, uint64(b)+100)[name]
			doc2, err := blockdoc.New(c2, b, testSalt(), testKC())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := doc2.LoadTransport(doc.Transport()); err != nil {
				t.Fatalf("%s b=%d: LoadTransport: %v", name, b, err)
			}
			if got := doc2.Plaintext(); got != text {
				t.Fatalf("%s b=%d: reopened plaintext = %q", name, b, got)
			}
			if doc2.Transport() != doc.Transport() {
				t.Errorf("%s b=%d: reopened transport differs", name, b)
			}
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	for name, c := range codecs(t, 3) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		if doc.Len() != 0 || doc.Blocks() != 0 || doc.Plaintext() != "" {
			t.Errorf("%s: empty doc Len=%d Blocks=%d", name, doc.Len(), doc.Blocks())
		}
		tr := doc.Transport()
		if len(tr) != doc.TransportLen() {
			t.Errorf("%s: TransportLen %d, actual %d", name, doc.TransportLen(), len(tr))
		}
		c2 := codecs(t, 4)[name]
		doc2, err := blockdoc.New(c2, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc2.LoadTransport(tr); err != nil {
			t.Fatalf("%s: LoadTransport of empty doc: %v", name, err)
		}
		if doc2.Plaintext() != "" {
			t.Errorf("%s: reopened empty doc nonempty", name)
		}
	}
}

func TestTransportLenMatches(t *testing.T) {
	for name, c := range codecs(t, 5) {
		doc, err := blockdoc.New(c, 4, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext(strings.Repeat("x", 123)); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		if got := len(doc.Transport()); got != doc.TransportLen() {
			t.Errorf("%s: TransportLen() = %d, len(Transport()) = %d", name, doc.TransportLen(), got)
		}
	}
}

func TestTransportIsPrintableBase32(t *testing.T) {
	for name, c := range codecs(t, 6) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("secret content \x00\xff binary ok"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		for _, ch := range doc.Transport() {
			ok := (ch >= 'A' && ch <= 'Z') || (ch >= '2' && ch <= '7')
			if !ok {
				t.Fatalf("%s: transport contains %q", name, ch)
			}
		}
	}
}

func TestPeekHeader(t *testing.T) {
	for name, c := range codecs(t, 7) {
		doc, err := blockdoc.New(c, 5, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("peek me"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		h, err := blockdoc.PeekHeader(doc.Transport())
		if err != nil {
			t.Fatalf("%s: PeekHeader: %v", name, err)
		}
		if h.SchemeID != c.ID() {
			t.Errorf("%s: scheme id %d, want %d", name, h.SchemeID, c.ID())
		}
		if h.BlockChars != 5 {
			t.Errorf("%s: block chars %d, want 5", name, h.BlockChars)
		}
		if h.Salt != testSalt() {
			t.Errorf("%s: salt mismatch", name)
		}
	}
}

func TestPeekHeaderErrors(t *testing.T) {
	if _, err := blockdoc.PeekHeader("short"); !errors.Is(err, blockdoc.ErrCorrupt) {
		t.Errorf("short transport = %v, want ErrCorrupt", err)
	}
	if _, err := blockdoc.PeekHeader(strings.Repeat("!", 64)); !errors.Is(err, blockdoc.ErrCorrupt) {
		t.Errorf("invalid base32 = %v, want ErrCorrupt", err)
	}
	// Valid Base32, wrong magic.
	bad := crypt.EncodeTransport([]byte(strings.Repeat("Z", 40)))
	if _, err := blockdoc.PeekHeader(bad); !errors.Is(err, blockdoc.ErrCorrupt) {
		t.Errorf("bad magic = %v, want ErrCorrupt", err)
	}
}

func TestLoadTransportSchemeMismatch(t *testing.T) {
	cs := codecs(t, 8)
	recbDoc, err := blockdoc.New(cs["rECB"], 8, testSalt(), testKC())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := recbDoc.LoadPlaintext("hello"); err != nil {
		t.Fatalf("LoadPlaintext: %v", err)
	}
	rpcDoc, err := blockdoc.New(cs["RPC"], 8, testSalt(), testKC())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rpcDoc.LoadTransport(recbDoc.Transport()); !errors.Is(err, blockdoc.ErrCorrupt) {
		t.Errorf("cross-scheme load = %v, want ErrCorrupt", err)
	}
}

func TestLoadTransportBlockSizeMismatch(t *testing.T) {
	cs := codecs(t, 9)
	doc4, err := blockdoc.New(cs["rECB"], 4, testSalt(), testKC())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := doc4.LoadPlaintext("hello"); err != nil {
		t.Fatalf("LoadPlaintext: %v", err)
	}
	doc8, err := blockdoc.New(codecs(t, 10)["rECB"], 8, testSalt(), testKC())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := doc8.LoadTransport(doc4.Transport()); !errors.Is(err, blockdoc.ErrCorrupt) {
		t.Errorf("block-size-mismatch load = %v, want ErrCorrupt", err)
	}
}

func TestLoadTransportTruncatedBody(t *testing.T) {
	for name, c := range codecs(t, 11) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("0123456789abcdef0123456789"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		tr := doc.Transport()
		// Chop a few characters off the end: body no longer whole records
		// (or the trailer is mangled).
		c2 := codecs(t, 12)[name]
		doc2, err := blockdoc.New(c2, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc2.LoadTransport(tr[:len(tr)-3]); err == nil {
			t.Errorf("%s: truncated transport accepted", name)
		}
	}
}

func TestStats(t *testing.T) {
	c := codecs(t, 13)["rECB"]
	doc, err := blockdoc.New(c, 8, testSalt(), testKC())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	text := strings.Repeat("a", 80) // exactly 10 full blocks
	if err := doc.LoadPlaintext(text); err != nil {
		t.Fatalf("LoadPlaintext: %v", err)
	}
	s := doc.Stats()
	if s.Blocks != 10 || s.PlainLen != 80 {
		t.Errorf("Stats = %+v", s)
	}
	if s.AvgFill != 8.0 {
		t.Errorf("AvgFill = %f, want 8", s.AvgFill)
	}
	if s.Blowup <= 1 {
		t.Errorf("Blowup = %f, want > 1", s.Blowup)
	}
	if s.Scheme != "rECB" || s.BlockChars != 8 {
		t.Errorf("Stats identity = %+v", s)
	}
}

func TestSelfCheck(t *testing.T) {
	for name, c := range codecs(t, 14) {
		doc, err := blockdoc.New(c, 3, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("self check content here"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		if err := doc.SelfCheck(); err != nil {
			t.Errorf("%s: SelfCheck: %v", name, err)
		}
	}
}

func TestDistinctCiphertextsForSamePlaintext(t *testing.T) {
	// Randomized encryption: loading the same plaintext twice must give
	// different transports (fresh nonces), yet both decrypt identically.
	for name, c := range codecs(t, 15) {
		doc, err := blockdoc.New(c, 8, testSalt(), testKC())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := doc.LoadPlaintext("same plaintext"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		t1 := doc.Transport()
		if err := doc.LoadPlaintext("same plaintext"); err != nil {
			t.Fatalf("LoadPlaintext: %v", err)
		}
		t2 := doc.Transport()
		if t1 == t2 {
			t.Errorf("%s: identical transports for repeated encryption", name)
		}
	}
}
