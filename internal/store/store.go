// Package store is the persistence layer behind the simulated service's
// sharded document store: a per-shard append-only write-ahead log with
// periodic snapshot + log truncation, built so the provider can durably
// hold millions of ciphertext documents while the serving layer keeps
// only a hot cache resident.
//
// Durability contract: Put returns only after the record is on stable
// storage (fsync, group-committed across concurrent writers), so an
// acknowledged save survives kill -9. Recovery replays the WAL over the
// latest snapshot, keeping the highest version per document; a torn
// final record — the half-written tail of the crash itself — is
// discarded, while a CRC failure anywhere else is reported loudly as
// corruption, never silently truncated.
//
// The store never interprets document text. When the mediating extension
// is in play the text is Base32 ciphertext end to end, and the record
// type's //taint:clean annotation turns that into a machine-checked
// claim: the plaintext-flow analyzer rejects any write of tainted
// (decrypted) data into the persisted content field.
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"privedit/internal/obs"
)

// NumShards matches the serving store's lock-stripe width: document ids
// hash onto shard directories with the same FNV-1a mapping, so one
// serving stripe maps onto exactly one WAL.
const NumShards = 32

// Telemetry. No-ops until obs.Enable().
var (
	metricFsyncSeconds = obs.NewHistogram("privedit_store_wal_fsync_seconds",
		"WAL fsync latency, seconds (one observation per group commit).", obs.TimeBuckets)
	metricFsyncs = obs.NewCounter("privedit_store_wal_fsyncs_total",
		"WAL group commits: each fsync may cover many concurrent Puts.")
	metricPuts = obs.NewCounter("privedit_store_puts_total",
		"Document states appended to the WAL.")
	metricCheckpoints = obs.NewCounter("privedit_store_checkpoints_total",
		"Snapshot + WAL-truncation cycles across all shards.")
	metricCheckpointSeconds = obs.NewHistogram("privedit_store_checkpoint_seconds",
		"Wall time of one shard checkpoint (snapshot write + WAL truncation).", obs.TimeBuckets)
	metricWALBytes = obs.NewGauge("privedit_store_wal_bytes",
		"Live WAL bytes across all shards (drops after each checkpoint).")
	metricDocs = obs.NewGauge("privedit_store_documents",
		"Documents durably held by the persistence layer.")
	metricRecoverySeconds = obs.NewGauge("privedit_store_recovery_seconds",
		"Wall time of the last crash recovery (snapshot load + WAL replay).")
	metricTornBytes = obs.NewCounter("privedit_store_recovery_torn_bytes_total",
		"Bytes of torn WAL tail discarded during recovery.")
)

// errBadCRC marks an integrity failure; recovery turns it into either a
// discarded torn tail or a *CorruptError depending on where it sits.
var errBadCRC = errors.New("store: record CRC mismatch")

// CorruptError reports a record that failed its integrity check somewhere
// a torn write cannot explain — mid-log, or inside a snapshot (which is
// only ever published whole via fsync + rename). It deliberately carries
// no record content, only the location.
type CorruptError struct {
	Path   string
	Offset int64
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupted record in %s at offset %d (not a torn tail; refusing to truncate)", e.Path, e.Offset)
}

// SyncPolicy selects Put's durability behavior.
type SyncPolicy int

const (
	// SyncAlways (the default) group-commits every Put: the call returns
	// only after an fsync covers its record.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves writes to the OS page cache — bulk-load mode for
	// cold-population benchmarks. A crash may lose recent acks; Flush or
	// Close restores durability of everything written so far.
	SyncNone
)

// Options configure a Disk.
type Options struct {
	// CheckpointBytes is the per-shard WAL size that triggers a snapshot
	// and log truncation. 0 means 4 MiB; negative disables automatic
	// checkpoints (tests drive Checkpoint explicitly).
	CheckpointBytes int64
	// Sync is the Put durability policy.
	Sync SyncPolicy
}

func (o Options) withDefaults() Options {
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 4 << 20
	}
	return o
}

// RecoveryStats describes what Open found and repaired.
type RecoveryStats struct {
	Docs            int64         // documents indexed after recovery
	SnapshotRecords int64         // records loaded from snapshots
	WALRecords      int64         // records replayed from WALs
	TornBytes       int64         // torn-tail bytes discarded
	Duration        time.Duration // wall time of the whole recovery
}

// Disk is the on-disk document store: NumShards shard directories, each
// holding wal.log (append-only, CRC-checked records) and snap.db (the
// last checkpoint). Safe for concurrent use.
type Disk struct {
	dir      string
	opts     Options
	shards   [NumShards]diskShard
	recovery RecoveryStats
}

// docLoc locates a document's latest durable record inside its shard.
type docLoc struct {
	inWAL   bool
	off     int64 // record start (header) offset
	rlen    int32 // full record length, header included
	version uint64
}

// diskShard is one WAL + snapshot pair. mu guards everything; the group
// commit protocol releases it only around the fsync itself, so appends
// from other writers proceed while the leader syncs.
type diskShard struct {
	mu   sync.Mutex
	cond *sync.Cond

	dir   string
	opts  Options
	wal   *os.File
	snap  *os.File // nil until the first checkpoint publishes one
	index map[string]docLoc

	walSize   int64 // logical WAL size including OS-buffered bytes
	appendSeq uint64
	syncedSeq uint64
	syncing   bool
	syncErr   error
	encodeBuf []byte

	// Recovery accounting, filled once by open().
	recoveredSnap int64
	recoveredWAL  int64
	tornBytes     int64
}

// Open creates or recovers the store under dir. Recovery loads each
// shard's snapshot, replays its WAL (discarding a torn tail, refusing
// mid-log corruption), and leaves the WAL open for appends.
func Open(dir string, opts Options) (*Disk, error) {
	start := time.Now()
	d := &Disk{dir: dir, opts: opts.withDefaults()}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &d.shards[i]
			sh.cond = sync.NewCond(&sh.mu)
			sh.opts = d.opts
			sh.dir = filepath.Join(dir, fmt.Sprintf("shard-%02d", i))
			err := sh.open()
			mu.Lock()
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	var walBytes int64
	for i := range d.shards {
		sh := &d.shards[i]
		d.recovery.Docs += int64(len(sh.index))
		d.recovery.SnapshotRecords += sh.recoveredSnap
		d.recovery.WALRecords += sh.recoveredWAL
		d.recovery.TornBytes += sh.tornBytes
		walBytes += sh.walSize
	}
	d.recovery.Duration = time.Since(start)
	metricDocs.Set(float64(d.recovery.Docs))
	metricWALBytes.Set(float64(walBytes))
	metricRecoverySeconds.Set(d.recovery.Duration.Seconds())
	metricTornBytes.Add(d.recovery.TornBytes)
	return d, nil
}

// Recovery returns what Open found and repaired.
func (d *Disk) Recovery() RecoveryStats { return d.recovery }

// shardFor maps a document id onto its shard with the same FNV-1a hash
// the serving store uses.
func (d *Disk) shardFor(docID string) *diskShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(docID))
	return &d.shards[h.Sum32()%NumShards]
}

// Put durably records a document state. Under SyncAlways it returns only
// once an fsync covers the record (group-committed with concurrent Puts
// to the same shard).
func (d *Disk) Put(docID, content string, version int) error {
	sh := d.shardFor(docID)
	rec := record{op: opState, version: uint64(version), docID: docID}
	rec.content = content
	sh.mu.Lock()
	if sh.wal == nil {
		sh.mu.Unlock()
		return errors.New("store: put on closed store")
	}
	buf, err := appendRecord(sh.encodeBuf[:0], &rec)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.encodeBuf = buf[:0]
	if _, err := sh.wal.Write(buf); err != nil {
		sh.syncErr = err
		sh.mu.Unlock()
		return err
	}
	loc := docLoc{inWAL: true, off: sh.walSize, rlen: int32(len(buf)), version: rec.version}
	if _, existed := sh.index[docID]; !existed {
		metricDocs.Add(1)
	}
	sh.index[docID] = loc
	sh.walSize += int64(len(buf))
	metricWALBytes.Add(float64(len(buf)))
	metricPuts.Inc()
	sh.appendSeq++
	seq := sh.appendSeq
	needCkpt := sh.opts.CheckpointBytes > 0 && sh.walSize >= sh.opts.CheckpointBytes
	if needCkpt {
		if err := sh.checkpointLocked(); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	sh.mu.Unlock()
	if d.opts.Sync == SyncAlways {
		return sh.waitDurable(seq)
	}
	return nil
}

// waitDurable blocks until an fsync covers append sequence seq, electing
// a group-commit leader when none is in flight.
func (sh *diskShard) waitDurable(seq uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.syncedSeq < seq {
		if sh.syncErr != nil {
			return sh.syncErr
		}
		if sh.syncing {
			sh.cond.Wait()
			continue
		}
		sh.syncing = true
		target := sh.appendSeq
		f := sh.wal
		sh.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		metricFsyncSeconds.Observe(time.Since(start).Seconds())
		metricFsyncs.Inc()
		sh.mu.Lock()
		sh.syncing = false
		if err != nil {
			sh.syncErr = err
			sh.cond.Broadcast()
			return err
		}
		if target > sh.syncedSeq {
			sh.syncedSeq = target
		}
		sh.cond.Broadcast()
	}
	return nil
}

// Get returns a document's durable content and version. ok is false when
// the store has never seen the id.
func (d *Disk) Get(docID string) (content string, version int, ok bool, err error) {
	sh := d.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	loc, found := sh.index[docID]
	if !found {
		return "", 0, false, nil
	}
	rec, err := sh.readLocked(loc)
	if err != nil {
		return "", 0, false, err
	}
	return rec.content, int(rec.version), true, nil
}

// Has reports whether the store holds the document.
func (d *Disk) Has(docID string) (bool, error) {
	sh := d.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, found := sh.index[docID]
	return found, nil
}

// Docs returns the number of documents durably held.
func (d *Disk) Docs() int64 {
	var n int64
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += int64(len(sh.index))
		sh.mu.Unlock()
	}
	return n
}

// readLocked fetches and integrity-checks one record. Callers hold sh.mu.
func (sh *diskShard) readLocked(loc docLoc) (record, error) {
	f := sh.snap
	path := filepath.Join(sh.dir, snapName)
	if loc.inWAL {
		f, path = sh.wal, filepath.Join(sh.dir, walName)
	}
	if f == nil {
		return record{}, errors.New("store: read on closed store")
	}
	raw := make([]byte, loc.rlen)
	if _, err := f.ReadAt(raw, loc.off); err != nil {
		return record{}, fmt.Errorf("store: read %s at %d: %w", filepath.Base(path), loc.off, err)
	}
	rec, err := verifyRecord(raw)
	if err != nil {
		if errors.Is(err, errBadCRC) {
			return record{}, &CorruptError{Path: path, Offset: loc.off}
		}
		return record{}, err
	}
	return rec, nil
}

// Flush forces everything appended so far onto stable storage (the
// SyncNone catch-up; a no-op burden under SyncAlways).
func (d *Disk) Flush() error {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		seq := sh.appendSeq
		closed := sh.wal == nil
		sh.mu.Unlock()
		if closed {
			continue
		}
		if err := sh.waitDurable(seq); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint forces a snapshot + WAL truncation on every shard,
// regardless of WAL size.
func (d *Disk) Checkpoint() error {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		err := sh.checkpointLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every shard. The store is unusable afterwards.
func (d *Disk) Close() error {
	err := d.Flush()
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.wal != nil {
			if cerr := sh.wal.Close(); cerr != nil && err == nil {
				err = cerr
			}
			sh.wal = nil
		}
		if sh.snap != nil {
			if cerr := sh.snap.Close(); cerr != nil && err == nil {
				err = cerr
			}
			sh.snap = nil
		}
		sh.mu.Unlock()
	}
	return err
}

const (
	walName  = "wal.log"
	snapName = "snap.db"
)

// open creates or recovers one shard directory.
func (sh *diskShard) open() error {
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return err
	}
	sh.index = make(map[string]docLoc)
	if err := sh.loadSnapshot(); err != nil {
		return err
	}
	return sh.replayWAL()
}

// loadSnapshot indexes snap.db when one exists. Snapshots are published
// atomically (fsync, rename, dir fsync), so any integrity failure inside
// one is corruption, never a torn tail.
func (sh *diskShard) loadSnapshot() error {
	path := filepath.Join(sh.dir, snapName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	n, _, err := sh.scanRecords(f, path, snapMagic, false)
	if err != nil {
		f.Close()
		return err
	}
	sh.recoveredSnap = n
	sh.snap = f
	return nil
}

// replayWAL scans wal.log over the snapshot index, truncates a torn
// tail, and leaves the file open for appends.
func (sh *diskShard) replayWAL() error {
	path := filepath.Join(sh.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	if size < magicLen {
		// Fresh file, or a crash beat the magic write: (re)initialize.
		if err := initLog(f, walMagic); err != nil {
			f.Close()
			return err
		}
		if size > 0 {
			sh.tornBytes += size
		}
		sh.wal, sh.walSize = f, magicLen
		return nil
	}
	n, good, err := sh.scanRecords(f, path, walMagic, true)
	if err != nil {
		f.Close()
		return err
	}
	sh.recoveredWAL = n
	if good < size {
		// Torn tail: the crash interrupted the final append. Everything
		// acknowledged lies at or before good, so the tail is garbage by
		// construction — drop it and continue appending from there.
		sh.tornBytes += size - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	sh.wal, sh.walSize = f, good
	return nil
}

// scanRecords walks a record file, verifying magic and every record CRC,
// and folding states into the index (highest version per document wins,
// which makes replay idempotent across the checkpoint crash window).
// When tolerateTorn is set, a failure that only a half-written final
// append can explain — a record cut off by EOF, or a CRC mismatch on the
// very last record — ends the scan at the last good offset instead of
// failing; anything else is a *CorruptError.
func (sh *diskShard) scanRecords(f *os.File, path string, magic [magicLen]byte, tolerateTorn bool) (records int64, goodEnd int64, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, err
	}
	if size < magicLen {
		return 0, 0, &CorruptError{Path: path, Offset: 0}
	}
	var m [magicLen]byte
	if _, err := f.ReadAt(m[:], 0); err != nil {
		return 0, 0, err
	}
	if m != magic {
		return 0, 0, &CorruptError{Path: path, Offset: 0}
	}
	off := int64(magicLen)
	var header [headerLen]byte
	for off < size {
		if size-off < headerLen {
			if tolerateTorn {
				return records, off, nil
			}
			return 0, 0, &CorruptError{Path: path, Offset: off}
		}
		if _, err := f.ReadAt(header[:], off); err != nil {
			return 0, 0, err
		}
		plen := int64(uint32(header[0])<<24 | uint32(header[1])<<16 | uint32(header[2])<<8 | uint32(header[3]))
		end := off + headerLen + plen
		if plen > maxRecordBytes || end > size {
			// The declared payload overruns the file: a torn final append
			// when tolerated, corruption otherwise.
			if tolerateTorn {
				return records, off, nil
			}
			return 0, 0, &CorruptError{Path: path, Offset: off}
		}
		raw := make([]byte, headerLen+plen)
		if _, err := f.ReadAt(raw, off); err != nil {
			return 0, 0, err
		}
		rec, verr := verifyRecord(raw)
		if verr != nil {
			// A CRC failure on the final record can be the torn tail of a
			// crashed append (pages land out of order). Followed by more
			// data it cannot be: that is corruption, and truncating would
			// silently erase acknowledged saves after it.
			if tolerateTorn && end == size {
				return records, off, nil
			}
			return 0, 0, &CorruptError{Path: path, Offset: off}
		}
		records++
		loc := docLoc{inWAL: tolerateTorn, off: off, rlen: int32(headerLen + plen), version: rec.version}
		if prev, ok := sh.index[rec.docID]; !ok || rec.version >= prev.version {
			sh.index[rec.docID] = loc
		}
		off = end
	}
	return records, off, nil
}

// initLog truncates f and writes a fresh magic header.
func initLog(f *os.File, magic [magicLen]byte) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(magic[:], 0); err != nil {
		return err
	}
	if _, err := f.Seek(magicLen, io.SeekStart); err != nil {
		return err
	}
	return f.Sync()
}
