package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// shardDir returns the shard directory a document id maps to.
func shardDir(root, docID string) string {
	h := fnv.New32a()
	h.Write([]byte(docID))
	return filepath.Join(root, fmt.Sprintf("shard-%02d", h.Sum32()%NumShards))
}

func mustPut(t *testing.T, d *Disk, docID, content string, version int) {
	t.Helper()
	if err := d.Put(docID, content, version); err != nil {
		t.Fatalf("Put(%q): %v", docID, err)
	}
}

func wantDoc(t *testing.T, d *Disk, docID, content string, version int) {
	t.Helper()
	got, v, ok, err := d.Get(docID)
	if err != nil {
		t.Fatalf("Get(%q): %v", docID, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing", docID)
	}
	if got != content || v != version {
		t.Fatalf("Get(%q) = (%d bytes, v%d), want (%d bytes, v%d)", docID, len(got), v, len(content), version)
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mustPut(t, d, "doc-a", "ciphertext one", 1)
	mustPut(t, d, "doc-a", "ciphertext two", 2)
	mustPut(t, d, "doc-b", "", 0)
	wantDoc(t, d, "doc-a", "ciphertext two", 2)
	wantDoc(t, d, "doc-b", "", 0)
	if _, _, ok, _ := d.Get("doc-missing"); ok {
		t.Fatal("Get of unknown doc reported ok")
	}
	if has, _ := d.Has("doc-a"); !has {
		t.Fatal("Has(doc-a) = false")
	}
	if n := d.Docs(); n != 2 {
		t.Fatalf("Docs() = %d, want 2", n)
	}
}

// TestRecoverFreshDir covers the empty-WAL edge: opening a directory that
// has never held data recovers zero documents and no torn bytes.
func TestRecoverFreshDir(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := d.Recovery()
	if rec.Docs != 0 || rec.WALRecords != 0 || rec.SnapshotRecords != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh recovery = %+v, want zeroes", rec)
	}
	d.Close()
	// Second open sees 32 empty WALs (magic only): still zero docs.
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.Docs != 0 || rec.TornBytes != 0 {
		t.Fatalf("empty-WAL recovery = %+v, want zero docs and torn bytes", rec)
	}
}

func TestRecoverAfterReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, d, fmt.Sprintf("doc-%03d", i), strings.Repeat("x", i), i+1)
	}
	mustPut(t, d, "doc-000", "rewritten", 7)
	d.Close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Docs != 200 {
		t.Fatalf("recovered %d docs, want 200", rec.Docs)
	}
	if rec.WALRecords != 201 {
		t.Fatalf("replayed %d WAL records, want 201", rec.WALRecords)
	}
	wantDoc(t, d2, "doc-000", "rewritten", 7)
	wantDoc(t, d2, "doc-199", strings.Repeat("x", 199), 200)
}

// TestRecoverSnapshotNoWAL covers the snapshot-with-empty-WAL edge: after a
// checkpoint the WAL holds only its magic header and every read and every
// recovery must come from the snapshot.
func TestRecoverSnapshotNoWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mustPut(t, d, fmt.Sprintf("snap-%02d", i), fmt.Sprintf("content %d", i), i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint the shard WALs are truncated back to the magic.
	if fi, err := os.Stat(filepath.Join(shardDir(dir, "snap-00"), walName)); err != nil || fi.Size() != magicLen {
		t.Fatalf("WAL after checkpoint: size=%v err=%v, want %d bytes", fi.Size(), err, magicLen)
	}
	wantDoc(t, d, "snap-33", "content 33", 33)
	d.Close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Docs != 64 || rec.WALRecords != 0 || rec.SnapshotRecords != 64 {
		t.Fatalf("recovery = %+v, want 64 docs all from snapshots", rec)
	}
	wantDoc(t, d2, "snap-33", "content 33", 33)
}

// TestCheckpointThenMoreWrites exercises the full lifecycle: snapshot,
// further WAL appends over it, recovery merging both (WAL wins on version).
func TestCheckpointThenMoreWrites(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "life-a", "old a", 1)
	mustPut(t, d, "life-b", "old b", 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "life-a", "new a", 2) // supersedes the snapshot record
	mustPut(t, d, "life-c", "only wal", 1)
	d.Close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	wantDoc(t, d2, "life-a", "new a", 2)
	wantDoc(t, d2, "life-b", "old b", 1)
	wantDoc(t, d2, "life-c", "only wal", 1)
}

func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	content := strings.Repeat("c", 1024)
	for i := 0; i < 50; i++ {
		mustPut(t, d, "auto-doc", content, i)
	}
	// The WAL crossed 4096 bytes many times over; automatic checkpoints
	// must have kept it bounded.
	if fi, err := os.Stat(filepath.Join(shardDir(dir, "auto-doc"), walName)); err != nil || fi.Size() > 4096+2048 {
		t.Fatalf("WAL grew to %d bytes despite CheckpointBytes=4096 (err=%v)", fi.Size(), err)
	}
	wantDoc(t, d, "auto-doc", content, 49)
	d.Close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	wantDoc(t, d2, "auto-doc", content, 49)
}

// TestTornTailDiscarded covers the crash-mid-append edge: a final record
// cut off by EOF is discarded on recovery and every earlier record
// survives.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "torn-keep", "acknowledged", 3)
	d.Close()

	// Simulate the crash: append half a record to the same shard's WAL.
	walPath := filepath.Join(shardDir(dir, "torn-keep"), walName)
	full, err := appendRecord(nil, &record{op: opState, version: 9, docID: "torn-keep", content: "never acked"})
	if err != nil {
		t.Fatal(err)
	}
	torn := full[:len(full)-5]
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery with torn tail failed: %v", err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, len(torn))
	}
	wantDoc(t, d2, "torn-keep", "acknowledged", 3)
	// The torn bytes are gone from disk: further appends start clean.
	mustPut(t, d2, "torn-keep", "after recovery", 4)
	wantDoc(t, d2, "torn-keep", "after recovery", 4)
}

// TestTornFinalCRC: a complete-length final record with a bad CRC is also a
// legal torn tail (pages can land out of order), so recovery discards it.
func TestTornFinalCRC(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "crc-keep", "good", 1)
	d.Close()

	walPath := filepath.Join(shardDir(dir, "crc-keep"), walName)
	bad, err := appendRecord(nil, &record{op: opState, version: 2, docID: "crc-keep", content: "interrupted"})
	if err != nil {
		t.Fatal(err)
	}
	bad[len(bad)-1] ^= 0xFF // corrupt the payload so the CRC fails
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bad); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery with CRC-failed final record failed: %v", err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.TornBytes != int64(len(bad)) {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, len(bad))
	}
	wantDoc(t, d2, "crc-keep", "good", 1)
}

// TestMidLogCorruptionFailsLoudly covers the must-not-silently-truncate
// edge: a CRC failure on a record that is NOT the final one cannot be a
// torn tail — truncating there would erase acknowledged saves after it —
// so Open must refuse with a *CorruptError naming the spot.
func TestMidLogCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two records in the same shard WAL: corrupt the first.
	mustPut(t, d, "mid-doc", "first record", 1)
	mustPut(t, d, "mid-doc", "second record", 2)
	d.Close()

	walPath := filepath.Join(shardDir(dir, "mid-doc"), walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[magicLen+headerLen+3] ^= 0xFF // flip a byte inside the first payload
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open with mid-log corruption = %v, want *CorruptError", err)
	}
	if ce.Path != walPath || ce.Offset != magicLen {
		t.Fatalf("CorruptError = %+v, want path %s offset %d", ce, walPath, magicLen)
	}
	if strings.Contains(ce.Error(), "first record") {
		t.Fatal("CorruptError leaked record content")
	}
}

// TestSnapshotCorruptionFailsLoudly: snapshots are published atomically,
// so even a bad *final* record inside one is corruption, never torn.
func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "snapcorrupt", "state", 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	snapPath := filepath.Join(shardDir(dir, "snapcorrupt"), snapName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open with corrupt snapshot = %v, want *CorruptError", err)
	}
	if ce.Path != snapPath {
		t.Fatalf("CorruptError path = %s, want %s", ce.Path, snapPath)
	}
}

// TestBadMagicFailsLoudly: a WAL whose header is not the magic is not a
// torn tail either.
func TestBadMagicFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "magic-doc", "x", 1)
	d.Close()

	walPath := filepath.Join(shardDir(dir, "magic-doc"), walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 'X'
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := Open(dir, Options{}); !errors.As(err, &ce) {
		t.Fatalf("Open with bad magic = %v, want *CorruptError", err)
	}
}

// TestShortWALReinitialized: a crash before the magic write leaves a
// sub-header file; recovery counts it torn and reinitializes.
func TestShortWALReinitialized(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	walPath := filepath.Join(dir, "shard-00", walName)
	if err := os.WriteFile(walPath, []byte("PVW"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with short WAL: %v", err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.TornBytes != 3 {
		t.Fatalf("TornBytes = %d, want 3", rec.TornBytes)
	}
}

func TestSyncNoneFlush(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustPut(t, d, fmt.Sprintf("bulk-%02d", i), "bulk content", 1)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovery(); rec.Docs != 100 {
		t.Fatalf("recovered %d docs after SyncNone+Flush, want 100", rec.Docs)
	}
}

func TestPutAfterClose(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if err := d.Put("doc", "x", 1); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

// TestConcurrentPuts hammers one store from many goroutines (run under
// -race in CI): group commit must keep every acknowledged write durable
// and the per-doc index consistent.
func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{CheckpointBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	const writers, writes = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				id := fmt.Sprintf("conc-%d-%d", w, i%5)
				if err := d.Put(id, fmt.Sprintf("w%d i%d %s", w, i, strings.Repeat("z", 200)), i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after concurrent writes: %v", err)
	}
	defer d2.Close()
	if got, want := d2.Docs(), int64(writers*5); got != want {
		t.Fatalf("Docs() = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		for k := 0; k < 5; k++ {
			if _, _, ok, err := d2.Get(fmt.Sprintf("conc-%d-%d", w, k)); !ok || err != nil {
				t.Fatalf("Get(conc-%d-%d) after recovery: ok=%v err=%v", w, k, ok, err)
			}
		}
	}
}
