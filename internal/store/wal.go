package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Bytes on disk. Both files in a shard directory — the append-only WAL
// and the snapshot it periodically collapses into — carry the same
// record stream after an 8-byte magic header:
//
//	file    = magic(8) record*
//	record  = length(4, BE) crc(4, BE) payload
//	payload = op(1) version(8, BE) docIDLen(2, BE) docID content
//
// length counts payload bytes only; crc is CRC-32C (Castagnoli) over the
// payload. The two magics differ so a misplaced rename can never make a
// snapshot replay as a WAL or vice versa. A record is self-contained:
// replay is "decode payload, keep the highest version per document", so
// the same decoder drives snapshot loads, WAL replay, and point reads.
const (
	magicLen  = 8
	headerLen = 8 // length(4) + crc(4)

	// maxRecordBytes bounds one record far above any legal document (the
	// gdocs limit is 500 KB plus ciphertext expansion): a declared length
	// beyond it is treated like any other integrity failure.
	maxRecordBytes = 16 << 20

	// opState is the only record op today: "this document now has this
	// version and content". The byte exists so future ops (deletes,
	// delta-encoded records) extend the format instead of breaking it.
	opState = 1
)

var (
	walMagic  = [magicLen]byte{'P', 'V', 'W', 'A', 'L', 0, 1, '\n'}
	snapMagic = [magicLen]byte{'P', 'V', 'S', 'N', 'A', 'P', 1, '\n'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// record is one durable document state. It is the only shape that ever
// reaches the WAL or snapshot files, which is what makes the //taint:clean
// contract below checkable: every write into the persisted content field
// is a declared ciphertext-only boundary.
type record struct {
	op      byte
	version uint64
	docID   string
	//taint:clean ciphertext-only stored content: the untrusted server's WAL never holds plaintext
	content string
}

// encodedLen returns the full on-disk size of the record, header included.
func (r *record) encodedLen() int {
	return headerLen + 1 + 8 + 2 + len(r.docID) + len(r.content)
}

// appendRecord serializes r (header + payload) onto buf.
func appendRecord(buf []byte, r *record) ([]byte, error) {
	if len(r.docID) > 0xFFFF {
		return nil, fmt.Errorf("store: document id too long (%d bytes)", len(r.docID))
	}
	plen := 1 + 8 + 2 + len(r.docID) + len(r.content)
	if plen > maxRecordBytes {
		return nil, fmt.Errorf("store: record too large (%d bytes)", plen)
	}
	start := len(buf)
	buf = append(buf, make([]byte, headerLen)...)
	buf = append(buf, r.op)
	buf = binary.BigEndian.AppendUint64(buf, r.version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.docID)))
	buf = append(buf, r.docID...)
	buf = append(buf, r.content...)
	payload := buf[start+headerLen:]
	binary.BigEndian.PutUint32(buf[start:], uint32(plen))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// decodePayload parses a CRC-verified payload back into a record.
func decodePayload(payload []byte) (record, error) {
	if len(payload) < 1+8+2 {
		return record{}, fmt.Errorf("store: short record payload (%d bytes)", len(payload))
	}
	r := record{op: payload[0], version: binary.BigEndian.Uint64(payload[1:9])}
	idLen := int(binary.BigEndian.Uint16(payload[9:11]))
	if len(payload) < 11+idLen {
		return record{}, fmt.Errorf("store: record id overruns payload (%d of %d bytes)", 11+idLen, len(payload))
	}
	r.docID = string(payload[11 : 11+idLen])
	r.content = string(payload[11+idLen:])
	return r, nil
}

// verifyRecord checks a full on-disk record (header + payload) and returns
// the decoded payload. The caller has already bounds-checked the slice.
func verifyRecord(raw []byte) (record, error) {
	plen := int(binary.BigEndian.Uint32(raw[:4]))
	if plen != len(raw)-headerLen {
		return record{}, fmt.Errorf("store: record length %d does not match read of %d", plen, len(raw)-headerLen)
	}
	payload := raw[headerLen:]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(raw[4:8]) {
		return record{}, errBadCRC
	}
	return decodePayload(payload)
}
