package store

import (
	"bufio"
	"os"
	"path/filepath"
	"time"
)

// Snapshot + truncation protocol. A checkpoint collapses a shard's WAL
// into a fresh snapshot and empties the log, bounding both recovery time
// and disk growth:
//
//  1. Write snap.tmp: the snapshot magic, then every indexed document's
//     latest record, copied verbatim from wherever it currently lives
//     (old snapshot or WAL) — the record format is shared, so no
//     re-encoding happens and CRCs carry over untouched.
//  2. fsync snap.tmp, rename it over snap.db, fsync the directory. The
//     rename is the commit point: before it the old snapshot + full WAL
//     are authoritative; after it the new snapshot alone is.
//  3. Truncate the WAL back to its magic header and fsync it.
//
// A crash between 2 and 3 leaves the full WAL alongside the new
// snapshot; replay folds each record in with a version comparison
// (highest wins), so re-applying the already-snapshotted records is
// harmless. The shard lock is held throughout — a checkpoint briefly
// blocks that shard's writers (the other 31 shards are untouched).

// checkpointLocked snapshots the shard and truncates its WAL. Callers
// hold sh.mu. On failure the old snapshot + WAL remain authoritative.
func (sh *diskShard) checkpointLocked() error {
	if sh.wal == nil {
		return nil
	}
	start := time.Now()
	tmpPath := filepath.Join(sh.dir, snapName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := w.Write(snapMagic[:]); err != nil {
		tmp.Close()
		return err
	}
	newIndex := make(map[string]docLoc, len(sh.index))
	off := int64(magicLen)
	for docID, loc := range sh.index {
		src := sh.snap
		if loc.inWAL {
			src = sh.wal
		}
		raw := make([]byte, loc.rlen)
		if _, err := src.ReadAt(raw, loc.off); err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(raw); err != nil {
			tmp.Close()
			return err
		}
		newIndex[docID] = docLoc{inWAL: false, off: off, rlen: loc.rlen, version: loc.version}
		off += int64(loc.rlen)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	finalPath := filepath.Join(sh.dir, snapName)
	if err := os.Rename(tmpPath, finalPath); err != nil {
		return err
	}
	if err := syncDir(sh.dir); err != nil {
		return err
	}
	// Commit point passed: swap the read handle, then empty the WAL.
	snap, err := os.Open(finalPath)
	if err != nil {
		return err
	}
	if sh.snap != nil {
		sh.snap.Close()
	}
	sh.snap = snap
	sh.index = newIndex
	if err := initLog(sh.wal, walMagic); err != nil {
		return err
	}
	metricWALBytes.Add(float64(magicLen - sh.walSize))
	sh.walSize = magicLen
	// Everything appended so far is durable via the snapshot.
	sh.syncedSeq = sh.appendSeq
	metricCheckpoints.Inc()
	metricCheckpointSeconds.Observe(time.Since(start).Seconds())
	sh.cond.Broadcast()
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
