package delta

import "fmt"

// Transform rewrites delta a so that it applies *after* delta b, where a
// and b were produced concurrently against the same base document of
// length docLen: the inclusion transformation of operational
// transformation, specialized to the retain/insert/delete delta language.
//
//	Apply(Apply(doc, b), Transform(a, b, len(doc), aFirst))
//
// yields the merge of both edits. Characters deleted by both sides are
// deleted once; text inserted by b is retained by the transformed a; when
// both sides insert at the same position, aFirst chooses whose text comes
// first, and flipping it on the mirrored call makes the two merge orders
// converge (the TP1 property, verified in tests).
//
// This is the machinery a SPORC-style collaborative editor builds on; here
// it powers the gdocs client's conflict recovery (Sync) and the mediator's
// OT-first save pipeline.
//
// The result is returned in burst-canonical form (Coalesce). Canonical
// form matters for determinism: "replace a range" has two equivalent
// spellings — insert-then-delete and delete-then-insert — and the two
// transform differently when a concurrent insert lands inside the
// replaced range. Keeping every delta the algebra emits in one canonical
// spelling makes independently-computed merges of the same edits agree
// byte for byte.
func Transform(a, b Delta, docLen int, aFirst bool) (Delta, error) {
	if err := a.Validate(docLen); err != nil {
		return nil, fmt.Errorf("delta: transform: a: %w", err)
	}
	if err := b.Validate(docLen); err != nil {
		return nil, fmt.Errorf("delta: transform: b: %w", err)
	}

	sa := newOpStream(a, docLen)
	sb := newOpStream(b, docLen)
	var out Delta
	for {
		aOp, aOk := sa.peek()
		bOp, bOk := sb.peek()
		if !aOk && !bOk {
			break
		}

		// Insertions consume no base characters, so order them first.
		if aOk && aOp.Kind == Insert && (aFirst || !bOk || bOp.Kind != Insert) {
			out = append(out, InsertOp(aOp.Str))
			sa.next()
			continue
		}
		if bOk && bOp.Kind == Insert {
			// b inserted text the transformed a must skip over.
			out = append(out, RetainOp(len(bOp.Str)))
			sb.next()
			continue
		}
		if aOk && aOp.Kind == Insert {
			out = append(out, InsertOp(aOp.Str))
			sa.next()
			continue
		}

		// Both sides now face retain/delete over the same base character
		// range (the streams pad implicit trailing retains).
		if !aOk || !bOk {
			break
		}
		n := aOp.N
		if bOp.N < n {
			n = bOp.N
		}
		switch {
		case aOp.Kind == Retain && bOp.Kind == Retain:
			out = append(out, RetainOp(n))
		case aOp.Kind == Retain && bOp.Kind == Delete:
			// b already deleted these characters: nothing to retain.
		case aOp.Kind == Delete && bOp.Kind == Retain:
			out = append(out, DeleteOp(n))
		case aOp.Kind == Delete && bOp.Kind == Delete:
			// Both deleted: the characters are already gone.
		}
		sa.consume(n)
		sb.consume(n)
	}
	return out.Coalesce(), nil
}

// Merge applies two concurrent deltas to doc, b first, then a transformed
// over b: the convenience form of Transform used by conflict recovery.
func Merge(doc string, a, b Delta, aFirst bool) (string, error) {
	afterB, err := b.Apply(doc)
	if err != nil {
		return "", err
	}
	at, err := Transform(a, b, len(doc), aFirst)
	if err != nil {
		return "", err
	}
	return at.Apply(afterB)
}

// opStream iterates a delta's operations with partial consumption of
// retain/delete counts, padding an implicit trailing retain so both
// streams of a transform cover the whole base document.
type opStream struct {
	ops  Delta
	idx  int
	used int // consumed count of the current retain/delete op
}

func newOpStream(d Delta, docLen int) *opStream {
	padded := make(Delta, 0, len(d)+1)
	padded = append(padded, d...)
	if rest := docLen - d.BaseLen(); rest > 0 {
		padded = append(padded, RetainOp(rest))
	}
	return &opStream{ops: padded}
}

// peek returns the current (partially consumed) operation.
func (s *opStream) peek() (Op, bool) {
	for s.idx < len(s.ops) {
		op := s.ops[s.idx]
		switch op.Kind {
		case Insert:
			if op.Str == "" {
				s.idx++
				continue
			}
			return op, true
		case Retain, Delete:
			if op.N-s.used <= 0 {
				s.idx++
				s.used = 0
				continue
			}
			return Op{Kind: op.Kind, N: op.N - s.used}, true
		default:
			s.idx++
		}
	}
	return Op{}, false
}

// next advances wholly past the current operation.
func (s *opStream) next() {
	s.idx++
	s.used = 0
}

// consume advances n base characters into the current retain/delete op.
func (s *opStream) consume(n int) {
	s.used += n
	if op := s.ops[s.idx]; op.Kind != Insert && s.used >= op.N {
		s.idx++
		s.used = 0
	}
}
