package delta

import "fmt"

// Compose collapses two *sequential* deltas into one: a applies to a base
// document of length docLen, b applies to the result of a. The composed
// delta applies to the original base and
//
//	Compose(a, b, len(doc)).Apply(doc) == b.Apply(a.Apply(doc))
//
// for every doc of that length. Where Transform reconciles *concurrent*
// edits, Compose chains *consecutive* ones — it is what lets a save queue
// coalesce a run of edits into a single wire delta without re-diffing the
// whole document.
//
// Like Transform, the result is returned in burst-canonical form
// (Coalesce), matching the delete-before-insert spelling diff.Diff emits,
// so composed queue entries transform exactly like a fresh diff of the
// same net edit would.
func Compose(a, b Delta, docLen int) (Delta, error) {
	if err := a.Validate(docLen); err != nil {
		return nil, fmt.Errorf("delta: compose: a: %w", err)
	}
	midLen := docLen - a.DeleteLen() + a.InsertLen()
	if err := b.Validate(midLen); err != nil {
		return nil, fmt.Errorf("delta: compose: b: %w", err)
	}

	sa := newSeqStream(a, docLen)
	sb := newSeqStream(b, midLen)
	var out Delta
	for {
		// b's inserts are new text in the final document: they pass
		// through regardless of what a did.
		if bOp, ok := sb.peek(); ok && bOp.Kind == Insert {
			out = append(out, InsertOp(bOp.Str))
			sb.advance(len(bOp.Str))
			continue
		}
		// a's deletes removed base characters b never saw: they pass
		// through on the base side.
		aOp, aOk := sa.peek()
		if aOk && aOp.Kind == Delete {
			out = append(out, DeleteOp(aOp.N))
			sa.advance(aOp.N)
			continue
		}
		bOp, bOk := sb.peek()
		if !aOk && !bOk {
			break
		}
		if !aOk || !bOk {
			// Unreachable: both streams pad to their document length, and
			// a's output length equals b's base length by construction.
			return nil, fmt.Errorf("delta: compose: stream length mismatch")
		}

		// a's head produces output characters (Retain or Insert); b's head
		// consumes them (Retain or Delete). Walk the overlap.
		an := aOp.N
		if aOp.Kind == Insert {
			an = len(aOp.Str)
		}
		n := an
		if bOp.N < n {
			n = bOp.N
		}
		switch {
		case aOp.Kind == Retain && bOp.Kind == Retain:
			out = append(out, RetainOp(n))
		case aOp.Kind == Retain && bOp.Kind == Delete:
			out = append(out, DeleteOp(n))
		case aOp.Kind == Insert && bOp.Kind == Retain:
			out = append(out, InsertOp(aOp.Str[:n]))
		case aOp.Kind == Insert && bOp.Kind == Delete:
			// Text a inserted and b deleted never existed for the base.
		}
		sa.advance(n)
		sb.advance(n)
	}
	return out.Coalesce(), nil
}

// seqStream iterates a delta with partial consumption of every op kind —
// unlike opStream it can split an Insert's payload, which composition
// needs when b's retain boundary lands mid-insert. It pads an implicit
// trailing retain to docLen so the composed walk covers both documents
// end to end.
type seqStream struct {
	ops  Delta
	idx  int
	used int // consumed chars of the current op
}

func newSeqStream(d Delta, docLen int) *seqStream {
	padded := make(Delta, 0, len(d)+1)
	padded = append(padded, d...)
	if rest := docLen - d.BaseLen(); rest > 0 {
		padded = append(padded, RetainOp(rest))
	}
	return &seqStream{ops: padded}
}

// peek returns the unconsumed remainder of the current operation.
func (s *seqStream) peek() (Op, bool) {
	for s.idx < len(s.ops) {
		op := s.ops[s.idx]
		switch op.Kind {
		case Insert:
			if len(op.Str)-s.used <= 0 {
				s.idx++
				s.used = 0
				continue
			}
			return Op{Kind: Insert, Str: op.Str[s.used:]}, true
		case Retain, Delete:
			if op.N-s.used <= 0 {
				s.idx++
				s.used = 0
				continue
			}
			return Op{Kind: op.Kind, N: op.N - s.used}, true
		default:
			s.idx++
		}
	}
	return Op{}, false
}

// advance consumes n characters of the current operation.
func (s *seqStream) advance(n int) {
	s.used += n
	op := s.ops[s.idx]
	size := op.N
	if op.Kind == Insert {
		size = len(op.Str)
	}
	if s.used >= size {
		s.idx++
		s.used = 0
	}
}
