// Package delta implements the incremental-update language Google
// Documents used in 2011 (Huang & Evans §IV-A). A delta is a sequence of
// operations, separated by tabs, applied left-to-right with an imaginary
// cursor that starts at position 0:
//
//	=num  move the cursor forward num characters (retain)
//	+str  insert str at the cursor, cursor advances past the insertion
//	-num  delete num characters starting at the cursor
//
// Content after the last operation is implicitly retained. The paper's
// examples: "=2\t-5" turns "abcdefg" into "ab"; "=2\t-3\t+uv\t=2\t+w"
// turns "abcdefg" into "abuvfgw".
//
// Documents are treated as byte strings: the paper's encryption packs
// 8-bit characters into cipher blocks, and the 2011 service's delta counts
// were character positions in the same sense.
//
// Insert payloads escape tab as `\t` and backslash as `\\` so that payload
// bytes can never be confused with the operation separator.
package delta

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// OpKind identifies a delta operation.
type OpKind int

// Operation kinds. Start at 1 so the zero Op is invalid rather than a
// silent retain.
const (
	Retain OpKind = iota + 1 // =num
	Insert                   // +str
	Delete                   // -num
)

// String returns the operation kind's protocol sigil.
func (k OpKind) String() string {
	switch k {
	case Retain:
		return "="
	case Insert:
		return "+"
	case Delete:
		return "-"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is a single delta operation.
type Op struct {
	Kind OpKind
	N    int    // count for Retain and Delete
	Str  string // payload for Insert
}

// RetainOp constructs a retain of n characters.
func RetainOp(n int) Op { return Op{Kind: Retain, N: n} }

// InsertOp constructs an insertion of s.
func InsertOp(s string) Op { return Op{Kind: Insert, Str: s} }

// DeleteOp constructs a deletion of n characters.
func DeleteOp(n int) Op { return Op{Kind: Delete, N: n} }

// Delta is an ordered sequence of operations.
type Delta []Op

// Parse errors.
var (
	ErrSyntax = errors.New("delta: syntax error")
	ErrRange  = errors.New("delta: operation exceeds document bounds")
)

func escapePayload(s string) string {
	if !strings.ContainsAny(s, "\\\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapePayload(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("%w: dangling escape", ErrSyntax)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("%w: unknown escape at offset %d", ErrSyntax, i)
		}
	}
	return b.String(), nil
}

// Parse decodes the tab-separated wire form into a Delta. The empty string
// parses to an empty (no-op) delta.
func Parse(s string) (Delta, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "\t")
	d := make(Delta, 0, len(parts))
	// Parse errors carry op index and length only: a malformed wire string
	// can hold insert payloads, and payload bytes must never ride an error
	// out of the envelope.
	for i, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("%w: empty operation (op %d)", ErrSyntax, i)
		}
		switch part[0] {
		case '=', '-':
			n, err := strconv.Atoi(part[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: bad count (op %d, %d bytes)", ErrSyntax, i, len(part))
			}
			if n < 0 {
				return nil, fmt.Errorf("%w: negative count (op %d)", ErrSyntax, i)
			}
			kind := Retain
			if part[0] == '-' {
				kind = Delete
			}
			d = append(d, Op{Kind: kind, N: n})
		case '+':
			payload, err := unescapePayload(part[1:])
			if err != nil {
				return nil, err
			}
			d = append(d, Op{Kind: Insert, Str: payload})
		default:
			return nil, fmt.Errorf("%w: unknown operation (op %d, %d bytes)", ErrSyntax, i, len(part))
		}
	}
	return d, nil
}

// String encodes the delta in its tab-separated wire form.
func (d Delta) String() string {
	var b strings.Builder
	for i, op := range d {
		if i > 0 {
			b.WriteByte('\t')
		}
		switch op.Kind {
		case Retain:
			b.WriteByte('=')
			b.WriteString(strconv.Itoa(op.N))
		case Insert:
			b.WriteByte('+')
			b.WriteString(escapePayload(op.Str))
		case Delete:
			b.WriteByte('-')
			b.WriteString(strconv.Itoa(op.N))
		}
	}
	return b.String()
}

// Apply transforms doc by the delta, returning the new document. It fails
// with ErrRange if a retain or delete runs past the end of the document.
func (d Delta) Apply(doc string) (string, error) {
	var b strings.Builder
	b.Grow(len(doc) + d.InsertLen())
	cursor := 0
	for i, op := range d {
		switch op.Kind {
		case Retain:
			if cursor+op.N > len(doc) {
				return "", fmt.Errorf("%w: retain %d at cursor %d, document length %d", ErrRange, op.N, cursor, len(doc))
			}
			b.WriteString(doc[cursor : cursor+op.N])
			cursor += op.N
		case Insert:
			b.WriteString(op.Str)
		case Delete:
			if cursor+op.N > len(doc) {
				return "", fmt.Errorf("%w: delete %d at cursor %d, document length %d", ErrRange, op.N, cursor, len(doc))
			}
			cursor += op.N
		default:
			return "", fmt.Errorf("%w: invalid op %d at index %d", ErrSyntax, op.Kind, i)
		}
	}
	b.WriteString(doc[cursor:])
	return b.String(), nil
}

// BaseLen returns the number of source-document characters the delta
// consumes (retains plus deletes). Apply requires BaseLen() <= len(doc).
func (d Delta) BaseLen() int {
	n := 0
	for _, op := range d {
		if op.Kind == Retain || op.Kind == Delete {
			n += op.N
		}
	}
	return n
}

// InsertLen returns the total number of inserted characters.
func (d Delta) InsertLen() int {
	n := 0
	for _, op := range d {
		if op.Kind == Insert {
			n += len(op.Str)
		}
	}
	return n
}

// DeleteLen returns the total number of deleted characters.
func (d Delta) DeleteLen() int {
	n := 0
	for _, op := range d {
		if op.Kind == Delete {
			n += op.N
		}
	}
	return n
}

// IsNoop reports whether the delta leaves every document unchanged.
func (d Delta) IsNoop() bool {
	for _, op := range d {
		switch op.Kind {
		case Insert:
			if len(op.Str) > 0 {
				return false
			}
		case Delete:
			if op.N > 0 {
				return false
			}
		}
	}
	return true
}

// Normalize returns an equivalent delta with zero-length operations
// removed, adjacent operations of the same kind merged, and trailing
// retains dropped (trailing content is implicitly retained). Normalize is
// the first line of defense against the covert channel of §VI-B, where a
// malicious client encodes information in redundant op sequences; full
// canonicalization (re-deriving the delta from document states) lives in
// the covert package.
func (d Delta) Normalize() Delta {
	out := make(Delta, 0, len(d))
	for _, op := range d {
		switch op.Kind {
		case Retain, Delete:
			if op.N == 0 {
				continue
			}
		case Insert:
			if op.Str == "" {
				continue
			}
		default:
			continue
		}
		if n := len(out); n > 0 && out[n-1].Kind == op.Kind {
			if op.Kind == Insert {
				out[n-1].Str += op.Str
			} else {
				out[n-1].N += op.N
			}
			continue
		}
		out = append(out, op)
	}
	for len(out) > 0 && out[len(out)-1].Kind == Retain {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Coalesce returns an equivalent delta in burst-canonical form: the
// Normalize guarantees (no zero-length ops, no adjacent same-kind ops, no
// trailing retain) plus one more — within every maximal run of inserts and
// deletes uninterrupted by a retain, the deletes are folded into a single
// delete emitted before a single merged insert.
//
// Folding is sound because an insert never consumes source characters:
// every inserted string in a run lands before whatever source text
// survives the run, and the deletes consume source characters from the
// run's cursor position regardless of how inserts are interleaved. The
// canonical form means a burst of k single-character edits at one position
// reaches transform_delta as one delete plus one insert, so the block
// engine performs one splice — and emits one small ciphertext delta —
// instead of k.
//
// Coalesce is idempotent and, like Normalize, preserves Apply on every
// document the input applies to.
func (d Delta) Coalesce() Delta {
	out := make(Delta, 0, len(d))
	pendingDel := 0
	var pendingIns []string
	insLen := 0
	flush := func() {
		if pendingDel > 0 {
			out = append(out, Op{Kind: Delete, N: pendingDel})
			pendingDel = 0
		}
		if insLen > 0 {
			var b strings.Builder
			b.Grow(insLen)
			for _, s := range pendingIns {
				b.WriteString(s)
			}
			out = append(out, Op{Kind: Insert, Str: b.String()})
		}
		pendingIns = pendingIns[:0]
		insLen = 0
	}
	for _, op := range d {
		switch op.Kind {
		case Retain:
			if op.N == 0 {
				continue
			}
			flush()
			if n := len(out); n > 0 && out[n-1].Kind == Retain {
				out[n-1].N += op.N
			} else {
				out = append(out, op)
			}
		case Delete:
			pendingDel += op.N
		case Insert:
			if op.Str != "" {
				pendingIns = append(pendingIns, op.Str)
				insLen += len(op.Str)
			}
		}
	}
	flush()
	for len(out) > 0 && out[len(out)-1].Kind == Retain {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Validate checks that the delta can be applied to a document of length
// docLen without running out of bounds.
func (d Delta) Validate(docLen int) error {
	cursor := 0
	for _, op := range d {
		switch op.Kind {
		case Retain, Delete:
			if op.N < 0 {
				return fmt.Errorf("%w: negative count", ErrSyntax)
			}
			cursor += op.N
			if cursor > docLen {
				return fmt.Errorf("%w: cursor %d past document length %d", ErrRange, cursor, docLen)
			}
		case Insert:
			// Inserts do not consume source characters.
		default:
			return fmt.Errorf("%w: invalid op kind %d", ErrSyntax, op.Kind)
		}
	}
	return nil
}
