package delta

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExamples(t *testing.T) {
	// Both worked examples from §IV-A of the paper.
	tests := []struct {
		name string
		wire string
		doc  string
		want string
	}{
		{"truncate", "=2\t-5", "abcdefg", "ab"},
		{"mixed", "=2\t-3\t+uv\t=2\t+w", "abcdefg", "abuvfgw"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(tc.wire)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.wire, err)
			}
			got, err := d.Apply(tc.doc)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if got != tc.want {
				t.Errorf("Apply(%q, %q) = %q, want %q", tc.wire, tc.doc, got, tc.want)
			}
		})
	}
}

func TestParseSerializeRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := func() Delta {
		n := rng.Intn(8)
		d := make(Delta, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				d = append(d, RetainOp(rng.Intn(100)))
			case 1:
				// Payloads include tabs, backslashes, unicode bytes.
				chars := []string{"a", "\t", "\\", "é", "=", "+", "-", " ", "\n"}
				var b strings.Builder
				for j := rng.Intn(6); j >= 0; j-- {
					b.WriteString(chars[rng.Intn(len(chars))])
				}
				d = append(d, InsertOp(b.String()))
			default:
				d = append(d, DeleteOp(rng.Intn(100)))
			}
		}
		return d
	}
	for trial := 0; trial < 500; trial++ {
		d := gen()
		got, err := Parse(d.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", d.String(), err)
		}
		if got.String() != d.String() {
			t.Fatalf("round trip %q -> %q", d.String(), got.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"=",        // missing count
		"-",        // missing count
		"=x",       // non-numeric
		"=-3",      // negative
		"-1\t",     // trailing empty op
		"\t=1",     // leading empty op
		"*5",       // unknown sigil
		"+a\\q",    // unknown escape
		"+ab\\",    // dangling escape
		"=1\t\t=2", // empty middle op
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", s, err)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	d, err := Parse("")
	if err != nil {
		t.Fatalf("Parse(\"\"): %v", err)
	}
	if len(d) != 0 || !d.IsNoop() {
		t.Errorf("empty parse = %v", d)
	}
	got, err := d.Apply("unchanged")
	if err != nil || got != "unchanged" {
		t.Errorf("no-op apply = (%q, %v)", got, err)
	}
}

func TestApplyRangeErrors(t *testing.T) {
	for _, wire := range []string{"=8", "-8", "=4\t-4", "=4\t+x\t=4"} {
		d, err := Parse(wire)
		if err != nil {
			t.Fatalf("Parse(%q): %v", wire, err)
		}
		if _, err := d.Apply("1234567"); !errors.Is(err, ErrRange) {
			t.Errorf("Apply(%q) on 7-char doc = %v, want ErrRange", wire, err)
		}
		if err := d.Validate(7); !errors.Is(err, ErrRange) {
			t.Errorf("Validate(%q, 7) = %v, want ErrRange", wire, err)
		}
		if err := d.Validate(8); err != nil {
			t.Errorf("Validate(%q, 8) = %v, want nil", wire, err)
		}
	}
}

func TestApplyInvalidOp(t *testing.T) {
	d := Delta{{Kind: 0, N: 1}}
	if _, err := d.Apply("abc"); !errors.Is(err, ErrSyntax) {
		t.Errorf("Apply with zero op = %v, want ErrSyntax", err)
	}
	if err := d.Validate(3); !errors.Is(err, ErrSyntax) {
		t.Errorf("Validate with zero op = %v, want ErrSyntax", err)
	}
}

func TestLengths(t *testing.T) {
	d, err := Parse("=3\t+hello\t-2\t=1\t+x")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := d.BaseLen(); got != 6 {
		t.Errorf("BaseLen = %d, want 6", got)
	}
	if got := d.InsertLen(); got != 6 {
		t.Errorf("InsertLen = %d, want 6", got)
	}
	if got := d.DeleteLen(); got != 2 {
		t.Errorf("DeleteLen = %d, want 2", got)
	}
}

func TestNormalizeMergesAndDrops(t *testing.T) {
	d := Delta{
		RetainOp(2), RetainOp(0), RetainOp(3),
		InsertOp("ab"), InsertOp(""), InsertOp("cd"),
		DeleteOp(1), DeleteOp(2),
		RetainOp(4), RetainOp(1), // trailing retains dropped
	}
	got := d.Normalize()
	want := Delta{RetainOp(5), InsertOp("abcd"), DeleteOp(3)}
	if got.String() != want.String() {
		t.Errorf("Normalize = %q, want %q", got.String(), want.String())
	}
}

func TestNormalizeCollapsesCovertPadding(t *testing.T) {
	// The §VI-B covert example: Ord(q) single-char inserts, Ord(q)
	// deletes, then the real insert. Normalize merges the runs so the op
	// *count* no longer encodes Ord(q); full semantic canonicalization is
	// exercised in the covert package.
	var d Delta
	const ord = 17
	for i := 0; i < ord; i++ {
		d = append(d, InsertOp("z"))
	}
	for i := 0; i < ord; i++ {
		d = append(d, DeleteOp(1))
	}
	d = append(d, InsertOp("q"))
	got := d.Normalize()
	if len(got) != 3 {
		t.Errorf("Normalize left %d ops (%q), want 3", len(got), got.String())
	}
}

func TestNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := strings.Repeat("abcdefghij", 20)
	for trial := 0; trial < 300; trial++ {
		var d Delta
		cursor := 0
		for len(d) < 10 && cursor < len(doc) {
			switch rng.Intn(3) {
			case 0:
				n := rng.Intn(len(doc) - cursor + 1)
				d = append(d, RetainOp(n))
				cursor += n
			case 1:
				d = append(d, InsertOp(strings.Repeat("x", rng.Intn(5))))
			default:
				n := rng.Intn(len(doc) - cursor + 1)
				d = append(d, DeleteOp(n))
				cursor += n
			}
		}
		want, err := d.Apply(doc)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		got, err := d.Normalize().Apply(doc)
		if err != nil {
			t.Fatalf("Apply normalized: %v", err)
		}
		if got != want {
			t.Fatalf("Normalize changed semantics:\n delta %q\n norm  %q", d.String(), d.Normalize().String())
		}
	}
}

func TestNormalizeAllNoopBecomesNil(t *testing.T) {
	d := Delta{RetainOp(5), InsertOp(""), DeleteOp(0)}
	if got := d.Normalize(); got != nil {
		t.Errorf("Normalize = %v, want nil", got)
	}
}

func TestIsNoop(t *testing.T) {
	cases := []struct {
		d    Delta
		want bool
	}{
		{nil, true},
		{Delta{RetainOp(10)}, true},
		{Delta{InsertOp("")}, true},
		{Delta{DeleteOp(0)}, true},
		{Delta{InsertOp("x")}, false},
		{Delta{DeleteOp(1)}, false},
	}
	for i, tc := range cases {
		if got := tc.d.IsNoop(); got != tc.want {
			t.Errorf("case %d: IsNoop = %v, want %v", i, got, tc.want)
		}
	}
}

func TestEscapingInsertPayloads(t *testing.T) {
	d := Delta{InsertOp("a\tb\\c")}
	wire := d.String()
	if strings.Count(wire, "\t") != 0 {
		t.Errorf("wire form %q leaks a raw tab", wire)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse(%q): %v", wire, err)
	}
	if got[0].Str != "a\tb\\c" {
		t.Errorf("payload round trip = %q", got[0].Str)
	}
}

func TestOpKindString(t *testing.T) {
	if Retain.String() != "=" || Insert.String() != "+" || Delete.String() != "-" {
		t.Error("OpKind sigils wrong")
	}
	if OpKind(0).String() != "OpKind(0)" {
		t.Errorf("zero kind = %q", OpKind(0).String())
	}
}

func TestApplyQuickAgainstSplice(t *testing.T) {
	// Property: a simple replace delta (=k, -m, +s) equals Go slicing.
	f := func(doc string, k, m uint8, s string) bool {
		kk := int(k) % (len(doc) + 1)
		mm := int(m) % (len(doc) - kk + 1)
		d := Delta{RetainOp(kk), DeleteOp(mm), InsertOp(s)}
		got, err := d.Apply(doc)
		if err != nil {
			return false
		}
		want := doc[:kk] + s + doc[kk+mm:]
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("splice property: %v", err)
	}
}
