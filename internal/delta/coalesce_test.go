package delta

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCoalesceGolden pins the burst-canonical form: inside every maximal
// insert/delete run the deletes fold into one delete emitted before one
// merged insert.
func TestCoalesceGolden(t *testing.T) {
	cases := []struct {
		name string
		in   Delta
		want Delta
	}{
		{"empty", nil, nil},
		{"noop", Delta{RetainOp(5)}, nil},
		{"single-insert", Delta{InsertOp("x")}, Delta{InsertOp("x")}},
		{
			"burst-of-inserts",
			Delta{RetainOp(2), InsertOp("a"), InsertOp("b"), InsertOp("c")},
			Delta{RetainOp(2), InsertOp("abc")},
		},
		{
			"burst-of-deletes",
			Delta{RetainOp(2), DeleteOp(1), DeleteOp(1), DeleteOp(1)},
			Delta{RetainOp(2), DeleteOp(3)},
		},
		{
			"insert-then-delete-reorders",
			Delta{RetainOp(2), InsertOp("xy"), DeleteOp(3)},
			Delta{RetainOp(2), DeleteOp(3), InsertOp("xy")},
		},
		{
			"interleaved-run",
			Delta{InsertOp("a"), DeleteOp(1), InsertOp("b"), DeleteOp(2), InsertOp("c")},
			Delta{DeleteOp(3), InsertOp("abc")},
		},
		{
			"retain-splits-runs",
			Delta{InsertOp("a"), RetainOp(1), InsertOp("b"), DeleteOp(1)},
			Delta{InsertOp("a"), RetainOp(1), DeleteOp(1), InsertOp("b")},
		},
		{
			"zero-ops-dropped",
			Delta{RetainOp(0), InsertOp(""), DeleteOp(0), RetainOp(3), InsertOp("q")},
			Delta{RetainOp(3), InsertOp("q")},
		},
		{
			"adjacent-retains-merge",
			Delta{RetainOp(2), RetainOp(3), DeleteOp(1), RetainOp(1), RetainOp(4)},
			Delta{RetainOp(5), DeleteOp(1)},
		},
		{
			"trailing-retain-dropped",
			Delta{InsertOp("x"), RetainOp(9)},
			Delta{InsertOp("x")},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.Coalesce()
			if got.String() != tc.want.String() {
				t.Fatalf("Coalesce(%q) = %q, want %q", tc.in.String(), got.String(), tc.want.String())
			}
			// Idempotence: coalescing the canonical form is a fixed point.
			if again := got.Coalesce(); again.String() != got.String() {
				t.Fatalf("Coalesce not idempotent: %q -> %q", got.String(), again.String())
			}
		})
	}
}

// randomDelta builds a random valid delta over a document of docLen bytes.
func randomDelta(rng *rand.Rand, docLen int) Delta {
	var d Delta
	consumed := 0
	for consumed < docLen && len(d) < 24 {
		switch rng.Intn(3) {
		case 0:
			n := rng.Intn(docLen - consumed + 1)
			d = append(d, RetainOp(n))
			consumed += n
		case 1:
			n := rng.Intn(docLen - consumed + 1)
			d = append(d, DeleteOp(n))
			consumed += n
		default:
			d = append(d, InsertOp(strings.Repeat("i", rng.Intn(4))))
		}
	}
	return d
}

// TestCoalesceEquivalenceRandom checks Apply-equivalence over random deltas:
// coalescing must never change what a delta does to a document.
func TestCoalesceEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const doc = "abcdefghijklmnopqrstuvwxyz0123456789"
	for trial := 0; trial < 5000; trial++ {
		docLen := rng.Intn(len(doc) + 1)
		base := doc[:docLen]
		d := randomDelta(rng, docLen)
		want, err := d.Apply(base)
		if err != nil {
			t.Fatalf("apply original %q to %q: %v", d.String(), base, err)
		}
		c := d.Coalesce()
		got, err := c.Apply(base)
		if err != nil {
			t.Fatalf("apply coalesced %q (from %q) to %q: %v", c.String(), d.String(), base, err)
		}
		if got != want {
			t.Fatalf("Coalesce changed semantics: %q vs %q on %q: %q != %q",
				d.String(), c.String(), base, got, want)
		}
		if c.BaseLen() != d.Normalize().BaseLen() {
			t.Fatalf("Coalesce changed BaseLen: %q -> %q", d.String(), c.String())
		}
	}
}

// FuzzCoalesce feeds wire-form deltas through the fuzzer: for every delta
// that parses and applies, the coalesced form must apply identically and be
// a fixed point of both Coalesce and Normalize.
func FuzzCoalesce(f *testing.F) {
	f.Add("=2\t+ab\t-1\t+c", "abcdef")
	f.Add("+a\t+b\t+c", "")
	f.Add("-1\t+x\t-1\t+y", "qrs")
	f.Add("+é\t-2\t+世界", "èxy")
	f.Fuzz(func(t *testing.T, wire, doc string) {
		d, err := Parse(wire)
		if err != nil {
			t.Skip()
		}
		want, err := d.Apply(doc)
		if err != nil {
			t.Skip()
		}
		c := d.Coalesce()
		got, err := c.Apply(doc)
		if err != nil {
			t.Fatalf("coalesced %q does not apply: %v", c.String(), err)
		}
		if got != want {
			t.Fatalf("Coalesce(%q) = %q changes Apply on %q: %q != %q", wire, c.String(), doc, got, want)
		}
		if again := c.Coalesce(); again.String() != c.String() {
			t.Fatalf("not idempotent: %q -> %q", c.String(), again.String())
		}
		// Burst-canonical form satisfies all Normalize invariants.
		if norm := c.Normalize(); norm.String() != c.String() {
			t.Fatalf("coalesced form not Normalize-stable: %q -> %q", c.String(), norm.String())
		}
	})
}
