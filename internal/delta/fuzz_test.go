package delta

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics and that anything it accepts
// round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "=2\t-5", "=2\t-3\t+uv\t=2\t+w", "+hello", "-0", "=0",
		"+a\\tb", "+a\\\\b", "=999999999999999999999", "*junk", "+\t+",
		"=1\t=1\t=1", "+" + strings.Repeat("x", 1000),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, wire string) {
		d, err := Parse(wire)
		if err != nil {
			return
		}
		re, err := Parse(d.String())
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", wire, d.String(), err)
		}
		if re.String() != d.String() {
			t.Fatalf("unstable round trip: %q -> %q", d.String(), re.String())
		}
	})
}

// FuzzApply checks that Apply never panics and respects bounds: success
// implies BaseLen fits the document and the output length is consistent.
func FuzzApply(f *testing.F) {
	f.Add("=2\t-3\t+uv\t=2\t+w", "abcdefg")
	f.Add("-1", "")
	f.Add("+x", "")
	f.Add("=5", "12345")
	// Multibyte documents: delta counts are bytes, so boundaries can land
	// inside runes; Apply must stay byte-exact regardless.
	f.Add("=1\t-1\t+é", "é")
	f.Add("=3\t+世界", "日本語")
	f.Add("-2\t+𝛽", "𝛼𝛽")
	f.Add("+\xc3", "\xa9")
	f.Fuzz(func(t *testing.T, wire, doc string) {
		d, err := Parse(wire)
		if err != nil {
			return
		}
		out, err := d.Apply(doc)
		if err != nil {
			return
		}
		if d.BaseLen() > len(doc) {
			t.Fatalf("apply succeeded with BaseLen %d > doc %d", d.BaseLen(), len(doc))
		}
		wantLen := len(doc) - d.DeleteLen() + d.InsertLen()
		if len(out) != wantLen {
			t.Fatalf("output length %d, want %d", len(out), wantLen)
		}
		// Normalized form must agree.
		out2, err := d.Normalize().Apply(doc)
		if err != nil || out2 != out {
			t.Fatalf("normalized apply diverged: %v", err)
		}
	})
}

// FuzzTransform checks that Transform never panics and that TP1 holds for
// any pair of valid concurrent deltas the fuzzer finds.
func FuzzTransform(f *testing.F) {
	f.Add("=1\t+X", "=1\t+Y", "ab")
	f.Add("-3", "+zz\t-1", "abc")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, wireA, wireB, doc string) {
		a, err := Parse(wireA)
		if err != nil || a.Validate(len(doc)) != nil {
			return
		}
		b, err := Parse(wireB)
		if err != nil || b.Validate(len(doc)) != nil {
			return
		}
		left, err := Merge(doc, a, b, false)
		if err != nil {
			t.Fatalf("merge left: %v", err)
		}
		right, err := Merge(doc, b, a, true)
		if err != nil {
			t.Fatalf("merge right: %v", err)
		}
		if left != right {
			t.Fatalf("TP1 violated: %q vs %q (a=%q b=%q doc=%q)", left, right, wireA, wireB, doc)
		}
	})
}
