package delta

import (
	"math/rand"
	"strings"
	"testing"
)

func mustMerge(t *testing.T, doc string, a, b Delta, aFirst bool) string {
	t.Helper()
	out, err := Merge(doc, a, b, aFirst)
	if err != nil {
		t.Fatalf("Merge(%q, %q, %q): %v", doc, a.String(), b.String(), err)
	}
	return out
}

func TestTransformDisjointEdits(t *testing.T) {
	doc := "HEAD middle TAIL"
	a := Delta{RetainOp(12), DeleteOp(4), InsertOp("BACK")} // edit the tail
	b := Delta{DeleteOp(4), InsertOp("FRONT")}              // edit the head
	got := mustMerge(t, doc, a, b, false)
	if got != "FRONT middle BACK" {
		t.Errorf("merge = %q, want both edits", got)
	}
	// The mirrored order converges to the same document (TP1).
	got2 := mustMerge(t, doc, b, a, true)
	if got2 != got {
		t.Errorf("mirrored merge = %q, want %q", got2, got)
	}
}

func TestTransformBothDeleteSameRange(t *testing.T) {
	doc := "delete the middle part"
	a := Delta{RetainOp(7), DeleteOp(4)} // "the "
	b := Delta{RetainOp(7), DeleteOp(4)} // same
	got := mustMerge(t, doc, a, b, false)
	if got != "delete middle part" {
		t.Errorf("double delete = %q", got)
	}
}

func TestTransformOverlappingDeletes(t *testing.T) {
	doc := "0123456789"
	a := Delta{RetainOp(2), DeleteOp(5)} // delete 2..7
	b := Delta{RetainOp(4), DeleteOp(5)} // delete 4..9
	got := mustMerge(t, doc, a, b, false)
	if got != "019" {
		t.Errorf("overlapping deletes = %q, want %q", got, "019")
	}
	if got2 := mustMerge(t, doc, b, a, true); got2 != got {
		t.Errorf("mirrored = %q, want %q", got2, got)
	}
}

func TestTransformInsertInsideOtherDelete(t *testing.T) {
	doc := "keep [cut this] keep"
	a := Delta{RetainOp(10), InsertOp("<NEW>")} // insert inside the cut
	b := Delta{RetainOp(5), DeleteOp(10)}       // cut "[cut this]"
	got := mustMerge(t, doc, a, b, false)
	// a's insertion survives even though its surrounding context was cut.
	if !strings.Contains(got, "<NEW>") {
		t.Errorf("insertion lost: %q", got)
	}
	if strings.Contains(got, "cut this") {
		t.Errorf("deletion lost: %q", got)
	}
}

func TestTransformSamePositionInsertPriority(t *testing.T) {
	doc := "ab"
	a := Delta{RetainOp(1), InsertOp("X")}
	b := Delta{RetainOp(1), InsertOp("Y")}
	gotAFirst := mustMerge(t, doc, a, b, true)
	gotBFirst := mustMerge(t, doc, a, b, false)
	if gotAFirst != "aXYb" {
		t.Errorf("aFirst merge = %q, want aXYb", gotAFirst)
	}
	if gotBFirst != "aYXb" {
		t.Errorf("bFirst merge = %q, want aYXb", gotBFirst)
	}
}

func TestTransformAgainstNoop(t *testing.T) {
	doc := "unchanged base"
	a := Delta{RetainOp(9), InsertOp("!")}
	got, err := Transform(a, nil, len(doc), false)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if got.String() != a.Normalize().String() {
		t.Errorf("transform against noop = %q, want %q", got.String(), a.String())
	}
}

func TestTransformValidates(t *testing.T) {
	if _, err := Transform(Delta{RetainOp(10)}, nil, 5, false); err == nil {
		t.Error("oversized a accepted")
	}
	if _, err := Transform(nil, Delta{DeleteOp(10)}, 5, false); err == nil {
		t.Error("oversized b accepted")
	}
}

// TestTransformTP1Random verifies the convergence property on random
// concurrent edits: applying (b, then a-transformed) equals applying
// (a, then b-transformed) with flipped insert priority.
func TestTransformTP1Random(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	alphabet := "abcdef"
	randDelta := func(n int) Delta {
		var d Delta
		cursor := 0
		for ops := rng.Intn(5) + 1; ops > 0; ops-- {
			switch rng.Intn(3) {
			case 0:
				if cursor < n {
					k := 1 + rng.Intn(n-cursor)
					d = append(d, RetainOp(k))
					cursor += k
				}
			case 1:
				var sb strings.Builder
				for j := rng.Intn(4) + 1; j > 0; j-- {
					sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
				}
				d = append(d, InsertOp(sb.String()))
			default:
				if cursor < n {
					k := 1 + rng.Intn(n-cursor)
					d = append(d, DeleteOp(k))
					cursor += k
				}
			}
		}
		return d
	}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		docBytes := make([]byte, n)
		for i := range docBytes {
			docBytes[i] = byte('A' + rng.Intn(26))
		}
		doc := string(docBytes)
		a := randDelta(n)
		b := randDelta(n)

		left, err := Merge(doc, a, b, false) // b first, a second
		if err != nil {
			t.Fatalf("trial %d: merge left: %v", trial, err)
		}
		right, err := Merge(doc, b, a, true) // a first, b second
		if err != nil {
			t.Fatalf("trial %d: merge right: %v", trial, err)
		}
		if left != right {
			t.Fatalf("trial %d: TP1 violated\n doc %q\n a %q\n b %q\n left %q\n right %q",
				trial, doc, a.String(), b.String(), left, right)
		}
	}
}

// TestTransformPreservesIntent checks that every character inserted by a
// survives the merge and every character deleted by a stays gone.
func TestTransformPreservesIntent(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 300; trial++ {
		n := 10 + rng.Intn(40)
		docBytes := make([]byte, n)
		for i := range docBytes {
			docBytes[i] = byte('a' + rng.Intn(26))
		}
		doc := string(docBytes)
		// a inserts a unique marker; b makes arbitrary edits.
		pos := rng.Intn(n + 1)
		a := Delta{RetainOp(pos), InsertOp("@@@")}
		var b Delta
		if n > 2 {
			b = Delta{RetainOp(rng.Intn(n / 2)), DeleteOp(1 + rng.Intn(n/2)), InsertOp("zzz")}
		}
		got := mustMerge(t, doc, a, b, false)
		if !strings.Contains(got, "@@@") {
			t.Fatalf("trial %d: a's insertion lost in %q", trial, got)
		}
	}
}
