package delta

import "testing"

// TestNormalizeGolden pins the canonical form: no zero-length ops, no
// adjacent same-kind ops, no trailing retain, unknown kinds dropped.
func TestNormalizeGolden(t *testing.T) {
	cases := []struct {
		name string
		in   Delta
		want Delta
	}{
		{"empty", nil, nil},
		{"pure-retain", Delta{RetainOp(9)}, nil},
		{"zero-ops", Delta{RetainOp(0), InsertOp(""), DeleteOp(0)}, nil},
		{
			"adjacent-retains",
			Delta{RetainOp(1), RetainOp(2), DeleteOp(1)},
			Delta{RetainOp(3), DeleteOp(1)},
		},
		{
			"adjacent-inserts",
			Delta{InsertOp("ab"), InsertOp("cd")},
			Delta{InsertOp("abcd")},
		},
		{
			"adjacent-deletes",
			Delta{DeleteOp(1), DeleteOp(2)},
			Delta{DeleteOp(3)},
		},
		{
			"zero-between-same-kind",
			Delta{InsertOp("a"), RetainOp(0), InsertOp("b")},
			Delta{InsertOp("ab")},
		},
		{
			"trailing-retain-run",
			Delta{InsertOp("x"), RetainOp(2), RetainOp(3)},
			Delta{InsertOp("x")},
		},
		{
			"invalid-kind-dropped",
			Delta{{Kind: OpKind(99), N: 5}, InsertOp("q")},
			Delta{InsertOp("q")},
		},
		{
			"insert-delete-order-preserved",
			Delta{InsertOp("x"), DeleteOp(1), InsertOp("y")},
			Delta{InsertOp("x"), DeleteOp(1), InsertOp("y")},
		},
		{
			"paper-example",
			Delta{RetainOp(2), DeleteOp(3), InsertOp("uv"), RetainOp(2), InsertOp("w")},
			Delta{RetainOp(2), DeleteOp(3), InsertOp("uv"), RetainOp(2), InsertOp("w")},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.Normalize()
			if got.String() != tc.want.String() {
				t.Fatalf("Normalize(%v) = %q, want %q", tc.in, got.String(), tc.want.String())
			}
		})
	}
}

// FuzzNormalizeIdempotent checks that Normalize is a projection onto its
// canonical form — Normalize(Normalize(d)) == Normalize(d) — and that the
// canonical form preserves Apply, including on multibyte documents.
func FuzzNormalizeIdempotent(f *testing.F) {
	f.Add("=2\t-3\t+uv\t=2\t+w", "abcdefg")
	f.Add("=0\t+a\t+b\t=0\t-0\t=3", "xyz")
	f.Add("+é\t=2\t+日本語", "è語")
	f.Add("-1\t-1\t=1\t=1", "𝛼𝛽")
	f.Add("+\xff\xfe\t=1", "\x80")
	f.Fuzz(func(t *testing.T, wire, doc string) {
		d, err := Parse(wire)
		if err != nil {
			t.Skip()
		}
		once := d.Normalize()
		twice := once.Normalize()
		if once.String() != twice.String() {
			t.Fatalf("Normalize not idempotent on %q: %q -> %q", wire, once.String(), twice.String())
		}
		// Canonical-form invariants.
		for i, op := range once {
			switch op.Kind {
			case Retain, Delete:
				if op.N == 0 {
					t.Fatalf("zero-length op %d survives in %q", i, once.String())
				}
			case Insert:
				if op.Str == "" {
					t.Fatalf("empty insert %d survives in %q", i, once.String())
				}
			default:
				t.Fatalf("invalid kind %d survives in %q", op.Kind, once.String())
			}
			if i > 0 && once[i-1].Kind == op.Kind {
				t.Fatalf("adjacent %v ops survive in %q", op.Kind, once.String())
			}
		}
		if n := len(once); n > 0 && once[n-1].Kind == Retain {
			t.Fatalf("trailing retain survives in %q", once.String())
		}
		// Apply-equivalence whenever the original applies.
		want, err := d.Apply(doc)
		if err != nil {
			t.Skip()
		}
		got, err := once.Apply(doc)
		if err != nil || got != want {
			t.Fatalf("normalized %q diverges on %q: %q != %q (%v)", once.String(), doc, got, want, err)
		}
	})
}
