package delta_test

import (
	"fmt"

	"privedit/internal/delta"
)

// The paper's worked example from §IV-A.
func ExampleDelta_Apply() {
	d, err := delta.Parse("=2\t-3\t+uv\t=2\t+w")
	if err != nil {
		panic(err)
	}
	out, err := d.Apply("abcdefg")
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: abuvfgw
}

func ExampleDelta_Normalize() {
	d := delta.Delta{
		delta.InsertOp("he"),
		delta.InsertOp("llo"),
		delta.RetainOp(0),
		delta.RetainOp(7),
	}
	fmt.Printf("%q\n", d.Normalize().String())
	// Output: "+hello"
}

// Two users edit the same base concurrently; Transform merges them.
func ExampleTransform() {
	doc := "HEAD middle TAIL"
	mine := delta.Delta{delta.RetainOp(12), delta.DeleteOp(4), delta.InsertOp("BACK")}
	theirs := delta.Delta{delta.DeleteOp(4), delta.InsertOp("FRONT")}

	merged, err := delta.Merge(doc, mine, theirs, false)
	if err != nil {
		panic(err)
	}
	fmt.Println(merged)
	// Output: FRONT middle BACK
}
