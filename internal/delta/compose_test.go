package delta

import (
	"math/rand"
	"strings"
	"testing"
)

func mustCompose(t *testing.T, a, b Delta, docLen int) Delta {
	t.Helper()
	c, err := Compose(a, b, docLen)
	if err != nil {
		t.Fatalf("Compose(%q, %q, %d): %v", a.String(), b.String(), docLen, err)
	}
	return c
}

func TestComposeSequentialEdits(t *testing.T) {
	doc := "hello world"
	a := Delta{RetainOp(5), InsertOp(",")}                  // "hello, world"
	b := Delta{RetainOp(7), DeleteOp(5), InsertOp("there")} // "hello, there"
	c := mustCompose(t, a, b, len(doc))
	got, err := c.Apply(doc)
	if err != nil {
		t.Fatalf("apply composed: %v", err)
	}
	if got != "hello, there" {
		t.Errorf("composed apply = %q, want %q", got, "hello, there")
	}
}

func TestComposeDeleteOfInsertedText(t *testing.T) {
	// b deletes text that only exists because a inserted it: the composed
	// delta must not touch the base document there at all.
	doc := "ab"
	a := Delta{RetainOp(1), InsertOp("XYZ")} // "aXYZb"
	b := Delta{RetainOp(1), DeleteOp(3)}     // "ab"
	c := mustCompose(t, a, b, len(doc))
	if !c.IsNoop() {
		t.Errorf("insert-then-delete composed to %q, want a no-op", c.String())
	}
}

func TestComposeSplitsInsertAtRetainBoundary(t *testing.T) {
	doc := "xx"
	a := Delta{InsertOp("abcd")}         // "abcdxx"
	b := Delta{RetainOp(2), DeleteOp(2)} // "abxx"
	c := mustCompose(t, a, b, len(doc))
	got, err := c.Apply(doc)
	if err != nil {
		t.Fatalf("apply composed: %v", err)
	}
	if got != "abxx" {
		t.Errorf("composed apply = %q, want %q", got, "abxx")
	}
}

func TestComposeValidates(t *testing.T) {
	if _, err := Compose(Delta{DeleteOp(10)}, nil, 5); err == nil {
		t.Error("oversized a accepted")
	}
	// b must fit a's output length (here 3), not the base length.
	a := Delta{DeleteOp(2)} // 5 -> 3
	if _, err := Compose(a, Delta{DeleteOp(4)}, 5); err == nil {
		t.Error("b larger than a's output accepted")
	}
}

// TestComposeRandom is the defining property: applying the composition
// equals applying the two deltas in sequence, for random documents and
// random edit chains.
func TestComposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	alphabet := "abcdef"
	randDelta := func(n int) Delta {
		var d Delta
		cursor := 0
		for ops := rng.Intn(6) + 1; ops > 0; ops-- {
			switch rng.Intn(3) {
			case 0:
				if cursor < n {
					k := 1 + rng.Intn(n-cursor)
					d = append(d, RetainOp(k))
					cursor += k
				}
			case 1:
				var sb strings.Builder
				for j := rng.Intn(4) + 1; j > 0; j-- {
					sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
				}
				d = append(d, InsertOp(sb.String()))
			default:
				if cursor < n {
					k := 1 + rng.Intn(n-cursor)
					d = append(d, DeleteOp(k))
					cursor += k
				}
			}
		}
		return d
	}
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(40)
		docBytes := make([]byte, n)
		for i := range docBytes {
			docBytes[i] = byte('A' + rng.Intn(26))
		}
		doc := string(docBytes)
		a := randDelta(n)
		mid, err := a.Apply(doc)
		if err != nil {
			t.Fatalf("trial %d: apply a: %v", trial, err)
		}
		b := randDelta(len(mid))
		want, err := b.Apply(mid)
		if err != nil {
			t.Fatalf("trial %d: apply b: %v", trial, err)
		}

		c := mustCompose(t, a, b, n)
		got, err := c.Apply(doc)
		if err != nil {
			t.Fatalf("trial %d: apply composed: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: compose diverged\n doc %q\n a %q\n b %q\n sequential %q\n composed %q (%q)",
				trial, doc, a.String(), b.String(), want, got, c.String())
		}
	}
}

// TestComposeChainRandom composes long chains left-to-right, the exact
// shape the mediator's queue coalescing produces.
func TestComposeChainRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(30)
		docBytes := make([]byte, n)
		for i := range docBytes {
			docBytes[i] = byte('a' + rng.Intn(26))
		}
		doc := string(docBytes)
		cur := doc
		var acc Delta
		for step := 0; step < 6; step++ {
			pos := rng.Intn(len(cur) + 1)
			del := 0
			if pos < len(cur) {
				del = rng.Intn(len(cur) - pos + 1)
			}
			d := Delta{RetainOp(pos), DeleteOp(del), InsertOp("ins")}.Normalize()
			next, err := d.Apply(cur)
			if err != nil {
				t.Fatalf("trial %d step %d: apply: %v", trial, step, err)
			}
			if step == 0 {
				acc = d
			} else {
				acc = mustCompose(t, acc, d, len(doc))
			}
			cur = next
		}
		got, err := acc.Apply(doc)
		if err != nil {
			t.Fatalf("trial %d: apply chain: %v", trial, err)
		}
		if got != cur {
			t.Fatalf("trial %d: chain composed to %q, want %q", trial, got, cur)
		}
	}
}
