package skiplist

import (
	"errors"
	"math/rand"
	"testing"
)

// refModel is a trivially-correct slice-backed reference used to cross-check
// the skip list in property tests.
type refModel struct {
	values []string
	w1s    []int
	w2s    []int
}

func (m *refModel) insertAt(k int, v string, w1, w2 int) {
	m.values = append(m.values, "")
	copy(m.values[k+1:], m.values[k:])
	m.values[k] = v
	m.w1s = append(m.w1s, 0)
	copy(m.w1s[k+1:], m.w1s[k:])
	m.w1s[k] = w1
	m.w2s = append(m.w2s, 0)
	copy(m.w2s[k+1:], m.w2s[k:])
	m.w2s[k] = w2
}

func (m *refModel) deleteAt(k int) {
	m.values = append(m.values[:k], m.values[k+1:]...)
	m.w1s = append(m.w1s[:k], m.w1s[k+1:]...)
	m.w2s = append(m.w2s[:k], m.w2s[k+1:]...)
}

func (m *refModel) setAt(k int, v string, w1, w2 int) {
	m.values[k] = v
	m.w1s[k] = w1
	m.w2s[k] = w2
}

func (m *refModel) totalW1() int {
	s := 0
	for _, w := range m.w1s {
		s += w
	}
	return s
}

// findPrimary returns ordinal, offset, beforeW1, beforeW2 for primary idx p.
func (m *refModel) findPrimary(p int) (int, int, int, int) {
	b1, b2 := 0, 0
	for i, w := range m.w1s {
		if p < b1+w {
			return i, p - b1, b1, b2
		}
		b1 += w
		b2 += m.w2s[i]
	}
	return -1, 0, 0, 0
}

func TestEmptyList(t *testing.T) {
	l := New[string](1)
	if l.Len() != 0 || l.TotalPrimary() != 0 || l.TotalSecondary() != 0 {
		t.Errorf("empty list reports Len=%d W1=%d W2=%d", l.Len(), l.TotalPrimary(), l.TotalSecondary())
	}
	if _, err := l.FindOrdinal(0); !errors.Is(err, ErrIndexRange) {
		t.Errorf("FindOrdinal on empty = %v, want ErrIndexRange", err)
	}
	if _, err := l.FindPrimary(0); !errors.Is(err, ErrIndexRange) {
		t.Errorf("FindPrimary on empty = %v, want ErrIndexRange", err)
	}
	if _, _, _, err := l.DeleteAt(0); !errors.Is(err, ErrIndexRange) {
		t.Errorf("DeleteAt on empty = %v, want ErrIndexRange", err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate empty: %v", err)
	}
}

func TestPaperFigure3Insertion(t *testing.T) {
	// Figure 3: insert "xy" at index 3 of "abcfghijk" (as 1-char blocks).
	l := New[string](7)
	doc := "abcfghijk"
	for i, c := range doc {
		if err := l.InsertAt(i, string(c), 1, 2); err != nil {
			t.Fatalf("InsertAt(%d): %v", i, err)
		}
	}
	// Find index 3 to locate the insertion ordinal, then insert a block.
	pos, err := l.FindPrimary(3)
	if err != nil {
		t.Fatalf("FindPrimary(3): %v", err)
	}
	if pos.Value != "f" || pos.Offset != 0 {
		t.Fatalf("FindPrimary(3) = %q offset %d, want \"f\" offset 0", pos.Value, pos.Offset)
	}
	if err := l.InsertAt(pos.Ordinal, "xy", 2, 4); err != nil {
		t.Fatalf("InsertAt: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Resulting sequence must read "abc" "xy" "fghijk".
	var got string
	if err := l.Each(0, func(_ int, v string, _, _ int) bool {
		got += v
		return true
	}); err != nil {
		t.Fatalf("Each: %v", err)
	}
	if got != "abcxyfghijk" {
		t.Errorf("after insertion document = %q, want %q", got, "abcxyfghijk")
	}
	if l.TotalPrimary() != 11 {
		t.Errorf("TotalPrimary = %d, want 11", l.TotalPrimary())
	}
	if l.TotalSecondary() != 22 {
		t.Errorf("TotalSecondary = %d, want 22", l.TotalSecondary())
	}
}

func TestAlgorithm1FindSemantics(t *testing.T) {
	// Blocks of varying width; Find must return the containing block and
	// in-block offset exactly as the paper's Algorithm 1 (value[index]).
	l := New[string](3)
	blocks := []struct {
		v  string
		w2 int
	}{
		{"ab", 16}, {"cde", 16}, {"f", 16}, {"ghij", 32},
	}
	for i, b := range blocks {
		if err := l.InsertAt(i, b.v, len(b.v), b.w2); err != nil {
			t.Fatalf("InsertAt: %v", err)
		}
	}
	full := "abcdefghij"
	for p := 0; p < len(full); p++ {
		pos, err := l.FindPrimary(p)
		if err != nil {
			t.Fatalf("FindPrimary(%d): %v", p, err)
		}
		if pos.Value[pos.Offset] != full[p] {
			t.Errorf("FindPrimary(%d): block %q offset %d yields %q, want %q",
				p, pos.Value, pos.Offset, pos.Value[pos.Offset], full[p])
		}
		if pos.BeforeW1 > p || pos.BeforeW1+pos.W1 <= p {
			t.Errorf("FindPrimary(%d): BeforeW1 %d W1 %d does not bracket p", p, pos.BeforeW1, pos.W1)
		}
	}
	// Secondary prefix sums: before block 3 ("ghij"), 3 blocks × 16 units.
	pos, err := l.FindPrimary(7)
	if err != nil {
		t.Fatalf("FindPrimary(7): %v", err)
	}
	if pos.BeforeW2 != 48 {
		t.Errorf("BeforeW2 at block 3 = %d, want 48", pos.BeforeW2)
	}
}

func TestInsertAtEnds(t *testing.T) {
	l := New[string](11)
	if err := l.InsertAt(0, "m", 1, 1); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	if err := l.InsertAt(0, "f", 1, 1); err != nil {
		t.Fatalf("front insert: %v", err)
	}
	if err := l.InsertAt(2, "b", 1, 1); err != nil {
		t.Fatalf("back insert: %v", err)
	}
	want := []string{"f", "m", "b"}
	for i, w := range want {
		pos, err := l.FindOrdinal(i)
		if err != nil {
			t.Fatalf("FindOrdinal(%d): %v", i, err)
		}
		if pos.Value != w {
			t.Errorf("ordinal %d = %q, want %q", i, pos.Value, w)
		}
	}
	if err := l.InsertAt(5, "x", 1, 1); !errors.Is(err, ErrIndexRange) {
		t.Errorf("InsertAt(5) on len-3 list = %v, want ErrIndexRange", err)
	}
	if err := l.InsertAt(-1, "x", 1, 1); !errors.Is(err, ErrIndexRange) {
		t.Errorf("InsertAt(-1) = %v, want ErrIndexRange", err)
	}
	if err := l.InsertAt(0, "x", -1, 1); !errors.Is(err, ErrIndexRange) {
		t.Errorf("InsertAt with negative weight = %v, want ErrIndexRange", err)
	}
}

func TestDeleteAll(t *testing.T) {
	l := New[int](13)
	const n = 200
	for i := 0; i < n; i++ {
		if err := l.InsertAt(i, i, 1, 1); err != nil {
			t.Fatalf("InsertAt: %v", err)
		}
	}
	// Delete from the middle outward.
	for l.Len() > 0 {
		k := l.Len() / 2
		want, err := l.FindOrdinal(k)
		if err != nil {
			t.Fatalf("FindOrdinal: %v", err)
		}
		got, w1, w2, err := l.DeleteAt(k)
		if err != nil {
			t.Fatalf("DeleteAt: %v", err)
		}
		if got != want.Value || w1 != 1 || w2 != 1 {
			t.Fatalf("DeleteAt(%d) = (%d,%d,%d), want (%d,1,1)", k, got, w1, w2, want.Value)
		}
	}
	if l.TotalPrimary() != 0 || l.TotalSecondary() != 0 {
		t.Errorf("totals after delete-all: %d, %d", l.TotalPrimary(), l.TotalSecondary())
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate after delete-all: %v", err)
	}
}

func TestSetAtAdjustsWeights(t *testing.T) {
	l := New[string](17)
	for i := 0; i < 50; i++ {
		if err := l.InsertAt(i, "aaaa", 4, 16); err != nil {
			t.Fatalf("InsertAt: %v", err)
		}
	}
	if err := l.SetAt(20, "aa", 2, 16); err != nil {
		t.Fatalf("SetAt: %v", err)
	}
	if l.TotalPrimary() != 4*49+2 {
		t.Errorf("TotalPrimary = %d, want %d", l.TotalPrimary(), 4*49+2)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate after SetAt: %v", err)
	}
	pos, err := l.FindOrdinal(20)
	if err != nil {
		t.Fatalf("FindOrdinal: %v", err)
	}
	if pos.Value != "aa" || pos.W1 != 2 {
		t.Errorf("element 20 = %q w1=%d, want \"aa\" w1=2", pos.Value, pos.W1)
	}
	// Primary index 80 = block 20 starts at 4*20=80 before the edit; after
	// shrinking block 20 to 2 chars, index 81 is its last char.
	pos, err = l.FindPrimary(81)
	if err != nil {
		t.Fatalf("FindPrimary: %v", err)
	}
	if pos.Ordinal != 20 || pos.Offset != 1 {
		t.Errorf("FindPrimary(81) = ordinal %d offset %d, want 20/1", pos.Ordinal, pos.Offset)
	}
	if err := l.SetAt(50, "x", 1, 1); !errors.Is(err, ErrIndexRange) {
		t.Errorf("SetAt out of range = %v, want ErrIndexRange", err)
	}
}

func TestEachEarlyStopAndOffsets(t *testing.T) {
	l := New[int](19)
	for i := 0; i < 10; i++ {
		if err := l.InsertAt(i, i*i, 1, 1); err != nil {
			t.Fatalf("InsertAt: %v", err)
		}
	}
	var seen []int
	if err := l.Each(4, func(k int, v int, _, _ int) bool {
		seen = append(seen, k)
		return len(seen) < 3
	}); err != nil {
		t.Fatalf("Each: %v", err)
	}
	if len(seen) != 3 || seen[0] != 4 || seen[2] != 6 {
		t.Errorf("Each visited %v, want [4 5 6]", seen)
	}
	if err := l.Each(11, func(int, int, int, int) bool { return true }); !errors.Is(err, ErrIndexRange) {
		t.Errorf("Each(11) = %v, want ErrIndexRange", err)
	}
	// Each starting exactly at Len() visits nothing but is legal.
	count := 0
	if err := l.Each(10, func(int, int, int, int) bool { count++; return true }); err != nil {
		t.Fatalf("Each(len): %v", err)
	}
	if count != 0 {
		t.Errorf("Each(len) visited %d elements", count)
	}
}

func TestZeroWeightElements(t *testing.T) {
	// Elements with zero primary weight (e.g. a metadata block) must not
	// break FindPrimary: the search should land on the weighted block.
	l := New[string](23)
	if err := l.InsertAt(0, "meta", 0, 8); err != nil {
		t.Fatalf("InsertAt meta: %v", err)
	}
	if err := l.InsertAt(1, "abc", 3, 8); err != nil {
		t.Fatalf("InsertAt abc: %v", err)
	}
	pos, err := l.FindPrimary(0)
	if err != nil {
		t.Fatalf("FindPrimary: %v", err)
	}
	if pos.Value != "abc" {
		t.Errorf("FindPrimary(0) = %q, want %q", pos.Value, "abc")
	}
	if pos.BeforeW2 != 8 {
		t.Errorf("BeforeW2 = %d, want 8 (skips the meta block)", pos.BeforeW2)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := New[string](31)
	ref := &refModel{}
	const ops = 3000
	for op := 0; op < ops; op++ {
		switch action := rng.Intn(10); {
		case action < 5 || l.Len() == 0: // insert
			k := rng.Intn(l.Len() + 1)
			w1 := 1 + rng.Intn(8)
			w2 := 1 + rng.Intn(40)
			v := string(rune('a' + rng.Intn(26)))
			if err := l.InsertAt(k, v, w1, w2); err != nil {
				t.Fatalf("op %d InsertAt(%d): %v", op, k, err)
			}
			ref.insertAt(k, v, w1, w2)
		case action < 8: // delete
			k := rng.Intn(l.Len())
			v, w1, w2, err := l.DeleteAt(k)
			if err != nil {
				t.Fatalf("op %d DeleteAt(%d): %v", op, k, err)
			}
			if v != ref.values[k] || w1 != ref.w1s[k] || w2 != ref.w2s[k] {
				t.Fatalf("op %d DeleteAt(%d) = (%q,%d,%d), ref (%q,%d,%d)",
					op, k, v, w1, w2, ref.values[k], ref.w1s[k], ref.w2s[k])
			}
			ref.deleteAt(k)
		default: // set
			k := rng.Intn(l.Len())
			w1 := 1 + rng.Intn(8)
			w2 := 1 + rng.Intn(40)
			v := string(rune('A' + rng.Intn(26)))
			if err := l.SetAt(k, v, w1, w2); err != nil {
				t.Fatalf("op %d SetAt(%d): %v", op, k, err)
			}
			ref.setAt(k, v, w1, w2)
		}
		if op%200 == 0 {
			if err := l.Validate(); err != nil {
				t.Fatalf("op %d Validate: %v", op, err)
			}
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("final Validate: %v", err)
	}
	// Cross-check every FindOrdinal and a sample of FindPrimary lookups.
	if l.Len() != len(ref.values) {
		t.Fatalf("length %d, ref %d", l.Len(), len(ref.values))
	}
	for k := 0; k < l.Len(); k++ {
		pos, err := l.FindOrdinal(k)
		if err != nil {
			t.Fatalf("FindOrdinal(%d): %v", k, err)
		}
		if pos.Value != ref.values[k] || pos.W1 != ref.w1s[k] || pos.W2 != ref.w2s[k] {
			t.Fatalf("FindOrdinal(%d) = (%q,%d,%d), ref (%q,%d,%d)",
				k, pos.Value, pos.W1, pos.W2, ref.values[k], ref.w1s[k], ref.w2s[k])
		}
	}
	total := ref.totalW1()
	if l.TotalPrimary() != total {
		t.Fatalf("TotalPrimary %d, ref %d", l.TotalPrimary(), total)
	}
	for trial := 0; trial < 500; trial++ {
		p := rng.Intn(total)
		pos, err := l.FindPrimary(p)
		if err != nil {
			t.Fatalf("FindPrimary(%d): %v", p, err)
		}
		wantOrd, wantOff, wantB1, wantB2 := ref.findPrimary(p)
		if pos.Ordinal != wantOrd || pos.Offset != wantOff || pos.BeforeW1 != wantB1 || pos.BeforeW2 != wantB2 {
			t.Fatalf("FindPrimary(%d) = (ord %d, off %d, b1 %d, b2 %d), ref (%d,%d,%d,%d)",
				p, pos.Ordinal, pos.Offset, pos.BeforeW1, pos.BeforeW2, wantOrd, wantOff, wantB1, wantB2)
		}
	}
}

func TestDeterministicStructure(t *testing.T) {
	build := func(seed uint64) string {
		l := New[int](seed)
		for i := 0; i < 64; i++ {
			if err := l.InsertAt(i, i, 1, 1); err != nil {
				t.Fatalf("InsertAt: %v", err)
			}
		}
		return l.String()
	}
	if build(5) != build(5) {
		t.Error("same seed produced different structures")
	}
	if build(5) == build(6) {
		t.Error("different seeds produced identical structures (suspicious)")
	}
}

func TestLogarithmicHeight(t *testing.T) {
	l := New[int](41)
	const n = 4096
	for i := 0; i < n; i++ {
		if err := l.InsertAt(i, i, 1, 1); err != nil {
			t.Fatalf("InsertAt: %v", err)
		}
	}
	// Expected height ~ log2(4096) = 12; allow generous slack.
	if l.level > 26 {
		t.Errorf("level = %d for n = %d, want O(log n)", l.level, n)
	}
}

func BenchmarkFindPrimary(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		l := New[int](43)
		for i := 0; i < n; i++ {
			if err := l.InsertAt(i, i, 8, 16); err != nil {
				b.Fatalf("InsertAt: %v", err)
			}
		}
		rng := rand.New(rand.NewSource(7))
		b.Run(itoa(n), func(b *testing.B) {
			total := l.TotalPrimary()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.FindPrimary(rng.Intn(total)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	l := New[int](47)
	for i := 0; i < 1<<14; i++ {
		if err := l.InsertAt(i, i, 8, 16); err != nil {
			b.Fatalf("InsertAt: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := rng.Intn(l.Len())
		if err := l.InsertAt(k, i, 8, 16); err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := l.DeleteAt(rng.Intn(l.Len())); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
