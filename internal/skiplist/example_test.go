package skiplist_test

import (
	"fmt"

	"privedit/internal/skiplist"
)

// The paper's Figure 3: an IndexedSkipList over the blocks of
// "abcfghijk", then inserting "xy" at character index 3.
func ExampleList() {
	l := skiplist.New[string](42)
	for i, block := range []string{"abc", "fgh", "ijk"} {
		if err := l.InsertAt(i, block, len(block), 16); err != nil {
			panic(err)
		}
	}

	// Find the block containing character index 3 (Algorithm 1).
	pos, err := l.FindPrimary(3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("index 3 is block %d (%q) at offset %d\n", pos.Ordinal, pos.Value, pos.Offset)

	// Insert a new block there.
	if err := l.InsertAt(pos.Ordinal, "xy", 2, 16); err != nil {
		panic(err)
	}
	var doc string
	_ = l.Each(0, func(_ int, v string, _, _ int) bool {
		doc += v
		return true
	})
	fmt.Println(doc)
	// Output:
	// index 3 is block 1 ("fgh") at offset 0
	// abcxyfghijk
}
