// Package skiplist implements the IndexedSkipList of Huang & Evans §V-C:
// a skip list whose forward pointers carry skip counts so that elements can
// be found, inserted, and deleted *by position* rather than by key, in
// expected O(log n) time (Algorithm 1 and Figure 3 of the paper).
//
// This implementation generalizes the paper's single skip_count to three
// parallel counts per pointer:
//
//   - element count (how many list elements a pointer skips),
//   - primary weight (plaintext characters held by the skipped elements),
//   - secondary weight (ciphertext units produced by the skipped elements).
//
// The dual weighting is what lets the mediating extension translate a
// plaintext character position into the corresponding ciphertext offset in
// a single traversal, which §V-B's transform_delta needs to emit ciphertext
// deltas without scanning the document.
package skiplist

import (
	"errors"
	"fmt"
	"strings"

	"privedit/internal/obs"
)

// metricSeekSteps records how many forward-pointer hops a positional seek
// takes — the observable form of the paper's expected-O(log n) claim for
// Algorithm 1. Shared by all lists in the process; a no-op until
// obs.Enable().
var metricSeekSteps = obs.NewHistogram("privedit_skiplist_seek_steps",
	"Forward-pointer hops per FindPrimary positional seek.",
	obs.ExpBuckets(1, 2, 10))

// Finger-cache telemetry: how often a positional seek is answered from the
// cached bottom-level position instead of the O(log n) tower descent.
// Sequential/local edits — the dominant editing pattern (§VII) — should
// drive the hit ratio toward 1.
var (
	metricFingerHits = obs.NewCounter("privedit_skiplist_finger_hits_total",
		"Positional seeks answered from the search-finger cache.")
	metricFingerMisses = obs.NewCounter("privedit_skiplist_finger_misses_total",
		"Positional seeks that fell back to the full tower descent.")
)

// maxFingerWalk bounds how many bottom-level hops a finger probe may take
// before falling back to the tower descent: generous for the 1–2 block
// strides of sequential editing, small enough that a random far seek stays
// O(log n) instead of degrading to a linear scan.
const maxFingerWalk = 16

// MaxLevel bounds the tower height. 2^32 elements is far beyond the 500 KB
// document limit the Google Documents service enforced.
const MaxLevel = 32

// ErrIndexRange reports an out-of-range ordinal or weight index.
var ErrIndexRange = errors.New("skiplist: index out of range")

// towerLink is one level of a node's tower: the forward pointer together
// with the aggregate over the elements in (this, to] — everything the
// pointer skips including its destination. Keeping the pointer and its
// three counts in one struct slice (instead of four parallel slices) means
// one allocation per node and one cache line per level on the descent.
type towerLink[V any] struct {
	to    *node[V]
	elems int
	w1    int
	w2    int
}

type node[V any] struct {
	value V
	w1    int // primary weight (plaintext characters)
	w2    int // secondary weight (ciphertext units)

	tower []towerLink[V]
}

// finger caches the outcome of the last positional search: the element at
// ordinal ord together with the weight prefix sums of everything strictly
// before it. A nil node means the finger is invalid.
type finger[V any] struct {
	node     *node[V]
	ord      int
	beforeW1 int
	beforeW2 int
}

// List is an indexed skip list. The zero value is not usable; construct
// with New. A List is not safe for concurrent use; the document model
// serializes access.
type List[V any] struct {
	head   *node[V]
	level  int // highest level in use, >= 1
	length int
	sumW1  int
	sumW2  int
	rng    uint64 // SplitMix64 state for tower heights

	// Search-finger cache (see SetFinger). Mutations at or before the
	// fingered ordinal invalidate it; mutations strictly after leave the
	// cached prefix sums intact.
	fingerOff bool
	fg        finger[V]

	// sp is the reusable pathTo scratch (see searchPath).
	sp searchPath[V]
}

// New returns an empty list. Tower heights are drawn from a deterministic
// generator seeded with seed, making structure (and therefore benchmarks)
// reproducible; the seed has no security role.
func New[V any](seed uint64) *List[V] {
	return &List[V]{
		head: &node[V]{tower: make([]towerLink[V], MaxLevel)},
		level: 1,
		rng:   seed ^ 0x9e3779b97f4a7c15,
	}
}

// Len returns the number of elements.
func (l *List[V]) Len() int { return l.length }

// TotalPrimary returns the sum of primary weights (total plaintext chars).
func (l *List[V]) TotalPrimary() int { return l.sumW1 }

// TotalSecondary returns the sum of secondary weights (total cipher units).
func (l *List[V]) TotalSecondary() int { return l.sumW2 }

// SetFinger enables or disables the search-finger cache (enabled by
// default). The cache remembers where the last positional search ended so
// that sequential and local seeks skip the O(log n) tower descent; results
// are identical either way. Disabling is for benchmarks that want to
// measure the uncached walk.
func (l *List[V]) SetFinger(enabled bool) {
	l.fingerOff = !enabled
	l.fg = finger[V]{}
}

// invalidateFinger drops the cached position if a mutation at ordinal k
// could have moved it or changed the weight prefix before it. strict
// distinguishes mutations that leave the fingered element itself intact
// (SetAt at the fingered ordinal keeps the finger; InsertAt or DeleteAt
// there does not).
func (l *List[V]) invalidateFinger(k int, strict bool) {
	if l.fg.node == nil {
		return
	}
	if k < l.fg.ord || (!strict && k == l.fg.ord) {
		l.fg = finger[V]{}
	}
}

// fingerSeek tries to answer FindPrimary(p) from the cached position by
// walking forward at the bottom level. It returns ok=false when the finger
// is invalid, p lies before it, or the walk exceeds maxFingerWalk hops.
func (l *List[V]) fingerSeek(p int) (Pos[V], bool) {
	if l.fingerOff || l.fg.node == nil || p < l.fg.beforeW1 {
		return Pos[V]{}, false
	}
	x := l.fg.node
	ord, b1, b2 := l.fg.ord, l.fg.beforeW1, l.fg.beforeW2
	rem := p - b1
	for steps := 0; steps <= maxFingerWalk; steps++ {
		if x == nil {
			// Invariant breach (p < sumW1 guarantees a containing
			// element); let the descent path report it.
			return Pos[V]{}, false
		}
		if rem < x.w1 {
			l.fg = finger[V]{node: x, ord: ord, beforeW1: b1, beforeW2: b2}
			return Pos[V]{
				Ordinal:  ord,
				Value:    x.value,
				W1:       x.w1,
				W2:       x.w2,
				BeforeW1: b1,
				BeforeW2: b2,
				Offset:   rem,
			}, true
		}
		rem -= x.w1
		b1 += x.w1
		b2 += x.w2
		ord++
		x = x.tower[0].to
	}
	return Pos[V]{}, false
}

func (l *List[V]) randomLevel() int {
	// SplitMix64 step; one draw gives 64 coin flips, plenty for p = 1/2.
	l.rng += 0x9e3779b97f4a7c15
	z := l.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	level := 1
	for z&1 == 1 && level < MaxLevel {
		level++
		z >>= 1
	}
	return level
}

// Pos describes an element located by a search.
type Pos[V any] struct {
	Ordinal int // element index, 0-based
	Value   V
	W1      int // the element's primary weight
	W2      int // the element's secondary weight

	// Prefix sums over all elements strictly before this one.
	BeforeW1 int
	BeforeW2 int

	// Offset of the searched primary index within the element
	// (only meaningful for FindPrimary).
	Offset int
}

// FindPrimary locates the element containing primary index p
// (0 <= p < TotalPrimary). This is Algorithm 1 of the paper, with the
// prefix sums of both weight dimensions accumulated along the way.
func (l *List[V]) FindPrimary(p int) (Pos[V], error) {
	if p < 0 || p >= l.sumW1 {
		return Pos[V]{}, fmt.Errorf("%w: primary index %d, total %d", ErrIndexRange, p, l.sumW1)
	}
	if pos, ok := l.fingerSeek(p); ok {
		metricFingerHits.Inc()
		return pos, nil
	}
	if !l.fingerOff {
		metricFingerMisses.Inc()
	}
	x := l.head
	rem := p
	ordinal, beforeW1, beforeW2 := 0, 0, 0
	steps := 0
	for i := l.level - 1; i >= 0; i-- {
		for {
			lnk := &x.tower[i]
			if lnk.to == nil || rem < lnk.w1 {
				break
			}
			rem -= lnk.w1
			beforeW1 += lnk.w1
			beforeW2 += lnk.w2
			ordinal += lnk.elems
			x = lnk.to
			steps++
		}
	}
	metricSeekSteps.Observe(float64(steps))
	target := x.tower[0].to
	if target == nil {
		// Unreachable while invariants hold (p < sumW1 guarantees a
		// containing element); guard against corruption anyway.
		return Pos[V]{}, fmt.Errorf("%w: primary index %d fell off the list", ErrIndexRange, p)
	}
	if !l.fingerOff {
		l.fg = finger[V]{node: target, ord: ordinal, beforeW1: beforeW1, beforeW2: beforeW2}
	}
	return Pos[V]{
		Ordinal:  ordinal,
		Value:    target.value,
		W1:       target.w1,
		W2:       target.w2,
		BeforeW1: beforeW1,
		BeforeW2: beforeW2,
		Offset:   rem,
	}, nil
}

// FindOrdinal locates the k-th element (0-based).
func (l *List[V]) FindOrdinal(k int) (Pos[V], error) {
	if k < 0 || k >= l.length {
		return Pos[V]{}, fmt.Errorf("%w: ordinal %d, length %d", ErrIndexRange, k, l.length)
	}
	x := l.head
	rem := k
	beforeW1, beforeW2 := 0, 0
	for i := l.level - 1; i >= 0; i-- {
		for {
			lnk := &x.tower[i]
			if lnk.to == nil || rem < lnk.elems {
				break
			}
			rem -= lnk.elems
			beforeW1 += lnk.w1
			beforeW2 += lnk.w2
			x = lnk.to
		}
	}
	target := x.tower[0].to
	if target == nil {
		return Pos[V]{}, fmt.Errorf("%w: ordinal %d fell off the list", ErrIndexRange, k)
	}
	if !l.fingerOff {
		l.fg = finger[V]{node: target, ord: k, beforeW1: beforeW1, beforeW2: beforeW2}
	}
	return Pos[V]{
		Ordinal:  k,
		Value:    target.value,
		W1:       target.w1,
		W2:       target.w2,
		BeforeW1: beforeW1,
		BeforeW2: beforeW2,
	}, nil
}

// searchPath captures the descent toward element ordinal k: for each level,
// the last node strictly before ordinal k, its element rank, and the prefix
// weight sums accumulated when leaving that level. bottomW1/bottomW2 are the
// weight sums of all elements strictly before ordinal k. The arrays are
// inline so a List can keep one reusable instance (a List is single-threaded
// by contract) and pathTo allocates nothing.
type searchPath[V any] struct {
	update             [MaxLevel]*node[V]
	ranks              [MaxLevel]int
	prefW1, prefW2     [MaxLevel]int
	bottomW1, bottomW2 int
}

// pathTo computes the search path toward element ordinal k (so inserting
// after update[0] places a node at ordinal k). The returned path is the
// list's reusable scratch: it is valid only until the next pathTo call.
func (l *List[V]) pathTo(k int) *searchPath[V] {
	p := &l.sp
	x := l.head
	rank, aw1, aw2 := 0, 0, 0
	for i := l.level - 1; i >= 0; i-- {
		for {
			lnk := &x.tower[i]
			if lnk.to == nil || rank+lnk.elems > k {
				break
			}
			rank += lnk.elems
			aw1 += lnk.w1
			aw2 += lnk.w2
			x = lnk.to
		}
		p.update[i] = x
		p.ranks[i] = rank
		p.prefW1[i] = aw1
		p.prefW2[i] = aw2
	}
	for i := l.level; i < MaxLevel; i++ {
		p.update[i] = l.head
	}
	p.bottomW1, p.bottomW2 = aw1, aw2
	return p
}

// InsertAt inserts value with the given weights so that it becomes element
// ordinal k (0 <= k <= Len()). Expected O(log n).
func (l *List[V]) InsertAt(k int, value V, w1, w2 int) error {
	if k < 0 || k > l.length {
		return fmt.Errorf("%w: insert ordinal %d, length %d", ErrIndexRange, k, l.length)
	}
	if w1 < 0 || w2 < 0 {
		return fmt.Errorf("%w: negative weight (%d, %d)", ErrIndexRange, w1, w2)
	}
	p := l.pathTo(k)

	h := l.randomLevel()
	if h > l.level {
		l.level = h
	}
	z := &node[V]{
		value: value,
		w1:    w1,
		w2:    w2,
		tower: make([]towerLink[V], h),
	}

	for i := 0; i < h; i++ {
		up := p.update[i]
		// Elements and weights strictly between update[i] and the new node:
		// the bottom prefix minus the prefix where the descent left level i.
		between := k - p.ranks[i]
		bw1 := p.bottomW1 - p.prefW1[i]
		bw2 := p.bottomW2 - p.prefW2[i]

		upl := &up.tower[i]
		old := upl.to
		z.tower[i].to = old
		upl.to = z
		if old != nil {
			z.tower[i].elems = upl.elems - between
			z.tower[i].w1 = upl.w1 - bw1
			z.tower[i].w2 = upl.w2 - bw2
		}
		upl.elems = between + 1
		upl.w1 = bw1 + w1
		upl.w2 = bw2 + w2
	}
	for i := h; i < l.level; i++ {
		if upl := &p.update[i].tower[i]; upl.to != nil {
			upl.elems++
			upl.w1 += w1
			upl.w2 += w2
		}
	}

	l.length++
	l.sumW1 += w1
	l.sumW2 += w2
	l.invalidateFinger(k, false)
	return nil
}

// DeleteAt removes element ordinal k and returns its value and weights.
func (l *List[V]) DeleteAt(k int) (value V, w1, w2 int, err error) {
	if k < 0 || k >= l.length {
		var zero V
		return zero, 0, 0, fmt.Errorf("%w: delete ordinal %d, length %d", ErrIndexRange, k, l.length)
	}
	p := l.pathTo(k)
	target := p.update[0].tower[0].to
	for i := 0; i < l.level; i++ {
		upl := &p.update[i].tower[i]
		if upl.to == target {
			tl := &target.tower[i]
			upl.elems += tl.elems - 1
			upl.w1 += tl.w1 - target.w1
			upl.w2 += tl.w2 - target.w2
			upl.to = tl.to
		} else if upl.to != nil {
			upl.elems--
			upl.w1 -= target.w1
			upl.w2 -= target.w2
		}
	}
	for l.level > 1 && l.head.tower[l.level-1].to == nil {
		l.level--
	}
	l.length--
	l.sumW1 -= target.w1
	l.sumW2 -= target.w2
	l.invalidateFinger(k, false)
	return target.value, target.w1, target.w2, nil
}

// SetAt replaces the value and weights of element ordinal k, updating every
// span that covers it. Expected O(log n).
func (l *List[V]) SetAt(k int, value V, w1, w2 int) error {
	if k < 0 || k >= l.length {
		return fmt.Errorf("%w: set ordinal %d, length %d", ErrIndexRange, k, l.length)
	}
	if w1 < 0 || w2 < 0 {
		return fmt.Errorf("%w: negative weight (%d, %d)", ErrIndexRange, w1, w2)
	}
	p := l.pathTo(k)
	target := p.update[0].tower[0].to
	d1 := w1 - target.w1
	d2 := w2 - target.w2
	for i := 0; i < l.level; i++ {
		if upl := &p.update[i].tower[i]; upl.to != nil {
			// The span (update[i], to] always contains ordinal k:
			// update[i] sits strictly before it, its target at or after it.
			upl.w1 += d1
			upl.w2 += d2
		}
	}
	target.value = value
	target.w1 = w1
	target.w2 = w2
	l.sumW1 += d1
	l.sumW2 += d2
	l.invalidateFinger(k, true)
	return nil
}

// Each calls fn for every element starting at ordinal from, in order, until
// fn returns false or the list is exhausted. The walk is O(len) from the
// located start.
func (l *List[V]) Each(from int, fn func(ordinal int, value V, w1, w2 int) bool) error {
	if from < 0 || from > l.length {
		return fmt.Errorf("%w: each from %d, length %d", ErrIndexRange, from, l.length)
	}
	x := l.pathTo(from).update[0].tower[0].to
	for k := from; x != nil; k++ {
		if !fn(k, x.value, x.w1, x.w2) {
			break
		}
		x = x.tower[0].to
	}
	return nil
}

// Validate checks every structural invariant: span sums at every level must
// agree with the bottom-level truth, totals must match, and forward chains
// must be properly nested. Used by property tests; O(n · level).
func (l *List[V]) Validate() error {
	// Bottom-level truth: ordered nodes with their weights.
	var nodes []*node[V]
	for x := l.head.tower[0].to; x != nil; x = x.tower[0].to {
		nodes = append(nodes, x)
	}
	if len(nodes) != l.length {
		return fmt.Errorf("skiplist: length %d, bottom walk found %d", l.length, len(nodes))
	}
	sum1, sum2 := 0, 0
	index := make(map[*node[V]]int, len(nodes))
	for i, n := range nodes {
		sum1 += n.w1
		sum2 += n.w2
		index[n] = i
	}
	if sum1 != l.sumW1 || sum2 != l.sumW2 {
		return fmt.Errorf("skiplist: totals (%d,%d), walk found (%d,%d)", l.sumW1, l.sumW2, sum1, sum2)
	}
	for lev := 0; lev < l.level; lev++ {
		x := l.head
		at := -1 // ordinal of x; head = -1
		for x.tower[lev].to != nil {
			y := x.tower[lev].to
			j, ok := index[y]
			if !ok {
				return fmt.Errorf("skiplist: level %d points to unknown node", lev)
			}
			if j <= at {
				return fmt.Errorf("skiplist: level %d not ascending (%d -> %d)", lev, at, j)
			}
			wantElems := j - at
			want1, want2 := 0, 0
			for t := at + 1; t <= j; t++ {
				want1 += nodes[t].w1
				want2 += nodes[t].w2
			}
			if lnk := x.tower[lev]; lnk.elems != wantElems || lnk.w1 != want1 || lnk.w2 != want2 {
				return fmt.Errorf("skiplist: level %d span at ordinal %d = (%d,%d,%d), want (%d,%d,%d)",
					lev, at, lnk.elems, lnk.w1, lnk.w2, wantElems, want1, want2)
			}
			x = y
			at = j
		}
	}
	return nil
}

// String renders the tower structure for debugging, in the spirit of the
// paper's Figure 3.
func (l *List[V]) String() string {
	var b strings.Builder
	for i := l.level - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "L%-2d head", i)
		for x := l.head; x != nil && x.tower[i].to != nil; x = x.tower[i].to {
			fmt.Fprintf(&b, " -(%d,%d,%d)-> %v", x.tower[i].elems, x.tower[i].w1, x.tower[i].w2, x.tower[i].to.value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
