package skiplist

// Builder constructs a List by appending elements in order, in O(1)
// amortized time per element (the incremental InsertAt pays O(log n) per
// element, which matters when a whole document is loaded: §VII's
// initial-load cost). The builder keeps the rightmost node and prefix sums
// at every level, so each append only touches the new node's tower.
type Builder[V any] struct {
	list *List[V]

	tails   [MaxLevel]*node[V]
	tailPos [MaxLevel]int // ordinal of tails[i] (-1 for head)
	tailW1  [MaxLevel]int // prefix W1 through tails[i]
	tailW2  [MaxLevel]int // prefix W2 through tails[i]
}

// NewBuilder starts building a list with the given structure seed.
func NewBuilder[V any](seed uint64) *Builder[V] {
	b := &Builder[V]{list: New[V](seed)}
	for i := range b.tails {
		b.tails[i] = b.list.head
		b.tailPos[i] = -1
	}
	return b
}

// Append adds an element after all existing ones.
func (b *Builder[V]) Append(value V, w1, w2 int) {
	l := b.list
	n := l.length // ordinal of the new node
	h := l.randomLevel()
	if h > l.level {
		l.level = h
	}
	z := &node[V]{
		value:     value,
		w1:        w1,
		w2:        w2,
		forward:   make([]*node[V], h),
		spanElems: make([]int, h),
		spanW1:    make([]int, h),
		spanW2:    make([]int, h),
	}
	newW1 := l.sumW1 + w1
	newW2 := l.sumW2 + w2
	for i := 0; i < h; i++ {
		t := b.tails[i]
		t.forward[i] = z
		t.spanElems[i] = n - b.tailPos[i]
		t.spanW1[i] = newW1 - b.tailW1[i]
		t.spanW2[i] = newW2 - b.tailW2[i]
		b.tails[i] = z
		b.tailPos[i] = n
		b.tailW1[i] = newW1
		b.tailW2[i] = newW2
	}
	l.length++
	l.sumW1 = newW1
	l.sumW2 = newW2
}

// List finalizes and returns the built list. The builder must not be used
// afterwards.
func (b *Builder[V]) List() *List[V] {
	l := b.list
	b.list = nil
	return l
}
