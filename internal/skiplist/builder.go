package skiplist

// Slab sizing for Builder's node and tower-link arenas. With p = 1/2 tower
// heights the expected total links for n nodes is 2n, so the link chunk is
// twice the node chunk.
const (
	builderNodeChunk = 512
	builderLinkChunk = 2 * builderNodeChunk
)

// Builder constructs a List by appending elements in order, in O(1)
// amortized time per element (the incremental InsertAt pays O(log n) per
// element, which matters when a whole document is loaded: §VII's
// initial-load cost). The builder keeps the rightmost node and prefix sums
// at every level, so each append only touches the new node's tower. Nodes
// and tower links come from slab arenas — two allocations per chunk of
// elements instead of two per element; call Grow with the expected element
// count to size the slabs in one step.
type Builder[V any] struct {
	list *List[V]

	tails   [MaxLevel]*node[V]
	tailPos [MaxLevel]int // ordinal of tails[i] (-1 for head)
	tailW1  [MaxLevel]int // prefix W1 through tails[i]
	tailW2  [MaxLevel]int // prefix W2 through tails[i]

	nodeSlab []node[V]      // spare capacity for upcoming nodes
	linkSlab []towerLink[V] // spare capacity for upcoming towers
}

// NewBuilder starts building a list with the given structure seed.
func NewBuilder[V any](seed uint64) *Builder[V] {
	b := &Builder[V]{list: New[V](seed)}
	for i := range b.tails {
		b.tails[i] = b.list.head
		b.tailPos[i] = -1
	}
	return b
}

// Grow pre-sizes the slab arenas for n upcoming appends, so a bulk load
// allocates its nodes and links in one step each. A hint, not a limit:
// appending more than n elements just falls back to chunked slab growth.
func (b *Builder[V]) Grow(n int) {
	if n > len(b.nodeSlab) {
		b.nodeSlab = make([]node[V], n)
	}
	// 2n is only the expected total height; MaxLevel of headroom makes an
	// unlucky draw cheap to absorb.
	if want := 2*n + MaxLevel; want > len(b.linkSlab) {
		b.linkSlab = make([]towerLink[V], want)
	}
}

// newNode carves a node with a height-h tower out of the slabs.
func (b *Builder[V]) newNode(h int) *node[V] {
	if len(b.nodeSlab) == 0 {
		b.nodeSlab = make([]node[V], builderNodeChunk)
	}
	z := &b.nodeSlab[0]
	b.nodeSlab = b.nodeSlab[1:]
	if len(b.linkSlab) < h {
		b.linkSlab = make([]towerLink[V], builderLinkChunk)
	}
	z.tower = b.linkSlab[:h:h]
	b.linkSlab = b.linkSlab[h:]
	return z
}

// Append adds an element after all existing ones.
func (b *Builder[V]) Append(value V, w1, w2 int) {
	l := b.list
	n := l.length // ordinal of the new node
	h := l.randomLevel()
	if h > l.level {
		l.level = h
	}
	z := b.newNode(h)
	z.value = value
	z.w1 = w1
	z.w2 = w2
	newW1 := l.sumW1 + w1
	newW2 := l.sumW2 + w2
	for i := 0; i < h; i++ {
		t := b.tails[i]
		t.tower[i] = towerLink[V]{
			to:    z,
			elems: n - b.tailPos[i],
			w1:    newW1 - b.tailW1[i],
			w2:    newW2 - b.tailW2[i],
		}
		b.tails[i] = z
		b.tailPos[i] = n
		b.tailW1[i] = newW1
		b.tailW2[i] = newW2
	}
	l.length++
	l.sumW1 = newW1
	l.sumW2 = newW2
}

// List finalizes and returns the built list. The builder must not be used
// afterwards.
func (b *Builder[V]) List() *List[V] {
	l := b.list
	b.list = nil
	return l
}
