package skiplist

import (
	"math/rand"
	"testing"
)

// twin drives two structurally identical lists — one with the finger cache
// enabled, one without — through the same operations and requires every
// search on one to equal the same search on the other. The same seed makes
// the tower heights, and therefore the structures, identical.
type twin struct {
	on, off *List[int]
}

func newTwin(seed uint64) *twin {
	tw := &twin{on: New[int](seed), off: New[int](seed)}
	tw.off.SetFinger(false)
	return tw
}

func (tw *twin) insert(t *testing.T, k, v, w1, w2 int) {
	t.Helper()
	if err := tw.on.InsertAt(k, v, w1, w2); err != nil {
		t.Fatalf("insert(on) at %d: %v", k, err)
	}
	if err := tw.off.InsertAt(k, v, w1, w2); err != nil {
		t.Fatalf("insert(off) at %d: %v", k, err)
	}
}

func (tw *twin) delete(t *testing.T, k int) {
	t.Helper()
	if _, _, _, err := tw.on.DeleteAt(k); err != nil {
		t.Fatalf("delete(on) at %d: %v", k, err)
	}
	if _, _, _, err := tw.off.DeleteAt(k); err != nil {
		t.Fatalf("delete(off) at %d: %v", k, err)
	}
}

func (tw *twin) set(t *testing.T, k, v, w1, w2 int) {
	t.Helper()
	if err := tw.on.SetAt(k, v, w1, w2); err != nil {
		t.Fatalf("set(on) at %d: %v", k, err)
	}
	if err := tw.off.SetAt(k, v, w1, w2); err != nil {
		t.Fatalf("set(off) at %d: %v", k, err)
	}
}

func (tw *twin) seekPrimary(t *testing.T, p int) {
	t.Helper()
	a, errA := tw.on.FindPrimary(p)
	b, errB := tw.off.FindPrimary(p)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("FindPrimary(%d): cached err=%v, uncached err=%v", p, errA, errB)
	}
	if errA == nil && a != b {
		t.Fatalf("FindPrimary(%d): cached %+v, uncached %+v", p, a, b)
	}
}

func (tw *twin) seekOrdinal(t *testing.T, k int) {
	t.Helper()
	a, errA := tw.on.FindOrdinal(k)
	b, errB := tw.off.FindOrdinal(k)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("FindOrdinal(%d): cached err=%v, uncached err=%v", k, errA, errB)
	}
	if errA == nil && a != b {
		t.Fatalf("FindOrdinal(%d): cached %+v, uncached %+v", k, a, b)
	}
}

// TestFingerSequentialSeeks covers the pattern the cache is for: a strict
// left-to-right scan of every primary position, twice, with the second
// pass offset so hits land mid-block.
func TestFingerSequentialSeeks(t *testing.T) {
	tw := newTwin(7)
	for i := 0; i < 300; i++ {
		tw.insert(t, i, i, 1+i%8, 52)
	}
	total := tw.on.TotalPrimary()
	for p := 0; p < total; p++ {
		tw.seekPrimary(t, p)
	}
	for p := total - 1; p >= 0; p-- {
		tw.seekPrimary(t, p)
	}
	if err := tw.on.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFingerInvalidationEdges pins the exact invalidation boundaries:
// a mutation strictly after the fingered ordinal must keep the cache
// valid, one at or before it must not poison later seeks.
func TestFingerInvalidationEdges(t *testing.T) {
	for _, mutate := range []string{"insert-before", "insert-at", "insert-after",
		"delete-before", "delete-at", "delete-after",
		"set-before", "set-at", "set-after"} {
		tw := newTwin(11)
		for i := 0; i < 64; i++ {
			tw.insert(t, i, i, 4, 52)
		}
		// Prime the finger at ordinal 32 (primary 128..131).
		tw.seekPrimary(t, 130)
		switch mutate {
		case "insert-before":
			tw.insert(t, 10, 999, 3, 52)
		case "insert-at":
			tw.insert(t, 32, 999, 3, 52)
		case "insert-after":
			tw.insert(t, 40, 999, 3, 52)
		case "delete-before":
			tw.delete(t, 10)
		case "delete-at":
			tw.delete(t, 32)
		case "delete-after":
			tw.delete(t, 40)
		case "set-before":
			tw.set(t, 10, 999, 7, 52)
		case "set-at":
			tw.set(t, 32, 999, 7, 52)
		case "set-after":
			tw.set(t, 40, 999, 7, 52)
		}
		total := tw.on.TotalPrimary()
		for _, p := range []int{0, 125, 128, 130, 131, 140, total - 1} {
			if p >= 0 && p < total {
				tw.seekPrimary(t, p)
			}
		}
		if err := tw.on.Validate(); err != nil {
			t.Fatalf("%s: %v", mutate, err)
		}
	}
}

// TestFingerRandomOpsEquivalence is the main equivalence property test: a
// long random interleaving of inserts, deletes, weight updates, and seeks
// must be indistinguishable from the uncached list at every step.
func TestFingerRandomOpsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2011))
	tw := newTwin(13)
	for step := 0; step < 20_000; step++ {
		n := tw.on.Len()
		switch op := rng.Intn(10); {
		case op < 3 || n == 0: // insert
			tw.insert(t, rng.Intn(n+1), step, rng.Intn(9), rng.Intn(3)*26)
		case op < 4: // delete
			tw.delete(t, rng.Intn(n))
		case op < 5: // set
			tw.set(t, rng.Intn(n), step, rng.Intn(9), rng.Intn(3)*26)
		case op < 8: // primary seek, biased local around the last one
			if total := tw.on.TotalPrimary(); total > 0 {
				p := rng.Intn(total)
				if rng.Intn(2) == 0 && tw.on.fg.node != nil {
					p = tw.on.fg.beforeW1 + rng.Intn(32)
					if p >= total {
						p = total - 1
					}
				}
				tw.seekPrimary(t, p)
			}
		default: // ordinal seek
			tw.seekOrdinal(t, rng.Intn(n))
		}
	}
	if err := tw.on.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tw.off.Validate(); err != nil {
		t.Fatal(err)
	}
}

// FuzzFingerEquivalence drives both lists from a fuzz-provided op tape.
// Each byte pair is one operation; the fuzzer explores invalidation
// interleavings the random test may miss.
func FuzzFingerEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 4, 0, 0, 1, 4, 1, 2, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 4, 3, 3, 1, 4, 0, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tw := newTwin(17)
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i]%5, int(tape[i+1])
			n := tw.on.Len()
			switch op {
			case 0: // insert
				tw.insert(t, arg%(n+1), i, 1+arg%8, 52)
			case 1: // delete
				if n > 0 {
					tw.delete(t, arg%n)
				}
			case 2: // set
				if n > 0 {
					tw.set(t, arg%n, i, 1+arg%8, 52)
				}
			case 3: // ordinal seek
				if n > 0 {
					tw.seekOrdinal(t, arg%n)
				}
			default: // primary seek
				if total := tw.on.TotalPrimary(); total > 0 {
					tw.seekPrimary(t, arg%total)
				}
			}
		}
		if err := tw.on.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// BenchmarkFindPrimarySequential measures the sequential-seek pattern with
// the finger cache on and off.
func BenchmarkFindPrimarySequential(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"finger", true}, {"descent", false}} {
		b.Run(mode.name, func(b *testing.B) {
			l := New[int](3)
			for i := 0; i < 4096; i++ {
				if err := l.InsertAt(i, i, 8, 52); err != nil {
					b.Fatal(err)
				}
			}
			l.SetFinger(mode.enabled)
			total := l.TotalPrimary()
			b.ResetTimer()
			p := 0
			for i := 0; i < b.N; i++ {
				if _, err := l.FindPrimary(p); err != nil {
					b.Fatal(err)
				}
				p += 3
				if p >= total {
					p = 0
				}
			}
		})
	}
}
