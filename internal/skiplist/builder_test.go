package skiplist

import (
	"math/rand"
	"testing"
)

func TestBuilderMatchesIncrementalBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{0, 1, 2, 7, 100, 2000} {
		b := NewBuilder[int](9)
		ref := New[int](9) // same seed: identical tower heights
		for i := 0; i < n; i++ {
			w1 := 1 + rng.Intn(8)
			w2 := 1 + rng.Intn(50)
			b.Append(i, w1, w2)
			if err := ref.InsertAt(i, i, w1, w2); err != nil {
				t.Fatalf("InsertAt: %v", err)
			}
		}
		l := b.List()
		if err := l.Validate(); err != nil {
			t.Fatalf("n=%d: Validate: %v", n, err)
		}
		if l.Len() != ref.Len() || l.TotalPrimary() != ref.TotalPrimary() || l.TotalSecondary() != ref.TotalSecondary() {
			t.Fatalf("n=%d: totals differ", n)
		}
		for k := 0; k < l.Len(); k++ {
			got, err := l.FindOrdinal(k)
			if err != nil {
				t.Fatalf("FindOrdinal(%d): %v", k, err)
			}
			want, err := ref.FindOrdinal(k)
			if err != nil {
				t.Fatalf("ref FindOrdinal(%d): %v", k, err)
			}
			if got.Value != want.Value || got.W1 != want.W1 || got.BeforeW2 != want.BeforeW2 {
				t.Fatalf("n=%d k=%d: built %+v, ref %+v", n, k, got, want)
			}
		}
	}
}

func TestBuilderListSupportsEdits(t *testing.T) {
	b := NewBuilder[string](13)
	for i := 0; i < 500; i++ {
		b.Append("v", 2, 3)
	}
	l := b.List()
	if err := l.InsertAt(250, "mid", 1, 1); err != nil {
		t.Fatalf("InsertAt: %v", err)
	}
	if _, _, _, err := l.DeleteAt(100); err != nil {
		t.Fatalf("DeleteAt: %v", err)
	}
	if err := l.SetAt(0, "head", 5, 5); err != nil {
		t.Fatalf("SetAt: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate after edits: %v", err)
	}
	pos, err := l.FindPrimary(0)
	if err != nil || pos.Value != "head" {
		t.Errorf("FindPrimary(0) = (%+v, %v)", pos, err)
	}
}

func BenchmarkBuildSequential(b *testing.B) {
	const n = 10000
	b.Run("builder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bu := NewBuilder[int](7)
			for j := 0; j < n; j++ {
				bu.Append(j, 8, 28)
			}
			if bu.List().Len() != n {
				b.Fatal("bad length")
			}
		}
	})
	b.Run("insertAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := New[int](7)
			for j := 0; j < n; j++ {
				if err := l.InsertAt(j, j, 8, 28); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
