// Package stego implements the extension §VI of the paper sketches under
// "Availability": "The server could recognize the use of encryption and
// refuse to store any content that appears to be encrypted. To cope with
// this situation, our tool could be extended using existing results in
// stenography to make it difficult for the server [to] identify encrypted
// documents."
//
// The encoding maps each Base32 transport symbol to a common four-letter
// English word, producing documents that read as (nonsensical but
// plausible-looking) prose instead of a wall of Base32. Because every
// symbol maps to a fixed five-character token ("word "), ciphertext
// offsets scale by exactly 5, so the incremental ciphertext deltas keep
// working: TransformDelta rescales a delta on the Base32 transport into
// the equivalent delta on the stego text.
//
// Scope, honestly stated (the paper: "it may be impractical for realistic
// applications"): this defeats charset- and format-based classifiers, not
// statistical analysis — a 32-word vocabulary in fixed positions is
// detectable by anyone who looks for it.
package stego

import (
	"errors"
	"fmt"
	"strings"

	"privedit/internal/delta"
)

// SymbolWidth is the stego characters emitted per transport character.
const SymbolWidth = 5

// vocabulary maps each of the 32 Base32 symbols to a four-letter word.
var vocabulary = [32]string{
	"time", "year", "work", "life", "hand", "part", "eyes", "week",
	"case", "line", "city", "area", "team", "game", "book", "road",
	"food", "door", "wind", "rain", "fire", "snow", "tree", "bird",
	"fish", "moon", "star", "lake", "hill", "rock", "sand", "wave",
}

// symbolIndex inverts the Base32 alphabet (A-Z, 2-7).
func symbolIndex(c byte) (int, bool) {
	switch {
	case c >= 'A' && c <= 'Z':
		return int(c - 'A'), true
	case c >= '2' && c <= '7':
		return int(c-'2') + 26, true
	default:
		return 0, false
	}
}

func indexSymbol(i int) byte {
	if i < 26 {
		return byte('A' + i)
	}
	return byte('2' + i - 26)
}

var wordIndex = func() map[string]int {
	m := make(map[string]int, len(vocabulary))
	for i, w := range vocabulary {
		m[w] = i
	}
	return m
}()

// Errors.
var (
	ErrNotTransport = errors.New("stego: input is not Base32 transport text")
	ErrNotStego     = errors.New("stego: input is not stego prose")
)

// Encode converts Base32 transport text into word prose. Every input
// character becomes exactly SymbolWidth output characters.
func Encode(transport string) (string, error) {
	var b strings.Builder
	b.Grow(len(transport) * SymbolWidth)
	for i := 0; i < len(transport); i++ {
		idx, ok := symbolIndex(transport[i])
		if !ok {
			return "", fmt.Errorf("%w: invalid symbol at offset %d", ErrNotTransport, i)
		}
		b.WriteString(vocabulary[idx])
		b.WriteByte(' ')
	}
	return b.String(), nil
}

// Decode converts word prose back into Base32 transport text.
func Decode(text string) (string, error) {
	if len(text)%SymbolWidth != 0 {
		return "", fmt.Errorf("%w: length %d not a multiple of %d", ErrNotStego, len(text), SymbolWidth)
	}
	var b strings.Builder
	b.Grow(len(text) / SymbolWidth)
	for i := 0; i < len(text); i += SymbolWidth {
		tok := text[i : i+SymbolWidth]
		if tok[SymbolWidth-1] != ' ' {
			return "", fmt.Errorf("%w: malformed token at offset %d", ErrNotStego, i)
		}
		idx, ok := wordIndex[tok[:SymbolWidth-1]]
		if !ok {
			return "", fmt.Errorf("%w: unknown word at offset %d", ErrNotStego, i)
		}
		b.WriteByte(indexSymbol(idx))
	}
	return b.String(), nil
}

// TransformDelta rescales a ciphertext delta expressed against the Base32
// transport into the equivalent delta against the stego prose: retain and
// delete counts multiply by SymbolWidth; insert payloads are re-encoded.
func TransformDelta(cd delta.Delta) (delta.Delta, error) {
	out := make(delta.Delta, 0, len(cd))
	for _, op := range cd {
		switch op.Kind {
		case delta.Retain:
			out = append(out, delta.RetainOp(op.N*SymbolWidth))
		case delta.Delete:
			out = append(out, delta.DeleteOp(op.N*SymbolWidth))
		case delta.Insert:
			enc, err := Encode(op.Str)
			if err != nil {
				return nil, err
			}
			out = append(out, delta.InsertOp(enc))
		default:
			return nil, fmt.Errorf("stego: invalid op kind %d", op.Kind)
		}
	}
	return out.Normalize(), nil
}

// LooksInnocuous reports whether text consists only of lowercase words and
// spaces — the property that defeats a charset-based ciphertext detector.
func LooksInnocuous(text string) bool {
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c != ' ' && (c < 'a' || c > 'z') {
			return false
		}
	}
	return true
}
