package stego

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"privedit/internal/crypt"
	"privedit/internal/delta"
)

func randomTransport(n int) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
	src := crypt.NewSeededNonceSource(uint64(n))
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[src.Nonce64()%32])
	}
	return b.String()
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		transport := crypt.EncodeTransport(raw)
		text, err := Encode(transport)
		if err != nil {
			return false
		}
		back, err := Decode(text)
		return err == nil && back == transport
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("round trip: %v", err)
	}
}

func TestEncodeWidth(t *testing.T) {
	transport := randomTransport(137)
	text, err := Encode(transport)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(text) != len(transport)*SymbolWidth {
		t.Errorf("width %d, want %d", len(text), len(transport)*SymbolWidth)
	}
}

func TestEncodedTextLooksInnocuous(t *testing.T) {
	text, err := Encode(randomTransport(500))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !LooksInnocuous(text) {
		t.Error("stego text fails its own innocuousness check")
	}
	// A naive ciphertext detector: long runs without spaces, uppercase,
	// digits. None present.
	if strings.ContainsAny(text, "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ=+/") {
		t.Error("stego text contains ciphertext-looking bytes")
	}
	for _, w := range strings.Fields(text) {
		if len(w) != 4 {
			t.Fatalf("word %q not 4 letters", w)
		}
	}
}

func TestBase32TransportIsNotInnocuous(t *testing.T) {
	if LooksInnocuous(randomTransport(100)) {
		t.Error("raw transport passes the innocuousness check; test is vacuous")
	}
}

func TestEncodeRejectsNonTransport(t *testing.T) {
	for _, s := range []string{"lowercase", "has space", "punct!", "digit01"} {
		if _, err := Encode(s); !errors.Is(err, ErrNotTransport) {
			t.Errorf("Encode(%q) = %v, want ErrNotTransport", s, err)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	text, err := Encode(randomTransport(20))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []string{
		text[:len(text)-1],                 // bad length
		"zzzz " + text[SymbolWidth:],       // unknown word
		strings.Replace(text, " ", "x", 1), // missing separator
	}
	for i, s := range cases {
		if _, err := Decode(s); !errors.Is(err, ErrNotStego) {
			t.Errorf("case %d: Decode = %v, want ErrNotStego", i, err)
		}
	}
}

func TestVocabularyDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range vocabulary {
		if len(w) != SymbolWidth-1 {
			t.Errorf("word %q has length %d", w, len(w))
		}
		if seen[w] {
			t.Errorf("duplicate word %q", w)
		}
		seen[w] = true
	}
	if len(seen) != 32 {
		t.Errorf("vocabulary has %d distinct words", len(seen))
	}
}

func TestSymbolMapBijective(t *testing.T) {
	for i := 0; i < 32; i++ {
		c := indexSymbol(i)
		j, ok := symbolIndex(c)
		if !ok || j != i {
			t.Errorf("symbol %d -> %q -> %d", i, c, j)
		}
	}
	if _, ok := symbolIndex('a'); ok {
		t.Error("lowercase accepted as Base32 symbol")
	}
	if _, ok := symbolIndex('0'); ok {
		t.Error("'0' accepted as Base32 symbol")
	}
}

func TestTransformDeltaEquivalence(t *testing.T) {
	// Applying cd to transport, then encoding, must equal encoding the
	// transport and applying the transformed delta — for arbitrary
	// aligned deltas.
	transport := randomTransport(300)
	cases := []delta.Delta{
		{delta.RetainOp(10), delta.DeleteOp(20), delta.InsertOp(randomTransport(15))},
		{delta.InsertOp(randomTransport(5))},
		{delta.RetainOp(299), delta.DeleteOp(1)},
		{delta.DeleteOp(300), delta.InsertOp(randomTransport(7))},
		{delta.RetainOp(1), delta.InsertOp(randomTransport(1)), delta.RetainOp(200), delta.DeleteOp(50)},
	}
	for i, cd := range cases {
		newTransport, err := cd.Apply(transport)
		if err != nil {
			t.Fatalf("case %d: apply: %v", i, err)
		}
		wantText, err := Encode(newTransport)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		oldText, err := Encode(transport)
		if err != nil {
			t.Fatalf("case %d: encode old: %v", i, err)
		}
		sd, err := TransformDelta(cd)
		if err != nil {
			t.Fatalf("case %d: TransformDelta: %v", i, err)
		}
		gotText, err := sd.Apply(oldText)
		if err != nil {
			t.Fatalf("case %d: apply stego delta: %v", i, err)
		}
		if gotText != wantText {
			t.Errorf("case %d: stego delta diverges", i)
		}
	}
}

func TestTransformDeltaRejectsInvalid(t *testing.T) {
	if _, err := TransformDelta(delta.Delta{{Kind: 0}}); err == nil {
		t.Error("invalid op accepted")
	}
	if _, err := TransformDelta(delta.Delta{delta.InsertOp("not base32!")}); err == nil {
		t.Error("non-transport insert accepted")
	}
}
