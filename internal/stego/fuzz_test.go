package stego

import "testing"

// FuzzDecode must never panic, and anything it accepts must re-encode to
// the identical prose.
func FuzzDecode(f *testing.F) {
	good, _ := Encode("KBLEKRBRAEE234XYZ")
	f.Add(good)
	f.Add("")
	f.Add("time year ")
	f.Add("timeXyear ")
	f.Add("zzzz ")
	f.Fuzz(func(t *testing.T, text string) {
		transport, err := Decode(text)
		if err != nil {
			return
		}
		re, err := Encode(transport)
		if err != nil {
			t.Fatalf("decoded %q but cannot re-encode %q: %v", text, transport, err)
		}
		if re != text {
			t.Fatalf("unstable round trip: %q -> %q -> %q", text, transport, re)
		}
	})
}
