package recb

import (
	"errors"
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
)

func newCodec(t *testing.T, seed uint64) *Codec {
	t.Helper()
	key := make([]byte, crypt.KeySize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	c, err := New(key, crypt.NewSeededNonceSource(seed))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func chunksOf(s string, b int) [][]byte {
	var out [][]byte
	for len(s) > b {
		out = append(out, []byte(s[:b]))
		s = s[b:]
	}
	if len(s) > 0 {
		out = append(out, []byte(s))
	}
	return out
}

func TestCodecIdentity(t *testing.T) {
	c := newCodec(t, 1)
	if c.Name() != "rECB" || c.ID() != SchemeID {
		t.Errorf("identity = %s/%d", c.Name(), c.ID())
	}
	if c.RecordBytes() != 17 || c.PrefixBytes() != 16 || c.TrailerBytes() != 0 || c.MaxChars() != 8 {
		t.Errorf("geometry = %d/%d/%d/%d", c.RecordBytes(), c.PrefixBytes(), c.TrailerBytes(), c.MaxChars())
	}
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New([]byte("short"), crypt.NewSeededNonceSource(1)); err == nil {
		t.Error("New accepted short key")
	}
}

func TestEncryptDecryptAll(t *testing.T) {
	c := newCodec(t, 2)
	text := "the magic words are squeamish ossifrage"
	chunks := chunksOf(text, 8)
	prefix, blocks, trailer, err := c.EncryptAll(chunks)
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	if trailer != nil {
		t.Error("rECB produced a trailer")
	}
	records := make([][]byte, len(blocks))
	for i, b := range blocks {
		records[i] = b.Record
	}
	c2 := newCodec(t, 99)
	got, err := c2.DecryptAll(prefix, records, nil)
	if err != nil {
		t.Fatalf("DecryptAll: %v", err)
	}
	var sb strings.Builder
	for _, b := range got {
		sb.Write(b.Chars)
	}
	if sb.String() != text {
		t.Errorf("round trip = %q", sb.String())
	}
}

func TestPaperStructure(t *testing.T) {
	// §V-B: block i decrypts using only the r0 record and that block —
	// verify a single block decrypts correctly in isolation.
	c := newCodec(t, 3)
	chunks := chunksOf("independent blocks here!", 8)
	prefix, blocks, _, err := c.EncryptAll(chunks)
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	c2 := newCodec(t, 77)
	got, err := c2.DecryptAll(prefix, [][]byte{blocks[1].Record}, nil)
	if err != nil {
		t.Fatalf("single-block DecryptAll: %v", err)
	}
	if string(got[0].Chars) != "t block"+"s"[0:1] {
		// chunks of 8: "independ", "ent bloc", "ks here!" — block 1 = "ent bloc"
		if string(got[0].Chars) != "ent bloc" {
			t.Errorf("isolated block = %q, want %q", got[0].Chars, "ent bloc")
		}
	}
}

func TestSubstitutionAttackUndetected(t *testing.T) {
	// The paper concedes (§V-A, §VI-A) that the privacy-only scheme cannot
	// withstand active attacks such as replicating or swapping ciphertext
	// blocks. Demonstrate: a server that swaps two records produces a
	// document that decrypts *successfully* to altered content.
	c := newCodec(t, 4)
	chunks := chunksOf("AAAABBBBCCCCDDDD", 4)
	prefix, blocks, _, err := c.EncryptAll(chunks)
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	records := [][]byte{blocks[0].Record, blocks[1].Record, blocks[2].Record, blocks[3].Record}
	records[1], records[2] = records[2], records[1] // malicious swap
	c2 := newCodec(t, 88)
	got, err := c2.DecryptAll(prefix, records, nil)
	if err != nil {
		t.Fatalf("swap detected, but rECB should not detect it: %v", err)
	}
	var sb strings.Builder
	for _, b := range got {
		sb.Write(b.Chars)
	}
	if sb.String() != "AAAACCCCBBBBDDDD" {
		t.Errorf("swapped decryption = %q, want the swapped plaintext", sb.String())
	}
}

func TestBitFlipIsGarbledNotDetected(t *testing.T) {
	// Flipping ciphertext bits garbles the block (AES avalanche) but rECB
	// has no way to reject it unless the structural padding check happens
	// to fail. Either outcome (error or garbage) is acceptable; silent
	// *correct* decryption is not.
	c := newCodec(t, 5)
	chunks := chunksOf("tamperme", 8)
	prefix, blocks, _, err := c.EncryptAll(chunks)
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	rec := append([]byte(nil), blocks[0].Record...)
	rec[5] ^= 0x01
	c2 := newCodec(t, 66)
	got, err := c2.DecryptAll(prefix, [][]byte{rec}, nil)
	if err == nil && string(got[0].Chars) == "tamperme" {
		t.Error("bit flip decrypted to the original plaintext")
	}
}

func TestDecryptAllRejectsStructuralDamage(t *testing.T) {
	c := newCodec(t, 6)
	prefix, blocks, _, err := c.EncryptAll(chunksOf("structur", 8))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	rec := blocks[0].Record

	tests := []struct {
		name    string
		prefix  []byte
		records [][]byte
		trailer []byte
	}{
		{"short prefix", prefix[:10], [][]byte{rec}, nil},
		{"unexpected trailer", prefix, [][]byte{rec}, []byte{1, 2, 3}},
		{"short record", prefix, [][]byte{rec[:5]}, nil},
		{"zero count", prefix, [][]byte{append([]byte{0}, rec[1:]...)}, nil},
		{"oversized count", prefix, [][]byte{append([]byte{9}, rec[1:]...)}, nil},
	}
	for _, tc := range tests {
		c2 := newCodec(t, 55)
		if _, err := c2.DecryptAll(tc.prefix, tc.records, tc.trailer); !errors.Is(err, blockdoc.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestSpliceIndependence(t *testing.T) {
	// rECB splices must never rewrite neighbors, prefix, or trailer.
	c := newCodec(t, 7)
	_, blocks, _, err := c.EncryptAll(chunksOf("neighbor independent", 4))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	added, leftRec, newPrefix, newTrailer, err := c.Splice(blocks[0], blocks[1:2], [][]byte{[]byte("NEW!")}, blocks[2])
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if leftRec != nil || newPrefix != nil || newTrailer != nil {
		t.Error("rECB splice touched neighbor/prefix/trailer")
	}
	if len(added) != 1 || string(added[0].Chars) != "NEW!" {
		t.Errorf("added = %v", added)
	}
}

func TestSpliceRejectsOversizedChunk(t *testing.T) {
	c := newCodec(t, 8)
	if _, _, _, err := c.EncryptAll([][]byte{[]byte("123456789")}); err == nil {
		t.Error("EncryptAll accepted 9-char chunk")
	}
	if _, _, _, _, err := c.Splice(nil, nil, [][]byte{[]byte("123456789")}, nil); err == nil {
		t.Error("Splice accepted 9-char chunk")
	}
	if _, _, _, _, err := c.Splice(nil, nil, [][]byte{{}}, nil); err == nil {
		t.Error("Splice accepted empty chunk")
	}
}

func TestFreshNoncesPerEncryption(t *testing.T) {
	c := newCodec(t, 9)
	_, b1, _, err := c.EncryptAll(chunksOf("samedata", 8))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	added, _, _, _, err := c.Splice(nil, nil, [][]byte{[]byte("samedata")}, nil)
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if string(b1[0].Record) == string(added[0].Record) {
		t.Error("same plaintext encrypted to identical records")
	}
}

func TestWrongKeyFailsOrGarbles(t *testing.T) {
	c := newCodec(t, 10)
	prefix, blocks, _, err := c.EncryptAll(chunksOf("keymatters", 8))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	otherKey := make([]byte, crypt.KeySize)
	for i := range otherKey {
		otherKey[i] = byte(200 - i)
	}
	c2, err := New(otherKey, crypt.NewSeededNonceSource(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	records := make([][]byte, len(blocks))
	for i, b := range blocks {
		records[i] = b.Record
	}
	got, err := c2.DecryptAll(prefix, records, nil)
	if err == nil {
		var sb strings.Builder
		for _, b := range got {
			sb.Write(b.Chars)
		}
		if sb.String() == "keymatters" {
			t.Error("wrong key recovered the plaintext")
		}
	}
}
