// Package recb implements the randomized-ECB (rECB) incremental encryption
// mode of Buonanno, Katz & Yung as used by Huang & Evans §V-B for
// confidentiality-only protection. With document blocks d_1..d_n the
// ciphertext is
//
//	F_sk(r0), F_sk(r0⊕r_1, r_1⊕d_1), ..., F_sk(r0⊕r_n, r_n⊕d_n)
//
// where the r_i are fresh 64-bit nonces and F_sk is AES-128. Every block is
// independent given r0, so inserts and deletes touch only the edited
// blocks: the ideal incremental case. The mode detects no tampering — the
// package's tests demonstrate the block-substitution attack the paper
// accepts for this mode.
//
// Container record: 1 count byte (block character count, stored in the
// clear — the paper: "we have to store the block character counters so
// that we remember block boundaries") followed by the 16-byte AES block.
package recb

import (
	"fmt"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/parallel"
)

// SchemeID is the container header byte identifying rECB.
const SchemeID = 1

const (
	recordBytes = 1 + crypt.BlockSize // count byte + AES block
	prefixBytes = crypt.BlockSize     // F_sk(r0 ‖ 0^64)
	maxChars    = 8                   // 64-bit data field
)

// Codec is the rECB scheme. It implements blockdoc.Codec.
type Codec struct {
	prp    *crypt.PRP
	nonces crypt.NonceSource
	r0     uint64

	// workers bounds the goroutines used by the whole-document kernels
	// (0 = GOMAXPROCS, 1 = serial). Documents below threshold blocks
	// always take the serial path.
	workers   int
	threshold int
}

var _ blockdoc.Codec = (*Codec)(nil)

// New builds an rECB codec from a 16-byte AES key. nonces supplies the
// 64-bit block nonces; pass crypt.CryptoNonceSource{} outside tests.
func New(key []byte, nonces crypt.NonceSource) (*Codec, error) {
	prp, err := crypt.NewPRP(key)
	if err != nil {
		return nil, fmt.Errorf("recb: %w", err)
	}
	return &Codec{prp: prp, nonces: nonces, threshold: parallel.MinParallelBlocks}, nil
}

// SetWorkers bounds the worker goroutines used by EncryptAll/DecryptAll:
// 0 selects GOMAXPROCS, 1 forces the serial path. The ciphertext is
// identical either way — nonces are always drawn in document order.
func (c *Codec) SetWorkers(n int) { c.workers = n }

// Name implements blockdoc.Codec.
func (c *Codec) Name() string { return "rECB" }

// ID implements blockdoc.Codec.
func (c *Codec) ID() byte { return SchemeID }

// RecordBytes implements blockdoc.Codec.
func (c *Codec) RecordBytes() int { return recordBytes }

// PrefixBytes implements blockdoc.Codec.
func (c *Codec) PrefixBytes() int { return prefixBytes }

// TrailerBytes implements blockdoc.Codec. rECB has no integrity trailer.
func (c *Codec) TrailerBytes() int { return 0 }

// MaxChars implements blockdoc.Codec.
func (c *Codec) MaxChars() int { return maxChars }

// padChars returns the 64-bit zero-padded data field for a block.
func padChars(chars []byte) uint64 {
	var d [8]byte
	copy(d[:], chars)
	return crypt.Uint64(d[:])
}

// encryptBlock encrypts one block of 1..8 characters under a fresh nonce.
func (c *Codec) encryptBlock(chars []byte) (*blockdoc.Block, error) {
	return c.encryptBlockNonce(chars, c.nonces.Nonce64())
}

// encryptBlockNonce encrypts one block under the given nonce. It reads only
// immutable codec state (prp, r0), so distinct calls may run concurrently.
func (c *Codec) encryptBlockNonce(chars []byte, ri uint64) (*blockdoc.Block, error) {
	if len(chars) == 0 || len(chars) > maxChars {
		return nil, fmt.Errorf("%w: block of %d chars", blockdoc.ErrCorrupt, len(chars))
	}
	var pt [crypt.BlockSize]byte
	crypt.PutUint64(pt[:8], c.r0^ri)
	crypt.PutUint64(pt[8:], ri^padChars(chars))
	rec := make([]byte, recordBytes)
	rec[0] = byte(len(chars))
	if err := c.prp.Encrypt(rec[1:], pt[:]); err != nil {
		return nil, err
	}
	own := make([]byte, len(chars))
	copy(own, chars)
	return &blockdoc.Block{Chars: own, Record: rec, Nonce: ri}, nil
}

// decryptBlock inverts encryptBlock.
func (c *Codec) decryptBlock(rec []byte) (*blockdoc.Block, error) {
	if len(rec) != recordBytes {
		return nil, fmt.Errorf("%w: record of %d bytes", blockdoc.ErrCorrupt, len(rec))
	}
	count := int(rec[0])
	if count < 1 || count > maxChars {
		return nil, fmt.Errorf("%w: block count %d", blockdoc.ErrCorrupt, count)
	}
	var pt [crypt.BlockSize]byte
	if err := c.prp.Decrypt(pt[:], rec[1:]); err != nil {
		return nil, err
	}
	ri := crypt.Uint64(pt[:8]) ^ c.r0
	d := crypt.Uint64(pt[8:]) ^ ri
	var db [8]byte
	crypt.PutUint64(db[:], d)
	for _, b := range db[count:] {
		if b != 0 {
			return nil, fmt.Errorf("%w: nonzero block padding", blockdoc.ErrCorrupt)
		}
	}
	chars := make([]byte, count)
	copy(chars, db[:count])
	recOwn := make([]byte, recordBytes)
	copy(recOwn, rec)
	return &blockdoc.Block{Chars: chars, Record: recOwn, Nonce: ri}, nil
}

// EncryptAll implements blockdoc.Codec: fresh r0, every chunk encrypted
// independently. Nonces are drawn serially in document order (so the
// ciphertext is deterministic for a given source); the per-block AES work —
// the bulk of Enc — is fanned out across the worker pool for documents
// above the crossover threshold.
func (c *Codec) EncryptAll(chunks [][]byte) (prefix []byte, blocks []*blockdoc.Block, trailer []byte, err error) {
	c.r0 = c.nonces.Nonce64()
	prefix = make([]byte, prefixBytes)
	var pt [crypt.BlockSize]byte
	crypt.PutUint64(pt[:8], c.r0)
	if err := c.prp.Encrypt(prefix, pt[:]); err != nil {
		return nil, nil, nil, err
	}
	ris := make([]uint64, len(chunks))
	for i := range ris {
		ris[i] = c.nonces.Nonce64()
	}
	blocks = make([]*blockdoc.Block, len(chunks))
	if parallel.UseSerial(len(chunks), c.workers, c.threshold) {
		for i, ch := range chunks {
			if blocks[i], err = c.encryptBlockNonce(ch, ris[i]); err != nil {
				return nil, nil, nil, err
			}
		}
		return prefix, blocks, nil, nil
	}
	err = parallel.Range(len(chunks), c.workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			b, err := c.encryptBlockNonce(chunks[i], ris[i])
			if err != nil {
				return err
			}
			blocks[i] = b
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return prefix, blocks, nil, nil
}

// DecryptAll implements blockdoc.Codec. rECB can verify structure (counts,
// padding) but, by design, not integrity.
func (c *Codec) DecryptAll(prefix []byte, records [][]byte, trailer []byte) ([]*blockdoc.Block, error) {
	if len(prefix) != prefixBytes {
		return nil, fmt.Errorf("%w: prefix of %d bytes", blockdoc.ErrCorrupt, len(prefix))
	}
	if len(trailer) != 0 {
		return nil, fmt.Errorf("%w: unexpected trailer", blockdoc.ErrCorrupt)
	}
	var pt [crypt.BlockSize]byte
	if err := c.prp.Decrypt(pt[:], prefix); err != nil {
		return nil, err
	}
	if crypt.Uint64(pt[8:]) != 0 {
		return nil, fmt.Errorf("%w: nonzero r0 padding", blockdoc.ErrCorrupt)
	}
	c.r0 = crypt.Uint64(pt[:8])
	blocks := make([]*blockdoc.Block, len(records))
	if parallel.UseSerial(len(records), c.workers, c.threshold) {
		for i, rec := range records {
			b, err := c.decryptBlock(rec)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			blocks[i] = b
		}
		return blocks, nil
	}
	err := parallel.Range(len(records), c.workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			b, err := c.decryptBlock(records[i])
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			blocks[i] = b
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// Splice implements blockdoc.Codec. Blocks are independent, so the
// replacement blocks are simply encrypted under fresh nonces; neighbors,
// prefix, and trailer are untouched — rECB's IncE is ideal (O(1) per
// edited block).
func (c *Codec) Splice(left *blockdoc.Block, removed []*blockdoc.Block, chunks [][]byte, right *blockdoc.Block) (
	added []*blockdoc.Block, newLeftRecord, newPrefix, newTrailer []byte, err error) {
	added = make([]*blockdoc.Block, 0, len(chunks))
	for _, ch := range chunks {
		b, err := c.encryptBlock(ch)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		added = append(added, b)
	}
	return added, nil, nil, nil, nil
}
