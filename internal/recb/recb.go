// Package recb implements the randomized-ECB (rECB) incremental encryption
// mode of Buonanno, Katz & Yung as used by Huang & Evans §V-B for
// confidentiality-only protection. With document blocks d_1..d_n the
// ciphertext is
//
//	F_sk(r0), F_sk(r0⊕r_1, r_1⊕d_1), ..., F_sk(r0⊕r_n, r_n⊕d_n)
//
// where the r_i are fresh 64-bit nonces and F_sk is AES-128. Every block is
// independent given r0, so inserts and deletes touch only the edited
// blocks: the ideal incremental case. The mode detects no tampering — the
// package's tests demonstrate the block-substitution attack the paper
// accepts for this mode.
//
// Container record: 1 count byte (block character count, stored in the
// clear — the paper: "we have to store the block character counters so
// that we remember block boundaries") followed by the 16-byte AES block.
package recb

import (
	"fmt"
	"sync"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/parallel"
)

// SchemeID is the container header byte identifying rECB.
const SchemeID = 1

const (
	recordBytes = 1 + crypt.BlockSize // count byte + AES block
	prefixBytes = crypt.BlockSize     // F_sk(r0 ‖ 0^64)
	maxChars    = 8                   // 64-bit data field
)

// Codec is the rECB scheme. It implements blockdoc.Codec.
type Codec struct {
	prp    *crypt.PRP
	nonces crypt.NonceSource

	// mu guards r0, the container-level nonce every block is bound to.
	// The whole-document kernels work with a local copy and publish it
	// once on success, so concurrent calls on one codec never observe a
	// half-updated document state (and never race: each call's blocks are
	// consistent with the prefix that call returns).
	mu sync.Mutex
	r0 uint64

	// workers bounds the goroutines used by the whole-document kernels
	// (0 = GOMAXPROCS, 1 = the reference serial per-block kernel).
	// Documents below threshold blocks never fan out.
	workers   int
	threshold int
}

var _ blockdoc.Codec = (*Codec)(nil)

// New builds an rECB codec from a 16-byte AES key. nonces supplies the
// 64-bit block nonces; pass crypt.CryptoNonceSource{} outside tests.
func New(key []byte, nonces crypt.NonceSource) (*Codec, error) {
	prp, err := crypt.NewPRP(key)
	if err != nil {
		return nil, fmt.Errorf("recb: %w", err)
	}
	return &Codec{prp: prp, nonces: nonces, threshold: parallel.MinParallelBlocks}, nil
}

// SetWorkers selects the kernel used by EncryptAll/DecryptAll/Splice:
// 1 pins the reference serial per-block kernel, anything else selects the
// batched arena kernel (0 = fan out up to GOMAXPROCS above the crossover
// threshold). The ciphertext is identical either way — nonces are always
// drawn in document order.
func (c *Codec) SetWorkers(n int) { c.workers = n }

// Name implements blockdoc.Codec.
func (c *Codec) Name() string { return "rECB" }

// ID implements blockdoc.Codec.
func (c *Codec) ID() byte { return SchemeID }

// RecordBytes implements blockdoc.Codec.
func (c *Codec) RecordBytes() int { return recordBytes }

// PrefixBytes implements blockdoc.Codec.
func (c *Codec) PrefixBytes() int { return prefixBytes }

// TrailerBytes implements blockdoc.Codec. rECB has no integrity trailer.
func (c *Codec) TrailerBytes() int { return 0 }

// MaxChars implements blockdoc.Codec.
func (c *Codec) MaxChars() int { return maxChars }

// snapshotR0 reads the published container nonce.
func (c *Codec) snapshotR0() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.r0
}

// publishR0 installs the container nonce a successful whole-document call
// established.
func (c *Codec) publishR0(r0 uint64) {
	c.mu.Lock()
	c.r0 = r0
	c.mu.Unlock()
}

// padChars returns the 64-bit zero-padded data field for a block.
func padChars(chars []byte) uint64 {
	var d [8]byte
	copy(d[:], chars)
	return crypt.Uint64(d[:])
}

// padCharsFast is the batched kernel's padChars: full blocks — the
// overwhelming majority at any b — skip the zero-pad staging copy. The
// reference kernel keeps the staged padChars so the serial baseline
// preserves the original per-block kernel's cost model.
func padCharsFast(chars []byte) uint64 {
	if len(chars) == maxChars {
		return crypt.Uint64(chars)
	}
	return padChars(chars)
}

// risPool recycles the batched kernels' bulk nonce scratch. Every nonce is
// copied into its output block during assembly, so the slice is dead by
// the time a call returns and can be handed to the next one.
var risPool = sync.Pool{New: func() any { return new([]uint64) }}

func getRis(n int) *[]uint64 {
	p := risPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

// encryptBlockNonce encrypts one block under the given nonce: the
// reference per-block kernel. It reads only immutable codec state (r0 is
// threaded through as a parameter), so distinct calls may run concurrently.
func (c *Codec) encryptBlockNonce(chars []byte, r0, ri uint64) (*blockdoc.Block, error) {
	if len(chars) == 0 || len(chars) > maxChars {
		return nil, fmt.Errorf("%w: block of %d chars", blockdoc.ErrCorrupt, len(chars))
	}
	var pt [crypt.BlockSize]byte
	crypt.PutUint64(pt[:8], r0^ri)
	crypt.PutUint64(pt[8:], ri^padChars(chars))
	rec := make([]byte, recordBytes)
	rec[0] = byte(len(chars))
	if err := c.prp.Encrypt(rec[1:], pt[:]); err != nil {
		return nil, err
	}
	own := make([]byte, len(chars))
	copy(own, chars)
	return &blockdoc.Block{Chars: own, Record: rec, Nonce: ri}, nil
}

// decryptBlock inverts encryptBlockNonce: the reference per-block kernel.
func (c *Codec) decryptBlock(rec []byte, r0 uint64) (*blockdoc.Block, error) {
	if len(rec) != recordBytes {
		return nil, fmt.Errorf("%w: record of %d bytes", blockdoc.ErrCorrupt, len(rec))
	}
	count := int(rec[0])
	if count < 1 || count > maxChars {
		return nil, fmt.Errorf("%w: block count %d", blockdoc.ErrCorrupt, count)
	}
	var pt [crypt.BlockSize]byte
	if err := c.prp.Decrypt(pt[:], rec[1:]); err != nil {
		return nil, err
	}
	ri := crypt.Uint64(pt[:8]) ^ r0
	d := crypt.Uint64(pt[8:]) ^ ri
	var db [8]byte
	crypt.PutUint64(db[:], d)
	for _, b := range db[count:] {
		if b != 0 {
			return nil, fmt.Errorf("%w: nonzero block padding", blockdoc.ErrCorrupt)
		}
	}
	chars := make([]byte, count)
	copy(chars, db[:count])
	recOwn := make([]byte, recordBytes)
	copy(recOwn, rec)
	return &blockdoc.Block{Chars: chars, Record: recOwn, Nonce: ri}, nil
}

// arena carries the per-call backing arrays of the batched kernels: one
// allocation per array per call instead of two small makes per block. Each
// block's record and character slices are strided sub-slices (capped with
// full slice expressions, so a later append can never bleed into a
// neighbor's region).
type arena struct {
	recs  []byte
	chars []byte
	slab  []blockdoc.Block
}

func newArena(n int) arena {
	// One byte backing for records and characters; the record region comes
	// first and is capacity-capped so record slicing can never reach the
	// character region.
	buf := make([]byte, n*(recordBytes+maxChars))
	return arena{
		recs:  buf[: n*recordBytes : n*recordBytes],
		chars: buf[n*recordBytes:],
		slab:  make([]blockdoc.Block, n),
	}
}

func (a *arena) rec(i int) []byte {
	return a.recs[i*recordBytes : (i+1)*recordBytes : (i+1)*recordBytes]
}

func (a *arena) charSlot(i, n int) []byte {
	return a.chars[i*maxChars : i*maxChars+n : i*maxChars+n]
}

// encryptBatch is the batched Enc kernel: it seals blocks [lo, hi) into
// the arena. The plaintext is assembled directly in each record's AES slot
// and encrypted in place, so the kernel allocates nothing.
func (c *Codec) encryptBatch(chunks [][]byte, ris []uint64, r0 uint64, a arena, blocks []*blockdoc.Block, lo, hi int) error {
	for i := lo; i < hi; i++ {
		ch := chunks[i]
		if len(ch) == 0 || len(ch) > maxChars {
			return fmt.Errorf("%w: block of %d chars", blockdoc.ErrCorrupt, len(ch))
		}
		rec := a.rec(i)
		rec[0] = byte(len(ch))
		crypt.PutUint64(rec[1:9], r0^ris[i])
		crypt.PutUint64(rec[9:17], ris[i]^padCharsFast(ch))
		if err := c.prp.Encrypt(rec[1:], rec[1:]); err != nil {
			return err
		}
		own := a.charSlot(i, len(ch))
		copy(own, ch)
		a.slab[i] = blockdoc.Block{Chars: own, Record: rec, Nonce: ris[i]}
		blocks[i] = &a.slab[i]
	}
	return nil
}

// decryptBatch is the batched Dec kernel over records [lo, hi). pt is the
// worker's 16-byte decryption scratch.
func (c *Codec) decryptBatch(records [][]byte, r0 uint64, pt []byte, a arena, blocks []*blockdoc.Block, lo, hi int) error {
	for i := lo; i < hi; i++ {
		rec := records[i]
		if len(rec) != recordBytes {
			return fmt.Errorf("record %d: %w: record of %d bytes", i, blockdoc.ErrCorrupt, len(rec))
		}
		count := int(rec[0])
		if count < 1 || count > maxChars {
			return fmt.Errorf("record %d: %w: block count %d", i, blockdoc.ErrCorrupt, count)
		}
		if err := c.prp.Decrypt(pt, rec[1:]); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		ri := crypt.Uint64(pt[:8]) ^ r0
		d := crypt.Uint64(pt[8:]) ^ ri
		crypt.PutUint64(pt[8:], d)
		for _, b := range pt[8+count : 16] {
			if b != 0 {
				return fmt.Errorf("record %d: %w: nonzero block padding", i, blockdoc.ErrCorrupt)
			}
		}
		chars := a.charSlot(i, count)
		copy(chars, pt[8:8+count])
		recOwn := a.rec(i)
		copy(recOwn, rec)
		a.slab[i] = blockdoc.Block{Chars: chars, Record: recOwn, Nonce: ri}
		blocks[i] = &a.slab[i]
	}
	return nil
}

// EncryptAll implements blockdoc.Codec: fresh r0, every chunk encrypted
// independently. Nonces are drawn serially in document order (so the
// ciphertext is deterministic for a given source); the per-block AES work —
// the bulk of Enc — runs in the batched arena kernel, fanned out across
// worker goroutines for documents above the crossover threshold.
func (c *Codec) EncryptAll(chunks [][]byte) (prefix []byte, blocks []*blockdoc.Block, trailer []byte, err error) {
	n := len(chunks)
	r0 := c.nonces.Nonce64()
	prefix = make([]byte, prefixBytes)
	var pt [crypt.BlockSize]byte
	crypt.PutUint64(pt[:8], r0)
	if err := c.prp.Encrypt(prefix, pt[:]); err != nil {
		return nil, nil, nil, err
	}
	blocks = make([]*blockdoc.Block, n)
	if parallel.UseSerial(n, c.workers) {
		// Reference kernel: per-block nonce draw and seal, preserving the
		// original serial shape (and cost model) exactly.
		for i, ch := range chunks {
			if blocks[i], err = c.encryptBlockNonce(ch, r0, c.nonces.Nonce64()); err != nil {
				return nil, nil, nil, err
			}
		}
	} else {
		rp := getRis(n)
		defer risPool.Put(rp)
		ris := *rp
		crypt.FillNonces(c.nonces, ris)
		a := newArena(n)
		w := parallel.Plan(n, c.workers, c.threshold)
		err = parallel.BatchRange(n, w, func(_, lo, hi int) error {
			return c.encryptBatch(chunks, ris, r0, a, blocks, lo, hi)
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	c.publishR0(r0)
	return prefix, blocks, nil, nil
}

// DecryptAll implements blockdoc.Codec. rECB can verify structure (counts,
// padding) but, by design, not integrity.
func (c *Codec) DecryptAll(prefix []byte, records [][]byte, trailer []byte) ([]*blockdoc.Block, error) {
	if len(prefix) != prefixBytes {
		return nil, fmt.Errorf("%w: prefix of %d bytes", blockdoc.ErrCorrupt, len(prefix))
	}
	if len(trailer) != 0 {
		return nil, fmt.Errorf("%w: unexpected trailer", blockdoc.ErrCorrupt)
	}
	var pt [crypt.BlockSize]byte
	if err := c.prp.Decrypt(pt[:], prefix); err != nil {
		return nil, err
	}
	if crypt.Uint64(pt[8:]) != 0 {
		return nil, fmt.Errorf("%w: nonzero r0 padding", blockdoc.ErrCorrupt)
	}
	r0 := crypt.Uint64(pt[:8])
	n := len(records)
	blocks := make([]*blockdoc.Block, n)
	if parallel.UseSerial(n, c.workers) {
		for i, rec := range records {
			b, err := c.decryptBlock(rec, r0)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			blocks[i] = b
		}
	} else {
		a := newArena(n)
		w := parallel.Plan(n, c.workers, c.threshold)
		pts := make([]byte, w*crypt.BlockSize)
		err := parallel.BatchRange(n, w, func(worker, lo, hi int) error {
			scratch := pts[worker*crypt.BlockSize : (worker+1)*crypt.BlockSize]
			return c.decryptBatch(records, r0, scratch, a, blocks, lo, hi)
		})
		if err != nil {
			return nil, err
		}
	}
	c.publishR0(r0)
	return blocks, nil
}

// Splice implements blockdoc.Codec. Blocks are independent, so the
// replacement blocks are simply encrypted under fresh nonces; neighbors,
// prefix, and trailer are untouched — rECB's IncE is ideal (O(1) per
// edited block).
func (c *Codec) Splice(left *blockdoc.Block, removed []*blockdoc.Block, chunks [][]byte, right *blockdoc.Block) (
	added []*blockdoc.Block, newLeftRecord, newPrefix, newTrailer []byte, err error) {
	n := len(chunks)
	r0 := c.snapshotR0()
	added = make([]*blockdoc.Block, n)
	if parallel.UseSerial(n, c.workers) {
		for i, ch := range chunks {
			if added[i], err = c.encryptBlockNonce(ch, r0, c.nonces.Nonce64()); err != nil {
				return nil, nil, nil, nil, err
			}
		}
		return added, nil, nil, nil, nil
	}
	rp := getRis(n)
	defer risPool.Put(rp)
	ris := *rp
	crypt.FillNonces(c.nonces, ris)
	a := newArena(n)
	w := parallel.Plan(n, c.workers, c.threshold)
	err = parallel.BatchRange(n, w, func(_, lo, hi int) error {
		return c.encryptBatch(chunks, ris, r0, a, added, lo, hi)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return added, nil, nil, nil, nil
}
