package recb

import (
	"math"
	"strings"
	"testing"

	"privedit/internal/crypt"
)

// TestCiphertextByteUniformity is the smoke test behind §VI-A's
// ciphertext-only argument: the encrypted records of a highly redundant
// document (all one character) must show a near-uniform byte distribution,
// leaking nothing of the plaintext's redundancy.
func TestCiphertextByteUniformity(t *testing.T) {
	c := newCodec(t, 40)
	text := strings.Repeat("e", 8000) // pathologically redundant input
	_, blocks, _, err := c.EncryptAll(chunksOf(text, 8))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	counts := make([]int, 256)
	total := 0
	for _, b := range blocks {
		for _, by := range b.Record[1:] { // skip the clear count byte
			counts[by]++
			total++
		}
	}
	// Chi-squared against uniform: for 255 degrees of freedom, values
	// beyond ~400 would be wildly non-uniform; AES output sits near 255.
	expected := float64(total) / 256
	chi2 := 0.0
	for _, n := range counts {
		d := float64(n) - expected
		chi2 += d * d / expected
	}
	if chi2 > 400 {
		t.Errorf("chi-squared %f over 255 dof: ciphertext bytes non-uniform", chi2)
	}
	if math.IsNaN(chi2) {
		t.Error("no ciphertext produced")
	}
}

// TestIdenticalBlocksEncryptDistinctly: every one of 1000 identical
// plaintext blocks must produce a distinct record (fresh nonces), so the
// server cannot even count repeated content.
func TestIdenticalBlocksEncryptDistinctly(t *testing.T) {
	c := newCodec(t, 41)
	chunks := make([][]byte, 1000)
	for i := range chunks {
		chunks[i] = []byte("SAMESAME")
	}
	_, blocks, _, err := c.EncryptAll(chunks)
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	seen := make(map[string]bool, len(blocks))
	for i, b := range blocks {
		key := string(b.Record)
		if seen[key] {
			t.Fatalf("block %d repeats an earlier record", i)
		}
		seen[key] = true
	}
}

// TestPositionLeakageBounds documents what §VI-A concedes: with b > 1 the
// clear count bytes reveal only block sizes, never content. Verify the
// only cleartext in a record is the count byte.
func TestPositionLeakageBounds(t *testing.T) {
	cA := newCodec(t, 42)
	cB, err := New(func() []byte {
		k := make([]byte, crypt.KeySize)
		for i := range k {
			k[i] = byte(0xA0 + i)
		}
		return k
	}(), crypt.NewSeededNonceSource(42)) // same nonces, different key
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, blocksA, _, err := cA.EncryptAll(chunksOf("same text!", 4))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	_, blocksB, _, err := cB.EncryptAll(chunksOf("same text!", 4))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	for i := range blocksA {
		if blocksA[i].Record[0] != blocksB[i].Record[0] {
			t.Errorf("count bytes differ for identical chunking")
		}
		if string(blocksA[i].Record[1:]) == string(blocksB[i].Record[1:]) {
			t.Errorf("block %d: ciphertext identical across keys", i)
		}
	}
}
