package diff

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"privedit/internal/delta"
)

func mustApply(t *testing.T, d delta.Delta, doc string) string {
	t.Helper()
	got, err := d.Apply(doc)
	if err != nil {
		t.Fatalf("Apply(%q, %q): %v", d.String(), doc, err)
	}
	return got
}

func TestDiffBasic(t *testing.T) {
	tests := []struct {
		a, b string
	}{
		{"", ""},
		{"", "abc"},
		{"abc", ""},
		{"abc", "abc"},
		{"abc", "abd"},
		{"abcdefg", "ab"},
		{"abcdefg", "abuvfgw"},
		{"kitten", "sitting"},
		{"saturday", "sunday"},
		{"aaaa", "aaaaa"},
		{"xyz", "zyx"},
		{"the quick brown fox", "the quick red fox jumps"},
	}
	for _, tc := range tests {
		d := Diff(tc.a, tc.b)
		if got := mustApply(t, d, tc.a); got != tc.b {
			t.Errorf("Diff(%q,%q)=%q applies to %q, want %q", tc.a, tc.b, d.String(), got, tc.b)
		}
	}
}

func TestDiffEqualIsEmpty(t *testing.T) {
	d := Diff("same content", "same content")
	if len(d) != 0 {
		t.Errorf("Diff of equal strings = %q, want empty", d.String())
	}
}

func TestDiffMinimality(t *testing.T) {
	// Known edit distances.
	tests := []struct {
		a, b string
		dist int
	}{
		{"kitten", "sitting", 5}, // 2 substitutions (2 each) + 1 insert under ins/del metric: k->s (2), e->i (2), +g (1)
		{"abc", "abc", 0},
		{"abc", "axc", 2},
		{"abc", "abcd", 1},
		{"abcd", "abc", 1},
		{"", "abc", 3},
	}
	for _, tc := range tests {
		if got := Distance(tc.a, tc.b); got != tc.dist {
			t.Errorf("Distance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.dist)
		}
	}
}

func TestDiffSingleEditInLargeDoc(t *testing.T) {
	base := strings.Repeat("lorem ipsum dolor sit amet ", 400) // ~10800 chars
	// One character substituted in the middle.
	mid := len(base) / 2
	b := base[:mid] + "X" + base[mid+1:]
	d := Diff(base, b)
	if got := mustApply(t, d, base); got != b {
		t.Fatal("single-edit diff does not apply")
	}
	if dist := d.InsertLen() + d.DeleteLen(); dist > 2 {
		t.Errorf("single substitution produced distance %d, want 2", dist)
	}
}

func TestDiffRandomEditScripts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := "abcdefgh "
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for trial := 0; trial < 200; trial++ {
		a := randStr(rng.Intn(400))
		// Mutate a with random edits to get b.
		b := a
		for e := rng.Intn(10); e >= 0; e-- {
			if len(b) == 0 {
				b = randStr(5)
				continue
			}
			p := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b = b[:p] + randStr(1+rng.Intn(5)) + b[p:]
			case 1:
				q := p + rng.Intn(len(b)-p)
				b = b[:p] + b[q:]
			default:
				b = b[:p] + randStr(1) + b[p+1:]
			}
		}
		d := Diff(a, b)
		if got := mustApply(t, d, a); got != b {
			t.Fatalf("trial %d: diff does not transform a into b", trial)
		}
	}
}

func TestDiffUnrelatedStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	randStr := func(n int, base byte) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(base + byte(rng.Intn(20)))
		}
		return sb.String()
	}
	// Disjoint alphabets force a full replacement.
	a := randStr(2000, 'a')
	b := randStr(1500, 'A')
	d := Diff(a, b)
	if got := mustApply(t, d, a); got != b {
		t.Fatal("unrelated diff does not apply")
	}
	if dist := Distance(a, b); dist != len(a)+len(b) {
		t.Errorf("disjoint-alphabet distance = %d, want %d", dist, len(a)+len(b))
	}
}

func TestDiffQuickProperty(t *testing.T) {
	f := func(a, b string) bool {
		d := Diff(a, b)
		got, err := d.Apply(a)
		return err == nil && got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("diff apply property: %v", err)
	}
}

func TestDiffDeltaIsNormalized(t *testing.T) {
	d := Diff("hello world", "hello brave world")
	if d.String() != d.Normalize().String() {
		t.Errorf("Diff output not normalized: %q", d.String())
	}
}

func BenchmarkDiffSmallEdit(b *testing.B) {
	base := strings.Repeat("lorem ipsum dolor sit amet ", 370)
	mod := base[:5000] + "edit " + base[5000:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := Diff(base, mod); len(d) == 0 {
			b.Fatal("empty diff")
		}
	}
}

func BenchmarkDiffHeavyEdit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 2000)
	for i := range buf {
		buf[i] = byte('a' + rng.Intn(26))
	}
	base := string(buf)
	for i := 0; i < len(buf); i += 7 {
		buf[i] = byte('A' + rng.Intn(26))
	}
	mod := string(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := Diff(base, mod); len(d) == 0 {
			b.Fatal("empty diff")
		}
	}
}
