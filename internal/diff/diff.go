// Package diff derives a delta (in the Google Docs delta language) that
// transforms one document into another. The paper's micro-benchmark
// (§VII-B) requires exactly this: "For every (D, D′) pair, a delta string
// is derived such that it transforms D to D′." It is also the engine
// behind the covert-channel defense of §VI-B that recomputes deltas "from
// the two versions of the document directly instead of using the delta
// values computed by the provided client."
//
// The implementation is Myers' O(ND) difference algorithm in its
// linear-space divide-and-conquer form (middle snake), so memory stays
// O(N+M) even for unrelated documents.
//
// Unit of position: delta counts (=n, -n) are BYTES of the UTF-8 encoded
// document, matching the delta language, the block engine, and the skip
// list (see DESIGN.md §11). The edit script itself, however, is computed
// over UTF-8 runes: every retain/delete boundary falls on a rune boundary,
// so a multibyte character is never split between operations. Bytes that
// do not form valid UTF-8 are treated as one-byte units, which keeps
// Apply(Diff(a, b), a) == b for arbitrary byte strings.
package diff

import (
	"unicode/utf8"

	"privedit/internal/delta"
)

// Diff returns a rune-aligned minimal edit script transforming a into b,
// expressed as a burst-canonical delta (delta.Coalesce) with byte counts:
// Apply(Diff(a, b), a) == b. Minimality is in rune units: no script that
// also respects rune boundaries inserts or deletes fewer runes.
//
// Canonical form matters beyond tidiness: the Myers recursion can split
// one replaced region into interleaved delete/insert fragments depending
// on where the middle snake lands, and two equivalent spellings of the
// same edit transform differently against a concurrent delta (an insert
// placed between two delete fragments lands at a different spot than one
// placed after the merged delete). Every delta producer in the module —
// Diff, Compose, Transform — emits the same canonical spelling, so
// independently derived deltas of the same edit merge identically.
func Diff(a, b string) delta.Delta {
	var d delta.Delta

	// Bytewise common-prefix/suffix fast path: a small edit in a large
	// document should not pay for tokenizing the whole document. The trim
	// points are backed off to rune boundaries of both strings so the
	// middle handed to the token diff never starts or ends mid-rune.
	p := 0
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	for p < max && a[p] == b[p] {
		p++
	}
	for p > 0 && (!boundary(a, p) || !boundary(b, p)) {
		p--
	}
	s := 0
	for s < max-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	for s > 0 && (!boundary(a, len(a)-s) || !boundary(b, len(b)-s)) {
		s--
	}

	if p > 0 {
		d = append(d, delta.RetainOp(p))
	}
	av := tokenize(a[p : len(a)-s])
	bv := tokenize(b[p : len(b)-s])
	diffRec(av, 0, len(av.tok), bv, 0, len(bv.tok), &d)
	if s > 0 {
		d = append(d, delta.RetainOp(s))
	}
	return d.Coalesce()
}

// Distance returns the edit distance between a and b in bytes (inserted
// plus deleted bytes of the rune-aligned script). For ASCII inputs this is
// the classical Myers insert+delete distance.
func Distance(a, b string) int {
	d := Diff(a, b)
	return d.InsertLen() + d.DeleteLen()
}

// boundary reports whether byte offset i of s is a safe cut point: the
// start or end of the string, or the first byte of a UTF-8 sequence.
func boundary(s string, i int) bool {
	return i == 0 || i == len(s) || utf8.RuneStart(s[i])
}

// side is one input tokenized into rune-or-byte units. Token i covers the
// bytes src[off[i]:off[i+1]]; tok[i] packs those bytes plus their length
// into one word so token equality is a single integer compare.
type side struct {
	src string
	off []int32  // len(tok)+1 byte offsets into src
	tok []uint64 // packed content
}

// tokenize splits s into UTF-8 runes, treating every byte that is not part
// of a valid encoding as its own one-byte token. Two tokens are equal iff
// their underlying byte sequences are equal, which the packing preserves
// (a rune's bytes fit in 32 bits; the length tag disambiguates).
func tokenize(s string) side {
	v := side{
		src: s,
		off: make([]int32, 1, len(s)+1),
		tok: make([]uint64, 0, len(s)),
	}
	for i := 0; i < len(s); {
		n := 1
		if s[i] >= utf8.RuneSelf {
			if r, size := utf8.DecodeRuneInString(s[i:]); r != utf8.RuneError || size > 1 {
				n = size
			}
		}
		var packed uint64
		for j := 0; j < n; j++ {
			packed = packed<<8 | uint64(s[i+j])
		}
		packed |= uint64(n) << 40
		v.tok = append(v.tok, packed)
		i += n
		v.off = append(v.off, int32(i))
	}
	return v
}

// bytesOf returns the byte length of the token range [lo, hi).
func (v side) bytesOf(lo, hi int) int { return int(v.off[hi] - v.off[lo]) }

// strOf returns the source bytes of the token range [lo, hi).
func (v side) strOf(lo, hi int) string { return v.src[v.off[lo]:v.off[hi]] }

// diffRec emits the edit script for a.tok[alo:ahi] vs b.tok[blo:bhi].
func diffRec(a side, alo, ahi int, b side, blo, bhi int, out *delta.Delta) {
	// Trim common prefix.
	p := 0
	for alo+p < ahi && blo+p < bhi && a.tok[alo+p] == b.tok[blo+p] {
		p++
	}
	if p > 0 {
		*out = append(*out, delta.RetainOp(a.bytesOf(alo, alo+p)))
		alo, blo = alo+p, blo+p
	}
	// Trim common suffix.
	s := 0
	for ahi-s > alo && bhi-s > blo && a.tok[ahi-1-s] == b.tok[bhi-1-s] {
		s++
	}
	suffix := a.bytesOf(ahi-s, ahi)
	ahi, bhi = ahi-s, bhi-s

	switch {
	case alo == ahi && blo == bhi:
		// Nothing left.
	case alo == ahi:
		*out = append(*out, delta.InsertOp(b.strOf(blo, bhi)))
	case blo == bhi:
		*out = append(*out, delta.DeleteOp(a.bytesOf(alo, ahi)))
	default:
		sn := middleSnake(a, alo, ahi, b, blo, bhi)
		if sn.d <= 1 {
			// After trimming both ends of two non-empty, non-equal token
			// ranges the edit distance is at least 2, so this branch is
			// defensive: emit a full replacement rather than recurse.
			*out = append(*out, delta.DeleteOp(a.bytesOf(alo, ahi)), delta.InsertOp(b.strOf(blo, bhi)))
		} else {
			diffRec(a, alo, alo+sn.x, b, blo, blo+sn.y, out)
			if sn.u > sn.x {
				*out = append(*out, delta.RetainOp(a.bytesOf(alo+sn.x, alo+sn.u)))
			}
			diffRec(a, alo+sn.u, ahi, b, blo+sn.v, bhi, out)
		}
	}
	if suffix > 0 {
		*out = append(*out, delta.RetainOp(suffix))
	}
}

// snake is a maximal run of matches (x,y)..(u,v) lying on an optimal
// D-path (token coordinates relative to the subproblem), plus the total
// edit distance d of the full subproblem.
type snake struct {
	x, y, u, v, d int
}

// middleSnake finds the middle snake of an optimal edit path between
// a.tok[alo:ahi] and b.tok[blo:bhi] using forward and reverse searches
// that each explore at most half the edit distance (Myers 1986,
// linear-space refinement). Both ranges must be non-empty.
func middleSnake(a side, alo, ahi int, b side, blo, bhi int) snake {
	n, m := ahi-alo, bhi-blo
	maxD := (n + m + 1) / 2
	dlt := n - m
	odd := dlt%2 != 0

	size := 2*maxD + 2
	vf := make([]int, size)
	vb := make([]int, size)
	idx := func(k int) int {
		i := k % size
		if i < 0 {
			i += size
		}
		return i
	}

	for d := 0; d <= maxD; d++ {
		// Forward D-paths.
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && vf[idx(k-1)] < vf[idx(k+1)]) {
				x = vf[idx(k+1)]
			} else {
				x = vf[idx(k-1)] + 1
			}
			y := x - k
			x0, y0 := x, y
			for x < n && y < m && a.tok[alo+x] == b.tok[blo+y] {
				x++
				y++
			}
			vf[idx(k)] = x
			if odd {
				// Overlap with the reverse (d-1)-paths: reverse diagonal
				// kr corresponds to forward diagonal dlt-kr.
				kr := dlt - k
				if kr >= -(d-1) && kr <= d-1 && vf[idx(k)]+vb[idx(kr)] >= n {
					return snake{x: x0, y: y0, u: x, v: y, d: 2*d - 1}
				}
			}
		}
		// Reverse D-paths; x counts tokens consumed from the end of a.
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && vb[idx(k-1)] < vb[idx(k+1)]) {
				x = vb[idx(k+1)]
			} else {
				x = vb[idx(k-1)] + 1
			}
			y := x - k
			x0, y0 := x, y
			for x < n && y < m && a.tok[alo+n-x-1] == b.tok[blo+m-y-1] {
				x++
				y++
			}
			vb[idx(k)] = x
			if !odd {
				kf := dlt - k
				if kf >= -d && kf <= d && vb[idx(k)]+vf[idx(kf)] >= n {
					return snake{x: n - x, y: m - y, u: n - x0, v: m - y0, d: 2 * d}
				}
			}
		}
	}
	// Unreachable for valid inputs; force the defensive replacement path.
	return snake{d: 0}
}
