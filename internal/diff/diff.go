// Package diff derives a delta (in the Google Docs delta language) that
// transforms one document into another. The paper's micro-benchmark
// (§VII-B) requires exactly this: "For every (D, D′) pair, a delta string
// is derived such that it transforms D to D′." It is also the engine
// behind the covert-channel defense of §VI-B that recomputes deltas "from
// the two versions of the document directly instead of using the delta
// values computed by the provided client."
//
// The implementation is Myers' O(ND) difference algorithm in its
// linear-space divide-and-conquer form (middle snake), so memory stays
// O(N+M) even for unrelated documents.
package diff

import (
	"privedit/internal/delta"
)

// Diff returns a minimal-length edit script transforming a into b,
// expressed as a normalized delta: Apply(Diff(a, b), a) == b.
func Diff(a, b string) delta.Delta {
	var d delta.Delta
	diffRec([]byte(a), []byte(b), &d)
	return d.Normalize()
}

// Distance returns the Myers edit distance (insertions + deletions)
// between a and b.
func Distance(a, b string) int {
	d := Diff(a, b)
	return d.InsertLen() + d.DeleteLen()
}

func diffRec(a, b []byte, out *delta.Delta) {
	// Trim common prefix.
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	if p > 0 {
		*out = append(*out, delta.RetainOp(p))
		a, b = a[p:], b[p:]
	}
	// Trim common suffix.
	s := 0
	for s < len(a) && s < len(b) && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	suffix := s
	a, b = a[:len(a)-s], b[:len(b)-s]

	switch {
	case len(a) == 0 && len(b) == 0:
		// Nothing left.
	case len(a) == 0:
		*out = append(*out, delta.InsertOp(string(b)))
	case len(b) == 0:
		*out = append(*out, delta.DeleteOp(len(a)))
	default:
		sn := middleSnake(a, b)
		if sn.d <= 1 {
			// After trimming both ends of two non-empty, non-equal
			// strings the edit distance is at least 2, so this branch is
			// defensive: emit a full replacement rather than recurse.
			*out = append(*out, delta.DeleteOp(len(a)), delta.InsertOp(string(b)))
		} else {
			diffRec(a[:sn.x], b[:sn.y], out)
			if sn.u > sn.x {
				*out = append(*out, delta.RetainOp(sn.u-sn.x))
			}
			diffRec(a[sn.u:], b[sn.v:], out)
		}
	}
	if suffix > 0 {
		*out = append(*out, delta.RetainOp(suffix))
	}
}

// snake is a maximal run of matches (x,y)..(u,v) lying on an optimal
// D-path, plus the total edit distance d of the full problem.
type snake struct {
	x, y, u, v, d int
}

// middleSnake finds the middle snake of an optimal edit path between a and
// b using forward and reverse searches that each explore at most half the
// edit distance (Myers 1986, linear-space refinement). Both a and b must be
// non-empty.
func middleSnake(a, b []byte) snake {
	n, m := len(a), len(b)
	maxD := (n + m + 1) / 2
	dlt := n - m
	odd := dlt%2 != 0

	size := 2*maxD + 2
	vf := make([]int, size)
	vb := make([]int, size)
	idx := func(k int) int {
		i := k % size
		if i < 0 {
			i += size
		}
		return i
	}

	for d := 0; d <= maxD; d++ {
		// Forward D-paths.
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && vf[idx(k-1)] < vf[idx(k+1)]) {
				x = vf[idx(k+1)]
			} else {
				x = vf[idx(k-1)] + 1
			}
			y := x - k
			x0, y0 := x, y
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			vf[idx(k)] = x
			if odd {
				// Overlap with the reverse (d-1)-paths: reverse diagonal
				// kr corresponds to forward diagonal dlt-kr.
				kr := dlt - k
				if kr >= -(d-1) && kr <= d-1 && vf[idx(k)]+vb[idx(kr)] >= n {
					return snake{x: x0, y: y0, u: x, v: y, d: 2*d - 1}
				}
			}
		}
		// Reverse D-paths; x counts characters consumed from the end of a.
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && vb[idx(k-1)] < vb[idx(k+1)]) {
				x = vb[idx(k+1)]
			} else {
				x = vb[idx(k-1)] + 1
			}
			y := x - k
			x0, y0 := x, y
			for x < n && y < m && a[n-x-1] == b[m-y-1] {
				x++
				y++
			}
			vb[idx(k)] = x
			if !odd {
				kf := dlt - k
				if kf >= -d && kf <= d && vb[idx(k)]+vf[idx(kf)] >= n {
					return snake{x: n - x, y: m - y, u: n - x0, v: m - y0, d: 2 * d}
				}
			}
		}
	}
	// Unreachable for valid inputs; force the defensive replacement path.
	return snake{d: 0}
}
