package diff

import (
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"privedit/internal/delta"
)

// dpDistance is the brute-force O(N·M) reference: the minimum number of
// token insertions plus deletions transforming a's tokens into b's
// (equivalently N + M - 2·LCS). It is the ground truth the linear-space
// middle-snake implementation must match.
func dpDistance(a, b string) int {
	at, bt := tokenize(a).tok, tokenize(b).tok
	n, m := len(at), len(bt)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			if at[i-1] == bt[j-1] {
				cur[j] = prev[j-1]
			} else {
				del := prev[j] + 1
				ins := cur[j-1] + 1
				if del < ins {
					cur[j] = del
				} else {
					cur[j] = ins
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// scriptTokenCost walks d over a and counts the tokens (runes) deleted
// plus inserted, the unit in which the script claims minimality.
func scriptTokenCost(t *testing.T, d delta.Delta, a string) int {
	t.Helper()
	cost := 0
	cursor := 0
	for _, op := range d {
		switch op.Kind {
		case delta.Retain:
			cursor += op.N
		case delta.Delete:
			cost += utf8.RuneCountInString(a[cursor : cursor+op.N])
			cursor += op.N
		case delta.Insert:
			cost += utf8.RuneCountInString(op.Str)
		}
	}
	return cost
}

func randASCII(rng *rand.Rand, n int, alphabet string) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

func randUnicode(rng *rand.Rand, n int) string {
	runes := []rune{'a', 'b', 'é', 'ü', '日', '本', '語', '𝛼', '𝛽', '€', 'ß'}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(runes[rng.Intn(len(runes))])
	}
	return sb.String()
}

// TestDistanceMatchesDP verifies minimality of the middle-snake search
// against the quadratic DP reference on small random inputs. For ASCII the
// byte distance and the token distance coincide, so this pins Distance
// itself; the small alphabet maximizes snake/overlap edge cases.
func TestDistanceMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		a := randASCII(rng, rng.Intn(14), "ab")
		b := randASCII(rng, rng.Intn(14), "ab")
		want := dpDistance(a, b)
		if got := Distance(a, b); got != want {
			t.Fatalf("Distance(%q,%q) = %d, DP reference = %d (delta %q)",
				a, b, got, want, Diff(a, b).String())
		}
	}
	for trial := 0; trial < 500; trial++ {
		a := randASCII(rng, rng.Intn(40), "abcde ")
		b := randASCII(rng, rng.Intn(40), "abcde ")
		want := dpDistance(a, b)
		if got := Distance(a, b); got != want {
			t.Fatalf("Distance(%q,%q) = %d, DP reference = %d", a, b, got, want)
		}
	}
}

// TestDistanceMatchesDPMultibyte verifies rune-unit minimality on
// multibyte inputs: the script's rune cost must equal the token DP.
func TestDistanceMatchesDPMultibyte(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 1500; trial++ {
		a := randUnicode(rng, rng.Intn(12))
		b := randUnicode(rng, rng.Intn(12))
		d := Diff(a, b)
		if got := mustApply(t, d, a); got != b {
			t.Fatalf("Diff(%q,%q) does not round-trip: got %q", a, b, got)
		}
		want := dpDistance(a, b)
		if got := scriptTokenCost(t, d, a); got != want {
			t.Fatalf("Diff(%q,%q) costs %d rune edits, DP reference = %d (delta %q)",
				a, b, got, want, d.String())
		}
	}
}

// TestReplacementBranchUnreachable exercises the defensive sn.d <= 1
// branch in diffRec: after prefix/suffix trimming of non-empty, non-equal
// token ranges the true distance is ≥ 2, so a minimal-distance report of 0
// or 1 from middleSnake would signal a search bug. The DP comparison above
// would catch the resulting non-minimal replacement; here we additionally
// pin the exact boundary cases (distance exactly 2, every length mix).
func TestReplacementBranchUnreachable(t *testing.T) {
	cases := []struct{ a, b string }{
		{"x", "y"},     // 1 vs 1, distance 2
		{"xa", "ya"},   // shared suffix
		{"ax", "ay"},   // shared prefix
		{"x", "yx"},    // prepend
		{"xy", "yx"},   // swap
		{"ab", "ba"},   // swap
		{"aba", "bab"}, // alternating
	}
	for _, tc := range cases {
		if got, want := Distance(tc.a, tc.b), dpDistance(tc.a, tc.b); got != want {
			t.Errorf("Distance(%q,%q) = %d, want %d", tc.a, tc.b, got, want)
		}
	}
}

// checkRuneAligned asserts every operation boundary of d over a falls on a
// rune boundary: retained and deleted source segments and inserted
// payloads must each be valid UTF-8 when the inputs are.
func checkRuneAligned(t *testing.T, d delta.Delta, a string) {
	t.Helper()
	cursor := 0
	for _, op := range d {
		switch op.Kind {
		case delta.Retain, delta.Delete:
			seg := a[cursor : cursor+op.N]
			if !utf8.ValidString(seg) {
				t.Fatalf("op %s%d at byte %d splits a rune: segment %q", op.Kind, op.N, cursor, seg)
			}
			cursor += op.N
		case delta.Insert:
			if !utf8.ValidString(op.Str) {
				t.Fatalf("insert %q at byte %d is not valid UTF-8", op.Str, cursor)
			}
		}
	}
}

// TestDiffNeverSplitsRune is the regression test for the unit-of-position
// bug: the old byte-level Myers could retain half of a multibyte rune and
// delete the other half, producing deltas whose counts no longer aligned
// with character positions.
func TestDiffNeverSplitsRune(t *testing.T) {
	cases := []struct{ a, b string }{
		{"é", "è"},               // same lead byte, different continuation
		{"日本語", "日本話"},           // shared 2-byte prefix inside final rune
		{"aé", "aè"},             // ASCII prefix
		{"día", "dia"},           // accent removed
		{"𝛼𝛽", "𝛽𝛼"},             // 4-byte runes swapped
		{"caña", "cana"},         //
		{"€100", "€200"},         //
		{"日本語テキスト", "日本語のテキスト"}, // insertion mid-string
	}
	for _, tc := range cases {
		d := Diff(tc.a, tc.b)
		if got := mustApply(t, d, tc.a); got != tc.b {
			t.Fatalf("Diff(%q,%q) does not round-trip: got %q", tc.a, tc.b, got)
		}
		checkRuneAligned(t, d, tc.a)
	}
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 500; trial++ {
		a := randUnicode(rng, rng.Intn(30))
		b := randUnicode(rng, rng.Intn(30))
		d := Diff(a, b)
		if got := mustApply(t, d, a); got != b {
			t.Fatalf("trial %d: round-trip failed", trial)
		}
		checkRuneAligned(t, d, a)
	}
}

// TestDiffInvalidUTF8 pins the arbitrary-byte-string contract: invalid
// bytes are one-byte tokens and the diff still round-trips exactly.
func TestDiffInvalidUTF8(t *testing.T) {
	cases := []struct{ a, b string }{
		{"\xff\xfe", "\xff"},
		{"a\x80b", "a\x81b"},
		{"é"[:1], "é"},              // lone lead byte vs full rune
		{"\xf0\x9d\x9b", "𝛼"},       // truncated 4-byte sequence vs full
		{"ab\xc3", "ab\xc3\xa9"},    // truncated suffix completed
		{string([]byte{0, 255}), ""},
	}
	for _, tc := range cases {
		d := Diff(tc.a, tc.b)
		if got := mustApply(t, d, tc.a); got != tc.b {
			t.Fatalf("Diff(%q,%q) does not round-trip: got %q", tc.a, tc.b, got)
		}
	}
}

// FuzzDiff fuzzes the round-trip property with a multibyte-heavy corpus,
// plus rune alignment whenever both inputs are valid UTF-8.
func FuzzDiff(f *testing.F) {
	f.Add("", "")
	f.Add("abc", "abd")
	f.Add("é", "è")
	f.Add("日本語", "日本話")
	f.Add("𝛼𝛽𝛾", "𝛾𝛽𝛼")
	f.Add("naïve café", "naive cafe")
	f.Add("a\x80b", "ab")
	f.Add(strings.Repeat("ü", 50), strings.Repeat("ü", 49)+"u")
	f.Fuzz(func(t *testing.T, a, b string) {
		d := Diff(a, b)
		got, err := d.Apply(a)
		if err != nil {
			t.Fatalf("Diff(%q,%q) = %q does not apply: %v", a, b, d.String(), err)
		}
		if got != b {
			t.Fatalf("Diff(%q,%q) applies to %q, want %q", a, b, got, b)
		}
		if utf8.ValidString(a) && utf8.ValidString(b) {
			checkRuneAligned(t, d, a)
		}
	})
}
