// Package parallel is the worker-pool substrate for the repository's
// data-parallel crypto kernels. The incremental encryption schemes operate
// on streams of independent (rECB) or associatively-aggregated (RPC)
// fixed-width blocks, so whole-document Enc/Dec is embarrassingly parallel
// once the per-block nonces have been drawn in a deterministic order.
//
// The helpers here split an index range [0, n) into one contiguous batch
// per worker and run the batches on their own goroutines. Each call site
// keeps two kernels:
//
//   - a reference serial kernel (selected by pinning Workers to 1): the
//     simple per-block implementation the batched kernels are tested
//     against, and
//   - a batched kernel (any other worker setting): per-worker contiguous
//     block batches over arena-allocated output, which is faster even on a
//     single worker because it amortizes allocation and cipher setup across
//     the whole run.
//
// Fan-out to multiple goroutines only happens above a crossover threshold
// (picked by benchmark, see MinParallelBlocks): below it the ~10µs cost of
// spawning a handful of goroutines exceeds the work being split.
package parallel

import (
	"runtime"
	"sync"
)

// MinParallelBlocks is the default fan-out crossover threshold: batched
// kernels over fewer blocks than this run their batch loop inline on the
// caller's goroutine instead of spawning workers. The value was picked from
// the serial-vs-batched Enc benchmark in cmd/privedit-load (-enc-bench):
// with AES-NI a block seals in well under a microsecond, so the ~10µs cost
// of fanning out a handful of goroutines only amortizes once a call covers
// a few thousand blocks (≈ a 10-20k character document at b=8).
const MinParallelBlocks = 2048

// Workers normalizes a requested worker count: n > 0 is used as given,
// anything else resolves to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// UseSerial reports whether a call over n blocks should take the reference
// serial kernel: the caller explicitly pinned workers to 1, or the input is
// trivially small. Everything else takes the batched kernel, with Plan
// deciding how many goroutines (if any) it fans out to.
func UseSerial(n, workers int) bool {
	return workers == 1 || n < 2
}

// Plan resolves the goroutine count for a batched kernel call over n
// blocks: 1 (run the batch loop inline) below the fan-out threshold, and
// min(Workers(workers), n) above it.
func Plan(n, workers, threshold int) int {
	if n < threshold {
		return 1
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BatchRange runs fn over [0, n) split into one contiguous batch per
// worker and waits for all batches. fn receives the worker index — so
// callers can hand each worker pre-allocated scratch — and half-open
// [lo, hi) bounds; it is called concurrently and must only touch disjoint
// state per index (or per worker). With one worker (or n < 2) fn runs
// inline on the caller's goroutine.
//
// Errors are deterministic: every batch runs to completion, each batch's
// error is collected separately, and the error of the lowest-indexed
// failing batch is returned. Batches cover ascending index ranges, so for
// kernels whose per-index errors identify the index (e.g. "record %d"),
// the same corrupt input always yields the same diagnostic regardless of
// goroutine scheduling.
func BatchRange(n, workers int, fn func(worker, lo, hi int) error) error {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		if n <= 0 {
			return nil
		}
		return fn(0, 0, n)
	}

	var wg sync.WaitGroup
	errs := make([]error, w)
	// Distribute n over w batches as evenly as possible: the first `rem`
	// batches get one extra element.
	size := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			errs[worker] = fn(worker, lo, hi)
		}(i, lo, hi)
		lo = hi
	}
	wg.Wait()
	// Worker indices are assigned in ascending index order, so the first
	// non-nil entry is the lowest-indexed failing batch.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Range runs fn over [0, n) split into one contiguous chunk per worker and
// waits for all chunks. fn receives half-open [lo, hi) bounds and is called
// concurrently, so it must only touch disjoint state per index. Like
// BatchRange, the error of the lowest-indexed failing chunk is returned.
//
// Range does not apply the fan-out heuristic itself — callers decide with
// UseSerial/Plan — but it degenerates gracefully: with one worker (or
// n < 2) fn runs inline on the caller's goroutine.
func Range(n, workers int, fn func(lo, hi int) error) error {
	return BatchRange(n, workers, func(_, lo, hi int) error { return fn(lo, hi) })
}
