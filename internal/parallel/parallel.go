// Package parallel is the worker-pool substrate for the repository's
// data-parallel crypto kernels. The incremental encryption schemes operate
// on streams of independent (rECB) or associatively-aggregated (RPC)
// fixed-width blocks, so whole-document Enc/Dec is embarrassingly parallel
// once the per-block nonces have been drawn in a deterministic order.
//
// The helpers here split an index range [0, n) into one contiguous chunk
// per worker and run the chunks on their own goroutines. Callers keep the
// serial path for small inputs: below a per-call-site crossover threshold
// (picked by benchmark, see MinParallelBlocks) the fan-out overhead of a
// few goroutines costs more than it saves.
package parallel

import (
	"runtime"
	"sync"
)

// MinParallelBlocks is the default crossover threshold: inputs with fewer
// blocks than this run serially. The value was picked from the
// serial-vs-parallel Enc benchmark in cmd/privedit-load (-enc-bench): with
// AES-NI a block seals in well under a microsecond, so the ~10µs cost of
// fanning out a handful of goroutines only amortizes once a call covers a
// few thousand blocks (≈ a 10-20k character document at b=8).
const MinParallelBlocks = 2048

// Workers normalizes a requested worker count: n > 0 is used as given,
// anything else resolves to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// UseSerial reports whether a call over n blocks with the given requested
// worker count should take the serial path: either parallelism is disabled
// (workers == 1), only one worker would receive work, or the input is below
// the crossover threshold.
func UseSerial(n, workers, threshold int) bool {
	return Workers(workers) < 2 || n < 2 || n < threshold
}

// Range runs fn over [0, n) split into one contiguous chunk per worker and
// waits for all chunks. fn receives half-open [lo, hi) bounds and is called
// concurrently, so it must only touch disjoint state per index. The first
// non-nil error is returned; other chunks still run to completion.
//
// Range does not apply the crossover heuristic itself — callers decide with
// UseSerial — but it degenerates gracefully: with one worker (or n < 2) fn
// runs inline on the caller's goroutine.
func Range(n, workers int, fn func(lo, hi int) error) error {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		if n <= 0 {
			return nil
		}
		return fn(0, n)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	// Distribute n over w chunks as evenly as possible: the first `rem`
	// chunks get one extra element.
	size := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := fn(lo, hi); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	return firstErr
}
