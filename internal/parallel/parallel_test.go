package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRangeCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 100} {
			seen := make([]atomic.Int32, n)
			err := Range(n, w, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, got)
				}
			}
		}
	}
}

func TestBatchRangeCoversEveryIndexWithDisjointWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 100} {
			seen := make([]atomic.Int32, n)
			var batches atomic.Int32
			err := BatchRange(n, w, func(worker, lo, hi int) error {
				batches.Add(1)
				if worker < 0 || worker >= Workers(w) {
					return fmt.Errorf("worker index %d out of range", worker)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, got)
				}
			}
		}
	}
}

func TestBatchRangeWorkerIndicesAreDistinct(t *testing.T) {
	const n, w = 100, 4
	var hits [w]atomic.Int32
	err := BatchRange(n, w, func(worker, lo, hi int) error {
		hits[worker].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("worker %d ran %d batches, want 1", i, got)
		}
	}
}

func TestRangeReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := Range(100, 4, func(lo, hi int) error {
		if lo <= 42 && 42 < hi {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

// TestRangeErrorIsDeterministic seeds two failing records far apart so they
// land in different worker chunks, and requires every schedule to report
// the lowest-indexed one. This pins the fix for the old errOnce race, where
// whichever failing chunk's goroutine won reported its own "record %d" and
// the same corrupt document produced a different diagnostic run to run.
func TestRangeErrorIsDeterministic(t *testing.T) {
	const n = 10_000
	corrupt := map[int]bool{137: true, 9_411: true} // two seeded-corrupt records
	for trial := 0; trial < 200; trial++ {
		for _, w := range []int{2, 3, 8} {
			err := Range(n, w, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					if corrupt[i] {
						return fmt.Errorf("record %d: corrupt", i)
					}
				}
				return nil
			})
			if err == nil {
				t.Fatalf("w=%d: expected an error", w)
			}
			if got := err.Error(); got != "record 137: corrupt" {
				t.Fatalf("w=%d trial %d: nondeterministic error %q, want the lowest-index record", w, trial, got)
			}
		}
	}
}

// Even when the lowest-index failure is in the last-spawned chunk, it must
// not be outraced by an error from a higher chunk.
func TestBatchRangeErrorLowestBatchWins(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		err := BatchRange(100, 4, func(worker, lo, hi int) error {
			return fmt.Errorf("batch %d failed", worker)
		})
		if err == nil || err.Error() != "batch 0 failed" {
			t.Fatalf("trial %d: got %v, want batch 0's error", trial, err)
		}
	}
}

func TestRangeSerialFallback(t *testing.T) {
	calls := 0
	err := Range(10, 1, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial path got [%d,%d)", lo, hi)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestUseSerial(t *testing.T) {
	cases := []struct {
		n, workers int
		want       bool
	}{
		{10, 1, true},   // reference kernel explicitly requested
		{1, 8, true},    // single block
		{1, 0, true},    // single block, auto workers
		{100, 8, false}, // batched kernel, even below the fan-out threshold
		{100, 0, false},
		{5000, 8, false},
		{5000, 0, false},
	}
	for _, c := range cases {
		if got := UseSerial(c.n, c.workers); got != c.want {
			t.Errorf("UseSerial(%d,%d) = %v, want %v", c.n, c.workers, got, c.want)
		}
	}
}

func TestPlan(t *testing.T) {
	cases := []struct {
		n, workers, threshold int
		want                  int
	}{
		{100, 8, 2048, 1},  // below the crossover: inline batch loop
		{5000, 8, 2048, 8}, // above: fan out
		{5000, 4, 2048, 4},
		{3, 8, 2, 3},              // never more workers than blocks
		{5000, -1, 2048, Workers(0)}, // auto resolves to GOMAXPROCS
	}
	for _, c := range cases {
		if got := Plan(c.n, c.workers, c.threshold); got != c.want {
			t.Errorf("Plan(%d,%d,%d) = %d, want %d", c.n, c.workers, c.threshold, got, c.want)
		}
	}
}
