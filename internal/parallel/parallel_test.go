package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRangeCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 100} {
			seen := make([]atomic.Int32, n)
			err := Range(n, w, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, got)
				}
			}
		}
	}
}

func TestRangeReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := Range(100, 4, func(lo, hi int) error {
		if lo <= 42 && 42 < hi {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestRangeSerialFallback(t *testing.T) {
	calls := 0
	err := Range(10, 1, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial path got [%d,%d)", lo, hi)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestUseSerial(t *testing.T) {
	cases := []struct {
		n, workers, threshold int
		want                  bool
	}{
		{10, 1, 0, true},     // parallelism disabled
		{1, 8, 0, true},      // single block
		{100, 8, 1000, true}, // below crossover
		{5000, 8, 1000, false},
		{5000, 0, 1000, false}, // 0 workers -> GOMAXPROCS (assumed > 1 in CI)
	}
	for _, c := range cases {
		if runtime.GOMAXPROCS(0) == 1 && c.workers == 0 {
			continue
		}
		if got := UseSerial(c.n, c.workers, c.threshold); got != c.want {
			t.Errorf("UseSerial(%d,%d,%d) = %v, want %v", c.n, c.workers, c.threshold, got, c.want)
		}
	}
}
