package replica

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
)

type world struct {
	servers []*gdocs.Server
	ts      []*httptest.Server
	store   *Store
	editor  *core.Editor
}

func newWorld(t *testing.T, n int) *world {
	t.Helper()
	w := &world{}
	providers := make([]Provider, n)
	for i := 0; i < n; i++ {
		s := gdocs.NewServer()
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		w.servers = append(w.servers, s)
		w.ts = append(w.ts, ts)
		providers[i] = Provider{
			Name: string(rune('A' + i)),
			Base: ts.URL,
			HTTP: ts.Client(),
		}
	}
	store, err := New("replicated-doc", providers...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.store = store
	ed, err := core.NewEditor("pw", core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(uint64(n) + 5),
	})
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	w.editor = ed
	return w
}

func (w *world) saveText(t *testing.T, text string) {
	t.Helper()
	transport, err := w.editor.Encrypt(text)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if err := w.store.SaveFull(transport); err != nil {
		t.Fatalf("SaveFull: %v", err)
	}
}

func (w *world) splice(t *testing.T, pos, del int, ins string) {
	t.Helper()
	cd, err := w.editor.Splice(pos, del, ins)
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if err := w.store.SaveDelta(cd, w.editor.Transport()); err != nil {
		t.Fatalf("SaveDelta: %v", err)
	}
}

func TestNewRequiresProviders(t *testing.T) {
	if _, err := New("d"); err == nil {
		t.Error("New with no providers accepted")
	}
}

func TestReplicatedSession(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.saveText(t, "replicated across three clouds")
	w.splice(t, 0, 0, "now ")

	// Every provider holds the same container.
	var contents []string
	for _, s := range w.servers {
		c, _, err := s.Content(context.Background(), "replicated-doc")
		if err != nil {
			t.Fatalf("Content: %v", err)
		}
		contents = append(contents, c)
	}
	if contents[0] != contents[1] || contents[1] != contents[2] {
		t.Error("replicas diverged after delta save")
	}
	got, err := core.Decrypt("pw", contents[0])
	if err != nil || got != "now replicated across three clouds" {
		t.Errorf("replica decrypts to (%q, %v)", got, err)
	}
	if names := w.store.Providers(); len(names) != 3 || names[0] != "A" {
		t.Errorf("Providers = %v", names)
	}
}

func TestLoadSurvivesTamperingProvider(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.saveText(t, "integrity protected and replicated")

	// Provider B tampers with its copy.
	c, _, err := w.servers[1].Content(context.Background(), "replicated-doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	tampered := []byte(c)
	tampered[len(tampered)/2] ^= 2
	if _, err := w.servers[1].SetContents(context.Background(), "replicated-doc", string(tampered), -1); err != nil {
		t.Fatalf("tamper: %v", err)
	}

	ed, report, err := w.store.Load("pw")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ed.Plaintext() != "integrity protected and replicated" {
		t.Errorf("loaded %q", ed.Plaintext())
	}
	if len(report.Intact) != 2 {
		t.Errorf("intact = %v", report.Intact)
	}
	if _, bad := report.Damaged["B"]; !bad {
		t.Errorf("damaged = %v, want B flagged", report.Damaged)
	}

	// Repair B, then all replicas agree again.
	repaired, err := w.store.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(repaired) != 1 || repaired[0] != "B" {
		t.Errorf("repaired = %v", repaired)
	}
	cb, _, err := w.servers[1].Content(context.Background(), "replicated-doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	if got, err := core.Decrypt("pw", cb); err != nil || got != "integrity protected and replicated" {
		t.Errorf("repaired replica = (%q, %v)", got, err)
	}
}

func TestSaveDeltaRepairsDivergentReplica(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.saveText(t, "base document text")

	// Provider C silently replaces its copy (diverges).
	if _, err := w.servers[2].SetContents(context.Background(), "replicated-doc", strings.Repeat("Z", 100), -1); err != nil {
		t.Fatalf("diverge: %v", err)
	}

	// The next delta save cannot apply on C; the store repairs it with
	// the full container.
	w.splice(t, 0, 4, "seed")
	cc, _, err := w.servers[2].Content(context.Background(), "replicated-doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	got, err := core.Decrypt("pw", cc)
	if err != nil || got != "seed document text" {
		t.Errorf("C after repair = (%q, %v)", got, err)
	}
}

func TestWritesTolerateMinorityOutage(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.saveText(t, "before the outage")

	// Provider A goes down.
	w.ts[0].Close()
	w.splice(t, 0, 0, "still writable: ")

	// The two healthy providers hold the update.
	for i := 1; i <= 2; i++ {
		c, _, err := w.servers[i].Content(context.Background(), "replicated-doc")
		if err != nil {
			t.Fatalf("Content: %v", err)
		}
		got, err := core.Decrypt("pw", c)
		if err != nil || got != "still writable: before the outage" {
			t.Errorf("provider %d = (%q, %v)", i, got, err)
		}
	}
	// And loads prefer the healthy replicas.
	ed, report, err := w.store.Load("pw")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ed.Plaintext() != "still writable: before the outage" {
		t.Errorf("loaded %q", ed.Plaintext())
	}
	if _, bad := report.Damaged["A"]; !bad {
		t.Error("down provider not reported")
	}
}

func TestWritesFailWithoutQuorum(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.saveText(t, "doomed")
	w.ts[0].Close()
	w.ts[1].Close()

	transport, err := w.editor.Encrypt("doomed v2")
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if err := w.store.SaveFull(transport); !errors.Is(err, ErrQuorum) {
		t.Errorf("SaveFull with 1/3 up = %v, want ErrQuorum", err)
	}
}

func TestLoadFailsWhenAllCorrupt(t *testing.T) {
	w := newWorld(t, 2)
	if err := w.store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.saveText(t, "everything burns")
	for _, s := range w.servers {
		if _, err := s.SetContents(context.Background(), "replicated-doc", "GARBAGE", -1); err != nil {
			t.Fatalf("corrupt: %v", err)
		}
	}
	if _, _, err := w.store.Load("pw"); !errors.Is(err, ErrNoReplica) {
		t.Errorf("Load with all corrupt = %v, want ErrNoReplica", err)
	}
}

func TestRepairWithoutStateErrors(t *testing.T) {
	w := newWorld(t, 2)
	if _, err := w.store.Repair(); err == nil {
		t.Error("Repair with no known-good container accepted")
	}
}
