// Package replica implements the availability extension §I of the paper
// leaves as out of scope: "Our approach still relies on the cloud provider
// to store the user's data, so a malicious or incompetent cloud provider
// can easily prevent users from accessing their documents. This could be
// addressed using replication with multiple cloud providers."
//
// A Store keeps one encrypted document on several independent simulated
// Google Documents providers. Saves go to every reachable provider; a
// provider that missed updates (offline, or caught corrupting data) is
// repaired with the full container on the next save. Loads try providers
// in order and return the first container that decrypts *and verifies* —
// with RPC mode, a provider serving tampered bytes is detected and skipped,
// so one honest provider suffices to recover the document.
//
// The store operates strictly on ciphertext: it composes with the
// mediating extension rather than replacing it, and providers learn
// nothing they would not learn in the single-provider deployment.
package replica

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"privedit/internal/core"
	"privedit/internal/delta"
	"privedit/internal/gdocs"
)

// Provider is one independent storage service speaking the gdocs protocol.
type Provider struct {
	// Name identifies the provider in reports.
	Name string
	// Base is the service URL.
	Base string
	// HTTP performs requests; nil means http.DefaultClient.
	HTTP *http.Client
}

func (p Provider) client() *http.Client {
	if p.HTTP != nil {
		return p.HTTP
	}
	return http.DefaultClient
}

// Store errors.
var (
	// ErrQuorum is returned when fewer than a majority of providers
	// accepted a write.
	ErrQuorum = errors.New("replica: write quorum not reached")
	// ErrNoReplica is returned when no provider holds a container that
	// decrypts and verifies.
	ErrNoReplica = errors.New("replica: no intact replica found")
)

// Store replicates one document across providers. Safe for concurrent use.
type Store struct {
	docID     string
	providers []Provider

	mu    sync.Mutex
	last  string // last known-good full container, for repairs
	dirty []bool // providers needing a full-container repair
}

// New builds a store over the given providers (at least one).
func New(docID string, providers ...Provider) (*Store, error) {
	if len(providers) == 0 {
		return nil, errors.New("replica: no providers")
	}
	return &Store{
		docID:     docID,
		providers: providers,
		dirty:     make([]bool, len(providers)),
	}, nil
}

// Providers returns the provider names, in order.
func (s *Store) Providers() []string {
	names := make([]string, len(s.providers))
	for i, p := range s.providers {
		names[i] = p.Name
	}
	return names
}

func (s *Store) post(p Provider, path string, form url.Values) error {
	resp, err := p.client().Post(p.Base+path, "application/x-www-form-urlencoded",
		strings.NewReader(form.Encode()))
	if err != nil {
		return fmt.Errorf("replica: %s: %w", p.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("replica: %s: status %d: %s", p.Name, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

func (s *Store) get(p Provider) (string, error) {
	resp, err := p.client().Get(p.Base + gdocs.PathDoc + "?" + url.Values{gdocs.FieldDocID: {s.docID}}.Encode())
	if err != nil {
		return "", fmt.Errorf("replica: %s: %w", p.Name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("replica: %s: read: %w", p.Name, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("replica: %s: status %d", p.Name, resp.StatusCode)
	}
	return string(body), nil
}

// quorum is the minimum number of successful writes: a strict majority.
func (s *Store) quorum() int { return len(s.providers)/2 + 1 }

// Create registers the document on every provider. Providers that cannot
// be reached are marked for repair; a majority must succeed.
func (s *Store) Create() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	oks := 0
	var firstErr error
	for i, p := range s.providers {
		err := s.post(p, gdocs.PathCreate, url.Values{gdocs.FieldDocID: {s.docID}})
		if err != nil {
			s.dirty[i] = true
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		oks++
	}
	if oks < s.quorum() {
		return fmt.Errorf("%w: %d/%d (%v)", ErrQuorum, oks, len(s.providers), firstErr)
	}
	return nil
}

// SaveFull stores the complete container on every provider.
func (s *Store) SaveFull(transport string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveFullLocked(transport)
}

func (s *Store) saveFullLocked(transport string) error {
	oks := 0
	var firstErr error
	for i, p := range s.providers {
		form := url.Values{
			gdocs.FieldDocID:       {s.docID},
			gdocs.FieldDocContents: {transport},
		}
		if err := s.post(p, gdocs.PathDoc, form); err != nil {
			s.dirty[i] = true
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.dirty[i] = false
		oks++
	}
	s.last = transport
	if oks < s.quorum() {
		return fmt.Errorf("%w: %d/%d (%v)", ErrQuorum, oks, len(s.providers), firstErr)
	}
	return nil
}

// SaveDelta applies an incremental ciphertext update on every provider.
// fullAfter is the complete container after the update (the extension
// always has it); providers that rejected the delta — because they missed
// earlier updates or tampered with their copy — are repaired with it.
func (s *Store) SaveDelta(cd delta.Delta, fullAfter string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	oks := 0
	var firstErr error
	wire := cd.String()
	for i, p := range s.providers {
		if s.dirty[i] {
			// Missed updates: ship the whole container instead.
			form := url.Values{
				gdocs.FieldDocID:       {s.docID},
				gdocs.FieldDocContents: {fullAfter},
			}
			if err := s.post(p, gdocs.PathDoc, form); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			s.dirty[i] = false
			oks++
			continue
		}
		form := url.Values{
			gdocs.FieldDocID: {s.docID},
			gdocs.FieldDelta: {wire},
		}
		if err := s.post(p, gdocs.PathDoc, form); err != nil {
			// The delta did not apply cleanly (divergent replica) or the
			// provider is unreachable: mark for repair next round, and
			// try an immediate full-container repair.
			form := url.Values{
				gdocs.FieldDocID:       {s.docID},
				gdocs.FieldDocContents: {fullAfter},
			}
			if rerr := s.post(p, gdocs.PathDoc, form); rerr != nil {
				s.dirty[i] = true
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			s.dirty[i] = false
			oks++
			continue
		}
		oks++
	}
	s.last = fullAfter
	if oks < s.quorum() {
		return fmt.Errorf("%w: %d/%d (%v)", ErrQuorum, oks, len(s.providers), firstErr)
	}
	return nil
}

// LoadReport describes what Load found on each provider.
type LoadReport struct {
	// Chosen is the index of the provider whose replica was used (-1 if
	// none).
	Chosen int
	// Intact lists providers whose replica decrypted and verified.
	Intact []string
	// Damaged lists providers whose replica was unreachable, corrupt, or
	// failed integrity verification, with reasons.
	Damaged map[string]string
}

// Load fetches the document, trying every provider and returning an editor
// opened from the first replica that decrypts and verifies. Every replica
// is inspected so the report names all damaged providers.
func (s *Store) Load(password string) (*core.Editor, LoadReport, error) {
	report := LoadReport{Chosen: -1, Damaged: make(map[string]string)}
	var chosen *core.Editor
	for i, p := range s.providers {
		transport, err := s.get(p)
		if err != nil {
			report.Damaged[p.Name] = err.Error()
			continue
		}
		ed, err := core.OpenWith(password, transport, core.Options{})
		if err != nil {
			report.Damaged[p.Name] = err.Error()
			continue
		}
		report.Intact = append(report.Intact, p.Name)
		if chosen == nil {
			chosen = ed
			report.Chosen = i
		}
	}
	if chosen == nil {
		return nil, report, ErrNoReplica
	}
	s.mu.Lock()
	s.last = chosen.Transport()
	for i, p := range s.providers {
		if _, bad := report.Damaged[p.Name]; bad {
			s.dirty[i] = true
		}
	}
	s.mu.Unlock()
	return chosen, report, nil
}

// Repair overwrites every damaged replica with the last known-good
// container and returns the names of the providers repaired.
func (s *Store) Repair() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == "" {
		return nil, errors.New("replica: nothing to repair from (no known-good container)")
	}
	var repaired []string
	for i, p := range s.providers {
		if !s.dirty[i] {
			continue
		}
		form := url.Values{
			gdocs.FieldDocID:       {s.docID},
			gdocs.FieldDocContents: {s.last},
		}
		if err := s.post(p, gdocs.PathDoc, form); err != nil {
			continue
		}
		s.dirty[i] = false
		repaired = append(repaired, p.Name)
	}
	return repaired, nil
}
