// Package covert implements the §VI-B countermeasures against a malicious
// client application that tries to leak document contents to the server
// through covert channels:
//
//   - Delta canonicalization: "maintaining each group of delta updates and
//     merging them into a canonical form before sending an update to the
//     server, or ... using trusted code to compute the delta values from
//     the two versions of the document directly." We do the strong form:
//     the canonical delta is re-derived with Myers diff from the before and
//     after document states, so no information can ride on the client's
//     choice among equivalent op sequences.
//
//   - Random message padding: "randomly pad the content (without affecting
//     the correctness of the content) before encryption", decorrelating
//     message length from edit size.
//
//   - Random delay: "add random delays (without noticeably disrupting the
//     user experience since the updates are asynchronous) to every
//     outgoing update request", disrupting the timing channel.
package covert

import (
	"strings"
	"time"

	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/diff"
)

// Config selects which mitigations a Mitigator applies.
type Config struct {
	// CanonicalizeDeltas re-derives every outgoing delta from the
	// document states, destroying op-sequence covert channels.
	CanonicalizeDeltas bool
	// PadQuantum, when positive, pads outgoing update messages up to a
	// random multiple of this many characters (via content the server
	// ignores), hiding the exact update size.
	PadQuantum int
	// MaxDelay, when positive, adds a uniform random delay in
	// [0, MaxDelay) before each outgoing update, disturbing the timing
	// channel.
	MaxDelay time.Duration
}

// DefaultConfig enables all three mitigations with moderate parameters.
func DefaultConfig() Config {
	return Config{
		CanonicalizeDeltas: true,
		PadQuantum:         64,
		MaxDelay:           250 * time.Millisecond,
	}
}

// Mitigator applies the configured countermeasures. Randomness comes from
// a crypt.NonceSource so tests and benchmarks stay reproducible.
type Mitigator struct {
	cfg    Config
	nonces crypt.NonceSource
	sleep  func(time.Duration) // test hook; defaults to time.Sleep
}

// New builds a Mitigator. nonces may be nil for the secure default source.
func New(cfg Config, nonces crypt.NonceSource) *Mitigator {
	if nonces == nil {
		nonces = crypt.CryptoNonceSource{}
	}
	return &Mitigator{cfg: cfg, nonces: nonces, sleep: time.Sleep}
}

// Config returns the active configuration.
func (m *Mitigator) Config() Config { return m.cfg }

// CanonicalDelta returns the canonical form of d against the document
// state oldDoc: the minimal delta with the same effect. A malicious
// client's redundant op sequences (e.g. the paper's Ord(q) insert/delete
// encoding) collapse to the same canonical delta as an honest edit.
func (m *Mitigator) CanonicalDelta(oldDoc string, d delta.Delta) (delta.Delta, error) {
	if !m.cfg.CanonicalizeDeltas {
		return d, nil
	}
	newDoc, err := d.Apply(oldDoc)
	if err != nil {
		return nil, err
	}
	return diff.Diff(oldDoc, newDoc), nil
}

// PadFor returns filler text sized so that payloadLen plus the filler
// reaches a randomly chosen multiple of the pad quantum. The filler goes
// into a request field the server ignores, so content correctness is
// unaffected.
func (m *Mitigator) PadFor(payloadLen int) string {
	q := m.cfg.PadQuantum
	if q <= 0 {
		return ""
	}
	// Round up to the next quantum, then add 0..3 extra quanta at random
	// so equal-size updates do not always produce equal-size messages.
	target := (payloadLen/q + 1 + int(m.nonces.Nonce64()%4)) * q
	return strings.Repeat("A", target-payloadLen)
}

// Delay sleeps for a uniform random duration in [0, MaxDelay).
func (m *Mitigator) Delay() time.Duration {
	if m.cfg.MaxDelay <= 0 {
		return 0
	}
	d := time.Duration(m.nonces.Nonce64() % uint64(m.cfg.MaxDelay))
	m.sleep(d)
	return d
}
