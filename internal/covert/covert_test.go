package covert

import (
	"strings"
	"testing"
	"time"

	"privedit/internal/crypt"
	"privedit/internal/delta"
)

func TestCanonicalDeltaCollapsesFragmentation(t *testing.T) {
	m := New(Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(1))
	doc := "the quick brown fox"
	// 11 one-char inserts: op count encodes a covert value.
	var mal delta.Delta
	for _, ch := range "hello cover" {
		mal = append(mal, delta.InsertOp(string(ch)))
	}
	got, err := m.CanonicalDelta(doc, mal)
	if err != nil {
		t.Fatalf("CanonicalDelta: %v", err)
	}
	if len(got) > 2 {
		t.Errorf("canonical delta has %d ops (%q), want <= 2", len(got), got.String())
	}
	want, err := mal.Apply(doc)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	out, err := got.Apply(doc)
	if err != nil || out != want {
		t.Errorf("canonical delta changes semantics: %q vs %q", out, want)
	}
}

func TestCanonicalDeltaEquivalentSequencesConverge(t *testing.T) {
	// Two different op sequences with the same effect must canonicalize
	// to the same delta: the covert channel carries zero bits.
	m := New(Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(2))
	doc := "abcdefghij"
	d1 := delta.Delta{delta.RetainOp(3), delta.InsertOp("XY")}
	d2 := delta.Delta{delta.RetainOp(1), delta.RetainOp(2), delta.InsertOp("X"), delta.InsertOp("Y"), delta.RetainOp(7)}
	c1, err := m.CanonicalDelta(doc, d1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.CanonicalDelta(doc, d2)
	if err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Errorf("equivalent deltas canonicalize differently: %q vs %q", c1.String(), c2.String())
	}
}

func TestCanonicalDeltaInsertThenDeleteTrick(t *testing.T) {
	// The paper's extreme example: junk edits that cancel out must
	// canonicalize to the pure real edit. Model: insert junk at the
	// cursor, then delete the following original chars and reinsert them.
	m := New(Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(3))
	doc := "abcdefghij"
	mal := delta.Delta{
		delta.InsertOp("q"),     // the real edit
		delta.DeleteOp(5),       // covert: delete "abcde"
		delta.InsertOp("abcde"), // ...and put it right back
	}
	got, err := m.CanonicalDelta(doc, mal)
	if err != nil {
		t.Fatal(err)
	}
	want := delta.Delta{delta.InsertOp("q")}
	if got.String() != want.String() {
		t.Errorf("canonical = %q, want %q", got.String(), want.String())
	}
}

func TestCanonicalDeltaDisabled(t *testing.T) {
	m := New(Config{}, crypt.NewSeededNonceSource(4))
	d := delta.Delta{delta.InsertOp("a"), delta.InsertOp("b")}
	got, err := m.CanonicalDelta("doc", d)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != d.String() {
		t.Error("disabled canonicalization modified the delta")
	}
}

func TestCanonicalDeltaInvalid(t *testing.T) {
	m := New(Config{CanonicalizeDeltas: true}, crypt.NewSeededNonceSource(5))
	if _, err := m.CanonicalDelta("ab", delta.Delta{delta.RetainOp(10)}); err == nil {
		t.Error("invalid delta accepted")
	}
}

func TestPadForQuantizesLength(t *testing.T) {
	m := New(Config{PadQuantum: 64}, crypt.NewSeededNonceSource(6))
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		pad := m.PadFor(n)
		total := n + len(pad)
		if total%64 != 0 {
			t.Errorf("PadFor(%d): total %d not a multiple of 64", n, total)
		}
		if len(pad) == 0 {
			t.Errorf("PadFor(%d) returned no padding", n)
		}
	}
}

func TestPadForRandomizes(t *testing.T) {
	m := New(Config{PadQuantum: 32}, crypt.NewSeededNonceSource(7))
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[len(m.PadFor(100))] = true
	}
	if len(seen) < 2 {
		t.Error("padding length never varies; size channel not disturbed")
	}
}

func TestPadForDisabled(t *testing.T) {
	m := New(Config{}, crypt.NewSeededNonceSource(8))
	if m.PadFor(100) != "" {
		t.Error("disabled padding produced output")
	}
}

func TestDelayBoundedAndRandom(t *testing.T) {
	var slept []time.Duration
	m := New(Config{MaxDelay: time.Second}, crypt.NewSeededNonceSource(9))
	m.sleep = func(d time.Duration) { slept = append(slept, d) }
	for i := 0; i < 100; i++ {
		d := m.Delay()
		if d < 0 || d >= time.Second {
			t.Fatalf("delay %v outside [0, 1s)", d)
		}
	}
	if len(slept) != 100 {
		t.Fatalf("sleep called %d times", len(slept))
	}
	distinct := map[time.Duration]bool{}
	for _, d := range slept {
		distinct[d] = true
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct delays in 100 draws", len(distinct))
	}
}

func TestDelayDisabled(t *testing.T) {
	m := New(Config{}, crypt.NewSeededNonceSource(10))
	m.sleep = func(time.Duration) { t.Error("slept with delays disabled") }
	if d := m.Delay(); d != 0 {
		t.Errorf("disabled delay = %v", d)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.CanonicalizeDeltas || cfg.PadQuantum <= 0 || cfg.MaxDelay <= 0 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestPaddingIsInert(t *testing.T) {
	m := New(Config{PadQuantum: 16}, crypt.NewSeededNonceSource(11))
	pad := m.PadFor(5)
	if strings.Trim(pad, "A") != "" {
		t.Errorf("padding contains unexpected bytes: %q", pad)
	}
}
