// Package obs is the repository's telemetry layer: always-on, low-overhead
// counters, gauges, bounded-bucket latency histograms, and lightweight
// spans, behind a registry that renders both Prometheus text exposition and
// JSON. It is stdlib-only by design.
//
// The package exists because the paper's headline claims are quantitative
// (§VII measures per-keystroke transform_delta latency, ciphertext blowup,
// and block split behaviour) while the reproduction previously could not
// report what it did at runtime. Every layer of the client→mediator→server
// path registers metric families here; cmd/privedit-server exposes them on
// /metrics and the CLI tools via -metrics-dump.
//
// Cost model: instrumented packages register their metrics once at init
// against the Default registry, which starts *disabled*. Every mutating
// method first loads one atomic flag and returns immediately when the
// registry is nil or disabled, so an un-enabled call site costs a couple of
// nanoseconds (see BenchmarkObsDisabled). Binaries that want telemetry call
// obs.Enable().
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind. Histograms are
// exposed as summaries (pre-computed quantiles, _sum, _count).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Registry holds an ordered set of metric families. The zero value is not
// usable; construct with NewRegistry. All methods are safe for concurrent
// use, and all metric mutations are nil-safe no-ops when the registry is
// nil or disabled.
type Registry struct {
	enabled atomic.Bool

	mu      sync.Mutex
	byName  map[string]*family
	ordered []*family
}

// family is one metric name: a kind, help text, and one child per label
// set.
type family struct {
	name    string
	help    string
	kind    Kind
	bounds  []float64 // histogram bucket upper bounds
	mu      sync.Mutex
	byLabel map[string]any // label key -> *Counter | *Gauge | *Histogram
	ordered []labeledChild
}

type labeledChild struct {
	labels []string // flattened k,v pairs as given at registration
	metric any
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

// Default is the process-wide registry that instrumented packages register
// against at init. It starts disabled: until Enable is called, every
// instrumentation call site is a nanosecond-scale no-op.
var Default = func() *Registry {
	r := NewRegistry()
	r.enabled.Store(false)
	return r
}()

// Enable turns on the Default registry.
func Enable() { Default.SetEnabled(true) }

// SetEnabled flips metric collection. Registration is always allowed; only
// mutations (Add, Set, Observe, spans) are gated.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether mutations are being recorded.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// labelKey serializes label pairs into a canonical child key, sorted by
// label name so {a=1,b=2} and {b=2,a=1} are the same series.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	return b.String()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// familyFor finds or creates the named family. Kind conflicts are
// programmer errors and panic.
func (r *Registry) familyFor(name, help string, kind Kind, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds, byLabel: make(map[string]any)}
	r.byName[name] = f
	r.ordered = append(r.ordered, f)
	return f
}

// child finds or creates the series for the given label pairs, using make
// to build a fresh metric when absent.
func (f *family) child(labels []string, make func() any) any {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %v", f.name, labels))
	}
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.byLabel[key]; ok {
		return m
	}
	m := make()
	f.byLabel[key] = m
	f.ordered = append(f.ordered, labeledChild{labels: append([]string(nil), labels...), metric: m})
	return m
}

// ---------------------------------------------------------------- Counter

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (no-op).
type Counter struct {
	reg *Registry
	v   atomic.Int64
}

// NewCounter registers (or fetches) a counter on a registry. labels are
// alternating name/value pairs; the same name+labels returns the same
// series.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindCounter, nil)
	return f.child(labels, func() any { return &Counter{reg: r} }).(*Counter)
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string, labels ...string) *Counter {
	return Default.NewCounter(name, help, labels...)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored; counters are
// monotone). No-op when nil or the owning registry is disabled.
func (c *Counter) Add(n int64) {
	if c == nil || !c.reg.enabled.Load() || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ------------------------------------------------------------------ Gauge

// Gauge is a float64 metric that can go up and down. All methods are safe
// on a nil receiver.
type Gauge struct {
	reg *Registry
	v   atomic.Uint64 // float64 bits
}

// NewGauge registers (or fetches) a gauge on a registry.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindGauge, nil)
	return f.child(labels, func() any { return &Gauge{reg: r} }).(*Gauge)
}

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string, labels ...string) *Gauge {
	return Default.NewGauge(name, help, labels...)
}

// Set stores v. No-op when nil or disabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Store(floatBits(v))
}

// Add increments the gauge by d. No-op when nil or disabled.
func (g *Gauge) Add(d float64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	addFloat(&g.v, d)
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.v.Load())
}

// ------------------------------------------------------------- inspection

// Sum returns the aggregate value of every series in the named family:
// counter and gauge values summed, or the total observation count for
// histograms. It returns 0 for unknown families. Intended for tests and
// dashboards, not hot paths.
func (r *Registry) Sum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0.0
	for _, c := range f.ordered {
		switch m := c.metric.(type) {
		case *Counter:
			total += float64(m.Value())
		case *Gauge:
			total += m.Value()
		case *Histogram:
			total += float64(m.Count())
		}
	}
	return total
}

// ResetExemplars clears the exemplar window of every histogram in the
// registry. The metrics Handler calls it after each scrape, so an
// exemplar names the worst observation since the previous scrape.
func (r *Registry) ResetExemplars() {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.ordered...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		children := append([]labeledChild(nil), f.ordered...)
		f.mu.Unlock()
		for _, c := range children {
			if h, ok := c.metric.(*Histogram); ok {
				h.ResetExemplar()
			}
		}
	}
}

// Exemplar returns the exemplar of the single histogram series with the
// given name and exact label pairs. ok is false for unknown series,
// non-histograms, or an empty exemplar window.
func (r *Registry) Exemplar(name string, labels ...string) (v float64, traceID string, ok bool) {
	if r == nil {
		return 0, "", false
	}
	r.mu.Lock()
	f, found := r.byName[name]
	r.mu.Unlock()
	if !found {
		return 0, "", false
	}
	key := labelKey(labels)
	f.mu.Lock()
	m, found := f.byLabel[key]
	f.mu.Unlock()
	if !found {
		return 0, "", false
	}
	h, isH := m.(*Histogram)
	if !isH {
		return 0, "", false
	}
	return h.Exemplar()
}

// Value returns the value of the single series with the given name and
// exact label pairs (counter/gauge value, histogram observation count), or
// 0 if no such series exists.
func (r *Registry) Value(name string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	key := labelKey(labels)
	f.mu.Lock()
	m, ok := f.byLabel[key]
	f.mu.Unlock()
	if !ok {
		return 0
	}
	switch m := m.(type) {
	case *Counter:
		return float64(m.Value())
	case *Gauge:
		return m.Value()
	case *Histogram:
		return float64(m.Count())
	}
	return 0
}
