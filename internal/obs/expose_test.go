package obs

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition. The histogram's
// observations all land in the overflow bucket so every quantile clamps to
// the largest bound and the expected text is stable.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("privedit_demo_total", "Demo counter.", "path", "/Doc", "code", "200")
	c.Add(3)
	g := r.NewGauge("privedit_demo_ratio", "Demo gauge.")
	g.Set(0.25)
	h := r.NewHistogram("privedit_demo_seconds", "Demo latency.", []float64{1, 2, 4})
	for _, v := range []float64{5, 6, 7} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP privedit_demo_ratio Demo gauge.",
		"# TYPE privedit_demo_ratio gauge",
		"privedit_demo_ratio 0.25",
		"# HELP privedit_demo_seconds Demo latency.",
		"# TYPE privedit_demo_seconds summary",
		`privedit_demo_seconds{quantile="0.5"} 4`,
		`privedit_demo_seconds{quantile="0.95"} 4`,
		`privedit_demo_seconds{quantile="0.99"} 4`,
		"privedit_demo_seconds_sum 18",
		"privedit_demo_seconds_count 3",
		"# HELP privedit_demo_total Demo counter.",
		"# TYPE privedit_demo_total counter",
		`privedit_demo_total{path="/Doc",code="200"} 3`,
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "", "v", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("json_total", "help", "k", "v").Add(7)
	r.NewHistogram("json_seconds", "", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []JSONFamily
	if err := json.Unmarshal([]byte(b.String()), &fams); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	byName := map[string]JSONFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	cf := byName["json_total"]
	if len(cf.Series) != 1 || cf.Series[0].Value == nil || *cf.Series[0].Value != 7 {
		t.Errorf("counter family wrong: %+v", cf)
	}
	if cf.Series[0].Labels["k"] != "v" {
		t.Errorf("labels wrong: %+v", cf.Series[0].Labels)
	}
	hf := byName["json_seconds"]
	if len(hf.Series) != 1 || hf.Series[0].Count == nil || *hf.Series[0].Count != 1 {
		t.Errorf("histogram family wrong: %+v", hf)
	}
}

func TestHandlerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("handler_total", "").Inc()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1") {
		t.Errorf("text body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var fams []JSONFamily
	if err := json.Unmarshal(rec.Body.Bytes(), &fams); err != nil {
		t.Errorf("json body invalid: %v", err)
	}
}

func TestMiddlewareInstrumentsAndLogs(t *testing.T) {
	r := NewRegistry()
	var logged strings.Builder
	logger := log.New(&logged, "", 0)

	handler := Middleware(r, httptestHandler(201, "created"), logger, func(p string) string {
		if p == "/known" {
			return p
		}
		return "other"
	})

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/known", strings.NewReader("hello"))
	handler.ServeHTTP(rec, req)

	if rec.Code != 201 {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID header")
	}
	if got := r.Value("privedit_http_requests_total", "method", "POST", "path", "/known", "code", "201"); got != 1 {
		t.Errorf("requests_total = %v, want 1", got)
	}
	if got := r.Value("privedit_http_request_seconds", "path", "/known"); got != 1 {
		t.Errorf("request_seconds count = %v, want 1", got)
	}
	if got := r.Value("privedit_http_request_bytes_in_total", "path", "/known"); got != 5 {
		t.Errorf("bytes_in = %v, want 5", got)
	}
	if got := r.Value("privedit_http_request_bytes_out_total", "path", "/known"); got != 7 {
		t.Errorf("bytes_out = %v, want 7", got)
	}
	line := logged.String()
	for _, frag := range []string{"req id=", "method=POST", "path=/known", "status=201", "bytes_in=5", "bytes_out=7", "dur="} {
		if !strings.Contains(line, frag) {
			t.Errorf("log line missing %q: %s", frag, line)
		}
	}
	if strings.Count(line, "\n") != 1 {
		t.Errorf("want exactly one log line, got: %q", line)
	}

	// Unknown paths collapse to the bounded label.
	handler.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/random/cardinality/bomb", nil))
	if got := r.Value("privedit_http_request_seconds", "path", "other"); got != 1 {
		t.Errorf("collapsed path count = %v, want 1", got)
	}
}

func httptestHandler(status int, body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	})
}
