package obs

import "testing"

// BenchmarkObsDisabled measures the cost of an instrumentation call site
// when its registry is disabled — the always-on price every hot path in
// the repository pays. The acceptance budget is <10ns per call site; the
// actual cost is one pointer load, one atomic flag load, and a branch.
func BenchmarkObsDisabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(false)
	c := r.NewCounter("bench_total", "")
	h := r.NewHistogram("bench_seconds", "", nil)
	g := r.NewGauge("bench_gauge", "")

	b.Run("CounterInc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(1.0)
		}
	})
	b.Run("SpanStartEnd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Start().End()
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Set(1.0)
		}
	})
	b.Run("NilCounterInc", func(b *testing.B) {
		var nc *Counter
		for i := 0; i < b.N; i++ {
			nc.Inc()
		}
	})
}

// BenchmarkObsEnabled is the companion: what the same call sites cost with
// collection on.
func BenchmarkObsEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "")
	h := r.NewHistogram("bench_seconds", "", nil)

	b.Run("CounterInc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(1e-5)
		}
	})
	b.Run("SpanStartEnd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Start().End()
		}
	})
}
