package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	c.Add(-5) // counters are monotone; negative adds are dropped
	if got := c.Value(); got != 42 {
		t.Errorf("Value after negative Add = %d, want 42", got)
	}
	// Same name+labels returns the same series.
	if r.NewCounter("test_total", "help") != c {
		t.Error("re-registration returned a different series")
	}
	// Different labels are a different series of the same family.
	c2 := r.NewCounter("test_total", "help", "k", "v")
	c2.Add(8)
	if got := r.Sum("test_total"); got != 50 {
		t.Errorf("Sum = %v, want 50", got)
	}
	if got := r.Value("test_total", "k", "v"); got != 8 {
		t.Errorf("Value(k=v) = %v, want 8", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "help")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Errorf("Value = %v, want 2.25", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("canon_total", "", "a", "1", "b", "2")
	b := r.NewCounter("canon_total", "", "b", "2", "a", "1")
	if a != b {
		t.Error("label order should not create distinct series")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "help", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.6, 3, 3.5, 5, 6, 7, 7.5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if got := h.Sum(); math.Abs(got-135.6) > 1e-9 {
		t.Errorf("Sum = %v, want 135.6", got)
	}
	// Bucket counts: (0,1]:1 (1,2]:2 (2,4]:2 (4,8]:4 overflow:1.
	// p50 rank 5 falls in (4,8]; interpolation stays within the bucket.
	if p50 := h.Quantile(0.5); p50 < 2 || p50 > 8 {
		t.Errorf("p50 = %v, want within (2, 8]", p50)
	}
	// p99 rank 9.9 falls in the overflow bucket, clamped to the last bound.
	if p99 := h.Quantile(0.99); p99 != 8 {
		t.Errorf("p99 = %v, want clamp to 8", p99)
	}
	if q := h.Quantile(0.0001); q < 0 || q > 1 {
		t.Errorf("tiny quantile = %v, want within first bucket", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("empty_seconds", "", nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	c := r.NewCounter("off_total", "")
	g := r.NewGauge("off_gauge", "")
	h := r.NewHistogram("off_seconds", "", nil)
	c.Inc()
	g.Set(9)
	h.Observe(1)
	sp := h.Start()
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("disabled registry recorded a value")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Error("re-enabled registry did not record")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x_total", "")
	g := r.NewGauge("x", "")
	h := r.NewHistogram("x_seconds", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.Start().End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metrics should read zero")
	}
	if r.Sum("x_total") != 0 || r.Value("x_total") != 0 {
		t.Error("nil registry should read zero")
	}
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestSpanObserves(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("span_seconds", "", nil)
	sp := h.Start()
	sp.End()
	if h.Count() != 1 {
		t.Errorf("Count after span = %d, want 1", h.Count())
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this is the data-race
// check, and the totals check catches lost updates.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "")
	g := r.NewGauge("conc_gauge", "")
	h := r.NewHistogram("conc_seconds", "", []float64{1, 2, 4})
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%5) + 0.5)
				// Concurrent registration of the same family must be safe too.
				r.NewCounter("conc_labeled_total", "", "w", "shared").Inc()
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != float64(want) {
		t.Errorf("gauge = %v, want %v", g.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if got := r.Value("conc_labeled_total", "w", "shared"); got != float64(want) {
		t.Errorf("labeled counter = %v, want %v", got, want)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("kind_total", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind conflict")
		}
	}()
	r.NewGauge("kind_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid metric name")
		}
	}()
	r.NewCounter("bad name!", "")
}
