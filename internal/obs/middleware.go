package obs

import (
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTP server metric family names and help strings, shared between the
// per-request accessors and the init-time pre-registration.
const (
	httpRequestsName = "privedit_http_requests_total"
	httpRequestsHelp = "HTTP requests served, by method, path, and status code."
	httpLatencyName  = "privedit_http_request_seconds"
	httpLatencyHelp  = "HTTP request handling latency in seconds, by path."
	httpBytesInName  = "privedit_http_request_bytes_in_total"
	httpBytesInHelp  = "HTTP request body bytes received, by path."
	httpBytesOutName = "privedit_http_request_bytes_out_total"
	httpBytesOutHelp = "HTTP response body bytes sent, by path."
)

// Pre-register the families (with no series yet) on the Default registry
// so /metrics lists them before the first request arrives.
func init() {
	Default.familyFor(httpRequestsName, httpRequestsHelp, KindCounter, nil)
	Default.familyFor(httpLatencyName, httpLatencyHelp, KindHistogram, TimeBuckets)
	Default.familyFor(httpBytesInName, httpBytesInHelp, KindCounter, nil)
	Default.familyFor(httpBytesOutName, httpBytesOutHelp, KindCounter, nil)
}

// traceHeader duplicates trace.Header by value: obs sits below
// internal/trace in the import graph (trace records tracer telemetry
// through obs), so it reads the wire header literally. A test in
// internal/trace pins the two constants together.
const traceHeader = "X-Privedit-Trace"

// traceIDOf extracts the trace ID from an X-Privedit-Trace value
// ("traceID-spanID"), or returns "".
func traceIDOf(v string) string {
	for i := 0; i < len(v); i++ {
		if v[i] == '-' {
			return v[:i]
		}
	}
	return ""
}

// reqID assigns monotonically increasing request ids across all mounted
// middlewares in the process.
var reqID atomic.Uint64

// statusWriter captures the status code and bytes written.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer when it supports it.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with per-request instrumentation: it assigns a
// request id (echoed as X-Request-ID), counts requests by method/path/
// status, observes handling latency, accumulates body bytes in/out on reg,
// and — when logger is non-nil — emits one structured log line per
// request. pathLabel maps a URL path to a bounded label value (nil for
// identity); callers with open-ended path spaces should collapse unknown
// paths to a constant to bound series cardinality.
func Middleware(reg *Registry, next http.Handler, logger *log.Logger, pathLabel func(string) string) http.Handler {
	if pathLabel == nil {
		pathLabel = func(p string) string { return p }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqID.Add(1)
		w.Header().Set("X-Request-ID", formatID(id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		bytesIn := int64(0)
		if r.ContentLength > 0 {
			bytesIn = r.ContentLength
		}
		traceID := traceIDOf(r.Header.Get(traceHeader))
		if reg.Enabled() {
			p := pathLabel(r.URL.Path)
			reg.NewCounter(httpRequestsName, httpRequestsHelp,
				"method", r.Method, "path", p, "code", strconv.Itoa(sw.status)).Inc()
			reg.NewHistogram(httpLatencyName, httpLatencyHelp, TimeBuckets, "path", p).
				ObserveExemplar(elapsed.Seconds(), traceID)
			reg.NewCounter(httpBytesInName, httpBytesInHelp, "path", p).Add(bytesIn)
			reg.NewCounter(httpBytesOutName, httpBytesOutHelp, "path", p).Add(sw.bytes)
		}
		if logger != nil {
			tr := ""
			if traceID != "" {
				tr = " trace=" + traceID
			}
			logger.Printf("req id=%s method=%s path=%s status=%d bytes_in=%d bytes_out=%d dur=%s%s",
				formatID(id), r.Method, r.URL.Path, sw.status, bytesIn, sw.bytes,
				elapsed.Round(time.Microsecond), tr)
		}
	})
}

// formatID renders a request id as fixed-width hex so log lines stay
// aligned and ids sort lexically.
func formatID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}
