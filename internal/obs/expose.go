package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// quantiles exported for every histogram family.
var exportQuantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by name and series by label
// key, so output is deterministic. Histograms render as summaries:
// quantile series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.children {
			if err := writeSeries(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f famSnapshot, c labeledChild) error {
	switch m := c.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(c.labels, "", 0), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(c.labels, "", 0), formatFloat(m.Value()))
		return err
	case *Histogram:
		for _, q := range exportQuantiles {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(c.labels, "quantile", q), formatFloat(m.Quantile(q))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(c.labels, "", 0), formatFloat(m.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(c.labels, "", 0), m.Count()); err != nil {
			return err
		}
		// Exemplar: the window's worst observation and the trace that
		// produced it, as a comment line (the 0.0.4 text format has no
		// native exemplar syntax; greppable and ignored by scrapers).
		if v, traceID, ok := m.Exemplar(); ok {
			_, err := fmt.Fprintf(w, "# EXEMPLAR %s%s %s trace_id=%s\n",
				f.name, labelString(c.labels, "", 0), formatFloat(v), traceID)
			return err
		}
		return nil
	}
	return nil
}

// famSnapshot is a point-in-time copy of a family's structure (the metric
// values themselves stay live atomics).
type famSnapshot struct {
	name     string
	help     string
	kind     Kind
	children []labeledChild
}

func (r *Registry) snapshotFamilies() []famSnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.ordered...)
	r.mu.Unlock()
	out := make([]famSnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		children := append([]labeledChild(nil), f.ordered...)
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].labels) < labelKey(children[j].labels)
		})
		out = append(out, famSnapshot{name: f.name, help: f.help, kind: f.kind, children: children})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// labelString renders {k="v",...}; extraKey/extraVal append a quantile
// label when extraKey is non-empty.
func labelString(labels []string, extraKey string, extraVal float64) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i+1 < len(labels); i += 2 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(formatFloat(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONSeries is one series in the JSON rendering.
type JSONSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"` // counter / gauge
	Count  *int64            `json:"count,omitempty"` // histogram
	Sum    *float64          `json:"sum,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P95    *float64          `json:"p95,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
	// Exemplar: worst observation of the current window and its trace.
	Max        *float64 `json:"max,omitempty"`
	MaxTraceID string   `json:"max_trace_id,omitempty"`
}

// JSONFamily is one metric family in the JSON rendering.
type JSONFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []JSONSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON document, the machine-readable
// twin of WritePrometheus.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	fams := r.snapshotFamilies()
	out := make([]JSONFamily, 0, len(fams))
	for _, f := range fams {
		jf := JSONFamily{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, c := range f.children {
			s := JSONSeries{}
			if len(c.labels) > 0 {
				s.Labels = make(map[string]string, len(c.labels)/2)
				for i := 0; i+1 < len(c.labels); i += 2 {
					s.Labels[c.labels[i]] = c.labels[i+1]
				}
			}
			switch m := c.metric.(type) {
			case *Counter:
				v := float64(m.Value())
				s.Value = &v
			case *Gauge:
				v := m.Value()
				s.Value = &v
			case *Histogram:
				count, sum := m.Count(), m.Sum()
				p50, p95, p99 := m.Quantile(0.5), m.Quantile(0.95), m.Quantile(0.99)
				s.Count, s.Sum, s.P50, s.P95, s.P99 = &count, &sum, &p50, &p95, &p99
				if v, traceID, ok := m.Exemplar(); ok {
					s.Max, s.MaxTraceID = &v, traceID
				}
			}
			jf.Series = append(jf.Series, s)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry over HTTP: Prometheus text by default,
// JSON with ?format=json. Each scrape closes the exemplar window, so the
// exemplars a scrape reports cover the interval since the previous one.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			r.ResetExemplars()
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
		r.ResetExemplars()
	})
}
