package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserveExemplarTracksWorst(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("privedit_test_ex_seconds", "h", TimeBuckets)

	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram has an exemplar")
	}
	h.ObserveExemplar(0.2, "aaaa")
	h.ObserveExemplar(0.5, "bbbb")
	h.ObserveExemplar(0.3, "cccc")
	h.ObserveExemplar(0.9, "") // no trace: observed, but not an exemplar
	v, id, ok := h.Exemplar()
	if !ok || v != 0.5 || id != "bbbb" {
		t.Fatalf("Exemplar = %v, %q, %v; want 0.5, bbbb, true", v, id, ok)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (exemplar calls still observe)", h.Count())
	}

	// Registry-level inspection.
	if v, id, ok := r.Exemplar("privedit_test_ex_seconds"); !ok || v != 0.5 || id != "bbbb" {
		t.Fatalf("Registry.Exemplar = %v, %q, %v", v, id, ok)
	}
	if _, _, ok := r.Exemplar("privedit_unknown"); ok {
		t.Fatal("exemplar for unknown family")
	}
	if _, _, ok := r.Exemplar("privedit_test_ex_seconds", "path", "/x"); ok {
		t.Fatal("exemplar for unknown series")
	}
	c := r.NewCounter("privedit_test_ex_counter", "c")
	c.Inc()
	if _, _, ok := r.Exemplar("privedit_test_ex_counter"); ok {
		t.Fatal("exemplar for a counter")
	}

	h.ResetExemplar()
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("exemplar survived ResetExemplar")
	}

	// Nil safety.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	nilH.ResetExemplar()
	if _, _, ok := nilH.Exemplar(); ok {
		t.Fatal("nil histogram has an exemplar")
	}
	var nilR *Registry
	nilR.ResetExemplars()
	if _, _, ok := nilR.Exemplar("x"); ok {
		t.Fatal("nil registry has an exemplar")
	}
}

func TestExemplarDisabledRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("privedit_test_ex_seconds", "h", TimeBuckets)
	r.SetEnabled(false)
	h.ObserveExemplar(1.0, "aaaa")
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("disabled registry recorded an exemplar")
	}
}

func TestSpanEndExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("privedit_test_ex_seconds", "h", TimeBuckets)
	sp := h.Start()
	sp.EndExemplar("dddd")
	if _, id, ok := h.Exemplar(); !ok || id != "dddd" {
		t.Fatalf("EndExemplar: id=%q ok=%v", id, ok)
	}
	Span{}.EndExemplar("x") // zero span: no-op
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("privedit_test_ex_seconds", "h", TimeBuckets, "path", "/Doc")
	h.ObserveExemplar(0.25, "feedface00000000")

	var text strings.Builder
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	want := `# EXEMPLAR privedit_test_ex_seconds{path="/Doc"} 0.25 trace_id=feedface00000000`
	if !strings.Contains(text.String(), want) {
		t.Fatalf("prometheus text missing %q:\n%s", want, text.String())
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"max_trace_id": "feedface00000000"`) ||
		!strings.Contains(js.String(), `"max": 0.25`) {
		t.Fatalf("JSON missing exemplar fields:\n%s", js.String())
	}

	// The HTTP handler closes the window after each scrape.
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()
	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	first := get(ts.URL)
	if !strings.Contains(first, "# EXEMPLAR") {
		t.Fatalf("first scrape missing exemplar:\n%s", first)
	}
	second := get(ts.URL)
	if strings.Contains(second, "# EXEMPLAR") {
		t.Fatalf("second scrape still has exemplar (window not reset):\n%s", second)
	}

	h.ObserveExemplar(0.1, "cafe000000000000")
	third := get(ts.URL + "?format=json")
	if !strings.Contains(third, "cafe000000000000") {
		t.Fatalf("JSON scrape missing new exemplar:\n%s", third)
	}
	fourth := get(ts.URL + "?format=json")
	if strings.Contains(fourth, "cafe000000000000") {
		t.Fatalf("JSON scrape did not reset window:\n%s", fourth)
	}
}

func TestMiddlewareExemplarFromTraceHeader(t *testing.T) {
	r := NewRegistry()
	h := Middleware(r, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), nil, nil)

	req := httptest.NewRequest(http.MethodGet, "/Doc", nil)
	req.Header.Set("X-Privedit-Trace", "beef000000000000-0001000000000000")
	h.ServeHTTP(httptest.NewRecorder(), req)

	_, id, ok := r.Exemplar(httpLatencyName, "path", "/Doc")
	if !ok || id != "beef000000000000" {
		t.Fatalf("middleware exemplar: id=%q ok=%v", id, ok)
	}
}

func TestTraceIDOf(t *testing.T) {
	cases := map[string]string{
		"":         "",
		"abc":      "",
		"abc-def":  "abc",
		"-def":     "",
		"a-b-c":    "a",
	}
	for in, want := range cases {
		if got := traceIDOf(in); got != want {
			t.Errorf("traceIDOf(%q) = %q, want %q", in, got, want)
		}
	}
}
