package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TimeBuckets is the default bucket layout for latency histograms: roughly
// exponential from 1µs to 10s, wide enough for both Go crypto (sub-µs) and
// simulated network round trips (tens of ms).
var TimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// SizeBuckets is a generic power-of-two layout for counts and byte sizes.
var SizeBuckets = ExpBuckets(1, 2, 16)

// ExpBuckets returns n upper bounds starting at start, each factor times
// the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	bounds := make([]float64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// Histogram is a bounded-bucket distribution metric. Observations land in
// the first bucket whose upper bound is >= the value, or an implicit
// overflow bucket. Quantile estimates interpolate linearly within a bucket
// and clamp overflow observations to the largest bound. All methods are
// safe on a nil receiver and for concurrent use.
type Histogram struct {
	reg    *Registry
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits

	// Exemplar: the worst (largest) observation of the current window and
	// the trace that produced it, so a p99 cliff in /metrics points at a
	// replayable trace in /debug/traces. Reset per scrape by Handler.
	exMu      sync.Mutex
	exSet     bool
	exValue   float64
	exTraceID string
}

// NewHistogram registers (or fetches) a histogram on a registry. bounds
// must be sorted ascending; nil selects TimeBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = TimeBuckets
	}
	f := r.familyFor(name, help, KindHistogram, bounds)
	return f.child(labels, func() any {
		return &Histogram{reg: r, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).(*Histogram)
}

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return Default.NewHistogram(name, help, bounds, labels...)
}

// Observe records one value. No-op when nil or disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.reg.enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty and the value is the worst seen this exemplar window, links
// it as the histogram's exemplar. No-op when nil or disabled.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if h == nil || !h.reg.enabled.Load() || traceID == "" {
		return
	}
	h.exMu.Lock()
	if !h.exSet || v > h.exValue {
		h.exSet, h.exValue, h.exTraceID = true, v, traceID
	}
	h.exMu.Unlock()
}

// Exemplar returns the worst observation of the current window and its
// trace ID. ok is false when no exemplar has been recorded since the last
// reset.
func (h *Histogram) Exemplar() (v float64, traceID string, ok bool) {
	if h == nil {
		return 0, "", false
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exValue, h.exTraceID, h.exSet
}

// ResetExemplar clears the exemplar window.
func (h *Histogram) ResetExemplar() {
	if h == nil {
		return
	}
	h.exMu.Lock()
	h.exSet, h.exValue, h.exTraceID = false, 0, ""
	h.exMu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return floatFrom(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts: linear interpolation within the containing bucket, overflow
// clamped to the largest bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			last := h.bounds[len(h.bounds)-1]
			if i >= len(h.bounds) {
				return last // overflow bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// ------------------------------------------------------------------ spans

// Span is an in-flight timing measurement from Histogram.Start. The zero
// Span is valid and End on it is a no-op, which is how the disabled path
// avoids even the time.Now call.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins a span that will record elapsed seconds into the histogram
// on End. When the histogram is nil or its registry disabled, the returned
// zero Span makes the whole pair cost a few nanoseconds.
func (h *Histogram) Start() Span {
	if h == nil || !h.reg.enabled.Load() {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time since Start.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// EndExemplar records the elapsed time since Start and links it as the
// histogram's exemplar when it is the window's worst observation and
// traceID is non-empty.
func (s Span) EndExemplar(traceID string) {
	if s.h == nil {
		return
	}
	s.h.ObserveExemplar(time.Since(s.start).Seconds(), traceID)
}

// ---------------------------------------------------------------- helpers

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// addFloat atomically adds d to a float64 stored as bits in u.
func addFloat(u *atomic.Uint64, d float64) {
	for {
		old := u.Load()
		if u.CompareAndSwap(old, floatBits(floatFrom(old)+d)) {
			return
		}
	}
}
