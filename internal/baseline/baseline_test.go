package baseline

import (
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/crypt"
)

func opts(seed uint64) core.Options {
	return core.Options{
		Scheme:     core.ConfidentialityOnly,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(seed),
	}
}

func TestFullReencryptRoundTrip(t *testing.T) {
	f, err := NewFullReencrypt("pw", opts(1))
	if err != nil {
		t.Fatalf("NewFullReencrypt: %v", err)
	}
	transport, err := f.SetText("the whole document")
	if err != nil {
		t.Fatalf("SetText: %v", err)
	}
	got, err := core.Decrypt("pw", transport)
	if err != nil || got != "the whole document" {
		t.Errorf("decrypt = (%q, %v)", got, err)
	}
}

func TestFullReencryptSplice(t *testing.T) {
	f, err := NewFullReencrypt("pw", opts(2))
	if err != nil {
		t.Fatalf("NewFullReencrypt: %v", err)
	}
	if _, err := f.SetText("hello cruel world"); err != nil {
		t.Fatalf("SetText: %v", err)
	}
	transport, err := f.Splice(6, 5, "kind")
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if f.Text() != "hello kind world" {
		t.Errorf("Text = %q", f.Text())
	}
	got, err := core.Decrypt("pw", transport)
	if err != nil || got != "hello kind world" {
		t.Errorf("decrypt = (%q, %v)", got, err)
	}
	if _, err := f.Splice(100, 1, "x"); err == nil {
		t.Error("out-of-range splice accepted")
	}
}

func TestFullReencryptAlwaysShipsWholeDocument(t *testing.T) {
	// The defining property of the CoClo baseline: cost is O(document),
	// not O(edit).
	f, err := NewFullReencrypt("pw", opts(3))
	if err != nil {
		t.Fatalf("NewFullReencrypt: %v", err)
	}
	big := strings.Repeat("0123456789", 1000)
	if _, err := f.SetText(big); err != nil {
		t.Fatalf("SetText: %v", err)
	}
	transport, err := f.Splice(5000, 0, "!")
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if len(transport) < len(big) {
		t.Errorf("baseline shipped %d chars for a %d-char doc", len(transport), len(big))
	}
}

func TestNaiveRealignCorrectness(t *testing.T) {
	n, err := NewNaiveRealign("pw", opts(4))
	if err != nil {
		t.Fatalf("NewNaiveRealign: %v", err)
	}
	if _, err := n.SetText("hello cruel world"); err != nil {
		t.Fatalf("SetText: %v", err)
	}
	if _, err := n.Splice(6, 5, "kind"); err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if n.Text() != "hello kind world" {
		t.Errorf("Text = %q", n.Text())
	}
	got, err := core.Decrypt("pw", n.Transport())
	if err != nil || got != "hello kind world" {
		t.Errorf("decrypt = (%q, %v)", got, err)
	}
	if _, err := n.Splice(100, 1, "x"); err == nil {
		t.Error("out-of-range splice accepted")
	}
}

func TestNaiveRealignCostGrowsWithSuffix(t *testing.T) {
	// An early edit must retransmit (nearly) the whole document; a late
	// edit almost nothing. That asymmetry is exactly what the
	// IndexedSkipList removes.
	n, err := NewNaiveRealign("pw", opts(5))
	if err != nil {
		t.Fatalf("NewNaiveRealign: %v", err)
	}
	big := strings.Repeat("0123456789", 500)
	if _, err := n.SetText(big); err != nil {
		t.Fatalf("SetText: %v", err)
	}
	early, err := n.Splice(8, 0, "!")
	if err != nil {
		t.Fatalf("early splice: %v", err)
	}
	late, err := n.Splice(len(n.Text())-8, 0, "!")
	if err != nil {
		t.Fatalf("late splice: %v", err)
	}
	if early < 10*late {
		t.Errorf("early edit cost %d not >> late edit cost %d", early, late)
	}
}
