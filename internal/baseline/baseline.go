// Package baseline implements the comparison points the paper measures
// its contribution against:
//
//   - FullReencrypt: the CoClo approach (D'Angelo, Vitali & Zacchiroli)
//     that the introduction singles out — "their work ... requires
//     reencrypting and transmitting the entire document for every update."
//     Every edit re-encrypts the whole document and ships the whole
//     container.
//
//   - NaiveRealign: the strawman of §V-C — "a straightforward approach
//     would require re-aligning and re-encrypting all subsequent blocks
//     when a single character is inserted or deleted," i.e. incremental
//     encryption without the IndexedSkipList: every edit re-encrypts the
//     document from the edit point to the end.
//
// Both expose per-edit transmitted-bytes and in-memory state so the
// ablation benchmarks can chart them against the real incremental editor.
package baseline

import (
	"fmt"

	"privedit/internal/core"
)

// FullReencrypt is the CoClo-style editor: whole-document re-encryption
// and retransmission on every update.
type FullReencrypt struct {
	ed   *core.Editor
	text string
}

// NewFullReencrypt builds the baseline editor.
func NewFullReencrypt(password string, opts core.Options) (*FullReencrypt, error) {
	ed, err := core.NewEditor(password, opts)
	if err != nil {
		return nil, err
	}
	return &FullReencrypt{ed: ed}, nil
}

// Text returns the current plaintext.
func (f *FullReencrypt) Text() string { return f.text }

// SetText loads the document, returning the full container to transmit.
func (f *FullReencrypt) SetText(text string) (string, error) {
	transport, err := f.ed.Encrypt(text)
	if err != nil {
		return "", err
	}
	f.text = text
	return transport, nil
}

// Splice performs one edit. The entire document is re-encrypted and the
// entire container returned: that is what must cross the network.
func (f *FullReencrypt) Splice(pos, del int, ins string) (string, error) {
	if pos < 0 || del < 0 || pos+del > len(f.text) {
		return "", fmt.Errorf("baseline: splice pos %d del %d in %d-char document", pos, del, len(f.text))
	}
	return f.SetText(f.text[:pos] + ins + f.text[pos+del:])
}

// NaiveRealign is incremental encryption without an index: blocks are kept
// in a flat slice aligned to fixed boundaries, so an insert or delete
// re-aligns and re-encrypts every block from the edit point to the end of
// the document. Confidentiality-equivalent to the real editor; only the
// update cost differs.
type NaiveRealign struct {
	ed   *core.Editor
	text string
}

// NewNaiveRealign builds the strawman editor.
func NewNaiveRealign(password string, opts core.Options) (*NaiveRealign, error) {
	ed, err := core.NewEditor(password, opts)
	if err != nil {
		return nil, err
	}
	return &NaiveRealign{ed: ed}, nil
}

// Text returns the current plaintext.
func (n *NaiveRealign) Text() string { return n.text }

// SetText loads the document.
func (n *NaiveRealign) SetText(text string) (string, error) {
	transport, err := n.ed.Encrypt(text)
	if err != nil {
		return "", err
	}
	n.text = text
	return transport, nil
}

// Splice performs one edit, re-encrypting every character from the edit
// point to the end (fixed block alignment shifts), and returns the number
// of ciphertext characters that had to be retransmitted.
func (n *NaiveRealign) Splice(pos, del int, ins string) (retransmitted int, err error) {
	if pos < 0 || del < 0 || pos+del > len(n.text) {
		return 0, fmt.Errorf("baseline: splice pos %d del %d in %d-char document", pos, del, len(n.text))
	}
	newText := n.text[:pos] + ins + n.text[pos+del:]
	// Everything from the containing block of pos to the end is
	// re-encrypted: simulate by splicing the suffix through the editor.
	b := n.ed.BlockChars()
	start := (pos / b) * b
	suffixLen := len(n.text) - start
	cd, err := n.ed.Splice(start, suffixLen, newText[start:])
	if err != nil {
		return 0, err
	}
	n.text = newText
	return cd.InsertLen() + cd.DeleteLen(), nil
}

// Transport returns the strawman's current container.
func (n *NaiveRealign) Transport() string { return n.ed.Transport() }
