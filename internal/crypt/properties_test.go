package crypt

import (
	"math"
	"math/bits"
	"testing"
)

// popcountDiff counts differing bits between two equal-length slices.
func popcountDiff(a, b []byte) int {
	n := 0
	for i := range a {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// TestWidePRPAvalanche checks the diffusion of the 4-round Luby-Rackoff
// construction: flipping any single input bit must flip close to half of
// the 256 output bits on average. A broken Feistel (too few rounds, or a
// round function that ignores half the state) fails this immediately.
func TestWidePRPAvalanche(t *testing.T) {
	w, err := NewWidePRP(testKey(21))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	base := make([]byte, WideBlockSize)
	for i := range base {
		base[i] = byte(i * 11)
	}
	ref := make([]byte, WideBlockSize)
	if err := w.Encrypt(ref, base); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}

	total, samples := 0, 0
	out := make([]byte, WideBlockSize)
	mutated := make([]byte, WideBlockSize)
	for bit := 0; bit < WideBlockSize*8; bit += 7 { // sample every 7th bit
		copy(mutated, base)
		mutated[bit/8] ^= 1 << (bit % 8)
		if err := w.Encrypt(out, mutated); err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		d := popcountDiff(ref, out)
		if d < 64 || d > 192 {
			t.Errorf("bit %d: only %d/256 output bits changed", bit, d)
		}
		total += d
		samples++
	}
	mean := float64(total) / float64(samples)
	if math.Abs(mean-128) > 12 {
		t.Errorf("mean avalanche %f bits, want ~128", mean)
	}
}

// TestWidePRPDecryptAvalanche is the same property for the inverse
// permutation (a CCA adversary queries that direction).
func TestWidePRPDecryptAvalanche(t *testing.T) {
	w, err := NewWidePRP(testKey(22))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	base := make([]byte, WideBlockSize)
	ref := make([]byte, WideBlockSize)
	if err := w.Decrypt(ref, base); err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	out := make([]byte, WideBlockSize)
	mutated := make([]byte, WideBlockSize)
	total, samples := 0, 0
	for bit := 0; bit < WideBlockSize*8; bit += 13 {
		copy(mutated, base)
		mutated[bit/8] ^= 1 << (bit % 8)
		if err := w.Decrypt(out, mutated); err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		total += popcountDiff(ref, out)
		samples++
	}
	mean := float64(total) / float64(samples)
	if math.Abs(mean-128) > 14 {
		t.Errorf("mean inverse avalanche %f bits, want ~128", mean)
	}
}

// TestNonceHighLowBitsUsed guards against a degenerate nonce source that
// only varies part of the word (which would shrink the 2^64 search space
// the paper's security argument relies on).
func TestNonceHighLowBitsUsed(t *testing.T) {
	var orAll, andAll uint64 = 0, ^uint64(0)
	var src CryptoNonceSource
	for i := 0; i < 256; i++ {
		n := src.Nonce64()
		orAll |= n
		andAll &= n
	}
	// After 256 draws every bit position should have seen both values.
	if orAll != ^uint64(0) {
		t.Errorf("some bit never set across 256 nonces: or=%064b", orAll)
	}
	if andAll != 0 {
		t.Errorf("some bit always set across 256 nonces: and=%064b", andAll)
	}
}
