package crypt

import (
	"encoding/base32"
	"fmt"
)

// transportAlphabet is the Base32 alphabet used for ciphertext transport
// (RFC 4648 standard alphabet, unpadded).
const transportAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"

// transportEncoding is the Base32 encoder used for ciphertext transport.
// The 2011 extension Base32-encoded ciphertext before substituting it into
// the docContents / delta fields so the server stores printable text that
// survives URL-encoding untouched.
var transportEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// transportDecodeMap maps an input byte to its 5-bit symbol value, with
// 0xFF marking bytes outside the alphabet. A direct table lets the decoder
// run without encoding/base32's block bookkeeping or any allocation.
var transportDecodeMap = func() (m [256]byte) {
	for i := range m {
		m[i] = 0xFF
	}
	for i := 0; i < len(transportAlphabet); i++ {
		m[transportAlphabet[i]] = byte(i)
	}
	return
}()

// EncodeTransport encodes raw ciphertext bytes into the printable Base32
// form stored by the server.
func EncodeTransport(raw []byte) string {
	return transportEncoding.EncodeToString(raw)
}

// EncodeTransportInto encodes raw into dst without allocating. dst must be
// exactly TransportLen(len(raw)) bytes. It exists for the serialization
// kernels, which write each record's characters directly into its
// fixed-offset slot of one shared buffer.
func EncodeTransportInto(dst, raw []byte) {
	transportEncoding.Encode(dst, raw)
}

// DecodeTransport decodes the printable Base32 form back to raw bytes.
// Only canonical encodings are accepted: a final symbol with nonzero
// padding bits decodes leniently in encoding/base32 but would not
// re-serialize to the same text, which breaks the invariant that a stored
// container equals the re-serialization of its parse.
func DecodeTransport(s string) ([]byte, error) {
	n, ok := RawLen(len(s))
	if !ok {
		return nil, fmt.Errorf("crypt: decode transport text: invalid length %d", len(s))
	}
	raw := make([]byte, n)
	if err := DecodeTransportInto(raw, s); err != nil {
		return nil, err
	}
	return raw, nil
}

// DecodeTransportInto decodes s into dst without allocating. dst must be
// exactly the length RawLen reports for len(s). Canonicality is enforced
// by construction: an unpadded Base32 text is non-canonical exactly when
// the final symbol carries nonzero bits below the last full output byte,
// which the tail handling checks directly — no re-encoding pass.
func DecodeTransportInto(dst []byte, s string) error {
	want, ok := RawLen(len(s))
	if !ok {
		return fmt.Errorf("crypt: decode transport text: invalid length %d", len(s))
	}
	if len(dst) != want {
		return fmt.Errorf("crypt: decode transport text: dst length %d, want %d", len(dst), want)
	}
	si, di := 0, 0
	for len(s)-si >= 8 {
		var v uint64
		for j := 0; j < 8; j++ {
			c := transportDecodeMap[s[si+j]]
			if c == 0xFF {
				return fmt.Errorf("crypt: decode transport text: illegal character at offset %d", si+j)
			}
			v = v<<5 | uint64(c)
		}
		dst[di+0] = byte(v >> 32)
		dst[di+1] = byte(v >> 24)
		dst[di+2] = byte(v >> 16)
		dst[di+3] = byte(v >> 8)
		dst[di+4] = byte(v)
		si += 8
		di += 5
	}
	if rem := len(s) - si; rem > 0 {
		var v uint64
		for j := 0; j < rem; j++ {
			c := transportDecodeMap[s[si+j]]
			if c == 0xFF {
				return fmt.Errorf("crypt: decode transport text: illegal character at offset %d", si+j)
			}
			v = v<<5 | uint64(c)
		}
		outBytes := rem * 5 / 8
		extra := uint(rem*5 - outBytes*8)
		if v&((1<<extra)-1) != 0 {
			return fmt.Errorf("crypt: decode transport text: non-canonical encoding")
		}
		v >>= extra
		for j := outBytes - 1; j >= 0; j-- {
			dst[di+j] = byte(v)
			v >>= 8
		}
	}
	return nil
}

// TransportLen reports the number of printable characters needed to carry
// rawLen ciphertext bytes (the 8/5 Base32 expansion, unpadded).
func TransportLen(rawLen int) int {
	return (rawLen*8 + 4) / 5
}

// RawLen reports the number of raw bytes an unpadded Base32 text of encLen
// characters decodes to, and whether encLen is a length any raw byte count
// actually encodes to (encLen mod 8 must be 0, 2, 4, 5, or 7; the inverse
// of TransportLen is a bijection on those residues).
func RawLen(encLen int) (int, bool) {
	if encLen < 0 {
		return 0, false
	}
	switch encLen % 8 {
	case 0, 2, 4, 5, 7:
		return encLen * 5 / 8, true
	default: // 1, 3, 6 never arise from whole input bytes
		return 0, false
	}
}
