package crypt

import (
	"encoding/base32"
	"fmt"
)

// transportEncoding is the Base32 alphabet used for ciphertext transport.
// The 2011 extension Base32-encoded ciphertext before substituting it into
// the docContents / delta fields so the server stores printable text that
// survives URL-encoding untouched.
var transportEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// EncodeTransport encodes raw ciphertext bytes into the printable Base32
// form stored by the server.
func EncodeTransport(raw []byte) string {
	return transportEncoding.EncodeToString(raw)
}

// EncodeTransportInto encodes raw into dst without allocating. dst must be
// exactly TransportLen(len(raw)) bytes. It exists for the parallel
// container-serialization kernel, which writes each record's characters
// directly into its fixed-offset slot of one shared buffer.
func EncodeTransportInto(dst, raw []byte) {
	transportEncoding.Encode(dst, raw)
}

// DecodeTransport decodes the printable Base32 form back to raw bytes.
// Only canonical encodings are accepted: a final symbol with nonzero
// padding bits decodes leniently in encoding/base32 but would not
// re-serialize to the same text, which breaks the invariant that a stored
// container equals the re-serialization of its parse.
func DecodeTransport(s string) ([]byte, error) {
	raw, err := transportEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("crypt: decode transport text: %w", err)
	}
	if transportEncoding.EncodeToString(raw) != s {
		return nil, fmt.Errorf("crypt: decode transport text: non-canonical encoding")
	}
	return raw, nil
}

// TransportLen reports the number of printable characters needed to carry
// rawLen ciphertext bytes (the 8/5 Base32 expansion, unpadded).
func TransportLen(rawLen int) int {
	return (rawLen*8 + 4) / 5
}
