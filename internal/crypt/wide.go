package crypt

import (
	"crypto/aes"
	stdcipher "crypto/cipher"
	"encoding/binary"
	"fmt"
	"sync"
)

// WidePRP is a pseudorandom permutation over 32-byte blocks built as a
// 4-round balanced Feistel network (Luby-Rackoff) whose round functions are
// AES-128 encryptions under independent round keys. Four rounds with
// independent PRF keys yield a strong (CCA-secure) PRP over the doubled
// block width — the standard construction, used here because the paper's
// RPC-mode blocks (r_i, d_i, r_{i+1}) do not fit in one AES block.
type WidePRP struct {
	rounds [4]stdcipher.Block
}

// NewWidePRP derives four independent AES round keys from the 16-byte
// master key and returns the wide permutation. The round keys are produced
// by encrypting distinct constants under the master key (a standard
// key-separation technique: AES as a PRF on the constant inputs).
func NewWidePRP(key []byte) (*WidePRP, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	master, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypt: new aes cipher: %w", err)
	}
	w := &WidePRP{}
	var in, out [BlockSize]byte
	for i := range w.rounds {
		for j := range in {
			in[j] = byte(i + 1)
		}
		master.Encrypt(out[:], in[:])
		rk, err := aes.NewCipher(out[:])
		if err != nil {
			return nil, fmt.Errorf("crypt: round key %d: %w", i, err)
		}
		w.rounds[i] = rk
	}
	return w, nil
}

// Encrypt applies the wide permutation to src, writing to dst. Both must be
// exactly WideBlockSize bytes; they may alias.
//
//taint:sanitizer Enc kernel: dst is ciphertext
func (w *WidePRP) Encrypt(dst, src []byte) error {
	if len(src) != WideBlockSize || len(dst) != WideBlockSize {
		return ErrBlockSize
	}
	var l, r, f [BlockSize]byte
	copy(l[:], src[:BlockSize])
	copy(r[:], src[BlockSize:])
	for i := 0; i < 4; i++ {
		// (L, R) -> (R, L xor F_i(R))
		w.rounds[i].Encrypt(f[:], r[:])
		for j := range l {
			l[j] ^= f[j]
		}
		l, r = r, l
	}
	copy(dst[:BlockSize], l[:])
	copy(dst[BlockSize:], r[:])
	return nil
}

// widePRPScratch recycles the 16-byte round-function output buffer of the
// run APIs. It escapes to the heap (it crosses the cipher.Block interface
// call), so pooling it is what keeps EncryptRun/DecryptRun allocation-free
// for the per-tile kernel loops.
var widePRPScratch = sync.Pool{New: func() any { return new([BlockSize]byte) }}

// xor16 folds the 16-byte round-function output f into buf[:16] word-wise.
// XOR commutes with byte order, so native-endian loads produce the same
// bytes as a fixed-endian view without the swaps — this runs four times
// per block on the hottest kernel loop.
func xor16(buf []byte, f *[BlockSize]byte) {
	binary.NativeEndian.PutUint64(buf[0:8], binary.NativeEndian.Uint64(buf[0:8])^binary.NativeEndian.Uint64(f[0:8]))
	binary.NativeEndian.PutUint64(buf[8:16], binary.NativeEndian.Uint64(buf[8:16])^binary.NativeEndian.Uint64(f[8:16]))
}

// EncryptRun applies the wide permutation in place to a run of contiguous
// 32-byte blocks. It computes exactly the same permutation as per-block
// Encrypt calls, but round-major: each of the four AES round keys sweeps
// the entire run before the next, so the per-round cipher state is hot
// across the run and the per-block L/R copies of the one-shot API
// disappear entirely (the Feistel halves alternate roles in place).
//
// buf must be a whole number of wide blocks. Callers bound runs to a few
// KiB (see the batched codec kernels) so a run's four sweeps stay in L1.
//
//taint:sanitizer Enc kernel: buf is ciphertext on return
func (w *WidePRP) EncryptRun(buf []byte) error {
	if len(buf)%WideBlockSize != 0 {
		return ErrBlockSize
	}
	f := widePRPScratch.Get().(*[BlockSize]byte)
	defer widePRPScratch.Put(f)
	for i, round := range w.rounds {
		// Tracking the reference Encrypt's swaps through the rounds: even
		// rounds read the right half (offset 16) and fold into the left,
		// odd rounds the reverse, and after four rounds the output halves
		// sit exactly where the reference's final copies put them.
		in, out := BlockSize, 0
		if i%2 == 1 {
			in, out = 0, BlockSize
		}
		for off := 0; off < len(buf); off += WideBlockSize {
			round.Encrypt(f[:], buf[off+in:off+in+BlockSize])
			xor16(buf[off+out:off+out+BlockSize], f)
		}
	}
	return nil
}

// DecryptRun applies the inverse wide permutation in place to a run of
// contiguous 32-byte blocks: the round-major inverse of EncryptRun.
func (w *WidePRP) DecryptRun(buf []byte) error {
	if len(buf)%WideBlockSize != 0 {
		return ErrBlockSize
	}
	f := widePRPScratch.Get().(*[BlockSize]byte)
	defer widePRPScratch.Put(f)
	for i := 3; i >= 0; i-- {
		// Each encryption round xored F(one half) into the other half and
		// left the F input untouched, so the inverse replays the same xor
		// with the rounds in reverse order.
		in, out := BlockSize, 0
		if i%2 == 1 {
			in, out = 0, BlockSize
		}
		round := w.rounds[i]
		for off := 0; off < len(buf); off += WideBlockSize {
			round.Encrypt(f[:], buf[off+in:off+in+BlockSize])
			xor16(buf[off+out:off+out+BlockSize], f)
		}
	}
	return nil
}

// Decrypt applies the inverse wide permutation to src, writing to dst.
// Both must be exactly WideBlockSize bytes; they may alias.
func (w *WidePRP) Decrypt(dst, src []byte) error {
	if len(src) != WideBlockSize || len(dst) != WideBlockSize {
		return ErrBlockSize
	}
	var l, r, f [BlockSize]byte
	copy(l[:], src[:BlockSize])
	copy(r[:], src[BlockSize:])
	for i := 3; i >= 0; i-- {
		// invert (L, R) -> (R, L xor F_i(R)): given (L', R') = (R, L^F(R)),
		// recover R = L', L = R' xor F_i(L').
		l, r = r, l
		w.rounds[i].Encrypt(f[:], r[:])
		for j := range l {
			l[j] ^= f[j]
		}
	}
	copy(dst[:BlockSize], l[:])
	copy(dst[BlockSize:], r[:])
	return nil
}
