package crypt

import (
	"crypto/aes"
	stdcipher "crypto/cipher"
	"fmt"
)

// WidePRP is a pseudorandom permutation over 32-byte blocks built as a
// 4-round balanced Feistel network (Luby-Rackoff) whose round functions are
// AES-128 encryptions under independent round keys. Four rounds with
// independent PRF keys yield a strong (CCA-secure) PRP over the doubled
// block width — the standard construction, used here because the paper's
// RPC-mode blocks (r_i, d_i, r_{i+1}) do not fit in one AES block.
type WidePRP struct {
	rounds [4]stdcipher.Block
}

// NewWidePRP derives four independent AES round keys from the 16-byte
// master key and returns the wide permutation. The round keys are produced
// by encrypting distinct constants under the master key (a standard
// key-separation technique: AES as a PRF on the constant inputs).
func NewWidePRP(key []byte) (*WidePRP, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	master, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypt: new aes cipher: %w", err)
	}
	w := &WidePRP{}
	var in, out [BlockSize]byte
	for i := range w.rounds {
		for j := range in {
			in[j] = byte(i + 1)
		}
		master.Encrypt(out[:], in[:])
		rk, err := aes.NewCipher(out[:])
		if err != nil {
			return nil, fmt.Errorf("crypt: round key %d: %w", i, err)
		}
		w.rounds[i] = rk
	}
	return w, nil
}

// Encrypt applies the wide permutation to src, writing to dst. Both must be
// exactly WideBlockSize bytes; they may alias.
//
//taint:sanitizer Enc kernel: dst is ciphertext
func (w *WidePRP) Encrypt(dst, src []byte) error {
	if len(src) != WideBlockSize || len(dst) != WideBlockSize {
		return ErrBlockSize
	}
	var l, r, f [BlockSize]byte
	copy(l[:], src[:BlockSize])
	copy(r[:], src[BlockSize:])
	for i := 0; i < 4; i++ {
		// (L, R) -> (R, L xor F_i(R))
		w.rounds[i].Encrypt(f[:], r[:])
		for j := range l {
			l[j] ^= f[j]
		}
		l, r = r, l
	}
	copy(dst[:BlockSize], l[:])
	copy(dst[BlockSize:], r[:])
	return nil
}

// Decrypt applies the inverse wide permutation to src, writing to dst.
// Both must be exactly WideBlockSize bytes; they may alias.
func (w *WidePRP) Decrypt(dst, src []byte) error {
	if len(src) != WideBlockSize || len(dst) != WideBlockSize {
		return ErrBlockSize
	}
	var l, r, f [BlockSize]byte
	copy(l[:], src[:BlockSize])
	copy(r[:], src[BlockSize:])
	for i := 3; i >= 0; i-- {
		// invert (L, R) -> (R, L xor F_i(R)): given (L', R') = (R, L^F(R)),
		// recover R = L', L = R' xor F_i(L').
		l, r = r, l
		w.rounds[i].Encrypt(f[:], r[:])
		for j := range l {
			l[j] ^= f[j]
		}
	}
	copy(dst[:BlockSize], l[:])
	copy(dst[BlockSize:], r[:])
	return nil
}
