package crypt

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// DefaultPBKDF2Iterations is the iteration count used when deriving
// document keys from user passwords. The 2011 prototype ran inside a
// browser; we keep the count modest so macro-benchmarks measure editing,
// not key setup.
const DefaultPBKDF2Iterations = 4096

// PBKDF2 derives keyLen bytes from password and salt using
// PBKDF2-HMAC-SHA256 (RFC 2898). Implemented here because the module is
// restricted to the standard library.
func PBKDF2(password, salt []byte, iterations, keyLen int) []byte {
	if iterations < 1 {
		iterations = 1
	}
	prf := hmac.New(sha256.New, password)
	hashLen := prf.Size()
	numBlocks := (keyLen + hashLen - 1) / hashLen

	out := make([]byte, 0, numBlocks*hashLen)
	var blockIndex [4]byte
	u := make([]byte, 0, hashLen)
	t := make([]byte, hashLen)
	for block := 1; block <= numBlocks; block++ {
		prf.Reset()
		prf.Write(salt)
		binary.BigEndian.PutUint32(blockIndex[:], uint32(block))
		prf.Write(blockIndex[:])
		u = prf.Sum(u[:0])
		copy(t, u)
		for i := 1; i < iterations; i++ {
			prf.Reset()
			prf.Write(u)
			u = prf.Sum(u[:0])
			for j := range t {
				t[j] ^= u[j]
			}
		}
		out = append(out, t...)
	}
	return out[:keyLen]
}

// DeriveDocumentKey derives the per-document AES key from a user password
// and a per-document salt (the prototype prompted for a per-document
// password when a document was created or opened).
func DeriveDocumentKey(password string, salt []byte) []byte {
	return PBKDF2([]byte(password), salt, DefaultPBKDF2Iterations, KeySize)
}

// Subkey derives an independent labeled subkey from a master key, so the
// confidentiality and integrity schemes never share key material.
func Subkey(master []byte, label string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(label))
	sum := mac.Sum(nil)
	return sum[:KeySize]
}
