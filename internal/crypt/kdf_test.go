package crypt

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 7914 §11 / draft-josefsson-scrypt test vector for PBKDF2-HMAC-SHA256.
func TestPBKDF2KnownVector(t *testing.T) {
	got := PBKDF2([]byte("passwd"), []byte("salt"), 1, 64)
	want, err := hex.DecodeString(
		"55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc" +
			"49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783")
	if err != nil {
		t.Fatalf("decode vector: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("PBKDF2 vector mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestPBKDF2SecondKnownVector(t *testing.T) {
	got := PBKDF2([]byte("Password"), []byte("NaCl"), 80000, 64)
	want, err := hex.DecodeString(
		"4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56" +
			"a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d")
	if err != nil {
		t.Fatalf("decode vector: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("PBKDF2 vector mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestPBKDF2Deterministic(t *testing.T) {
	a := PBKDF2([]byte("pw"), []byte("salt"), 100, KeySize)
	b := PBKDF2([]byte("pw"), []byte("salt"), 100, KeySize)
	if !bytes.Equal(a, b) {
		t.Error("PBKDF2 not deterministic")
	}
}

func TestPBKDF2SaltSeparation(t *testing.T) {
	a := PBKDF2([]byte("pw"), []byte("salt-a"), 100, KeySize)
	b := PBKDF2([]byte("pw"), []byte("salt-b"), 100, KeySize)
	if bytes.Equal(a, b) {
		t.Error("different salts produced the same key")
	}
}

func TestPBKDF2PasswordSeparation(t *testing.T) {
	a := PBKDF2([]byte("pw-a"), []byte("salt"), 100, KeySize)
	b := PBKDF2([]byte("pw-b"), []byte("salt"), 100, KeySize)
	if bytes.Equal(a, b) {
		t.Error("different passwords produced the same key")
	}
}

func TestPBKDF2MinIterationsClamped(t *testing.T) {
	a := PBKDF2([]byte("pw"), []byte("salt"), 0, KeySize)
	b := PBKDF2([]byte("pw"), []byte("salt"), 1, KeySize)
	if !bytes.Equal(a, b) {
		t.Error("iterations<1 not clamped to 1")
	}
}

func TestDeriveDocumentKeyLength(t *testing.T) {
	key := DeriveDocumentKey("hunter2", []byte("doc-salt"))
	if len(key) != KeySize {
		t.Errorf("derived key length %d, want %d", len(key), KeySize)
	}
}

func TestSubkeySeparation(t *testing.T) {
	master := testKey(11)
	conf := Subkey(master, "confidentiality")
	integ := Subkey(master, "integrity")
	if bytes.Equal(conf, integ) {
		t.Error("labels produced identical subkeys")
	}
	if len(conf) != KeySize || len(integ) != KeySize {
		t.Errorf("subkey lengths %d/%d, want %d", len(conf), len(integ), KeySize)
	}
	if bytes.Equal(conf, Subkey(testKey(12), "confidentiality")) {
		t.Error("different masters produced identical subkeys")
	}
}
