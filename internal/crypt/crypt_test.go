package crypt

import (
	"bytes"
	"crypto/aes"
	"testing"
	"testing/quick"
)

func testKey(b byte) []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = b + byte(i)
	}
	return key
}

func TestNewPRPRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 24, 32} {
		if _, err := NewPRP(make([]byte, n)); err == nil {
			t.Errorf("NewPRP accepted %d-byte key", n)
		}
	}
}

func TestPRPRoundTrip(t *testing.T) {
	p, err := NewPRP(testKey(1))
	if err != nil {
		t.Fatalf("NewPRP: %v", err)
	}
	src := []byte("0123456789abcdef")
	enc := make([]byte, BlockSize)
	dec := make([]byte, BlockSize)
	if err := p.Encrypt(enc, src); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Equal(enc, src) {
		t.Error("ciphertext equals plaintext")
	}
	if err := p.Decrypt(dec, enc); err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Errorf("round trip = %q, want %q", dec, src)
	}
}

func TestPRPInPlace(t *testing.T) {
	p, err := NewPRP(testKey(2))
	if err != nil {
		t.Fatalf("NewPRP: %v", err)
	}
	buf := []byte("aliasing test ok")
	orig := append([]byte(nil), buf...)
	if err := p.Encrypt(buf, buf); err != nil {
		t.Fatalf("Encrypt in place: %v", err)
	}
	if err := p.Decrypt(buf, buf); err != nil {
		t.Fatalf("Decrypt in place: %v", err)
	}
	if !bytes.Equal(buf, orig) {
		t.Errorf("in-place round trip = %q, want %q", buf, orig)
	}
}

func TestPRPRejectsWrongBlockSize(t *testing.T) {
	p, err := NewPRP(testKey(3))
	if err != nil {
		t.Fatalf("NewPRP: %v", err)
	}
	good := make([]byte, BlockSize)
	bad := make([]byte, BlockSize-1)
	if err := p.Encrypt(good, bad); err == nil {
		t.Error("Encrypt accepted short src")
	}
	if err := p.Encrypt(bad, good); err == nil {
		t.Error("Encrypt accepted short dst")
	}
	if err := p.Decrypt(good, bad); err == nil {
		t.Error("Decrypt accepted short src")
	}
	if err := p.Decrypt(bad, good); err == nil {
		t.Error("Decrypt accepted short dst")
	}
}

func TestPRPMatchesAES(t *testing.T) {
	// The narrow PRP must be exactly AES-128: verify against crypto/aes.
	key := testKey(9)
	p, err := NewPRP(key)
	if err != nil {
		t.Fatalf("NewPRP: %v", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		t.Fatalf("aes.NewCipher: %v", err)
	}
	src := []byte("reference vector")
	want := make([]byte, BlockSize)
	got := make([]byte, BlockSize)
	block.Encrypt(want, src)
	if err := p.Encrypt(got, src); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("PRP output %x, want AES output %x", got, want)
	}
}

func TestWidePRPRoundTripQuick(t *testing.T) {
	w, err := NewWidePRP(testKey(4))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	f := func(block [WideBlockSize]byte) bool {
		enc := make([]byte, WideBlockSize)
		dec := make([]byte, WideBlockSize)
		if err := w.Encrypt(enc, block[:]); err != nil {
			return false
		}
		if err := w.Decrypt(dec, enc); err != nil {
			return false
		}
		return bytes.Equal(dec, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("wide PRP round trip: %v", err)
	}
}

func TestWidePRPIsPermutation(t *testing.T) {
	// Distinct inputs must map to distinct outputs (injectivity sample).
	w, err := NewWidePRP(testKey(5))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	seen := make(map[string]string)
	in := make([]byte, WideBlockSize)
	out := make([]byte, WideBlockSize)
	for i := 0; i < 1000; i++ {
		PutUint64(in, uint64(i))
		if err := w.Encrypt(out, in); err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		if prev, dup := seen[string(out)]; dup {
			t.Fatalf("collision: inputs %x and %x both map to %x", prev, in, out)
		}
		seen[string(out)] = string(in)
	}
}

func TestWidePRPDiffersAcrossKeys(t *testing.T) {
	w1, err := NewWidePRP(testKey(6))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	w2, err := NewWidePRP(testKey(7))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	in := make([]byte, WideBlockSize)
	o1 := make([]byte, WideBlockSize)
	o2 := make([]byte, WideBlockSize)
	if err := w1.Encrypt(o1, in); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if err := w2.Encrypt(o2, in); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Equal(o1, o2) {
		t.Error("different keys produced identical wide-block ciphertext")
	}
}

func TestWidePRPInPlace(t *testing.T) {
	w, err := NewWidePRP(testKey(8))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	buf := bytes.Repeat([]byte{0xA5}, WideBlockSize)
	orig := append([]byte(nil), buf...)
	if err := w.Encrypt(buf, buf); err != nil {
		t.Fatalf("Encrypt in place: %v", err)
	}
	if err := w.Decrypt(buf, buf); err != nil {
		t.Fatalf("Decrypt in place: %v", err)
	}
	if !bytes.Equal(buf, orig) {
		t.Error("in-place wide round trip mismatch")
	}
}

func TestWidePRPRejectsWrongSize(t *testing.T) {
	w, err := NewWidePRP(testKey(8))
	if err != nil {
		t.Fatalf("NewWidePRP: %v", err)
	}
	good := make([]byte, WideBlockSize)
	for _, n := range []int{0, 16, 31, 33} {
		bad := make([]byte, n)
		if err := w.Encrypt(good, bad); err == nil {
			t.Errorf("Encrypt accepted %d-byte src", n)
		}
		if err := w.Decrypt(bad, good); err == nil {
			t.Errorf("Decrypt accepted %d-byte dst", n)
		}
	}
}

func TestNewWidePRPRejectsBadKey(t *testing.T) {
	if _, err := NewWidePRP(make([]byte, 8)); err == nil {
		t.Error("NewWidePRP accepted 8-byte key")
	}
}

func TestXORBytes(t *testing.T) {
	dst := []byte{0xFF, 0x00, 0xAA}
	src := []byte{0x0F, 0xF0}
	n := XORBytes(dst, src)
	if n != 2 {
		t.Errorf("XORBytes processed %d bytes, want 2", n)
	}
	want := []byte{0xF0, 0xF0, 0xAA}
	if !bytes.Equal(dst, want) {
		t.Errorf("XORBytes result %x, want %x", dst, want)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	var b [8]byte
	for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		PutUint64(b[:], v)
		if got := Uint64(b[:]); got != v {
			t.Errorf("Uint64(PutUint64(%d)) = %d", v, got)
		}
	}
}
