package crypt

import (
	"sync"
	"testing"
)

func TestCryptoNonceSourceDistinct(t *testing.T) {
	var src CryptoNonceSource
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		n := src.Nonce64()
		if seen[n] {
			t.Fatalf("crypto nonce repeated after %d draws", i)
		}
		seen[n] = true
	}
}

func TestSeededNonceSourceDeterministic(t *testing.T) {
	a := NewSeededNonceSource(42)
	b := NewSeededNonceSource(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Nonce64(), b.Nonce64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeededNonceSourceSeedSeparation(t *testing.T) {
	a := NewSeededNonceSource(1)
	b := NewSeededNonceSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Nonce64() == b.Nonce64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 agreed on %d/100 draws", same)
	}
}

func TestSeededNonceSourceConcurrent(t *testing.T) {
	// Run with -race: concurrent draws must be safe and all distinct.
	src := NewSeededNonceSource(7)
	const workers, draws = 8, 500
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, draws)
			for i := 0; i < draws; i++ {
				local = append(local, src.Nonce64())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, n := range local {
				if seen[n] {
					t.Error("duplicate nonce under concurrency")
					return
				}
				seen[n] = true
			}
		}()
	}
	wg.Wait()
}
