package crypt

import (
	"bytes"
	"encoding/base32"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestWideRunMatchesPerBlock pins the round-major in-place run API to the
// reference per-block permutation, in both directions, across run lengths
// that cover the empty, single-block, and multi-tile cases.
func TestWideRunMatchesPerBlock(t *testing.T) {
	w, err := NewWidePRP(bytes.Repeat([]byte{0x42}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2011))
	for _, blocks := range []int{0, 1, 2, 3, 7, 64, 129, 513} {
		src := make([]byte, blocks*WideBlockSize)
		rng.Read(src)

		wantEnc := make([]byte, len(src))
		for off := 0; off < len(src); off += WideBlockSize {
			if err := w.Encrypt(wantEnc[off:off+WideBlockSize], src[off:off+WideBlockSize]); err != nil {
				t.Fatal(err)
			}
		}

		run := append([]byte(nil), src...)
		if err := w.EncryptRun(run); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(run, wantEnc) {
			t.Fatalf("blocks=%d: EncryptRun diverges from per-block Encrypt", blocks)
		}

		if err := w.DecryptRun(run); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(run, src) {
			t.Fatalf("blocks=%d: DecryptRun(EncryptRun(x)) != x", blocks)
		}
	}
}

func TestWideRunRejectsPartialBlock(t *testing.T) {
	w, err := NewWidePRP(make([]byte, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EncryptRun(make([]byte, WideBlockSize+1)); err == nil {
		t.Error("EncryptRun accepted a partial block")
	}
	if err := w.DecryptRun(make([]byte, WideBlockSize-1)); err == nil {
		t.Error("DecryptRun accepted a partial block")
	}
}

// FuzzWideRunMatchesPerBlock cross-checks the run API against the
// reference permutation on arbitrary block contents.
func FuzzWideRunMatchesPerBlock(f *testing.F) {
	f.Add([]byte("seed"), 3)
	f.Add(bytes.Repeat([]byte{0xA5}, WideBlockSize), 1)
	f.Fuzz(func(t *testing.T, data []byte, blocks int) {
		if blocks < 0 || blocks > 64 {
			return
		}
		w, err := NewWidePRP(bytes.Repeat([]byte{7}, KeySize))
		if err != nil {
			t.Fatal(err)
		}
		src := make([]byte, blocks*WideBlockSize)
		copy(src, data)
		want := make([]byte, len(src))
		for off := 0; off < len(src); off += WideBlockSize {
			w.Encrypt(want[off:off+WideBlockSize], src[off:off+WideBlockSize])
		}
		run := append([]byte(nil), src...)
		if err := w.EncryptRun(run); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(run, want) {
			t.Fatal("EncryptRun diverges from per-block Encrypt")
		}
		if err := w.DecryptRun(run); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(run, src) {
			t.Fatal("DecryptRun is not the inverse of EncryptRun")
		}
	})
}

// referenceDecodeTransport is the pre-batching implementation: lenient
// stdlib decode followed by an O(n)-allocating re-encode comparison. The
// fuzz target below pins the table-driven decoder to it.
func referenceDecodeTransport(s string) ([]byte, error) {
	raw, err := base32.StdEncoding.WithPadding(base32.NoPadding).DecodeString(s)
	if err != nil {
		return nil, err
	}
	if base32.StdEncoding.WithPadding(base32.NoPadding).EncodeToString(raw) != s {
		return nil, errors.New("non-canonical")
	}
	return raw, nil
}

// FuzzDecodeTransportMatchesReference pins accept/reject behavior and
// decoded bytes of the trailing-bits canonicality check to the old
// re-encode check, over arbitrary input strings (both cases: valid
// encodings mutate into rejects, garbage stays garbage).
func FuzzDecodeTransportMatchesReference(f *testing.F) {
	f.Add("")
	f.Add("74")  // canonical encoding of 0xFF
	f.Add("75")  // same data bits, nonzero slack -> must reject
	f.Add("7")   // impossible length
	f.Add("a2")  // lowercase: outside the alphabet
	f.Add("MZXW6YTBOI") // "foobar"
	f.Add(strings.Repeat("A", 16))
	f.Fuzz(func(t *testing.T, s string) {
		gotRaw, gotErr := DecodeTransport(s)
		wantRaw, wantErr := referenceDecodeTransport(s)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject mismatch on %q: new err=%v, reference err=%v", s, gotErr, wantErr)
		}
		if gotErr == nil && !bytes.Equal(gotRaw, wantRaw) {
			t.Fatalf("decoded bytes mismatch on %q", s)
		}
	})
}

func TestRawLenInvertsTransportLen(t *testing.T) {
	for n := 0; n <= 200; n++ {
		got, ok := RawLen(TransportLen(n))
		if !ok || got != n {
			t.Errorf("RawLen(TransportLen(%d)) = %d,%v", n, got, ok)
		}
	}
	for _, encLen := range []int{-1, 1, 3, 6, 9, 11, 14} {
		if _, ok := RawLen(encLen); ok {
			t.Errorf("RawLen(%d) accepted an impossible length", encLen)
		}
	}
}

// TestTransportCodecZeroAlloc is the allocation-regression gate for the
// transport hot path: encoding into and decoding from caller-owned buffers
// must not allocate.
func TestTransportCodecZeroAlloc(t *testing.T) {
	raw := bytes.Repeat([]byte{0xC3}, 33)
	enc := make([]byte, TransportLen(len(raw)))
	EncodeTransportInto(enc, raw)
	s := string(enc)
	dst := make([]byte, len(raw))

	if n := testing.AllocsPerRun(200, func() {
		EncodeTransportInto(enc, raw)
	}); n != 0 {
		t.Errorf("EncodeTransportInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeTransportInto(dst, s); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeTransportInto allocates %v per run, want 0", n)
	}
	if !bytes.Equal(dst, raw) {
		t.Fatal("DecodeTransportInto round trip mismatch")
	}
}

// TestWideRunZeroAlloc keeps the batch permutation allocation-free.
func TestWideRunZeroAlloc(t *testing.T) {
	w, err := NewWidePRP(make([]byte, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128*WideBlockSize)
	if n := testing.AllocsPerRun(100, func() {
		if err := w.EncryptRun(buf); err != nil {
			t.Fatal(err)
		}
		if err := w.DecryptRun(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("wide run kernels allocate %v per run, want 0", n)
	}
}

func TestFillNoncesSeededMatchesSerial(t *testing.T) {
	a := NewSeededNonceSource(99)
	b := NewSeededNonceSource(99)
	batch := make([]uint64, 1000)
	FillNonces(a, batch)
	for i, got := range batch {
		if want := b.Nonce64(); got != want {
			t.Fatalf("nonce %d: batch %#x, serial %#x", i, got, want)
		}
	}
}

func TestFillNoncesCryptoDrawsDistinct(t *testing.T) {
	batch := make([]uint64, 200)
	FillNonces(CryptoNonceSource{}, batch)
	seen := map[uint64]bool{}
	for _, v := range batch {
		seen[v] = true
	}
	// 200 draws of 64-bit CSPRNG output collide with probability ~2^-51;
	// any repeat here means the chunked reader misindexed its buffer.
	if len(seen) != len(batch) {
		t.Fatalf("crypto batch produced %d distinct values out of %d", len(seen), len(batch))
	}
}

// fallbackOnlySource hides the batch method to exercise FillNonces's
// per-value fallback path.
type fallbackOnlySource struct{ s *SeededNonceSource }

func (f fallbackOnlySource) Nonce64() uint64 { return f.s.Nonce64() }

func TestFillNoncesFallback(t *testing.T) {
	a := fallbackOnlySource{NewSeededNonceSource(7)}
	b := NewSeededNonceSource(7)
	batch := make([]uint64, 50)
	FillNonces(a, batch)
	for i, got := range batch {
		if want := b.Nonce64(); got != want {
			t.Fatalf("nonce %d: fallback %#x, serial %#x", i, got, want)
		}
	}
}
