package crypt

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
)

// NonceSize is the nonce length in bytes. The paper fixes nonces at
// 64 bits (§VI-A: an attacker must search 2^64 r0 values × 2^128 keys).
const NonceSize = 8

// NonceSource produces the 64-bit random nonces that pad and chain
// ciphertext blocks. Implementations must be safe for concurrent use.
type NonceSource interface {
	// Nonce64 returns the next 64-bit nonce.
	Nonce64() uint64
}

// NonceBatcher is an optional NonceSource extension for bulk draws. The
// batched Enc kernels need one nonce per block; drawing them through a
// single call amortizes the per-draw cost (a getrandom syscall for the
// CSPRNG source, a mutex acquisition for the seeded one) across the run.
// Implementations must produce exactly the sequence that len(dst)
// consecutive Nonce64 calls would, so serial and batched kernels stay
// byte-identical.
type NonceBatcher interface {
	// Nonce64Batch fills dst with the next len(dst) nonces.
	Nonce64Batch(dst []uint64)
}

// FillNonces fills dst with len(dst) nonces from src, using the bulk path
// when src implements NonceBatcher and falling back to per-value Nonce64
// calls otherwise.
func FillNonces(src NonceSource, dst []uint64) {
	if b, ok := src.(NonceBatcher); ok {
		b.Nonce64Batch(dst)
		return
	}
	for i := range dst {
		dst[i] = src.Nonce64()
	}
}

// CryptoNonceSource draws nonces from crypto/rand. It is the source used
// outside of tests.
type CryptoNonceSource struct{}

// Nonce64 returns 8 bytes from the operating system CSPRNG.
func (CryptoNonceSource) Nonce64() uint64 {
	var b [NonceSize]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means no secure randomness exists at all;
		// every encryption from here would be unsafe.
		panic(fmt.Sprintf("crypt: crypto/rand failed: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}

// Nonce64Batch fills dst drawing up to 32 KiB of entropy per crypto/rand
// read instead of 8 bytes, cutting the read count 4096x on large
// documents. CSPRNG output is i.i.d., so chunking cannot change the
// distribution relative to per-value draws.
func (CryptoNonceSource) Nonce64Batch(dst []uint64) {
	var buf [4096 * NonceSize]byte
	for len(dst) > 0 {
		n := len(dst)
		if n > 4096 {
			n = 4096
		}
		if _, err := rand.Read(buf[:n*NonceSize]); err != nil {
			panic(fmt.Sprintf("crypt: crypto/rand failed: %v", err))
		}
		for i := 0; i < n; i++ {
			dst[i] = binary.BigEndian.Uint64(buf[i*NonceSize:])
		}
		dst = dst[n:]
	}
}

// SeededNonceSource is a deterministic nonce source for tests and
// reproducible benchmarks. It is NOT cryptographically secure: it produces
// a fixed, seed-determined sequence using SplitMix64.
type SeededNonceSource struct {
	mu    sync.Mutex
	state uint64
}

// NewSeededNonceSource returns a deterministic source seeded with seed.
func NewSeededNonceSource(seed uint64) *SeededNonceSource {
	return &SeededNonceSource{state: seed}
}

// Nonce64 returns the next value of the SplitMix64 sequence.
func (s *SeededNonceSource) Nonce64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next()
}

// Nonce64Batch fills dst with the next len(dst) values of the sequence
// under a single lock acquisition — the identical sequence len(dst)
// Nonce64 calls would produce, as NonceBatcher requires.
func (s *SeededNonceSource) Nonce64Batch(dst []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range dst {
		dst[i] = s.next()
	}
}

// next advances the SplitMix64 state; callers hold s.mu.
func (s *SeededNonceSource) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
