package crypt

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
)

// NonceSize is the nonce length in bytes. The paper fixes nonces at
// 64 bits (§VI-A: an attacker must search 2^64 r0 values × 2^128 keys).
const NonceSize = 8

// NonceSource produces the 64-bit random nonces that pad and chain
// ciphertext blocks. Implementations must be safe for concurrent use.
type NonceSource interface {
	// Nonce64 returns the next 64-bit nonce.
	Nonce64() uint64
}

// CryptoNonceSource draws nonces from crypto/rand. It is the source used
// outside of tests.
type CryptoNonceSource struct{}

// Nonce64 returns 8 bytes from the operating system CSPRNG.
func (CryptoNonceSource) Nonce64() uint64 {
	var b [NonceSize]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means no secure randomness exists at all;
		// every encryption from here would be unsafe.
		panic(fmt.Sprintf("crypt: crypto/rand failed: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}

// SeededNonceSource is a deterministic nonce source for tests and
// reproducible benchmarks. It is NOT cryptographically secure: it produces
// a fixed, seed-determined sequence using SplitMix64.
type SeededNonceSource struct {
	mu    sync.Mutex
	state uint64
}

// NewSeededNonceSource returns a deterministic source seeded with seed.
func NewSeededNonceSource(seed uint64) *SeededNonceSource {
	return &SeededNonceSource{state: seed}
}

// Nonce64 returns the next value of the SplitMix64 sequence.
func (s *SeededNonceSource) Nonce64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
