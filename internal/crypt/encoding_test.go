package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTransportRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		got, err := DecodeTransport(EncodeTransport(raw))
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("transport round trip: %v", err)
	}
}

func TestTransportIsPrintable(t *testing.T) {
	raw := make([]byte, 256)
	for i := range raw {
		raw[i] = byte(i)
	}
	enc := EncodeTransport(raw)
	for i := 0; i < len(enc); i++ {
		c := enc[i]
		ok := (c >= 'A' && c <= 'Z') || (c >= '2' && c <= '7')
		if !ok {
			t.Fatalf("transport text contains non-Base32 byte %q at %d", c, i)
		}
	}
}

func TestDecodeTransportRejectsGarbage(t *testing.T) {
	if _, err := DecodeTransport("not base32 at all!"); err == nil {
		t.Error("DecodeTransport accepted invalid input")
	}
}

func TestTransportLenMatchesEncoding(t *testing.T) {
	for n := 0; n <= 200; n++ {
		enc := EncodeTransport(make([]byte, n))
		if got := TransportLen(n); got != len(enc) {
			t.Errorf("TransportLen(%d) = %d, want %d", n, got, len(enc))
		}
	}
}

func TestDecodeTransportRejectsNonCanonical(t *testing.T) {
	// "A2222222" has nonzero padding bits in lenient decoders for some
	// lengths; build a guaranteed non-canonical string: encode bytes,
	// then flip the final symbol to one that differs only in slack bits.
	enc := EncodeTransport([]byte{0xFF}) // 1 byte -> 2 chars, 2 slack bits
	if len(enc) != 2 {
		t.Fatalf("unexpected encoding %q", enc)
	}
	// The second symbol carries 3 data bits + 2 slack bits; adding 1 to
	// the symbol value changes only slack bits for this input.
	bad := enc[:1] + string(enc[1]+1)
	if _, err := DecodeTransport(bad); err == nil {
		t.Errorf("non-canonical %q accepted (canonical %q)", bad, enc)
	}
	// The canonical form still decodes.
	if _, err := DecodeTransport(enc); err != nil {
		t.Errorf("canonical %q rejected: %v", enc, err)
	}
}
