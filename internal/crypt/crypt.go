// Package crypt provides the cryptographic primitives used by the
// incremental encryption schemes: a 16-byte AES pseudorandom permutation,
// a 32-byte wide-block permutation (4-round Luby-Rackoff Feistel over AES),
// PBKDF2-HMAC-SHA256 password key derivation, nonce sources, and the
// Base32 transport coding the 2011 prototype used for ciphertext documents.
//
// The paper's RPC mode encrypts triples (r_i, d_i, r_{i+1}) whose natural
// width (64-bit nonce + 64-bit data + 64-bit nonce) exceeds AES's 128-bit
// block. The wide-block permutation supplies a 256-bit PRP for that mode;
// the rECB mode uses plain AES-128/256 blocks directly.
package crypt

import (
	"crypto/aes"
	stdcipher "crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the width in bytes of the narrow PRP (one AES block).
const BlockSize = 16

// WideBlockSize is the width in bytes of the wide PRP used by RPC mode.
const WideBlockSize = 32

// KeySize is the AES key length used throughout (AES-128, matching the
// paper's 2^128 key-search bound in §VI-A).
const KeySize = 16

var (
	// ErrKeySize reports a key of the wrong length.
	ErrKeySize = errors.New("crypt: key must be 16 bytes")
	// ErrBlockSize reports input of the wrong block width.
	ErrBlockSize = errors.New("crypt: input is not a full block")
)

// PRP is a pseudorandom permutation over 16-byte blocks, implemented with
// AES-128. Encrypt and Decrypt operate in place on exactly one block.
type PRP struct {
	block stdcipher.Block
}

// NewPRP builds a narrow PRP from a 16-byte key.
func NewPRP(key []byte) (*PRP, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypt: new aes cipher: %w", err)
	}
	return &PRP{block: block}, nil
}

// Encrypt applies the permutation to src, writing the result to dst.
// dst and src must each be exactly BlockSize bytes and may alias.
//
//taint:sanitizer Enc kernel: dst is ciphertext
func (p *PRP) Encrypt(dst, src []byte) error {
	if len(src) != BlockSize || len(dst) != BlockSize {
		return ErrBlockSize
	}
	p.block.Encrypt(dst, src)
	return nil
}

// Decrypt applies the inverse permutation to src, writing the result to dst.
// dst and src must each be exactly BlockSize bytes and may alias.
func (p *PRP) Decrypt(dst, src []byte) error {
	if len(src) != BlockSize || len(dst) != BlockSize {
		return ErrBlockSize
	}
	p.block.Decrypt(dst, src)
	return nil
}

// PutUint64 writes v big-endian into b[:8].
func PutUint64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Uint64 reads a big-endian uint64 from b[:8].
func Uint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// XORBytes xors src into dst (dst ^= src) over min(len(dst), len(src)) bytes
// and returns the number of bytes processed.
func XORBytes(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}
