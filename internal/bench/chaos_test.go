package bench

import (
	"bytes"
	"testing"
	"time"

	"privedit/internal/netsim"
)

func chaosTestConfig(seed int64) ChaosConfig {
	return ChaosConfig{
		Sessions:      3,
		OpsPerSession: 15,
		DocChars:      1_200,
		ReloadEvery:   5,
		Seed:          seed,
		Fault: netsim.FaultProfile{
			Seed:             seed,
			DropRate:         0.08,
			DropResponseRate: 0.04,
			Error5xxRate:     0.06,
			ThrottleRate:     0.04,
			TimeoutRate:      0.04,
			CorruptRate:      0.04,
			TimeoutDelay:     100 * time.Microsecond,
		},
	}
}

func TestChaosConverges(t *testing.T) {
	report, err := RunChaos(chaosTestConfig(2011))
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if report.DivergedDocs != 0 {
		t.Errorf("%d documents diverged after the storm", report.DivergedDocs)
	}
	if report.ConvergedDocs != 3 {
		t.Errorf("ConvergedDocs = %d, want 3", report.ConvergedDocs)
	}
	if report.Faults.Injected() == 0 {
		t.Error("storm injected no faults; the run proved nothing")
	}
	if report.Faults.Requests == 0 {
		t.Error("no requests counted during the storm")
	}
	// The profile's outright-failure rate is ~26%; with retries in the
	// loop the transport must have seen real trouble.
	if rate := chaosTestConfig(2011).Fault.FailureRate(); rate < 0.20 {
		t.Errorf("storm failure rate %.2f below the 20%% bar", rate)
	}
}

// Same seed, run twice: the fault counts and op totals must be
// byte-identical — the determinism contract the fault transport's
// occurrence-keyed decisions exist to provide.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	r1, err := RunChaos(chaosTestConfig(42))
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := RunChaos(chaosTestConfig(42))
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	k1, err := r1.DeterministicKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := r2.DeterministicKey()
	if err != nil {
		t.Fatal(err)
	}
	if string(k1) != string(k2) {
		t.Errorf("same seed, different deterministic keys:\nrun1 %s\nrun2 %s", k1, k2)
	}
	if r1.Faults.Injected() == 0 {
		t.Error("deterministic key pinned a run with zero faults")
	}
}

func TestChaosDifferentSeedsDiffer(t *testing.T) {
	r1, err := RunChaos(chaosTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunChaos(chaosTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := r1.DeterministicKey()
	k2, _ := r2.DeterministicKey()
	if string(k1) == string(k2) {
		t.Error("different seeds produced identical fault/op totals")
	}
}

func TestChaosArtifactMarshal(t *testing.T) {
	report, err := RunChaos(ChaosConfig{Sessions: 1, OpsPerSession: 3, DocChars: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := ChaosArtifact{Title: "t", Fault: chaosTestConfig(7).Fault, Chaos: report}
	out, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"fault_profile"`, `"chaos"`, `"faults"`, `"converged_docs"`, `"drop_rate"`} {
		if !bytes.Contains(out, []byte(key)) {
			t.Errorf("artifact JSON missing %s", key)
		}
	}
}
