package bench

import (
	"fmt"
	"strings"
	"time"

	"privedit/internal/core"
	"privedit/internal/netsim"
	"privedit/internal/workload"
)

// Macro-benchmark environment (§VII-C). The paper measured end-to-end
// latency with Selenium against the live service; here each test case's
// latency is the measured client-side cost (encryption, delta
// transformation) plus the netsim model's network and server time for the
// actual message sizes.
const (
	// formOverheadBytes approximates the HTTP/form framing around the
	// document payload.
	formOverheadBytes = 100
	// ackBytes models the save acknowledgment. (The simulated server
	// echoes the full content in contentFromServer, but the 2011 service
	// the paper measured plainly did not pay full-document traffic per
	// ack, or its 500 KB documents could not have saved in tens of
	// milliseconds; the model uses a compact ack.)
	ackBytes = 200
	// initialFixed is the editor bootstrap (page load, script init)
	// included in both arms of the initial-load test case. The 2011
	// Google Documents editor took seconds to become interactive.
	initialFixed = 3 * time.Second
)

// MacroCell is one table cell: mean degradation and its deviation.
type MacroCell struct {
	MeanPct float64 // (T_with - T_without) / T_without, percent
	Dev     float64 // standard deviation of the per-trial degradations
}

// MacroRow is one operation row across schemes.
type MacroRow struct {
	Op    string
	Cells []MacroCell // parallel to MacroTable.Schemes
}

// MacroTable reproduces one block of Figure 5 (or Figure 8): performance
// degradation for one file size.
type MacroTable struct {
	Title      string
	DocLen     int
	BlockChars int
	Schemes    []core.Scheme
	Rows       []MacroRow
}

// macroOps are the rows of the paper's macro tables.
var macroOps = []struct {
	name string
	kind workload.Kind
}{
	{"initial load", 0}, // handled specially
	{"inserts only", workload.InsertsOnly},
	{"deletes only", workload.DeletesOnly},
	{"inserts & deletes", workload.InsertsAndDeletes},
}

// macroCell measures one (scheme, size, op) cell.
func macroCell(cfg Config, scheme core.Scheme, blockChars, docLen int, kind workload.Kind, initial bool, net netsim.Profile) (MacroCell, error) {
	trials := cfg.trials(30)
	gen := workload.NewGen(cfg.Seed + int64(docLen) + int64(kind)*17 + int64(scheme)*31 + int64(blockChars)*101)
	var degr Sample

	if initial {
		for i := 0; i < trials; i++ {
			doc := gen.Document(docLen)
			ed, err := editorFor(scheme, blockChars, uint64(cfg.Seed)+uint64(i)+uint64(docLen))
			if err != nil {
				return MacroCell{}, err
			}
			start := time.Now()
			transport, err := ed.Encrypt(doc)
			if err != nil {
				return MacroCell{}, err
			}
			crypto := time.Since(start)

			without := initialFixed + net.RequestTime(len(doc)+formOverheadBytes, ackBytes)
			with := initialFixed + crypto + net.RequestTime(len(transport)+formOverheadBytes, ackBytes)
			degr.Add(float64(with-without) / float64(without) * 100)
		}
		return MacroCell{MeanPct: degr.Mean(), Dev: degr.StdDev() / 100}, nil
	}

	// Editing test cases: whole-document save first (untimed), then each
	// trial performs one edit and times the incremental save.
	ed, err := editorFor(scheme, blockChars, uint64(cfg.Seed)+uint64(docLen)*3+uint64(scheme))
	if err != nil {
		return MacroCell{}, err
	}
	doc := gen.Document(docLen)
	if _, err := ed.Encrypt(doc); err != nil {
		return MacroCell{}, err
	}
	for i := 0; i < trials; i++ {
		sp := gen.Edit(ed.Plaintext(), kind)
		if sp.Del == 0 && sp.Ins == "" {
			continue
		}
		pd := sp.Delta()
		pdWire := pd.String()

		start := time.Now()
		cd, err := ed.TransformDeltaOps(pd)
		if err != nil {
			return MacroCell{}, err
		}
		crypto := time.Since(start)
		cdWire := cd.String()

		without := net.RequestTime(len(pdWire)+formOverheadBytes, ackBytes)
		with := crypto + net.RequestTime(len(cdWire)+formOverheadBytes, ackBytes)
		degr.Add(float64(with-without) / float64(without) * 100)
	}
	return MacroCell{MeanPct: degr.Mean(), Dev: degr.StdDev() / 100}, nil
}

// macroTable builds one table for a document size.
func macroTable(cfg Config, title string, docLen, blockChars int, schemes []core.Scheme, net netsim.Profile) (MacroTable, error) {
	t := MacroTable{Title: title, DocLen: docLen, BlockChars: blockChars, Schemes: schemes}
	for _, op := range macroOps {
		row := MacroRow{Op: op.name}
		for _, scheme := range schemes {
			cell, err := macroCell(cfg, scheme, blockChars, docLen, op.kind, op.name == "initial load", net)
			if err != nil {
				return MacroTable{}, err
			}
			row.Cells = append(row.Cells, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: macro-benchmark degradation for small (≈500)
// and large (≈10000 character) files, rECB and RPC, single-character
// blocks (the multi-character variant is Figure 8).
func Fig5(cfg Config) ([]MacroTable, error) {
	net := netsim.Broadband2009()
	schemes := []core.Scheme{core.ConfidentialityOnly, core.ConfidentialityIntegrity}
	small, err := macroTable(cfg, "Small (~500 characters) files", 500, 1, schemes, net)
	if err != nil {
		return nil, err
	}
	large, err := macroTable(cfg, "Large (~10000 characters) files", 10000, 1, schemes, net)
	if err != nil {
		return nil, err
	}
	return []MacroTable{small, large}, nil
}

// Fig8 reproduces Figure 8: the macro-benchmark with 8-character-block
// rECB incremental encryption on large files.
func Fig8(cfg Config) (MacroTable, error) {
	return macroTable(cfg, "Multi-character blocks (b = 8), large files",
		10000, 8, []core.Scheme{core.ConfidentialityOnly}, netsim.Broadband2009())
}

// String renders the table in the shape of the paper's Figure 5 / 8.
func (t MacroTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (block size %d)\n", t.Title, t.BlockChars)
	fmt.Fprintf(&b, "%-20s", "")
	for _, s := range t.Schemes {
		fmt.Fprintf(&b, " %10s %6s", s, "dev.")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-20s", row.Op)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %9.1f%% %6.3f", c.MeanPct, c.Dev)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
