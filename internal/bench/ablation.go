package bench

import (
	"fmt"
	"strings"
	"time"

	"privedit/internal/baseline"
	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/workload"
)

// AblationRow compares per-edit cost across approaches at one document
// size: the incremental editor (this paper), the CoClo full-reencryption
// baseline, and the naive realign strawman of §V-C.
type AblationRow struct {
	DocLen int

	IncTimeUs  float64 // incremental: mean time per edit
	IncBytes   float64 // incremental: mean ciphertext chars shipped per edit
	FullTimeUs float64 // CoClo: whole-document re-encryption time
	FullBytes  float64 // CoClo: whole container shipped
	NaiveTime  float64 // realign: time per edit (us)
	NaiveBytes float64 // realign: ciphertext chars shipped
}

// AblationResult is the design-choice ablation DESIGN.md calls out: what
// the incremental scheme and the IndexedSkipList each buy, as a function
// of document size.
type AblationResult struct {
	Scheme core.Scheme
	Trials int
	Rows   []AblationRow
}

// Ablation measures all three approaches on the same edit workload.
func Ablation(cfg Config) (AblationResult, error) {
	trials := cfg.trials(20)
	scheme := core.ConfidentialityOnly
	res := AblationResult{Scheme: scheme, Trials: trials}
	opts := func(seed uint64) core.Options {
		return core.Options{
			Scheme:     scheme,
			BlockChars: 8,
			Nonces:     crypt.NewSeededNonceSource(seed),
		}
	}
	for _, docLen := range []int{500, 2000, 10000, 50000} {
		gen := workload.NewGen(cfg.Seed + int64(docLen))
		doc := gen.Document(docLen)
		script := gen.Script(doc, workload.InsertsAndDeletes, trials)

		// Incremental (this paper).
		ed, err := core.NewEditor("pw", opts(uint64(docLen)+1))
		if err != nil {
			return AblationResult{}, err
		}
		if _, err := ed.Encrypt(doc); err != nil {
			return AblationResult{}, err
		}
		var incTime time.Duration
		var incBytes int
		for _, sp := range script {
			start := time.Now()
			cd, err := ed.Splice(sp.Pos, sp.Del, sp.Ins)
			if err != nil {
				return AblationResult{}, err
			}
			incTime += time.Since(start)
			incBytes += cd.InsertLen()
		}

		// CoClo full re-encryption.
		full, err := baseline.NewFullReencrypt("pw", opts(uint64(docLen)+2))
		if err != nil {
			return AblationResult{}, err
		}
		if _, err := full.SetText(doc); err != nil {
			return AblationResult{}, err
		}
		var fullTime time.Duration
		var fullBytes int
		for _, sp := range script {
			start := time.Now()
			transport, err := full.Splice(sp.Pos, sp.Del, sp.Ins)
			if err != nil {
				return AblationResult{}, err
			}
			fullTime += time.Since(start)
			fullBytes += len(transport)
		}

		// Naive realign.
		naive, err := baseline.NewNaiveRealign("pw", opts(uint64(docLen)+3))
		if err != nil {
			return AblationResult{}, err
		}
		if _, err := naive.SetText(doc); err != nil {
			return AblationResult{}, err
		}
		var naiveTime time.Duration
		var naiveBytes int
		for _, sp := range script {
			start := time.Now()
			shipped, err := naive.Splice(sp.Pos, sp.Del, sp.Ins)
			if err != nil {
				return AblationResult{}, err
			}
			naiveTime += time.Since(start)
			naiveBytes += shipped
		}

		n := float64(len(script))
		res.Rows = append(res.Rows, AblationRow{
			DocLen:     docLen,
			IncTimeUs:  float64(incTime.Microseconds()) / n,
			IncBytes:   float64(incBytes) / n,
			FullTimeUs: float64(fullTime.Microseconds()) / n,
			FullBytes:  float64(fullBytes) / n,
			NaiveTime:  float64(naiveTime.Microseconds()) / n,
			NaiveBytes: float64(naiveBytes) / n,
		})
	}
	return res, nil
}

// String renders the ablation table.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (%s, b=8, %d edits/size): per-edit cost of design choices\n", r.Scheme, r.Trials)
	fmt.Fprintf(&b, "%-8s | %12s %12s | %12s %12s | %12s %12s\n",
		"doc len", "inc us", "inc chars", "CoClo us", "CoClo chars", "naive us", "naive chars")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d | %12.1f %12.0f | %12.1f %12.0f | %12.1f %12.0f\n",
			row.DocLen, row.IncTimeUs, row.IncBytes, row.FullTimeUs, row.FullBytes, row.NaiveTime, row.NaiveBytes)
	}
	return b.String()
}
