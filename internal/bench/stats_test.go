package bench

import (
	"math/rand"
	"testing"
)

// TestPercentileNearestRank pins the nearest-rank definition:
// rank = ceil(q*n), 1-indexed into the sorted sample.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		q      float64
		want   float64
	}{
		// n=1: every percentile is the lone observation.
		{"n1-p50", []float64{7}, 0.50, 7},
		{"n1-p95", []float64{7}, 0.95, 7},
		{"n1-p99", []float64{7}, 0.99, 7},
		{"n1-p100", []float64{7}, 1.00, 7},

		// n=2: ceil(0.5*2)=1 → first; anything above 0.5 → second.
		{"n2-p50", []float64{10, 20}, 0.50, 10},
		{"n2-p51", []float64{10, 20}, 0.51, 20},
		{"n2-p95", []float64{20, 10}, 0.95, 20}, // order must not matter
		{"n2-p100", []float64{10, 20}, 1.00, 20},

		// n=4: ceil(0.5*4)=2, ceil(0.95*4)=4, ceil(0.25*4)=1.
		{"n4-p25", []float64{4, 1, 3, 2}, 0.25, 1},
		{"n4-p50", []float64{4, 1, 3, 2}, 0.50, 2},
		{"n4-p75", []float64{4, 1, 3, 2}, 0.75, 3},
		{"n4-p95", []float64{4, 1, 3, 2}, 0.95, 4},

		// n=100 over 1..100: ceil(q*100) is the value itself.
		{"n100-p50", seq(100), 0.50, 50},
		{"n100-p95", seq(100), 0.95, 95},
		{"n100-p99", seq(100), 0.99, 99},
		{"n100-p1", seq(100), 0.01, 1},
		{"n100-p100", seq(100), 1.00, 100},

		{"empty", nil, 0.50, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			for _, v := range tc.values {
				s.Add(v)
			}
			if got := s.Percentile(tc.q); got != tc.want {
				t.Fatalf("Percentile(%v) over %v = %v, want %v", tc.q, tc.values, got, tc.want)
			}
		})
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestPercentileProperties checks invariants on random samples: the result
// is always an actual observation, percentiles are monotone in q, P100 is
// the max, and the underlying sample is not reordered.
func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var s Sample
		n := 1 + rng.Intn(50)
		orig := make([]float64, n)
		for i := 0; i < n; i++ {
			orig[i] = rng.NormFloat64()
			s.Add(orig[i])
		}
		prev := s.Min() - 1
		for _, q := range []float64{0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0} {
			p := s.Percentile(q)
			found := false
			for _, v := range orig {
				if v == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("Percentile(%v) = %v is not an observation", q, p)
			}
			if p < prev {
				t.Fatalf("Percentile not monotone: %v then %v", prev, p)
			}
			prev = p
		}
		if s.Percentile(1.0) != s.Max() {
			t.Fatalf("P100 %v != max %v", s.Percentile(1.0), s.Max())
		}
		for i, v := range s.values {
			if v != orig[i] {
				t.Fatal("Percentile reordered the sample")
			}
		}
	}
}
