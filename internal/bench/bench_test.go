package bench

import (
	"strings"
	"testing"

	"privedit/internal/core"
)

func quickCfg() Config { return Config{Trials: 3, Seed: 42} }

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample stats nonzero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %f", got)
	}
	// Sample stddev of that classic set is ~2.138.
	if got := s.StdDev(); got < 2.0 || got > 2.3 {
		t.Errorf("StdDev = %f", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %f/%f", s.Min(), s.Max())
	}
}

func TestFig4Runs(t *testing.T) {
	for _, scheme := range []core.Scheme{core.ConfidentialityOnly, core.ConfidentialityIntegrity} {
		res, err := Fig4(quickCfg(), scheme)
		if err != nil {
			t.Fatalf("Fig4(%v): %v", scheme, err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("Fig4 rows = %d", len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.PerCharMicros <= 0 {
				t.Errorf("%v/%s: per-char time %f", scheme, row.Op, row.PerCharMicros)
			}
		}
		if !strings.Contains(res.String(), "Figure 4") {
			t.Error("Fig4 String() malformed")
		}
	}
}

func TestFig4IncrementalBeatsFullPerChar(t *testing.T) {
	// The reason incremental encryption exists: per *changed* character it
	// must not be wildly worse than full encryption per character, and
	// per-edit it touches far less data. Verify the magnitude is sane:
	// incremental per-char cost within 100x of full encryption per-char
	// (it pays O(log n) index work per edit).
	res, err := Fig4(Config{Trials: 5, Seed: 7}, core.ConfidentialityIntegrity)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	enc := res.Rows[0].PerCharMicros
	inc := res.Rows[2].PerCharMicros
	if inc > enc*100 {
		t.Errorf("incremental %f us/char vs enc %f us/char: index overhead too large", inc, enc)
	}
}

func TestFig5Runs(t *testing.T) {
	tables, err := Fig5(quickCfg())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("Fig5 tables = %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 4 {
			t.Errorf("%s: rows = %d", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if len(row.Cells) != 2 {
				t.Errorf("%s/%s: cells = %d", tab.Title, row.Op, len(row.Cells))
			}
			for _, c := range row.Cells {
				if c.MeanPct < 0 {
					t.Errorf("%s/%s: negative degradation %f", tab.Title, row.Op, c.MeanPct)
				}
			}
		}
		if !strings.Contains(tab.String(), "initial load") {
			t.Error("table String() missing rows")
		}
	}
	// Paper shape: initial load dominates the editing operations.
	large := tables[1]
	if large.Rows[0].Cells[0].MeanPct <= large.Rows[1].Cells[0].MeanPct {
		t.Errorf("initial load (%f%%) not above inserts (%f%%)",
			large.Rows[0].Cells[0].MeanPct, large.Rows[1].Cells[0].MeanPct)
	}
	// Paper shape: RPC costs at least as much as rECB on initial load
	// (bigger records).
	if large.Rows[0].Cells[1].MeanPct < large.Rows[0].Cells[0].MeanPct {
		t.Errorf("RPC initial load (%f%%) below rECB (%f%%)",
			large.Rows[0].Cells[1].MeanPct, large.Rows[0].Cells[0].MeanPct)
	}
}

func TestFig6Runs(t *testing.T) {
	res, err := Fig6(Config{Trials: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("Fig6 rows = %d", len(res.Rows))
	}
	// Paper shape: whole-document encryption gets cheaper per char as the
	// block size grows (fewer AES blocks per char).
	if res.Rows[7].EncPerCharUs >= res.Rows[0].EncPerCharUs {
		t.Errorf("enc cost did not fall with block size: b=1 %f, b=8 %f",
			res.Rows[0].EncPerCharUs, res.Rows[7].EncPerCharUs)
	}
	if !strings.Contains(res.String(), "block size") {
		t.Error("Fig6 String() malformed")
	}
}

func TestFig7Runs(t *testing.T) {
	res, err := Fig7(Config{Trials: 30, Seed: 2}, core.ConfidentialityOnly)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("Fig7 rows = %d", len(res.Rows))
	}
	// Paper shape: blowup decreases monotonically (roughly) with block
	// size; b=8 reduction is substantial (paper: 82%).
	if res.Rows[7].Blowup >= res.Rows[0].Blowup {
		t.Error("blowup did not fall with block size")
	}
	if res.Rows[7].Reduction < 0.6 {
		t.Errorf("b=8 reduction = %f, want >= 0.6", res.Rows[7].Reduction)
	}
	if res.Rows[0].Reduction != 0 {
		t.Errorf("b=1 reduction = %f, want 0", res.Rows[0].Reduction)
	}
	if !strings.Contains(res.String(), "blowup") {
		t.Error("Fig7 String() malformed")
	}
}

func TestFig8Runs(t *testing.T) {
	tab, err := Fig8(quickCfg())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if tab.BlockChars != 8 || len(tab.Schemes) != 1 {
		t.Errorf("Fig8 shape: b=%d schemes=%d", tab.BlockChars, len(tab.Schemes))
	}
	if len(tab.Rows) != 4 {
		t.Errorf("Fig8 rows = %d", len(tab.Rows))
	}
}

func TestFunctionalityMatchesPaper(t *testing.T) {
	res, err := Functionality(Config{Seed: 5})
	if err != nil {
		t.Fatalf("Functionality: %v", err)
	}
	get := func(feature string) FuncRow {
		for _, row := range res.Rows {
			if row.Feature == feature {
				return row
			}
		}
		t.Fatalf("feature %q missing", feature)
		return FuncRow{}
	}
	// §VII-A: these keep working.
	for _, f := range []string{"create document", "save (full contents)", "save (incremental delta)", "load document", "passive reader refresh"} {
		if row := get(f); row.Plain != "works" || row.Encrypted != "works" {
			t.Errorf("%s: plain=%s encrypted=%s, want works/works", f, row.Plain, row.Encrypted)
		}
	}
	// §VII-A: these become unavailable.
	for _, f := range []string{"translate", "spell check", "draw pictures", "export document"} {
		row := get(f)
		if row.Plain != "works" {
			t.Errorf("%s: plain=%s, want works", f, row.Plain)
		}
		if row.Encrypted != "blocked" {
			t.Errorf("%s: encrypted=%s, want blocked", f, row.Encrypted)
		}
	}
	// §VII-A: simultaneous editing leads to conflicts.
	if row := get("simultaneous editing"); row.Encrypted != "conflicts" {
		t.Errorf("simultaneous editing: encrypted=%s, want conflicts", row.Encrypted)
	}
	if !strings.Contains(res.String(), "spell check") {
		t.Error("Functionality String() malformed")
	}
}

func TestAblationShape(t *testing.T) {
	res, err := Ablation(Config{Trials: 5, Seed: 6})
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Ablation rows = %d", len(res.Rows))
	}
	big := res.Rows[len(res.Rows)-1] // 50000 chars
	// Incremental must ship far fewer bytes than CoClo on large docs.
	if big.IncBytes*10 > big.FullBytes {
		t.Errorf("incremental ships %f chars vs CoClo %f: no win", big.IncBytes, big.FullBytes)
	}
	// And beat the naive realign on shipped bytes as well.
	if big.IncBytes > big.NaiveBytes {
		t.Errorf("incremental ships %f chars vs naive %f", big.IncBytes, big.NaiveBytes)
	}
	if !strings.Contains(res.String(), "CoClo") {
		t.Error("Ablation String() malformed")
	}
}

func TestScalingIsSubLinear(t *testing.T) {
	res, err := Scaling(Config{Trials: 10, Seed: 9}, core.ConfidentialityOnly)
	if err != nil {
		t.Fatalf("Scaling: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	sizeRatio := float64(last.DocLen) / float64(first.DocLen) // 128x
	costRatio := last.PerEditUs / first.PerEditUs
	// O(log n) leaves a 128x size ratio with a small cost ratio; allow a
	// very generous factor for noise and cache effects, but it must be
	// nowhere near linear.
	if costRatio > sizeRatio/4 {
		t.Errorf("per-edit cost ratio %.1f for size ratio %.0f: not sub-linear", costRatio, sizeRatio)
	}
	// The ciphertext delta must not grow with document size at all.
	if last.CDeltaChars > first.CDeltaChars*3 {
		t.Errorf("cdelta grew with doc size: %f -> %f", first.CDeltaChars, last.CDeltaChars)
	}
	if !strings.Contains(res.String(), "per-edit us") {
		t.Error("Scaling String() malformed")
	}
}
