// Hot-path microbenchmark: quantifies the two profiling-driven
// optimizations on the transform_delta pipeline — the skip list's
// search-finger cache and plaintext delta coalescing — on a burst-edit
// workload shaped like the paper's Figure 6 typing traces (runs of
// single-character insertions and corrections at a moving cursor).
//
// Five variants replay the identical op tape on identically seeded
// documents: baseline (both off), finger-only, coalesce-only, and full —
// all four pinned to the reference serial crypto kernel (Workers=1) so
// the toggles are measured against a fixed kernel — plus batch, which is
// full on the batched arena kernel (Workers=0). The finger cache must be
// invisible in the bytes — the finger-only transport is asserted identical
// to the baseline's, and full to coalesce-only. The kernel switch must
// also be invisible — batch is asserted byte-identical to full, pinning
// the serial/batched ciphertext equivalence on the editing hot path.
// Coalescing legitimately changes which ciphertext deltas produce the
// document (fewer splices consume fewer nonces), so across that toggle
// only the final plaintext is asserted equal.
package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	// The op tape must be identical across the four variants and across
	// runs, so it is drawn from a seeded deterministic generator. Nothing
	// here feeds key or nonce material: the codec's nonces come from a
	// crypt.NonceSource constructed separately.
	//lint:ignore nonce-source seeded generator for a reproducible benchmark op tape; never used for keys or nonces
	"math/rand"
	"runtime"
	"time"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/rpcmode"
	"privedit/internal/workload"
)

// HotpathConfig parameterizes the hot-path run.
type HotpathConfig struct {
	DocChars   int   // initial document size
	BlockChars int   // block size b
	Ops        int   // burst deltas per variant
	BurstLen   int   // single-character edits per burst
	Seed       int64 // workload seed
}

func (c HotpathConfig) withDefaults() HotpathConfig {
	if c.DocChars <= 0 {
		c.DocChars = 20_000
	}
	if c.BlockChars <= 0 {
		c.BlockChars = 4
	}
	if c.Ops <= 0 {
		c.Ops = 2_000
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 12
	}
	if c.Seed == 0 {
		c.Seed = 2011
	}
	return c
}

// HotpathRow is one variant's measurements.
type HotpathRow struct {
	Variant     string  `json:"variant"`
	FingerCache bool    `json:"finger_cache"`
	Coalesce    bool    `json:"coalesce"`
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	P50Us       float64 `json:"p50_us"`
	P95Us       float64 `json:"p95_us"`
	P99Us       float64 `json:"p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	CipherBytes int     `json:"cipher_delta_bytes"`
	// TransportSHA256 fingerprints the final serialized container; equal
	// fingerprints prove byte-identical ciphertext.
	TransportSHA256 string `json:"transport_sha256"`
}

// HotpathArtifact is the committed BENCH_hotpath.json document.
type HotpathArtifact struct {
	Title      string       `json:"title"`
	DocChars   int          `json:"doc_chars"`
	BlockChars int          `json:"block_chars"`
	BurstLen   int          `json:"burst_len"`
	Seed       int64        `json:"seed"`
	Rows       []HotpathRow `json:"rows"`
	// Improvements of the full variant over the baseline, percent.
	P95ImprovementPct    float64 `json:"p95_improvement_pct"`
	AllocsImprovementPct float64 `json:"allocs_improvement_pct"`
}

// MarshalIndent renders the artifact for the committed JSON file.
func (a HotpathArtifact) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// hotpathOp is one pre-generated burst delta.
type hotpathOp struct {
	pd delta.Delta
}

// hotpathTape generates the deterministic burst-edit op tape. Each burst
// opens at a cursor that usually stays local to the previous one (the
// finger cache's target pattern) and mixes single-character insertions with
// backspace-style corrections (the coalescer's target pattern).
func hotpathTape(cfg HotpathConfig, docLen int) []hotpathOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]hotpathOp, 0, cfg.Ops)
	pos := docLen / 2
	length := docLen
	for i := 0; i < cfg.Ops; i++ {
		if rng.Intn(8) == 0 || pos > length {
			pos = rng.Intn(length + 1) // occasional long cursor jump
		} else if pos > 0 && rng.Intn(4) == 0 {
			pos -= rng.Intn(min(pos, 40) + 1) // local backwards move
		}
		pd := delta.Delta{delta.RetainOp(pos)}
		ins, dels := 0, 0
		for k := 0; k < cfg.BurstLen; k++ {
			if rng.Intn(4) == 0 && pos+dels < length {
				// Correction: the next source character is overwritten.
				pd = append(pd, delta.DeleteOp(1))
				dels++
			} else {
				pd = append(pd, delta.InsertOp(string(rune('a'+rng.Intn(26)))))
				ins++
			}
		}
		length += ins - dels
		pos += ins
		ops = append(ops, hotpathOp{pd: pd})
	}
	return ops
}

// hotpathVariant replays the tape on a fresh, identically seeded document.
// workers selects the crypto kernel: 1 pins the reference serial kernel,
// 0 the batched arena kernel.
func hotpathVariant(cfg HotpathConfig, name string, finger, coalesce bool, workers int, text string, tape []hotpathOp) (HotpathRow, string, error) {
	key := make([]byte, crypt.KeySize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	codec, err := rpcmode.New(key, crypt.NewSeededNonceSource(uint64(cfg.Seed)))
	if err != nil {
		return HotpathRow{}, "", err
	}
	codec.SetWorkers(workers)
	var salt [blockdoc.SaltLen]byte
	copy(salt[:], "hotpath-salt-hot")
	doc, err := blockdoc.New(codec, cfg.BlockChars, salt, [blockdoc.KeyCheckLen]byte{})
	if err != nil {
		return HotpathRow{}, "", err
	}
	doc.SetWorkers(workers)
	if err := doc.LoadPlaintext(text); err != nil {
		return HotpathRow{}, "", err
	}
	doc.SetFinger(finger)
	doc.SetCoalesce(coalesce)

	var lat Sample
	cipherBytes := 0
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i, op := range tape {
		opStart := time.Now()
		cd, err := doc.TransformDelta(op.pd)
		if err != nil {
			// Index and op count only: the delta carries document content.
			return HotpathRow{}, "", fmt.Errorf("%s: transform op %d (%d ops): %w", name, i, len(op.pd), err)
		}
		lat.Add(time.Since(opStart).Seconds())
		cipherBytes += len(cd.String())
	}
	total := time.Since(t0)
	runtime.ReadMemStats(&after)

	transport := doc.Transport()
	sum := sha256.Sum256([]byte(transport))
	row := HotpathRow{
		Variant:         name,
		FingerCache:     finger,
		Coalesce:        coalesce,
		Workers:         workers,
		Ops:             len(tape),
		NsPerOp:         float64(total.Nanoseconds()) / float64(len(tape)),
		P50Us:           lat.Percentile(0.50) * 1e6,
		P95Us:           lat.Percentile(0.95) * 1e6,
		P99Us:           lat.Percentile(0.99) * 1e6,
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / float64(len(tape)),
		BytesPerOp:      float64(after.TotalAlloc-before.TotalAlloc) / float64(len(tape)),
		CipherBytes:     cipherBytes,
		TransportSHA256: hex.EncodeToString(sum[:8]),
	}
	return row, doc.Plaintext(), nil
}

// Hotpath runs all five variants and cross-checks their equivalence.
func Hotpath(cfg HotpathConfig) (HotpathArtifact, error) {
	cfg = cfg.withDefaults()
	gen := workload.NewGen(cfg.Seed)
	text := gen.Document(cfg.DocChars)
	tape := hotpathTape(cfg, len(text))

	variants := []struct {
		name             string
		finger, coalesce bool
		workers          int
	}{
		{"baseline", false, false, 1},
		{"finger", true, false, 1},
		{"coalesce", false, true, 1},
		{"full", true, true, 1},
		{"batch", true, true, 0},
	}
	art := HotpathArtifact{
		Title:      "Hot path: finger cache + delta coalescing on burst edits",
		DocChars:   cfg.DocChars,
		BlockChars: cfg.BlockChars,
		BurstLen:   cfg.BurstLen,
		Seed:       cfg.Seed,
	}
	// Warm-up pass: page in code and steady-state the heap so the first
	// measured variant isn't charged for process cold start.
	warm := tape
	if len(warm) > 200 {
		warm = warm[:200]
	}
	if _, _, err := hotpathVariant(cfg, "warmup", false, false, 1, text, warm); err != nil {
		return art, err
	}

	plains := make([]string, len(variants))
	for i, v := range variants {
		row, plain, err := hotpathVariant(cfg, v.name, v.finger, v.coalesce, v.workers, text, tape)
		if err != nil {
			return art, err
		}
		art.Rows = append(art.Rows, row)
		plains[i] = plain
	}

	// Equivalence: every variant converges to the same plaintext; toggling
	// only the finger cache leaves the serialized ciphertext byte-identical.
	for i := 1; i < len(plains); i++ {
		if plains[i] != plains[0] {
			return art, fmt.Errorf("hotpath: variant %s plaintext diverged from baseline", art.Rows[i].Variant)
		}
	}
	if art.Rows[1].TransportSHA256 != art.Rows[0].TransportSHA256 {
		return art, fmt.Errorf("hotpath: finger cache changed the ciphertext (%s vs %s)",
			art.Rows[1].TransportSHA256, art.Rows[0].TransportSHA256)
	}
	if art.Rows[3].TransportSHA256 != art.Rows[2].TransportSHA256 {
		return art, fmt.Errorf("hotpath: finger cache changed the coalesced ciphertext (%s vs %s)",
			art.Rows[3].TransportSHA256, art.Rows[2].TransportSHA256)
	}
	if art.Rows[4].TransportSHA256 != art.Rows[3].TransportSHA256 {
		return art, fmt.Errorf("hotpath: batched kernel changed the ciphertext (%s vs %s)",
			art.Rows[4].TransportSHA256, art.Rows[3].TransportSHA256)
	}

	base, full := art.Rows[0], art.Rows[3]
	if base.P95Us > 0 {
		art.P95ImprovementPct = 100 * (base.P95Us - full.P95Us) / base.P95Us
	}
	if base.AllocsPerOp > 0 {
		art.AllocsImprovementPct = 100 * (base.AllocsPerOp - full.AllocsPerOp) / base.AllocsPerOp
	}
	return art, nil
}

// String renders the artifact as a paper-style table.
func (a HotpathArtifact) String() string {
	s := fmt.Sprintf("Hot path: burst edits (%d-char doc, b=%d, bursts of %d)\n",
		a.DocChars, a.BlockChars, a.BurstLen)
	s += fmt.Sprintf("  %-10s %9s %9s %9s %11s %12s  %s\n",
		"variant", "ns/op", "p95 us", "p99 us", "allocs/op", "bytes/op", "transport")
	for _, r := range a.Rows {
		s += fmt.Sprintf("  %-10s %9.0f %9.1f %9.1f %11.1f %12.0f  %s\n",
			r.Variant, r.NsPerOp, r.P95Us, r.P99Us, r.AllocsPerOp, r.BytesPerOp, r.TransportSHA256)
	}
	s += fmt.Sprintf("  full vs baseline: p95 %.1f%% better, allocs/op %.1f%% better\n",
		a.P95ImprovementPct, a.AllocsImprovementPct)
	return s
}
