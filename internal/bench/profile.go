package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and schedules a heap
// profile at memPath; either path may be empty to skip that profile. The
// returned stop function ends the CPU profile and writes the heap profile,
// and must run before the process exits for the files to be valid.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("bench: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("bench: cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("bench: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err == nil {
				// An up-to-date heap profile needs the most recent GC's
				// live-object statistics.
				runtime.GC()
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("bench: heap profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
