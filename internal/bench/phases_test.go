package bench

import (
	"testing"
	"time"

	"privedit/internal/netsim"
	"privedit/internal/trace"
)

func phaseTrace(root string, conflict bool, phases map[string][]int64) trace.Trace {
	tr := trace.Trace{TraceID: "t", Root: root}
	tr.Spans = append(tr.Spans, trace.SpanData{SpanID: "r", Name: root})
	if conflict {
		tr.Spans[0].Annotations = []trace.Annotation{{Key: "conflict", Value: "1"}}
	}
	for name, durs := range phases {
		for _, d := range durs {
			tr.Spans = append(tr.Spans, trace.SpanData{Name: name, DurationNs: d})
		}
	}
	return tr
}

func TestAggregatePhases(t *testing.T) {
	ms := int64(time.Millisecond)
	traces := []trace.Trace{
		// Clean op: one save, one encrypt.
		phaseTrace(trace.SpanEditOp, false, map[string][]int64{
			trace.SpanSave:    {10 * ms},
			trace.SpanEncrypt: {2 * ms},
		}),
		// Conflict op: two retry spans sum into one per-op observation.
		phaseTrace(trace.SpanEditOp, true, map[string][]int64{
			trace.SpanSave:   {30 * ms},
			trace.SpanRetry:  {5 * ms, 7 * ms},
			trace.SpanResync: {4 * ms},
		}),
		// Non-operation roots are skipped.
		phaseTrace(trace.SpanServerRequest, false, map[string][]int64{
			trace.SpanSave: {99 * ms},
		}),
		phaseTrace(trace.SpanRuntimeSample, false, nil),
	}
	b := AggregatePhases(traces)
	if b.Ops != 2 || b.CleanOps != 1 || b.ConflictOps != 1 {
		t.Fatalf("ops = %d clean=%d conflict=%d; want 2/1/1", b.Ops, b.CleanOps, b.ConflictOps)
	}
	find := func(stats []PhaseStat, phase string) PhaseStat {
		for _, s := range stats {
			if s.Phase == phase {
				return s
			}
		}
		t.Fatalf("phase %q missing in %+v", phase, stats)
		return PhaseStat{}
	}
	if s := find(b.Clean, trace.SpanSave); s.Count != 1 || s.P50Ms != 10 || s.P95Ms != 10 {
		t.Fatalf("clean save stat: %+v", s)
	}
	if s := find(b.Conflict, trace.SpanRetry); s.Count != 1 || s.P50Ms != 12 {
		t.Fatalf("conflict retry stat (want summed 12ms): %+v", s)
	}
	if s := find(b.Conflict, trace.SpanResync); s.TotalMs != 4 {
		t.Fatalf("conflict resync stat: %+v", s)
	}
	// Phases render in EditPhases order.
	if b.Conflict[len(b.Conflict)-1].Phase != trace.SpanResync {
		t.Fatalf("phase order: %+v", b.Conflict)
	}
	if b.Empty() {
		t.Fatal("breakdown with ops reported Empty")
	}
	if !(PhaseBreakdown{}).Empty() {
		t.Fatal("zero breakdown not Empty")
	}
}

// TestRunLoadTraced exercises the traced load path end to end: real spans
// from client, mediator, and server aggregate into a non-empty breakdown.
func TestRunLoadTraced(t *testing.T) {
	rep, err := RunLoad(LoadConfig{
		Sessions:      2,
		Docs:          2,
		Duration:      300 * time.Millisecond,
		DocChars:      2_000,
		ReloadEvery:   4,
		Seed:          7,
		Trace:         true,
		WatchInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases == nil || rep.Phases.Empty() {
		t.Fatalf("traced run produced no phase breakdown: %+v", rep.Phases)
	}
	if rep.Phases.Ops == 0 || len(rep.Phases.Clean) == 0 {
		t.Fatalf("phase breakdown missing clean ops: %+v", rep.Phases)
	}
	var phases []string
	for _, s := range rep.Phases.Clean {
		phases = append(phases, s.Phase)
		if s.Count <= 0 || s.P50Ms < 0 || s.P95Ms < s.P50Ms {
			t.Fatalf("implausible stat: %+v", s)
		}
	}
	want := map[string]bool{trace.SpanSave: false, trace.SpanEncrypt: false, trace.SpanTransform: false}
	for _, p := range phases {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("clean breakdown missing phase %q (got %v)", p, phases)
		}
	}
	if rep.Watch == nil || rep.Watch.Samples < 2 || rep.Watch.MaxGoroutines <= 0 {
		t.Fatalf("watchdog stats: %+v", rep.Watch)
	}
	if trace.Default.Enabled() {
		t.Fatal("RunLoad leaked the enabled tracer state")
	}
}

// TestRunChaosTraced checks that a traced chaos run attributes retry time.
func TestRunChaosTraced(t *testing.T) {
	rep, err := RunChaos(ChaosConfig{
		Sessions:      2,
		OpsPerSession: 12,
		DocChars:      2_000,
		Seed:          11,
		Trace:         true,
		Fault: netsim.FaultProfile{
			Seed:         11,
			Error5xxRate: 0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases == nil || rep.Phases.Empty() {
		t.Fatalf("traced chaos run produced no phase breakdown: %+v", rep.Phases)
	}
	found := false
	for _, s := range append(append([]PhaseStat(nil), rep.Phases.Clean...), rep.Phases.Conflict...) {
		if s.Phase == trace.SpanRetry && s.Count > 0 {
			found = true
		}
	}
	if !found && rep.Retries > 0 {
		t.Fatalf("mediator retried %d times but no retry phase in %+v", rep.Retries, rep.Phases)
	}
}
