package bench

import (
	"fmt"
	"strings"
	"time"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/workload"
)

// Config parameterizes the experiments.
type Config struct {
	// Trials scales every experiment's repetition count. The default (0)
	// selects the paper's counts (e.g. 1000 micro-benchmark tests); set a
	// smaller value for quick runs.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

func editorFor(scheme core.Scheme, blockChars int, seed uint64) (*core.Editor, error) {
	return core.NewEditor("bench-password", core.Options{
		Scheme:     scheme,
		BlockChars: blockChars,
		Nonces:     crypt.NewSeededNonceSource(seed),
	})
}

// Fig4Row is one operation's cost in the RPC micro-benchmark.
type Fig4Row struct {
	Op            string  // "encryption (D)", "decryption (D')", "incremental encryption"
	PerCharMicros float64 // mean wall-clock microseconds per character processed
	ThroughputKBs float64 // plaintext kilobytes per second
}

// Fig4Result reproduces Figure 4: micro-benchmark results for RPC mode.
type Fig4Result struct {
	Scheme core.Scheme
	Trials int
	Rows   []Fig4Row
}

// Fig4 runs the §VII-B micro-benchmark: (D, D′) pairs with lengths uniform
// in [100, 10000], measuring whole-document encryption of D, decryption of
// D′, and the incremental encryption of the derived delta. The paper's
// figure reports RPC mode; pass the scheme to reproduce either mode.
func Fig4(cfg Config, scheme core.Scheme) (Fig4Result, error) {
	trials := cfg.trials(1000)
	gen := workload.NewGen(cfg.Seed + 4)
	ed, err := editorFor(scheme, 1, uint64(cfg.Seed)+40)
	if err != nil {
		return Fig4Result{}, err
	}

	var encTime, decTime, incTime time.Duration
	var encChars, decChars, incChars int
	for i := 0; i < trials; i++ {
		d, dPrime, dl := gen.EditedPair(100, 10000, 6)

		start := time.Now()
		if _, err := ed.Encrypt(d); err != nil {
			return Fig4Result{}, err
		}
		encTime += time.Since(start)
		encChars += len(d)

		start = time.Now()
		if _, err := ed.TransformDeltaOps(dl); err != nil {
			return Fig4Result{}, err
		}
		incTime += time.Since(start)
		incChars += dl.InsertLen() + dl.DeleteLen()

		transport := ed.Transport()
		start = time.Now()
		if err := ed.Reload(transport); err != nil {
			return Fig4Result{}, err
		}
		decTime += time.Since(start)
		decChars += len(dPrime)
	}

	row := func(op string, t time.Duration, chars int) Fig4Row {
		if chars == 0 {
			return Fig4Row{Op: op}
		}
		perChar := float64(t.Microseconds()) / float64(chars)
		kbs := float64(chars) / 1024 / t.Seconds()
		return Fig4Row{Op: op, PerCharMicros: perChar, ThroughputKBs: kbs}
	}
	return Fig4Result{
		Scheme: scheme,
		Trials: trials,
		Rows: []Fig4Row{
			row("encryption (D)", encTime, encChars),
			row("decryption (D')", decTime, decChars),
			row("incremental encryption", incTime, incChars),
		},
	}, nil
}

// String renders the result in the shape of the paper's Figure 4.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: micro-benchmark, %s mode (averages from %d tests)\n", r.Scheme, r.Trials)
	fmt.Fprintf(&b, "%-26s %16s %16s\n", "operation", "per char (us)", "throughput kB/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %16.4f %16.1f\n", row.Op, row.PerCharMicros, row.ThroughputKBs)
	}
	return b.String()
}

// Fig6Row is one block size's cost in the multi-character micro-benchmark.
type Fig6Row struct {
	BlockChars   int
	EncPerCharUs float64 // (a) whole-document encryption, per char
	IncPerEditUs float64 // (b) incremental updates, per edit operation
	IncPerCharUs float64 // (b) incremental updates, per edited char
}

// Fig6Result reproduces Figure 6: the impact of block size on (a)
// encrypting whole documents and (b) incremental updates. rECB mode,
// document length fixed at 10000 characters, as in §VII-D.
type Fig6Result struct {
	Trials int
	Rows   []Fig6Row
}

// Fig6 runs the block-size sweep.
func Fig6(cfg Config) (Fig6Result, error) {
	trials := cfg.trials(100)
	res := Fig6Result{Trials: trials}
	for b := 1; b <= 8; b++ {
		gen := workload.NewGen(cfg.Seed + 60 + int64(b))
		ed, err := editorFor(core.ConfidentialityOnly, b, uint64(cfg.Seed)+600+uint64(b))
		if err != nil {
			return Fig6Result{}, err
		}
		var encTime, incTime time.Duration
		var encChars, incChars, incOps int
		doc := gen.Document(10000)
		for i := 0; i < trials; i++ {
			start := time.Now()
			if _, err := ed.Encrypt(doc); err != nil {
				return Fig6Result{}, err
			}
			encTime += time.Since(start)
			encChars += len(doc)

			// A burst of random edits applied incrementally.
			script := gen.Script(ed.Plaintext(), workload.InsertsAndDeletes, 10)
			for _, sp := range script {
				start = time.Now()
				if _, err := ed.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
					return Fig6Result{}, err
				}
				incTime += time.Since(start)
				incChars += sp.Del + len(sp.Ins)
				incOps++
			}
		}
		row := Fig6Row{BlockChars: b}
		row.EncPerCharUs = float64(encTime.Microseconds()) / float64(encChars)
		row.IncPerEditUs = float64(incTime.Microseconds()) / float64(incOps)
		if incChars > 0 {
			row.IncPerCharUs = float64(incTime.Microseconds()) / float64(incChars)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the result in the shape of the paper's Figure 6.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: multi-character incremental encryption, rECB, |D| = 10000 (%d trials)\n", r.Trials)
	fmt.Fprintf(&b, "%-10s %20s %20s %20s\n", "block size", "(a) enc us/char", "(b) inc us/edit", "(b) inc us/char")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10d %20.4f %20.2f %20.3f\n", row.BlockChars, row.EncPerCharUs, row.IncPerEditUs, row.IncPerCharUs)
	}
	return b.String()
}
