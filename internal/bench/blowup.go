package bench

import (
	"fmt"
	"strings"

	"privedit/internal/core"
	"privedit/internal/workload"
)

// Fig7Row is one block size's ciphertext blowup.
type Fig7Row struct {
	BlockChars int
	Blowup     float64 // transport chars per plaintext char, after editing
	Reduction  float64 // fraction saved relative to block size 1
	AvgFill    float64 // mean characters per block (fragmentation indicator)
}

// Fig7Result reproduces Figure 7: ciphertext blowup reduction as the block
// size grows. The paper reports 21.00× at b=1 falling to 3.75× at b=8 (an
// 82% reduction), with "the actual reduction ... less than the ideal
// reduction due to fragmentation." The measurement applies an edit
// sequence before measuring so fragmentation is present, exactly as in a
// real editing session.
type Fig7Result struct {
	Scheme core.Scheme
	DocLen int
	Edits  int
	Rows   []Fig7Row
}

// Fig7 measures the blowup sweep for the given scheme.
func Fig7(cfg Config, scheme core.Scheme) (Fig7Result, error) {
	docLen := 10000
	edits := cfg.trials(200)
	res := Fig7Result{Scheme: scheme, DocLen: docLen, Edits: edits}
	var base float64
	for b := 1; b <= 8; b++ {
		gen := workload.NewGen(cfg.Seed + 70 + int64(b))
		ed, err := editorFor(scheme, b, uint64(cfg.Seed)+700+uint64(b))
		if err != nil {
			return Fig7Result{}, err
		}
		if _, err := ed.Encrypt(gen.Document(docLen)); err != nil {
			return Fig7Result{}, err
		}
		// Fragment the document with random edits.
		for i := 0; i < edits; i++ {
			sp := gen.Edit(ed.Plaintext(), workload.InsertsAndDeletes)
			if sp.Del == 0 && sp.Ins == "" {
				continue
			}
			if _, err := ed.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
				return Fig7Result{}, err
			}
		}
		st := ed.Stats()
		row := Fig7Row{BlockChars: b, Blowup: st.Blowup, AvgFill: st.AvgFill}
		if b == 1 {
			base = st.Blowup
		}
		if base > 0 {
			row.Reduction = 1 - st.Blowup/base
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the result in the shape of the paper's Figure 7.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: ciphertext blowup vs block size, %s, |D| = %d after %d edits\n",
		r.Scheme, r.DocLen, r.Edits)
	fmt.Fprintf(&b, "%-10s", "block size")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %8d", row.BlockChars)
	}
	fmt.Fprintf(&b, "\n%-10s", "blowup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %8.2f", row.Blowup)
	}
	fmt.Fprintf(&b, "\n%-10s", "reduction")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %7.0f%%", row.Reduction*100)
	}
	fmt.Fprintf(&b, "\n%-10s", "avg fill")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %8.2f", row.AvgFill)
	}
	b.WriteByte('\n')
	return b.String()
}
