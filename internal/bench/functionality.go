package bench

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"

	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
)

// FuncRow is one feature probe: how it behaves without and with the
// extension installed.
type FuncRow struct {
	Feature   string
	Plain     string
	Encrypted string
}

// FuncResult reproduces the functionality findings of §VII-A.
type FuncResult struct {
	Rows []FuncRow
}

// Functionality probes every feature against a plain client and a mediated
// client, reproducing §VII-A: saves, loads, and passive-reader refresh
// keep working; translation, spell checking, drawing, and export break
// (blocked); simultaneous editing conflicts.
func Functionality(cfg Config) (FuncResult, error) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	opts := core.Options{
		Scheme:     core.ConfidentialityIntegrity,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(uint64(cfg.Seed) + 900),
	}
	ext := mediator.New(ts.Client().Transport, mediator.StaticPassword("bench-pw", opts))

	plain := gdocs.NewClient(ts.Client(), ts.URL, "plain-doc")
	enc := gdocs.NewClient(ext.Client(), ts.URL, "enc-doc")

	status := func(err error) string {
		switch {
		case err == nil:
			return "works"
		case errors.Is(err, gdocs.ErrBlocked):
			return "blocked"
		case errors.Is(err, gdocs.ErrConflict):
			return "conflicts"
		default:
			return "fails: " + err.Error()
		}
	}

	var rows []FuncRow
	probe := func(feature string, plainErr, encErr error) {
		rows = append(rows, FuncRow{Feature: feature, Plain: status(plainErr), Encrypted: status(encErr)})
	}

	// Create + full save.
	pe := plain.Create()
	ee := enc.Create()
	probe("create document", pe, ee)
	plain.SetText("the plain document body for functionality probes")
	enc.SetText("the encrypted document body for functionality probes")
	probe("save (full contents)", plain.Save(), enc.Save())

	// Incremental save.
	_ = plain.Insert(4, "edited ")
	_ = enc.Insert(4, "edited ")
	probe("save (incremental delta)", plain.Save(), enc.Save())

	// Load in a fresh session.
	plain2 := gdocs.NewClient(ts.Client(), ts.URL, "plain-doc")
	ext2 := mediator.New(ts.Client().Transport, mediator.StaticPassword("bench-pw", opts))
	enc2 := gdocs.NewClient(ext2.Client(), ts.URL, "enc-doc")
	pe = plain2.Load()
	ee = enc2.Load()
	if ee == nil && enc2.Text() != enc.Text() {
		ee = fmt.Errorf("decrypted text mismatch")
	}
	probe("load document", pe, ee)

	// Passive reader refresh.
	probe("passive reader refresh", plain2.Refresh(), enc2.Refresh())

	// Server-side features.
	for _, f := range []struct{ name, path string }{
		{"translate", gdocs.PathTranslate},
		{"spell check", gdocs.PathSpell},
		{"draw pictures", gdocs.PathDrawing},
		{"export document", gdocs.PathExport},
	} {
		_, pe := plain.Feature(f.path)
		_, ee := enc.Feature(f.path)
		probe(f.name, pe, ee)
	}

	// Simultaneous editing: both arms conflict (the plain protocol also
	// uses optimistic concurrency), but the encrypted arm cannot recover
	// via contentFromServer since the extension blanks it.
	probeConflict := func(client *gdocs.Client, other *gdocs.Client) error {
		if err := other.Insert(0, "X"); err != nil {
			return err
		}
		if err := other.Save(); err != nil {
			return err
		}
		if err := client.Insert(0, "Y"); err != nil {
			return err
		}
		return client.Save()
	}
	pe = probeConflict(plain2, plain)
	ee = probeConflict(enc2, enc)
	probe("simultaneous editing", pe, ee)

	return FuncResult{Rows: rows}, nil
}

// String renders the functionality table.
func (r FuncResult) String() string {
	var b strings.Builder
	b.WriteString("Functionality (section VII-A): feature behavior without/with the extension\n")
	fmt.Fprintf(&b, "%-26s %-12s %-12s\n", "feature", "plain", "encrypted")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %-12s %-12s\n", row.Feature, row.Plain, row.Encrypted)
	}
	return b.String()
}
