// Chaos harness: the fault-storm counterpart of the load harness. Where
// RunLoad asks "how many encrypted sessions can the stack sustain",
// RunChaos asks "does the stack stay *correct* when the cloud misbehaves":
// it drives concurrent editing sessions through a mediating extension with
// the resilience stack enabled, over a seed-driven netsim.FaultTransport
// injecting drops, 5xx/429s, timeouts, and corruption — then verifies that
// every document's stored ciphertext still decrypts, and that a fresh
// mediated session sees exactly what an independent decrypt of the stored
// container yields.
//
// Determinism: sessions run a *fixed* number of operations (not a wall
// clock window), each on its own document, and every fault decision is a
// pure function of (seed, request shape, occurrence). The breaker runs
// with a zero cooldown — every open state probes on the next request — so
// no decision in the whole run depends on wall-clock time. Same seed →
// byte-identical fault counts, ops, and error totals, which the chaos
// tests pin.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/netsim"
	"privedit/internal/trace"
	"privedit/internal/workload"
)

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	// Sessions is the number of concurrent editing sessions. Each session
	// edits its own document (the determinism contract needs per-document
	// request sequences to be interleaving-independent).
	Sessions int
	// OpsPerSession is the fixed number of edit operations per session.
	OpsPerSession int
	// DocChars is the initial size of every document.
	DocChars int
	// Scheme and BlockChars select the encryption mode (defaults:
	// ConfidentialityIntegrity, DefaultBlockChars).
	Scheme     core.Scheme
	BlockChars int
	// Workers bounds the parallel crypto kernels (0 = GOMAXPROCS).
	Workers int
	// ReloadEvery makes every n-th operation a full reload. 0 disables.
	ReloadEvery int
	// Seed drives the workload and, unless Fault.Seed is set, the faults.
	Seed int64
	// Fault is the injected-fault profile. Zero rates mean a clean run.
	Fault netsim.FaultProfile
	// Resilience configures the mediator's retry/breaker stack. The zero
	// value gets fast test-friendly defaults with a zero breaker cooldown
	// (time-independent probing — see the package comment).
	Resilience mediator.Resilience
	// Trace enables request-scoped tracing for the storm phase and adds a
	// per-phase latency breakdown (including retry and resync time under
	// fault injection) to the report. Tracing never participates in the
	// determinism contract: DeterministicKey pins only fault/op counts.
	Trace bool
	// TraceSink, when non-nil and Trace is on, additionally receives every
	// completed trace.
	TraceSink func(trace.Trace)
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.OpsPerSession <= 0 {
		c.OpsPerSession = 40
	}
	if c.DocChars <= 0 {
		c.DocChars = 8_000
	}
	if c.Scheme == 0 {
		c.Scheme = core.ConfidentialityIntegrity
	}
	if c.BlockChars <= 0 {
		c.BlockChars = core.DefaultBlockChars
	}
	if c.Fault.Seed == 0 {
		c.Fault.Seed = c.Seed
	}
	if c.Resilience.Retry.MaxAttempts <= 0 {
		c.Resilience.Retry = mediator.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  10 * time.Millisecond,
			Seed:        c.Seed,
		}
	}
	if c.Resilience.Breaker.TripAfter <= 0 {
		// Cooldown 0 keeps the run time-independent: every request while
		// open is a half-open probe, so breaker decisions depend only on
		// the (deterministic) fault sequence.
		c.Resilience.Breaker = mediator.BreakerPolicy{TripAfter: 3, Cooldown: 0, MaxCooldown: time.Second}
	}
	return c
}

// ChaosReport is the outcome of one chaos run, serializable as the
// BENCH_chaos.json artifact. For a deterministic profile every field
// except DurationS is identical across runs with the same seed.
type ChaosReport struct {
	Sessions      int     `json:"sessions"`
	OpsPerSession int     `json:"ops_per_session"`
	DocChars      int     `json:"doc_chars"`
	Scheme        string  `json:"scheme"`
	BlockChars    int     `json:"block_chars"`
	Seed          int64   `json:"seed"`
	DurationS     float64 `json:"duration_s"`

	Ops      int64 `json:"ops"`
	OpErrors int64 `json:"op_errors"`
	Reloads  int64 `json:"reloads"`

	Faults netsim.FaultStats `json:"faults"`

	Retries       int `json:"mediator_retries"`
	RetryGiveups  int `json:"mediator_retry_giveups"`
	BreakerTrips  int `json:"mediator_breaker_trips"`
	DegradedSaves int `json:"mediator_degraded_saves"`
	DegradedLoads int `json:"mediator_degraded_loads"`
	Drains        int `json:"mediator_drains"`

	ConvergedDocs int `json:"converged_docs"`
	DivergedDocs  int `json:"diverged_docs"`

	// Phases is the per-phase latency breakdown aggregated from spans,
	// present when the run traced (ChaosConfig.Trace). Excluded from
	// DeterministicKey: durations vary run to run even when counts don't.
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

// DeterministicKey returns the subset of the report that the determinism
// contract pins: fault counts plus op/error totals, serialized as JSON.
// Two runs with the same config must produce byte-identical keys.
func (r ChaosReport) DeterministicKey() ([]byte, error) {
	key := struct {
		Faults   netsim.FaultStats `json:"faults"`
		Ops      int64             `json:"ops"`
		OpErrors int64             `json:"op_errors"`
	}{r.Faults, r.Ops, r.OpErrors}
	return json.MarshalIndent(key, "", "  ")
}

// RunChaos stands up a gdocs server behind a fault-injecting transport,
// drives cfg.Sessions resilient mediated sessions through the storm, then
// lifts the faults and verifies convergence document by document.
func RunChaos(cfg ChaosConfig) (ChaosReport, error) {
	cfg = cfg.withDefaults()

	server := gdocs.NewServer()
	var handler http.Handler = server
	if cfg.Trace {
		handler = trace.Middleware(server)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	var col *trace.Collector
	if cfg.Trace {
		col = &trace.Collector{}
		defer trace.Default.AddSink(col.Collect)()
		if cfg.TraceSink != nil {
			defer trace.Default.AddSink(cfg.TraceSink)()
		}
		prevEnabled := trace.Default.Enabled()
		trace.Default.SetEnabled(true)
		defer trace.Default.SetEnabled(prevEnabled)
	}

	faults := netsim.NewFaultTransport(ts.Client().Transport, cfg.Fault)
	faults.SetEnabled(false) // clean network while seeding

	opts := core.Options{Scheme: cfg.Scheme, BlockChars: cfg.BlockChars, Workers: cfg.Workers}
	ext := mediator.New(faults, mediator.StaticPassword("chaos-pw", opts),
		mediator.WithResilience(cfg.Resilience))
	httpc := ext.Client()

	// Seed every document over the clean network.
	gen := workload.NewGen(cfg.Seed)
	for d := 0; d < cfg.Sessions; d++ {
		c := gdocs.NewClient(httpc, ts.URL, chaosDocID(d))
		if err := c.Create(); err != nil {
			return ChaosReport{}, fmt.Errorf("seed create doc %d: %w", d, err)
		}
		c.SetText(gen.Document(cfg.DocChars))
		if err := c.Save(); err != nil {
			return ChaosReport{}, fmt.Errorf("seed save doc %d: %w", d, err)
		}
	}

	// The storm.
	faults.SetEnabled(true)
	var (
		ops, opErrors, reloads atomic.Int64
		wg                     sync.WaitGroup
	)
	start := time.Now()
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			g := workload.NewGen(cfg.Seed + int64(s) + 1)
			c := gdocs.NewClient(httpc, ts.URL, chaosDocID(s))
			if err := c.Load(); err != nil {
				// Even the first load can be eaten by the storm; count it
				// and keep going — later ops reload.
				opErrors.Add(1)
			}
			for op := 1; op <= cfg.OpsPerSession; op++ {
				reload := cfg.ReloadEvery > 0 && op%cfg.ReloadEvery == 0
				var osp *trace.Span
				if cfg.Trace {
					var octx context.Context
					octx, osp = trace.Default.Root(context.Background(), trace.SpanEditOp)
					osp.Annotate("doc", chaosDocID(s))
					c.WithContext(octx)
				}
				var err error
				if reload {
					err = c.Load()
				} else {
					sp := g.Edit(c.Text(), workload.InsertsAndDeletes)
					if err = c.Replace(sp.Pos, sp.Del, sp.Ins); err == nil {
						err = c.Sync()
					}
				}
				osp.End()
				if err != nil {
					// Failed ops are the point of the exercise: reload (which
					// may itself be served degraded) and continue editing.
					opErrors.Add(1)
					c.WithContext(context.Background())
					_ = c.Load()
					continue
				}
				ops.Add(1)
				if reload {
					reloads.Add(1)
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	faultStats := faults.Stats()

	// Calm after the storm: drop the faults and let every session's queued
	// degraded state drain, then verify convergence from three angles —
	// a settled client, a completely fresh mediated session, and an
	// independent decrypt of the container the server actually stores.
	faults.SetEnabled(false)
	converged, diverged := 0, 0
	for s := 0; s < cfg.Sessions; s++ {
		docID := chaosDocID(s)
		settle := gdocs.NewClient(httpc, ts.URL, docID)
		if err := settle.Load(); err != nil {
			diverged++
			continue
		}
		if err := settle.Sync(); err != nil {
			diverged++
			continue
		}
		stored, _, err := server.Content(context.Background(), docID)
		if err != nil {
			diverged++
			continue
		}
		plain, err := core.DecryptWith("chaos-pw", stored, core.Options{})
		if err != nil {
			diverged++
			continue
		}
		fresh := mediator.New(ts.Client().Transport, mediator.StaticPassword("chaos-pw", core.Options{}))
		fc := gdocs.NewClient(fresh.Client(), ts.URL, docID)
		if err := fc.Load(); err != nil || fc.Text() != plain {
			diverged++
			continue
		}
		converged++
	}

	stats := ext.Stats()
	report := ChaosReport{
		Sessions:      cfg.Sessions,
		OpsPerSession: cfg.OpsPerSession,
		DocChars:      cfg.DocChars,
		Scheme:        cfg.Scheme.String(),
		BlockChars:    cfg.BlockChars,
		Seed:          cfg.Seed,
		DurationS:     elapsed.Seconds(),

		Ops:      ops.Load(),
		OpErrors: opErrors.Load(),
		Reloads:  reloads.Load(),

		Faults: faultStats,

		Retries:       stats.Retries,
		RetryGiveups:  stats.RetryGiveups,
		BreakerTrips:  stats.BreakerTrips,
		DegradedSaves: stats.DegradedSaves,
		DegradedLoads: stats.DegradedLoads,
		Drains:        stats.Drains,

		ConvergedDocs: converged,
		DivergedDocs:  diverged,
	}
	if col != nil {
		pb := AggregatePhases(drainTraces(col))
		report.Phases = &pb
	}
	return report, nil
}

func chaosDocID(s int) string { return fmt.Sprintf("chaos-doc-%d", s) }

// ChaosArtifact is the BENCH_chaos.json document.
type ChaosArtifact struct {
	Title string              `json:"title"`
	Fault netsim.FaultProfile `json:"fault_profile"`
	Chaos ChaosReport         `json:"chaos"`
}

// MarshalIndent renders the artifact for the committed JSON file.
func (a ChaosArtifact) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

var _ http.RoundTripper = (*netsim.FaultTransport)(nil)
