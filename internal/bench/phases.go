// Phase attribution: turning the flight of spans a harness run collects
// into a per-phase latency breakdown. Where the load report's P50/P95
// answer "how long did an operation take", the breakdown answers "where
// did that time go" — load vs decrypt vs transform vs encrypt vs save vs
// retry vs resync — split by whether the operation hit a version conflict.
package bench

import (
	"sort"

	"privedit/internal/trace"
)

// PhaseStat summarizes one edit phase across the operations that ran it.
// Quantiles are over the per-operation totals (an operation that retried
// three times contributes the sum of its three retry spans once), by the
// nearest-rank method of Sample.Percentile.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   int     `json:"count"` // operations that ran this phase
	TotalMs float64 `json:"total_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
}

// PhaseBreakdown splits the per-phase stats by operation outcome:
// operations whose trace carries a "conflict" annotation (a 409 anywhere
// along the way) versus clean ones. The load and chaos artifacts embed it.
type PhaseBreakdown struct {
	Ops         int         `json:"ops"` // root traces aggregated
	CleanOps    int         `json:"clean_ops"`
	ConflictOps int         `json:"conflict_ops"`
	Clean       []PhaseStat `json:"clean,omitempty"`
	Conflict    []PhaseStat `json:"conflict,omitempty"`
}

// Empty reports whether the breakdown aggregated no traces at all.
func (b PhaseBreakdown) Empty() bool { return b.Ops == 0 }

// AggregatePhases reduces collected traces to a PhaseBreakdown. Only
// operation roots participate — client edit operations (trace.SpanEditOp)
// and the pipelined writer's drain cycles (trace.SpanWriterDrain), which
// carry the encrypt/transform/save work that moved off the client's
// critical path; middleware-rooted or watchdog traces in the same
// collector are skipped. Per operation, the durations of every span named
// after an edit phase (trace.EditPhases) are summed by phase; an operation
// with no span of a given phase simply doesn't contribute to that phase's
// sample.
func AggregatePhases(traces []trace.Trace) PhaseBreakdown {
	type acc struct {
		samples map[string]*Sample
		ops     int
	}
	newAcc := func() *acc { return &acc{samples: make(map[string]*Sample)} }
	clean, conflict := newAcc(), newAcc()

	var b PhaseBreakdown
	for _, tr := range traces {
		if tr.Root != trace.SpanEditOp && tr.Root != trace.SpanWriterDrain {
			continue
		}
		b.Ops++
		a := clean
		if tr.HasAnnotation("conflict") {
			a = conflict
			b.ConflictOps++
		} else {
			b.CleanOps++
		}
		a.ops++
		perPhase := make(map[string]float64)
		for i := range tr.Spans {
			name := tr.Spans[i].Name
			if isEditPhase(name) {
				perPhase[name] += float64(tr.Spans[i].DurationNs) / 1e6
			}
		}
		for phase, ms := range perPhase {
			s := a.samples[phase]
			if s == nil {
				s = &Sample{}
				a.samples[phase] = s
			}
			s.Add(ms)
		}
	}
	b.Clean = phaseStats(clean.samples)
	b.Conflict = phaseStats(conflict.samples)
	return b
}

func isEditPhase(name string) bool {
	for _, p := range trace.EditPhases {
		if name == p {
			return true
		}
	}
	return false
}

// phaseStats renders the accumulated samples in EditPhases order, then any
// unexpected extras alphabetically (future-proofing; today the filter
// admits only EditPhases names).
func phaseStats(samples map[string]*Sample) []PhaseStat {
	out := make([]PhaseStat, 0, len(samples))
	emit := func(phase string) {
		s, ok := samples[phase]
		if !ok {
			return
		}
		total := 0.0
		for _, v := range s.values {
			total += v
		}
		out = append(out, PhaseStat{
			Phase:   phase,
			Count:   s.N(),
			TotalMs: total,
			P50Ms:   s.Percentile(0.50),
			P95Ms:   s.Percentile(0.95),
		})
		delete(samples, phase)
	}
	for _, phase := range trace.EditPhases {
		emit(phase)
	}
	rest := make([]string, 0, len(samples))
	for phase := range samples {
		rest = append(rest, phase)
	}
	sort.Strings(rest)
	for _, phase := range rest {
		emit(phase)
	}
	return out
}
