// Package bench is the evaluation harness: one experiment per table or
// figure in §VII of the paper, each regenerating the corresponding rows
// from the simulated system. Experiments are deterministic given a seed.
//
// Where the paper measured a JavaScript prototype against the live 2011
// Google Documents service, this harness measures the Go implementation
// against the simulated service, combining measured client-side compute
// with a deterministic network model (internal/netsim). Absolute numbers
// therefore differ from the paper (Go AES is orders of magnitude faster
// than 2009 browser JavaScript); EXPERIMENTS.md records both and compares
// shapes.
package bench

import (
	"math"
	"sort"
)

// Sample accumulates observations and reports summary statistics.
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Percentile returns the q-th quantile (0 < q <= 1) of the sample by the
// nearest-rank method: the smallest observation v such that at least
// ceil(q*n) observations are <= v. Unlike a bucketed histogram estimate,
// the result is always an actual observation; P100 is the maximum and, for
// n = 1, every percentile is the lone observation. Returns 0 for an empty
// sample.
func (s *Sample) Percentile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.values)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
