package bench

import (
	"fmt"
	"strings"
	"time"

	"privedit/internal/core"
	"privedit/internal/workload"
)

// ScalingRow is one document size's per-edit incremental cost.
type ScalingRow struct {
	DocLen       int
	Blocks       int
	PerEditUs    float64
	CDeltaChars  float64
	TransportLen int
}

// ScalingResult is the asymptotic claim of §V-C made measurable: Find,
// Insert, and Delete on the IndexedSkipList are O(log n) in the number of
// blocks, so the per-edit cost of incremental encryption grows only
// logarithmically with document size while the ciphertext delta stays
// O(edit size).
type ScalingResult struct {
	Scheme core.Scheme
	Trials int
	Rows   []ScalingRow
}

// Scaling sweeps document sizes over two orders of magnitude.
func Scaling(cfg Config, scheme core.Scheme) (ScalingResult, error) {
	trials := cfg.trials(50)
	res := ScalingResult{Scheme: scheme, Trials: trials}
	for _, docLen := range []int{1000, 4000, 16000, 64000, 128000} {
		gen := workload.NewGen(cfg.Seed + int64(docLen)*7)
		ed, err := editorFor(scheme, 8, uint64(cfg.Seed)+uint64(docLen))
		if err != nil {
			return ScalingResult{}, err
		}
		if _, err := ed.Encrypt(gen.Document(docLen)); err != nil {
			return ScalingResult{}, err
		}
		var total time.Duration
		var cdChars int
		for i := 0; i < trials; i++ {
			sp := gen.Edit(ed.Plaintext(), workload.SentenceReplace)
			start := time.Now()
			cd, err := ed.Splice(sp.Pos, sp.Del, sp.Ins)
			if err != nil {
				return ScalingResult{}, err
			}
			total += time.Since(start)
			cdChars += cd.InsertLen()
		}
		res.Rows = append(res.Rows, ScalingRow{
			DocLen:       docLen,
			Blocks:       ed.Stats().Blocks,
			PerEditUs:    float64(total.Microseconds()) / float64(trials),
			CDeltaChars:  float64(cdChars) / float64(trials),
			TransportLen: ed.TransportLen(),
		})
	}
	return res, nil
}

// String renders the scaling table.
func (r ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: per-edit incremental cost vs document size (%s, b=8, %d edits/size)\n", r.Scheme, r.Trials)
	fmt.Fprintf(&b, "%-10s %10s %14s %16s %14s\n", "doc len", "blocks", "per-edit us", "cdelta chars", "transport")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10d %10d %14.1f %16.0f %14d\n",
			row.DocLen, row.Blocks, row.PerEditUs, row.CDeltaChars, row.TransportLen)
	}
	b.WriteString("A 128x larger document must not cost anywhere near 128x per edit:\n")
	b.WriteString("the growth that remains is the O(log n) index walk.\n")
	return b.String()
}
