// Load harness: drives many concurrent editing sessions through the
// mediating extension against the simulated service, exercising the
// sharded document store, the per-document mediator sessions, and the
// parallel Enc/Dec kernels all at once. This is the concurrency
// counterpart of the paper's single-session macro benchmarks (§VII-C):
// instead of asking "how slow is one encrypted editing session", it asks
// "how many encrypted editing sessions can one extension and one server
// sustain".
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"privedit/internal/blockdoc"
	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/netsim"
	"privedit/internal/obs"
	"privedit/internal/parallel"
	"privedit/internal/recb"
	"privedit/internal/rpcmode"
	"privedit/internal/trace"
	"privedit/internal/workload"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Sessions is the number of concurrent editing sessions.
	Sessions int
	// Docs is the number of distinct documents; sessions share documents
	// round-robin when Sessions > Docs, which provokes version conflicts.
	Docs int
	// Duration is how long the measured phase runs.
	Duration time.Duration
	// DocChars is the initial size of every document.
	DocChars int
	// Scheme and BlockChars select the encryption mode (defaults:
	// ConfidentialityIntegrity, DefaultBlockChars).
	Scheme     core.Scheme
	BlockChars int
	// Workers bounds the parallel crypto kernels (0 = GOMAXPROCS).
	Workers int
	// ReloadEvery makes every n-th operation a full document reload — a
	// whole-document decrypt through the mediator — instead of an
	// incremental delta save. 0 disables reloads.
	ReloadEvery int
	// NetScale enables the simulated Broadband2009 network, dividing its
	// delays by the given factor (e.g. 1000 for a fast smoke run). 0
	// disables network simulation entirely.
	NetScale int
	// Inflight enables the pipelined save path with the given in-flight
	// depth (mediator.WithPipeline). 0 keeps the legacy synchronous path.
	Inflight int
	// Seed makes the workload reproducible.
	Seed int64
	// Trace enables request-scoped tracing for the run: every operation
	// gets an edit_op root span, the server handler joins each trace via
	// trace.Middleware, and the report carries a per-phase latency
	// breakdown aggregated from the collected spans.
	Trace bool
	// TraceSink, when non-nil and Trace is on, additionally receives every
	// completed trace (e.g. a JSONL writer).
	TraceSink func(trace.Trace)
	// WatchInterval, when positive, runs the trace.Watch runtime watchdog
	// for the duration of the run and reports its stats.
	WatchInterval time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.Docs <= 0 {
		c.Docs = c.Sessions
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.DocChars <= 0 {
		c.DocChars = 20_000
	}
	if c.Scheme == 0 {
		c.Scheme = core.ConfidentialityIntegrity
	}
	if c.BlockChars <= 0 {
		c.BlockChars = core.DefaultBlockChars
	}
	return c
}

// LoadReport is the outcome of one load run, serializable as the
// BENCH_load.json artifact.
type LoadReport struct {
	Sessions   int     `json:"sessions"`
	Docs       int     `json:"docs"`
	DurationS  float64 `json:"duration_s"`
	DocChars   int     `json:"doc_chars"`
	Scheme     string  `json:"scheme"`
	BlockChars int     `json:"block_chars"`
	Workers    int     `json:"workers"`

	Ops        int64   `json:"ops"`
	Reloads    int64   `json:"reloads"`
	DeltaSaves int64   `json:"delta_saves"`
	Errors     int64   `json:"errors"`
	Conflicts  int64   `json:"version_conflicts"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`

	MediatorFullEncrypts   int `json:"mediator_full_encrypts"`
	MediatorDeltas         int `json:"mediator_deltas_transformed"`
	MediatorLoads          int `json:"mediator_loads_decrypted"`
	MediatorSessions       int `json:"mediator_sessions"`
	MediatorPlainBytesIn   int `json:"mediator_plain_bytes_in"`
	MediatorCipherBytesOut int `json:"mediator_cipher_bytes_out"`

	// Pipelined-save counters (all zero on the legacy synchronous path).
	Inflight        int `json:"inflight"`
	QueuedSaves     int `json:"queued_saves"`
	QueueCoalesced  int `json:"queue_coalesced"`
	OTMerges        int `json:"ot_merges"`
	ConflictResyncs int `json:"conflict_resyncs"`
	DroppedSaves    int `json:"dropped_saves"`

	// Phases is the per-phase latency breakdown aggregated from spans,
	// present when the run traced (LoadConfig.Trace).
	Phases *PhaseBreakdown `json:"phases,omitempty"`
	// Watch is the runtime watchdog's summary, present when
	// LoadConfig.WatchInterval was set.
	Watch *trace.WatchStats `json:"watch,omitempty"`
}

// RunLoad stands up a gdocs server plus one mediating extension and drives
// cfg.Sessions concurrent sessions against it for cfg.Duration. Latency
// quantiles come from an internal/obs histogram; version-conflict counts
// from the server's obs counter.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()

	server := gdocs.NewServer()
	var handler http.Handler = server
	if cfg.Trace {
		// The server joins each operation's trace from the wire header, so
		// the collected tree spans both sides of every HTTP exchange.
		handler = trace.Middleware(server)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	var col *trace.Collector
	if cfg.Trace {
		col = &trace.Collector{}
		defer trace.Default.AddSink(col.Collect)()
		if cfg.TraceSink != nil {
			defer trace.Default.AddSink(cfg.TraceSink)()
		}
		prevEnabled := trace.Default.Enabled()
		trace.Default.SetEnabled(true)
		defer trace.Default.SetEnabled(prevEnabled)
	}
	var stopWatch func() trace.WatchStats
	if cfg.WatchInterval > 0 {
		stopWatch = trace.Watch(cfg.WatchInterval)
	}

	var transport http.RoundTripper = ts.Client().Transport
	if cfg.NetScale > 0 {
		transport = &netsim.DelayTransport{
			Base:    transport,
			Profile: netsim.Broadband2009(),
			Scale:   cfg.NetScale,
		}
	}
	opts := core.Options{
		Scheme:     cfg.Scheme,
		BlockChars: cfg.BlockChars,
		Workers:    cfg.Workers,
	}
	var extOpts []mediator.Option
	if cfg.Inflight > 0 {
		extOpts = append(extOpts, mediator.WithPipeline(cfg.Inflight))
	}
	ext := mediator.New(transport, mediator.StaticPassword("load-pw", opts), extOpts...)
	httpc := ext.Client()

	// Latency percentiles come from the raw per-operation samples, not a
	// bucketed histogram: bucket interpolation can misreport tail
	// quantiles by the width of a bucket, and the committed artifact should
	// report observations, not estimates. Each session appends to its own
	// slice; the slices merge after the run. Conflicts come from the
	// server's obs counter in the default registry.
	latSamples := make([][]float64, cfg.Sessions)
	obs.Enable()
	conflictsBefore := obs.Default.Value("privedit_version_conflicts_total")

	// Seed every document serially before the clock starts.
	gen := workload.NewGen(cfg.Seed)
	docText := make([]string, cfg.Docs)
	for d := 0; d < cfg.Docs; d++ {
		docText[d] = gen.Document(cfg.DocChars)
		c := gdocs.NewClient(httpc, ts.URL, fmt.Sprintf("load-doc-%d", d))
		if err := c.Create(); err != nil {
			return LoadReport{}, fmt.Errorf("seed create doc %d: %w", d, err)
		}
		c.SetText(docText[d])
		if err := c.Save(); err != nil {
			return LoadReport{}, fmt.Errorf("seed save doc %d: %w", d, err)
		}
	}

	var (
		ops, reloads, deltaSaves, errs atomic.Int64
		wg                             sync.WaitGroup
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			docID := fmt.Sprintf("load-doc-%d", s%cfg.Docs)
			g := workload.NewGen(cfg.Seed + int64(s) + 1)
			c := gdocs.NewClient(httpc, ts.URL, docID)
			if err := c.Load(); err != nil {
				errs.Add(1)
				return
			}
			for op := 1; time.Now().Before(deadline); op++ {
				reload := cfg.ReloadEvery > 0 && op%cfg.ReloadEvery == 0
				var osp *trace.Span
				if cfg.Trace {
					var octx context.Context
					octx, osp = trace.Default.Root(context.Background(), trace.SpanEditOp)
					osp.Annotate("doc", docID)
					c.WithContext(octx)
				}
				t0 := time.Now()
				var err error
				if reload {
					// Fresh load: the mediator decrypts the whole document
					// (the parallel Dec kernel for large docs).
					err = c.Load()
				} else {
					sp := g.Edit(c.Text(), workload.InsertsAndDeletes)
					if err = c.Replace(sp.Pos, sp.Del, sp.Ins); err == nil {
						err = c.Sync()
					}
				}
				osp.End()
				latSamples[s] = append(latSamples[s], time.Since(t0).Seconds())
				if err != nil {
					// Conflict storms and transform rejections on shared
					// documents are expected; resynchronize and go on.
					errs.Add(1)
					c.WithContext(context.Background()) // recovery load: outside the ended op trace
					if lerr := c.Load(); lerr != nil {
						return
					}
					continue
				}
				ops.Add(1)
				if reload {
					reloads.Add(1)
				} else {
					deltaSaves.Add(1)
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Pipelined mode: drain every queue before reading counters, so the
	// report reflects acknowledged saves, not in-flight ones.
	if cfg.Inflight > 0 {
		flushCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		for d := 0; d < cfg.Docs; d++ {
			if err := ext.Session(fmt.Sprintf("load-doc-%d", d)).Flush(flushCtx); err != nil {
				errs.Add(1)
			}
		}
		cancel()
	}

	var lat Sample
	for _, sessionLat := range latSamples {
		for _, v := range sessionLat {
			lat.Add(v)
		}
	}

	stats := ext.Stats()
	conflictsAfter := obs.Default.Value("privedit_version_conflicts_total")
	report := LoadReport{
		Sessions:   cfg.Sessions,
		Docs:       cfg.Docs,
		DurationS:  elapsed.Seconds(),
		DocChars:   cfg.DocChars,
		Scheme:     cfg.Scheme.String(),
		BlockChars: cfg.BlockChars,
		Workers:    parallel.Workers(cfg.Workers),

		Ops:        ops.Load(),
		Reloads:    reloads.Load(),
		DeltaSaves: deltaSaves.Load(),
		Errors:     errs.Load(),
		Conflicts:  int64(conflictsAfter - conflictsBefore),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
		P50Ms:      lat.Percentile(0.50) * 1000,
		P95Ms:      lat.Percentile(0.95) * 1000,
		P99Ms:      lat.Percentile(0.99) * 1000,

		MediatorFullEncrypts:   stats.FullEncrypts,
		MediatorDeltas:         stats.DeltasTransformed,
		MediatorLoads:          stats.LoadsDecrypted,
		MediatorSessions:       ext.SessionCount(),
		MediatorPlainBytesIn:   stats.PlainBytesIn,
		MediatorCipherBytesOut: stats.CipherBytesOut,

		Inflight:        cfg.Inflight,
		QueuedSaves:     stats.QueuedSaves,
		QueueCoalesced:  stats.QueueCoalesced,
		OTMerges:        stats.OTMerges,
		ConflictResyncs: stats.ConflictResyncs,
		DroppedSaves:    stats.DroppedSaves,
	}
	if stopWatch != nil {
		ws := stopWatch()
		report.Watch = &ws
	}
	if col != nil {
		pb := AggregatePhases(drainTraces(col))
		report.Phases = &pb
	}
	return report, nil
}

// drainTraces waits for in-flight traces to finalize (a client root span
// can end a beat before the server half of its tree does) by polling the
// collector until its count is stable, then snapshots it.
func drainTraces(col *trace.Collector) []trace.Trace {
	deadline := time.Now().Add(2 * time.Second)
	prev := -1
	for time.Now().Before(deadline) {
		n := col.Len()
		if n == prev {
			break
		}
		prev = n
		time.Sleep(10 * time.Millisecond)
	}
	return col.Snapshot()
}

// EncRow compares the serial and parallel whole-document encrypt kernel at
// one document size.
type EncRow struct {
	Chars        int     `json:"chars"`
	Blocks       int     `json:"blocks"`
	UsedParallel bool    `json:"used_parallel"`
	SerialMs     float64 `json:"serial_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
}

// EncKernelBench times the whole-document Enc kernel — codec.EncryptAll,
// the chunks-to-ciphertext step the artifact key names — with the reference
// serial per-block kernel (Workers=1) and with the batched arena kernel
// (Workers=workers) at each size, for the given scheme. Document assembly
// (skiplist build, transport encode) is deliberately outside the timed
// region: those costs are shared by both kernels and measured elsewhere
// (the load phases and the hotpath experiment). The batched codec only
// fans out to multiple goroutines above the crossover threshold — the
// row's UsedParallel reports whether it actually did.
func EncKernelBench(scheme core.Scheme, blockChars, workers int, sizes []int, seed int64) ([]EncRow, error) {
	runtime.GC() // level the field when a load phase ran in this process
	gen := workload.NewGen(seed)
	rows := make([]EncRow, 0, len(sizes))
	for _, chars := range sizes {
		chunks := chunkDoc([]byte(gen.Document(chars)), blockChars)
		trials := 20
		if chars <= 16_384 {
			trials = 30
		}
		serial, par, err := timeEncKernel(scheme, workers, chunks, trials)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EncRow{
			Chars:        chars,
			Blocks:       len(chunks),
			UsedParallel: parallel.Plan(len(chunks), workers, parallel.MinParallelBlocks) > 1,
			SerialMs:     serial.Seconds() * 1000,
			ParallelMs:   par.Seconds() * 1000,
			Speedup:      serial.Seconds() / par.Seconds(),
		})
	}
	return rows, nil
}

// chunkDoc splits a document into the blockChars-sized chunks the codec
// kernels consume (the last chunk may be short).
func chunkDoc(raw []byte, blockChars int) [][]byte {
	chunks := make([][]byte, 0, (len(raw)+blockChars-1)/blockChars)
	for len(raw) > blockChars {
		chunks = append(chunks, raw[:blockChars])
		raw = raw[blockChars:]
	}
	if len(raw) > 0 {
		chunks = append(chunks, raw)
	}
	return chunks
}

// kernelCodec is the slice of blockdoc.Codec the kernel bench drives.
type kernelCodec interface {
	blockdoc.Codec
	SetWorkers(int)
}

// newKernelCodec builds a codec in the production configuration (CSPRNG
// nonce source; the key only schedules AES, so timing is key-independent).
func newKernelCodec(scheme core.Scheme) (kernelCodec, error) {
	key := []byte("bench-kernel-key")
	if scheme == core.ConfidentialityOnly {
		return recb.New(key, crypt.CryptoNonceSource{})
	}
	return rpcmode.New(key, crypt.CryptoNonceSource{})
}

// timeEncKernel returns the fastest serial-kernel and batched-kernel
// EncryptAll over trials rounds. Trials interleave the two kernels so
// scheduler drift hits both equally, each trial runs from a freshly
// collected heap so GC phase cannot skew one side, and each row reports
// the best trial, which is robust against noisy neighbors.
func timeEncKernel(scheme core.Scheme, workers int, chunks [][]byte, trials int) (serial, par time.Duration, err error) {
	serialC, err := newKernelCodec(scheme)
	if err != nil {
		return 0, 0, err
	}
	serialC.SetWorkers(1)
	parC, err := newKernelCodec(scheme)
	if err != nil {
		return 0, 0, err
	}
	parC.SetWorkers(workers)
	one := func(c kernelCodec) (time.Duration, error) {
		// Collect before every timed call so each trial starts from the
		// same heap state: without this, whether a GC cycle lands inside
		// a given trial depends on allocation phase left over from prior
		// trials, and the per-size bests become bimodal run to run.
		runtime.GC()
		t0 := time.Now()
		if _, _, _, err := c.EncryptAll(chunks); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}
	for i := 0; i < trials; i++ {
		d, err := one(serialC)
		if err != nil {
			return 0, 0, err
		}
		if serial == 0 || d < serial {
			serial = d
		}
		if d, err = one(parC); err != nil {
			return 0, 0, err
		}
		if par == 0 || d < par {
			par = d
		}
	}
	return serial, par, nil
}

// LoadArtifact is the combined BENCH_load.json document.
type LoadArtifact struct {
	Title     string     `json:"title"`
	EncBench  []EncRow   `json:"enc_kernel_serial_vs_parallel"`
	Crossover int        `json:"crossover_blocks"`
	Load      LoadReport `json:"load"`
}

// MarshalIndent renders the artifact for the committed JSON file.
func (a LoadArtifact) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
