package bench

import "testing"

// TestHotpathEquivalence runs a small hot-path pass; Hotpath itself fails
// if any variant's plaintext diverges or the finger cache changes bytes.
func TestHotpathEquivalence(t *testing.T) {
	art, err := Hotpath(HotpathConfig{DocChars: 2_000, Ops: 150, BurstLen: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Rows) != 5 {
		t.Fatalf("expected 5 variants, got %d", len(art.Rows))
	}
	for _, r := range art.Rows {
		if r.Ops != 150 {
			t.Fatalf("%s: replayed %d ops, want 150", r.Variant, r.Ops)
		}
	}
	// Coalescing must shrink the cumulative ciphertext delta traffic: one
	// splice per burst instead of one per keystroke.
	if c, b := art.Rows[2].CipherBytes, art.Rows[0].CipherBytes; c >= b {
		t.Fatalf("coalescing did not reduce cipher delta bytes: %d vs %d", c, b)
	}
}
