// Store benchmarks: the persistence layer's cold-population throughput,
// the serving path's sustained rate when the document population dwarfs
// the resident cache, and crash-recovery time — the numbers behind
// BENCH_store.json. A separate storm/verify pair drives a *live* server
// over HTTP and checks, ack by ack, that nothing acknowledged before a
// kill -9 is lost after recovery (scripts/crash_recovery.sh).
package bench

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	//lint:ignore nonce-source seeded generator for a reproducible benchmark workload; never used for keys or nonces
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"privedit/internal/gdocs"
	"privedit/internal/obs"
	"privedit/internal/store"
)

// StoreConfig sizes the store benchmark. The ISSUE-scale run (1M cold
// docs, 10k-doc cache) is the same code at -store-docs 1000000; defaults
// keep a laptop run under a minute.
type StoreConfig struct {
	Docs       int     // cold population size
	DocChars   int     // content bytes per document
	CacheBytes int64   // serving-layer resident budget
	SustainOps int     // mixed operations in the sustained phase
	HotDocs    int     // hot working set the sustained phase favors
	WriteFrac  float64 // fraction of sustained ops that are saves
	Workers    int     // concurrent clients in the sustained phase
	Dir        string  // store directory ("" = a temp dir, removed after)
	Seed       int64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Docs <= 0 {
		c.Docs = 20_000
	}
	if c.DocChars <= 0 {
		c.DocChars = 1024
	}
	if c.CacheBytes <= 0 {
		// Roughly a 10%-resident cache at the default sizes.
		c.CacheBytes = int64(c.Docs/10) * int64(c.DocChars+512)
	}
	if c.SustainOps <= 0 {
		c.SustainOps = 5_000
	}
	if c.HotDocs <= 0 {
		c.HotDocs = c.Docs / 100
		if c.HotDocs < 16 {
			c.HotDocs = 16
		}
	}
	if c.WriteFrac <= 0 {
		c.WriteFrac = 0.25
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 2011
	}
	return c
}

// StoreReport is the measured result, serialized into BENCH_store.json.
type StoreReport struct {
	Docs       int   `json:"docs"`
	DocChars   int   `json:"doc_chars"`
	CacheBytes int64 `json:"cache_bytes"`
	HotDocs    int   `json:"hot_docs"`

	// Cold population: SyncNone bulk writes straight into the WALs,
	// durability restored by one Flush at the end.
	PopulateS         float64 `json:"populate_s"`
	PopulateOpsPerSec float64 `json:"populate_ops_per_sec"`

	// Sustained phase: mixed reads and durable saves through the serving
	// layer while the cache churns (population >> resident budget).
	SustainedOps       int64   `json:"sustained_ops"`
	SustainedOpsPerSec float64 `json:"sustained_ops_per_sec"`
	P50Ms              float64 `json:"p50_ms"`
	P95Ms              float64 `json:"p95_ms"`
	P99Ms              float64 `json:"p99_ms"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	// Recovery: reopening the store cold, replaying snapshot + WAL.
	RecoveryS       float64 `json:"recovery_s"`
	RecoveredDocs   int64   `json:"recovered_docs"`
	SnapshotRecords int64   `json:"snapshot_records"`
	WALRecords      int64   `json:"wal_records"`
	TornBytes       int64   `json:"torn_bytes"`
}

// StoreArtifact is the committed BENCH_store.json shape.
type StoreArtifact struct {
	Title string      `json:"title"`
	Store StoreReport `json:"store"`
}

// MarshalIndent renders the artifact for committing.
func (a StoreArtifact) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// storeContent builds one document's deterministic content; byte i of doc
// d differs across docs so a recovery mix-up cannot go unnoticed.
func storeContent(docID string, chars int) string {
	var b strings.Builder
	b.Grow(chars)
	b.WriteString(docID)
	b.WriteByte(' ')
	for b.Len() < chars {
		b.WriteByte('a' + byte((b.Len()*7+len(docID))%26))
	}
	return b.String()[:chars]
}

// RunStore executes the three phases — populate, sustain, recover — and
// reports all of them.
func RunStore(cfg StoreConfig) (StoreReport, error) {
	cfg = cfg.withDefaults()
	obs.Enable()
	rep := StoreReport{
		Docs:       cfg.Docs,
		DocChars:   cfg.DocChars,
		CacheBytes: cfg.CacheBytes,
		HotDocs:    cfg.HotDocs,
	}

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "privedit-store-bench-")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
	}

	// Phase 1: cold population, bulk-load mode.
	disk, err := store.Open(dir, store.Options{Sync: store.SyncNone})
	if err != nil {
		return rep, err
	}
	start := time.Now()
	for i := 0; i < cfg.Docs; i++ {
		id := fmt.Sprintf("doc-%07d", i)
		if err := disk.Put(id, storeContent(id, cfg.DocChars), 1); err != nil {
			return rep, fmt.Errorf("populate: %w", err)
		}
	}
	if err := disk.Flush(); err != nil {
		return rep, err
	}
	rep.PopulateS = time.Since(start).Seconds()
	rep.PopulateOpsPerSec = float64(cfg.Docs) / rep.PopulateS
	if err := disk.Close(); err != nil {
		return rep, err
	}

	// Phase 2: sustained mixed load through the serving layer, durable
	// saves, cache far smaller than the population.
	disk, err = store.Open(dir, store.Options{})
	if err != nil {
		return rep, err
	}
	server := gdocs.NewServer(gdocs.WithBackend(disk), gdocs.WithCacheBytes(cfg.CacheBytes))
	hitsBefore := obs.Default.Value("privedit_server_cache_hits_total")
	missesBefore := obs.Default.Value("privedit_server_cache_misses_total")
	evictionsBefore := obs.Default.Value("privedit_server_cache_evictions_total")

	latencies := make([][]float64, cfg.Workers)
	opsPer := cfg.SustainOps / cfg.Workers
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	start = time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			ctx := context.Background()
			samples := make([]float64, 0, opsPer)
			for i := 0; i < opsPer; i++ {
				// 80% of ops land on the hot set; the rest sweep the cold
				// population and keep the evictor honest.
				var doc int
				if rng.Float64() < 0.8 {
					doc = rng.Intn(cfg.HotDocs)
				} else {
					doc = rng.Intn(cfg.Docs)
				}
				id := fmt.Sprintf("doc-%07d", doc)
				opStart := time.Now()
				var err error
				if rng.Float64() < cfg.WriteFrac {
					_, err = server.SetContents(ctx, id, storeContent(id, cfg.DocChars), -1)
				} else {
					_, _, err = server.Content(ctx, id)
				}
				samples = append(samples, float64(time.Since(opStart).Microseconds())/1000)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sustain worker %d op %d (%s): %w", w, i, id, err)
					}
					errMu.Unlock()
					return
				}
			}
			latencies[w] = samples
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}
	elapsed := time.Since(start).Seconds()
	var lat Sample
	for _, s := range latencies {
		rep.SustainedOps += int64(len(s))
		for _, v := range s {
			lat.Add(v)
		}
	}
	rep.SustainedOpsPerSec = float64(rep.SustainedOps) / elapsed
	rep.P50Ms = lat.Percentile(0.50)
	rep.P95Ms = lat.Percentile(0.95)
	rep.P99Ms = lat.Percentile(0.99)
	rep.CacheHits = int64(obs.Default.Value("privedit_server_cache_hits_total") - hitsBefore)
	rep.CacheMisses = int64(obs.Default.Value("privedit_server_cache_misses_total") - missesBefore)
	rep.CacheEvictions = int64(obs.Default.Value("privedit_server_cache_evictions_total") - evictionsBefore)
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(total)
	}
	if err := disk.Close(); err != nil {
		return rep, err
	}

	// Phase 3: recovery from cold — the time a restarted server spends in
	// store.Open before it can serve (same replay work a kill -9 forces).
	start = time.Now()
	disk, err = store.Open(dir, store.Options{})
	if err != nil {
		return rep, fmt.Errorf("recovery: %w", err)
	}
	rep.RecoveryS = time.Since(start).Seconds()
	rec := disk.Recovery()
	rep.RecoveredDocs = rec.Docs
	rep.SnapshotRecords = rec.SnapshotRecords
	rep.WALRecords = rec.WALRecords
	rep.TornBytes = rec.TornBytes
	if rec.Docs != int64(cfg.Docs) {
		disk.Close()
		return rep, fmt.Errorf("recovery found %d docs, expected %d", rec.Docs, cfg.Docs)
	}
	return rep, disk.Close()
}

// SoakConfig sizes the nightly store soak: sustained eviction churn with
// goroutine- and heap-leak gates around it.
type SoakConfig struct {
	Duration   time.Duration // churn length
	Docs       int           // population (kept small; churn is the point)
	DocChars   int
	CacheBytes int64 // deliberately tiny so every op churns the LRU
	Workers    int
	Seed       int64
}

// SoakReport is what the nightly job asserts on.
type SoakReport struct {
	Ops            int64   `json:"ops"`
	DurationS      float64 `json:"duration_s"`
	Evictions      int64   `json:"evictions"`
	GoroutineDelta int     `json:"goroutine_delta"`
	HeapDeltaBytes int64   `json:"heap_delta_bytes"`
}

// RunStoreSoak churns a small cache hard for cfg.Duration and measures
// what leaked. Callers gate on GoroutineDelta and HeapDeltaBytes.
func RunStoreSoak(cfg SoakConfig) (SoakReport, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Docs <= 0 {
		cfg.Docs = 2_000
	}
	if cfg.DocChars <= 0 {
		cfg.DocChars = 2048
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = int64(cfg.Docs/20) * int64(cfg.DocChars)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2011
	}
	obs.Enable()
	dir, err := os.MkdirTemp("", "privedit-store-soak-")
	if err != nil {
		return SoakReport{}, err
	}
	defer os.RemoveAll(dir)
	disk, err := store.Open(dir, store.Options{})
	if err != nil {
		return SoakReport{}, err
	}
	server := gdocs.NewServer(gdocs.WithBackend(disk), gdocs.WithCacheBytes(cfg.CacheBytes))
	ctx := context.Background()
	for i := 0; i < cfg.Docs; i++ {
		id := fmt.Sprintf("soak-%05d", i)
		if err := server.Create(ctx, id); err != nil {
			return SoakReport{}, err
		}
	}

	goroutinesBefore, heapBefore := leakBaseline()
	evictionsBefore := obs.Default.Value("privedit_server_cache_evictions_total")
	deadline := time.Now().Add(cfg.Duration)
	var (
		wg       sync.WaitGroup
		ops      sync.Map // worker -> int64
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			var n int64
			for time.Now().Before(deadline) {
				id := fmt.Sprintf("soak-%05d", rng.Intn(cfg.Docs))
				var err error
				if rng.Intn(3) == 0 {
					_, err = server.SetContents(ctx, id, storeContent(id, cfg.DocChars), -1)
				} else {
					_, _, err = server.Content(ctx, id)
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				n++
			}
			ops.Store(w, n)
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return SoakReport{}, firstErr
	}
	rep := SoakReport{DurationS: cfg.Duration.Seconds()}
	ops.Range(func(_, v any) bool { rep.Ops += v.(int64); return true })
	rep.Evictions = int64(obs.Default.Value("privedit_server_cache_evictions_total") - evictionsBefore)
	goroutinesAfter, heapAfter := leakBaseline()
	rep.GoroutineDelta = goroutinesAfter - goroutinesBefore
	rep.HeapDeltaBytes = heapAfter - heapBefore
	return rep, disk.Close()
}

// leakBaseline settles the runtime (two GC cycles so finalizers run) and
// samples goroutine count and live heap for the soak's leak gates.
func leakBaseline() (goroutines int, heapBytes int64) {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtime.NumGoroutine(), int64(ms.HeapAlloc)
}

// StormConfig drives the HTTP write storm of scripts/crash_recovery.sh:
// every acked save is appended to AckLog as "docID version sha256(content)"
// before the next write, so a kill -9 mid-storm leaves a precise record of
// what the server acknowledged and must therefore still hold.
type StormConfig struct {
	Target   string // server base URL
	AckLog   string // append-only ack journal path
	Workers  int
	Docs     int // documents per worker
	DocChars int
	Seed     int64
}

// RunStoreStorm hammers the target server with creates and full-content
// saves forever (the crash script kills the process mid-flight). Each ack
// is journaled with an fsync'd line before the next save so the journal
// never claims more than the server acknowledged.
func RunStoreStorm(cfg StormConfig) error {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Docs <= 0 {
		cfg.Docs = 8
	}
	if cfg.DocChars <= 0 {
		cfg.DocChars = 2048
	}
	logF, err := os.OpenFile(cfg.AckLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer logF.Close()
	var logMu sync.Mutex
	journal := func(docID string, version int, content string) error {
		sum := sha256.Sum256([]byte(content))
		line := fmt.Sprintf("%s %d %s\n", docID, version, hex.EncodeToString(sum[:]))
		logMu.Lock()
		defer logMu.Unlock()
		if _, err := logF.WriteString(line); err != nil {
			return err
		}
		return logF.Sync()
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for round := 0; ; round++ {
				for d := 0; d < cfg.Docs; d++ {
					docID := fmt.Sprintf("storm-w%d-d%d", w, d)
					if round == 0 {
						form := url.Values{gdocs.FieldDocID: {docID}}
						resp, err := client.PostForm(cfg.Target+gdocs.PathCreate, form)
						if err != nil {
							errs <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					content := fmt.Sprintf("w%d d%d r%d %d %s", w, d, round, rng.Int63(),
						storeContent(docID, cfg.DocChars))
					form := url.Values{
						gdocs.FieldDocID:       {docID},
						gdocs.FieldDocContents: {content},
					}
					resp, err := client.PostForm(cfg.Target+gdocs.PathDoc, form)
					if err != nil {
						errs <- err
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("save %s: status %d", docID, resp.StatusCode)
						return
					}
					ack, err := gdocs.ParseAck(string(body))
					if err != nil {
						errs <- fmt.Errorf("save %s: %w", docID, err)
						return
					}
					if err := journal(docID, ack.Version, content); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait() // workers only return on error; the script kills us first
	return <-errs
}

// VerifyAckLog checks a recovered server against the storm's ack journal:
// for every document the last acknowledged line must still be served —
// same version and byte-identical content (by SHA-256), or a strictly
// newer version when the killed process had an unacked save in flight.
func VerifyAckLog(target, ackLog string) (checked int, err error) {
	f, err := os.Open(ackLog)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	last := make(map[string]struct {
		version int
		sha     string
	})
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		parts := strings.Fields(sc.Text())
		if len(parts) != 3 {
			return 0, fmt.Errorf("malformed ack line %q", sc.Text())
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return 0, fmt.Errorf("malformed ack version in %q", sc.Text())
		}
		prev, ok := last[parts[0]]
		if !ok || v >= prev.version {
			last[parts[0]] = struct {
				version int
				sha     string
			}{v, parts[2]}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for docID, want := range last {
		resp, err := client.Get(target + gdocs.PathDoc + "?" + url.Values{gdocs.FieldDocID: {docID}}.Encode())
		if err != nil {
			return checked, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return checked, fmt.Errorf("%s: acked at v%d but server answered %d", docID, want.version, resp.StatusCode)
		}
		gotVersion, err := strconv.Atoi(resp.Header.Get(gdocs.HeaderDocVersion))
		if err != nil {
			return checked, fmt.Errorf("%s: bad %s header", docID, gdocs.HeaderDocVersion)
		}
		switch {
		case gotVersion < want.version:
			return checked, fmt.Errorf("%s: acked at v%d but server recovered only v%d — an acknowledged save was lost", docID, want.version, gotVersion)
		case gotVersion == want.version:
			sum := sha256.Sum256(body)
			if hex.EncodeToString(sum[:]) != want.sha {
				return checked, fmt.Errorf("%s: v%d content differs from the acknowledged bytes", docID, want.version)
			}
		default:
			// A save past the last ack was applied before the kill but its
			// response was lost: allowed — durability only promises acked
			// saves survive, and this one is strictly newer.
		}
		checked++
	}
	return checked, nil
}
