package rpcmode

import (
	"errors"
	"strings"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
)

func newCodec(t *testing.T, seed uint64) *Codec {
	t.Helper()
	key := make([]byte, crypt.KeySize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	c, err := New(key, crypt.NewSeededNonceSource(seed))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func chunksOf(s string, b int) [][]byte {
	var out [][]byte
	for len(s) > b {
		out = append(out, []byte(s[:b]))
		s = s[b:]
	}
	if len(s) > 0 {
		out = append(out, []byte(s))
	}
	return out
}

// encryptDoc is a helper returning prefix, records, trailer for text.
func encryptDoc(t *testing.T, c *Codec, text string, b int) ([]byte, [][]byte, []byte) {
	t.Helper()
	prefix, blocks, trailer, err := c.EncryptAll(chunksOf(text, b))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	records := make([][]byte, len(blocks))
	for i, blk := range blocks {
		records[i] = blk.Record
	}
	return prefix, records, trailer
}

func decryptDoc(c *Codec, prefix []byte, records [][]byte, trailer []byte) (string, error) {
	blocks, err := c.DecryptAll(prefix, records, trailer)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, b := range blocks {
		sb.Write(b.Chars)
	}
	return sb.String(), nil
}

func TestCodecIdentity(t *testing.T) {
	c := newCodec(t, 1)
	if c.Name() != "RPC" || c.ID() != SchemeID {
		t.Errorf("identity = %s/%d", c.Name(), c.ID())
	}
	if c.RecordBytes() != 32 || c.PrefixBytes() != 32 || c.TrailerBytes() != 32 || c.MaxChars() != 8 {
		t.Errorf("geometry = %d/%d/%d/%d", c.RecordBytes(), c.PrefixBytes(), c.TrailerBytes(), c.MaxChars())
	}
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New(make([]byte, 8), crypt.NewSeededNonceSource(1)); err == nil {
		t.Error("New accepted 8-byte key")
	}
}

func TestRoundTrip(t *testing.T) {
	c := newCodec(t, 2)
	text := "integrity protected content with several blocks"
	prefix, records, trailer := encryptDoc(t, c, text, 8)
	got, err := decryptDoc(newCodec(t, 99), prefix, records, trailer)
	if err != nil {
		t.Fatalf("DecryptAll: %v", err)
	}
	if got != text {
		t.Errorf("round trip = %q", got)
	}
}

func TestEmptyDocumentRing(t *testing.T) {
	c := newCodec(t, 3)
	prefix, blocks, trailer, err := c.EncryptAll(nil)
	if err != nil {
		t.Fatalf("EncryptAll(nil): %v", err)
	}
	if len(blocks) != 0 {
		t.Fatalf("empty doc produced %d blocks", len(blocks))
	}
	got, err := decryptDoc(newCodec(t, 98), prefix, nil, trailer)
	if err != nil {
		t.Fatalf("empty ring rejected: %v", err)
	}
	if got != "" {
		t.Errorf("empty doc decrypted to %q", got)
	}
}

// TestTamperMatrix verifies every active attack the paper's integrity mode
// must detect (§VI-A: "any modification will be detected").
func TestTamperMatrix(t *testing.T) {
	text := "AAAABBBBCCCCDDDDEEEEFFFF" // 6 blocks of 4
	tamper := []struct {
		name   string
		mutate func(prefix []byte, records [][]byte, trailer []byte) ([]byte, [][]byte, []byte)
	}{
		{"bit flip in record", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			r2 := append([][]byte(nil), r...)
			rec := append([]byte(nil), r2[2]...)
			rec[7] ^= 0x80
			r2[2] = rec
			return p, r2, tr
		}},
		{"swap two records", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			r2 := append([][]byte(nil), r...)
			r2[1], r2[3] = r2[3], r2[1]
			return p, r2, tr
		}},
		{"replay a record", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			r2 := append([][]byte(nil), r...)
			r2[4] = r2[1]
			return p, r2, tr
		}},
		{"duplicate a record", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			r2 := append(append([][]byte(nil), r...), r[len(r)-1])
			return p, r2, tr
		}},
		{"truncate last record", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			return p, r[:len(r)-1], tr
		}},
		{"drop middle record", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			r2 := append([][]byte(nil), r[:2]...)
			r2 = append(r2, r[3:]...)
			return p, r2, tr
		}},
		{"bit flip in prefix", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			p2 := append([]byte(nil), p...)
			p2[0] ^= 0x01
			return p2, r, tr
		}},
		{"bit flip in trailer", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			t2 := append([]byte(nil), tr...)
			t2[31] ^= 0x10
			return p, r, t2
		}},
		{"missing trailer", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			return p, r, nil
		}},
		{"reverse all records", func(p []byte, r [][]byte, tr []byte) ([]byte, [][]byte, []byte) {
			r2 := make([][]byte, len(r))
			for i := range r {
				r2[i] = r[len(r)-1-i]
			}
			return p, r2, tr
		}},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			c := newCodec(t, 4)
			prefix, records, trailer := encryptDoc(t, c, text, 4)
			p2, r2, t2 := tc.mutate(prefix, records, trailer)
			if _, err := decryptDoc(newCodec(t, 44), p2, r2, t2); !errors.Is(err, blockdoc.ErrIntegrity) {
				t.Errorf("tampering %q = %v, want ErrIntegrity", tc.name, err)
			}
		})
	}
}

func TestCrossDocumentSpliceDetected(t *testing.T) {
	// Records from another document (same key!) cannot be spliced in.
	cA := newCodec(t, 5)
	prefixA, recordsA, trailerA := encryptDoc(t, cA, "document alpha contents", 4)
	cB := newCodec(t, 6)
	_, recordsB, _ := encryptDoc(t, cB, "document beta contents!", 4)

	mixed := append([][]byte(nil), recordsA...)
	mixed[2] = recordsB[2]
	if _, err := decryptDoc(newCodec(t, 55), prefixA, mixed, trailerA); !errors.Is(err, blockdoc.ErrIntegrity) {
		t.Errorf("cross-document splice = %v, want ErrIntegrity", err)
	}
}

func TestLengthForgeryDetected(t *testing.T) {
	// The Wang et al. amendment: the trailer binds the document length, so
	// even a "consistent-looking" truncation to a prefix of the ring fails.
	c := newCodec(t, 7)
	prefix, records, trailer := encryptDoc(t, c, "0123456789abcdef", 8)
	// Remove the last block AND keep the old trailer: chain breaks.
	if _, err := decryptDoc(newCodec(t, 66), prefix, records[:1], trailer); !errors.Is(err, blockdoc.ErrIntegrity) {
		t.Errorf("truncation = %v, want ErrIntegrity", err)
	}
}

func TestSpliceMaintainsAggregates(t *testing.T) {
	// After a splice, re-serializing with the codec's trailer must verify.
	c := newCodec(t, 8)
	prefix, blocks, _, err := c.EncryptAll(chunksOf("AAAABBBBCCCCDDDD", 4))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	// Replace block 2 ("CCCC") with two new blocks, left neighbor block 1.
	added, newLeft, newPrefix, newTrailer, err := c.Splice(blocks[1], blocks[2:3], [][]byte{[]byte("XXXX"), []byte("YY")}, blocks[3])
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if newLeft == nil {
		t.Fatal("RPC splice did not rewrite the left neighbor")
	}
	if newPrefix != nil {
		t.Fatal("interior splice rewrote the prefix")
	}
	if newTrailer == nil {
		t.Fatal("RPC splice did not refresh the trailer")
	}
	records := [][]byte{blocks[0].Record, newLeft, added[0].Record, added[1].Record, blocks[3].Record}
	got, err := decryptDoc(newCodec(t, 77), prefix, records, newTrailer)
	if err != nil {
		t.Fatalf("post-splice verification: %v", err)
	}
	if got != "AAAABBBBXXXXYYDDDD" {
		t.Errorf("post-splice plaintext = %q", got)
	}
}

func TestSpliceAtHeadRewritesPrefix(t *testing.T) {
	c := newCodec(t, 9)
	_, blocks, _, err := c.EncryptAll(chunksOf("AAAABBBB", 4))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	added, newLeft, newPrefix, newTrailer, err := c.Splice(nil, blocks[0:1], [][]byte{[]byte("ZZZZ")}, blocks[1])
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if newLeft != nil {
		t.Error("head splice returned a left record")
	}
	if newPrefix == nil {
		t.Fatal("head splice did not rewrite the start block")
	}
	records := [][]byte{added[0].Record, blocks[1].Record}
	got, err := decryptDoc(newCodec(t, 88), newPrefix, records, newTrailer)
	if err != nil {
		t.Fatalf("post-splice verification: %v", err)
	}
	if got != "ZZZZBBBB" {
		t.Errorf("post-splice plaintext = %q", got)
	}
}

func TestDeleteAllThenVerify(t *testing.T) {
	c := newCodec(t, 10)
	_, blocks, _, err := c.EncryptAll(chunksOf("WIPEOUT!", 4))
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	_, _, newPrefix, newTrailer, err := c.Splice(nil, blocks, nil, nil)
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	got, err := decryptDoc(newCodec(t, 11), newPrefix, nil, newTrailer)
	if err != nil {
		t.Fatalf("empty-after-delete verification: %v", err)
	}
	if got != "" {
		t.Errorf("plaintext = %q, want empty", got)
	}
}

func TestMetaPacking(t *testing.T) {
	for _, typ := range []byte{typeStart, typeData} {
		for count := 0; count <= 8; count++ {
			m := meta(typ, count)
			gotTyp, gotCount, rest := unpackMeta(m)
			if gotTyp != typ || gotCount != count || rest != 0 {
				t.Errorf("meta(%d,%d) unpacked to (%d,%d,%d)", typ, count, gotTyp, gotCount, rest)
			}
		}
	}
}

func TestWrongKeyRejected(t *testing.T) {
	c := newCodec(t, 12)
	prefix, records, trailer := encryptDoc(t, c, "locked with key A", 8)
	otherKey := make([]byte, crypt.KeySize)
	for i := range otherKey {
		otherKey[i] = byte(100 + i)
	}
	c2, err := New(otherKey, crypt.NewSeededNonceSource(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := decryptDoc(c2, prefix, records, trailer); err == nil {
		t.Error("wrong key accepted")
	}
}
