package rpcmode

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/parallel"
)

func kernelKey() []byte {
	key := make([]byte, crypt.KeySize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	return key
}

// kernelChunks builds n deterministic chunks, mixing full and short blocks.
func kernelChunks(n int) [][]byte {
	chunks := make([][]byte, n)
	for i := range chunks {
		size := maxChars
		if i%17 == 0 {
			size = 1 + i%maxChars
		}
		ch := make([]byte, size)
		for j := range ch {
			ch[j] = byte('a' + (i+j)%26)
		}
		chunks[i] = ch
	}
	return chunks
}

func encryptWith(t *testing.T, workers int, chunks [][]byte) (prefix []byte, blocks []*blockdoc.Block, trailer []byte) {
	t.Helper()
	c, err := New(kernelKey(), crypt.NewSeededNonceSource(99))
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(workers)
	prefix, blocks, trailer, err = c.EncryptAll(chunks)
	if err != nil {
		t.Fatalf("EncryptAll(workers=%d): %v", workers, err)
	}
	return prefix, blocks, trailer
}

// TestKernelCiphertextEquality pins the tentpole invariant: the reference
// serial kernel (workers=1), a forced 2-worker fan-out, GOMAXPROCS
// workers, and the default (0) all produce byte-identical ciphertext —
// start block, every record, and the checksum trailer (whose aggregates
// the batched kernel folds per worker) — at sizes straddling the parallel
// crossover.
func TestKernelCiphertextEquality(t *testing.T) {
	sizes := []int{1, 5, parallel.MinParallelBlocks - 1, parallel.MinParallelBlocks, parallel.MinParallelBlocks + 1000}
	workerSet := []int{1, 2, runtime.GOMAXPROCS(0), 0}
	for _, n := range sizes {
		chunks := kernelChunks(n)
		refPrefix, refBlocks, refTrailer := encryptWith(t, 1, chunks)
		for _, w := range workerSet[1:] {
			prefix, blocks, trailer := encryptWith(t, w, chunks)
			if !bytes.Equal(prefix, refPrefix) || !bytes.Equal(trailer, refTrailer) {
				t.Fatalf("n=%d workers=%d: prefix/trailer diverge from serial", n, w)
			}
			for i := range blocks {
				if !bytes.Equal(blocks[i].Record, refBlocks[i].Record) {
					t.Fatalf("n=%d workers=%d: record %d diverges from serial", n, w, i)
				}
				if blocks[i].Nonce != refBlocks[i].Nonce {
					t.Fatalf("n=%d workers=%d: nonce %d diverges from serial", n, w, i)
				}
			}
		}
		// Every kernel must also verify and decrypt the ring identically.
		records := make([][]byte, len(refBlocks))
		for i, b := range refBlocks {
			records[i] = b.Record
		}
		for _, w := range workerSet {
			c, err := New(kernelKey(), crypt.NewSeededNonceSource(1))
			if err != nil {
				t.Fatal(err)
			}
			c.SetWorkers(w)
			got, err := c.DecryptAll(refPrefix, records, refTrailer)
			if err != nil {
				t.Fatalf("n=%d DecryptAll(workers=%d): %v", n, w, err)
			}
			for i := range got {
				if !bytes.Equal(got[i].Chars, chunks[i]) {
					t.Fatalf("n=%d workers=%d: decrypted chars %d diverge", n, w, i)
				}
			}
		}
	}
}

// TestSpliceCiphertextEquality extends the equality pin to the incremental
// path: Splice under every worker setting produces the same added records,
// rewritten prefix, and checksum trailer.
func TestSpliceCiphertextEquality(t *testing.T) {
	chunks := kernelChunks(parallel.MinParallelBlocks + 100)
	var refRecords [][]byte
	var refPrefix, refTrailer []byte
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), 0} {
		c, err := New(kernelKey(), crypt.NewSeededNonceSource(42))
		if err != nil {
			t.Fatal(err)
		}
		c.SetWorkers(w)
		added, _, newPrefix, newTrailer, err := c.Splice(nil, nil, chunks, nil)
		if err != nil {
			t.Fatalf("Splice(workers=%d): %v", w, err)
		}
		if refRecords == nil {
			refRecords = make([][]byte, len(added))
			for i, b := range added {
				refRecords[i] = b.Record
			}
			refPrefix, refTrailer = newPrefix, newTrailer
			continue
		}
		if !bytes.Equal(newPrefix, refPrefix) || !bytes.Equal(newTrailer, refTrailer) {
			t.Fatalf("workers=%d: spliced prefix/trailer diverge from serial", w)
		}
		for i, b := range added {
			if !bytes.Equal(b.Record, refRecords[i]) {
				t.Fatalf("workers=%d: spliced record %d diverges from serial", w, i)
			}
		}
	}
}

// TestBatchedKernelAllocsBounded pins the arena design: the batched
// kernels allocate a small per-call constant, not O(blocks). The serial
// reference kernel allocates ~3 per block (>12000 here), so the bound
// below fails loudly if per-block makes creep back in.
func TestBatchedKernelAllocsBounded(t *testing.T) {
	const n = 4096
	chunks := kernelChunks(n)
	c, err := New(kernelKey(), crypt.NewSeededNonceSource(7))
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(2)
	var prefix, trailer []byte
	var blocks []*blockdoc.Block
	encAllocs := testing.AllocsPerRun(5, func() {
		prefix, blocks, trailer, err = c.EncryptAll(chunks)
		if err != nil {
			t.Fatal(err)
		}
	})
	records := make([][]byte, len(blocks))
	for i, b := range blocks {
		records[i] = b.Record
	}
	decAllocs := testing.AllocsPerRun(5, func() {
		if _, err := c.DecryptAll(prefix, records, trailer); err != nil {
			t.Fatal(err)
		}
	})
	// ~10 arena/bookkeeping allocations plus goroutine startup; 64 leaves
	// headroom for runtime variation while staying 2 orders of magnitude
	// below a per-block regression.
	if encAllocs > 64 {
		t.Errorf("batched EncryptAll: %.0f allocs for %d blocks, want <= 64", encAllocs, n)
	}
	if decAllocs > 64 {
		t.Errorf("batched DecryptAll: %.0f allocs for %d blocks, want <= 64", decAllocs, n)
	}
}

// TestConcurrentCodecCalls exercises the satellite-2 fix under -race: one
// codec instance used by concurrent whole-document calls must not corrupt
// either result (the ring state is computed per call and published under
// the mutex, never read mid-kernel).
func TestConcurrentCodecCalls(t *testing.T) {
	c, err := New(kernelKey(), crypt.CryptoNonceSource{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(2)
	chunks := kernelChunks(parallel.MinParallelBlocks + 50)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				prefix, blocks, trailer, err := c.EncryptAll(chunks)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: EncryptAll: %w", g, err)
					return
				}
				records := make([][]byte, len(blocks))
				for i, b := range blocks {
					records[i] = b.Record
				}
				// A fresh codec proves the result is a self-consistent ring
				// no matter how the shared codec's state moved meanwhile.
				dec, err := New(kernelKey(), crypt.CryptoNonceSource{})
				if err != nil {
					errc <- err
					return
				}
				got, err := dec.DecryptAll(prefix, records, trailer)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: DecryptAll: %w", g, err)
					return
				}
				for i := range got {
					if !bytes.Equal(got[i].Chars, chunks[i]) {
						errc <- fmt.Errorf("goroutine %d: block %d corrupted", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
