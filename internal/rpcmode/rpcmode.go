// Package rpcmode implements the RPC incremental unforgeable encryption
// mode of Buonanno, Katz & Yung, with the security amendment of Wang, Kao
// & Yeh that binds the document length into the final ciphertext block
// (Huang & Evans §V-B). RPC provides confidentiality *and* integrity: the
// plaintext blocks are chained into a ring by random nonces, so any block
// substitution, reordering, replay, truncation, or splice breaks the chain
// and is detected at decryption.
//
// With document blocks d_1..d_n the ciphertext is
//
//	W_sk(r_0, α, r_1), W_sk(r_1, d_1, r_2), ..., W_sk(r_n, d_n, r_0),
//	W_sk(⊕_{i=0..n} r_i, ⊕ d_i, n, ⊕_{i=1..n} r_i)
//
// where W_sk is a 256-bit wide-block PRP (the paper's triples do not fit
// one AES block with 64-bit nonces; see internal/crypt). The final
// checksum block carries the XOR aggregates and the block count n — the
// Wang et al. amendment. Incremental updates maintain the aggregates by
// XOR-ing blocks out and in, so IncE touches only the edited blocks, one
// left neighbor, and the trailer: O(edit + log n) total.
package rpcmode

import (
	"bytes"
	"fmt"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/parallel"
)

// SchemeID is the container header byte identifying RPC.
const SchemeID = 2

const (
	recordBytes = crypt.WideBlockSize // one wide block per record
	prefixBytes = crypt.WideBlockSize // start block W(r0, α, ·, r1)
	trailerByts = crypt.WideBlockSize // checksum block
	maxChars    = 8                   // 64-bit data field
)

// Record field types stored in the meta field.
const (
	typeStart = 1
	typeData  = 2
)

// alpha is the paper's arbitrary start-marker symbol α.
var alpha = [8]byte{'R', 'P', 'C', '-', 'S', 'T', 'R', 'T'}

// Codec is the RPC scheme. It implements blockdoc.Codec.
type Codec struct {
	wide   *crypt.WidePRP
	nonces crypt.NonceSource

	// Ring and aggregate state (rebuilt by EncryptAll/DecryptAll,
	// maintained incrementally by Splice).
	r0       uint64
	xorAllR  uint64 // ⊕ r_i for i = 0..n
	xorD     uint64 // ⊕ padded d_i
	xorRTail uint64 // ⊕ r_i for i = 1..n
	count    uint64 // n

	// workers bounds the goroutines used by the whole-document kernels
	// (0 = GOMAXPROCS, 1 = serial). Documents below threshold blocks
	// always take the serial path. The XOR aggregates reduce
	// associatively, so the parallel kernels produce the same checksum
	// block as the serial ones.
	workers   int
	threshold int
}

var _ blockdoc.Codec = (*Codec)(nil)

// New builds an RPC codec from a 16-byte key. nonces supplies the 64-bit
// chaining nonces; pass crypt.CryptoNonceSource{} outside tests.
func New(key []byte, nonces crypt.NonceSource) (*Codec, error) {
	wide, err := crypt.NewWidePRP(key)
	if err != nil {
		return nil, fmt.Errorf("rpcmode: %w", err)
	}
	return &Codec{wide: wide, nonces: nonces, threshold: parallel.MinParallelBlocks}, nil
}

// SetWorkers bounds the worker goroutines used by EncryptAll/DecryptAll:
// 0 selects GOMAXPROCS, 1 forces the serial path. The ciphertext is
// identical either way — nonces are always drawn in document order.
func (c *Codec) SetWorkers(n int) { c.workers = n }

// Name implements blockdoc.Codec.
func (c *Codec) Name() string { return "RPC" }

// ID implements blockdoc.Codec.
func (c *Codec) ID() byte { return SchemeID }

// RecordBytes implements blockdoc.Codec.
func (c *Codec) RecordBytes() int { return recordBytes }

// PrefixBytes implements blockdoc.Codec.
func (c *Codec) PrefixBytes() int { return prefixBytes }

// TrailerBytes implements blockdoc.Codec.
func (c *Codec) TrailerBytes() int { return trailerByts }

// MaxChars implements blockdoc.Codec.
func (c *Codec) MaxChars() int { return maxChars }

func padChars(chars []byte) uint64 {
	var d [8]byte
	copy(d[:], chars)
	return crypt.Uint64(d[:])
}

// sealRecord encrypts the four 64-bit fields of a record.
func (c *Codec) sealRecord(f0, f1, f2, f3 uint64) ([]byte, error) {
	var pt [recordBytes]byte
	crypt.PutUint64(pt[0:8], f0)
	crypt.PutUint64(pt[8:16], f1)
	crypt.PutUint64(pt[16:24], f2)
	crypt.PutUint64(pt[24:32], f3)
	rec := make([]byte, recordBytes)
	if err := c.wide.Encrypt(rec, pt[:]); err != nil {
		return nil, err
	}
	return rec, nil
}

// openRecord decrypts a record into its four 64-bit fields.
func (c *Codec) openRecord(rec []byte) (f0, f1, f2, f3 uint64, err error) {
	if len(rec) != recordBytes {
		return 0, 0, 0, 0, fmt.Errorf("%w: record of %d bytes", blockdoc.ErrCorrupt, len(rec))
	}
	var pt [recordBytes]byte
	if err := c.wide.Decrypt(pt[:], rec); err != nil {
		return 0, 0, 0, 0, err
	}
	return crypt.Uint64(pt[0:8]), crypt.Uint64(pt[8:16]), crypt.Uint64(pt[16:24]), crypt.Uint64(pt[24:32]), nil
}

// meta packs the record type and character count into the meta field.
func meta(typ byte, count int) uint64 {
	return uint64(typ)<<56 | uint64(byte(count))<<48
}

func unpackMeta(m uint64) (typ byte, count int, rest uint64) {
	return byte(m >> 56), int(byte(m >> 48)), m & 0x0000FFFFFFFFFFFF
}

// encryptData builds the record W(r_i, d_i, meta, next) for a data block.
func (c *Codec) encryptData(chars []byte, ri, next uint64) ([]byte, error) {
	if len(chars) == 0 || len(chars) > maxChars {
		return nil, fmt.Errorf("%w: block of %d chars", blockdoc.ErrCorrupt, len(chars))
	}
	return c.sealRecord(ri, padChars(chars), meta(typeData, len(chars)), next)
}

// encryptStart builds the start block W(r0, α, meta, next).
func (c *Codec) encryptStart(next uint64) ([]byte, error) {
	return c.sealRecord(c.r0, crypt.Uint64(alpha[:]), meta(typeStart, 0), next)
}

// encryptTrailer builds the checksum block from the current aggregates.
func (c *Codec) encryptTrailer() ([]byte, error) {
	return c.sealRecord(c.xorAllR, c.xorD, c.count, c.xorRTail)
}

// EncryptAll implements blockdoc.Codec: fresh ring, all aggregates rebuilt.
func (c *Codec) EncryptAll(chunks [][]byte) (prefix []byte, blocks []*blockdoc.Block, trailer []byte, err error) {
	c.r0 = c.nonces.Nonce64()
	c.xorAllR = c.r0
	c.xorD = 0
	c.xorRTail = 0
	c.count = uint64(len(chunks))

	ris := make([]uint64, len(chunks))
	for i := range ris {
		ris[i] = c.nonces.Nonce64()
		c.xorAllR ^= ris[i]
		c.xorRTail ^= ris[i]
	}
	blocks = make([]*blockdoc.Block, len(chunks))
	sealRange := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ch := chunks[i]
			next := c.r0
			if i+1 < len(chunks) {
				next = ris[i+1]
			}
			rec, err := c.encryptData(ch, ris[i], next)
			if err != nil {
				return err
			}
			own := make([]byte, len(ch))
			copy(own, ch)
			blocks[i] = &blockdoc.Block{Chars: own, Record: rec, Nonce: ris[i]}
		}
		return nil
	}
	// The data aggregate is a cheap associative XOR; fold it serially so
	// the parallel workers touch no shared codec state at all.
	for _, ch := range chunks {
		c.xorD ^= padChars(ch)
	}
	if parallel.UseSerial(len(chunks), c.workers, c.threshold) {
		if err := sealRange(0, len(chunks)); err != nil {
			return nil, nil, nil, err
		}
	} else if err := parallel.Range(len(chunks), c.workers, sealRange); err != nil {
		return nil, nil, nil, err
	}
	first := c.r0
	if len(ris) > 0 {
		first = ris[0]
	}
	if prefix, err = c.encryptStart(first); err != nil {
		return nil, nil, nil, err
	}
	if trailer, err = c.encryptTrailer(); err != nil {
		return nil, nil, nil, err
	}
	return prefix, blocks, trailer, nil
}

// DecryptAll implements blockdoc.Codec, performing the full integrity
// verification: start marker, nonce ring closure, per-block structure,
// and the checksum block including the document length.
func (c *Codec) DecryptAll(prefix []byte, records [][]byte, trailer []byte) ([]*blockdoc.Block, error) {
	if len(prefix) != prefixBytes {
		return nil, fmt.Errorf("%w: prefix of %d bytes", blockdoc.ErrCorrupt, len(prefix))
	}
	f0, f1, f2, f3, err := c.openRecord(prefix)
	if err != nil {
		return nil, err
	}
	typ, cnt, rest := unpackMeta(f2)
	if typ != typeStart || cnt != 0 || rest != 0 || f1 != crypt.Uint64(alpha[:]) {
		return nil, fmt.Errorf("%w: malformed start block", blockdoc.ErrIntegrity)
	}
	r0 := f0
	expected := f3

	// Opening a record — the wide-PRP inversion — is the expensive step
	// and is independent per record; fan it out above the crossover
	// threshold. The ring verification is inherently sequential (each
	// record's nonce must equal the previous record's next pointer), so it
	// runs as a serial pass over the opened fields.
	type opened struct {
		ri, d, m, next uint64
	}
	fields := make([]opened, len(records))
	openRange := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ri, d, m, next, err := c.openRecord(records[i])
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			fields[i] = opened{ri, d, m, next}
		}
		return nil
	}
	if parallel.UseSerial(len(records), c.workers, c.threshold) {
		if err := openRange(0, len(records)); err != nil {
			return nil, err
		}
	} else if err := parallel.Range(len(records), c.workers, openRange); err != nil {
		return nil, err
	}

	var xorAllR, xorD, xorRTail uint64
	xorAllR = r0
	blocks := make([]*blockdoc.Block, 0, len(records))
	for i, rec := range records {
		f := fields[i]
		typ, count, rest := unpackMeta(f.m)
		if typ != typeData || rest != 0 || count < 1 || count > maxChars {
			return nil, fmt.Errorf("%w: record %d malformed", blockdoc.ErrIntegrity, i)
		}
		if f.ri != expected {
			return nil, fmt.Errorf("%w: record %d breaks the nonce chain", blockdoc.ErrIntegrity, i)
		}
		var db [8]byte
		crypt.PutUint64(db[:], f.d)
		if !bytes.Equal(db[count:], make([]byte, 8-count)) {
			return nil, fmt.Errorf("%w: record %d has nonzero padding", blockdoc.ErrIntegrity, i)
		}
		chars := make([]byte, count)
		copy(chars, db[:count])
		recOwn := make([]byte, recordBytes)
		copy(recOwn, rec)
		blocks = append(blocks, &blockdoc.Block{Chars: chars, Record: recOwn, Nonce: f.ri})
		xorAllR ^= f.ri
		xorRTail ^= f.ri
		xorD ^= f.d
		expected = f.next
	}
	if expected != r0 {
		return nil, fmt.Errorf("%w: nonce ring does not close", blockdoc.ErrIntegrity)
	}
	if trailer == nil {
		return nil, fmt.Errorf("%w: missing checksum block", blockdoc.ErrIntegrity)
	}
	t0, t1, t2, t3, err := c.openRecord(trailer)
	if err != nil {
		return nil, err
	}
	if t0 != xorAllR || t1 != xorD || t2 != uint64(len(records)) || t3 != xorRTail {
		return nil, fmt.Errorf("%w: checksum block mismatch", blockdoc.ErrIntegrity)
	}

	c.r0 = r0
	c.xorAllR = xorAllR
	c.xorD = xorD
	c.xorRTail = xorRTail
	c.count = uint64(len(records))
	return blocks, nil
}

// Splice implements blockdoc.Codec. The replacement blocks are chained
// between the surviving neighbors: the left neighbor (or the start block,
// when the edit touches the document head) is re-encrypted to point at the
// first new nonce, the last new block points at the right neighbor's nonce
// (or r0, closing the ring), and the checksum aggregates are updated by
// XOR-ing the removed blocks out and the new blocks in.
func (c *Codec) Splice(left *blockdoc.Block, removed []*blockdoc.Block, chunks [][]byte, right *blockdoc.Block) (
	added []*blockdoc.Block, newLeftRecord, newPrefix, newTrailer []byte, err error) {
	for _, b := range removed {
		c.xorAllR ^= b.Nonce
		c.xorRTail ^= b.Nonce
		c.xorD ^= padChars(b.Chars)
		c.count--
	}

	rightNonce := c.r0
	if right != nil {
		rightNonce = right.Nonce
	}

	ris := make([]uint64, len(chunks))
	for i := range ris {
		ris[i] = c.nonces.Nonce64()
		c.xorAllR ^= ris[i]
		c.xorRTail ^= ris[i]
	}
	added = make([]*blockdoc.Block, len(chunks))
	for i, ch := range chunks {
		next := rightNonce
		if i+1 < len(chunks) {
			next = ris[i+1]
		}
		rec, err := c.encryptData(ch, ris[i], next)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		own := make([]byte, len(ch))
		copy(own, ch)
		added[i] = &blockdoc.Block{Chars: own, Record: rec, Nonce: ris[i]}
		c.xorD ^= padChars(ch)
		c.count++
	}

	first := rightNonce
	if len(added) > 0 {
		first = added[0].Nonce
	}
	if left != nil {
		if newLeftRecord, err = c.encryptData(left.Chars, left.Nonce, first); err != nil {
			return nil, nil, nil, nil, err
		}
	} else {
		if newPrefix, err = c.encryptStart(first); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if newTrailer, err = c.encryptTrailer(); err != nil {
		return nil, nil, nil, nil, err
	}
	return added, newLeftRecord, newPrefix, newTrailer, nil
}
