// Package rpcmode implements the RPC incremental unforgeable encryption
// mode of Buonanno, Katz & Yung, with the security amendment of Wang, Kao
// & Yeh that binds the document length into the final ciphertext block
// (Huang & Evans §V-B). RPC provides confidentiality *and* integrity: the
// plaintext blocks are chained into a ring by random nonces, so any block
// substitution, reordering, replay, truncation, or splice breaks the chain
// and is detected at decryption.
//
// With document blocks d_1..d_n the ciphertext is
//
//	W_sk(r_0, α, r_1), W_sk(r_1, d_1, r_2), ..., W_sk(r_n, d_n, r_0),
//	W_sk(⊕_{i=0..n} r_i, ⊕ d_i, n, ⊕_{i=1..n} r_i)
//
// where W_sk is a 256-bit wide-block PRP (the paper's triples do not fit
// one AES block with 64-bit nonces; see internal/crypt). The final
// checksum block carries the XOR aggregates and the block count n — the
// Wang et al. amendment. Incremental updates maintain the aggregates by
// XOR-ing blocks out and in, so IncE touches only the edited blocks, one
// left neighbor, and the trailer: O(edit + log n) total.
package rpcmode

import (
	"bytes"
	"fmt"
	"sync"

	"privedit/internal/blockdoc"
	"privedit/internal/crypt"
	"privedit/internal/parallel"
)

// SchemeID is the container header byte identifying RPC.
const SchemeID = 2

const (
	recordBytes = crypt.WideBlockSize // one wide block per record
	prefixBytes = crypt.WideBlockSize // start block W(r0, α, ·, r1)
	trailerByts = crypt.WideBlockSize // checksum block
	maxChars    = 8                   // 64-bit data field
)

// wideRunBlocks is the tile size of the batched kernels: the number of
// records handed to one WidePRP Encrypt/DecryptRun call. 128 records is a
// 4 KiB tile, small enough that the four round-major sweeps stay in L1 and
// large enough to amortize the per-run dispatch.
const wideRunBlocks = 128

// Record field types stored in the meta field.
const (
	typeStart = 1
	typeData  = 2
)

// alpha is the paper's arbitrary start-marker symbol α.
var alpha = [8]byte{'R', 'P', 'C', '-', 'S', 'T', 'R', 'T'}

// ringState is the ring and aggregate state of one container: rebuilt by
// EncryptAll/DecryptAll, maintained incrementally by Splice. The
// whole-document kernels compute on a local copy and publish it once on
// success, so concurrent calls on one codec never race on it.
type ringState struct {
	r0       uint64
	xorAllR  uint64 // ⊕ r_i for i = 0..n
	xorD     uint64 // ⊕ padded d_i
	xorRTail uint64 // ⊕ r_i for i = 1..n
	count    uint64 // n
}

// Codec is the RPC scheme. It implements blockdoc.Codec.
type Codec struct {
	wide   *crypt.WidePRP
	nonces crypt.NonceSource

	// mu guards state between whole-document calls.
	mu    sync.Mutex
	state ringState

	// workers bounds the goroutines used by the whole-document kernels
	// (0 = GOMAXPROCS, 1 = the reference serial per-block kernel).
	// Documents below threshold blocks never fan out. The XOR aggregates
	// reduce associatively, so every kernel produces the same checksum
	// block.
	workers   int
	threshold int
}

var _ blockdoc.Codec = (*Codec)(nil)

// New builds an RPC codec from a 16-byte key. nonces supplies the 64-bit
// chaining nonces; pass crypt.CryptoNonceSource{} outside tests.
func New(key []byte, nonces crypt.NonceSource) (*Codec, error) {
	wide, err := crypt.NewWidePRP(key)
	if err != nil {
		return nil, fmt.Errorf("rpcmode: %w", err)
	}
	return &Codec{wide: wide, nonces: nonces, threshold: parallel.MinParallelBlocks}, nil
}

// SetWorkers selects the kernel used by EncryptAll/DecryptAll/Splice:
// 1 pins the reference serial per-block kernel, anything else selects the
// batched arena kernel (0 = fan out up to GOMAXPROCS above the crossover
// threshold). The ciphertext is identical either way — nonces are always
// drawn in document order.
func (c *Codec) SetWorkers(n int) { c.workers = n }

// Name implements blockdoc.Codec.
func (c *Codec) Name() string { return "RPC" }

// ID implements blockdoc.Codec.
func (c *Codec) ID() byte { return SchemeID }

// RecordBytes implements blockdoc.Codec.
func (c *Codec) RecordBytes() int { return recordBytes }

// PrefixBytes implements blockdoc.Codec.
func (c *Codec) PrefixBytes() int { return prefixBytes }

// TrailerBytes implements blockdoc.Codec.
func (c *Codec) TrailerBytes() int { return trailerByts }

// MaxChars implements blockdoc.Codec.
func (c *Codec) MaxChars() int { return maxChars }

// snapshot reads the published ring state.
func (c *Codec) snapshot() ringState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// publish installs the ring state a successful whole-document call
// established.
func (c *Codec) publish(st ringState) {
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
}

func padChars(chars []byte) uint64 {
	var d [8]byte
	copy(d[:], chars)
	return crypt.Uint64(d[:])
}

// padCharsFast is the batched kernels' padChars: full blocks — the
// overwhelming majority at any b — skip the zero-pad staging copy. The
// reference kernel keeps the staged padChars so the serial baseline
// preserves the original per-block kernel's cost model.
func padCharsFast(chars []byte) uint64 {
	if len(chars) == maxChars {
		return crypt.Uint64(chars)
	}
	return padChars(chars)
}

// risPool recycles the batched kernels' bulk nonce scratch. Every nonce is
// copied into its output block during assembly, so the slice is dead by
// the time a call returns and can be handed to the next one.
var risPool = sync.Pool{New: func() any { return new([]uint64) }}

func getRis(n int) *[]uint64 {
	p := risPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

// sealRecord encrypts the four 64-bit fields of a record.
func (c *Codec) sealRecord(f0, f1, f2, f3 uint64) ([]byte, error) {
	var pt [recordBytes]byte
	crypt.PutUint64(pt[0:8], f0)
	crypt.PutUint64(pt[8:16], f1)
	crypt.PutUint64(pt[16:24], f2)
	crypt.PutUint64(pt[24:32], f3)
	rec := make([]byte, recordBytes)
	if err := c.wide.Encrypt(rec, pt[:]); err != nil {
		return nil, err
	}
	return rec, nil
}

// openRecord decrypts a record into its four 64-bit fields.
func (c *Codec) openRecord(rec []byte) (f0, f1, f2, f3 uint64, err error) {
	if len(rec) != recordBytes {
		return 0, 0, 0, 0, fmt.Errorf("%w: record of %d bytes", blockdoc.ErrCorrupt, len(rec))
	}
	var pt [recordBytes]byte
	if err := c.wide.Decrypt(pt[:], rec); err != nil {
		return 0, 0, 0, 0, err
	}
	return crypt.Uint64(pt[0:8]), crypt.Uint64(pt[8:16]), crypt.Uint64(pt[16:24]), crypt.Uint64(pt[24:32]), nil
}

// meta packs the record type and character count into the meta field.
func meta(typ byte, count int) uint64 {
	return uint64(typ)<<56 | uint64(byte(count))<<48
}

func unpackMeta(m uint64) (typ byte, count int, rest uint64) {
	return byte(m >> 56), int(byte(m >> 48)), m & 0x0000FFFFFFFFFFFF
}

// encryptData builds the record W(r_i, d_i, meta, next) for a data block:
// the reference per-block kernel.
func (c *Codec) encryptData(chars []byte, ri, next uint64) ([]byte, error) {
	if len(chars) == 0 || len(chars) > maxChars {
		return nil, fmt.Errorf("%w: block of %d chars", blockdoc.ErrCorrupt, len(chars))
	}
	return c.sealRecord(ri, padChars(chars), meta(typeData, len(chars)), next)
}

// encryptStart builds the start block W(r0, α, meta, next).
func (c *Codec) encryptStart(r0, next uint64) ([]byte, error) {
	return c.sealRecord(r0, crypt.Uint64(alpha[:]), meta(typeStart, 0), next)
}

// encryptTrailer builds the checksum block from the given aggregates.
func (c *Codec) encryptTrailer(st ringState) ([]byte, error) {
	return c.sealRecord(st.xorAllR, st.xorD, st.count, st.xorRTail)
}

// arena carries the per-call backing arrays of the batched kernels: one
// allocation per array per call instead of two small makes per block. Each
// block's record and character slices are strided sub-slices (capped with
// full slice expressions, so a later append can never bleed into a
// neighbor's region).
type arena struct {
	recs  []byte
	chars []byte
	slab  []blockdoc.Block
}

func newArena(n int) arena {
	// One byte backing for records and characters; the record region comes
	// first and is capacity-capped so tile slicing can never reach the
	// character region.
	buf := make([]byte, n*(recordBytes+maxChars))
	return arena{
		recs:  buf[: n*recordBytes : n*recordBytes],
		chars: buf[n*recordBytes:],
		slab:  make([]blockdoc.Block, n),
	}
}

func (a *arena) rec(i int) []byte {
	return a.recs[i*recordBytes : (i+1)*recordBytes : (i+1)*recordBytes]
}

func (a *arena) charSlot(i, n int) []byte {
	return a.chars[i*maxChars : i*maxChars+n : i*maxChars+n]
}

// aggPair is one worker's partial XOR aggregates. The ⊕r_i term feeds
// both xorAllR and xorRTail (they differ only in r0, folded by the
// caller); padding keeps workers on distinct cache lines.
type aggPair struct {
	xorR uint64 // ⊕ ris[i] over the worker's batch
	xorD uint64 // ⊕ padded d_i over the worker's batch
	_    [48]byte
}

// encryptBatch is the batched Enc kernel: it seals blocks [lo, hi) into
// the arena. Plaintext fields are assembled tile by tile directly in the
// record arena, then each 4 KiB tile is permuted in place by one
// round-major EncryptRun — amortizing the four cipher dispatches across
// the tile instead of paying them per block. The worker's checksum
// contributions accumulate into agg as a side effect of the assembly pass,
// so the caller never re-walks the chunks.
func (c *Codec) encryptBatch(chunks [][]byte, ris []uint64, r0 uint64, a arena, blocks []*blockdoc.Block, lo, hi int, agg *aggPair) error {
	for tile := lo; tile < hi; tile += wideRunBlocks {
		end := tile + wideRunBlocks
		if end > hi {
			end = hi
		}
		for i := tile; i < end; i++ {
			ch := chunks[i]
			if len(ch) == 0 || len(ch) > maxChars {
				return fmt.Errorf("%w: block of %d chars", blockdoc.ErrCorrupt, len(ch))
			}
			rec := a.rec(i)
			next := r0
			if i+1 < len(chunks) {
				next = ris[i+1]
			}
			d := padCharsFast(ch)
			agg.xorR ^= ris[i]
			agg.xorD ^= d
			crypt.PutUint64(rec[0:8], ris[i])
			crypt.PutUint64(rec[8:16], d)
			crypt.PutUint64(rec[16:24], meta(typeData, len(ch)))
			crypt.PutUint64(rec[24:32], next)
			// The Block only captures slice headers, so it can be built
			// before the tile's in-place encryption turns rec into
			// ciphertext — one pass over the tile instead of two.
			own := a.charSlot(i, len(ch))
			copy(own, ch)
			a.slab[i] = blockdoc.Block{Chars: own, Record: rec, Nonce: ris[i]}
			blocks[i] = &a.slab[i]
		}
		if err := c.wide.EncryptRun(a.recs[tile*recordBytes : end*recordBytes]); err != nil {
			return err
		}
	}
	return nil
}

// openBatch is the batched half of Dec: it copies records [lo, hi) into
// the retained record arena, and decrypts a second copy tile by tile into
// pts, where the serial ring-verification pass reads the fields.
func (c *Codec) openBatch(records [][]byte, pts []byte, a arena, lo, hi int) error {
	for i := lo; i < hi; i++ {
		if len(records[i]) != recordBytes {
			return fmt.Errorf("record %d: %w: record of %d bytes", i, blockdoc.ErrCorrupt, len(records[i]))
		}
		copy(a.recs[i*recordBytes:(i+1)*recordBytes], records[i])
	}
	copy(pts[lo*recordBytes:hi*recordBytes], a.recs[lo*recordBytes:hi*recordBytes])
	for tile := lo; tile < hi; tile += wideRunBlocks {
		end := tile + wideRunBlocks
		if end > hi {
			end = hi
		}
		if err := c.wide.DecryptRun(pts[tile*recordBytes : end*recordBytes]); err != nil {
			return err
		}
	}
	return nil
}

// EncryptAll implements blockdoc.Codec: fresh ring, all aggregates rebuilt.
// Nonces are drawn serially in document order (so the ciphertext is
// deterministic for a given source); the wide-block sealing — the bulk of
// Enc — runs in the batched arena kernel, fanned out across worker
// goroutines for documents above the crossover threshold.
func (c *Codec) EncryptAll(chunks [][]byte) (prefix []byte, blocks []*blockdoc.Block, trailer []byte, err error) {
	n := len(chunks)
	var st ringState
	st.r0 = c.nonces.Nonce64()
	st.xorAllR = st.r0
	st.count = uint64(n)

	var ris []uint64
	blocks = make([]*blockdoc.Block, n)
	if parallel.UseSerial(n, c.workers) {
		// Reference kernel: per-draw nonce acquisition and one sealRecord
		// per block, preserving the original serial shape (and cost model)
		// exactly. The aggregates fold inside the block loop.
		ris = make([]uint64, n)
		for i := range ris {
			ris[i] = c.nonces.Nonce64()
		}
		for i, ch := range chunks {
			next := st.r0
			if i+1 < n {
				next = ris[i+1]
			}
			rec, err := c.encryptData(ch, ris[i], next)
			if err != nil {
				return nil, nil, nil, err
			}
			own := make([]byte, len(ch))
			copy(own, ch)
			blocks[i] = &blockdoc.Block{Chars: own, Record: rec, Nonce: ris[i]}
			st.xorAllR ^= ris[i]
			st.xorRTail ^= ris[i]
			st.xorD ^= padChars(ch)
		}
	} else {
		rp := getRis(n)
		defer risPool.Put(rp)
		ris = *rp
		crypt.FillNonces(c.nonces, ris)
		a := newArena(n)
		w := parallel.Plan(n, c.workers, c.threshold)
		aggs := make([]aggPair, w)
		err = parallel.BatchRange(n, w, func(worker, lo, hi int) error {
			return c.encryptBatch(chunks, ris, st.r0, a, blocks, lo, hi, &aggs[worker])
		})
		if err != nil {
			return nil, nil, nil, err
		}
		for i := range aggs {
			st.xorAllR ^= aggs[i].xorR
			st.xorRTail ^= aggs[i].xorR
			st.xorD ^= aggs[i].xorD
		}
	}
	first := st.r0
	if len(ris) > 0 {
		first = ris[0]
	}
	if prefix, err = c.encryptStart(st.r0, first); err != nil {
		return nil, nil, nil, err
	}
	if trailer, err = c.encryptTrailer(st); err != nil {
		return nil, nil, nil, err
	}
	c.publish(st)
	return prefix, blocks, trailer, nil
}

// DecryptAll implements blockdoc.Codec, performing the full integrity
// verification: start marker, nonce ring closure, per-block structure,
// and the checksum block including the document length.
func (c *Codec) DecryptAll(prefix []byte, records [][]byte, trailer []byte) ([]*blockdoc.Block, error) {
	if len(prefix) != prefixBytes {
		return nil, fmt.Errorf("%w: prefix of %d bytes", blockdoc.ErrCorrupt, len(prefix))
	}
	f0, f1, f2, f3, err := c.openRecord(prefix)
	if err != nil {
		return nil, err
	}
	typ, cnt, rest := unpackMeta(f2)
	if typ != typeStart || cnt != 0 || rest != 0 || f1 != crypt.Uint64(alpha[:]) {
		return nil, fmt.Errorf("%w: malformed start block", blockdoc.ErrIntegrity)
	}
	var st ringState
	st.r0 = f0
	expected := f3
	n := len(records)

	// Opening the records — the wide-PRP inversion — is the expensive step
	// and is independent per record: the reference kernel inverts one
	// record at a time, the batched kernel one tile at a time, fanned out
	// above the crossover threshold. The ring verification is inherently
	// sequential (each record's nonce must equal the previous record's
	// next pointer), so it runs as a serial pass over the opened fields.
	a := newArena(n)
	pts := make([]byte, n*recordBytes)
	if parallel.UseSerial(n, c.workers) {
		for i, rec := range records {
			g0, g1, g2, g3, err := c.openRecord(rec)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			pt := pts[i*recordBytes : (i+1)*recordBytes]
			crypt.PutUint64(pt[0:8], g0)
			crypt.PutUint64(pt[8:16], g1)
			crypt.PutUint64(pt[16:24], g2)
			crypt.PutUint64(pt[24:32], g3)
			copy(a.recs[i*recordBytes:(i+1)*recordBytes], rec)
		}
	} else {
		w := parallel.Plan(n, c.workers, c.threshold)
		err := parallel.BatchRange(n, w, func(_, lo, hi int) error {
			return c.openBatch(records, pts, a, lo, hi)
		})
		if err != nil {
			return nil, err
		}
	}

	st.xorAllR = st.r0
	blocks := make([]*blockdoc.Block, n)
	for i := 0; i < n; i++ {
		pt := pts[i*recordBytes : (i+1)*recordBytes]
		ri := crypt.Uint64(pt[0:8])
		d := crypt.Uint64(pt[8:16])
		typ, count, rest := unpackMeta(crypt.Uint64(pt[16:24]))
		next := crypt.Uint64(pt[24:32])
		if typ != typeData || rest != 0 || count < 1 || count > maxChars {
			return nil, fmt.Errorf("%w: record %d malformed", blockdoc.ErrIntegrity, i)
		}
		if ri != expected {
			return nil, fmt.Errorf("%w: record %d breaks the nonce chain", blockdoc.ErrIntegrity, i)
		}
		if !bytes.Equal(pt[8+count:16], zeroPad[:8-count]) {
			return nil, fmt.Errorf("%w: record %d has nonzero padding", blockdoc.ErrIntegrity, i)
		}
		chars := a.charSlot(i, count)
		copy(chars, pt[8:8+count])
		a.slab[i] = blockdoc.Block{Chars: chars, Record: a.rec(i), Nonce: ri}
		blocks[i] = &a.slab[i]
		st.xorAllR ^= ri
		st.xorRTail ^= ri
		st.xorD ^= d
		expected = next
	}
	if expected != st.r0 {
		return nil, fmt.Errorf("%w: nonce ring does not close", blockdoc.ErrIntegrity)
	}
	if trailer == nil {
		return nil, fmt.Errorf("%w: missing checksum block", blockdoc.ErrIntegrity)
	}
	t0, t1, t2, t3, err := c.openRecord(trailer)
	if err != nil {
		return nil, err
	}
	if t0 != st.xorAllR || t1 != st.xorD || t2 != uint64(n) || t3 != st.xorRTail {
		return nil, fmt.Errorf("%w: checksum block mismatch", blockdoc.ErrIntegrity)
	}

	st.count = uint64(n)
	c.publish(st)
	return blocks, nil
}

// zeroPad backs the constant zero-padding comparisons of the verify pass.
var zeroPad [8]byte

// Splice implements blockdoc.Codec. The replacement blocks are chained
// between the surviving neighbors: the left neighbor (or the start block,
// when the edit touches the document head) is re-encrypted to point at the
// first new nonce, the last new block points at the right neighbor's nonce
// (or r0, closing the ring), and the checksum aggregates are updated by
// XOR-ing the removed blocks out and the new blocks in.
func (c *Codec) Splice(left *blockdoc.Block, removed []*blockdoc.Block, chunks [][]byte, right *blockdoc.Block) (
	added []*blockdoc.Block, newLeftRecord, newPrefix, newTrailer []byte, err error) {
	st := c.snapshot()
	for _, b := range removed {
		st.xorAllR ^= b.Nonce
		st.xorRTail ^= b.Nonce
		st.xorD ^= padChars(b.Chars)
		st.count--
	}

	rightNonce := st.r0
	if right != nil {
		rightNonce = right.Nonce
	}

	n := len(chunks)
	var ris []uint64
	st.count += uint64(n)

	added = make([]*blockdoc.Block, n)
	if parallel.UseSerial(n, c.workers) {
		ris = make([]uint64, n)
		for i := range ris {
			ris[i] = c.nonces.Nonce64()
		}
		for i, ch := range chunks {
			next := rightNonce
			if i+1 < n {
				next = ris[i+1]
			}
			rec, err := c.encryptData(ch, ris[i], next)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			own := make([]byte, len(ch))
			copy(own, ch)
			added[i] = &blockdoc.Block{Chars: own, Record: rec, Nonce: ris[i]}
			st.xorAllR ^= ris[i]
			st.xorRTail ^= ris[i]
			st.xorD ^= padChars(ch)
		}
	} else {
		rp := getRis(n)
		defer risPool.Put(rp)
		ris = *rp
		crypt.FillNonces(c.nonces, ris)
		a := newArena(n)
		w := parallel.Plan(n, c.workers, c.threshold)
		aggs := make([]aggPair, w)
		// encryptBatch chains block i to ris[i+1] and closes the run on
		// r0; here the run must close on the right neighbor instead, so
		// splice the neighbor's nonce in via the r0 parameter.
		err = parallel.BatchRange(n, w, func(worker, lo, hi int) error {
			return c.encryptBatch(chunks, ris, rightNonce, a, added, lo, hi, &aggs[worker])
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		for i := range aggs {
			st.xorAllR ^= aggs[i].xorR
			st.xorRTail ^= aggs[i].xorR
			st.xorD ^= aggs[i].xorD
		}
	}

	first := rightNonce
	if n > 0 {
		first = ris[0]
	}
	if left != nil {
		if newLeftRecord, err = c.encryptData(left.Chars, left.Nonce, first); err != nil {
			return nil, nil, nil, nil, err
		}
	} else {
		if newPrefix, err = c.encryptStart(st.r0, first); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if newTrailer, err = c.encryptTrailer(st); err != nil {
		return nil, nil, nil, nil, err
	}
	c.publish(st)
	return added, newLeftRecord, newPrefix, newTrailer, nil
}
