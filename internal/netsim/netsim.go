// Package netsim models the network and server-processing time that the
// paper's macro-benchmarks measured with Selenium against the live 2011
// Google Documents service (§VII-C). The model is deliberately simple and
// deterministic: a fixed round-trip time, symmetric bandwidth, and
// per-byte server processing. The macro harness combines these simulated
// durations with *measured* client-side cryptography time, reproducing the
// paper's observation that "the performance impact of cryptographic
// manipulations is offset by communication and server processing time."
package netsim

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"privedit/internal/obs"
	"privedit/internal/trace"
)

// Telemetry for the simulated network. No-ops until obs.Enable().
var (
	metricDelay = obs.NewHistogram("privedit_netsim_delay_seconds",
		"Simulated network+server latency injected per request, seconds.", obs.TimeBuckets)
	metricRequests = obs.NewCounter("privedit_netsim_requests_total",
		"Requests routed through the delay transport.")
	metricBytes = obs.NewCounter("privedit_netsim_bytes_total",
		"Request+response body bytes carried over the simulated link.")
)

// Profile describes one network/server environment.
type Profile struct {
	// RTT is the round-trip latency between client and server.
	RTT time.Duration
	// BandwidthBps is the link bandwidth in bytes per second, applied to
	// each direction independently.
	BandwidthBps float64
	// ServerFixed is the fixed per-request server processing time.
	ServerFixed time.Duration
	// ServerPerByte is additional server processing per request body byte
	// (parsing, storage).
	ServerPerByte time.Duration
}

// Broadband2009 approximates the environment of the paper's experiments:
// a 2009-era US broadband connection to a loaded web service. ~80 ms RTT,
// 1 MB/s up/down, a few ms of server work per request.
func Broadband2009() Profile {
	return Profile{
		RTT:           80 * time.Millisecond,
		BandwidthBps:  1 << 20,
		ServerFixed:   5 * time.Millisecond,
		ServerPerByte: 20 * time.Nanosecond,
	}
}

// transferTime returns the serialization delay for n bytes.
func (p Profile) transferTime(n int) time.Duration {
	if p.BandwidthBps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.BandwidthBps * float64(time.Second))
}

// RequestTime returns the end-to-end latency of one request/response
// exchange carrying the given body sizes, excluding client-side compute.
func (p Profile) RequestTime(requestBytes, responseBytes int) time.Duration {
	return p.RTT +
		p.transferTime(requestBytes) +
		p.ServerFixed +
		time.Duration(requestBytes)*p.ServerPerByte +
		p.transferTime(responseBytes)
}

// String summarizes the profile.
func (p Profile) String() string {
	return fmt.Sprintf("rtt=%v bw=%.0fB/s serverFixed=%v", p.RTT, p.BandwidthBps, p.ServerFixed)
}

// DelayTransport is an http.RoundTripper middleware that *actually sleeps*
// for the profile's simulated latency, for interactive demos and
// integration tests that want realistic pacing. Benchmarks use
// Profile.RequestTime arithmetic instead of sleeping.
type DelayTransport struct {
	// Base performs the real request. Defaults to http.DefaultTransport.
	Base http.RoundTripper
	// Profile supplies the delays.
	Profile Profile
	// Scale divides every delay (e.g. 100 for a 100× faster demo). 0
	// means 1.
	Scale int
}

// RoundTrip implements http.RoundTripper. The simulated delay honors the
// request's context: a cancelled or timed-out request stops sleeping
// immediately and surfaces the context error, so callers can bound
// end-to-end latency even though the "network" is a sleep.
func (d *DelayTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := d.Base
	if base == nil {
		base = http.DefaultTransport
	}
	reqBytes := 0
	if req.ContentLength > 0 {
		reqBytes = int(req.ContentLength)
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	respBytes := 0
	if resp.ContentLength > 0 {
		respBytes = int(resp.ContentLength)
	}
	delay := d.Profile.RequestTime(reqBytes, respBytes)
	if d.Scale > 1 {
		delay /= time.Duration(d.Scale)
	}
	metricRequests.Inc()
	metricBytes.Add(int64(reqBytes + respBytes))
	metricDelay.ObserveExemplar(delay.Seconds(), trace.TraceID(req.Context()))
	_, sp := trace.Start(req.Context(), trace.SpanNetDelay)
	sp.AnnotateInt("delay_us", delay.Microseconds())
	if err := sleepCtx(req.Context(), delay); err != nil {
		sp.End()
		resp.Body.Close()
		return nil, err
	}
	sp.End()
	return resp, nil
}

// sleepCtx sleeps for d or until ctx is done, returning the context error
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
