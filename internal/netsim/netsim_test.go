package netsim

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestTimeComponents(t *testing.T) {
	p := Profile{
		RTT:           100 * time.Millisecond,
		BandwidthBps:  1000, // 1000 B/s: 1 ms per byte
		ServerFixed:   10 * time.Millisecond,
		ServerPerByte: time.Microsecond,
	}
	got := p.RequestTime(1000, 500)
	// rtt 100ms + up 1000ms + fixed 10ms + perbyte 1ms + down 500ms
	want := 100*time.Millisecond + 1000*time.Millisecond + 10*time.Millisecond +
		1000*time.Microsecond + 500*time.Millisecond
	if got != want {
		t.Errorf("RequestTime = %v, want %v", got, want)
	}
}

func TestRequestTimeMonotoneInSize(t *testing.T) {
	p := Broadband2009()
	small := p.RequestTime(100, 100)
	big := p.RequestTime(100000, 100)
	if big <= small {
		t.Errorf("bigger request not slower: %v <= %v", big, small)
	}
}

func TestZeroBandwidthMeansNoTransferTime(t *testing.T) {
	p := Profile{RTT: time.Millisecond}
	if got := p.RequestTime(1<<20, 1<<20); got != time.Millisecond {
		t.Errorf("RequestTime with no bandwidth model = %v", got)
	}
}

func TestBroadband2009Sane(t *testing.T) {
	p := Broadband2009()
	// A small save should take on the order of 100 ms, not seconds.
	d := p.RequestTime(2000, 200)
	if d < 50*time.Millisecond || d > time.Second {
		t.Errorf("typical save latency = %v, outside sanity range", d)
	}
	if !strings.Contains(p.String(), "rtt=") {
		t.Error("String() not descriptive")
	}
}

func TestDelayTransportSleepsAndForwards(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	defer ts.Close()

	profile := Profile{RTT: 30 * time.Millisecond}
	client := &http.Client{Transport: &DelayTransport{Profile: profile}}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Errorf("body = %q", body)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("elapsed %v; delay not applied", elapsed)
	}
}

func TestDelayTransportScale(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	profile := Profile{RTT: 500 * time.Millisecond}
	client := &http.Client{Transport: &DelayTransport{Profile: profile, Scale: 100}}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("scaled delay too long: %v", elapsed)
	}
}
