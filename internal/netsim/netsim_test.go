package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestTimeComponents(t *testing.T) {
	p := Profile{
		RTT:           100 * time.Millisecond,
		BandwidthBps:  1000, // 1000 B/s: 1 ms per byte
		ServerFixed:   10 * time.Millisecond,
		ServerPerByte: time.Microsecond,
	}
	got := p.RequestTime(1000, 500)
	// rtt 100ms + up 1000ms + fixed 10ms + perbyte 1ms + down 500ms
	want := 100*time.Millisecond + 1000*time.Millisecond + 10*time.Millisecond +
		1000*time.Microsecond + 500*time.Millisecond
	if got != want {
		t.Errorf("RequestTime = %v, want %v", got, want)
	}
}

func TestRequestTimeMonotoneInSize(t *testing.T) {
	p := Broadband2009()
	small := p.RequestTime(100, 100)
	big := p.RequestTime(100000, 100)
	if big <= small {
		t.Errorf("bigger request not slower: %v <= %v", big, small)
	}
}

func TestZeroBandwidthMeansNoTransferTime(t *testing.T) {
	p := Profile{RTT: time.Millisecond}
	if got := p.RequestTime(1<<20, 1<<20); got != time.Millisecond {
		t.Errorf("RequestTime with no bandwidth model = %v", got)
	}
}

func TestBroadband2009Sane(t *testing.T) {
	p := Broadband2009()
	// A small save should take on the order of 100 ms, not seconds.
	d := p.RequestTime(2000, 200)
	if d < 50*time.Millisecond || d > time.Second {
		t.Errorf("typical save latency = %v, outside sanity range", d)
	}
	if !strings.Contains(p.String(), "rtt=") {
		t.Error("String() not descriptive")
	}
}

func TestDelayTransportSleepsAndForwards(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	defer ts.Close()

	profile := Profile{RTT: 30 * time.Millisecond}
	client := &http.Client{Transport: &DelayTransport{Profile: profile}}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Errorf("body = %q", body)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("elapsed %v; delay not applied", elapsed)
	}
}

func TestTransferTimeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		n    int
	}{
		{"zero bandwidth", Profile{BandwidthBps: 0}, 1 << 20},
		{"negative bandwidth", Profile{BandwidthBps: -100}, 1 << 20},
		{"zero-length body", Profile{BandwidthBps: 1000}, 0},
		{"negative length", Profile{BandwidthBps: 1000}, -5},
	}
	for _, tc := range cases {
		if got := tc.p.transferTime(tc.n); got != 0 {
			t.Errorf("%s: transferTime = %v, want 0", tc.name, got)
		}
	}
}

func TestRequestTimeZeroBodies(t *testing.T) {
	p := Broadband2009()
	// An empty exchange still pays RTT and fixed server time, nothing else.
	if got, want := p.RequestTime(0, 0), p.RTT+p.ServerFixed; got != want {
		t.Errorf("RequestTime(0,0) = %v, want %v", got, want)
	}
}

func TestDelayTransportCancelMidTransfer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	defer ts.Close()

	// A profile whose delay is far longer than the context deadline: the
	// sleep must abort mid-transfer and surface the context error.
	profile := Profile{RTT: 10 * time.Second}
	client := &http.Client{Transport: &DelayTransport{Profile: profile}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatal("expected context error from cancelled transfer delay")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; transfer delay did not honor the context", elapsed)
	}
}

func TestDelayTransportScale(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	profile := Profile{RTT: 500 * time.Millisecond}
	client := &http.Client{Transport: &DelayTransport{Profile: profile, Scale: 100}}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("scaled delay too long: %v", elapsed)
	}
}
