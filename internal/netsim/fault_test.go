package netsim

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faultProbe runs n GET requests for docID through a fresh transport over
// the given profile and returns the transport plus per-request outcomes.
func faultProbe(t *testing.T, profile FaultProfile, docID string, n int) (*FaultTransport, []string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload-for-"+r.URL.Query().Get("docID"))
	}))
	t.Cleanup(ts.Close)

	ft := NewFaultTransport(ts.Client().Transport, profile)
	client := &http.Client{Transport: ft}
	outcomes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := client.Get(ts.URL + "/Doc?docID=" + url.QueryEscape(docID))
		switch {
		case err != nil:
			outcomes = append(outcomes, "err:"+lastColonPart(err.Error()))
		case resp.StatusCode != http.StatusOK:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes = append(outcomes, "status:"+resp.Status)
		default:
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) == "payload-for-"+docID {
				outcomes = append(outcomes, "ok")
			} else {
				outcomes = append(outcomes, "corrupt")
			}
		}
	}
	return ft, outcomes
}

func lastColonPart(s string) string {
	if i := strings.LastIndex(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

func stormProfile(seed int64) FaultProfile {
	return FaultProfile{
		Seed:         seed,
		DropRate:     0.10,
		Error5xxRate: 0.10,
		ThrottleRate: 0.05,
		TimeoutRate:  0.05,
		CorruptRate:  0.10,
		TimeoutDelay: time.Microsecond,
	}
}

func TestFaultDeterminismSameSeed(t *testing.T) {
	ft1, out1 := faultProbe(t, stormProfile(42), "doc-a", 200)
	ft2, out2 := faultProbe(t, stormProfile(42), "doc-a", 200)

	if ft1.Stats() != ft2.Stats() {
		t.Errorf("same seed, different stats:\n%+v\n%+v", ft1.Stats(), ft2.Stats())
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("request %d: outcome %q vs %q — decisions not deterministic", i, out1[i], out2[i])
		}
	}
	if ft1.Stats().Injected() == 0 {
		t.Error("storm profile injected nothing over 200 requests")
	}
}

func TestFaultDeterminismDifferentSeedsDiffer(t *testing.T) {
	_, out1 := faultProbe(t, stormProfile(1), "doc-a", 200)
	_, out2 := faultProbe(t, stormProfile(2), "doc-a", 200)
	same := true
	for i := range out1 {
		if out1[i] != out2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("200 requests under different seeds produced identical outcomes")
	}
}

// Two goroutines hammering distinct documents must produce the same total
// stats as the runs executed back to back: decisions key on (shape,
// occurrence), not on global arrival order.
func TestFaultDeterminismUnderConcurrency(t *testing.T) {
	profile := stormProfile(7)

	serial := NewFaultTransport(nil, profile)
	runDoc := func(ft *FaultTransport, ts *httptest.Server, docID string, n int) {
		client := &http.Client{Transport: ft}
		for i := 0; i < n; i++ {
			resp, err := client.Get(ts.URL + "/Doc?docID=" + docID)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "stable body")
	}))
	defer ts.Close()
	serial.Base = ts.Client().Transport
	runDoc(serial, ts, "doc-a", 100)
	runDoc(serial, ts, "doc-b", 100)

	concurrent := NewFaultTransport(ts.Client().Transport, profile)
	var wg sync.WaitGroup
	for _, doc := range []string{"doc-a", "doc-b"} {
		wg.Add(1)
		go func(doc string) {
			defer wg.Done()
			runDoc(concurrent, ts, doc, 100)
		}(doc)
	}
	wg.Wait()

	if serial.Stats() != concurrent.Stats() {
		t.Errorf("stats depend on interleaving:\nserial     %+v\nconcurrent %+v",
			serial.Stats(), concurrent.Stats())
	}
}

func TestFaultDocIDFromFormBody(t *testing.T) {
	// POST bodies carry the docID; the transport must read it for the
	// shape key and then restore the body so the server still sees it.
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		got.Store(r.PostForm.Get("docID"))
	}))
	defer ts.Close()

	ft := NewFaultTransport(ts.Client().Transport, FaultProfile{Seed: 3})
	client := &http.Client{Transport: ft}
	form := url.Values{"docID": {"the-doc"}, "docContents": {"payload"}}
	resp, err := client.PostForm(ts.URL+"/Doc", form)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if got.Load() != "the-doc" {
		t.Errorf("server saw docID %q; body not restored after key extraction", got.Load())
	}
}

func TestFaultDisabledIsTransparent(t *testing.T) {
	profile := FaultProfile{Seed: 1, DropRate: 1} // would drop everything
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	ft := NewFaultTransport(ts.Client().Transport, profile)
	ft.SetEnabled(false)
	client := &http.Client{Transport: ft}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("disabled transport failed request: %v", err)
	}
	resp.Body.Close()
	if s := ft.Stats(); s.Requests != 0 || s.Injected() != 0 {
		t.Errorf("disabled transport counted: %+v", s)
	}

	ft.SetEnabled(true)
	if _, err := client.Get(ts.URL); err == nil {
		t.Error("DropRate=1 transport let a request through after SetEnabled(true)")
	}
}

func TestFaultCorruptionDamagesBody(t *testing.T) {
	profile := FaultProfile{Seed: 5, CorruptRate: 1, CorruptBytes: 4}
	ft, outcomes := faultProbe(t, profile, "doc-c", 20)
	for i, o := range outcomes {
		if o != "corrupt" {
			t.Errorf("request %d: outcome %q, want corrupt", i, o)
		}
	}
	if got := ft.Stats().Corruptions; got != 20 {
		t.Errorf("Corruptions = %d, want 20", got)
	}
}

func TestCorruptBodyUsesInvalidByte(t *testing.T) {
	b := []byte(strings.Repeat("A", 64))
	corruptBody(b, 12345, 3)
	n := strings.Count(string(b), "\x7f")
	if n == 0 || n > 3 {
		t.Errorf("corruptBody wrote %d 0x7f bytes, want 1..3", n)
	}
	// Zero-length bodies must not panic (satellite edge case).
	corruptBody(nil, 12345, 3)
}

func TestFaultErrorClassification(t *testing.T) {
	timeout := &FaultError{Kind: "timeout"}
	if !timeout.Timeout() || !timeout.Temporary() {
		t.Error("timeout fault must report Timeout() and Temporary()")
	}
	drop := &FaultError{Kind: "drop"}
	if drop.Timeout() {
		t.Error("drop fault must not report Timeout()")
	}
	if !strings.Contains(drop.Error(), "drop") {
		t.Errorf("Error() = %q, kind missing", drop.Error())
	}
}

func TestFaultTimeoutsRespectContext(t *testing.T) {
	profile := FaultProfile{Seed: 9, TimeoutRate: 1, TimeoutDelay: time.Minute}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ft := NewFaultTransport(ts.Client().Transport, profile)
	client := &http.Client{Transport: ft}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/Doc?docID=x", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("expected error from injected timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context deadline", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("injected timeout ignored the request context")
	}
}

func TestFaultDropResponseStillReachesServer(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()

	profile := FaultProfile{Seed: 11, DropResponseRate: 1}
	ft := NewFaultTransport(ts.Client().Transport, profile)
	client := &http.Client{Transport: ft}
	_, err := client.Get(ts.URL + "/Doc?docID=x")
	if err == nil {
		t.Fatal("drop_response must fail the caller")
	}
	if hits.Load() != 1 {
		t.Errorf("server hits = %d; drop_response must let the request through", hits.Load())
	}
	if ft.Stats().DropResponses != 1 {
		t.Errorf("DropResponses = %d, want 1", ft.Stats().DropResponses)
	}
}

func TestFaultPartitionWindows(t *testing.T) {
	profile := FaultProfile{
		Seed:       13,
		Partitions: []Partition{{Begin: 100 * time.Millisecond, End: 200 * time.Millisecond}},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ft := NewFaultTransport(ts.Client().Transport, profile)
	clock := time.Unix(1700000000, 0)
	var mu sync.Mutex
	ft.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	client := &http.Client{Transport: ft}

	get := func() error {
		resp, err := client.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}
	if err := get(); err != nil { // t=0, before the window
		t.Fatalf("pre-window request failed: %v", err)
	}
	advance(150 * time.Millisecond)
	if err := get(); err == nil { // t=150ms, inside
		t.Fatal("request inside partition window succeeded")
	}
	advance(100 * time.Millisecond)
	if err := get(); err != nil { // t=250ms, after
		t.Fatalf("post-window request failed: %v", err)
	}
	if ft.Stats().Partitioned != 1 {
		t.Errorf("Partitioned = %d, want 1", ft.Stats().Partitioned)
	}
}

func TestFailureRateSumsLadder(t *testing.T) {
	p := FaultProfile{DropRate: 0.1, DropResponseRate: 0.1, Error5xxRate: 0.1,
		ThrottleRate: 0.1, TimeoutRate: 0.1, CorruptRate: 0.9, JitterRate: 0.9}
	if got := p.FailureRate(); got < 0.499 || got > 0.501 {
		t.Errorf("FailureRate = %v, want 0.5 (corrupt/jitter excluded)", got)
	}
}

func TestFaultRatesRoughlyHonored(t *testing.T) {
	// With a 30% 5xx rate over 400 requests, expect a count in a generous
	// band around 120 — this pins that unit() maps onto [0,1) sanely.
	profile := FaultProfile{Seed: 17, Error5xxRate: 0.3}
	ft, _ := faultProbe(t, profile, "doc-r", 400)
	got := ft.Stats().Errors5xx
	if got < 70 || got > 170 {
		t.Errorf("Errors5xx = %d over 400 requests at rate 0.3", got)
	}
}
