// Fault injection: the untrusted cloud of the paper's threat model is not
// just curious, it is *unreliable*. The prototype mediated live Google
// Docs traffic that could stall, fail, or return garbage; this file makes
// the simulated service misbehave the same way, on demand and
// reproducibly. A FaultTransport sits between the mediating extension and
// the (possibly delay-simulated) server and injects request drops, 5xx and
// 429 responses, timeouts, response-body corruption, latency jitter
// spikes, and timed partition windows.
//
// Determinism contract: every fault decision is a pure function of
// (Seed, method, path, docID, n) where n counts how many times that
// request shape has been seen. Concurrent sessions editing *distinct*
// documents therefore draw identical fault sequences run after run, no
// matter how the scheduler interleaves them — which is what lets the chaos
// harness pin byte-identical fault counts in a test. Partition windows are
// the one wall-clock-driven fault; runs that need strict determinism leave
// them empty.
package netsim

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privedit/internal/obs"
	"privedit/internal/trace"
)

// Telemetry for the fault layer. No-ops until obs.Enable().
var (
	metricFaults = func(kind string) *obs.Counter {
		return obs.NewCounter("privedit_netsim_faults_total",
			"Faults injected by the simulated network, by kind.", "kind", kind)
	}
	metricFaultDrop      = metricFaults("drop")
	metricFaultDropResp  = metricFaults("drop_response")
	metricFaultErr5xx    = metricFaults("err_5xx")
	metricFaultThrottle  = metricFaults("throttle_429")
	metricFaultTimeout   = metricFaults("timeout")
	metricFaultCorrupt   = metricFaults("corrupt")
	metricFaultJitter    = metricFaults("jitter")
	metricFaultPartition = metricFaults("partition")

	metricFaultRequests = obs.NewCounter("privedit_netsim_fault_requests_total",
		"Requests routed through the fault-injection transport while it was enabled.")
)

// FaultProfile parameterizes a FaultTransport. Each rate is a probability
// in [0,1]; the drop/5xx/429/timeout/corrupt rates are mutually exclusive
// per request (one uniform draw walks the ladder in that order), so their
// sum must stay ≤ 1. Jitter is drawn independently and stacks on top of
// whatever else happens.
type FaultProfile struct {
	// Seed drives every fault decision. Two transports with the same seed
	// facing the same request sequence inject identical faults.
	Seed int64 `json:"seed"`

	// DropRate is the probability the request is dropped before reaching
	// the server (connection reset on send).
	DropRate float64 `json:"drop_rate"`
	// DropResponseRate is the probability the request reaches the server —
	// and takes effect there — but the response is lost on the way back.
	// This is the nastiest case for a retrying client: the retry may find
	// its work already applied.
	DropResponseRate float64 `json:"drop_response_rate"`
	// Error5xxRate is the probability of an injected 500 response.
	Error5xxRate float64 `json:"error_5xx_rate"`
	// ThrottleRate is the probability of an injected 429 response.
	ThrottleRate float64 `json:"throttle_rate"`
	// TimeoutRate is the probability the request hangs for TimeoutDelay
	// and then fails with a timeout error.
	TimeoutRate float64 `json:"timeout_rate"`
	// CorruptRate is the probability the response body is corrupted in
	// transit (CorruptBytes bytes overwritten at seeded positions).
	CorruptRate float64 `json:"corrupt_rate"`

	// JitterRate is the probability of an added latency spike of
	// JitterDelay (independent of the fault ladder above).
	JitterRate float64 `json:"jitter_rate"`
	// JitterDelay is the spike size. 0 means 25ms.
	JitterDelay time.Duration `json:"jitter_delay_ns"`
	// TimeoutDelay is how long an injected timeout hangs before failing.
	// 0 means 5ms.
	TimeoutDelay time.Duration `json:"timeout_delay_ns"`
	// CorruptBytes is how many response bytes a corruption overwrites.
	// 0 means 3.
	CorruptBytes int `json:"corrupt_bytes"`

	// Partitions are full-outage windows measured from the transport's
	// first request: every request inside a window fails as if the network
	// were unreachable. Wall-clock driven, so leave empty in runs that
	// must be strictly deterministic.
	Partitions []Partition `json:"partitions,omitempty"`
}

// Partition is one timed outage window, relative to the transport's first
// request.
type Partition struct {
	Begin time.Duration `json:"begin_ns"`
	End   time.Duration `json:"end_ns"`
}

// FailureRate returns the combined probability that a request fails
// outright (drop, lost response, 5xx, 429, or timeout), ignoring
// corruption, jitter, and partitions.
func (p FaultProfile) FailureRate() float64 {
	return p.DropRate + p.DropResponseRate + p.Error5xxRate + p.ThrottleRate + p.TimeoutRate
}

func (p FaultProfile) jitterDelay() time.Duration {
	if p.JitterDelay <= 0 {
		return 25 * time.Millisecond
	}
	return p.JitterDelay
}

func (p FaultProfile) timeoutDelay() time.Duration {
	if p.TimeoutDelay <= 0 {
		return 5 * time.Millisecond
	}
	return p.TimeoutDelay
}

func (p FaultProfile) corruptBytes() int {
	if p.CorruptBytes <= 0 {
		return 3
	}
	return p.CorruptBytes
}

// FaultStats counts what a FaultTransport did. All fields are totals since
// the transport was created; the JSON form is the chaos artifact's fault
// section, and for a deterministic profile it is byte-identical across
// runs with the same seed.
type FaultStats struct {
	Requests      int64 `json:"requests"`
	Drops         int64 `json:"drops"`
	DropResponses int64 `json:"drop_responses"`
	Errors5xx     int64 `json:"errors_5xx"`
	Throttles     int64 `json:"throttles_429"`
	Timeouts      int64 `json:"timeouts"`
	Corruptions   int64 `json:"corruptions"`
	JitterSpikes  int64 `json:"jitter_spikes"`
	Partitioned   int64 `json:"partitioned"`
}

// Injected returns the total number of injected faults, jitter included.
func (s FaultStats) Injected() int64 {
	return s.Drops + s.DropResponses + s.Errors5xx + s.Throttles +
		s.Timeouts + s.Corruptions + s.JitterSpikes + s.Partitioned
}

// FaultError is the transport-level error a FaultTransport injects for
// drops, timeouts, and partitions. It implements net.Error's Timeout so
// callers can classify it the way they would a real *url.Error.
type FaultError struct {
	Kind string // "drop", "drop_response", "timeout", "partition"
}

// Error implements error.
func (e *FaultError) Error() string { return "netsim: injected fault: " + e.Kind }

// Timeout reports whether the fault models a timeout.
func (e *FaultError) Timeout() bool { return e.Kind == "timeout" }

// Temporary reports whether retrying could help. All injected faults are
// transient by construction.
func (e *FaultError) Temporary() bool { return true }

// FaultTransport is an http.RoundTripper middleware that injects the
// profile's faults. It is safe for concurrent use. Wrap it around the
// server transport (or around a DelayTransport) and install the result as
// the mediating extension's base.
type FaultTransport struct {
	// Base performs the real request. Defaults to http.DefaultTransport.
	Base http.RoundTripper
	// Profile supplies the fault rates and the seed.
	Profile FaultProfile

	enabled  atomic.Bool
	initOnce sync.Once
	start    time.Time
	now      func() time.Time // test hook; nil means time.Now

	mu  sync.Mutex
	seq map[uint64]uint64 // request-shape key -> occurrence count

	requests      atomic.Int64
	drops         atomic.Int64
	dropResponses atomic.Int64
	errors5xx     atomic.Int64
	throttles     atomic.Int64
	timeouts      atomic.Int64
	corruptions   atomic.Int64
	jitterSpikes  atomic.Int64
	partitioned   atomic.Int64
}

// NewFaultTransport wraps base with the profile's faults, enabled.
func NewFaultTransport(base http.RoundTripper, profile FaultProfile) *FaultTransport {
	ft := &FaultTransport{Base: base, Profile: profile}
	ft.enabled.Store(true)
	return ft
}

// SetEnabled turns fault injection on or off. While disabled the transport
// forwards requests untouched and counts nothing, which is how harnesses
// seed and verify state around a measured fault storm.
func (ft *FaultTransport) SetEnabled(on bool) { ft.enabled.Store(on) }

// Stats returns a snapshot of the fault counters.
func (ft *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Requests:      ft.requests.Load(),
		Drops:         ft.drops.Load(),
		DropResponses: ft.dropResponses.Load(),
		Errors5xx:     ft.errors5xx.Load(),
		Throttles:     ft.throttles.Load(),
		Timeouts:      ft.timeouts.Load(),
		Corruptions:   ft.corruptions.Load(),
		JitterSpikes:  ft.jitterSpikes.Load(),
		Partitioned:   ft.partitioned.Load(),
	}
}

// splitmix64 is the SplitMix64 mixer: a tiny, well-distributed,
// allocation-free PRNG step. Used instead of math/rand so fault decisions
// are pure functions of their key (and the nonce-source analyzer stays
// trivially satisfied).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a mixed word onto [0,1).
func unit(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// fnv64a hashes the parts with FNV-1a.
func fnv64a(parts ...string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0xff // part separator so ("ab","c") != ("a","bc")
		h *= prime
	}
	return h
}

// requestKey derives the stable shape key of a request: method, path, and
// the document id (from the query for GETs, from the form body for
// POSTs). Bodies contain ciphertext that varies run to run, so only the
// docID field — which is stable — participates. The body is restored on
// the request afterwards.
func requestKey(req *http.Request) (uint64, error) {
	docID := req.URL.Query().Get("docID")
	if docID == "" && req.Body != nil {
		raw, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return 0, err
		}
		req.Body = io.NopCloser(strings.NewReader(string(raw)))
		if form, err := url.ParseQuery(string(raw)); err == nil {
			docID = form.Get("docID")
		}
	}
	return fnv64a(req.Method, req.URL.Path, docID), nil
}

// decide draws the request's fault word: the occurrence counter for its
// shape key advances under the lock, everything else is pure arithmetic.
func (ft *FaultTransport) decide(req *http.Request) (uint64, error) {
	key, err := requestKey(req)
	if err != nil {
		return 0, err
	}
	ft.mu.Lock()
	if ft.seq == nil {
		ft.seq = make(map[uint64]uint64)
	}
	n := ft.seq[key]
	ft.seq[key] = n + 1
	ft.mu.Unlock()
	return splitmix64((key ^ splitmix64(uint64(ft.Profile.Seed))) + n*0x9e3779b97f4a7c15), nil
}

// inPartition reports whether the request falls inside a timed outage
// window.
func (ft *FaultTransport) inPartition() bool {
	if len(ft.Profile.Partitions) == 0 {
		return false
	}
	now := time.Now
	if ft.now != nil {
		now = ft.now
	}
	ft.initOnce.Do(func() { ft.start = now() })
	elapsed := now().Sub(ft.start)
	for _, w := range ft.Profile.Partitions {
		if elapsed >= w.Begin && elapsed < w.End {
			return true
		}
	}
	return false
}

// RoundTrip implements http.RoundTripper: one seeded decision per request
// selects at most one ladder fault, plus an independent jitter draw.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := ft.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if !ft.enabled.Load() {
		return base.RoundTrip(req)
	}
	ft.requests.Add(1)
	metricFaultRequests.Inc()

	if ft.inPartition() {
		ft.partitioned.Add(1)
		metricFaultPartition.Inc()
		annotateFault(req, "partition")
		return nil, &FaultError{Kind: "partition"}
	}

	word, err := ft.decide(req)
	if err != nil {
		return nil, fmt.Errorf("netsim: fault key: %w", err)
	}
	p := ft.Profile
	u := unit(word)

	// Independent jitter draw from a re-mixed word.
	if p.JitterRate > 0 && unit(splitmix64(word)) < p.JitterRate {
		ft.jitterSpikes.Add(1)
		metricFaultJitter.Inc()
		annotateFault(req, "jitter")
		if err := sleepCtx(req.Context(), p.jitterDelay()); err != nil {
			return nil, err
		}
	}

	// Walk the mutually-exclusive fault ladder.
	cut := p.DropRate
	if u < cut {
		ft.drops.Add(1)
		metricFaultDrop.Inc()
		annotateFault(req, "drop")
		return nil, &FaultError{Kind: "drop"}
	}
	if cut += p.DropResponseRate; u < cut {
		// The request takes effect server-side; only the response is lost.
		resp, err := base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		ft.dropResponses.Add(1)
		metricFaultDropResp.Inc()
		annotateFault(req, "drop_response")
		return nil, &FaultError{Kind: "drop_response"}
	}
	if cut += p.Error5xxRate; u < cut {
		ft.errors5xx.Add(1)
		metricFaultErr5xx.Inc()
		annotateFault(req, "err_5xx")
		return synthesizeFault(req, http.StatusInternalServerError, "netsim: injected server error"), nil
	}
	if cut += p.ThrottleRate; u < cut {
		ft.throttles.Add(1)
		metricFaultThrottle.Inc()
		annotateFault(req, "throttle_429")
		return synthesizeFault(req, http.StatusTooManyRequests, "netsim: injected throttle"), nil
	}
	if cut += p.TimeoutRate; u < cut {
		ft.timeouts.Add(1)
		metricFaultTimeout.Inc()
		annotateFault(req, "timeout")
		if err := sleepCtx(req.Context(), p.timeoutDelay()); err != nil {
			return nil, err
		}
		return nil, &FaultError{Kind: "timeout"}
	}

	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	if cut += p.CorruptRate; u < cut {
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		corruptBody(raw, word, p.corruptBytes())
		resp.Body = io.NopCloser(strings.NewReader(string(raw)))
		resp.ContentLength = int64(len(raw))
		resp.Header.Del("Content-Length")
		ft.corruptions.Add(1)
		metricFaultCorrupt.Inc()
		annotateFault(req, "corrupt")
	}
	return resp, nil
}

// annotateFault records an injected fault on the request's current trace
// span (the mediator's retry or phase span), so a trace shows not just
// that an attempt failed but which fault the simulated network injected.
func annotateFault(req *http.Request, kind string) {
	trace.Current(req.Context()).Annotate("fault", kind)
}

// corruptBody overwrites k bytes at word-derived positions with 0x7f —
// a byte no Base32 alphabet, form encoding, or stego word list produces,
// so the damage is never silently valid.
func corruptBody(b []byte, word uint64, k int) {
	if len(b) == 0 {
		return
	}
	x := word
	for i := 0; i < k; i++ {
		x = splitmix64(x)
		b[x%uint64(len(b))] = 0x7f
	}
}

// synthesizeFault builds an injected HTTP error response.
func synthesizeFault(req *http.Request, status int, msg string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(msg)),
		ContentLength: int64(len(msg)),
		Request:       req,
	}
}
