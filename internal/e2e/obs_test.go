package e2e

import (
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/netsim"
	"privedit/internal/obs"
)

// TestMetricsMoveAcrossStack runs a full Create → SetText → Save →
// Insert → Save → Load session through the mediating extension against an
// instrumented server and asserts the metric families every layer is
// supposed to feed all actually moved: HTTP middleware, mediator, core
// cryptography, and the block-document store.
func TestMetricsMoveAcrossStack(t *testing.T) {
	obs.Enable()

	sum := func(name string) float64 { return obs.Default.Sum(name) }
	families := []string{
		"privedit_http_requests_total",
		"privedit_http_request_seconds",
		"privedit_http_request_bytes_in_total",
		"privedit_http_request_bytes_out_total",
		"privedit_mediator_ops_total",
		"privedit_mediator_encrypt_seconds",
		"privedit_core_encrypt_seconds",
		"privedit_transform_delta_seconds",
		"privedit_block_splices_total",
		"privedit_block_splits_total",
		"privedit_skiplist_seek_steps",
	}
	before := make(map[string]float64, len(families))
	for _, f := range families {
		before[f] = sum(f)
	}

	server := gdocs.NewServer()
	logger := log.New(io.Discard, "", 0)
	handler := obs.Middleware(obs.Default, server, logger, func(p string) string { return p })
	ts := httptest.NewServer(handler)
	defer ts.Close()

	ext := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 7)))
	client := gdocs.NewClient(ext.Client(), ts.URL, "metrics-doc")

	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// b=8 blocks: a long document plus a mid-block insert forces at least
	// one block split, which the blockdoc counters must record.
	client.SetText(strings.Repeat("abcdefgh", 64))
	if err := client.Save(); err != nil {
		t.Fatalf("full save: %v", err)
	}
	if err := client.Insert(4, "XYZXYZXYZ"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := client.Save(); err != nil {
		t.Fatalf("delta save: %v", err)
	}

	fresh := gdocs.NewClient(mediator.New(ts.Client().Transport,
		mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 8)), nil).Client(), ts.URL, "metrics-doc")
	if err := fresh.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if fresh.Text() != client.Text() {
		t.Fatalf("fresh load disagrees with editing session")
	}

	for _, f := range families {
		if d := sum(f) - before[f]; d <= 0 {
			t.Errorf("family %s did not move (delta %v)", f, d)
		}
	}

	// The mediator must have classified at least a full save, a delta
	// save, and a load among its operations.
	for _, op := range []string{"full_encrypt", "delta_transform", "load_decrypt"} {
		if obs.Default.Value("privedit_mediator_ops_total", "op", op) < 1 {
			t.Errorf("mediator op %q never recorded", op)
		}
	}

	// Fragmentation is a ratio: after real edits it must sit in (0, 1].
	frag := obs.Default.Value("privedit_fragmentation_ratio")
	if frag <= 0 || frag > 1 {
		t.Errorf("fragmentation ratio %v outside (0, 1]", frag)
	}
}

// TestResilienceMetricsMove drives a short fault storm through the
// resilient extension and asserts the PR-4 metric families — netsim fault
// injection and mediator retry/breaker/degraded instrumentation — all
// record something.
func TestResilienceMetricsMove(t *testing.T) {
	obs.Enable()
	families := []string{
		"privedit_netsim_fault_requests_total",
		"privedit_netsim_faults_total",
		"privedit_mediator_retry_attempts_total",
		"privedit_mediator_breaker_transitions_total",
		"privedit_mediator_degraded_total",
	}
	before := make(map[string]float64, len(families))
	for _, f := range families {
		before[f] = obs.Default.Sum(f)
	}

	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	faults := netsim.NewFaultTransport(ts.Client().Transport, netsim.FaultProfile{
		Seed:         31,
		Error5xxRate: 0.5,
		TimeoutDelay: 100 * time.Microsecond,
	})
	faults.SetEnabled(false)

	ext := mediator.New(faults,
		mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 8)), nil,
		mediator.WithResilience(mediator.Resilience{
			Retry:   mediator.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
			Breaker: mediator.BreakerPolicy{TripAfter: 1, Cooldown: time.Hour, MaxCooldown: 2 * time.Hour},
		}))
	client := gdocs.NewClient(ext.Client(), ts.URL, "metrics-chaos-doc")
	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	client.SetText("instrumented fault storm content")
	if err := client.Save(); err != nil {
		t.Fatalf("seed save: %v", err)
	}

	faults.SetEnabled(true)
	for i := 0; i < 20; i++ {
		if err := client.Insert(0, "x"); err != nil {
			t.Fatal(err)
		}
		if err := client.Sync(); err != nil {
			_ = client.Load()
		}
	}
	faults.SetEnabled(false)

	for _, f := range families {
		if d := obs.Default.Sum(f) - before[f]; d <= 0 {
			t.Errorf("family %s did not move (delta %v)", f, d)
		}
	}
	if obs.Default.Value("privedit_netsim_faults_total", "kind", "err_5xx") < 1 {
		t.Error("err_5xx fault kind never recorded")
	}
}
