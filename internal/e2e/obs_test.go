package e2e

import (
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/obs"
)

// TestMetricsMoveAcrossStack runs a full Create → SetText → Save →
// Insert → Save → Load session through the mediating extension against an
// instrumented server and asserts the metric families every layer is
// supposed to feed all actually moved: HTTP middleware, mediator, core
// cryptography, and the block-document store.
func TestMetricsMoveAcrossStack(t *testing.T) {
	obs.Enable()

	sum := func(name string) float64 { return obs.Default.Sum(name) }
	families := []string{
		"privedit_http_requests_total",
		"privedit_http_request_seconds",
		"privedit_http_request_bytes_in_total",
		"privedit_http_request_bytes_out_total",
		"privedit_mediator_ops_total",
		"privedit_mediator_encrypt_seconds",
		"privedit_core_encrypt_seconds",
		"privedit_transform_delta_seconds",
		"privedit_block_splices_total",
		"privedit_block_splits_total",
		"privedit_skiplist_seek_steps",
	}
	before := make(map[string]float64, len(families))
	for _, f := range families {
		before[f] = sum(f)
	}

	server := gdocs.NewServer()
	logger := log.New(io.Discard, "", 0)
	handler := obs.Middleware(obs.Default, server, logger, func(p string) string { return p })
	ts := httptest.NewServer(handler)
	defer ts.Close()

	ext := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 7)), nil)
	client := gdocs.NewClient(ext.Client(), ts.URL, "metrics-doc")

	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// b=8 blocks: a long document plus a mid-block insert forces at least
	// one block split, which the blockdoc counters must record.
	client.SetText(strings.Repeat("abcdefgh", 64))
	if err := client.Save(); err != nil {
		t.Fatalf("full save: %v", err)
	}
	if err := client.Insert(4, "XYZXYZXYZ"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := client.Save(); err != nil {
		t.Fatalf("delta save: %v", err)
	}

	fresh := gdocs.NewClient(mediator.New(ts.Client().Transport,
		mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 8)), nil).Client(), ts.URL, "metrics-doc")
	if err := fresh.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if fresh.Text() != client.Text() {
		t.Fatalf("fresh load disagrees with editing session")
	}

	for _, f := range families {
		if d := sum(f) - before[f]; d <= 0 {
			t.Errorf("family %s did not move (delta %v)", f, d)
		}
	}

	// The mediator must have classified at least a full save, a delta
	// save, and a load among its operations.
	for _, op := range []string{"full_encrypt", "delta_transform", "load_decrypt"} {
		if obs.Default.Value("privedit_mediator_ops_total", "op", op) < 1 {
			t.Errorf("mediator op %q never recorded", op)
		}
	}

	// Fragmentation is a ratio: after real edits it must sit in (0, 1].
	frag := obs.Default.Value("privedit_fragmentation_ratio")
	if frag <= 0 || frag > 1 {
		t.Errorf("fragmentation ratio %v outside (0, 1]", frag)
	}
}
