// Trace propagation end to end: one edit operation produces a single span
// tree that crosses the wire — client spans, mediator phase spans, and
// server-side spans joined under the same trace ID — and keeps that shape
// even when the resilience stack has to retry through an injected fault.
package e2e

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/trace"
)

// failNext injects one synthetic HTTP 500 below the mediator (the request
// never reaches the server) the next time it is armed, then passes
// everything through. Deterministic: attempt 1 of the guarded save faults,
// attempt 2 is clean.
type failNext struct {
	base http.RoundTripper
	mu   sync.Mutex
	arm  bool
}

func (f *failNext) Arm() {
	f.mu.Lock()
	f.arm = true
	f.mu.Unlock()
}

func (f *failNext) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	fire := f.arm
	f.arm = false
	f.mu.Unlock()
	if fire {
		return &http.Response{
			Status:     "500 injected",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Body:    http.NoBody,
			Header:  make(http.Header),
			Request: req,
		}, nil
	}
	return f.base.RoundTrip(req)
}

// waitForTrace polls the collector until a trace satisfying pred arrives.
// Traces finalize a beat after the client observes the response (the
// server half of the tree is still closing), hence the poll.
func waitForTrace(t *testing.T, col *trace.Collector, pred func(trace.Trace) bool) trace.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, tr := range col.Snapshot() {
			if pred(tr) {
				return tr
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("trace never finalized")
	return trace.Trace{}
}

// TestTracePropagationAcrossRetry drives a full client → mediator →
// HTTP → server edit with tracing on and verifies the resulting span tree:
//
//   - the client's save span roots the trace;
//   - server-side spans (request middleware + store operation) appear in
//     the SAME trace, marked remote, joined via the X-Privedit-Trace
//     header over real HTTP;
//   - when the first save attempt hits an injected 500, the retry span and
//     its annotations land in the same tree, and the server spans recorded
//     belong to the clean second attempt.
func TestTracePropagationAcrossRetry(t *testing.T) {
	prev := trace.Default.Enabled()
	trace.Default.SetEnabled(true)
	defer trace.Default.SetEnabled(prev)
	col := &trace.Collector{}
	defer trace.Default.AddSink(col.Collect)()

	server := gdocs.NewServer()
	ts := httptest.NewServer(trace.Middleware(server))
	defer ts.Close()

	failer := &failNext{base: ts.Client().Transport}
	ext := mediator.New(failer, mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 50)),
		mediator.WithResilience(mediator.DefaultResilience()))
	client := gdocs.NewClient(ext.Client(), ts.URL, "traced-doc")

	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	client.SetText("trace me end to end")
	if err := client.Save(); err != nil {
		t.Fatalf("clean save: %v", err)
	}

	// A clean save's trace already spans both processes.
	clean := waitForTrace(t, col, func(tr trace.Trace) bool {
		return tr.Root == trace.SpanClientSave && spanCount(tr, trace.SpanServerRequest) > 0
	})
	if clean.Doc != "traced-doc" {
		t.Errorf("clean trace doc = %q, want traced-doc", clean.Doc)
	}
	if n := spanCount(clean, trace.SpanServerStore); n == 0 {
		t.Error("clean save trace has no server store span")
	}
	for _, sp := range clean.Spans {
		if sp.Name == trace.SpanServerRequest && !sp.Remote {
			t.Error("server request span not marked remote")
		}
	}
	if spanCount(clean, trace.SpanRetry) != 0 {
		t.Fatalf("clean save unexpectedly retried: %+v", clean)
	}

	// Now the guarded save: attempt 1 eats an injected 500 below the
	// mediator, attempt 2 goes through. One operation, one trace.
	if err := client.Insert(0, "please "); err != nil {
		t.Fatal(err)
	}
	failer.Arm()
	if err := client.Save(); err != nil {
		t.Fatalf("retried save: %v", err)
	}

	retried := waitForTrace(t, col, func(tr trace.Trace) bool {
		return tr.Root == trace.SpanClientSave && spanCount(tr, trace.SpanRetry) > 0
	})
	if retried.TraceID == clean.TraceID {
		t.Fatal("retried save reused the clean save's trace ID")
	}
	// The faulted attempt never reached the server; the clean retry did,
	// and its server spans joined the same trace over the wire.
	if n := spanCount(retried, trace.SpanServerRequest); n != 1 {
		t.Errorf("retried trace has %d server request spans, want 1 (attempt 2 only)", n)
	}
	if n := spanCount(retried, trace.SpanServerStore); n != 1 {
		t.Errorf("retried trace has %d server store spans, want 1", n)
	}
	if n := spanCount(retried, trace.SpanSave); n == 0 {
		t.Error("retried trace lost its mediator save phase span")
	}
	var retrySpan *trace.SpanData
	for i := range retried.Spans {
		if retried.Spans[i].Name == trace.SpanRetry {
			retrySpan = &retried.Spans[i]
		}
	}
	attempt := annotationValue(*retrySpan, "attempt")
	if attempt != "2" {
		t.Errorf("retry span attempt = %q, want 2", attempt)
	}
	// Every span in the finalized trace carries a span ID and the server
	// spans nest under client-side parents present in the same tree.
	ids := make(map[string]bool, len(retried.Spans))
	for _, sp := range retried.Spans {
		ids[sp.SpanID] = true
	}
	for _, sp := range retried.Spans {
		if sp.ParentID != "" && !ids[sp.ParentID] {
			t.Errorf("span %s (%s) has dangling parent %s", sp.SpanID, sp.Name, sp.ParentID)
		}
	}
}

func spanCount(tr trace.Trace, name string) int {
	n := 0
	for _, sp := range tr.Spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}

func annotationValue(sp trace.SpanData, key string) string {
	for _, a := range sp.Annotations {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
