// Package e2e holds whole-system integration tests: every layer of the
// reproduction composed together — client application, covert mitigations,
// stego transport, mediating extension, simulated network, simulated
// service, replication — exercised over real HTTP.
package e2e

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/covert"
	"privedit/internal/crypt"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/netsim"
	"privedit/internal/replica"
	"privedit/internal/stego"
	"privedit/internal/workload"
)

func opts(scheme core.Scheme, seed uint64) core.Options {
	return core.Options{
		Scheme:     scheme,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(seed),
	}
}

// TestFullStackLongSession drives a long, randomized editing session
// through every default layer and verifies at the end that (a) the server
// only ever saw ciphertext, (b) the stored container decrypts to the
// client's final text, and (c) a completely fresh session agrees.
func TestFullStackLongSession(t *testing.T) {
	for _, scheme := range []core.Scheme{core.ConfidentialityOnly, core.ConfidentialityIntegrity} {
		t.Run(scheme.String(), func(t *testing.T) {
			server := gdocs.NewServer()
			server.EnableObservation()
			ts := httptest.NewServer(server)
			defer ts.Close()

			mit := covert.New(covert.Config{CanonicalizeDeltas: true, PadQuantum: 32}, crypt.NewSeededNonceSource(99))
			ext := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(scheme, 1)), mediator.WithMitigator(mit))
			client := gdocs.NewClient(ext.Client(), ts.URL, "long-session")

			if err := client.Create(); err != nil {
				t.Fatalf("Create: %v", err)
			}
			gen := workload.NewGen(777)
			client.SetText(gen.Document(2000))
			if err := client.Save(); err != nil {
				t.Fatalf("first save: %v", err)
			}

			for i := 0; i < 60; i++ {
				sp := gen.Edit(client.Text(), workload.InsertsAndDeletes)
				if sp.Del > 0 {
					if err := client.Delete(sp.Pos, sp.Del); err != nil {
						t.Fatalf("edit %d: %v", i, err)
					}
				}
				if sp.Ins != "" {
					if err := client.Insert(sp.Pos, sp.Ins); err != nil {
						t.Fatalf("edit %d: %v", i, err)
					}
				}
				if i%4 == 0 {
					if err := client.Save(); err != nil {
						t.Fatalf("save %d: %v", i, err)
					}
				}
			}
			if err := client.Save(); err != nil {
				t.Fatalf("final save: %v", err)
			}
			want := client.Text()

			// (a) no plaintext fragments at the server.
			observed := server.Observed()
			for i := 0; i+6 <= len(want) && i < 300; i += 7 {
				if strings.Contains(observed, want[i:i+6]) {
					t.Fatalf("plaintext fragment %q leaked", want[i:i+6])
				}
			}
			// (b) the stored container decrypts to the final text.
			stored, _, err := server.Content(context.Background(), "long-session")
			if err != nil {
				t.Fatalf("content: %v", err)
			}
			got, err := core.Decrypt("pw", stored)
			if err != nil || got != want {
				t.Fatalf("stored container mismatch (err %v)", err)
			}
			// (c) a fresh session agrees.
			ext2 := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(scheme, 2)))
			client2 := gdocs.NewClient(ext2.Client(), ts.URL, "long-session")
			if err := client2.Load(); err != nil {
				t.Fatalf("fresh load: %v", err)
			}
			if client2.Text() != want {
				t.Fatal("fresh session sees different text")
			}
		})
	}
}

// TestSizeLimitInteraction reproduces the motivation for multi-character
// blocks: with b=1 the 500 KB quota rejects a document that fits easily at
// b=8 (§V-C: "this blow-up greatly limits the size of documents").
func TestSizeLimitInteraction(t *testing.T) {
	server := gdocs.NewServer()
	server.SetMaxBytes(64 * 1024) // scaled-down quota to keep the test fast
	ts := httptest.NewServer(server)
	defer ts.Close()

	text := workload.NewGen(5).Document(8000) // ~8 KB of prose

	// b=1: blowup ~28x -> ~224 KB container -> rejected.
	o1 := opts(core.ConfidentialityOnly, 10)
	o1.BlockChars = 1
	ext1 := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", o1))
	c1 := gdocs.NewClient(ext1.Client(), ts.URL, "doc-b1")
	if err := c1.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	c1.SetText(text)
	if err := c1.Save(); !errors.Is(err, gdocs.ErrTooLarge) {
		t.Errorf("b=1 save of 8KB doc = %v, want ErrTooLarge", err)
	}

	// b=8: blowup ~3.6x -> ~29 KB container -> accepted.
	o8 := opts(core.ConfidentialityOnly, 11)
	ext8 := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", o8))
	c8 := gdocs.NewClient(ext8.Client(), ts.URL, "doc-b8")
	if err := c8.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	c8.SetText(text)
	if err := c8.Save(); err != nil {
		t.Errorf("b=8 save of 8KB doc = %v, want success", err)
	}
}

// TestStegoOverDelayedNetwork composes the stego transport with the
// netsim delay layer: the full pipeline works over a "slow network" and
// the provider stores innocuous-looking prose.
func TestStegoOverDelayedNetwork(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	slow := &netsim.DelayTransport{
		Base:    ts.Client().Transport,
		Profile: netsim.Profile{RTT: 20 * time.Millisecond},
	}
	ext := mediator.New(slow, mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 20)),
		mediator.WithStego())
	client := gdocs.NewClient(ext.Client(), ts.URL, "slow-doc")

	start := time.Now()
	if err := client.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	client.SetText("hidden in plain sight")
	if err := client.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := client.Insert(0, "well "); err != nil {
		t.Fatal(err)
	}
	if err := client.Save(); err != nil {
		t.Fatalf("delta save: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("network delays not applied: %v", elapsed)
	}
	stored, _, err := server.Content(context.Background(), "slow-doc")
	if err != nil {
		t.Fatalf("content: %v", err)
	}
	if !stego.LooksInnocuous(stored) {
		t.Error("stored content looks like ciphertext")
	}
	ext2 := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 21)),
		mediator.WithStego())
	client2 := gdocs.NewClient(ext2.Client(), ts.URL, "slow-doc")
	if err := client2.Load(); err != nil {
		t.Fatalf("load: %v", err)
	}
	if client2.Text() != "well hidden in plain sight" {
		t.Errorf("round trip = %q", client2.Text())
	}
}

// TestReplicatedEncryptedEditing composes the replica store with the
// encryption core: an editing session mirrored to three providers, one of
// which turns malicious mid-session.
func TestReplicatedEncryptedEditing(t *testing.T) {
	var servers []*gdocs.Server
	var providers []replica.Provider
	for i := 0; i < 3; i++ {
		s := gdocs.NewServer()
		ts := httptest.NewServer(s)
		defer ts.Close()
		servers = append(servers, s)
		providers = append(providers, replica.Provider{
			Name: string(rune('A' + i)), Base: ts.URL, HTTP: ts.Client(),
		})
	}
	store, err := replica.New("triplicated", providers...)
	if err != nil {
		t.Fatalf("replica.New: %v", err)
	}
	ed, err := core.NewEditor("pw", opts(core.ConfidentialityIntegrity, 30))
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	if err := store.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	transport, err := ed.Encrypt("survives one bad provider")
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if err := store.SaveFull(transport); err != nil {
		t.Fatalf("SaveFull: %v", err)
	}

	// Provider B goes rogue: zeroes out its copy.
	if _, err := servers[1].SetContents(context.Background(), "triplicated", "VANDALIZED", -1); err != nil {
		t.Fatalf("vandalize: %v", err)
	}

	// Editing continues: the delta save detects B's divergence and
	// repairs it in stride.
	cd, err := ed.Splice(0, 0, "still ")
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if err := store.SaveDelta(cd, ed.Transport()); err != nil {
		t.Fatalf("SaveDelta: %v", err)
	}
	for i, s := range servers {
		c, _, err := s.Content(context.Background(), "triplicated")
		if err != nil {
			t.Fatalf("provider %d content: %v", i, err)
		}
		got, err := core.Decrypt("pw", c)
		if err != nil || got != "still survives one bad provider" {
			t.Errorf("provider %d = (%q, %v)", i, got, err)
		}
	}
}

// TestWrongSchemeContainersNeverConfused saves rECB and RPC documents side
// by side and verifies each opens only as itself.
func TestWrongSchemeContainersNeverConfused(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	extA := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(core.ConfidentialityOnly, 40)))
	extB := mediator.New(ts.Client().Transport, mediator.StaticPassword("pw", opts(core.ConfidentialityIntegrity, 41)))
	a := gdocs.NewClient(extA.Client(), ts.URL, "recb-doc")
	b := gdocs.NewClient(extB.Client(), ts.URL, "rpc-doc")
	for _, c := range []*gdocs.Client{a, b} {
		if err := c.Create(); err != nil {
			t.Fatalf("Create: %v", err)
		}
		c.SetText("scheme-tagged")
		if err := c.Save(); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	// The containers self-describe their scheme; Open picks it up.
	for _, id := range []string{"recb-doc", "rpc-doc"} {
		stored, _, err := server.Content(context.Background(), id)
		if err != nil {
			t.Fatalf("content: %v", err)
		}
		got, err := core.Decrypt("pw", stored)
		if err != nil || got != "scheme-tagged" {
			t.Errorf("%s: decrypt = (%q, %v)", id, got, err)
		}
	}
}
