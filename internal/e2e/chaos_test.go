package e2e

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/netsim"
	"privedit/internal/workload"
)

// chaosStorm is the e2e fault profile: its outright-failure rate is 26%,
// above the 20% bar the acceptance criterion sets.
func chaosStorm(seed int64) netsim.FaultProfile {
	return netsim.FaultProfile{
		Seed:             seed,
		DropRate:         0.08,
		DropResponseRate: 0.04,
		Error5xxRate:     0.06,
		ThrottleRate:     0.04,
		TimeoutRate:      0.04,
		CorruptRate:      0.05,
		TimeoutDelay:     100 * time.Microsecond,
	}
}

// TestChaosSharedDocConvergence is the tentpole end-to-end proof: two
// concurrent sessions fight over ONE document through a resilient
// extension while a seeded fault storm (>20% request failures) eats their
// traffic — drops, lost responses, 5xx, 429, timeouts, corruption. After
// the storm lifts and the queued state drains, both sessions, a fresh
// mediated session, and an independent decrypt of the server's stored
// container must all agree on the same plaintext. Run with -race.
func TestChaosSharedDocConvergence(t *testing.T) {
	profile := chaosStorm(20110615)
	if profile.FailureRate() < 0.20 {
		t.Fatalf("storm failure rate %.2f below the 20%% acceptance bar", profile.FailureRate())
	}

	server := gdocs.NewServer()
	server.EnableObservation()
	ts := httptest.NewServer(server)
	defer ts.Close()

	faults := netsim.NewFaultTransport(ts.Client().Transport, profile)
	faults.SetEnabled(false) // clean network while seeding

	const password = "chaos-e2e-pw"
	ext := mediator.New(faults,
		mediator.StaticPassword(password, core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}),
		mediator.WithResilience(mediator.Resilience{
			Retry:   mediator.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 1},
			Breaker: mediator.BreakerPolicy{TripAfter: 3, Cooldown: 2 * time.Millisecond, MaxCooldown: 50 * time.Millisecond},
		}))

	const docID = "chaos-shared-doc"
	seed := gdocs.NewClient(ext.Client(), ts.URL, docID)
	if err := seed.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	seed.SetText("shared chaos base: " + workload.NewGen(99).Document(2000))
	if err := seed.Save(); err != nil {
		t.Fatalf("seed save: %v", err)
	}

	// The storm: two sessions edit concurrently through the same extension
	// while >20% of requests fail.
	faults.SetEnabled(true)
	const sessions = 2
	const opsPerSession = 25
	clients := make([]*gdocs.Client, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		clients[s] = gdocs.NewClient(ext.Client(), ts.URL, docID)
		wg.Add(1)
		go func(s int, c *gdocs.Client) {
			defer wg.Done()
			gen := workload.NewGen(int64(7000 + s))
			_ = c.Load() // may be eaten by the storm; later ops reload
			for op := 0; op < opsPerSession; op++ {
				sp := gen.Edit(c.Text(), workload.InsertsAndDeletes)
				if err := c.Replace(sp.Pos, sp.Del, sp.Ins); err != nil {
					_ = c.Load()
					continue
				}
				if err := c.Sync(); err != nil {
					// Failed or conflicted under fire: reload (possibly a
					// degraded view) and keep editing.
					_ = c.Load()
				}
			}
		}(s, clients[s])
	}
	wg.Wait()
	storm := faults.Stats()
	if storm.Injected() == 0 {
		t.Fatal("the storm injected nothing; the test proved nothing")
	}
	t.Logf("storm: %d requests, %d faults (%d drops, %d lost responses, %d 5xx, %d 429, %d timeouts, %d corruptions)",
		storm.Requests, storm.Injected(), storm.Drops, storm.DropResponses,
		storm.Errors5xx, storm.Throttles, storm.Timeouts, storm.Corruptions)

	// Calm: lift the faults and let every session settle. The settle loop
	// keeps issuing requests so the breaker can half-open and drain any
	// queued degraded saves.
	faults.SetEnabled(false)
	for s, c := range clients {
		settled := false
		for attempt := 0; attempt < 20 && !settled; attempt++ {
			if err := c.Sync(); err != nil {
				_ = c.Load()
			}
			if !ext.Degraded(docID) && !c.Dirty() {
				settled = true
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !settled {
			t.Fatalf("session %d never settled after the storm", s)
		}
	}

	// Liveness after the storm: both sessions append a final marker and
	// sync it cleanly.
	for s, c := range clients {
		if err := c.Load(); err != nil {
			t.Fatalf("session %d post-storm load: %v", s, err)
		}
		if err := c.Insert(len(c.Text()), fmt.Sprintf("<final-%d>", s)); err != nil {
			t.Fatal(err)
		}
		if err := c.Sync(); err != nil {
			t.Fatalf("session %d final sync: %v", s, err)
		}
	}

	// Convergence, three ways. (1) Both sessions see the same text.
	for _, c := range clients {
		if err := c.Load(); err != nil {
			t.Fatalf("final load: %v", err)
		}
	}
	if clients[0].Text() != clients[1].Text() {
		t.Fatalf("sessions diverged:\nA %q\nB %q", clients[0].Text(), clients[1].Text())
	}
	want := clients[0].Text()
	for s := 0; s < sessions; s++ {
		if !strings.Contains(want, fmt.Sprintf("<final-%d>", s)) {
			t.Errorf("final text lost session %d's post-storm marker", s)
		}
	}

	// (2) The server's stored ciphertext decrypts to exactly that text.
	stored, _, err := server.Content(context.Background(), docID)
	if err != nil {
		t.Fatalf("server content: %v", err)
	}
	plain, err := core.DecryptWith(password, stored, core.Options{})
	if err != nil {
		t.Fatalf("stored container does not decrypt after the storm: %v", err)
	}
	if plain != want {
		t.Errorf("server plaintext diverges from the sessions' view")
	}

	// (3) A brand-new mediated session agrees too.
	fresh := mediator.New(ts.Client().Transport, mediator.StaticPassword(password, core.Options{}))
	fc := gdocs.NewClient(fresh.Client(), ts.URL, docID)
	if err := fc.Load(); err != nil {
		t.Fatalf("fresh load: %v", err)
	}
	if fc.Text() != want {
		t.Errorf("fresh session diverges from the writers' view")
	}

	// And through it all the server saw only ciphertext.
	if strings.Contains(server.Observed(), "shared chaos base:") {
		t.Fatal("plaintext leaked to the server during the storm")
	}
}

// TestChaosDistinctDocsUnderStorm drives the library chaos path the CLI
// uses (bench.RunChaos exercises it separately); here we pin that a
// resilient extension serving several documents through one storm keeps
// every document isolated and convergent. Run with -race.
func TestChaosDistinctDocsUnderStorm(t *testing.T) {
	profile := chaosStorm(424242)
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	faults := netsim.NewFaultTransport(ts.Client().Transport, profile)
	faults.SetEnabled(false)

	const password = "chaos-multi-pw"
	ext := mediator.New(faults,
		mediator.StaticPassword(password, core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}),
		mediator.WithResilience(mediator.Resilience{
			Retry:   mediator.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 2},
			Breaker: mediator.BreakerPolicy{TripAfter: 3, Cooldown: 0, MaxCooldown: 50 * time.Millisecond},
		}))

	const docs = 3
	for d := 0; d < docs; d++ {
		c := gdocs.NewClient(ext.Client(), ts.URL, fmt.Sprintf("storm-doc-%d", d))
		if err := c.Create(); err != nil {
			t.Fatalf("create %d: %v", d, err)
		}
		c.SetText(fmt.Sprintf("STORM-MARKER-%d ", d) + workload.NewGen(int64(d)).Document(1500))
		if err := c.Save(); err != nil {
			t.Fatalf("seed %d: %v", d, err)
		}
	}

	faults.SetEnabled(true)
	var wg sync.WaitGroup
	finals := make([]string, docs)
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			docID := fmt.Sprintf("storm-doc-%d", d)
			c := gdocs.NewClient(ext.Client(), ts.URL, docID)
			_ = c.Load()
			gen := workload.NewGen(int64(3000 + d))
			for op := 0; op < 20; op++ {
				sp := gen.Edit(c.Text(), workload.InsertsAndDeletes)
				if err := c.Replace(sp.Pos, sp.Del, sp.Ins); err != nil {
					_ = c.Load()
					continue
				}
				if err := c.Sync(); err != nil {
					_ = c.Load()
				}
			}
		}(d)
	}
	wg.Wait()

	faults.SetEnabled(false)
	for d := 0; d < docs; d++ {
		docID := fmt.Sprintf("storm-doc-%d", d)
		c := gdocs.NewClient(ext.Client(), ts.URL, docID)
		settled := false
		for attempt := 0; attempt < 20 && !settled; attempt++ {
			if err := c.Load(); err == nil && !ext.Degraded(docID) {
				settled = true
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !settled {
			t.Fatalf("doc %d never settled", d)
		}
		finals[d] = c.Text()

		stored, _, err := server.Content(context.Background(), docID)
		if err != nil {
			t.Fatalf("content %d: %v", d, err)
		}
		plain, err := core.DecryptWith(password, stored, core.Options{})
		if err != nil {
			t.Fatalf("doc %d ciphertext broken after storm: %v", d, err)
		}
		if plain != finals[d] {
			t.Errorf("doc %d: stored plaintext diverges from session view", d)
		}
		if !strings.Contains(plain, fmt.Sprintf("STORM-MARKER-%d ", d)) {
			t.Errorf("doc %d lost its marker", d)
		}
		for other := 0; other < docs; other++ {
			if other != d && strings.Contains(plain, fmt.Sprintf("STORM-MARKER-%d ", other)) {
				t.Errorf("doc %d contains doc %d's marker: cross-document bleed under faults", d, other)
			}
		}
	}
}
