package e2e

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"privedit/internal/core"
	"privedit/internal/gdocs"
	"privedit/internal/mediator"
	"privedit/internal/obs"
	"privedit/internal/workload"
)

// TestConcurrentSessionsDistinctDocs runs one extension serving many
// documents at once, each hammered by its own goroutine. Run with -race.
// Afterwards every document must decrypt to exactly its own session's
// text, with no bleed of one document's markers into another — the
// property the per-document mediator sessions and the sharded store exist
// to preserve.
func TestConcurrentSessionsDistinctDocs(t *testing.T) {
	server := gdocs.NewServer()
	server.EnableObservation()
	ts := httptest.NewServer(server)
	defer ts.Close()

	ext := mediator.New(ts.Client().Transport,
		mediator.StaticPassword("pw", core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}))

	const sessions = 6
	const edits = 25
	var wg sync.WaitGroup
	finals := make([]string, sessions)
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			docID := fmt.Sprintf("own-doc-%d", s)
			c := gdocs.NewClient(ext.Client(), ts.URL, docID)
			if err := c.Create(); err != nil {
				errs[s] = fmt.Errorf("create: %w", err)
				return
			}
			gen := workload.NewGen(int64(1000 + s))
			c.SetText(fmt.Sprintf("MARKER-%d ", s) + gen.Document(3000))
			if err := c.Save(); err != nil {
				errs[s] = fmt.Errorf("first save: %w", err)
				return
			}
			for i := 0; i < edits; i++ {
				sp := gen.Edit(c.Text(), workload.InsertsAndDeletes)
				if err := c.Replace(sp.Pos, sp.Del, sp.Ins); err != nil {
					errs[s] = fmt.Errorf("edit %d: %w", i, err)
					return
				}
				if err := c.Save(); err != nil {
					errs[s] = fmt.Errorf("save %d: %w", i, err)
					return
				}
			}
			finals[s] = c.Text()
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
	}

	if got := ext.Sessions(); got != sessions {
		t.Errorf("extension manages %d sessions, want %d", got, sessions)
	}

	for s := 0; s < sessions; s++ {
		docID := fmt.Sprintf("own-doc-%d", s)
		// A completely fresh mediated session must see exactly what the
		// writing session last had.
		fresh := mediator.New(ts.Client().Transport,
			mediator.StaticPassword("pw", core.Options{}))
		c := gdocs.NewClient(fresh.Client(), ts.URL, docID)
		if err := c.Load(); err != nil {
			t.Fatalf("fresh load %s: %v", docID, err)
		}
		if c.Text() != finals[s] {
			t.Errorf("doc %s: fresh session text diverges from writer's", docID)
		}
		for other := 0; other < sessions; other++ {
			marker := fmt.Sprintf("MARKER-%d ", other)
			if (other == s) != strings.Contains(c.Text(), marker) {
				t.Errorf("doc %s: marker bleed (has %q = %v)", docID, marker, other != s)
			}
		}
	}

	// The untrusted server must have seen ciphertext only.
	seen := server.Observed()
	for s := 0; s < sessions; s++ {
		if strings.Contains(seen, fmt.Sprintf("MARKER-%d", s)) {
			t.Fatalf("server observed plaintext marker of session %d", s)
		}
	}
}

// TestConcurrentSessionsSharedDoc has several sessions fight over one
// document through one extension, then checks the version-conflict
// accounting: the server's obs counter must have grown by exactly the
// number of optimistic-concurrency rejections, and a deterministic forced
// conflict must bump it by exactly one.
func TestConcurrentSessionsSharedDoc(t *testing.T) {
	server := gdocs.NewServer()
	ts := httptest.NewServer(server)
	defer ts.Close()

	ext := mediator.New(ts.Client().Transport,
		mediator.StaticPassword("pw", core.Options{Scheme: core.ConfidentialityIntegrity, BlockChars: 8}))

	obs.Enable()
	const docID = "shared-doc"
	seedC := gdocs.NewClient(ext.Client(), ts.URL, docID)
	if err := seedC.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	seedC.SetText("shared base content: " + workload.NewGen(5).Document(2000))
	if err := seedC.Save(); err != nil {
		t.Fatalf("seed save: %v", err)
	}

	// Deterministic forced conflict: two sessions load the same version,
	// the second save must be rejected exactly once (the client then
	// merges and retries).
	before := int64(obs.Default.Value("privedit_version_conflicts_total"))
	a := gdocs.NewClient(ext.Client(), ts.URL, docID)
	b := gdocs.NewClient(ext.Client(), ts.URL, docID)
	if err := a.Load(); err != nil {
		t.Fatalf("a.Load: %v", err)
	}
	if err := b.Load(); err != nil {
		t.Fatalf("b.Load: %v", err)
	}
	if err := a.Insert(0, "[a]"); err != nil {
		t.Fatalf("a.Insert: %v", err)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("a.Sync: %v", err)
	}
	if err := b.Insert(0, "[b]"); err != nil {
		t.Fatalf("b.Insert: %v", err)
	}
	if err := b.Sync(); err != nil { // stale base: one rejection, then merge
		t.Fatalf("b.Sync: %v", err)
	}
	forced := int64(obs.Default.Value("privedit_version_conflicts_total")) - before
	if forced != 1 {
		t.Errorf("forced conflict bumped counter by %d, want 1", forced)
	}

	// Concurrent stress: every marker that a session successfully synced
	// must survive in the converged document.
	const writers = 4
	var wg sync.WaitGroup
	synced := make([]bool, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := gdocs.NewClient(ext.Client(), ts.URL, docID)
			if err := c.Load(); err != nil {
				return
			}
			if err := c.Insert(len(c.Text()), fmt.Sprintf("<w%d>", w)); err != nil {
				return
			}
			for attempt := 0; attempt < 10; attempt++ {
				if err := c.Sync(); err == nil {
					synced[w] = true
					return
				}
				// Both merge-loop exhaustion and a stale-transform 403 are
				// survivable: reload and try again.
				if err := c.Load(); err != nil {
					return
				}
				if err := c.Insert(len(c.Text()), fmt.Sprintf("<w%d>", w)); err != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	final := gdocs.NewClient(ext.Client(), ts.URL, docID)
	if err := final.Load(); err != nil {
		t.Fatalf("final load: %v", err)
	}
	for w := 0; w < writers; w++ {
		if !synced[w] {
			continue
		}
		if !strings.Contains(final.Text(), fmt.Sprintf("<w%d>", w)) {
			t.Errorf("writer %d synced but its marker is missing from the converged doc", w)
		}
	}

	// The plaintext view and the server's stored ciphertext must agree:
	// decrypting the stored container independently gives the same text.
	stored, _, err := server.Content(context.Background(), docID)
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	plain, err := core.DecryptWith("pw", stored, core.Options{})
	if err != nil {
		t.Fatalf("DecryptWith: %v", err)
	}
	if plain != final.Text() {
		t.Error("stored ciphertext decrypts to different text than a mediated load returns")
	}
}
