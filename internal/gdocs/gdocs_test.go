package gdocs

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privedit/internal/delta"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestAckRoundTrip(t *testing.T) {
	a := Ack{ContentFromServer: "text & more = stuff", ContentFromServerHash: 12345, Version: 7}
	got, err := ParseAck(a.Encode())
	if err != nil {
		t.Fatalf("ParseAck: %v", err)
	}
	if got != a {
		t.Errorf("round trip = %+v, want %+v", got, a)
	}
}

func TestParseAckErrors(t *testing.T) {
	for _, body := range []string{"%zz", "contentFromServerHash=x&version=1", "contentFromServerHash=1&version=x"} {
		if _, err := ParseAck(body); err == nil {
			t.Errorf("ParseAck(%q) accepted", body)
		}
	}
}

func TestServerCreateAndContent(t *testing.T) {
	s := NewServer()
	if err := s.Create(context.Background(), "d1"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := s.Create(context.Background(), "d1"); err == nil {
		t.Error("duplicate Create accepted")
	}
	content, version, err := s.Content(context.Background(), "d1")
	if err != nil || content != "" || version != 0 {
		t.Errorf("fresh doc = (%q,%d,%v)", content, version, err)
	}
	if _, _, err := s.Content(context.Background(), "nope"); err == nil {
		t.Error("Content of unknown doc accepted")
	}
}

func TestServerSetAndDelta(t *testing.T) {
	s := NewServer()
	if err := s.Create(context.Background(), "d"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	ack, err := s.SetContents(context.Background(), "d", "abcdefg", -1)
	if err != nil {
		t.Fatalf("SetContents: %v", err)
	}
	if ack.Version != 1 || ack.ContentFromServer != "abcdefg" {
		t.Errorf("ack = %+v", ack)
	}
	if ack.ContentFromServerHash != ContentHash("abcdefg") {
		t.Error("ack hash mismatch")
	}
	// Paper example delta.
	ack, err = s.ApplyDelta(context.Background(), "d", "=2\t-3\t+uv\t=2\t+w", -1)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if ack.ContentFromServer != "abuvfgw" || ack.Version != 2 {
		t.Errorf("after delta = %+v", ack)
	}
}

func TestServerDeltaConflict(t *testing.T) {
	s := NewServer()
	if err := s.Create(context.Background(), "d"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.SetContents(context.Background(), "d", "short", -1); err != nil {
		t.Fatalf("SetContents: %v", err)
	}
	if _, err := s.ApplyDelta(context.Background(), "d", "=100\t-1", -1); err == nil {
		t.Error("stale delta accepted")
	}
	if _, err := s.ApplyDelta(context.Background(), "d", "*garbage*", -1); err == nil {
		t.Error("malformed delta accepted")
	}
}

func TestServerSizeLimit(t *testing.T) {
	s := NewServer()
	s.SetMaxBytes(10)
	if err := s.Create(context.Background(), "d"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.SetContents(context.Background(), "d", strings.Repeat("x", 11), -1); err == nil {
		t.Error("oversized SetContents accepted")
	}
	if _, err := s.SetContents(context.Background(), "d", strings.Repeat("x", 10), -1); err != nil {
		t.Errorf("at-limit SetContents rejected: %v", err)
	}
	if _, err := s.ApplyDelta(context.Background(), "d", "+y", -1); err == nil {
		t.Error("delta pushing doc over the limit accepted")
	}
}

func TestServerObservation(t *testing.T) {
	s := NewServer()
	s.EnableObservation()
	if err := s.Create(context.Background(), "d"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.SetContents(context.Background(), "d", "seen-by-server", -1); err != nil {
		t.Fatalf("SetContents: %v", err)
	}
	if !strings.Contains(s.Observed(), "seen-by-server") {
		t.Error("observation did not record content")
	}
}

func TestClientSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc1")

	if err := c.Save(); err == nil {
		t.Error("Save before session accepted")
	}
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Insert(0, "hello world"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !c.Dirty() {
		t.Error("client not dirty after edit")
	}
	if err := c.Save(); err != nil { // full save
		t.Fatalf("first Save: %v", err)
	}
	if c.Dirty() {
		t.Error("client dirty after save")
	}
	if err := c.Replace(6, 5, "gopher"); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if err := c.Save(); err != nil { // delta save
		t.Fatalf("second Save: %v", err)
	}
	if c.Version() != 2 {
		t.Errorf("version = %d, want 2", c.Version())
	}

	// Another client loads and sees the same text.
	c2 := NewClient(ts.Client(), ts.URL, "doc1")
	if err := c2.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if c2.Text() != "hello gopher" {
		t.Errorf("second client text = %q", c2.Text())
	}
}

func TestClientDeltaSavesAreIncremental(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	base := strings.Repeat("all work and no play makes jack a dull boy\n", 100)
	c.SetText(base)
	if err := c.Save(); err != nil {
		t.Fatalf("full save: %v", err)
	}
	if err := c.Insert(2000, "REDRUM "); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	pending := c.PendingDelta()
	if pending.InsertLen() > 20 {
		t.Errorf("pending delta inserts %d chars, want small", pending.InsertLen())
	}
	if err := c.Save(); err != nil {
		t.Fatalf("delta save: %v", err)
	}
	content, _, err := s.Content(context.Background(), "doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	if content != c.Text() {
		t.Error("server and client diverged")
	}
}

func TestClientEditBoundsChecked(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Insert(5, "x"); err == nil {
		t.Error("out-of-range insert accepted")
	}
	if err := c.Delete(0, 5); err == nil {
		t.Error("out-of-range delete accepted")
	}
}

func TestSimultaneousEditingConflicts(t *testing.T) {
	// §VII-A: two clients editing at once; the second client's delta is
	// computed against stale content and the server rejects it.
	_, ts := newTestServer(t)
	a := NewClient(ts.Client(), ts.URL, "shared")
	if err := a.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	a.SetText("the original shared document body")
	if err := a.Save(); err != nil {
		t.Fatalf("a.Save: %v", err)
	}

	b := NewClient(ts.Client(), ts.URL, "shared")
	if err := b.Load(); err != nil {
		t.Fatalf("b.Load: %v", err)
	}

	// a edits and saves; b edits from the old text and saves second.
	if err := a.Insert(0, "A:"); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(); err != nil {
		t.Fatalf("a.Save: %v", err)
	}
	if err := b.Delete(0, 12); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(); err == nil {
		t.Error("conflicting save accepted; want conflict")
	} else if !errors.Is(err, ErrConflict) {
		t.Errorf("conflict = %v, want ErrConflict", err)
	}
}

func TestPassiveReaderRefresh(t *testing.T) {
	// §VII-A: "every passive reader gets automatic content refreshing."
	_, ts := newTestServer(t)
	w := NewClient(ts.Client(), ts.URL, "shared")
	if err := w.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.SetText("v1")
	if err := w.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r := NewClient(ts.Client(), ts.URL, "shared")
	if err := r.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	w.SetText("v1 then v2")
	if err := w.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := r.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if r.Text() != "v1 then v2" {
		t.Errorf("reader text = %q", r.Text())
	}
	// A dirty reader cannot silently refresh.
	if err := r.Insert(0, "local"); err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(); !errors.Is(err, ErrConflict) {
		t.Errorf("dirty refresh = %v, want ErrConflict", err)
	}
}

func TestFeatureEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	c.SetText("some words and one extraordinarily-long-word here")
	if err := c.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	out, err := c.Feature(PathSpell)
	if err != nil {
		t.Fatalf("spell: %v", err)
	}
	if !strings.Contains(out, "extraordinarily-long-word") {
		t.Errorf("spell output %q", out)
	}
	out, err = c.Feature(PathTranslate)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if !strings.Contains(out, "SOME WORDS") {
		t.Errorf("translate output %q", out)
	}
	if _, err := c.Feature(PathExport); err != nil {
		t.Errorf("export: %v", err)
	}
	if _, err := c.Feature(PathDrawing); err != nil {
		t.Errorf("drawing: %v", err)
	}
}

func TestSaveRawDelta(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	c.SetText("abcdefg")
	if err := c.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ack, err := c.SaveRawDelta(delta.Delta{delta.RetainOp(2), delta.DeleteOp(5)})
	if err != nil {
		t.Fatalf("SaveRawDelta: %v", err)
	}
	if ack.ContentFromServer != "ab" {
		t.Errorf("raw delta result %q", ack.ContentFromServer)
	}
	content, _, err := s.Content(context.Background(), "doc")
	if err != nil || content != "ab" {
		t.Errorf("server content = (%q, %v)", content, err)
	}
}

func TestAutosave(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	var mu sync.Mutex
	var errs []error
	stop := c.StartAutosave(5*time.Millisecond, func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	})
	defer stop()
	c.SetText("autosaved content")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if content, _, _ := s.Content(context.Background(), "doc"); content == "autosaved content" {
			mu.Lock()
			defer mu.Unlock()
			if len(errs) > 0 {
				t.Errorf("autosave errors: %v", errs)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("autosave never reached the server")
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "missing")
	if err := c.Load(); !errors.Is(err, ErrNotFound) {
		t.Errorf("load missing = %v, want ErrNotFound", err)
	}
	resp, err := http.Get(ts.URL + "/bogus")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint status = %d", resp.StatusCode)
	}
}
