package gdocs

import (
	"context"
	"strings"
	"testing"
)

func TestSyncNoConflictIsPlainSave(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "doc")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	c.SetText("plain sailing")
	if err := c.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	content, _, err := s.Content(context.Background(), "doc")
	if err != nil || content != "plain sailing" {
		t.Errorf("server = (%q, %v)", content, err)
	}
}

func TestSyncRebasesNonOverlappingEdits(t *testing.T) {
	s, ts := newTestServer(t)
	a := NewClient(ts.Client(), ts.URL, "doc")
	if err := a.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	a.SetText("HEAD middle TAIL")
	if err := a.Save(); err != nil {
		t.Fatalf("a.Save: %v", err)
	}

	b := NewClient(ts.Client(), ts.URL, "doc")
	if err := b.Load(); err != nil {
		t.Fatalf("b.Load: %v", err)
	}

	// a edits the head; b edits the tail; both save, b via Sync.
	if err := a.Replace(0, 4, "FRONT"); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(); err != nil {
		t.Fatalf("a.Save: %v", err)
	}
	if err := b.Replace(12, 4, "BACK"); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(); err == nil {
		t.Fatal("plain Save should conflict")
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("b.Sync: %v", err)
	}
	content, _, err := s.Content(context.Background(), "doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	if content != "FRONT middle BACK" {
		t.Errorf("merged = %q, want both edits", content)
	}
	if b.Text() != content {
		t.Errorf("b.Text = %q, server %q", b.Text(), content)
	}
}

func TestSyncConvergesOnSevereOverlap(t *testing.T) {
	// a truncates the document to almost nothing while b edits the (now
	// deleted) tail. The OT merge keeps a's deletions and whatever b
	// genuinely inserted; the key guarantees are that Sync succeeds and
	// that client and server converge on the same text.
	s, ts := newTestServer(t)
	a := NewClient(ts.Client(), ts.URL, "doc")
	if err := a.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	a.SetText(strings.Repeat("base text ", 10))
	if err := a.Save(); err != nil {
		t.Fatalf("a.Save: %v", err)
	}
	b := NewClient(ts.Client(), ts.URL, "doc")
	if err := b.Load(); err != nil {
		t.Fatalf("b.Load: %v", err)
	}

	a.SetText("gone")
	if err := a.Save(); err != nil {
		t.Fatalf("a.Save: %v", err)
	}
	if err := b.Replace(90, 10, "b's tail edit"); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("b.Sync: %v", err)
	}
	content, _, err := s.Content(context.Background(), "doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	if content != b.Text() {
		t.Errorf("diverged: server %q, client %q", content, b.Text())
	}
	if !strings.Contains(content, "gone") {
		t.Errorf("a's truncation lost: %q", content)
	}
}

func TestSyncPropagatesNonConflictErrors(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "never-created")
	c.SetText("x")
	if err := c.Sync(); err == nil {
		t.Error("Sync without a session accepted")
	}
}
