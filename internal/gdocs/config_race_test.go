package gdocs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConfigConcurrentWithRequests is the regression test for the
// config-vs-ServeHTTP race: SetMaxBytes, EnableObservation and
// SetObservationCap used to write plain fields that in-flight request
// handlers read without synchronization. Run with -race: one goroutine
// flips every config knob in a tight loop while writer goroutines stream
// updates through the store.
func TestConfigConcurrentWithRequests(t *testing.T) {
	s := NewServer()
	ctx := context.Background()

	const writers = 4
	const rounds = 200
	for w := 0; w < writers; w++ {
		if err := s.Create(ctx, fmt.Sprintf("doc-%d", w)); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}

	done := make(chan struct{})
	var cfgWG, wg sync.WaitGroup
	cfgWG.Add(1)
	go func() {
		defer cfgWG.Done()
		toggle := false
		for {
			select {
			case <-done:
				return
			default:
			}
			toggle = !toggle
			if toggle {
				s.SetMaxBytes(MaxDocBytes)
				s.EnableObservation()
				s.SetObservationCap(1 << 10)
			} else {
				s.SetMaxBytes(64)
				s.SetObservationCap(DefaultObservationCap)
			}
			_ = s.Observed()
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			docID := fmt.Sprintf("doc-%d", w)
			for i := 0; i < rounds; i++ {
				// Tolerate errTooLarge while the config goroutine has the
				// limit pinned low; the point is memory safety, not success.
				_, _ = s.SetContents(ctx, docID, strings.Repeat("x", 32), -1)
				_, _, _ = s.Content(ctx, docID)
				_, _ = s.ApplyDelta(ctx, docID, "=32", -1)
			}
		}(w)
	}

	wg.Wait()
	close(done)
	cfgWG.Wait()
}

// TestShardedStoreIsolation checks that documents landing on the same and
// different shards never observe each other's content, under parallel
// writers.
func TestShardedStoreIsolation(t *testing.T) {
	s := NewServer()
	ctx := context.Background()

	const docs = 3 * NumShards // guarantees shard collisions
	var wg sync.WaitGroup
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			docID := fmt.Sprintf("iso-%d", d)
			if err := s.Create(ctx, docID); err != nil {
				t.Errorf("Create %s: %v", docID, err)
				return
			}
			want := fmt.Sprintf("content-of-%d", d)
			if _, err := s.SetContents(ctx, docID, want, -1); err != nil {
				t.Errorf("SetContents %s: %v", docID, err)
				return
			}
			got, version, err := s.Content(ctx, docID)
			if err != nil || got != want || version != 1 {
				t.Errorf("doc %s: got %q v%d err=%v, want %q v1", docID, got, version, err, want)
			}
		}(d)
	}
	wg.Wait()
}

// TestContextCancelledRejected checks every Server method refuses a dead
// context instead of doing work for an abandoned caller.
func TestContextCancelledRejected(t *testing.T) {
	s := NewServer()
	if err := s.Create(context.Background(), "live"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Create(ctx, "dead"); err == nil {
		t.Error("Create with cancelled context succeeded")
	}
	if _, _, err := s.Content(ctx, "live"); err == nil {
		t.Error("Content with cancelled context succeeded")
	}
	if _, err := s.SetContents(ctx, "live", "x", -1); err == nil {
		t.Error("SetContents with cancelled context succeeded")
	}
	if _, err := s.ApplyDelta(ctx, "live", "*0x", -1); err == nil {
		t.Error("ApplyDelta with cancelled context succeeded")
	}
}
