package gdocs

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// NumShards is the lock-stripe width of the document store. Document ids
// hash onto shards, so edits to distinct documents contend only when they
// collide on a stripe — and even then only for the map lookup, because
// each document carries its own RW lock for content access. 32 stripes
// keeps collision probability low for hundreds of concurrent sessions
// while costing a few hundred bytes of fixed overhead.
const NumShards = 32

// serverDoc is one stored document. The embedded lock serializes content
// access per document; the owning shard's lock only guards map membership.
type serverDoc struct {
	mu      sync.RWMutex
	content string
	version int
}

// shard is one lock stripe of the store.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*serverDoc
}

// store is the sharded document map. Lookups take one shard read-lock;
// creations take one shard write-lock. Nothing ever holds two shard locks
// at once, so the striping cannot deadlock.
type store struct {
	shards [NumShards]shard
	count  atomic.Int64 // total documents, for the gauge
}

func newStore() *store {
	st := &store{}
	for i := range st.shards {
		st.shards[i].docs = make(map[string]*serverDoc)
	}
	return st
}

func (st *store) shardFor(docID string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(docID))
	return &st.shards[h.Sum32()%NumShards]
}

// get returns the document, or nil if absent.
func (st *store) get(docID string) *serverDoc {
	sh := st.shardFor(docID)
	sh.mu.RLock()
	doc := sh.docs[docID]
	sh.mu.RUnlock()
	return doc
}

// create inserts an empty document, failing if the id exists.
func (st *store) create(docID string) error {
	sh := st.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docs[docID]; ok {
		return fmt.Errorf("gdocs: document %q already exists", docID)
	}
	sh.docs[docID] = &serverDoc{}
	st.count.Add(1)
	return nil
}

// docs returns the total number of stored documents.
func (st *store) docs() int64 { return st.count.Load() }
