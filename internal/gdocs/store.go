package gdocs

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// NumShards is the lock-stripe width of the document store. Document ids
// hash onto shards, so edits to distinct documents contend only when they
// collide on a stripe — and even then only for the map lookup, because
// each document carries its own RW lock for content access. 32 stripes
// keeps collision probability low for hundreds of concurrent sessions
// while costing a few hundred bytes of fixed overhead.
const NumShards = 32

// History bounds. The per-document update history exists for two
// consumers: catch-up fetches (GET /Doc?since=V) and save idempotency
// (HeaderSaveID replay detection). Both only need recent entries — a
// mediator's save queue is a handful of deltas deep — so the ring is kept
// small and evicts oldest-first. A full-content save breaks the delta
// lineage and is recorded as a gap marker: catch-ups crossing it fall back
// to full content.
const (
	maxHistoryEntries = 128
	maxHistoryBytes   = 512 * 1024
)

// histEntry is one applied update in a document's recent history.
type histEntry struct {
	id      string // HeaderSaveID token, "" when the client sent none
	wire    string // the delta as applied, "" for full-content saves
	full    bool   // full-content save: a catch-up gap
	version int    // document version after this update applied
}

// serverDoc is one stored document. The embedded lock serializes content
// access per document; the owning shard's lock only guards map membership.
type serverDoc struct {
	mu      sync.RWMutex
	content string
	version int

	hist      []histEntry
	histBytes int
}

// recordLocked appends an applied update to the history ring, evicting
// oldest entries past the bounds. Callers hold doc.mu.
func (d *serverDoc) recordLocked(e histEntry) {
	d.hist = append(d.hist, e)
	d.histBytes += len(e.wire)
	for len(d.hist) > maxHistoryEntries || d.histBytes > maxHistoryBytes {
		d.histBytes -= len(d.hist[0].wire)
		d.hist = d.hist[1:]
	}
}

// replayLocked reports whether a save with the given idempotency token was
// already applied, and at which resulting version. Callers hold doc.mu.
func (d *serverDoc) replayLocked(saveID string) (int, bool) {
	if saveID == "" {
		return 0, false
	}
	for i := len(d.hist) - 1; i >= 0; i-- {
		if d.hist[i].id == saveID {
			return d.hist[i].version, true
		}
	}
	return 0, false
}

// deltasSinceLocked returns the delta wires applied after version since,
// oldest first, when the history still covers the whole span without a
// full-save gap. Callers hold doc.mu (read suffices).
func (d *serverDoc) deltasSinceLocked(since int) ([]string, bool) {
	if since == d.version {
		return nil, true
	}
	if since > d.version {
		return nil, false
	}
	need := d.version - since
	if need > len(d.hist) {
		return nil, false // evicted: history no longer reaches back to since
	}
	tail := d.hist[len(d.hist)-need:]
	wires := make([]string, 0, need)
	for _, e := range tail {
		if e.full {
			return nil, false // lineage break: serve full content instead
		}
		wires = append(wires, e.wire)
	}
	return wires, true
}

// shard is one lock stripe of the store.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*serverDoc
}

// store is the sharded document map. Lookups take one shard read-lock;
// creations take one shard write-lock. Nothing ever holds two shard locks
// at once, so the striping cannot deadlock.
type store struct {
	shards [NumShards]shard
	count  atomic.Int64 // total documents, for the gauge
}

func newStore() *store {
	st := &store{}
	for i := range st.shards {
		st.shards[i].docs = make(map[string]*serverDoc)
	}
	return st
}

func (st *store) shardFor(docID string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(docID))
	return &st.shards[h.Sum32()%NumShards]
}

// get returns the document, or nil if absent.
func (st *store) get(docID string) *serverDoc {
	sh := st.shardFor(docID)
	sh.mu.RLock()
	doc := sh.docs[docID]
	sh.mu.RUnlock()
	return doc
}

// create inserts an empty document, failing if the id exists.
func (st *store) create(docID string) error {
	sh := st.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docs[docID]; ok {
		return fmt.Errorf("gdocs: document %q already exists", docID)
	}
	sh.docs[docID] = &serverDoc{}
	st.count.Add(1)
	return nil
}

// docs returns the total number of stored documents.
func (st *store) docs() int64 { return st.count.Load() }
