package gdocs

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"privedit/internal/obs"
)

// NumShards is the lock-stripe width of the document store. Document ids
// hash onto shards, so edits to distinct documents contend only when they
// collide on a stripe — and even then only for the map lookup, because
// each document carries its own RW lock for content access. 32 stripes
// keeps collision probability low for hundreds of concurrent sessions
// while costing a few hundred bytes of fixed overhead.
const NumShards = 32

// Cache telemetry. No-ops until obs.Enable().
var (
	metricCacheHits = obs.NewCounter("privedit_server_cache_hits_total",
		"Document lookups served from the resident cache.")
	metricCacheMisses = obs.NewCounter("privedit_server_cache_misses_total",
		"Document lookups faulted in from the persistence backend.")
	metricCacheEvictions = obs.NewCounter("privedit_server_cache_evictions_total",
		"Resident documents evicted to stay inside the cache byte budget.")
	metricCacheBytes = obs.NewGauge("privedit_server_cache_bytes",
		"Bytes of document content currently resident in the cache.")
)

// Backend is the pluggable persistence seam behind the sharded store
// (internal/store.Disk is the disk implementation). Put must be durable
// when it returns: the serving path calls it before acknowledging a
// save, which is what makes "acked implies survives kill -9" true. The
// backend only ever sees what the untrusted server sees — ciphertext
// when clients mediate through the extension.
type Backend interface {
	// Get returns the durable content and version, ok=false when the
	// document has never been stored.
	Get(docID string) (content string, version int, ok bool, err error)
	// Put durably records a new document state.
	Put(docID, content string, version int) error
	// Has reports whether the document exists durably.
	Has(docID string) (bool, error)
	// Docs returns the total durable document count.
	Docs() int64
	// Flush forces any buffered writes to stable storage (drain path).
	Flush() error
}

// History bounds. The per-document update history exists for two
// consumers: catch-up fetches (GET /Doc?since=V) and save idempotency
// (HeaderSaveID replay detection). Both only need recent entries — a
// mediator's save queue is a handful of deltas deep — so the ring is kept
// small and evicts oldest-first. A full-content save breaks the delta
// lineage and is recorded as a gap marker: catch-ups crossing it fall back
// to full content. Evicting a document from the cache drops its ring the
// same way: the next catch-up after a fault-in serves full content.
const (
	maxHistoryEntries = 128
	maxHistoryBytes   = 512 * 1024
)

// docCostOverhead approximates the fixed per-resident-document memory
// beyond its content bytes (locks, history headers, map and LRU entries)
// for the cache byte budget.
const docCostOverhead = 256

// histEntry is one applied update in a document's recent history.
type histEntry struct {
	id      string // HeaderSaveID token, "" when the client sent none
	wire    string // the delta as applied, "" for full-content saves
	full    bool   // full-content save: a catch-up gap
	version int    // document version after this update applied
}

// serverDoc is one stored document. The embedded lock serializes content
// access per document; the owning shard's lock only guards map
// membership, the LRU list, and the pin count.
type serverDoc struct {
	mu      sync.RWMutex
	content string
	version int

	hist      []histEntry
	histBytes int

	// Residency bookkeeping, guarded by the owning shard's lock.
	id   string
	elem *list.Element
	pins int
	cost int64
}

// recordLocked appends an applied update to the history ring, evicting
// oldest entries past the bounds. Callers hold doc.mu.
func (d *serverDoc) recordLocked(e histEntry) {
	d.hist = append(d.hist, e)
	d.histBytes += len(e.wire)
	for len(d.hist) > maxHistoryEntries || d.histBytes > maxHistoryBytes {
		d.histBytes -= len(d.hist[0].wire)
		d.hist = d.hist[1:]
	}
}

// replayLocked reports whether a save with the given idempotency token was
// already applied, and at which resulting version. Callers hold doc.mu.
func (d *serverDoc) replayLocked(saveID string) (int, bool) {
	if saveID == "" {
		return 0, false
	}
	for i := len(d.hist) - 1; i >= 0; i-- {
		if d.hist[i].id == saveID {
			return d.hist[i].version, true
		}
	}
	return 0, false
}

// deltasSinceLocked returns the delta wires applied after version since,
// oldest first, when the history still covers the whole span without a
// full-save gap. Callers hold doc.mu (read suffices).
func (d *serverDoc) deltasSinceLocked(since int) ([]string, bool) {
	if since == d.version {
		return nil, true
	}
	if since > d.version {
		return nil, false
	}
	need := d.version - since
	if need > len(d.hist) {
		return nil, false // evicted: history no longer reaches back to since
	}
	tail := d.hist[len(d.hist)-need:]
	wires := make([]string, 0, need)
	for _, e := range tail {
		if e.full {
			return nil, false // lineage break: serve full content instead
		}
		wires = append(wires, e.wire)
	}
	return wires, true
}

// shard is one lock stripe of the store. lru orders resident documents
// most-recent-first; bytes tracks their budgeted cost.
type shard struct {
	mu    sync.RWMutex
	docs  map[string]*serverDoc
	lru   *list.List
	bytes int64
}

// store is the sharded document map with an optional persistence backend.
// Without one it is the original purely in-memory store: documents live
// forever and the cache budget is ignored (evicting would lose data).
// With one, resident documents form a per-shard LRU inside a byte budget;
// cold documents are faulted in from the backend on demand, and every
// mutation is written through to the backend before it is acknowledged.
//
// Lookups and residency changes take one shard lock; content access takes
// the per-document lock. Nothing ever holds two shard locks at once, so
// the striping cannot deadlock; the backend has its own locking and never
// calls back into the store.
type store struct {
	shards  [NumShards]shard
	count   atomic.Int64 // resident documents, for accounting
	backend Backend
	budget  int64 // per-shard resident byte budget; 0 = unbounded
}

func newStore(backend Backend, cacheBytes int64) *store {
	st := &store{backend: backend}
	if backend != nil && cacheBytes > 0 {
		st.budget = cacheBytes / NumShards
		if st.budget <= 0 {
			st.budget = 1
		}
	}
	for i := range st.shards {
		st.shards[i].docs = make(map[string]*serverDoc)
		st.shards[i].lru = list.New()
	}
	return st
}

func (st *store) shardFor(docID string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(docID))
	return &st.shards[h.Sum32()%NumShards]
}

// docCost is a document's charge against the cache byte budget.
func docCost(docID, content string) int64 {
	return int64(len(content)) + int64(len(docID)) + docCostOverhead
}

// acquire returns the document pinned into residency (nil when absent),
// faulting it in from the backend on a cache miss. Callers must release
// it; a pinned document is never evicted, so the pointer stays the one
// live instance for its id.
func (st *store) acquire(docID string) (*serverDoc, error) {
	sh := st.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if doc, ok := sh.docs[docID]; ok {
		doc.pins++
		sh.lru.MoveToFront(doc.elem)
		if st.backend != nil {
			metricCacheHits.Inc()
		}
		return doc, nil
	}
	if st.backend == nil {
		return nil, nil
	}
	content, version, ok, err := st.backend.Get(docID)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	metricCacheMisses.Inc()
	doc := &serverDoc{id: docID, content: content, version: version, pins: 1}
	st.insertLocked(sh, doc)
	return doc, nil
}

// release unpins a document acquired earlier.
func (st *store) release(doc *serverDoc) {
	sh := st.shardFor(doc.id)
	sh.mu.Lock()
	doc.pins--
	sh.mu.Unlock()
}

// insertLocked makes a document resident and rebalances the shard.
// Callers hold sh.mu.
func (st *store) insertLocked(sh *shard, doc *serverDoc) {
	doc.cost = docCost(doc.id, doc.content)
	doc.elem = sh.lru.PushFront(doc)
	sh.docs[doc.id] = doc
	sh.bytes += doc.cost
	st.count.Add(1)
	metricCacheBytes.Add(float64(doc.cost))
	st.evictLocked(sh)
}

// resize re-charges a document whose content size changed during a
// mutation, evicting cold documents if the shard ran over budget. Called
// without the shard lock (the caller holds only doc.mu or nothing; pins
// keep the document itself resident).
func (st *store) resize(doc *serverDoc, newContentLen int) {
	sh := st.shardFor(doc.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	newCost := int64(newContentLen) + int64(len(doc.id)) + docCostOverhead
	delta := newCost - doc.cost
	doc.cost = newCost
	sh.bytes += delta
	metricCacheBytes.Add(float64(delta))
	st.evictLocked(sh)
}

// evictLocked drops least-recently-used unpinned documents until the
// shard is back inside its byte budget. Only meaningful with a backend:
// every resident state was written through before it was acknowledged,
// so eviction is a pure memory drop (the history ring goes with it; the
// next catch-up for the document serves full content). Callers hold
// sh.mu.
func (st *store) evictLocked(sh *shard) {
	if st.backend == nil || st.budget <= 0 {
		return
	}
	for e := sh.lru.Back(); e != nil && sh.bytes > st.budget; {
		prev := e.Prev()
		doc := e.Value.(*serverDoc)
		if doc.pins == 0 {
			sh.lru.Remove(e)
			delete(sh.docs, doc.id)
			sh.bytes -= doc.cost
			st.count.Add(-1)
			metricCacheEvictions.Inc()
			metricCacheBytes.Add(-float64(doc.cost))
		}
		e = prev
	}
}

// create inserts an empty document, failing if the id exists (resident or
// durable). With a backend the creation is durable before it returns.
func (st *store) create(docID string) error {
	sh := st.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docs[docID]; ok {
		return fmt.Errorf("gdocs: document %q already exists", docID)
	}
	if st.backend != nil {
		exists, err := st.backend.Has(docID)
		if err != nil {
			return err
		}
		if exists {
			return fmt.Errorf("gdocs: document %q already exists", docID)
		}
		if err := st.backend.Put(docID, "", 0); err != nil {
			return err
		}
	}
	st.insertLocked(sh, &serverDoc{id: docID})
	return nil
}

// docs returns the total number of stored documents (durable count when a
// backend is attached, resident count otherwise).
func (st *store) docs() int64 {
	if st.backend != nil {
		return st.backend.Docs()
	}
	return st.count.Load()
}

// resident returns the number of cache-resident documents.
func (st *store) resident() int64 { return st.count.Load() }
