package gdocs

import (
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"privedit/internal/obs"
)

// Admission control: the serving-path front door. Two gates, both
// answering with a *retryable* rejection (Retry-After plus the
// HeaderRetryable marker) rather than an opaque failure, because the
// mediating extension already runs a backoff + circuit-breaker stack
// that absorbs transient 429/503s — the server just has to speak that
// language:
//
//   - Rate limiting: one token bucket per client, refilled continuously
//     at the configured rate. A client that outruns its bucket gets 429
//     with the time until its next token.
//   - Drain: ahead of shutdown the server refuses all new document work
//     with 503 while in-flight requests finish and the WALs flush, so a
//     deploy looks to clients like a brief retryable blip, not an error
//     storm.

// Admission telemetry. No-ops until obs.Enable().
var (
	metricAdmissionRateRejects = obs.NewCounter("privedit_server_admission_rejects_total",
		"Requests refused by admission control, by reason.", "reason", "rate")
	metricAdmissionDrainRejects = obs.NewCounter("privedit_server_admission_rejects_total",
		"Requests refused by admission control, by reason.", "reason", "drain")
	metricDraining = obs.NewGauge("privedit_server_draining",
		"1 while the server is draining ahead of shutdown, else 0.")
)

// Typed admission rejections. Both are transient by construction: the
// client is expected to back off and retry (rate) or retry once the
// server is replaced (drain).
var (
	// ErrRateLimited is the body of a 429 admission rejection.
	ErrRateLimited = errors.New("gdocs: rate limited, retry after backoff")
	// ErrDraining is the body of a 503 admission rejection while the
	// server drains ahead of shutdown.
	ErrDraining = errors.New("gdocs: draining ahead of shutdown, retry shortly")
)

// AdmissionPolicy configures per-client token-bucket rate limiting.
type AdmissionPolicy struct {
	// RatePerSec is the sustained per-client request rate. <= 0 disables
	// rate limiting (drain still works).
	RatePerSec float64
	// Burst is the bucket depth — how many requests a client may issue
	// back to back after an idle period. 0 means 2×RatePerSec (min 1).
	Burst float64
}

// maxBuckets bounds the per-client bucket map so a client-id scan cannot
// grow server memory without bound; full (idle) buckets are swept first.
const maxBuckets = 4096

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the runtime controller.
type admission struct {
	policy AdmissionPolicy
	now    func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newAdmission(p AdmissionPolicy, clock func() time.Time) *admission {
	if p.Burst <= 0 {
		p.Burst = 2 * p.RatePerSec
		if p.Burst < 1 {
			p.Burst = 1
		}
	}
	if clock == nil {
		clock = time.Now
	}
	return &admission{policy: p, now: clock, buckets: make(map[string]*bucket)}
}

// allow spends one token from the client's bucket. When the bucket is
// empty it reports ok=false and how long until the next token accrues.
func (a *admission) allow(client string) (wait time.Duration, ok bool) {
	if a.policy.RatePerSec <= 0 {
		return 0, true
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= maxBuckets {
			a.sweepLocked(now)
		}
		b = &bucket{tokens: a.policy.Burst, last: now}
		a.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.policy.RatePerSec
	if b.tokens > a.policy.Burst {
		b.tokens = a.policy.Burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / a.policy.RatePerSec
	return time.Duration(need * float64(time.Second)), false
}

// sweepLocked drops buckets that have refilled to full — clients idle
// long enough that forgetting them loses nothing. Callers hold a.mu.
func (a *admission) sweepLocked(now time.Time) {
	for k, b := range a.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*a.policy.RatePerSec >= a.policy.Burst {
			delete(a.buckets, k)
		}
	}
}

// clientKey identifies the requester for rate limiting: the mediating
// extension's self-declared client id when present, else the remote
// address without its ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get(HeaderClient); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	if r.RemoteAddr != "" {
		return r.RemoteAddr
	}
	return "anon"
}

// rejectRetryable writes a typed admission rejection: the status, a
// Retry-After hint (rounded up to whole seconds, minimum 1), and the
// HeaderRetryable marker the mediator's resilience stack keys on.
func rejectRetryable(w http.ResponseWriter, status int, wait time.Duration, reason error) {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs < 1 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(HeaderRetryable, "1")
	http.Error(w, reason.Error(), status)
}
