package gdocs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// memBackend is an in-memory Backend for cache tests: durable enough to
// survive "server restarts" (a second NewServer over the same backend) and
// instrumented so tests can assert write-through ordering.
type memBackend struct {
	mu   sync.Mutex
	docs map[string]struct {
		content string
		version int
	}
	puts int
	fail error // when set, Put and Get return it
}

func newMemBackend() *memBackend {
	return &memBackend{docs: make(map[string]struct {
		content string
		version int
	})}
}

func (m *memBackend) Get(docID string) (string, int, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return "", 0, false, m.fail
	}
	d, ok := m.docs[docID]
	return d.content, d.version, ok, nil
}

func (m *memBackend) Put(docID, content string, version int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	m.docs[docID] = struct {
		content string
		version int
	}{content, version}
	m.puts++
	return nil
}

func (m *memBackend) Has(docID string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.docs[docID]
	return ok, nil
}

func (m *memBackend) Docs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.docs))
}

func (m *memBackend) Flush() error { return nil }

// sameShardIDs returns n document ids that all hash onto one shard, so a
// test can overflow a single shard's byte budget deterministically.
func sameShardIDs(n int) []string {
	ids := make([]string, 0, n)
	for i := 0; len(ids) < n; i++ {
		id := fmt.Sprintf("shardmate-%d", i)
		h := fnv.New32a()
		h.Write([]byte(id))
		if h.Sum32()%NumShards == 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

func TestFaultInFromBackend(t *testing.T) {
	mb := newMemBackend()
	mb.Put("cold-doc", "durable ciphertext", 5)
	s := NewServer(WithBackend(mb), WithCacheBytes(1<<20))
	content, version, err := s.Content(context.Background(), "cold-doc")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	if content != "durable ciphertext" || version != 5 {
		t.Fatalf("faulted in (%q, v%d), want durable state v5", content, version)
	}
	if _, _, err := s.Content(context.Background(), "never-stored"); err == nil {
		t.Fatal("Content of unknown doc accepted")
	}
}

func TestCreateIsDurable(t *testing.T) {
	mb := newMemBackend()
	s := NewServer(WithBackend(mb), WithCacheBytes(1<<20))
	if err := s.Create(context.Background(), "d1"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// A "restarted" server over the same backend sees the document and
	// rejects a duplicate create even though its cache is cold.
	s2 := NewServer(WithBackend(mb), WithCacheBytes(1<<20))
	if err := s2.Create(context.Background(), "d1"); err == nil {
		t.Fatal("duplicate Create accepted after restart")
	}
	if _, _, err := s2.Content(context.Background(), "d1"); err != nil {
		t.Fatalf("Content after restart: %v", err)
	}
}

// TestWriteThroughBeforeAck: every accepted mutation must be in the
// backend before the ack, so an eviction (or kill -9) after the ack can
// never lose it.
func TestWriteThroughBeforeAck(t *testing.T) {
	mb := newMemBackend()
	s := NewServer(WithBackend(mb), WithCacheBytes(1<<20))
	if err := s.Create(context.Background(), "wt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetContents(context.Background(), "wt", "state one", -1); err != nil {
		t.Fatal(err)
	}
	if c, v, _, _ := mb.Get("wt"); c != "state one" || v != 1 {
		t.Fatalf("backend holds (%q, v%d) after ack, want (state one, v1)", c, v)
	}
	if _, err := s.ApplyDelta(context.Background(), "wt", "=6\t-3\t+two", -1); err != nil {
		t.Fatal(err)
	}
	if c, v, _, _ := mb.Get("wt"); c != "state two" || v != 2 {
		t.Fatalf("backend holds (%q, v%d) after delta ack, want (state two, v2)", c, v)
	}
}

// TestEvictionThenFaultIn covers the dirty-eviction edge: a freshly
// mutated document is evicted under cache pressure and must come back
// byte-identical from the backend (write-through made eviction safe).
func TestEvictionThenFaultIn(t *testing.T) {
	mb := newMemBackend()
	// Budget small enough that one shard holds only ~2 of the 1KB docs:
	// per-shard budget = 128KB/32 = 4KB; each doc costs ~1KB + overhead.
	s := NewServer(WithBackend(mb), WithCacheBytes(128<<10))
	ids := sameShardIDs(8)
	body := strings.Repeat("v", 1024)
	for _, id := range ids {
		if err := s.Create(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SetContents(context.Background(), id, body+id, -1); err != nil {
			t.Fatal(err)
		}
	}
	// The early ids must have been evicted to stay inside the budget...
	if res := s.ResidentDocs(); res >= int64(len(ids)) {
		t.Fatalf("ResidentDocs = %d, want eviction below %d", res, len(ids))
	}
	// ...but every document — including the dirty-then-evicted first one —
	// faults back in with its acknowledged content and version.
	for _, id := range ids {
		content, version, err := s.Content(context.Background(), id)
		if err != nil {
			t.Fatalf("Content(%s) after eviction: %v", id, err)
		}
		if content != body+id || version != 1 {
			t.Fatalf("Content(%s) = (%d bytes, v%d), want acknowledged state", id, len(content), version)
		}
	}
	if got, want := s.store.docs(), int64(len(ids)); got != want {
		t.Fatalf("store.docs() = %d, want %d (durable count, not resident)", got, want)
	}
}

// TestEvictionSurvivesVersionChain: edits interleaved with evictions keep
// a coherent version chain (conflict detection still works on a faulted-in
// document).
func TestEvictionSurvivesVersionChain(t *testing.T) {
	mb := newMemBackend()
	s := NewServer(WithBackend(mb), WithCacheBytes(128<<10))
	ids := sameShardIDs(6)
	for _, id := range ids {
		if err := s.Create(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	filler := strings.Repeat("f", 1500)
	for round := 1; round <= 3; round++ {
		for _, id := range ids {
			// Each round rewrites every doc at its current version; the
			// shard churns through evictions the whole time.
			_, ver, err := s.Content(context.Background(), id)
			if err != nil {
				t.Fatal(err)
			}
			if ver != round-1 {
				t.Fatalf("round %d: %s at v%d, want v%d", round, id, ver, round-1)
			}
			if _, err := s.SetContents(context.Background(), id, fmt.Sprintf("%s r%d %s", id, round, filler), ver); err != nil {
				t.Fatalf("round %d SetContents(%s): %v", round, id, err)
			}
		}
	}
	// A stale base version is still rejected after a fault-in.
	if _, err := s.SetContents(context.Background(), ids[0], "stale", 1); !errors.Is(err, errConflict) {
		t.Fatalf("stale save after evictions = %v, want conflict", err)
	}
}

// TestBackendFailureRejectsSave: when the backend cannot persist, the save
// must fail and the in-memory state must not advance (no ack without
// durability).
func TestBackendFailureRejectsSave(t *testing.T) {
	mb := newMemBackend()
	s := NewServer(WithBackend(mb), WithCacheBytes(1<<20))
	if err := s.Create(context.Background(), "flaky"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetContents(context.Background(), "flaky", "good", -1); err != nil {
		t.Fatal(err)
	}
	mb.mu.Lock()
	mb.fail = errors.New("disk full")
	mb.mu.Unlock()
	if _, err := s.SetContents(context.Background(), "flaky", "lost", -1); err == nil {
		t.Fatal("save accepted while backend failing")
	}
	mb.mu.Lock()
	mb.fail = nil
	mb.mu.Unlock()
	content, version, err := s.Content(context.Background(), "flaky")
	if err != nil || content != "good" || version != 1 {
		t.Fatalf("state after failed save = (%q, v%d, %v), want unchanged (good, v1)", content, version, err)
	}
}

func TestRateLimitRejectsRetryably(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := NewServer(WithAdmission(AdmissionPolicy{RatePerSec: 1, Burst: 2}), WithClock(clock))
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func() *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+PathDoc+"?docID=x", nil)
		req.Header.Set(HeaderClient, "client-a")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Burst of 2 admitted (404: the doc does not exist, but admission ran).
	for i := 0; i < 2; i++ {
		if resp := get(); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("request %d status = %d, want 404 (admitted)", i, resp.StatusCode)
		}
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get(HeaderRetryable) != "1" {
		t.Fatal("429 missing the retryable marker header")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// A different client has its own bucket.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+PathDoc+"?docID=x", nil)
	req.Header.Set(HeaderClient, "client-b")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fresh client rejected: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	// Time refills the bucket.
	now = now.Add(2 * time.Second)
	if resp := get(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-refill status = %d, want 404 (admitted)", resp.StatusCode)
	}
}

func TestDrainRejectsRetryably(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	resp, err := http.Get(ts.URL + PathDoc + "?docID=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(HeaderRetryable) != "1" || resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection missing retryable headers")
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	s := NewServer()
	s.inflight.Add(1) // a request stuck between admission and response
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned while a request was in flight")
	}
	s.inflight.Add(-1)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after quiesce: %v", err)
	}
}

// TestFaultInEvictStorm races concurrent readers, writers, and the
// evictor over a tiny cache (run under -race in CI): pins must keep live
// documents resident and write-through must keep every ack durable.
func TestFaultInEvictStorm(t *testing.T) {
	mb := newMemBackend()
	s := NewServer(WithBackend(mb), WithCacheBytes(64<<10)) // 2KB per shard
	ids := sameShardIDs(10)
	for _, id := range ids {
		if err := s.Create(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	body := strings.Repeat("s", 700)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 30; i++ {
				id := ids[(w*7+i)%len(ids)]
				if w%2 == 0 {
					if _, err := s.SetContents(ctx, id, fmt.Sprintf("%s %d %s", id, i, body), -1); err != nil {
						t.Errorf("SetContents(%s): %v", id, err)
						return
					}
				} else if _, _, err := s.Content(ctx, id); err != nil {
					t.Errorf("Content(%s): %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every document is still reachable and the cache sits inside budget.
	for _, id := range ids {
		if _, _, err := s.Content(context.Background(), id); err != nil {
			t.Fatalf("Content(%s) after storm: %v", id, err)
		}
	}
	if res := s.ResidentDocs(); res > int64(len(ids)) {
		t.Fatalf("ResidentDocs = %d, exceeds document count", res)
	}
}
