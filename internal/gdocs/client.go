package gdocs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"privedit/internal/delta"
	"privedit/internal/diff"
	"privedit/internal/trace"
)

// Client errors.
var (
	// ErrConflict is returned when the server rejects a delta because the
	// stored content changed underneath the client — the simultaneous
	// editing conflict of §VII-A.
	ErrConflict = errors.New("gdocs: edit conflict")
	// ErrNotFound is returned for unknown documents.
	ErrNotFound = errors.New("gdocs: document not found")
	// ErrBlocked is returned when the mediating extension refused to let
	// a request leave the client.
	ErrBlocked = errors.New("gdocs: request blocked by extension")
	// ErrTooLarge is returned when the server enforces its size limit.
	ErrTooLarge = errors.New("gdocs: document too large")
)

// Client simulates the browser-side Google Documents application: it keeps
// the user's working copy, tracks the last content acknowledged by the
// server, and saves either the full document (first save of a session) or
// a delta (every later save) — exactly the traffic pattern of §IV-A.
// A Client is safe for concurrent use: the autosave timer runs alongside
// user edits, as in the real application.
type Client struct {
	mu    sync.Mutex
	httpc *http.Client
	base  string
	docID string
	ctx   context.Context // base context for outgoing requests

	local     string // what the user sees and edits
	lastSaved string // content as of the last acknowledged save
	inSession bool   // a session starts with a full-content save
	sentFull  bool   // whether the full save already happened
	version   int
	degraded  bool // last response was synthesized by a degraded mediator
}

// NewClient creates a client for one document. httpc may carry the
// mediating extension as its Transport; base is the server URL.
func NewClient(httpc *http.Client, base, docID string) *Client {
	return &Client{httpc: httpc, base: base, docID: docID, ctx: context.Background()}
}

// WithContext sets the base context attached to every outgoing request and
// returns the client. Cancelling the context aborts in-flight requests —
// including the simulated netsim delay and the server-side store operation
// — which is how the load harness enforces per-session deadlines.
func (c *Client) WithContext(ctx context.Context) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
	return c
}

// DocID returns the document id.
func (c *Client) DocID() string { return c.docID }

// Version returns the last server version the client saw.
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Text returns the user's working copy.
func (c *Client) Text() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.local
}

// Dirty reports whether unsaved edits exist.
func (c *Client) Dirty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirtyLocked()
}

// Degraded reports whether the last successful save or load was served
// locally by a degraded mediating extension (HeaderDegraded set) rather
// than acknowledged by the server. A degraded save is queued inside the
// extension and becomes durable only after the breaker closes and the
// queue drains.
func (c *Client) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

func (c *Client) dirtyLocked() bool { return c.local != c.lastSaved }

// getDoc issues the document GET under ctx (a descendant of the client's
// base context so trace spans nest under the caller's operation).
func (c *Client) getDoc(ctx context.Context) (*http.Response, error) {
	u := c.base + PathDoc + "?" + url.Values{FieldDocID: {c.docID}}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	trace.SetRequestHeader(req)
	return c.httpc.Do(req)
}

func (c *Client) checkStatus(resp *http.Response, body string) error {
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrConflict
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusForbidden:
		return ErrBlocked
	case http.StatusRequestEntityTooLarge:
		return ErrTooLarge
	default:
		return fmt.Errorf("gdocs: server status %d: %s", resp.StatusCode, strings.TrimSpace(body))
	}
}

func (c *Client) post(ctx context.Context, path string, form url.Values) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path,
		strings.NewReader(form.Encode()))
	if err != nil {
		return "", fmt.Errorf("gdocs: post %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	trace.SetRequestHeader(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", fmt.Errorf("gdocs: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("gdocs: read response: %w", err)
	}
	if err := c.checkStatus(resp, string(raw)); err != nil {
		return "", err
	}
	c.degraded = resp.Header.Get(HeaderDegraded) != ""
	return string(raw), nil
}

// Create registers a new, empty document on the server and begins an
// editing session on it.
func (c *Client) Create() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	form := url.Values{FieldDocID: {c.docID}}
	if _, err := c.post(c.ctx, PathCreate, form); err != nil {
		return err
	}
	c.local = ""
	c.lastSaved = ""
	c.inSession = true
	c.sentFull = false
	return nil
}

// Load opens an existing document and begins an editing session: the next
// save will carry the full document contents, as the paper observed for
// the first save of every session.
func (c *Client) Load() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, sp := trace.Start(c.ctx, trace.SpanClientLoad)
	defer sp.End()
	sp.Annotate("doc", c.docID)
	resp, err := c.getDoc(ctx)
	if err != nil {
		return fmt.Errorf("gdocs: load: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("gdocs: read load response: %w", err)
	}
	if err := c.checkStatus(resp, string(raw)); err != nil {
		return err
	}
	c.degraded = resp.Header.Get(HeaderDegraded) != ""
	if v := resp.Header.Get(HeaderDocVersion); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			c.version = parsed
		}
	}
	c.local = string(raw)
	c.lastSaved = c.local
	c.inSession = true
	c.sentFull = false
	return nil
}

// Refresh re-reads the server content without starting a new session: the
// passive-reader refresh that keeps working under encryption (§VII-A).
// It fails with ErrConflict if the client has unsaved local edits.
func (c *Client) Refresh() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirtyLocked() {
		return ErrConflict
	}
	ctx, sp := trace.Start(c.ctx, trace.SpanClientLoad)
	defer sp.End()
	sp.Annotate("doc", c.docID)
	sp.Annotate("op", "refresh")
	resp, err := c.getDoc(ctx)
	if err != nil {
		return fmt.Errorf("gdocs: refresh: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("gdocs: read refresh response: %w", err)
	}
	if err := c.checkStatus(resp, string(raw)); err != nil {
		return err
	}
	c.degraded = resp.Header.Get(HeaderDegraded) != ""
	if v := resp.Header.Get(HeaderDocVersion); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			c.version = parsed
		}
	}
	c.local = string(raw)
	c.lastSaved = c.local
	return nil
}

// Insert edits the working copy: insert text at pos.
func (c *Client) Insert(pos int, text string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(pos, text)
}

func (c *Client) insertLocked(pos int, text string) error {
	if pos < 0 || pos > len(c.local) {
		return fmt.Errorf("gdocs: insert at %d in %d-char document", pos, len(c.local))
	}
	c.local = c.local[:pos] + text + c.local[pos:]
	return nil
}

// Delete edits the working copy: remove n characters at pos.
func (c *Client) Delete(pos, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleteLocked(pos, n)
}

func (c *Client) deleteLocked(pos, n int) error {
	if pos < 0 || n < 0 || pos+n > len(c.local) {
		return fmt.Errorf("gdocs: delete %d at %d in %d-char document", n, pos, len(c.local))
	}
	c.local = c.local[:pos] + c.local[pos+n:]
	return nil
}

// Replace edits the working copy: replace n characters at pos with text.
func (c *Client) Replace(pos, n int, text string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.deleteLocked(pos, n); err != nil {
		return err
	}
	return c.insertLocked(pos, text)
}

// SetText replaces the whole working copy.
func (c *Client) SetText(text string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.local = text
}

// PendingDelta returns the delta the next save would send (empty if clean).
func (c *Client) PendingDelta() delta.Delta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return diff.Diff(c.lastSaved, c.local)
}

// Save pushes local edits to the server: the first save of a session sends
// docContents with the whole document; later saves send only the delta.
func (c *Client) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked(c.ctx)
}

func (c *Client) saveLocked(ctx context.Context) error {
	if !c.inSession {
		return errors.New("gdocs: no editing session (call Create or Load)")
	}
	if c.sentFull && !c.dirtyLocked() {
		return nil
	}
	sctx, sp := trace.Start(ctx, trace.SpanClientSave)
	defer sp.End()
	sp.Annotate("doc", c.docID)
	form := url.Values{FieldDocID: {c.docID}}
	form.Set(FieldVersion, strconv.Itoa(c.version))
	if !c.sentFull {
		form.Set(FieldDocContents, c.local)
	} else {
		_, dsp := trace.Start(sctx, trace.SpanDiff)
		d := diff.Diff(c.lastSaved, c.local)
		dsp.End()
		form.Set(FieldDelta, d.String())
	}
	body, err := c.post(sctx, PathDoc, form)
	if err != nil {
		return err
	}
	ack, err := ParseAck(body)
	if err != nil {
		return err
	}
	c.version = ack.Version
	c.lastSaved = c.local
	c.sentFull = true
	return nil
}

// SaveRawDelta sends an arbitrary delta, bypassing the local edit model.
// This exists to model a (possibly malicious) client that constructs its
// own delta sequences — the covert-channel scenario of §VI-B — and for
// protocol tests.
func (c *Client) SaveRawDelta(d delta.Delta) (Ack, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	form := url.Values{FieldDocID: {c.docID}, FieldDelta: {d.String()}}
	body, err := c.post(c.ctx, PathDoc, form)
	if err != nil {
		return Ack{}, err
	}
	ack, err := ParseAck(body)
	if err != nil {
		return Ack{}, err
	}
	c.version = ack.Version
	return ack, nil
}

// Feature invokes one of the server-side feature endpoints (§VII-A):
// translate, spell check, drawing, export. With the extension installed
// these requests are blocked (ErrBlocked).
func (c *Client) Feature(path string) (string, error) {
	return c.post(c.ctx, path, url.Values{FieldDocID: {c.docID}})
}

// StartAutosave issues Save every interval until the returned stop
// function is called, modeling the client-side timeout saves of §IV-A.
// Errors are delivered to onErr (which may be nil).
func (c *Client) StartAutosave(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := c.Save(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() { close(done) }
}

// fetchLocked re-reads the server's current content and version without
// altering the session state.
func (c *Client) fetchLocked(ctx context.Context) (string, int, error) {
	resp, err := c.getDoc(ctx)
	if err != nil {
		return "", 0, fmt.Errorf("gdocs: fetch: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, fmt.Errorf("gdocs: read fetch response: %w", err)
	}
	if err := c.checkStatus(resp, string(raw)); err != nil {
		return "", 0, err
	}
	version := c.version
	if v := resp.Header.Get(HeaderDocVersion); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			version = parsed
		}
	}
	return string(raw), version, nil
}

// fetchSinceLocked is the catch-up variant of fetchLocked: it asks the
// server (or the pipelined mediator) for the deltas applied after the
// client's version. When the response is a delta catch-up, the returned
// serverDelta is their composition against lastSaved — recovery can
// transform over it directly instead of re-diffing two whole documents,
// which for long-diverged copies costs a full Myers run. On any shortfall
// (history gap, unusable body) it degrades to the plain full fetch with
// viaDeltas=false.
func (c *Client) fetchSinceLocked(ctx context.Context) (base string, version int, serverDelta delta.Delta, viaDeltas bool, err error) {
	u := c.base + PathDoc + "?" + url.Values{
		FieldDocID: {c.docID},
		FieldSince: {strconv.Itoa(c.version)},
	}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", 0, nil, false, err
	}
	trace.SetRequestHeader(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", 0, nil, false, fmt.Errorf("gdocs: fetch: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, nil, false, fmt.Errorf("gdocs: read fetch response: %w", err)
	}
	if err := c.checkStatus(resp, string(raw)); err != nil {
		return "", 0, nil, false, err
	}
	version = c.version
	if v := resp.Header.Get(HeaderDocVersion); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			version = parsed
		}
	}
	if resp.Header.Get(HeaderDeltas) == "" {
		return string(raw), version, nil, false, nil
	}
	if cu, perr := ParseCatchup(string(raw)); perr == nil {
		base = c.lastSaved
		var acc delta.Delta
		good := true
		for i, w := range cu.Deltas {
			d, derr := delta.Parse(w)
			if derr == nil {
				if i == 0 {
					acc = d
				} else {
					acc, derr = delta.Compose(acc, d, len(c.lastSaved))
				}
			}
			if derr == nil {
				base, derr = d.Apply(base)
			}
			if derr != nil {
				good = false
				break
			}
		}
		if good {
			return base, cu.Version, acc, true, nil
		}
	}
	// The catch-up body was unusable (corruption, inapplicable deltas):
	// fall back to a whole-document fetch.
	base, version, err = c.fetchLocked(ctx)
	return base, version, nil, false, err
}

// Sync saves local edits, resolving version conflicts by merging: on a
// conflict the client fetches the server's current content, expresses both
// parties' changes as deltas against the last common base, and transforms
// its own delta over the server's (delta.Transform — the inclusion
// transformation of operational transformation). Both sides' insertions
// survive; text deleted by either side stays deleted; the server's
// insertions win position ties.
//
// The merge happens entirely client-side on plaintext, so it composes with
// the encrypting extension: the server still only ever sees ciphertext.
// (SPORC gets stronger guarantees by redesigning the server; the paper
// §VII-A contrasts that approach with this tool's no-server-changes goal.)
func (c *Client) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx, sp := trace.Start(c.ctx, trace.SpanClientSync)
	defer sp.End()
	sp.Annotate("doc", c.docID)
	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err := c.saveLocked(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		sp.Annotate("conflict", "1")
		rctx, rsp := trace.Start(ctx, trace.SpanResync)
		base, version, serverDelta, viaDeltas, err := c.fetchSinceLocked(rctx)
		if err != nil {
			rsp.End()
			return err
		}
		myDelta := diff.Diff(c.lastSaved, c.local)
		if !viaDeltas {
			serverDelta = diff.Diff(c.lastSaved, base)
		}
		merged, mergeErr := delta.Merge(c.lastSaved, myDelta, serverDelta, false)
		if mergeErr != nil {
			// Should not happen for valid deltas; fall back to local-wins.
			merged = c.local
		}
		rsp.End()
		c.local = merged
		c.lastSaved = base
		c.version = version
		c.sentFull = true // a valid base exists; next save is a delta
	}
	return ErrConflict
}
