package gdocs

import (
	"context"
	"strings"
	"testing"

	"privedit/internal/obs"
)

// TestObservationLogBounded verifies the honest-but-curious observation
// log drops its oldest bytes once it hits the cap, keeps the most recent
// content, and counts each truncation.
func TestObservationLogBounded(t *testing.T) {
	obs.Enable()
	s := NewServer()
	s.EnableObservation()
	s.SetObservationCap(64)

	before := obs.Default.Sum("privedit_observation_truncations_total")

	if err := s.Create(context.Background(), "d"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Each save appends 32+1 bytes, so the third one must truncate.
	for i, chunk := range []string{
		strings.Repeat("a", 32),
		strings.Repeat("b", 32),
		strings.Repeat("c", 32),
	} {
		if _, err := s.SetContents(context.Background(), "d", chunk, -1); err != nil {
			t.Fatalf("SetContents %d: %v", i, err)
		}
	}

	got := s.Observed()
	if len(got) > 64 {
		t.Errorf("observation log has %d bytes, cap is 64", len(got))
	}
	if !strings.Contains(got, strings.Repeat("c", 32)) {
		t.Errorf("log lost the most recent content: %q", got)
	}
	if strings.Contains(got, "a") {
		t.Errorf("log kept the oldest content past the cap: %q", got)
	}
	if d := obs.Default.Sum("privedit_observation_truncations_total") - before; d < 1 {
		t.Errorf("truncation counter moved by %v, want >= 1", d)
	}
}

// TestObservationLogUnbounded checks cap <= 0 disables the bound (tests
// rely on this to inspect everything the server saw).
func TestObservationLogUnbounded(t *testing.T) {
	s := NewServer()
	s.EnableObservation()
	s.SetObservationCap(0)
	if err := s.Create(context.Background(), "d"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.SetContents(context.Background(), "d", strings.Repeat("x", MaxDocBytes), -1); err != nil {
			t.Fatalf("SetContents %d: %v", i, err)
		}
	}
	if len(s.Observed()) < 2*DefaultObservationCap {
		t.Errorf("unbounded log held only %d bytes", len(s.Observed()))
	}
}
