package gdocs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestManyConcurrentWriters hammers one document with parallel clients,
// each retrying through Sync. Run with -race. At the end every writer's
// unique marker must appear exactly once in the converged document.
func TestManyConcurrentWriters(t *testing.T) {
	s, ts := newTestServer(t)
	seed := NewClient(ts.Client(), ts.URL, "busy")
	if err := seed.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	seed.SetText("|start|")
	if err := seed.Save(); err != nil {
		t.Fatalf("seed save: %v", err)
	}

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ts.Client(), ts.URL, "busy")
			if err := c.Load(); err != nil {
				errs[w] = err
				return
			}
			marker := fmt.Sprintf("<w%d>", w)
			if err := c.Insert(len(c.Text()), marker); err != nil {
				errs[w] = err
				return
			}
			// Sync retries a bounded number of times; under heavy
			// contention it may still conflict, so loop a little.
			var err error
			for attempt := 0; attempt < 10; attempt++ {
				if err = c.Sync(); err == nil {
					return
				}
				if !errors.Is(err, ErrConflict) {
					break
				}
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	final, _, err := s.Content(context.Background(), "busy")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	for w := 0; w < writers; w++ {
		marker := fmt.Sprintf("<w%d>", w)
		if n := countOccurrences(final, marker); n != 1 {
			t.Errorf("marker %s appears %d times in %q", marker, n, final)
		}
	}
}

func countOccurrences(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}

// TestConcurrentAutosaveAndEdits runs the autosave timer against a stream
// of edits from another goroutine; with -race this validates the client's
// locking.
func TestConcurrentAutosaveAndEdits(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.Client(), ts.URL, "autosaved")
	if err := c.Create(); err != nil {
		t.Fatalf("Create: %v", err)
	}
	stop := c.StartAutosave(1e6, nil) // 1ms
	for i := 0; i < 200; i++ {
		if err := c.Insert(len(c.Text()), "x"); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	stop()
	if err := c.Save(); err != nil {
		t.Fatalf("final save: %v", err)
	}
	content, _, err := s.Content(context.Background(), "autosaved")
	if err != nil {
		t.Fatalf("Content: %v", err)
	}
	if len(content) != 200 {
		t.Errorf("server has %d chars, want 200", len(content))
	}
}
